// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (the experiment index E1-E15 in README.md), plus design
// ablations and micro-benchmarks of the substrates.
//
// Each figure bench regenerates the corresponding robustness grid with
// the same rows (perturbation budgets) and columns (multipliers /
// victims) the paper reports and prints it once; the benchmark metric
// is wall-clock per full grid. Absolute accuracies differ from the
// paper (synthetic data, substituted multiplier silicon — see
// README.md); the qualitative shape is the reproduction target.
//
// Run everything:
//
//	go test -bench=. -benchmem -timeout 2h .
package repro_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/axmult"
	"repro/internal/axnn"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/energy"
	"repro/internal/errmodel"
	"repro/internal/experiment"
	"repro/internal/models"
	"repro/internal/modelzoo"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/tensor"
	"repro/internal/train"
)

// Paper sweep: the ten perturbation budgets of Figs. 4-8.
var paperEps = []float64{0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.5, 1, 1.5, 2}

// benchSamples returns the evaluation-set size for the grid benches
// (override with AXREPRO_BENCH_N).
func benchSamples(def int) int {
	if s := os.Getenv("AXREPRO_BENCH_N"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

var printOnce sync.Map

// emit prints the grid the first time a benchmark runs it.
func emit(b *testing.B, key string, text string) {
	b.Helper()
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n===== %s =====\n%s", key, text)
	}
}

// mnistVictims builds the M1..M9 AxDNN columns for LeNet-5.
func mnistVictims(b *testing.B) (*modelzoo.Model, []core.Victim) {
	b.Helper()
	m, err := modelzoo.Get("lenet5-digits")
	if err != nil {
		b.Fatal(err)
	}
	v, err := core.BuildAxVictims(m.Net, m.Test, axmult.MNISTSet(), axnn.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return m, v
}

// cifarVictims builds the M1..M8 AxDNN columns for AlexNet.
func cifarVictims(b *testing.B) (*modelzoo.Model, []core.Victim) {
	b.Helper()
	m, err := modelzoo.Get("alexnet-objects")
	if err != nil {
		b.Fatal(err)
	}
	v, err := core.BuildAxVictims(m.Net, m.Test, axmult.CIFARSet(), axnn.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return m, v
}

// gridBench is the shared driver for the Figs. 4-7 panels.
func gridBench(b *testing.B, key, attackName string, cifar bool, samples int) {
	var m *modelzoo.Model
	var victims []core.Victim
	if cifar {
		m, victims = cifarVictims(b)
	} else {
		m, victims = mnistVictims(b)
	}
	atk := attack.ByName(attackName)
	opts := core.Options{Samples: benchSamples(samples), Seed: 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := core.RobustnessGrid(m.Net, victims, m.Test, atk, paperEps, opts)
		loss, victim, eps := g.MaxAccuracyLoss()
		b.ReportMetric(loss, "max-acc-loss-%")
		emit(b, key, fmt.Sprintf("%s-> max accuracy loss %.0f%% on %s at eps=%g\n", g, loss, victim, eps))
	}
}

// ---- E1: Fig. 1 motivational study ----

func BenchmarkFig1_Motivation(b *testing.B) {
	lenet, err := modelzoo.Get("lenet5-digits")
	if err != nil {
		b.Fatal(err)
	}
	ffnn, err := modelzoo.Get("ffnn-digits")
	if err != nil {
		b.Fatal(err)
	}
	lv, err := core.BuildAxVictims(lenet.Net, lenet.Test, []string{"mul8u_1JFF", "mul8u_17KS"}, axnn.Options{})
	if err != nil {
		b.Fatal(err)
	}
	fv, err := core.BuildAxVictims(ffnn.Net, ffnn.Test, []string{"mul8u_1JFF", "mul8u_L1G"}, axnn.Options{ApproxDense: true})
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{Samples: benchSamples(150), Seed: 11}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out string
		for _, atk := range []attack.Attack{attack.ByName("PGD-linf"), attack.ByName("CR-l2")} {
			gl := core.RobustnessGrid(lenet.Net, lv, lenet.Test, atk, paperEps, opts)
			gf := core.RobustnessGrid(ffnn.Net, fv, ffnn.Test, atk, paperEps, opts)
			out += fmt.Sprintf("[LeNet-5] %s[FFNN] %s", gl, gf)
		}
		emit(b, "Fig1 motivational study (PGD-linf defensive, CR-l2 not)", out)
	}
}

// ---- E2-E5: Fig. 4 — BIM and FGM grids on LeNet-5 ----

func BenchmarkFig4a_BIMLinf(b *testing.B) {
	gridBench(b, "Fig4a BIM-linf LeNet-5", "BIM-linf", false, 150)
}
func BenchmarkFig4b_BIML2(b *testing.B) { gridBench(b, "Fig4b BIM-l2 LeNet-5", "BIM-l2", false, 150) }
func BenchmarkFig4c_FGMLinf(b *testing.B) {
	gridBench(b, "Fig4c FGM-linf LeNet-5", "FGM-linf", false, 150)
}
func BenchmarkFig4d_FGML2(b *testing.B) { gridBench(b, "Fig4d FGM-l2 LeNet-5", "FGM-l2", false, 150) }

// ---- E6-E9: Fig. 5 — PGD and RAU grids on LeNet-5 ----

func BenchmarkFig5a_PGDL2(b *testing.B) { gridBench(b, "Fig5a PGD-l2 LeNet-5", "PGD-l2", false, 150) }
func BenchmarkFig5b_PGDLinf(b *testing.B) {
	gridBench(b, "Fig5b PGD-linf LeNet-5", "PGD-linf", false, 150)
}
func BenchmarkFig5c_RAUL2(b *testing.B) { gridBench(b, "Fig5c RAU-l2 LeNet-5", "RAU-l2", false, 150) }
func BenchmarkFig5d_RAULinf(b *testing.B) {
	gridBench(b, "Fig5d RAU-linf LeNet-5", "RAU-linf", false, 150)
}

// ---- E10-E11: Fig. 6 — CR and RAG grids on LeNet-5 ----

func BenchmarkFig6a_CRL2(b *testing.B)  { gridBench(b, "Fig6a CR-l2 LeNet-5", "CR-l2", false, 150) }
func BenchmarkFig6b_RAGL2(b *testing.B) { gridBench(b, "Fig6b RAG-l2 LeNet-5", "RAG-l2", false, 150) }

// ---- E12: Fig. 7 — decision-based grids on AlexNet / CIFAR-like ----

func BenchmarkFig7a_CRL2(b *testing.B)  { gridBench(b, "Fig7a CR-l2 AlexNet", "CR-l2", true, 80) }
func BenchmarkFig7b_RAGL2(b *testing.B) { gridBench(b, "Fig7b RAG-l2 AlexNet", "RAG-l2", true, 80) }
func BenchmarkFig7c_RAUL2(b *testing.B) { gridBench(b, "Fig7c RAU-l2 AlexNet", "RAU-l2", true, 80) }
func BenchmarkFig7d_RAULinf(b *testing.B) {
	gridBench(b, "Fig7d RAU-linf AlexNet", "RAU-linf", true, 80)
}

// ---- E13: Fig. 8 — quantized vs float accurate LeNet-5, all attacks ----

func BenchmarkFig8_Quantization(b *testing.B) {
	m, err := modelzoo.Get("lenet5-digits")
	if err != nil {
		b.Fatal(err)
	}
	victims, err := core.QuantPair(m.Net, m.Test, 8)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{Samples: benchSamples(150), Seed: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out string
		var qWins, total int
		for _, atk := range attack.TableI() {
			g := core.RobustnessGrid(m.Net, victims, m.Test, atk, paperEps, opts)
			out += g.String()
			q, qok := g.Column(victims[1].Name)
			f, fok := g.Column("float")
			if !qok || !fok {
				b.Fatalf("grid missing quantized/float column: %v", g.Victims)
			}
			for j := range q {
				total++
				if q[j] >= f[j] {
					qWins++
				}
			}
		}
		b.ReportMetric(100*float64(qWins)/float64(total), "q8-wins-%")
		emit(b, "Fig8 quantized (q8) vs float LeNet-5, all 10 attacks", out+
			fmt.Sprintf("-> quantized >= float on %d/%d (attack, eps) points\n", qWins, total))
	}
}

// ---- E14: Table II — transferability ----

func BenchmarkTable2_Transferability(b *testing.B) {
	type pair struct{ lenet, alex, label string }
	families := []pair{
		{"lenet5-digits32", "alexnet-digits", "digits"},
		{"lenet5-objects", "alexnet-objects", "objects"},
	}
	atk := attack.ByName("BIM-linf")
	opts := core.Options{Samples: benchSamples(150), Seed: 17}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := ""
		for _, fam := range families {
			ln, err := modelzoo.Get(fam.lenet)
			if err != nil {
				b.Fatal(err)
			}
			ax, err := modelzoo.Get(fam.alex)
			if err != nil {
				b.Fatal(err)
			}
			// Victims use their dataset-appropriate multiplier (the
			// paper selects multipliers per error resilience): 17KS for
			// LeNet-5, KEM for the deeper AlexNet.
			lv, err := core.BuildAxVictims(ln.Net, ln.Test, []string{"mul8u_17KS"}, axnn.Options{})
			if err != nil {
				b.Fatal(err)
			}
			av, err := core.BuildAxVictims(ax.Net, ax.Test, []string{"mul8u_KEM"}, axnn.Options{})
			if err != nil {
				b.Fatal(err)
			}
			for _, cell := range []struct {
				src *modelzoo.Model
				vic core.Victim
				tag string
			}{
				{ln, lv[0], "AccL5  -> AxL5 "},
				{ln, av[0], "AccL5  -> AxAlx"},
				{ax, lv[0], "AccAlx -> AxL5 "},
				{ax, av[0], "AccAlx -> AxAlx"},
			} {
				r := core.Transfer(cell.src.Net, cell.vic, cell.src.Test, atk, 0.05, opts)
				out += fmt.Sprintf("%s [%s]: %3.0f/%-3.0f\n", cell.tag, fam.label, r.CleanAcc, r.AdvAcc)
			}
		}
		emit(b, "Table II transferability (BIM-linf eps=0.05, X/Y = before/after)", out)
	}
}

// ---- E15: multiplier error metrics (the Section IV-B MAE table) ----

func BenchmarkMultiplierMetrics(b *testing.B) {
	names := append(append([]string{}, axmult.MNISTSet()...), axmult.CIFARSet()[1:]...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := fmt.Sprintf("%-14s %9s %9s %9s %10s\n", "multiplier", "MAE%", "WCE%", "MRE%", "bias")
		for _, n := range names {
			m, err := errmodel.MeasureNamed(n)
			if err != nil {
				b.Fatal(err)
			}
			out += fmt.Sprintf("%-14s %9.4f %9.3f %9.3f %+10.1f\n", m.Name, m.MAEP, m.WCEP, m.MRE, m.Bias)
		}
		emit(b, "Multiplier error metrics (MAE table)", out)
	}
}

// BenchmarkEnergyRobustnessTradeoff quantifies the paper's premise:
// the energy saved by each approximate design against the robustness
// it costs under the strongest attack at a small budget.
func BenchmarkEnergyRobustnessTradeoff(b *testing.B) {
	m, victims := mnistVictims(b)
	opts := core.Options{Samples: benchSamples(150), Seed: 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := core.RobustnessGrid(m.Net, victims, m.Test, attack.ByName("BIM-linf"), []float64{0, 0.05}, opts)
		acc := map[string]float64{}
		for vi, name := range g.Victims {
			acc[name] = g.Acc[1][vi]
		}
		rows, err := energy.Tradeoff(axmult.MNISTSet(), acc)
		if err != nil {
			b.Fatal(err)
		}
		out := ""
		for _, r := range rows {
			out += r.String() + " (robustness at BIM-linf eps=0.05)\n"
		}
		emit(b, "Energy vs robustness trade-off (LeNet-5, M1..M9)", out)
	}
}

// ---- Ablations (design choices documented in README.md) ----

// BenchmarkAblationZeroPoint shows the exact zero-point correction is
// load-bearing: without it, even the exact-multiplier engine collapses.
func BenchmarkAblationZeroPoint(b *testing.B) {
	m, err := modelzoo.Get("lenet5-digits")
	if err != nil {
		b.Fatal(err)
	}
	withZP, err := core.BuildAxVictims(m.Net, m.Test, []string{"mul8u_1JFF"}, axnn.Options{})
	if err != nil {
		b.Fatal(err)
	}
	withoutZP, err := core.BuildAxVictims(m.Net, m.Test, []string{"mul8u_1JFF"}, axnn.Options{NoZeroPointCorrection: true})
	if err != nil {
		b.Fatal(err)
	}
	victims := []core.Victim{
		{Name: "zp-corrected", Factory: withZP[0].Factory},
		{Name: "no-zp", Factory: withoutZP[0].Factory},
	}
	opts := core.Options{Samples: benchSamples(150), Seed: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := core.RobustnessGrid(m.Net, victims, m.Test, attack.ByName("FGM-linf"), []float64{0}, opts)
		emit(b, "Ablation: zero-point correction", g.String())
	}
}

// BenchmarkAblationQuantBits sweeps the Qlevel (8/6/4 bits).
func BenchmarkAblationQuantBits(b *testing.B) {
	m, err := modelzoo.Get("lenet5-digits")
	if err != nil {
		b.Fatal(err)
	}
	var victims []core.Victim
	for _, bits := range []uint{8, 6, 4} {
		v, err := core.BuildAxVictims(m.Net, m.Test, []string{"mul8u_1JFF"}, axnn.Options{Bits: bits})
		if err != nil {
			b.Fatal(err)
		}
		victims = append(victims, core.Victim{Name: fmt.Sprintf("q%d", bits), Factory: v[0].Factory})
	}
	opts := core.Options{Samples: benchSamples(150), Seed: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := core.RobustnessGrid(m.Net, victims, m.Test, attack.ByName("PGD-linf"), []float64{0, 0.1, 0.2}, opts)
		emit(b, "Ablation: quantization bit width", g.String())
	}
}

// BenchmarkAblationDenseApprox measures the extra damage of routing
// dense layers through the approximate multiplier too.
func BenchmarkAblationDenseApprox(b *testing.B) {
	m, err := modelzoo.Get("lenet5-digits")
	if err != nil {
		b.Fatal(err)
	}
	convOnly, err := core.BuildAxVictims(m.Net, m.Test, []string{"mul8u_FTA"}, axnn.Options{})
	if err != nil {
		b.Fatal(err)
	}
	convDense, err := core.BuildAxVictims(m.Net, m.Test, []string{"mul8u_FTA"}, axnn.Options{ApproxDense: true})
	if err != nil {
		b.Fatal(err)
	}
	victims := []core.Victim{
		{Name: "conv-only", Factory: convOnly[0].Factory},
		{Name: "conv+dense", Factory: convDense[0].Factory},
	}
	opts := core.Options{Samples: benchSamples(150), Seed: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := core.RobustnessGrid(m.Net, victims, m.Test, attack.ByName("BIM-linf"), []float64{0, 0.1}, opts)
		emit(b, "Ablation: approximate dense layers (FTA)", g.String())
	}
}

// ---- Micro-benchmarks of the substrates ----

func BenchmarkMulLUT(b *testing.B) {
	lut := axmult.MustLookup("mul8u_JV3")
	var s uint32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s += uint32(lut.Mul(uint8(i), uint8(i>>8)))
	}
	_ = s
}

func BenchmarkMulCircuitArray(b *testing.B) {
	m, err := axmult.New("mul8u_1JFF")
	if err != nil {
		b.Fatal(err)
	}
	var s uint32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s += uint32(m.Mul(uint8(i), uint8(i>>8)))
	}
	_ = s
}

func BenchmarkMulCircuitMitchell(b *testing.B) {
	m, err := axmult.New("mul8u_JV3")
	if err != nil {
		b.Fatal(err)
	}
	var s uint32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s += uint32(m.Mul(uint8(i), uint8(i>>8)))
	}
	_ = s
}

// BenchmarkAblationLUTvsCircuit quantifies why the engine compiles
// circuits to LUTs (TFApprox's design choice).
func BenchmarkAblationLUTvsCircuit(b *testing.B) {
	circuit, err := axmult.New("mul8u_1JFF") // gate-level array model
	if err != nil {
		b.Fatal(err)
	}
	// Lookup, not Compile: benchmarks share the process-wide cached
	// table instead of re-deriving 64 KB per run.
	lut := axmult.MustLookup("mul8u_1JFF")
	b.Run("circuit", func(b *testing.B) {
		var s uint32
		for i := 0; i < b.N; i++ {
			s += uint32(circuit.Mul(uint8(i), uint8(i>>8)))
		}
		_ = s
	})
	b.Run("lut", func(b *testing.B) {
		var s uint32
		for i := 0; i < b.N; i++ {
			s += uint32(lut.Mul(uint8(i), uint8(i>>8)))
		}
		_ = s
	})
}

func BenchmarkQuantizedInferenceLeNet(b *testing.B) {
	m, err := modelzoo.Get("lenet5-digits")
	if err != nil {
		b.Fatal(err)
	}
	q, err := axnn.Compile(m.Net, m.Test.Inputs(32), axnn.Options{})
	if err != nil {
		b.Fatal(err)
	}
	q = q.WithMultiplier(axmult.MustLookup("mul8u_17KS"))
	x := m.Test.X[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Logits(x)
	}
}

func BenchmarkQuantizedInferenceAlexNet(b *testing.B) {
	m, err := modelzoo.Get("alexnet-objects")
	if err != nil {
		b.Fatal(err)
	}
	q, err := axnn.Compile(m.Net, m.Test.Inputs(32), axnn.Options{})
	if err != nil {
		b.Fatal(err)
	}
	q = q.WithMultiplier(axmult.MustLookup("mul8u_QJD"))
	x := m.Test.X[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Logits(x)
	}
}

func BenchmarkFloatInferenceLeNet(b *testing.B) {
	m, err := modelzoo.Get("lenet5-digits")
	if err != nil {
		b.Fatal(err)
	}
	x := m.Test.X[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Net.Logits(x)
	}
}

func BenchmarkAttackPGDLinf(b *testing.B) {
	m, err := modelzoo.Get("lenet5-digits")
	if err != nil {
		b.Fatal(err)
	}
	atk := attack.ByName("PGD-linf")
	rng := rand.New(rand.NewSource(1))
	x, y := m.Test.X[0], m.Test.Y[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adv := atk.Perturb(m.Net, x, y, 0.1, rng)
		if adv.Len() != x.Len() {
			b.Fatal("bad adv")
		}
	}
}

// BenchmarkBatchVsScalar tracks the throughput (samples/sec) of
// batched vs per-sample inference for the LeNet-5 float and AxDNN
// paths — the speedup the batched, stateless engine exists to deliver.
func BenchmarkBatchVsScalar(b *testing.B) {
	m, err := modelzoo.Get("lenet5-digits")
	if err != nil {
		b.Fatal(err)
	}
	q, err := axnn.Compile(m.Net, m.Test.Inputs(32), axnn.Options{})
	if err != nil {
		b.Fatal(err)
	}
	q = q.WithMultiplier(axmult.MustLookup("mul8u_17KS"))
	const batchN = 64
	xs := m.Test.X[:batchN]
	batch := tensor.Stack(xs)
	throughput := func(b *testing.B) {
		b.ReportMetric(float64(batchN*b.N)/b.Elapsed().Seconds(), "samples/sec")
	}
	b.Run("float/scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, x := range xs {
				m.Net.Logits(x)
			}
		}
		throughput(b)
	})
	b.Run("float/batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Net.LogitsBatch(batch)
		}
		throughput(b)
	})
	b.Run("axdnn/scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, x := range xs {
				q.Logits(x)
			}
		}
		throughput(b)
	})
	b.Run("axdnn/batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q.LogitsBatch(batch)
		}
		throughput(b)
	})
}

// BenchmarkLUTVsDirect isolates the LUT-dispatch design choice on a
// GEMM-shaped workload (the ROADMAP's "fuse approximate multipliers
// into LUTs" item): one conv inner product in three forms — virtual
// Mul dispatch into the gate-level circuit, activation-major flat-table
// loads (the seed kernel's layout, 512-byte stride per weight row),
// and weight-major transposed-table rows (the tiled kernel's layout).
func BenchmarkLUTVsDirect(b *testing.B) {
	const kk, p = 150, 576 // LeNet-5 conv2 geometry: 6*5*5 taps, 24*24 pixels
	circuit, err := axmult.New("mul8u_JV3")
	if err != nil {
		b.Fatal(err)
	}
	lut := axmult.MustLookup("mul8u_JV3")
	table, tableT := lut.Table(), lut.TableT()
	rng := rand.New(rand.NewSource(42))
	cols := make([]uint8, kk*p)
	for i := range cols {
		cols[i] = uint8(rng.Intn(256))
	}
	weights := make([]uint8, kk)
	for i := range weights {
		weights[i] = uint8(rng.Intn(256))
	}
	acc := make([]int32, p)
	b.Run("circuit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			clear(acc)
			for q := 0; q < kk; q++ {
				w := weights[q]
				col := cols[q*p : (q+1)*p]
				for j, a := range col {
					acc[j] += int32(circuit.Mul(a, w))
				}
			}
		}
		b.ReportMetric(float64(kk*p), "macs/op")
	})
	b.Run("lut-flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			clear(acc)
			for q := 0; q < kk; q++ {
				w := uint32(weights[q])
				col := cols[q*p : (q+1)*p]
				for j, a := range col {
					acc[j] += int32(table[uint32(a)<<8|w])
				}
			}
		}
		b.ReportMetric(float64(kk*p), "macs/op")
	})
	b.Run("lut-weight-major", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			clear(acc)
			for q := 0; q < kk; q++ {
				row := (*[256]uint16)(tableT[int(weights[q])<<8:])
				col := cols[q*p : (q+1)*p]
				for j, a := range col {
					acc[j] += int32(row[a])
				}
			}
		}
		b.ReportMetric(float64(kk*p), "macs/op")
	})
	// The interleaved variant cmd/axbench actually gates: one circuit
	// round and one weight-major LUT round per iteration, milliseconds
	// apart, so the reported cost ratio is immune to ambient load
	// shifting between the separately-timed windows above.
	b.Run("paired", func(b *testing.B) {
		pairedRel(b,
			func() {
				clear(acc)
				for q := 0; q < kk; q++ {
					w := weights[q]
					col := cols[q*p : (q+1)*p]
					for j, a := range col {
						acc[j] += int32(circuit.Mul(a, w))
					}
				}
			},
			func() {
				clear(acc)
				for q := 0; q < kk; q++ {
					row := (*[256]uint16)(tableT[int(weights[q])<<8:])
					col := cols[q*p : (q+1)*p]
					for j, a := range col {
						acc[j] += int32(row[a])
					}
				}
			})
	})
}

// BenchmarkTiledVsSeed is the tentpole's regression gate: LeNet-5
// batched inference through the retained pre-PR kernel (seed) versus
// the tiled weight-major kernel (tiled), plus the worker-parallel
// variant. cmd/axbench gates the "paired" sub-benchmark's
// interleaved cost ratio against the committed BENCH_axnn.json
// baseline, so the comparison is machine-independent (both kernels run
// in the same process on the same batch, rounds interleaved). Parity
// between the two kernels is pinned bit-for-bit by internal/axnn's
// parity suite.
func BenchmarkTiledVsSeed(b *testing.B) {
	m, err := modelzoo.Get("lenet5-digits")
	if err != nil {
		b.Fatal(err)
	}
	q, err := axnn.Compile(m.Net, m.Test.Inputs(32), axnn.Options{})
	if err != nil {
		b.Fatal(err)
	}
	q = q.WithMultiplier(axmult.MustLookup("mul8u_17KS"))
	const batchN = 64
	batch := tensor.Stack(m.Test.X[:batchN])
	throughput := func(b *testing.B) {
		b.ReportMetric(float64(batchN*b.N)/b.Elapsed().Seconds(), "samples/sec")
	}
	b.Run("seed", func(b *testing.B) {
		eng := q.WithReferenceKernel()
		for i := 0; i < b.N; i++ {
			eng.LogitsBatch(batch)
		}
		throughput(b)
	})
	b.Run("tiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q.LogitsBatch(batch)
		}
		throughput(b)
	})
	b.Run("tiled-workers4", func(b *testing.B) {
		eng := q.WithWorkers(4)
		for i := 0; i < b.N; i++ {
			eng.LogitsBatch(batch)
		}
		throughput(b)
	})
	// The interleaved variant cmd/axbench actually gates: each
	// iteration runs one seed batch and one tiled batch back to back,
	// so every per-round ratio compares the kernels under the same
	// ambient load. The separately-timed windows above report absolute
	// throughput but their quotient is hostage to load shifting in the
	// seconds between them on a shared runner.
	b.Run("paired", func(b *testing.B) {
		// A smaller batch keeps one seed+tiled round pair near 30ms,
		// so a normal -benchtime yields enough rounds for the median
		// to settle; the per-sample cost ratio is the same as at 64.
		pairBatch := tensor.Stack(m.Test.X[:16])
		eng := q.WithReferenceKernel()
		pairedRel(b,
			func() { eng.LogitsBatch(pairBatch) },
			func() { q.LogitsBatch(pairBatch) })
	})
}

// pairedRel times ref and opt back to back in every benchmark
// iteration and reports the median per-round opt/ref cost ratio as a
// "paired-rel" metric (plus the reciprocal speedup for human eyes).
// Pairing at round granularity is the only load-robust estimator on a
// busy single-core runner: ambient load flaps faster than the gap
// between separately-timed benchmark windows, but not faster than two
// adjacent rounds.
func pairedRel(b *testing.B, ref, opt func()) {
	ref()
	opt()
	rels := make([]float64, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		ref()
		dRef := time.Since(t0)
		t1 := time.Now()
		opt()
		dOpt := time.Since(t1)
		rels = append(rels, float64(dOpt)/float64(dRef))
	}
	b.StopTimer()
	sort.Float64s(rels)
	med := rels[len(rels)/2]
	if n := len(rels); n%2 == 0 {
		med = (rels[n/2-1] + rels[n/2]) / 2
	}
	b.ReportMetric(med, "paired-rel")
	b.ReportMetric(1/med, "x-speedup")
}

// BenchmarkWarmStoreCraft measures the persistent cache tier's restart
// win: each iteration stands up a cold process — a fresh in-memory
// cache — over a warm disk store and replays a small PGD sweep, so
// ns/op is the disk-served cost of cells that would otherwise re-run
// gradient ascent. The cache Stats deltas ride along as cache-*
// metrics; cmd/axbench -update records them (ungated) in
// BENCH_axnn.json so the warm-store hit rate is part of the committed
// perf trajectory:
//
//	go test -run '^$' -bench 'WarmStoreCraft' -benchtime 1x -count=3 . |
//	go run ./cmd/axbench -update BENCH_axnn.json
func BenchmarkWarmStoreCraft(b *testing.B) {
	tr := dataset.Digits(600, 61)
	test := dataset.Digits(64, 62)
	net := models.FFNN(28*28, 10, 63)
	net.Name = "bench-warm-store"
	train.Fit(net, tr, train.Config{Epochs: 1, Batch: 32, LR: 0.05, Momentum: 0.9, Seed: 2})

	s, err := store.Open(store.Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	atk := attack.ByName("PGD-linf")
	epsSweep := []float64{0.05, 0.1, 0.2}
	opts := core.Options{Seed: 11}
	ctx := context.Background()

	// Seed the store: the one crafting run a warm fleet amortises.
	seeded := core.NewCache(core.CacheConfig{Disk: s})
	for _, eps := range epsSweep {
		if _, _, err := seeded.CraftedBatch(ctx, net, test, atk, eps, opts); err != nil {
			b.Fatal(err)
		}
	}

	var hits, misses, errs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cold := core.NewCache(core.CacheConfig{Disk: s})
		for _, eps := range epsSweep {
			if _, hit, err := cold.CraftedBatch(ctx, net, test, atk, eps, opts); err != nil || !hit {
				b.Fatalf("warm store did not serve eps=%g: hit=%v err=%v", eps, hit, err)
			}
		}
		st := cold.Stats()
		hits += st.DiskCraftHits
		misses += st.DiskCraftMisses
		errs += st.DiskErrors
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(float64(hits)/n, "cache-disk-hits")
	b.ReportMetric(float64(misses)/n, "cache-disk-misses")
	b.ReportMetric(float64(errs)/n, "cache-errors")
}

// BenchmarkTracedVsUntraced pins the observability layer's overhead:
// the same small suite runs untraced (ref) and traced — recorder in
// context, every span and histogram live — interleaved round by round
// via pairedRel. The paired-rel ratio is the whole-suite cost of
// tracing and should sit at ~1.0; it is recorded ungated in
// BENCH_axnn.json so drift is visible in the committed trajectory
// without a load-sensitive hard gate:
//
//	go test -run '^$' -bench 'TracedVsUntraced' -benchtime 1x -count=3 . |
//	go run ./cmd/axbench -update BENCH_axnn.json
func BenchmarkTracedVsUntraced(b *testing.B) {
	tr := dataset.Digits(600, 61)
	test := dataset.Digits(64, 62)
	net := models.FFNN(28*28, 10, 63)
	net.Name = "bench-traced"
	train.Fit(net, tr, train.Config{Epochs: 1, Batch: 32, LR: 0.05, Momentum: 0.9, Seed: 2})
	zoo := &modelzoo.Model{Net: net, Train: tr, Test: test, CleanAcc: 100 * train.Accuracy(net, test, 0)}
	src := func(ctx context.Context, name string) (*modelzoo.Model, error) { return zoo, nil }

	spec := &experiment.Spec{
		Name:        "bench-traced",
		Model:       "bench-traced",
		Multipliers: []string{"mul8u_1JFF", "mul8u_JV3"},
		Attacks:     []string{"FGM-linf", "PGD-linf", "BIM-linf"},
		Eps:         []float64{0, 0.05, 0.1, 0.2},
		Samples:     24,
		Seed:        7,
		Workers:     1,
	}
	if err := spec.Validate(); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	// Fresh engines per round keep both variants crafting from scratch,
	// so the ratio compares full pipelines, not cache lookups.
	runSuite := func(ctx context.Context) {
		eng := experiment.New(experiment.WithModelSource(src))
		if _, err := eng.Run(ctx, spec); err != nil {
			b.Fatal(err)
		}
	}
	pairedRel(b,
		func() { runSuite(ctx) },
		func() {
			rec := obs.NewRecorder(obs.DefaultSpanCap)
			sctx, span := obs.Start(obs.WithRecorder(ctx, rec), "suite")
			runSuite(sctx)
			span.End()
			if len(rec.Spans()) == 0 {
				b.Fatal("traced variant recorded no spans")
			}
		})
}

// BenchmarkPlanExecutorVsSerial measures the cell-graph scheduler's
// win: the full 14-attack x 4-eps suite on the parallel local executor
// (4 workers) against the serial path, interleaved round by round via
// pairedRel so the ratio is load-robust. Fresh engines (and so fresh
// caches) per run keep every round crafting from scratch; Spec.Workers
// is pinned to 1 so within-cell crafting parallelism does not mask the
// scheduler's contribution. The paired-rel entry is recorded ungated
// in BENCH_axnn.json — the parallel ratio depends on the host's core
// count:
//
//	go test -run '^$' -bench 'PlanExecutorVsSerial' -benchtime 1x -count=3 . |
//	go run ./cmd/axbench -update BENCH_axnn.json
func BenchmarkPlanExecutorVsSerial(b *testing.B) {
	tr := dataset.Digits(600, 61)
	test := dataset.Digits(64, 62)
	net := models.FFNN(28*28, 10, 63)
	net.Name = "bench-plan-exec"
	train.Fit(net, tr, train.Config{Epochs: 1, Batch: 32, LR: 0.05, Momentum: 0.9, Seed: 2})
	zoo := &modelzoo.Model{Net: net, Train: tr, Test: test, CleanAcc: 100 * train.Accuracy(net, test, 0)}
	src := func(ctx context.Context, name string) (*modelzoo.Model, error) { return zoo, nil }

	spec := &experiment.Spec{
		Name:        "bench-plan-exec",
		Model:       "bench-plan-exec",
		Multipliers: []string{"mul8u_1JFF", "mul8u_JV3"},
		Attacks:     attack.Names(),
		Eps:         []float64{0, 0.05, 0.1, 0.2},
		Samples:     24,
		Seed:        7,
		Workers:     1,
	}
	if err := spec.Validate(); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	runSuite := func(parallel int) {
		eng := experiment.New(
			experiment.WithModelSource(src),
			experiment.WithExecutor(&experiment.LocalExecutor{Parallel: parallel}),
		)
		if _, err := eng.Run(ctx, spec); err != nil {
			b.Fatal(err)
		}
	}
	pairedRel(b,
		func() { runSuite(1) },
		func() { runSuite(4) })
}
