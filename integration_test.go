package repro_test

import (
	"testing"

	"repro"
	"repro/internal/attack"
	"repro/internal/axmult"
	"repro/internal/axnn"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/train"
)

// TestEndToEndPipeline runs the paper's whole methodology on a small
// scale with no cached state: train an accurate DNN, quantize it into
// AxDNNs, craft attacks against the float model, and evaluate the
// robustness grid. It pins the cross-module invariants the experiments
// rely on.
func TestEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline in -short mode")
	}
	trainSet := dataset.Digits(2000, 61)
	testSet := dataset.Digits(240, 62)
	net := models.LeNet5(1, 28, 28, 10, 63)
	net.Name = "e2e-lenet"
	train.Fit(net, trainSet, train.Config{Epochs: 3, Batch: 32, LR: 0.05, Momentum: 0.9, LRDecay: 0.7, Seed: 1})

	floatAcc := train.Accuracy(net, testSet, 0)
	if floatAcc < 0.9 {
		t.Fatalf("float training failed: %.2f", floatAcc)
	}

	mults := []string{"mul8u_1JFF", "mul8u_17KS", "mul8u_L40"}
	victims, err := core.BuildAxVictims(net, testSet, mults, axnn.Options{})
	if err != nil {
		t.Fatal(err)
	}

	eps := []float64{0, 0.1, 0.25}
	grid := core.RobustnessGrid(net, victims, testSet, attack.ByName("BIM-linf"), eps, core.Options{Samples: 120, Seed: 2})

	// Clean row: quantized accurate within a few points of float.
	if diff := 100*floatAcc - grid.Acc[0][0]; diff > 6 || diff < -6 {
		t.Fatalf("quantized clean accuracy %f too far from float %f", grid.Acc[0][0], 100*floatAcc)
	}
	// Attack monotonicity per victim (BIM at these budgets is strictly
	// damaging on this model).
	for vi := range mults {
		if grid.Acc[1][vi] > grid.Acc[0][vi]+2 || grid.Acc[2][vi] > grid.Acc[1][vi]+2 {
			t.Fatalf("victim %s not degraded by growing budgets: %v %v %v",
				mults[vi], grid.Acc[0][vi], grid.Acc[1][vi], grid.Acc[2][vi])
		}
	}
	// At a solid budget the attack must do real damage somewhere.
	if loss, _, _ := grid.MaxAccuracyLoss(); loss < 20 {
		t.Fatalf("BIM-linf at eps=0.25 lost only %.0f%%", loss)
	}
}

// TestAlgorithmOneAmortization verifies the harness's core soundness
// property: adversarial inputs are independent of the victim, so two
// victims see identical perturbed inputs (same seed) and the accurate
// victim's robustness equals a direct evaluation.
func TestAlgorithmOneAmortization(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test in -short mode")
	}
	trainSet := dataset.Digits(800, 71)
	testSet := dataset.Digits(150, 72)
	net := models.FFNN(28*28, 10, 73)
	net.Name = "e2e-ffnn"
	train.Fit(net, trainSet, train.Config{Epochs: 2, Batch: 32, LR: 0.05, Momentum: 0.9, Seed: 3})

	q, err := axnn.Compile(net, testSet.Inputs(32), axnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	single := core.RobustnessGrid(net,
		[]core.Victim{core.NewVictim("q", q)},
		testSet, attack.ByName("FGM-linf"), []float64{0.1}, core.Options{Samples: 100, Seed: 4})
	double := core.RobustnessGrid(net,
		[]core.Victim{core.NewVictim("other", q.WithMultiplier(axmult.MustLookup("mul8u_JV3"))), core.NewVictim("q", q)},
		testSet, attack.ByName("FGM-linf"), []float64{0.1}, core.Options{Samples: 100, Seed: 4})
	if single.Acc[0][0] != double.Acc[0][1] {
		t.Fatalf("victim set changed the crafted attacks: %f vs %f", single.Acc[0][0], double.Acc[0][1])
	}
}

func TestVersionString(t *testing.T) {
	if repro.Version == "" {
		t.Fatal("Version must identify the reproduction snapshot")
	}
}
