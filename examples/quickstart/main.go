// Quickstart: build an AxDNN from a trained network, attack it, and
// measure robustness — the library's core loop in ~60 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/axmult"
	"repro/internal/axnn"
	"repro/internal/core"
	"repro/internal/errmodel"
	"repro/internal/modelzoo"
)

func main() {
	// 1. A trained accurate LeNet-5 (trains once, then loads from cache).
	m, err := modelzoo.Get("lenet5-digits")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accurate LeNet-5: %.1f%% clean accuracy\n", m.CleanAcc)

	// 2. Inspect an approximate multiplier from the EvoApprox-style
	// registry.
	met, err := errmodel.MeasureNamed("mul8u_JV3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mul8u_JV3: MAE %.3f%%, worst case %.2f%%, bias %.0f\n", met.MAEP, met.WCEP, met.Bias)

	// 3. Compile the 8-bit quantized AxDNN and swap multipliers freely.
	q, err := axnn.Compile(m.Net, m.Test.Inputs(64), axnn.Options{Bits: 8})
	if err != nil {
		log.Fatal(err)
	}
	axdnn := q.WithMultiplier(axmult.MustLookup("mul8u_JV3"))
	x := m.Test.X[0]
	fmt.Printf("sample 0: label %d, quantized-accurate says %d, AxDNN(JV3) says %d\n",
		m.Test.Y[0], q.Predict(x), axdnn.Predict(x))

	// 4. Run Algorithm 1: craft PGD-linf examples on the accurate float
	// model, replay them on both victims.
	grid := core.RobustnessGrid(
		m.Net,
		[]core.Victim{core.NewVictim("q8-accurate", q), core.NewVictim("AxDNN-JV3", axdnn)},
		m.Test,
		attack.ByName("PGD-linf"),
		[]float64{0, 0.05, 0.1, 0.2},
		core.Options{Samples: 150, Seed: 1},
	)
	fmt.Println()
	fmt.Print(grid)
	loss, victim, eps := grid.MaxAccuracyLoss()
	fmt.Printf("\nbiggest accuracy loss: %.0f%% (%s at eps=%g) — approximation is no universal defense\n",
		loss, victim, eps)
}
