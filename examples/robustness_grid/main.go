// Robustness grid: a compact version of the paper's Figs. 4-6 — one
// gradient-based and one decision-based attack swept over all nine
// MNIST-set multipliers (M1..M9) on LeNet-5.
//
//	go run ./examples/robustness_grid
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/axmult"
	"repro/internal/axnn"
	"repro/internal/core"
	"repro/internal/errmodel"
	"repro/internal/modelzoo"
)

func main() {
	m, err := modelzoo.Get("lenet5-digits")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("multiplier error profiles (the paper's M1..M9):")
	for i, name := range axmult.MNISTSet() {
		met, err := errmodel.MeasureNamed(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  M%d %-12s MAE%%=%.4f bias=%+8.1f\n", i+1, name, met.MAEP, met.Bias)
	}
	fmt.Println()

	victims, err := core.BuildAxVictims(m.Net, m.Test, axmult.MNISTSet(), axnn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	eps := []float64{0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.5, 1, 1.5, 2}
	opts := core.Options{Samples: 200, Seed: 7}
	for _, name := range []string{"BIM-linf", "RAU-linf"} {
		g := core.RobustnessGrid(m.Net, victims, m.Test, attack.ByName(name), eps, opts)
		fmt.Print(g)
		loss, victim, at := g.MaxAccuracyLoss()
		fmt.Printf("-> max loss %.0f%% on %s at eps=%g\n\n", loss, victim, at)
	}
}
