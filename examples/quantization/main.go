// Quantization vs approximation under attack (Fig. 8 and Section IV-D):
// quantization *improves* adversarial robustness of the accurate DNN,
// while approximate computing pulls in the opposite direction — the two
// act antagonistically.
//
//	go run ./examples/quantization
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/axnn"
	"repro/internal/core"
	"repro/internal/modelzoo"
)

func main() {
	m, err := modelzoo.Get("lenet5-digits")
	if err != nil {
		log.Fatal(err)
	}
	victims, err := core.QuantPair(m.Net, m.Test, 8)
	if err != nil {
		log.Fatal(err)
	}
	// Add the quantized+approximate victim (Section IV-D's third column).
	ax, err := core.BuildAxVictims(m.Net, m.Test, []string{"mul8u_L40"}, axnn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	victims = append(victims, ax...)

	eps := []float64{0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.5}
	opts := core.Options{Samples: 200, Seed: 5}
	for _, name := range []string{"PGD-linf", "BIM-linf", "FGM-linf"} {
		g := core.RobustnessGrid(m.Net, victims, m.Test, attack.ByName(name), eps, opts)
		fmt.Print(g)
		q, _ := g.Column(g.Victims[1])
		f, fok := g.Column("float")
		a, aok := g.Column("mul8u_L40")
		if !fok || !aok {
			log.Fatalf("grid missing expected columns: %v", g.Victims)
		}
		qHelps, axHurts := 0, 0
		for i := range q {
			if q[i] >= f[i] {
				qHelps++
			}
			if a[i] <= q[i] {
				axHurts++
			}
		}
		fmt.Printf("-> quantization helps on %d/%d budgets; approximation erases the gain on %d/%d\n\n",
			qHelps, len(eps), axHurts, len(eps))
	}
	fmt.Println("Quantization and approximation act antagonistically under attack (A3).")
}
