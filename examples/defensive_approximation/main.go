// Defensive approximation, revisited (Fig. 1 of the paper).
//
// Guesmi et al. (ASPLOS 2021) proposed approximate multipliers as a
// structural defense against adversarial attacks. This example
// reproduces the paper's motivational study: the same two AxDNNs
// (FFNN and LeNet-5 with approximate multipliers) look *defensive*
// under an linf PGD attack — their curves sit above the accurate
// model's — yet lose that advantage under an l2 contrast-reduction
// attack, where the approximate FFNN falls below its accurate twin.
//
//	go run ./examples/defensive_approximation
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/axnn"
	"repro/internal/core"
	"repro/internal/modelzoo"
)

func main() {
	eps := []float64{0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.5, 1, 1.5, 2}

	// LeNet-5: accurate quantized vs Ax17KS (conv multipliers).
	lenet, err := modelzoo.Get("lenet5-digits")
	if err != nil {
		log.Fatal(err)
	}
	lenetVictims, err := core.BuildAxVictims(lenet.Net, lenet.Test,
		[]string{"mul8u_1JFF", "mul8u_17KS"}, axnn.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// FFNN has no conv layers: approximate the dense products instead
	// (the paper's FFNN study), with the L1G mirror-adder array design.
	ffnn, err := modelzoo.Get("ffnn-digits")
	if err != nil {
		log.Fatal(err)
	}
	ffnnVictims, err := core.BuildAxVictims(ffnn.Net, ffnn.Test,
		[]string{"mul8u_1JFF", "mul8u_L1G"}, axnn.Options{ApproxDense: true})
	if err != nil {
		log.Fatal(err)
	}

	opts := core.Options{Samples: 200, Seed: 11}
	for _, atk := range []attack.Attack{attack.ByName("PGD-linf"), attack.ByName("CR-l2")} {
		fmt.Printf("=== %s ===\n", atk.Name())
		gl := core.RobustnessGrid(lenet.Net, lenetVictims, lenet.Test, atk, eps, opts)
		fmt.Printf("[LeNet-5]\n%s", gl)
		gf := core.RobustnessGrid(ffnn.Net, ffnnVictims, ffnn.Test, atk, eps, opts)
		fmt.Printf("[FFNN]\n%s", gf)
		summarize(gl, "17KS")
		summarize(gf, "L1G")
		fmt.Println()
	}
	fmt.Println("Conclusion: the defensive behaviour is attack-dependent, not universal.")
}

// summarize counts how often the approximate column beats the accurate
// one — the "defensive" budgets.
func summarize(g *core.Grid, ax string) {
	acc, _ := g.Column(g.Victims[0])
	axc, _ := g.Column(g.Victims[1])
	wins := 0
	for i := range acc {
		if axc[i] > acc[i] {
			wins++
		}
	}
	fmt.Printf("-> Ax%s above accurate on %d/%d budgets\n", ax, wins, len(acc))
}
