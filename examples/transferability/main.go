// Transferability (Table II): adversarial examples crafted on an
// accurate LeNet-5 transfer to an approximate AlexNet — and vice versa
// — even though the adversary knows neither the victim's architecture
// nor its inexactness.
//
//	go run ./examples/transferability
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/axnn"
	"repro/internal/core"
	"repro/internal/modelzoo"
)

func main() {
	atk := attack.ByName("BIM-linf")
	const eps = 0.05
	opts := core.Options{Samples: 200, Seed: 17}

	lenet, err := modelzoo.Get("lenet5-digits32")
	if err != nil {
		log.Fatal(err)
	}
	alex, err := modelzoo.Get("alexnet-digits")
	if err != nil {
		log.Fatal(err)
	}

	// Each victim runs its dataset-appropriate multiplier (the paper
	// filters multipliers by error resilience per network).
	axLenet, err := core.BuildAxVictims(lenet.Net, lenet.Test, []string{"mul8u_17KS"}, axnn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	axAlex, err := core.BuildAxVictims(alex.Net, alex.Test, []string{"mul8u_KEM"}, axnn.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("BIM-linf eps=%.2f on the 32x32x3 digit set (X/Y = accuracy before/after)\n\n", eps)
	cells := []struct {
		label  string
		source *modelzoo.Model
		victim core.Victim
	}{
		{"AccL5  -> AxL5 ", lenet, axLenet[0]},
		{"AccL5  -> AxAlx", lenet, axAlex[0]},
		{"AccAlx -> AxL5 ", alex, axLenet[0]},
		{"AccAlx -> AxAlx", alex, axAlex[0]},
	}
	for _, c := range cells {
		r := core.Transfer(c.source.Net, c.victim, c.source.Test, atk, eps, opts)
		fmt.Printf("  %s : %3.0f/%-3.0f\n", c.label, r.CleanAcc, r.AdvAcc)
	}
	fmt.Println("\nAttacks transfer across both exactness and architecture boundaries (A2).")
}
