// Energy vs robustness: the paper's premise (approximation saves
// energy) against its finding (approximation is not a defense), in one
// table. For each multiplier of the MNIST set, estimate the relative
// hardware cost and measure robustness under the strongest attack at a
// stealthy budget.
//
//	go run ./examples/energy_tradeoff
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/axmult"
	"repro/internal/axnn"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/modelzoo"
	"repro/internal/nn"
)

func main() {
	m, err := modelzoo.Get("lenet5-digits")
	if err != nil {
		log.Fatal(err)
	}
	victims, err := core.BuildAxVictims(m.Net, m.Test, axmult.MNISTSet(), axnn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	const eps = 0.05
	g := core.RobustnessGrid(m.Net, victims, m.Test, attack.ByName("BIM-linf"),
		[]float64{0, eps}, core.Options{Samples: 200, Seed: 7})

	macs := lenetMACs(m.Net)
	fmt.Printf("LeNet-5: %d conv MACs + %d dense MACs per inference\n\n", macs.Conv, macs.Dense)
	fmt.Printf("%-14s %8s %8s %10s %12s %16s\n", "design", "energy", "area", "clean %", "robust %", "MAC-energy/inf")
	for vi, name := range g.Victims {
		c, err := energy.Estimate(name)
		if err != nil {
			log.Fatal(err)
		}
		e, err := energy.InferenceEnergy(macs, name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %7.2fx %7.2fx %10.1f %12.1f %16.0f\n",
			name, c.Energy, c.Area, g.Acc[0][vi], g.Acc[1][vi], e)
	}
	fmt.Printf("\nBIM-linf eps=%.2f: energy savings and robustness are uncorrelated —\n", eps)
	fmt.Println("approximation is an efficiency tool, not a defense (the paper's answer A1).")
}

// lenetMACs derives per-inference MAC counts from the trained network's
// actual layer geometry.
func lenetMACs(net *nn.Network) energy.InferenceMACs {
	var layers []energy.LayerGeom
	h, w := 28, 28
	for _, l := range net.Layers {
		switch t := l.(type) {
		case *nn.Conv2D:
			oh, ow := t.OutSize(h, w)
			layers = append(layers, energy.LayerGeom{
				Kind: "conv", InC: t.InC, OutC: t.OutC, K: t.K, OutH: oh, OutW: ow,
			})
			h, w = oh, ow
		case *nn.AvgPool2D:
			h, w = h/t.K, w/t.K
		case *nn.Dense:
			layers = append(layers, energy.LayerGeom{Kind: "dense", In: t.In, Out: t.Out})
		}
	}
	return energy.CountMACs(layers)
}
