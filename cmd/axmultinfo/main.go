// Command axmultinfo prints exhaustive error metrics for the registered
// approximate multipliers (the repo's stand-ins for the EvoApprox8b
// designs the paper uses). It reproduces the MAE% figures quoted in
// Section IV-B of the paper; -energy adds the relative hardware-cost
// proxies (the EvoApprox-style power/area/delay columns).
package main

import (
	"flag"
	"fmt"

	"repro/internal/axmult"
	"repro/internal/cli"
	"repro/internal/energy"
	"repro/internal/errmodel"
)

func main() {
	all := flag.Bool("all", false, "report every registered design, not just the paper's sets")
	withEnergy := flag.Bool("energy", false, "add relative energy/area/delay columns")
	flag.Parse()

	names := append(axmult.MNISTSet(), axmult.CIFARSet()[1:]...)
	names = append(names, "mul8u_L1G")
	if *all {
		names = axmult.Names()
	}
	fmt.Printf("%-14s %10s %10s %10s %10s %8s", "multiplier", "MAE%", "WCE%", "MRE%", "bias", "errprob")
	if *withEnergy {
		fmt.Printf(" %8s %8s %8s", "energy", "area", "delay")
	}
	fmt.Println()
	for _, n := range names {
		m, err := errmodel.MeasureNamed(n)
		if err != nil {
			cli.Fail("axmultinfo", err)
		}
		fmt.Printf("%-14s %10.4f %10.3f %10.3f %+10.1f %8.3f", m.Name, m.MAEP, m.WCEP, m.MRE, m.Bias, m.EP)
		if *withEnergy {
			c, err := energy.Estimate(n)
			if err != nil {
				cli.Fail("axmultinfo", err)
			}
			fmt.Printf(" %7.2fx %7.2fx %7.2fx", c.Energy, c.Area, c.Delay)
		}
		fmt.Println()
	}
}
