// Command axquant reproduces the paper's Fig. 8: adversarial robustness
// of the quantized versus non-quantized accurate LeNet-5 across all ten
// attacks and the full perturbation sweep, plus (with -mult) the
// adversarial quantization-vs-approximation comparison of Section IV-D.
//
// Usage:
//
//	axquant                      # Fig. 8 curves (float vs 8-bit)
//	axquant -bits 4              # different Qlevel
//	axquant -mult mul8u_L40      # add an AxDNN column (Section IV-D)
package main

import (
	"flag"
	"fmt"

	"repro/internal/attack"
	"repro/internal/axnn"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/modelzoo"
)

func main() {
	model := flag.String("model", "lenet5-digits", "trained model")
	n := flag.Int("n", 300, "test samples")
	bits := flag.Uint("bits", 8, "quantization level (Qlevel)")
	mult := flag.String("mult", "", "optional approximate multiplier column")
	epsList := flag.String("eps", "0,0.05,0.1,0.15,0.2,0.25,0.5,1,1.5,2", "comma-separated perturbation budgets")
	flag.Parse()

	m, err := modelzoo.Get(*model)
	if err != nil {
		cli.Fail("axquant", err)
	}
	victims, err := core.QuantPair(m.Net, m.Test, *bits)
	if err != nil {
		cli.Fail("axquant", err)
	}
	if *mult != "" {
		ax, err := core.BuildAxVictims(m.Net, m.Test, []string{*mult}, axnn.Options{Bits: *bits})
		if err != nil {
			cli.Fail("axquant", err)
		}
		victims = append(victims, ax...)
	}

	eps, err := cli.ParseEps(*epsList)
	if err != nil {
		cli.Fail("axquant", err)
	}
	for _, atk := range attack.TableI() {
		g := core.RobustnessGrid(m.Net, victims, m.Test, atk, eps, core.Options{Samples: *n, Seed: 5})
		fmt.Print(g)
		q, qok := g.Column(victims[1].Name)
		f, fok := g.Column("float")
		if qok && fok {
			var qWins int
			for i := range q {
				if q[i] >= f[i] {
					qWins++
				}
			}
			fmt.Printf("-> quantized >= float on %d/%d budgets\n\n", qWins, len(eps))
		}
	}
}
