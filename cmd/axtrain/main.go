// Command axtrain trains the experiment models (step 1 of the paper's
// methodology, Fig. 3) and caches their weights under testdata/models.
// Subsequent experiment runs — tests, benches, the other commands —
// load the cached weights instead of retraining.
//
// With -harden it trains the adversarially fine-tuned variant of each
// named model instead (defense.AdvTrain), registered and persisted
// under its derived id — "<base>+advtrain:<attack>:…" — which specs
// and axserve jobs then load like any zoo model. Derived ids can also
// be passed directly as arguments.
//
// Usage:
//
//	axtrain                                  # train every model that is not cached yet
//	axtrain lenet5-digits alexnet-objects
//	axtrain -harden PGD-linf -harden-eps 0.1 lenet5-digits   # 1-epoch PGD-AT variant
//	axtrain 'lenet5-digits+advtrain:PGD-linf:eps=0.1:ratio=0.5:epochs=1:seed=7'
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/cli"
	"repro/internal/defense"
	"repro/internal/modelzoo"
)

func main() {
	harden := flag.String("harden", "", "adversarially fine-tune each named model, crafting with this attack (e.g. PGD-linf)")
	hardenEps := flag.Float64("harden-eps", 0.1, "advtrain crafting budget")
	ratio := flag.Float64("ratio", 0, "fraction of samples adversarially replaced per epoch (0 = default 0.5)")
	epochs := flag.Int("epochs", 0, "advtrain fine-tuning epochs (0 = default 1)")
	seed := flag.Int64("seed", 7, "advtrain seed")
	flag.Parse()

	names := flag.Args()
	if len(names) == 0 {
		names = modelzoo.Names()
	}
	if *harden != "" {
		cfg := defense.AdvTrainConfig{Attack: *harden, Eps: *hardenEps, Ratio: *ratio, Epochs: *epochs, Seed: *seed}
		if err := cfg.Validate(); err != nil {
			cli.Fail("axtrain", err)
		}
		for i, n := range names {
			names[i] = defense.HardenedID(n, cfg)
		}
	}
	for _, n := range names {
		start := time.Now()
		m, err := modelzoo.Get(n)
		if err != nil {
			cli.Fail("axtrain", err)
		}
		fmt.Printf("%-18s clean accuracy %.1f%%  (%s)\n", n, m.CleanAcc, time.Since(start).Round(time.Millisecond))
	}
}
