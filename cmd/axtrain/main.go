// Command axtrain trains the experiment models (step 1 of the paper's
// methodology, Fig. 3) and caches their weights under testdata/models.
// Subsequent experiment runs — tests, benches, the other commands —
// load the cached weights instead of retraining.
//
// Usage:
//
//	axtrain            # train every model that is not cached yet
//	axtrain lenet5-digits alexnet-objects
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/modelzoo"
)

func main() {
	names := os.Args[1:]
	if len(names) == 0 {
		names = modelzoo.Names()
	}
	for _, n := range names {
		start := time.Now()
		m, err := modelzoo.Get(n)
		if err != nil {
			cli.Fail("axtrain", err)
		}
		fmt.Printf("%-18s clean accuracy %.1f%%  (%s)\n", n, m.CleanAcc, time.Since(start).Round(time.Millisecond))
	}
}
