// Command axvet runs the repo's project-specific static-analysis
// suite (internal/analysis) over the module: determinism, cachekey,
// and ctxhygiene over the AST, and — with -bce — the bounds-check
// gate over the tiled kernels. It exits 1 when findings survive
// suppression, so CI can use it as a blocking job.
//
// Usage:
//
//	axvet [-json] [patterns...]   # AST analyzers; default ./internal/... ./cmd/...
//	axvet -bce [-json]            # bounds-check gate over internal/axnn
//	axvet -list                   # registered analyzers and their contracts
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array instead of vet-style lines")
		bce     = flag.Bool("bce", false, "run the bounds-check gate (go build -d=ssa/check_bce) instead of the AST analyzers")
		list    = flag.Bool("list", false, "list registered analyzers and exit")
		only    = flag.String("only", "", "run a single analyzer by name")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-12s %s\n", "bcegate", "(-bce) no bounds checks in gated kernel innermost loops")
		return
	}

	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		fatal(err)
	}

	var diags []analysis.Diagnostic
	if *bce {
		policy, err := analysis.LoadBCEPolicy(filepath.Join(root, "internal", "analysis", "bce_policy.txt"))
		if err != nil {
			fatal(err)
		}
		diags, err = analysis.RunBCE(root, "./internal/axnn", policy)
		if err != nil {
			fatal(err)
		}
	} else {
		patterns := flag.Args()
		if len(patterns) == 0 || (len(patterns) == 1 && patterns[0] == "./...") {
			patterns = []string{"./internal/...", "./cmd/..."}
		}
		loader, err := analysis.NewLoader(root)
		if err != nil {
			fatal(err)
		}
		pkgs, err := loader.Load(patterns...)
		if err != nil {
			fatal(err)
		}
		analyzers := analysis.Analyzers()
		if *only != "" {
			a, ok := analysis.ByName(*only)
			if !ok {
				fatal(fmt.Errorf("axvet: unknown analyzer %q", *only))
			}
			analyzers = []*analysis.Analyzer{a}
		}
		diags = analysis.Run(pkgs, analyzers)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
