// Command axserve serves robustness suites over HTTP: a job-oriented
// façade (internal/service) over the experiment engine. Clients POST
// experiment.Spec JSON to /v1/suites and get back a job ID derived
// from the spec's canonical content hash — identical suites
// deduplicate onto one job, however many clients submit them — then
// follow progress over SSE and fetch the finished report as JSON or
// CSV. All jobs share one crafted-batch/prediction cache, whose
// hit/miss/eviction counters are scrapable at /metrics.
//
//	axserve -addr :8080 -jobs 2
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST --data-binary @testdata/specs/fig4.json localhost:8080/v1/suites
//	curl -s localhost:8080/v1/suites/<id>
//	curl -N localhost:8080/v1/suites/<id>/events
//	curl -s "localhost:8080/v1/suites/<id>/report?format=csv"
//	curl -s -X DELETE localhost:8080/v1/suites/<id>
//
// On SIGTERM/SIGINT the server stops accepting work and drains:
// running and queued jobs get -drain to finish before being cancelled.
//
// With -data-dir set, the server persists across restarts: crafted
// batches and predictions go to a size-bounded disk cache tier
// (<dir>/cache, capped by -disk-mb), and every job's submission, event
// stream, and finished report go to a write-ahead log (<dir>/wal). A
// restarted server re-serves finished reports byte-identically without
// recompute and re-enqueues jobs the previous process never finished —
// including those force-cancelled by an expired drain — under the same
// job IDs. Without -data-dir, nothing touches disk (today's behavior).
//
// With -peers set, multi-grid suites shard across nodes: this node
// keeps some grids, fans the rest out to its peers' internal shard
// endpoints, and merges the partial reports — byte-identical to a
// single-node run. A peer that fails mid-shard degrades to local
// fallback, never to a failed job. Nodes sharing one -data-dir also
// share the disk cache tier, so a batch crafted on one shard replays
// everywhere. -cell-workers > 1 additionally runs that many cells of
// each suite concurrently on this node.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	jobs := flag.Int("jobs", 2, "suites running concurrently (each still parallelises internally)")
	queue := flag.Int("queue", 64, "queued jobs accepted beyond the running ones")
	cacheMB := flag.Int64("cache-mb", 0, "crafted-batch cache budget in MiB (0 = default 128)")
	retain := flag.Int("retain", 0, "finished jobs retained for dedup/replay (0 = default 1024)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown drain timeout")
	debugAddr := flag.String("debug-addr", "", "pprof listen address, e.g. 127.0.0.1:6060 (empty = disabled)")
	dataDir := flag.String("data-dir", "", "persistence root: disk cache tier + write-ahead job log (empty = memory only)")
	diskMB := flag.Int64("disk-mb", 512, "disk cache tier retention bound in MiB (with -data-dir)")
	peers := flag.String("peers", "", "comma-separated peer axserve base URLs to shard multi-grid suites across")
	cellWorkers := flag.Int("cell-workers", 1, "suite cells each job runs concurrently on this node (1 = serial)")
	flag.Parse()

	if *debugAddr != "" {
		// Live kernel profiles under server load: a separate listener so
		// the profiling surface is never exposed on the service address.
		//
		//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=30
		//	curl -s http://127.0.0.1:6060/debug/pprof/heap > heap.pb.gz
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("axserve: pprof on http://%s/debug/pprof/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dmux); err != nil {
				log.Printf("axserve: pprof listener: %v", err)
			}
		}()
	}

	cfg := core.CacheConfig{}
	if *cacheMB < 0 {
		cli.Fail("axserve", fmt.Errorf("negative -cache-mb %d", *cacheMB))
	}
	if *cacheMB > 0 {
		// CraftBudget counts float32 elements, not bytes.
		cfg.CraftBudget = *cacheMB << 20 / 4
	}
	var wal *store.Store
	if *dataDir != "" {
		if *diskMB <= 0 {
			cli.Fail("axserve", fmt.Errorf("non-positive -disk-mb %d", *diskMB))
		}
		// Two stores, two durability contracts: the cache tier is a
		// size-bounded best-effort artifact cache (async writes, oldest
		// segments GCed); the WAL is the job-correctness record (synced
		// writes, unbounded — its growth is bounded by -retain eviction
		// and suite sizes, not by dropping records a resume might need).
		diskCache, err := store.Open(store.Options{
			Dir:      *dataDir + "/cache",
			MaxBytes: *diskMB << 20,
		})
		if err != nil {
			cli.Fail("axserve", err)
		}
		defer diskCache.Close()
		cfg.Disk = diskCache
		wal, err = store.Open(store.Options{Dir: *dataDir + "/wal", Sync: true})
		if err != nil {
			cli.Fail("axserve", err)
		}
		defer wal.Close()
		log.Printf("axserve: persisting to %s (cache bound %d MiB)", *dataDir, *diskMB)
	}
	peerURLs, err := cli.ParsePeers(*peers)
	if err != nil {
		cli.Fail("axserve", err)
	}
	if *cellWorkers < 0 {
		cli.Fail("axserve", fmt.Errorf("negative -cell-workers %d", *cellWorkers))
	}
	m := service.NewManager(service.Config{
		Workers:      *jobs,
		QueueDepth:   *queue,
		Cache:        core.NewCache(cfg),
		MaxJobs:      *retain,
		Log:          wal,
		Peers:        peerURLs,
		CellParallel: *cellWorkers,
	})
	if len(peerURLs) > 0 {
		log.Printf("axserve: sharding multi-grid suites across %d peers", len(peerURLs))
	}
	srv := &http.Server{Addr: *addr, Handler: service.NewHandler(m)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("axserve: listening on %s (%d concurrent jobs)", *addr, *jobs)

	select {
	case err := <-errCh:
		// The listener died on its own (bad address, port in use).
		cli.Fail("axserve", err)
	case <-ctx.Done():
	}

	log.Printf("axserve: draining (up to %s)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain the job pool first: when jobs finish (or the deadline
	// force-cancels them), their SSE streams close, which lets the
	// HTTP shutdown below complete instead of hanging on subscribers.
	if err := m.Close(dctx); err != nil {
		log.Printf("axserve: forced drain: %v", err)
	}
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		srv.Close()
	}
	log.Printf("axserve: bye")
}
