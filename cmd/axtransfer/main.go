// Command axtransfer reproduces the paper's Table II: transferability
// of adversarial examples crafted on one (accurate) architecture to
// AxDNN victims of the same and the other architecture, on both
// datasets, with BIM-linf at eps = 0.05 by default. -attack swaps in
// any other crafter — including the universal/momentum family
// (UAP, MIFGSM) and restarted PGD — for the same protocol.
//
// Within each dataset both architectures consume the same input
// geometry (28x28 digits are presented as 32x32x3 to both LeNet-5 and
// AlexNet), so a perturbed image crafted on one model replays directly
// on the other — the paper's black-box transfer scenario. Each
// (source, victim) cell is one experiment.Spec with victim_model set,
// all run on a single engine; repeated cells (same source and victim
// test set) replay from the engine cache. Cells with different victim
// models craft afresh: the cache keys on the victim test set's
// identity, and each model carries its own test-set instance.
//
// Usage:
//
//	axtransfer [-eps 0.05] [-n 300] [-mult mul8u_17KS] [-progress]
//	axtransfer -attack MIFGSM-linf               # momentum transfer
//	axtransfer -attack UAP-linf                  # universal transfer
//	axtransfer -attack PGD-linf -restarts 3
//	axtransfer -spec testdata/specs/table2-digits-cross.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/experiment"
)

func main() {
	specPath := flag.String("spec", "", "run one transfer cell declared in this JSON spec file")
	atkName := flag.String("attack", "BIM-linf", "attack crafted on the source model")
	eps := flag.Float64("eps", 0.05, "perturbation budget")
	n := flag.Int("n", 300, "test samples per cell")
	mult := flag.String("mult", "", "multiplier for all Ax victims (default: 17KS for LeNet, KEM for AlexNet)")
	restarts := flag.Int("restarts", 0, "PGD random restarts (0 or 1 = plain PGD)")
	progress := flag.Bool("progress", false, "stream per-cell progress to stderr")
	flag.Parse()

	var params *experiment.AttackParams
	if *restarts > 1 {
		params = &experiment.AttackParams{Restarts: *restarts}
	}
	// Each cell sweeps the clean row plus the budget — unless the
	// budget *is* the clean row, which spec validation (rightly)
	// rejects as a duplicate.
	cellEps := []float64{0}
	if core.EpsKey(*eps) != 0 {
		cellEps = append(cellEps, *eps)
	}

	var engineOpts []experiment.Option
	if *progress {
		engineOpts = append(engineOpts, experiment.WithProgress(experiment.Progress(os.Stderr)))
	}
	eng := experiment.New(engineOpts...)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *specPath != "" {
		spec, err := experiment.Load(*specPath)
		if err != nil {
			cli.Fail("axtransfer", err)
		}
		// Explicitly set flags override the spec, matching axrobust:
		// a checked-in cell can be replayed at a different scale.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "n":
				spec.Samples = *n
			case "eps":
				spec.Eps = cellEps
			case "mult":
				spec.Multipliers = []string{*mult}
			case "attack":
				spec.Attacks = []string{*atkName}
			case "restarts":
				// Merge into the spec's params: an explicit -restarts
				// must not discard momentum/uap_iters the spec set.
				if spec.AttackParams == nil {
					spec.AttackParams = &experiment.AttackParams{}
				}
				spec.AttackParams.Restarts = *restarts
			}
		})
		rep, err := eng.Run(ctx, spec)
		if err != nil {
			cli.Fail("axtransfer", err)
		}
		fmt.Print(rep)
		return
	}

	fmt.Printf("Transferability (Table II): %s eps=%g\n", *atkName, *eps)
	fmt.Printf("%-36s %-8s %s\n", "source -> victim", "dataset", "clean/adv")

	datasets := []struct {
		name  string
		lenet string
		alex  string
	}{
		{"digits", "lenet5-digits32", "alexnet-digits"},
		{"objects", "lenet5-objects", "alexnet-objects"},
	}
	for _, d := range datasets {
		for _, source := range []string{d.lenet, d.alex} {
			for _, victim := range []string{d.lenet, d.alex} {
				m := *mult
				if m == "" {
					m = "mul8u_KEM"
					if victim == d.lenet {
						m = "mul8u_17KS"
					}
				}
				spec := &experiment.Spec{
					Name:         source + "->" + victim,
					Model:        source,
					VictimModel:  victim,
					Multipliers:  []string{m},
					Attacks:      []string{*atkName},
					AttackParams: params,
					Eps:          cellEps,
					Samples:      *n,
					Seed:         17,
				}
				rep, err := eng.Run(ctx, spec)
				if err != nil {
					cli.Fail("axtransfer", err)
				}
				g := rep.Grids[0]
				// With -eps 0 the cell has a single (clean) row.
				fmt.Printf("%-36s %-8s %3.0f/%-3.0f\n", source+" -> Ax("+victim+")", d.name, g.Acc[0][0], g.Acc[len(g.Acc)-1][0])
			}
		}
	}
}
