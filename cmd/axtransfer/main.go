// Command axtransfer reproduces the paper's Table II: transferability
// of adversarial examples crafted on one (accurate) architecture to
// AxDNN victims of the same and the other architecture, on both
// datasets, with BIM-linf at eps = 0.05.
//
// Within each dataset both architectures consume the same input
// geometry (28x28 digits are presented as 32x32x3 to both LeNet-5 and
// AlexNet), so a perturbed image crafted on one model replays directly
// on the other — the paper's black-box transfer scenario.
//
// Usage:
//
//	axtransfer [-eps 0.05] [-n 300] [-mult mul8u_17KS]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/attack"
	"repro/internal/axnn"
	"repro/internal/core"
	"repro/internal/modelzoo"
)

func main() {
	eps := flag.Float64("eps", 0.05, "perturbation budget")
	n := flag.Int("n", 300, "test samples per cell")
	mult := flag.String("mult", "", "multiplier for all Ax victims (default: 17KS for LeNet, KEM for AlexNet)")
	flag.Parse()

	atk := attack.ByName("BIM-linf")
	fmt.Printf("Transferability (Table II): %s eps=%g\n", atk.Name(), *eps)
	fmt.Printf("%-36s %-8s %s\n", "source -> victim", "dataset", "clean/adv")

	datasets := []struct {
		name  string
		lenet string
		alex  string
	}{
		{"digits", "lenet5-digits32", "alexnet-digits"},
		{"objects", "lenet5-objects", "alexnet-objects"},
	}
	for _, d := range datasets {
		for _, source := range []string{d.lenet, d.alex} {
			for _, victim := range []string{d.lenet, d.alex} {
				m := *mult
				if m == "" {
					m = "mul8u_KEM"
					if victim == d.lenet {
						m = "mul8u_17KS"
					}
				}
				res, err := runCell(source, victim, m, atk, *eps, *n)
				if err != nil {
					fail(err)
				}
				fmt.Printf("%-36s %-8s %3.0f/%-3.0f\n", source+" -> Ax("+victim+")", d.name, res.CleanAcc, res.AdvAcc)
			}
		}
	}
}

func runCell(source, victim, mult string, atk attack.Attack, eps float64, n int) (core.TransferResult, error) {
	src, err := modelzoo.Get(source)
	if err != nil {
		return core.TransferResult{}, err
	}
	vic, err := modelzoo.Get(victim)
	if err != nil {
		return core.TransferResult{}, err
	}
	victims, err := core.BuildAxVictims(vic.Net, vic.Test, []string{mult}, axnn.Options{})
	if err != nil {
		return core.TransferResult{}, err
	}
	return core.Transfer(src.Net, victims[0], vic.Test, atk, eps, core.Options{Samples: n, Seed: 17}), nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "axtransfer:", err)
	os.Exit(1)
}
