// Command axtransfer reproduces the paper's Table II: transferability
// of adversarial examples crafted on one (accurate) architecture to
// AxDNN victims of the same and the other architecture, on both
// datasets, with BIM-linf at eps = 0.05.
//
// Within each dataset both architectures consume the same input
// geometry (28x28 digits are presented as 32x32x3 to both LeNet-5 and
// AlexNet), so a perturbed image crafted on one model replays directly
// on the other — the paper's black-box transfer scenario. Each
// (source, victim) cell is one experiment.Spec with victim_model set,
// all run on a single engine; repeated cells (same source and victim
// test set) replay from the engine cache. Cells with different victim
// models craft afresh: the cache keys on the victim test set's
// identity, and each model carries its own test-set instance.
//
// Usage:
//
//	axtransfer [-eps 0.05] [-n 300] [-mult mul8u_17KS] [-progress]
//	axtransfer -spec testdata/specs/table2-digits-cross.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/cli"
	"repro/internal/experiment"
)

func main() {
	specPath := flag.String("spec", "", "run one transfer cell declared in this JSON spec file")
	eps := flag.Float64("eps", 0.05, "perturbation budget")
	n := flag.Int("n", 300, "test samples per cell")
	mult := flag.String("mult", "", "multiplier for all Ax victims (default: 17KS for LeNet, KEM for AlexNet)")
	progress := flag.Bool("progress", false, "stream per-cell progress to stderr")
	flag.Parse()

	var engineOpts []experiment.Option
	if *progress {
		engineOpts = append(engineOpts, experiment.WithProgress(experiment.Progress(os.Stderr)))
	}
	eng := experiment.New(engineOpts...)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *specPath != "" {
		spec, err := experiment.Load(*specPath)
		if err != nil {
			cli.Fail("axtransfer", err)
		}
		// Explicitly set flags override the spec, matching axrobust:
		// a checked-in cell can be replayed at a different scale.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "n":
				spec.Samples = *n
			case "eps":
				spec.Eps = []float64{0, *eps}
			case "mult":
				spec.Multipliers = []string{*mult}
			}
		})
		rep, err := eng.Run(ctx, spec)
		if err != nil {
			cli.Fail("axtransfer", err)
		}
		fmt.Print(rep)
		return
	}

	fmt.Printf("Transferability (Table II): BIM-linf eps=%g\n", *eps)
	fmt.Printf("%-36s %-8s %s\n", "source -> victim", "dataset", "clean/adv")

	datasets := []struct {
		name  string
		lenet string
		alex  string
	}{
		{"digits", "lenet5-digits32", "alexnet-digits"},
		{"objects", "lenet5-objects", "alexnet-objects"},
	}
	for _, d := range datasets {
		for _, source := range []string{d.lenet, d.alex} {
			for _, victim := range []string{d.lenet, d.alex} {
				m := *mult
				if m == "" {
					m = "mul8u_KEM"
					if victim == d.lenet {
						m = "mul8u_17KS"
					}
				}
				spec := &experiment.Spec{
					Name:        source + "->" + victim,
					Model:       source,
					VictimModel: victim,
					Multipliers: []string{m},
					Attacks:     []string{"BIM-linf"},
					Eps:         []float64{0, *eps},
					Samples:     *n,
					Seed:        17,
				}
				rep, err := eng.Run(ctx, spec)
				if err != nil {
					cli.Fail("axtransfer", err)
				}
				g := rep.Grids[0]
				fmt.Printf("%-36s %-8s %3.0f/%-3.0f\n", source+" -> Ax("+victim+")", d.name, g.Acc[0][0], g.Acc[1][0])
			}
		}
	}
}
