// Command axbench maintains the repo's in-tree perf artifact
// (BENCH_axnn.json) and gates CI on it.
//
// It reads `go test -bench` text output on stdin. Because absolute
// ns/op is machine-dependent, everything the gate enforces is a COST
// RATIO measured inside one process:
//
//   - The "paired" sub-benchmarks (BenchmarkTiledVsSeed/paired,
//     BenchmarkLUTVsDirect/paired) interleave the optimised and the
//     reference kernel round by round and report the median per-round
//     cost ratio as a "paired-rel" metric. Both sides of every ratio
//     run within milliseconds of each other under the same ambient
//     load, so the metric is stable even on a busy shared runner;
//     these synthetic entries are gated by default.
//
//   - Plain benchmarks are additionally recorded with rel = ns/op
//     divided by the seed kernel's ns/op from the same invocation
//     (median over invocations, minimum within one). Those windows are
//     seconds apart, so their quotient is informational by default —
//     load flaps faster than that on shared hardware.
//
//     # regenerate the committed baseline
//     for i in 1 2 3; do
//     go test -run '^$' -bench 'TiledVsSeed|LUTVsDirect' -benchtime 300ms -count=2 .
//     done | go run ./cmd/axbench -update BENCH_axnn.json
//
//     # CI regression gate: >10% paired-ratio regression fails
//     for i in 1 2 3; do
//     go test -run '^$' -bench 'TiledVsSeed|LUTVsDirect' -benchtime 300ms -count=2 .
//     done | go run ./cmd/axbench -baseline BENCH_axnn.json -gate 0.10
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cli"
)

// refBench is the normalisation anchor: the pre-PR kernel, always run
// in the same process as the benchmarks it normalises.
const refBench = "BenchmarkTiledVsSeed/seed"

// Baseline is the committed BENCH_axnn.json schema.
type Baseline struct {
	// Note documents the artifact for reviewers.
	Note string `json:"note"`
	// Ref is the benchmark every entry is normalised to.
	Ref string `json:"ref"`
	// Benchmarks maps benchmark name (CPU suffix stripped) to entry.
	Benchmarks map[string]*Entry `json:"benchmarks"`
}

// Entry is one benchmark's committed measurement.
type Entry struct {
	// NsPerOp is the absolute measurement on the machine that generated
	// the artifact — informational only, never gated.
	NsPerOp float64 `json:"ns_per_op"`
	// Rel is NsPerOp divided by the reference benchmark's NsPerOp from
	// the same run; this is what the gate compares.
	Rel float64 `json:"rel"`
	// Gate opts the entry into the regression gate. Entries whose
	// relative cost legitimately varies across hosts (worker-parallel
	// variants depend on core count) are recorded but not gated.
	Gate bool `json:"gate"`
	// MaxRel, when set, is an absolute requirement on Rel independent
	// of the committed value — e.g. the tiled kernel must stay at
	// rel <= 0.667 (a >= 1.5x speedup over the seed kernel).
	MaxRel float64 `json:"max_rel,omitempty"`
}

// pairedSuffix tags synthetic measurements parsed from a benchmark's
// "paired-rel" metric: the median per-round interleaved cost ratio the
// benchmark measured itself. Entries under these names hold a ratio,
// not a time, and are the ones the gate trusts.
//
// More generally, any custom "cache-*" metric a benchmark reports
// (BenchmarkWarmStoreCraft's persistent-tier hit/miss deltas) becomes
// a synthetic "name@unit" entry holding the metric's value directly —
// recorded in the committed baseline so the cache trajectory is
// reviewable, but never gated by default (counts, not costs).
const pairedSuffix = "@paired-rel"

// tiledPaired is the tentpole's acceptance entry: the interleaved
// tiled/seed cost ratio, which must stay at or below maxTiledRel
// (a >= 1.5x speedup) in every gated run.
const (
	tiledPaired = "BenchmarkTiledVsSeed/paired" + pairedSuffix
	maxTiledRel = 1.0 / 1.5
)

func isPaired(name string) bool { return strings.HasSuffix(name, pairedSuffix) }

// ungatedPaired names paired entries recorded for trajectory only:
// their ratios move with core count or scheduler noise rather than
// kernel quality, so they never hard-gate CI — policy in code, so a
// from-scratch -update cannot silently re-gate them.
var ungatedPaired = map[string]bool{
	"BenchmarkPlanExecutorVsSerial" + pairedSuffix: true, // parallel/serial ratio depends on host cores
	"BenchmarkTracedVsUntraced" + pairedSuffix:     true, // ~1.0 overhead ratio, within scheduler noise
}

// isSynthetic reports whether the entry holds a self-measured metric
// value (ratio or count) rather than a ns/op time to normalise.
func isSynthetic(name string) bool { return strings.Contains(name, "@") }

var (
	benchLine  = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op`)
	metricLine = regexp.MustCompile(`([\d.]+(?:[eE][-+]?\d+)?) (paired-rel|cache-[a-z-]+)`)
)

// parseBench splits `go test -bench` output into per-invocation
// groups (delimited by the "goos:" header each invocation prints) of
// benchmark name -> ns/op, stripping the -GOMAXPROCS suffix. Within a
// group, repeated measurements (go test -count=N) collapse to the
// MINIMUM ns/op: ambient load only ever adds time, so min-of-N
// estimates the quiet-machine cost of that invocation.
func parseBench(r io.Reader) ([]map[string]float64, error) {
	var groups []map[string]float64
	cur := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "goos:") && len(cur) > 0 {
			groups = append(groups, cur)
			cur = map[string]float64{}
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		if pms := metricLine.FindAllStringSubmatch(line, -1); pms != nil {
			// Self-measured metrics: a paired benchmark's interleaved
			// ratio, or a cache benchmark's hit/miss deltas. Each becomes
			// its own synthetic entry; the line's plain ns/op is only
			// meaningful for the cache benches (a paired bench's ns/op is
			// the sum of both kernels), but either way it is recorded
			// ungated, so keeping it is harmless and keeps parsing simple.
			for _, pm := range pms {
				v, err := strconv.ParseFloat(pm[1], 64)
				if err != nil {
					return nil, fmt.Errorf("axbench: bad %s in %q: %w", pm[2], line, err)
				}
				name := m[1] + "@" + pm[2]
				if prev, ok := cur[name]; !ok || v < prev {
					cur[name] = v
				}
			}
			if pms[0][2] == "paired-rel" {
				continue
			}
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("axbench: bad ns/op in %q: %w", line, err)
		}
		if prev, ok := cur[m[1]]; !ok || ns < prev {
			cur[m[1]] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("axbench: no benchmark lines on stdin")
	}
	return groups, nil
}

// minNs returns the minimum ns/op of name across all invocations.
func minNs(groups []map[string]float64, name string) (float64, bool) {
	best, ok := 0.0, false
	for _, g := range groups {
		if v, seen := g[name]; seen && (!ok || v < best) {
			best, ok = v, true
		}
	}
	return best, ok
}

// medianRel returns the median over invocations of name's relative
// cost. Synthetic paired entries carry their interleaved ratio
// directly; plain benchmarks are divided by ref's ns/op from the same
// invocation. The median discards invocations that caught a load burst
// mid-run; invocations missing either side contribute nothing.
func medianRel(groups []map[string]float64, name, ref string) (float64, bool) {
	var rs []float64
	for _, g := range groups {
		if v, ok := g[name]; ok {
			if isSynthetic(name) {
				rs = append(rs, v)
			} else if r, ok := g[ref]; ok {
				rs = append(rs, v/r)
			}
		}
	}
	if len(rs) == 0 {
		return 0, false
	}
	sort.Float64s(rs)
	if n := len(rs); n%2 == 1 {
		return rs[n/2], true
	} else {
		return (rs[n/2-1] + rs[n/2]) / 2, true
	}
}

// build derives a Baseline from the parsed invocations, preserving the
// per-entry gate policy of prev when given (so -update keeps Gate and
// MaxRel choices).
func build(groups []map[string]float64, prev *Baseline) (*Baseline, error) {
	if _, ok := minNs(groups, refBench); !ok {
		// A run without the reference can still refresh an existing
		// baseline's synthetic (value-typed) entries — the cache benches
		// run on their own. Building a baseline from scratch without the
		// reference is still a mistake.
		if prev == nil {
			return nil, fmt.Errorf("axbench: reference benchmark %s missing from run", refBench)
		}
	}
	b := &Baseline{
		Note:       "In-tree axnn kernel perf baseline. Gated entries (@paired-rel) are interleaved per-round cost ratios measured inside the benchmark itself; plain entries record cross-window ns/op quotients vs the seed kernel; @cache-* entries record the persistent cache tier's hit/miss deltas (counts, ungated). Entries a run does not re-measure are carried forward. Regenerate kernels: for i in 1 2 3; do go test -run '^$' -bench 'TiledVsSeed|LUTVsDirect' -benchtime 300ms -count=2 .; done | go run ./cmd/axbench -update BENCH_axnn.json; cache tier: go test -run '^$' -bench 'WarmStoreCraft' -benchtime 1x -count=3 . | go run ./cmd/axbench -update BENCH_axnn.json",
		Ref:        refBench,
		Benchmarks: map[string]*Entry{},
	}
	names := map[string]bool{}
	for _, g := range groups {
		for name := range g {
			names[name] = true
		}
	}
	for name := range names {
		rel, ok := medianRel(groups, name, refBench)
		if !ok {
			// A plain bench from an invocation that did not also run the
			// reference (the cache benches run on their own) has no
			// meaningful cross-machine ns/op to commit; its synthetic
			// @-metrics are value-typed and still make it in.
			fmt.Printf("axbench: skipping %s (never measured alongside %s)\n", name, refBench)
			continue
		}
		// Synthetic entries hold a self-measured value (no meaningful
		// ns/op); of those, only the paired ratios are gated by
		// default. Plain entries record cross-window quotients for
		// context.
		e := &Entry{Rel: rel, Gate: isPaired(name) && !ungatedPaired[name]}
		if !isSynthetic(name) {
			e.NsPerOp, _ = minNs(groups, name)
		}
		if name == tiledPaired {
			// The tentpole's acceptance floor is a repo invariant, not
			// a measured value: >= 1.5x over the seed kernel.
			e.MaxRel = maxTiledRel
		}
		if prev != nil {
			if pe, ok := prev.Benchmarks[name]; ok {
				e.Gate = pe.Gate
				e.MaxRel = pe.MaxRel
			}
		}
		b.Benchmarks[name] = e
	}
	// Entries the run did not re-measure are carried forward verbatim:
	// the kernel benches and the cache benches are regenerated by
	// different invocations, and -update from one must not erase the
	// other's committed trajectory.
	if prev != nil {
		for name, pe := range prev.Benchmarks {
			if _, ok := b.Benchmarks[name]; !ok {
				b.Benchmarks[name] = pe
			}
		}
	}
	return b, nil
}

// check compares the parsed invocations against the committed
// baseline; every finding is returned so CI logs show all regressions,
// not just the first.
func check(groups []map[string]float64, base *Baseline, gate float64) []string {
	var failures []string
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := base.Benchmarks[name]
		rel, ok := medianRel(groups, name, base.Ref)
		if !ok {
			// A gated entry the run skipped is a hole in the gate and
			// fails; ungated entries live in the baseline for trajectory
			// only, and CI legitimately runs subsets of the benches.
			if e.Gate {
				failures = append(failures, fmt.Sprintf("%s: gated entry missing from run (or never measured alongside %s)", name, base.Ref))
			} else {
				fmt.Printf("axbench:   %-52s not measured this run (ungated; skipped)\n", name)
			}
			continue
		}
		if name == base.Ref {
			continue
		}
		gated := " "
		if e.Gate {
			gated = "*"
		}
		fmt.Printf("axbench: %s %-52s rel=%.4g (baseline %.4g)\n", gated, name, rel, e.Rel)
		if e.Gate && rel > e.Rel*(1+gate) {
			failures = append(failures, fmt.Sprintf("%s: relative per-op cost %.3f exceeds baseline %.3f by more than %.0f%%",
				name, rel, e.Rel, gate*100))
		}
		if e.MaxRel > 0 && rel > e.MaxRel {
			failures = append(failures, fmt.Sprintf("%s: relative per-op cost %.3f exceeds required max %.3f (speedup %.2fx < required %.2fx)",
				name, rel, e.MaxRel, 1/rel, 1/e.MaxRel))
		}
	}
	return failures
}

func main() {
	update := flag.String("update", "", "write/refresh the baseline file from this run and exit")
	baseline := flag.String("baseline", "", "baseline file to gate against")
	gate := flag.Float64("gate", 0.10, "allowed relative per-op regression (0.10 = 10%)")
	flag.Parse()

	groups, err := parseBench(os.Stdin)
	if err != nil {
		cli.Fail("axbench", err)
	}
	if *update != "" {
		var prev *Baseline
		if data, err := os.ReadFile(*update); err == nil {
			prev = &Baseline{}
			if err := json.Unmarshal(data, prev); err != nil {
				cli.Fail("axbench", fmt.Errorf("parsing existing %s: %w", *update, err))
			}
		}
		b, err := build(groups, prev)
		if err != nil {
			cli.Fail("axbench", err)
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			cli.Fail("axbench", err)
		}
		if err := os.WriteFile(*update, append(data, '\n'), 0o644); err != nil {
			cli.Fail("axbench", err)
		}
		fmt.Printf("axbench: wrote %s (%d benchmarks, ref %s)\n", *update, len(b.Benchmarks), b.Ref)
		return
	}
	if *baseline == "" {
		cli.Fail("axbench", fmt.Errorf("need -baseline FILE or -update FILE"))
	}
	data, err := os.ReadFile(*baseline)
	if err != nil {
		cli.Fail("axbench", err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		cli.Fail("axbench", fmt.Errorf("parsing %s: %w", *baseline, err))
	}
	failures := check(groups, &base, *gate)
	for _, f := range failures {
		fmt.Fprintf(os.Stderr, "axbench: FAIL %s\n", f)
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
	fmt.Println("axbench: all benchmarks within gate")
}
