package main

import (
	"strings"
	"testing"
)

const sampleOut = `goos: linux
goarch: amd64
pkg: repro
BenchmarkTiledVsSeed/seed-8         	      10	 100000000 ns/op	       640.0 samples/sec
BenchmarkTiledVsSeed/tiled-8        	      30	  40000000 ns/op	      1600 samples/sec
BenchmarkTiledVsSeed/tiled-workers4-8	      60	  20000000 ns/op	      3200 samples/sec
BenchmarkTiledVsSeed/paired-8       	       5	 140000000 ns/op	      0.40 paired-rel	      2.50 x-speedup
BenchmarkLUTVsDirect/circuit-8      	      50	  20000000 ns/op	   43200000 macs/op
BenchmarkLUTVsDirect/lut-weight-major-8	  500	   2000000 ns/op	   43200000 macs/op
BenchmarkLUTVsDirect/paired-8       	      20	  22000000 ns/op	      0.10 paired-rel	     10.0 x-speedup
PASS
`

func mustParse(t *testing.T, out string) []map[string]float64 {
	t.Helper()
	groups, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	return groups
}

func TestParseBench(t *testing.T) {
	groups, err := parseBench(strings.NewReader(sampleOut))
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 {
		t.Fatalf("parsed %d groups, want 1", len(groups))
	}
	runs := groups[0]
	if len(runs) != 7 {
		t.Fatalf("parsed %d benchmarks, want 7: %v", len(runs), runs)
	}
	if got := runs["BenchmarkTiledVsSeed/paired"+pairedSuffix]; got != 0.40 {
		t.Fatalf("paired rel = %v, want the 0.40 paired-rel metric", got)
	}
	if _, ok := runs["BenchmarkTiledVsSeed/paired"]; ok {
		t.Fatal("a paired benchmark's raw ns/op must not become an entry")
	}
	if got := runs["BenchmarkTiledVsSeed/seed"]; got != 100000000 {
		t.Fatalf("seed ns/op = %v, want 100000000 (CPU suffix must be stripped)", got)
	}
	if got := runs["BenchmarkTiledVsSeed/tiled"]; got != 40000000 {
		t.Fatalf("tiled ns/op = %v", got)
	}
}

func TestParseBenchMinOfN(t *testing.T) {
	// go test -count=N emits one line per repetition; within one
	// invocation the parser must keep the minimum ns/op (ambient load
	// only adds time).
	out := `goos: linux
BenchmarkTiledVsSeed/seed-8	10	 120000000 ns/op
BenchmarkTiledVsSeed/seed-8	10	 100000000 ns/op
BenchmarkTiledVsSeed/seed-8	10	 150000000 ns/op
BenchmarkTiledVsSeed/tiled-8	30	  55000000 ns/op
BenchmarkTiledVsSeed/tiled-8	30	  40000000 ns/op
`
	groups, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(groups))
	}
	if got := groups[0]["BenchmarkTiledVsSeed/seed"]; got != 100000000 {
		t.Fatalf("seed ns/op = %v, want min-of-N 100000000", got)
	}
	if got := groups[0]["BenchmarkTiledVsSeed/tiled"]; got != 40000000 {
		t.Fatalf("tiled ns/op = %v, want min-of-N 40000000", got)
	}
}

func TestParseBenchGroups(t *testing.T) {
	// Concatenated invocations split at their goos: headers.
	out := `goos: linux
BenchmarkTiledVsSeed/seed-8	10	 100000000 ns/op
BenchmarkTiledVsSeed/tiled-8	30	  40000000 ns/op
PASS
goos: linux
BenchmarkTiledVsSeed/seed-8	10	 110000000 ns/op
BenchmarkTiledVsSeed/tiled-8	30	  42000000 ns/op
PASS
`
	groups, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	if got := groups[1]["BenchmarkTiledVsSeed/seed"]; got != 110000000 {
		t.Fatalf("second group seed = %v", got)
	}
}

func TestMedianRelAcrossGroups(t *testing.T) {
	// Three invocations: the middle per-invocation ratio wins, so one
	// invocation that caught a load burst on either side cannot skew
	// the gated value. minNs keeps the global minimum.
	out := `goos: linux
BenchmarkTiledVsSeed/seed-8	10	 100000000 ns/op
BenchmarkTiledVsSeed/tiled-8	30	  40000000 ns/op
goos: linux
BenchmarkTiledVsSeed/seed-8	10	 200000000 ns/op
BenchmarkTiledVsSeed/tiled-8	30	  84000000 ns/op
goos: linux
BenchmarkTiledVsSeed/seed-8	10	 100000000 ns/op
BenchmarkTiledVsSeed/tiled-8	30	  90000000 ns/op
`
	groups := mustParse(t, out)
	// Ratios: 0.40, 0.42, 0.90 -> median 0.42.
	rel, ok := medianRel(groups, "BenchmarkTiledVsSeed/tiled", refBench)
	if !ok || rel != 0.42 {
		t.Fatalf("median rel = %v ok=%v, want 0.42", rel, ok)
	}
	ns, ok := minNs(groups, "BenchmarkTiledVsSeed/tiled")
	if !ok || ns != 40000000 {
		t.Fatalf("min ns = %v, want 40000000", ns)
	}
}

func TestPairedEntries(t *testing.T) {
	// Paired entries carry their self-measured interleaved ratio and
	// are the gated ones; plain entries are contextual.
	base, err := build(mustParse(t, sampleOut), nil)
	if err != nil {
		t.Fatal(err)
	}
	tp := base.Benchmarks[tiledPaired]
	if tp == nil || tp.Rel != 0.40 || !tp.Gate || tp.NsPerOp != 0 {
		t.Fatalf("tiled paired entry = %+v, want gated rel 0.40 with no ns", tp)
	}
	if tp.MaxRel != maxTiledRel {
		t.Fatalf("tiled paired MaxRel = %v, want the 1.5x acceptance floor %v", tp.MaxRel, maxTiledRel)
	}
	lp := base.Benchmarks["BenchmarkLUTVsDirect/paired"+pairedSuffix]
	if lp == nil || lp.Rel != 0.10 || !lp.Gate || lp.MaxRel != 0 {
		t.Fatalf("lut paired entry = %+v, want gated rel 0.10, no floor", lp)
	}
	if e := base.Benchmarks["BenchmarkTiledVsSeed/tiled"]; e.Gate || e.Rel != 0.4 || e.NsPerOp != 40000000 {
		t.Fatalf("plain tiled entry = %+v, want ungated contextual rel 0.4", e)
	}
	if e := base.Benchmarks["BenchmarkLUTVsDirect/circuit"]; e.Gate || e.Rel != 0.2 {
		t.Fatalf("circuit entry = %+v, want ungated rel 0.2", e)
	}
}

func TestBuildRefMissingFromRun(t *testing.T) {
	// No invocation measured the tiled benchmark alongside the global
	// reference: the baseline cannot be built.
	out := `goos: linux
BenchmarkTiledVsSeed/tiled-8	30	  40000000 ns/op
`
	if _, err := build(mustParse(t, out), nil); err == nil {
		t.Fatal("want error when the reference benchmark is absent")
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\n")); err == nil {
		t.Fatal("want error on output with no benchmark lines")
	}
}

func TestBuildAndCheck(t *testing.T) {
	groups := mustParse(t, sampleOut)
	base, err := build(groups, nil)
	if err != nil {
		t.Fatal(err)
	}
	if base.Ref != refBench {
		t.Fatalf("ref = %q", base.Ref)
	}
	tiled := base.Benchmarks["BenchmarkTiledVsSeed/tiled"]
	if tiled == nil || tiled.Rel != 0.4 {
		t.Fatalf("tiled entry = %+v, want rel 0.4", tiled)
	}
	if seed := base.Benchmarks[refBench]; seed.Gate {
		t.Fatal("reference entry must not gate itself")
	}

	// The identical run passes its own baseline.
	if fails := check(groups, base, 0.10); len(fails) != 0 {
		t.Fatalf("self-check failed: %v", fails)
	}

	// A 20% regression of the gated paired ratio trips a 10% gate
	// (0.48 is still under the 0.667 floor, so exactly one failure).
	slow := []map[string]float64{{}}
	for k, v := range groups[0] {
		slow[0][k] = v
	}
	slow[0][tiledPaired] *= 1.2
	fails := check(slow, base, 0.10)
	if len(fails) != 1 || !strings.Contains(fails[0], tiledPaired) {
		t.Fatalf("gate failures = %v, want exactly the paired regression", fails)
	}

	// ...but the same slowdown passes a 25% gate.
	if fails := check(slow, base, 0.25); len(fails) != 0 {
		t.Fatalf("loose gate failed: %v", fails)
	}

	// An ungated plain entry never fails the relative gate.
	slow2 := []map[string]float64{{}}
	for k, v := range groups[0] {
		slow2[0][k] = v
	}
	slow2[0]["BenchmarkTiledVsSeed/tiled"] *= 2
	if fails := check(slow2, base, 0.10); len(fails) != 0 {
		t.Fatalf("ungated contextual entry must not gate: %v", fails)
	}
}

func TestCheckMaxRel(t *testing.T) {
	groups := mustParse(t, sampleOut)
	base, _ := build(groups, nil)
	// The 1.5x acceptance floor holds on the paired ratio regardless of
	// what the committed measurement was.
	if fails := check(groups, base, 0.10); len(fails) != 0 {
		t.Fatalf("paired rel 0.40 must satisfy the 0.667 floor: %v", fails)
	}
	slow := []map[string]float64{{}}
	for k, v := range groups[0] {
		slow[0][k] = v
	}
	// Ratio slips to 0.7: suppress the relative gate to isolate MaxRel.
	slow[0][tiledPaired] = 0.7
	base.Benchmarks[tiledPaired].Gate = false
	fails := check(slow, base, 0.10)
	if len(fails) != 1 || !strings.Contains(fails[0], "required max") {
		t.Fatalf("max_rel violation not reported: %v", fails)
	}
}

func TestBuildPreservesPolicy(t *testing.T) {
	groups := mustParse(t, sampleOut)
	prev, _ := build(groups, nil)
	prev.Benchmarks["BenchmarkTiledVsSeed/tiled-workers4"].Gate = true
	prev.Benchmarks["BenchmarkTiledVsSeed/tiled"].MaxRel = 1.0 / 1.5

	next, err := build(groups, prev)
	if err != nil {
		t.Fatal(err)
	}
	if !next.Benchmarks["BenchmarkTiledVsSeed/tiled-workers4"].Gate {
		t.Fatal("-update must keep a hand-set Gate=true from the previous baseline")
	}
	if next.Benchmarks["BenchmarkTiledVsSeed/tiled"].MaxRel == 0 {
		t.Fatal("-update must keep MaxRel from the previous baseline")
	}
}

// cacheOut is a WarmStoreCraft-style invocation: custom cache-* metrics
// alongside ns/op, no kernel benches in sight.
const cacheOut = `goos: linux
goarch: amd64
pkg: repro
BenchmarkWarmStoreCraft-8   	       3	  52000000 ns/op	      3.000 cache-disk-hits	         0 cache-disk-misses	         0 cache-errors
PASS
`

func TestParseCacheMetrics(t *testing.T) {
	groups := mustParse(t, cacheOut)
	runs := groups[0]
	if got := runs["BenchmarkWarmStoreCraft@cache-disk-hits"]; got != 3 {
		t.Fatalf("cache-disk-hits = %v, want 3", got)
	}
	if got, ok := runs["BenchmarkWarmStoreCraft@cache-disk-misses"]; !ok || got != 0 {
		t.Fatalf("cache-disk-misses = %v ok=%v, want 0", got, ok)
	}
	// Unlike paired benches, a cache bench's plain ns/op is a real
	// measurement and stays recorded.
	if got := runs["BenchmarkWarmStoreCraft"]; got != 52000000 {
		t.Fatalf("WarmStoreCraft ns/op = %v", got)
	}
}

func TestBuildMergesUnmeasuredPrevEntries(t *testing.T) {
	// prev holds the kernel benches; the new run measured only the cache
	// bench. -update must keep the kernel entries verbatim and add the
	// cache entries ungated.
	prev, err := build(mustParse(t, sampleOut), nil)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := build(append(mustParse(t, sampleOut), mustParse(t, cacheOut)...), prev)
	if err != nil {
		t.Fatal(err)
	}
	if e := merged.Benchmarks[tiledPaired]; e == nil || !e.Gate || e.MaxRel == 0 {
		t.Fatalf("kernel entry lost in merge: %+v", e)
	}
	hits := merged.Benchmarks["BenchmarkWarmStoreCraft@cache-disk-hits"]
	if hits == nil || hits.Rel != 3 || hits.Gate {
		t.Fatalf("cache entry = %+v, want ungated rel 3", hits)
	}
	if hits.NsPerOp != 0 {
		t.Fatalf("synthetic cache entry must not carry ns/op: %+v", hits)
	}
}

func TestCheckSkipsMissingUngatedEntries(t *testing.T) {
	// Baseline contains both kernel and cache entries; the CI perf job
	// runs only the kernels. Missing cache entries must not fail the
	// gate — but a missing GATED entry still must.
	full, err := build(append(mustParse(t, sampleOut), mustParse(t, cacheOut)...), nil)
	if err != nil {
		t.Fatal(err)
	}
	kernelsOnly := mustParse(t, sampleOut)
	if fails := check(kernelsOnly, full, 0.10); len(fails) != 0 {
		t.Fatalf("missing ungated entries must not fail: %v", fails)
	}
	full.Benchmarks["BenchmarkWarmStoreCraft@cache-disk-hits"].Gate = true
	fails := check(kernelsOnly, full, 0.10)
	if len(fails) != 1 || !strings.Contains(fails[0], "cache-disk-hits") {
		t.Fatalf("missing gated entry must fail: %v", fails)
	}
}
