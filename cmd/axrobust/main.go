// Command axrobust runs the paper's robustness evaluation (Algorithm 1):
// it crafts adversarial examples on the accurate float model and sweeps
// them over AxDNN victims built from a multiplier set, printing the
// robustness grid in the layout of the paper's Figs. 4-7.
//
// Examples:
//
//	axrobust -model lenet5-digits -attack BIM-linf
//	axrobust -model alexnet-objects -set cifar -attack RAU-linf -n 100
//	axrobust -model lenet5-digits -attack CR-l2 -mults mul8u_1JFF,mul8u_JV3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/attack"
	"repro/internal/axmult"
	"repro/internal/axnn"
	"repro/internal/core"
	"repro/internal/modelzoo"
)

func main() {
	model := flag.String("model", "lenet5-digits", "trained model: "+strings.Join(modelzoo.Names(), ", "))
	atkName := flag.String("attack", "BIM-linf", "attack name (FGM|BIM|PGD|CR|RAG|RAU)-(l2|linf)")
	mults := flag.String("mults", "mnist", `multiplier set: "mnist", "cifar", or comma-separated names`)
	epsList := flag.String("eps", "0,0.05,0.1,0.15,0.2,0.25,0.5,1,1.5,2", "comma-separated perturbation budgets")
	n := flag.Int("n", 300, "test samples")
	seed := flag.Int64("seed", 7, "attack randomness seed")
	bits := flag.Uint("bits", 8, "quantization level (Qlevel)")
	approxDense := flag.Bool("approx-dense", false, "route dense-layer products through the approximate multiplier")
	flag.Parse()

	atk := attack.ByName(*atkName)
	if atk == nil {
		fail(fmt.Errorf("unknown attack %q", *atkName))
	}
	var names []string
	switch *mults {
	case "mnist":
		names = axmult.MNISTSet()
	case "cifar":
		names = axmult.CIFARSet()
	default:
		names = strings.Split(*mults, ",")
	}
	eps, err := parseEps(*epsList)
	if err != nil {
		fail(err)
	}

	m, err := modelzoo.Get(*model)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s: clean float accuracy %.1f%%\n", *model, m.CleanAcc)

	victims, err := core.BuildAxVictims(m.Net, m.Test, names, axnn.Options{Bits: *bits, ApproxDense: *approxDense})
	if err != nil {
		fail(err)
	}
	grid := core.RobustnessGrid(m.Net, victims, m.Test, atk, eps, core.Options{Samples: *n, Seed: *seed})
	fmt.Print(grid)
	if loss, victim, at := grid.MaxAccuracyLoss(); loss > 0 {
		fmt.Printf("max accuracy loss: %.0f%% on %s at eps=%g\n", loss, victim, at)
	}
}

func parseEps(s string) ([]float64, error) {
	var eps []float64
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return nil, fmt.Errorf("bad eps %q: %w", tok, err)
		}
		eps = append(eps, v)
	}
	return eps, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "axrobust:", err)
	os.Exit(1)
}
