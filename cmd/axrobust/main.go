// Command axrobust runs the paper's robustness evaluation (Algorithm 1)
// as a declared suite: it crafts adversarial examples on the accurate
// float model and sweeps them over AxDNN victims built from a
// multiplier set, one grid per attack, in the layout of the paper's
// Figs. 4-7.
//
// A suite is declared either by flags or by a JSON spec file
// (internal/experiment.Spec); explicitly set flags override the spec's
// fields, so a checked-in spec can be re-run at a different scale with
// e.g. -n 8. Ctrl-C cancels the sweep cleanly mid-cell.
//
// Examples:
//
//	axrobust -model lenet5-digits -attack BIM-linf
//	axrobust -model lenet5-digits -attack BIM-linf,FGM-linf -progress
//	axrobust -spec testdata/specs/fig4.json -format csv
//	axrobust -spec testdata/specs/fig4c.json -n 8
//	axrobust -spec testdata/specs/universal.json                 # UAP/MI-FGSM suite
//	axrobust -model lenet5-digits -attack PGD-linf -restarts 5
//	axrobust -spec testdata/specs/defense.json -n 8              # defended suite
//	axrobust -model lenet5-digits -defense ensemble -defense-pool mnist -eot-samples 4
//
// With -server the suite is not run locally: the spec is submitted to
// a running axserve instance, progress is streamed back over SSE, and
// the report is fetched from the server — in csv/json mode as the
// server's bytes verbatim, so remote output is byte-identical to the
// server's. Identical specs deduplicate server-side onto one job:
//
//	axrobust -server http://localhost:8080 -spec testdata/specs/fig4.json -format csv
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/internal/attack"
	"repro/internal/cli"
	"repro/internal/experiment"
	"repro/internal/modelzoo"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	specPath := flag.String("spec", "", "run the suite declared in this JSON spec file")
	model := flag.String("model", "lenet5-digits", "trained model: "+strings.Join(modelzoo.Names(), ", "))
	atkNames := flag.String("attack", "BIM-linf", "comma-separated attack names, from: "+strings.Join(attack.Names(), ", "))
	mults := flag.String("mults", "mnist", `multiplier set: "mnist", "cifar", or comma-separated names`)
	epsList := flag.String("eps", "0,0.05,0.1,0.15,0.2,0.25,0.5,1,1.5,2", "comma-separated perturbation budgets")
	n := flag.Int("n", 300, "test samples")
	seed := flag.Int64("seed", 7, "attack randomness seed")
	momentum := flag.Float64("momentum", 0, "MI-FGSM momentum decay mu (0 = attack default)")
	restarts := flag.Int("restarts", 0, "PGD random restarts (0 or 1 = plain PGD)")
	uapIters := flag.Int("uap-iters", 0, "UAP passes over the sample set (0 = attack default)")
	defKind := flag.String("defense", "", `defenses to evaluate: "advtrain", "ensemble", or both comma-separated`)
	defAttack := flag.String("defense-attack", "", "adversarial-training crafting attack (e.g. PGD-linf)")
	defEps := flag.Float64("defense-eps", 0, "adversarial-training crafting budget")
	defRatio := flag.Float64("defense-ratio", 0, "fraction of samples adversarially replaced per epoch (0 = default 0.5)")
	defEpochs := flag.Int("defense-epochs", 0, "adversarial fine-tuning epochs (0 = default 1)")
	defPool := flag.String("defense-pool", "", `ensemble multiplier pool: "mnist", "cifar", or comma-separated names`)
	eotSamples := flag.Int("eot-samples", 0, "configuration draws per EOT step (0 = no adaptive grid)")
	bits := flag.Uint("bits", 8, "quantization level (Qlevel)")
	approxDense := flag.Bool("approx-dense", false, "route dense-layer products through the approximate multiplier")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	cellWorkers := flag.Int("cell-workers", 1, "suite cells run concurrently (1 = serial; reports are identical either way)")
	format := flag.String("format", "text", "output format: text, json, csv")
	progress := flag.Bool("progress", false, "stream per-cell progress to stderr")
	server := flag.String("server", "", "submit to this axserve base URL instead of running locally")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of the run to this file (chrome://tracing / Perfetto)")
	flag.Parse()

	outFormat, err := cli.ParseFormat(*format)
	if err != nil {
		cli.Fail("axrobust", err)
	}

	eps, err := cli.ParseEps(*epsList)
	if err != nil {
		cli.Fail("axrobust", err)
	}
	// One flag-to-spec mapping serves both modes: with a spec file,
	// only explicitly set flags override it (flag.Visit); without one,
	// every flag's value — default or explicit — fills the spec
	// (flag.VisitAll).
	spec := &experiment.Spec{}
	// A zero param keeps the attack's own default, so params are only
	// materialised in the spec once some knob is set (or the spec file
	// already carries them and a flag overrides one).
	param := func() *experiment.AttackParams {
		if spec.AttackParams == nil {
			spec.AttackParams = &experiment.AttackParams{}
		}
		return spec.AttackParams
	}
	// Same materialise-on-demand rule for the defense block: flags only
	// create it once some defense knob is set, or override fields of a
	// spec file that already carries one.
	dspec := func() *experiment.DefenseSpec {
		if spec.Defense == nil {
			spec.Defense = &experiment.DefenseSpec{}
		}
		return spec.Defense
	}
	applyFlag := func(f *flag.Flag) {
		switch f.Name {
		case "model":
			spec.Model = *model
		case "attack":
			spec.Attacks = cli.ParseList(*atkNames)
		case "mults":
			spec.Multipliers = cli.ParseList(*mults)
		case "eps":
			spec.Eps = eps
		case "n":
			spec.Samples = *n
		case "seed":
			spec.Seed = *seed
		case "bits":
			spec.Bits = *bits
		case "approx-dense":
			spec.ApproxDense = *approxDense
		case "workers":
			spec.Workers = *workers
		case "momentum":
			if *momentum != 0 || spec.AttackParams != nil {
				param().Momentum = *momentum
			}
		case "restarts":
			if *restarts != 0 || spec.AttackParams != nil {
				param().Restarts = *restarts
			}
		case "uap-iters":
			if *uapIters != 0 || spec.AttackParams != nil {
				param().UAPIters = *uapIters
			}
		case "defense":
			if *defKind != "" || spec.Defense != nil {
				dspec().Kind = *defKind
			}
		case "defense-attack":
			if *defAttack != "" || spec.Defense != nil {
				dspec().Attack = *defAttack
			}
		case "defense-eps":
			if *defEps != 0 || spec.Defense != nil {
				dspec().Eps = *defEps
			}
		case "defense-ratio":
			if *defRatio != 0 || spec.Defense != nil {
				dspec().Ratio = *defRatio
			}
		case "defense-epochs":
			if *defEpochs != 0 || spec.Defense != nil {
				dspec().Epochs = *defEpochs
			}
		case "defense-pool":
			if *defPool != "" || spec.Defense != nil {
				dspec().Pool = cli.ParseList(*defPool)
			}
		case "eot-samples":
			if *eotSamples != 0 || spec.Defense != nil {
				dspec().EOTSamples = *eotSamples
			}
		}
	}
	if *specPath != "" {
		if spec, err = experiment.Load(*specPath); err != nil {
			cli.Fail("axrobust", err)
		}
		flag.Visit(applyFlag)
	} else {
		flag.VisitAll(applyFlag)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *server != "" {
		runRemote(ctx, *server, spec, outFormat, *progress, *tracePath)
		return
	}

	var engineOpts []experiment.Option
	if *progress {
		engineOpts = append(engineOpts, experiment.WithProgress(experiment.Progress(os.Stderr)))
	}
	if *cellWorkers > 1 {
		engineOpts = append(engineOpts, experiment.WithExecutor(&experiment.LocalExecutor{Parallel: *cellWorkers}))
	}
	eng := experiment.New(engineOpts...)

	// With -trace, record the run's span tree under a local suite root
	// and write it out as Chrome trace JSON. Tracing is observation
	// only: the report bytes are identical either way.
	var rec *obs.Recorder
	runCtx := ctx
	if *tracePath != "" {
		rec = obs.NewRecorder(obs.DefaultSpanCap)
		runCtx = obs.WithRecorder(ctx, rec)
	}
	sctx, suiteSpan := obs.Start(runCtx, "suite", obs.Attr{Key: "suite", Value: spec.Name})
	rep, err := eng.Run(sctx, spec)
	suiteSpan.End()
	if err != nil {
		if errors.Is(err, context.Canceled) {
			cli.Fail("axrobust", fmt.Errorf("interrupted: %w", err))
		}
		cli.Fail("axrobust", err)
	}
	if rec != nil {
		if err := writeTrace(*tracePath, rec); err != nil {
			cli.Fail("axrobust", err)
		}
	}

	switch outFormat {
	case "text":
		fmt.Printf("%s: clean float accuracy %.1f%%\n", spec.Model, rep.CleanAcc)
		fmt.Print(rep)
	case "json":
		if err := rep.WriteJSON(os.Stdout); err != nil {
			cli.Fail("axrobust", err)
		}
	case "csv":
		if err := rep.WriteCSV(os.Stdout); err != nil {
			cli.Fail("axrobust", err)
		}
	}
}

// runRemote submits the spec to an axserve instance (deduplicating
// onto any identical job the server already has), streams progress
// over SSE, and emits the finished report: csv/json as the server's
// bytes verbatim — byte-identical to what any other client fetched —
// and text rendered locally from the decoded report, matching a local
// run's output.
func runRemote(ctx context.Context, base string, spec *experiment.Spec, format string, progress bool, tracePath string) {
	c := service.NewClient(base)
	st, created, err := c.Submit(ctx, spec)
	if err != nil {
		cli.Fail("axrobust", err)
	}
	verb := "submitted as"
	if !created {
		verb = "deduplicated onto"
	}
	fmt.Fprintf(os.Stderr, "axrobust: %s job %s (%s)\n", verb, st.ID, st.State)
	var onEvent func(experiment.Event)
	if progress {
		onEvent = experiment.Progress(os.Stderr)
	}

	fail := func(err error) {
		if errors.Is(err, context.Canceled) {
			cli.Fail("axrobust", fmt.Errorf("interrupted: %w", err))
		}
		cli.Fail("axrobust", err)
	}
	// With -trace, the server already recorded the job's spans (its own
	// plus any imported from shard peers); fetch them after completion.
	fetchTrace := func() {
		if tracePath == "" {
			return
		}
		raw, err := c.TraceRaw(ctx, st.ID)
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(tracePath, raw, 0o644); err != nil {
			fail(err)
		}
	}
	if format == "text" {
		rep, err := c.Wait(ctx, st.ID, onEvent)
		if err != nil {
			fail(err)
		}
		fetchTrace()
		fmt.Printf("%s: clean float accuracy %.1f%%\n", rep.Spec.Model, rep.CleanAcc)
		fmt.Print(rep)
		return
	}
	raw, err := c.WaitRaw(ctx, st.ID, format, onEvent)
	if err != nil {
		fail(err)
	}
	fetchTrace()
	if _, err := os.Stdout.Write(raw); err != nil {
		fail(err)
	}
}

// writeTrace renders the recorder's spans as Chrome trace_event JSON
// at path.
func writeTrace(path string, rec *obs.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, rec.Spans()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
