// Package repro is a from-scratch Go reproduction of
//
//	Siddique & Hoque, "Is Approximation Universally Defensive Against
//	Adversarial Attacks in Deep Neural Networks?", DATE 2022
//	(arXiv:2112.01555).
//
// The implementation lives under internal/:
//
//	adder, bitops     gate-level adder cells and helpers
//	axmult            EvoApprox8b-style approximate 8x8 multipliers + LUTs
//	errmodel          exhaustive multiplier error metrics (MAE%, WCE, ...)
//	tensor, nn, train float32 DNN stack: layers, autograd, SGD
//	quant             affine fixed-point quantization (Qlevel)
//	axnn              the AxDNN accelerator simulator (TFApprox equivalent)
//	attack            the ten Foolbox-style attacks of Table I
//	dataset           synthetic MNIST/CIFAR-10 substitutes
//	models, modelzoo  LeNet-5 / AlexNet / FFNN builders and trained cache
//	core              Algorithm 1: the robustness evaluation methodology
//	defense           adversarial training + randomized-approximation ensembles
//	experiment        declarative suites: JSON Spec -> Engine.Run -> Report
//	cli               shared flag parsing / progress rendering for cmd tools
//
// Whole evaluation suites (many attacks x eps x victims, the shape of
// Figs. 4-7) are declared as experiment.Spec JSON and executed by an
// experiment.Engine with owned caches, context cancellation, and
// streaming progress events; example specs live in testdata/specs.
//
// Executables under cmd/ (axtrain, axrobust, axtransfer, axquant,
// axmultinfo) drive the experiments; bench_test.go regenerates every
// figure and table of the paper. See README.md.
package repro

// Version identifies the reproduction snapshot.
const Version = "1.0.0"
