// Package quant implements the affine (asymmetric) fixed-point
// quantization used by the AxDNN inference engine: float values are
// mapped to unsigned codes with a per-tensor scale and zero-point,
// real = scale * (code - zero). The code width is configurable (the
// paper's Qlevel); 8 bits is the paper's default and matches the 8-bit
// operand width of the EvoApprox multipliers.
package quant

import "math"

// Params describes an affine quantizer with codes in [0, MaxCode()].
type Params struct {
	Scale float32
	Zero  uint8
	Bits  uint
}

// MaxCode returns the largest representable code for the configured
// bit width.
func (p Params) MaxCode() uint8 {
	if p.Bits == 0 || p.Bits >= 8 {
		return 255
	}
	return uint8(1<<p.Bits - 1)
}

// Calibrate derives quantization parameters covering [min, max] with
// the given bit width. The range is expanded to include zero so that
// real 0.0 has an exact code (required for zero-padding and ReLU).
func Calibrate(min, max float32, bits uint) Params {
	if min > 0 {
		min = 0
	}
	if max < 0 {
		max = 0
	}
	if max == min {
		max = min + 1e-6
	}
	levels := float32(uint32(1)<<bitsOr8(bits)) - 1
	scale := (max - min) / levels
	zero := -min / scale
	z := uint8(math.Min(math.Max(math.Round(float64(zero)), 0), float64(levels)))
	return Params{Scale: scale, Zero: z, Bits: bitsOr8(bits)}
}

func bitsOr8(b uint) uint {
	if b == 0 || b > 8 {
		return 8
	}
	return b
}

// Quantize maps a real value to its nearest code, saturating.
func (p Params) Quantize(v float32) uint8 {
	c := math.Round(float64(v)/float64(p.Scale)) + float64(p.Zero)
	if c < 0 {
		return 0
	}
	if mc := float64(p.MaxCode()); c > mc {
		return p.MaxCode()
	}
	return uint8(c)
}

// Dequantize maps a code back to its real value.
func (p Params) Dequantize(c uint8) float32 {
	return p.Scale * (float32(c) - float32(p.Zero))
}

// QuantizeSlice quantizes src into a fresh code slice.
func (p Params) QuantizeSlice(src []float32) []uint8 {
	out := make([]uint8, len(src))
	p.QuantizeInto(out, src)
	return out
}

// QuantizeInto quantizes src into dst (len(dst) must equal len(src)) —
// the allocation-free variant used by pooled inference workspaces.
func (p Params) QuantizeInto(dst []uint8, src []float32) {
	_ = dst[:len(src)]
	for i, v := range src {
		dst[i] = p.Quantize(v)
	}
}

// DequantizeSlice maps codes back into a fresh float slice.
func (p Params) DequantizeSlice(src []uint8) []float32 {
	out := make([]float32, len(src))
	for i, c := range src {
		out[i] = p.Dequantize(c)
	}
	return out
}

// Range returns the min and max of data (0,0 for empty input).
func Range(data []float32) (min, max float32) {
	if len(data) == 0 {
		return 0, 0
	}
	min, max = data[0], data[0]
	for _, v := range data[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// RequantLUT precomputes the 256-entry code->code map that converts
// codes under from-params into codes under to-params, optionally
// applying f to the dequantized value (f == nil means identity). This
// is how elementwise stages (ReLU, requantization) run in the integer
// engine.
func RequantLUT(from, to Params, f func(float32) float32) []uint8 {
	lut := make([]uint8, 256)
	for c := 0; c <= int(from.MaxCode()); c++ {
		v := from.Dequantize(uint8(c))
		if f != nil {
			v = f(v)
		}
		lut[c] = to.Quantize(v)
	}
	return lut
}
