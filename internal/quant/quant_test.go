package quant

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCalibrateIncludesZero(t *testing.T) {
	p := Calibrate(0.2, 1.0, 8)
	if p.Dequantize(p.Zero) != 0 {
		t.Fatalf("zero code dequantizes to %f", p.Dequantize(p.Zero))
	}
	p = Calibrate(-1.0, -0.5, 8)
	if p.Dequantize(p.Zero) != 0 {
		t.Fatal("negative-only range must still represent zero")
	}
}

func TestCalibrateDegenerate(t *testing.T) {
	p := Calibrate(0, 0, 8)
	if p.Scale <= 0 {
		t.Fatal("degenerate range must produce positive scale")
	}
}

func TestQuantizeRoundTripError(t *testing.T) {
	p := Calibrate(-2, 2, 8)
	f := func(raw uint16) bool {
		v := float32(raw)/65535*4 - 2
		got := p.Dequantize(p.Quantize(v))
		return math.Abs(float64(got-v)) <= float64(p.Scale)/2+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeSaturates(t *testing.T) {
	p := Calibrate(0, 1, 8)
	if p.Quantize(5) != p.MaxCode() {
		t.Fatal("above-range value must saturate to max code")
	}
	if p.Quantize(-5) != 0 {
		t.Fatal("below-range value must saturate to zero code")
	}
}

func TestQuantizeMonotonic(t *testing.T) {
	p := Calibrate(-1, 3, 8)
	prev := p.Quantize(-1)
	for v := float32(-1); v <= 3; v += 0.01 {
		c := p.Quantize(v)
		if c < prev {
			t.Fatalf("quantization not monotonic at %f", v)
		}
		prev = c
	}
}

func TestReducedBits(t *testing.T) {
	p := Calibrate(0, 1, 4)
	if p.MaxCode() != 15 {
		t.Fatalf("4-bit max code = %d", p.MaxCode())
	}
	if p.Quantize(1) != 15 {
		t.Fatalf("full scale at 4 bits = %d", p.Quantize(1))
	}
	if p.Quantize(0.5) == 0 || p.Quantize(0.5) == 15 {
		t.Fatal("mid value must land mid-range")
	}
}

func TestBitsZeroMeansEight(t *testing.T) {
	p := Calibrate(0, 1, 0)
	if p.Bits != 8 || p.MaxCode() != 255 {
		t.Fatalf("bits 0 should default to 8, got %d", p.Bits)
	}
}

func TestSliceHelpers(t *testing.T) {
	p := Calibrate(0, 1, 8)
	src := []float32{0, 0.25, 0.5, 1}
	codes := p.QuantizeSlice(src)
	back := p.DequantizeSlice(codes)
	for i := range src {
		if math.Abs(float64(back[i]-src[i])) > float64(p.Scale) {
			t.Fatalf("roundtrip error at %d: %f vs %f", i, back[i], src[i])
		}
	}
}

func TestRange(t *testing.T) {
	lo, hi := Range([]float32{3, -1, 2})
	if lo != -1 || hi != 3 {
		t.Fatalf("Range = %f,%f", lo, hi)
	}
	lo, hi = Range(nil)
	if lo != 0 || hi != 0 {
		t.Fatal("empty Range should be 0,0")
	}
}

func TestRequantLUTIdentity(t *testing.T) {
	p := Calibrate(0, 1, 8)
	lut := RequantLUT(p, p, nil)
	for c := 0; c < 256; c++ {
		if lut[c] != uint8(c) {
			t.Fatalf("identity requant moved code %d -> %d", c, lut[c])
		}
	}
}

func TestRequantLUTReLU(t *testing.T) {
	from := Calibrate(-1, 1, 8)
	to := Calibrate(0, 1, 8)
	lut := RequantLUT(from, to, func(v float32) float32 {
		if v < 0 {
			return 0
		}
		return v
	})
	// Codes representing negative values must map to the zero code.
	neg := from.Quantize(-0.5)
	if to.Dequantize(lut[neg]) != 0 {
		t.Fatal("negative input should map to zero after ReLU requant")
	}
	pos := from.Quantize(0.5)
	if got := to.Dequantize(lut[pos]); math.Abs(float64(got-0.5)) > 0.02 {
		t.Fatalf("positive input maps to %f", got)
	}
}
