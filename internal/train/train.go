// Package train implements minibatch SGD training of internal/nn
// networks with data parallelism across goroutines: each worker owns a
// network clone (shared weights, private weight-gradient buffers),
// per-batch worker gradients are reduced into the master buffers, and
// a momentum update is applied. Cloning here is only about gradient
// accumulation — the forward/backward passes themselves are stateless.
// Also provides parallel accuracy evaluation used throughout the
// experiments.
package train

import (
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Config controls Fit.
type Config struct {
	Epochs int
	Batch  int
	// LR is the initial learning rate. LR <= 0 is the documented
	// default sentinel and selects 0.05; any positive value — however
	// tiny — is used as given.
	LR       float64
	Momentum float64
	// LRDecay multiplies the learning rate after each epoch (1 = none).
	LRDecay float64
	Seed    int64
	// Workers caps data parallelism (0 = GOMAXPROCS). For a fixed
	// (Seed, Workers) pair Fit is deterministic: same data, same final
	// weights, bit for bit. Different worker counts reduce per-worker
	// gradients in a different floating-point order, so weights across
	// worker counts agree only approximately — intended, and pinned by
	// the determinism tests.
	Workers int
	// Logf, when non-nil, receives one progress line per epoch; nil
	// suppresses logging.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Batch <= 0 {
		c.Batch = 32
	}
	if c.Epochs <= 0 {
		c.Epochs = 1
	}
	if c.LR <= 0 {
		c.LR = 0.05
	}
	if c.LRDecay == 0 {
		c.LRDecay = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Fit trains net on set with softmax cross-entropy and momentum SGD.
// It returns the mean loss of the final epoch.
func Fit(net *nn.Network, set *dataset.Set, cfg Config) float64 {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	masterParams := net.Params()
	vel := make([][]float32, len(masterParams))
	for i, p := range masterParams {
		vel[i] = make([]float32, len(p.W))
	}

	workers := cfg.Workers
	clones := make([]*nn.Network, workers)
	cloneParams := make([][]nn.Param, workers)
	for w := 0; w < workers; w++ {
		clones[w] = net.Clone()
		cloneParams[w] = clones[w].Params()
	}

	idx := make([]int, set.Len())
	for i := range idx {
		idx[i] = i
	}

	lr := cfg.LR
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		var batches int
		for start := 0; start < len(idx); start += cfg.Batch {
			end := start + cfg.Batch
			if end > len(idx) {
				end = len(idx)
			}
			batch := idx[start:end]
			losses := make([]float64, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					c := clones[w]
					for bi := w; bi < len(batch); bi += workers {
						i := batch[bi]
						losses[w] += float64(c.AccumGrad(set.X[i], set.Y[i]))
					}
				}(w)
			}
			wg.Wait()
			// Reduce worker grads into master, update, and zero.
			scale := float32(1.0 / float64(len(batch)))
			for pi, mp := range masterParams {
				g := mp.G
				for w := 0; w < workers; w++ {
					wg := cloneParams[w][pi].G
					for i, v := range wg {
						g[i] += v
						wg[i] = 0
					}
				}
				v := vel[pi]
				mom := float32(cfg.Momentum)
				step := float32(lr)
				for i := range g {
					v[i] = mom*v[i] - step*g[i]*scale
					mp.W[i] += v[i]
					g[i] = 0
				}
			}
			for _, l := range losses {
				epochLoss += l
			}
			batches++
		}
		lastLoss = epochLoss / float64(set.Len())
		if cfg.Logf != nil {
			cfg.Logf("epoch %d/%d loss=%.4f lr=%.4f", epoch+1, cfg.Epochs, lastLoss, lr)
		}
		lr *= cfg.LRDecay
	}
	return lastLoss
}

// Predictor is anything that classifies a tensor (float or quantized
// networks alike).
type Predictor interface {
	Logits(x *tensor.T) []float32
}

// Accuracy evaluates pred on up to limit samples of set (0 = all) in
// parallel and returns the fraction correct. Both float nn networks
// and compiled axnn networks are concurrency-safe, so a shared
// predictor is fine.
func Accuracy(pred Predictor, set *dataset.Set, limit int) float64 {
	s := set.Slice(limit)
	return accuracyParallel(func() Predictor { return pred }, s)
}

// AccuracyCloned is Accuracy for predictors whose Logits is not
// concurrency-safe; factory must return a fresh predictor per worker.
// The in-tree models no longer need it (stateless inference) — it
// remains for external Predictor implementations with per-call state.
func AccuracyCloned(factory func() Predictor, set *dataset.Set, limit int) float64 {
	return accuracyParallel(factory, set.Slice(limit))
}

func accuracyParallel(factory func() Predictor, s *dataset.Set) float64 {
	workers := runtime.GOMAXPROCS(0)
	if workers > s.Len() {
		workers = s.Len()
	}
	if workers == 0 {
		return 0
	}
	correct := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := factory()
			for i := w; i < s.Len(); i += workers {
				if tensor.ArgMax(p.Logits(s.X[i])) == s.Y[i] {
					correct[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, c := range correct {
		total += c
	}
	return float64(total) / float64(s.Len())
}
