package train

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/tensor"
)

func TestFitReducesLossAndLearns(t *testing.T) {
	set := dataset.Digits(600, 21)
	net := models.FFNN(28*28, 10, 3)
	before := Accuracy(net, set, 200)
	loss := Fit(net, set, Config{Epochs: 2, Batch: 32, LR: 0.05, Momentum: 0.9, Seed: 1})
	after := Accuracy(net, set, 200)
	if after <= before+0.3 {
		t.Fatalf("training did not learn: %.2f -> %.2f", before, after)
	}
	if loss > 1.0 {
		t.Fatalf("final loss too high: %f", loss)
	}
}

func TestFitDeterministic(t *testing.T) {
	set := dataset.Digits(200, 22)
	cfg := Config{Epochs: 1, Batch: 16, LR: 0.05, Momentum: 0.9, Seed: 7, Workers: 1}
	n1 := models.FFNN(28*28, 10, 5)
	n2 := models.FFNN(28*28, 10, 5)
	Fit(n1, set, cfg)
	Fit(n2, set, cfg)
	w1, w2 := n1.Params()[0].W, n2.Params()[0].W
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatal("single-worker training not deterministic")
		}
	}
}

// TestFitDeterministicPerWorkerCount pins the determinism contract
// defense.AdvTrain inherits: for a FIXED (seed, workers) pair the
// final weights are bit-identical across runs — including multi-worker
// runs, whose per-batch gradients are reduced in worker order, not
// completion order. Weights across DIFFERENT worker counts agree only
// approximately (floating-point reduction order), which is the
// documented, intended nondeterminism; this test asserts that
// closeness without demanding bit equality.
func TestFitDeterministicPerWorkerCount(t *testing.T) {
	set := dataset.Digits(300, 26)
	weights := func(workers int) []float32 {
		net := models.FFNN(28*28, 10, 6)
		Fit(net, set, Config{Epochs: 1, Batch: 16, LR: 0.05, Momentum: 0.9, Seed: 11, Workers: workers})
		return net.Params()[0].W
	}
	for _, workers := range []int{1, 4} {
		a, b := weights(workers), weights(workers)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("Workers=%d training not bit-deterministic at weight %d: %v != %v", workers, i, a[i], b[i])
			}
		}
	}
	// Across worker counts: same minibatches, same update rule, so the
	// weights must be close — but bit equality is NOT promised.
	w1, w4 := weights(1), weights(4)
	var maxDiff float64
	for i := range w1 {
		d := float64(w1[i] - w4[i])
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-3 {
		t.Fatalf("Workers=1 and Workers=4 weights diverged by %g — reduction-order noise should stay tiny", maxDiff)
	}
}

// TestConfigLRSentinel pins the documented LR sentinel: LR <= 0
// selects the default, while an explicit tiny LR — previously
// indistinguishable from "unset" only at exactly zero, but worth
// pinning — is used as given.
func TestConfigLRSentinel(t *testing.T) {
	for _, lr := range []float64{0, -1} {
		if got := (Config{LR: lr}).withDefaults().LR; got != 0.05 {
			t.Fatalf("LR=%g must select the 0.05 default, got %g", lr, got)
		}
	}
	if got := (Config{LR: 1e-9}).withDefaults().LR; got != 1e-9 {
		t.Fatalf("explicit tiny LR rewritten to %g", got)
	}
	// A tiny LR must actually reach the update rule: weights move by
	// (at most) LR-scaled steps, so one batch leaves them essentially
	// frozen compared to the default.
	set := dataset.Digits(64, 27)
	frozen := models.FFNN(28*28, 10, 7)
	before := append([]float32(nil), frozen.Params()[0].W...)
	Fit(frozen, set, Config{Epochs: 1, Batch: 64, LR: 1e-12, Seed: 1, Workers: 1})
	after := frozen.Params()[0].W
	for i := range before {
		d := before[i] - after[i]
		if d < 0 {
			d = -d
		}
		if d > 1e-6 {
			t.Fatalf("LR=1e-12 moved weight %d by %g — sentinel must not kick in for positive LR", i, d)
		}
	}
}

func TestAccuracyBounds(t *testing.T) {
	set := dataset.Digits(50, 23)
	net := models.FFNN(28*28, 10, 9)
	// AccuracyCloned remains for stateful external predictors; the
	// shared stateless network exercises it fine.
	acc := AccuracyCloned(func() Predictor { return net }, set, 0)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %f outside [0,1]", acc)
	}
}

type constPredictor struct{ class int }

func (c constPredictor) Logits(*tensor.T) []float32 {
	out := make([]float32, 10)
	out[c.class] = 1
	return out
}

func TestAccuracyCounting(t *testing.T) {
	set := dataset.Digits(100, 24)
	// A predictor that always answers class 3 must score exactly the
	// fraction of 3s.
	want := 0
	for _, y := range set.Y {
		if y == 3 {
			want++
		}
	}
	got := Accuracy(constPredictor{3}, set, 0)
	if got != float64(want)/100 {
		t.Fatalf("accuracy %f, want %f", got, float64(want)/100)
	}
}

func TestAccuracyLimit(t *testing.T) {
	set := dataset.Digits(100, 25)
	got := Accuracy(constPredictor{set.Y[0]}, set, 1)
	if got != 1 {
		t.Fatalf("limited accuracy %f, want 1", got)
	}
}
