package train

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/tensor"
)

func TestFitReducesLossAndLearns(t *testing.T) {
	set := dataset.Digits(600, 21)
	net := models.FFNN(28*28, 10, 3)
	before := Accuracy(net, set, 200)
	loss := Fit(net, set, Config{Epochs: 2, Batch: 32, LR: 0.05, Momentum: 0.9, Seed: 1})
	after := Accuracy(net, set, 200)
	if after <= before+0.3 {
		t.Fatalf("training did not learn: %.2f -> %.2f", before, after)
	}
	if loss > 1.0 {
		t.Fatalf("final loss too high: %f", loss)
	}
}

func TestFitDeterministic(t *testing.T) {
	set := dataset.Digits(200, 22)
	cfg := Config{Epochs: 1, Batch: 16, LR: 0.05, Momentum: 0.9, Seed: 7, Workers: 1}
	n1 := models.FFNN(28*28, 10, 5)
	n2 := models.FFNN(28*28, 10, 5)
	Fit(n1, set, cfg)
	Fit(n2, set, cfg)
	w1, w2 := n1.Params()[0].W, n2.Params()[0].W
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatal("single-worker training not deterministic")
		}
	}
}

func TestAccuracyBounds(t *testing.T) {
	set := dataset.Digits(50, 23)
	net := models.FFNN(28*28, 10, 9)
	// AccuracyCloned remains for stateful external predictors; the
	// shared stateless network exercises it fine.
	acc := AccuracyCloned(func() Predictor { return net }, set, 0)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %f outside [0,1]", acc)
	}
}

type constPredictor struct{ class int }

func (c constPredictor) Logits(*tensor.T) []float32 {
	out := make([]float32, 10)
	out[c.class] = 1
	return out
}

func TestAccuracyCounting(t *testing.T) {
	set := dataset.Digits(100, 24)
	// A predictor that always answers class 3 must score exactly the
	// fraction of 3s.
	want := 0
	for _, y := range set.Y {
		if y == 3 {
			want++
		}
	}
	got := Accuracy(constPredictor{3}, set, 0)
	if got != float64(want)/100 {
		t.Fatalf("accuracy %f, want %f", got, float64(want)/100)
	}
}

func TestAccuracyLimit(t *testing.T) {
	set := dataset.Digits(100, 25)
	got := Accuracy(constPredictor{set.Y[0]}, set, 1)
	if got != 1 {
		t.Fatalf("limited accuracy %f, want 1", got)
	}
}
