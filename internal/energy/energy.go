// Package energy estimates the relative energy, area, and delay of the
// approximate multipliers and of whole AxDNN inferences — the premise
// of the paper (approximate computing is adopted for energy efficiency;
// the robustness study asks what that efficiency costs under attack).
//
// EvoApprox8b ships per-design power/area/delay from synthesis; with no
// synthesis flow available offline, this package derives *relative*
// hardware-cost proxies from the behavioural circuit structure itself:
//
//   - Area proxy: the number of partial-product bits the design
//     actually computes plus the adder cells needed to reduce them
//     (full adders have a known transistor cost; approximate cells such
//     as AMA1..AMA5 save a documented number of transistors).
//   - Energy proxy: average switching activity, measured exhaustively —
//     the mean Hamming weight of the partial products consumed per
//     multiplication (dominant dynamic-power term of array multipliers).
//   - Delay proxy: the depth of the reduction (columns of the widest
//     surviving partial-product stack).
//
// All figures are normalised to the exact array multiplier (= 1.0), the
// same presentation EvoApprox uses. They are design-space *ordering*
// tools, not absolute watts; the package tests pin the orderings the
// trade-off analysis depends on.
package energy

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/axmult"
)

// Cost summarises the relative hardware cost of a multiplier design,
// normalised so the exact 8x8 array multiplier is 1.0 on every axis.
type Cost struct {
	Name string
	// Energy is the switching-activity proxy (relative).
	Energy float64
	// Area is the active-cell-count proxy (relative).
	Area float64
	// Delay is the reduction-depth proxy (relative).
	Delay float64
}

// exactActivity is the mean partial-product Hamming weight of the
// exact 8x8 array multiplier under uniform operands: 64 AND gates each
// active with probability 1/4.
const exactActivity = 16.0

// exactCells is the adder-cell count of the exact 8x8 carry-save array
// (64 partial products reduce through 48 adder cells plus the final
// row), used as the area normaliser.
const exactCells = 64.0 + 48.0

// exactDepth is the column count of the exact product.
const exactDepth = 16.0

// Estimate derives the relative cost of a registered multiplier by
// probing its behavioural structure exhaustively.
//
// The activity proxy is measured from the function itself: the average
// Hamming weight of the *output* plus the average Hamming weights of
// the operands the design actually consumes approximate the toggling
// that the surviving array cells perform. Designs that drop partial
// products (truncation, perforation, broken arrays) or collapse
// operands to short mantissas (DRUM, log multipliers, segment designs)
// toggle proportionally less.
func Estimate(name string) (Cost, error) {
	// The behavioural instance is only probed for its structure (the
	// type switch below); the full-space output sweep reads the
	// registry-cached LUT table directly — one linear scan instead of
	// 65,536 virtual Mul dispatches into the gate-level model.
	m, err := axmult.New(name)
	if err != nil {
		return Cost{}, err
	}
	l, err := axmult.Lookup(name)
	if err != nil {
		return Cost{}, err
	}
	var outBits float64
	for _, v := range l.Table() {
		outBits += float64(bits.OnesCount16(v))
	}
	exactBits := exactOutputBits()
	// Output toggling tracks the fraction of array kept active. The
	// proxy is capped at 1: an approximate design performs a subset of
	// the exact array's work even when its error pattern happens to set
	// more output bits (e.g. Kulkarni's 3*3 -> 0b0111).
	activity := outBits / exactBits
	if activity > 1 {
		activity = 1
	}

	// Structural area/delay where the design type is known; fall back
	// to the activity proxy otherwise (activity tracks surviving cells
	// closely for reduction-style designs).
	area, delay := structuralCost(m)
	if area == 0 {
		area = activity
	}
	if delay == 0 {
		delay = 1
	}
	return Cost{
		Name:   m.Name(),
		Energy: activity * normEnergy(m),
		Area:   area,
		Delay:  delay,
	}, nil
}

// exactOutputBits returns the total output Hamming weight of the exact
// multiplier over the full input space — the activity normaliser. It
// is a pure constant of the 8x8 space, computed once.
var exactOutputBits = sync.OnceValue(func() float64 {
	var sum float64
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			sum += float64(bits.OnesCount32(uint32(a) * uint32(b)))
		}
	}
	return sum
})

// normEnergy applies the cell-level energy discount for designs whose
// adder cells are themselves simplified (approximate mirror adders use
// fewer transistors per operation).
func normEnergy(m axmult.Multiplier) float64 {
	if am, ok := m.(axmult.ArrayMult); ok && am.ApproxCols > 0 {
		// Each approximate column saves roughly 20% of its cell energy;
		// 16 columns total.
		return 1 - 0.2*float64(am.ApproxCols)/16
	}
	return 1
}

// structuralCost returns (area, delay) proxies for the design families
// whose structure is directly visible, both relative to the exact
// array. Zero means "unknown; use the activity fallback".
func structuralCost(m axmult.Multiplier) (float64, float64) {
	switch t := m.(type) {
	case axmult.TruncMult:
		return costDropColumns(uint(t.Cut), 0), float64(16-int(t.Cut)) / exactDepth
	case axmult.BrokenArray:
		return costDropColumns(t.VBreak, t.HRows), float64(16-int(t.VBreak)) / exactDepth
	case axmult.Perforated:
		dropped := bits.OnesCount8(t.Rows)
		return float64(64-8*dropped)/64.0*cellShare() + baseShare(), 1
	case axmult.LowOR:
		// The al*bl sub-multiplier (k*k cells) collapses to k OR gates.
		k := float64(t.K)
		return (64-k*k+k)/64.0*cellShare() + baseShare(), 1
	case axmult.DRUM:
		// Two k-bit mantissa multipliers plus leading-one detectors and
		// shifters; EvoApprox-class DRUM(k) area is ~(k/8)^2 of the full
		// array plus ~15% steering overhead.
		k := float64(t.K)
		return (k*k)/64.0 + 0.15, (float64(t.K) + 4) / exactDepth * 2
	case axmult.Mitchell:
		// Log/antilog shifters and one addition: ~35% of the array.
		return 0.35, 0.75
	case axmult.MitchellTrunc:
		return 0.30, 0.7
	case axmult.Kulkarni:
		// The 2x2 block saves one output; compounded recursively ~12%.
		return 0.88, 1
	case axmult.KulkarniLow:
		return 0.97, 1
	case axmult.Compressor42:
		// Approximate compressors in k columns save ~30% of those
		// columns' reduction cells.
		saved := 0.3 * float64(t.ApproxCols) / 16 * (48.0 / exactCells)
		return 1 - saved, 1 - 0.2*float64(t.ApproxCols)/16
	case axmult.ArrayMult:
		if t.ApproxCols == 0 {
			return 1, 1
		}
		// Approximate mirror-adder cells save ~30% area in their columns.
		return 1 - 0.3*float64(t.ApproxCols)/16*(48.0/exactCells), 1
	}
	return 0, 0
}

// costDropColumns returns the area share of a broken/truncated array
// keeping only partial products with column index >= v and row >= h.
func costDropColumns(v, h uint) float64 {
	kept := 0
	for i := uint(0); i < 8; i++ {
		for j := uint(0); j < 8; j++ {
			if i+j >= v && i >= h {
				kept++
			}
		}
	}
	return float64(kept)/64*cellShare() + baseShare()
}

// cellShare is the fraction of exact-array area attributable to the
// partial-product generators and reduction cells that scale with kept
// products.
func cellShare() float64 { return 0.85 }

// baseShare is the irreducible share (operand latches, final stage).
func baseShare() float64 { return 0.15 }

// InferenceMACs counts the multiply operations of one inference per
// layer geometry: convolution layers dominate AxDNN energy (the reason
// the paper approximates conv multipliers).
type InferenceMACs struct {
	Conv  int64
	Dense int64
}

// Total returns all MACs.
func (m InferenceMACs) Total() int64 { return m.Conv + m.Dense }

// LayerGeom describes one layer's MAC-relevant geometry.
type LayerGeom struct {
	Kind         string // "conv" or "dense"
	InC, OutC, K int
	OutH, OutW   int
	In, Out      int // dense
}

// CountMACs computes per-inference MAC counts from layer geometry.
func CountMACs(layers []LayerGeom) InferenceMACs {
	var m InferenceMACs
	for _, l := range layers {
		switch l.Kind {
		case "conv":
			m.Conv += int64(l.OutC) * int64(l.OutH) * int64(l.OutW) * int64(l.InC) * int64(l.K) * int64(l.K)
		case "dense":
			m.Dense += int64(l.In) * int64(l.Out)
		}
	}
	return m
}

// InferenceEnergy estimates the relative multiplier energy of one
// AxDNN inference: conv MACs run on the named approximate design,
// dense MACs on the exact one (per the paper's Section IV-A split).
// The unit is "exact-multiplier MAC energies".
func InferenceEnergy(macs InferenceMACs, multName string) (float64, error) {
	c, err := Estimate(multName)
	if err != nil {
		return 0, err
	}
	return float64(macs.Conv)*c.Energy + float64(macs.Dense)*1.0, nil
}

// TradeoffRow pairs a design's energy with an accuracy observation for
// the Pareto report.
type TradeoffRow struct {
	Name     string
	Energy   float64
	Area     float64
	Accuracy float64
}

// Tradeoff builds rows for the given designs with the caller-supplied
// accuracy map (e.g. clean accuracy or robustness at a budget).
func Tradeoff(names []string, accuracy map[string]float64) ([]TradeoffRow, error) {
	rows := make([]TradeoffRow, 0, len(names))
	for _, n := range names {
		c, err := Estimate(n)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TradeoffRow{Name: c.Name, Energy: c.Energy, Area: c.Area, Accuracy: accuracy[n]})
	}
	return rows, nil
}

// String renders a row.
func (r TradeoffRow) String() string {
	return fmt.Sprintf("%-14s energy=%.2fx area=%.2fx acc=%.1f%%", r.Name, r.Energy, r.Area, r.Accuracy)
}
