package energy

import (
	"testing"

	"repro/internal/axmult"
)

func TestExactIsUnitCost(t *testing.T) {
	c, err := Estimate("mul8u_1JFF")
	if err != nil {
		t.Fatal(err)
	}
	if c.Energy < 0.99 || c.Energy > 1.01 {
		t.Fatalf("exact energy %.3f, want ~1", c.Energy)
	}
	if c.Area != 1 || c.Delay != 1 {
		t.Fatalf("exact area/delay %v, want 1/1", c)
	}
}

func TestApproximateDesignsSaveEnergy(t *testing.T) {
	// Every approximate design in the paper's sets must cost no more
	// than the exact multiplier — the premise of approximate computing.
	for _, set := range [][]string{axmult.MNISTSet(), axmult.CIFARSet()} {
		for _, name := range set[1:] {
			c, err := Estimate(name)
			if err != nil {
				t.Fatal(err)
			}
			if c.Energy > 1.001 {
				t.Errorf("%s energy %.3f exceeds exact", name, c.Energy)
			}
			if c.Area > 1.2 {
				t.Errorf("%s area %.3f exceeds exact substantially", name, c.Area)
			}
			if c.Energy <= 0 || c.Area <= 0 || c.Delay <= 0 {
				t.Errorf("%s has non-positive cost: %+v", name, c)
			}
		}
	}
}

func TestAggressiveTruncationCheaperThanMild(t *testing.T) {
	mild, err := Estimate("trunc3c")
	if err != nil {
		t.Fatal(err)
	}
	aggressive, err := Estimate("trunc7c")
	if err != nil {
		t.Fatal(err)
	}
	if aggressive.Energy >= mild.Energy {
		t.Fatalf("trunc7c energy %.3f not below trunc3c %.3f", aggressive.Energy, mild.Energy)
	}
	if aggressive.Area >= mild.Area {
		t.Fatalf("trunc7c area %.3f not below trunc3c %.3f", aggressive.Area, mild.Area)
	}
}

func TestDRUMCheaperThanExact(t *testing.T) {
	d, err := Estimate("mul8u_JQQ")
	if err != nil {
		t.Fatal(err)
	}
	if d.Area >= 0.8 {
		t.Fatalf("DRUM4 area %.3f, want well under exact", d.Area)
	}
}

func TestEstimateUnknown(t *testing.T) {
	if _, err := Estimate("mul8u_NOPE"); err == nil {
		t.Fatal("expected error")
	}
}

func TestCountMACsLeNetShape(t *testing.T) {
	// LeNet-5 on 28x28: conv MACs dominate, matching the paper's
	// rationale for approximating conv multipliers only.
	layers := []LayerGeom{
		{Kind: "conv", InC: 1, OutC: 6, K: 5, OutH: 28, OutW: 28},
		{Kind: "conv", InC: 6, OutC: 16, K: 5, OutH: 10, OutW: 10},
		{Kind: "conv", InC: 16, OutC: 120, K: 5, OutH: 1, OutW: 1},
		{Kind: "dense", In: 120, Out: 84},
		{Kind: "dense", In: 84, Out: 10},
	}
	m := CountMACs(layers)
	if m.Conv != 6*28*28*25+16*100*6*25+120*16*25 {
		t.Fatalf("conv MACs = %d", m.Conv)
	}
	if m.Dense != 120*84+84*10 {
		t.Fatalf("dense MACs = %d", m.Dense)
	}
	if m.Conv < 10*m.Dense {
		t.Fatal("conv should dominate LeNet MACs")
	}
}

func TestInferenceEnergyOrdering(t *testing.T) {
	macs := InferenceMACs{Conv: 1_000_000, Dense: 10_000}
	exact, err := InferenceEnergy(macs, "mul8u_1JFF")
	if err != nil {
		t.Fatal(err)
	}
	approx, err := InferenceEnergy(macs, "mul8u_JQQ")
	if err != nil {
		t.Fatal(err)
	}
	if approx >= exact {
		t.Fatalf("approximate inference %.0f not cheaper than exact %.0f", approx, exact)
	}
	// Dense MACs are always exact: energy must exceed the conv-only part.
	if approx <= float64(macs.Dense) {
		t.Fatal("dense contribution missing")
	}
}

func TestTradeoffRows(t *testing.T) {
	rows, err := Tradeoff([]string{"mul8u_1JFF", "mul8u_JQQ"}, map[string]float64{
		"mul8u_1JFF": 99, "mul8u_JQQ": 97,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Accuracy != 99 || rows[1].Accuracy != 97 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[1].String() == "" {
		t.Fatal("empty render")
	}
}
