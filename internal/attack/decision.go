package attack

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// CR is the Contrast Reduction attack (Foolbox
// L2ContrastReductionAttack): it blends the image toward the mid-gray
// target 0.5, moving along that fixed direction until the l2 budget is
// spent (or the image is fully gray). It needs no model queries.
//
// For AxDNNs this attack is the interesting one: pulling pixels toward
// mid-range codes concentrates multiplier operands in the region where
// input-dependent approximation error peaks (see internal/axmult's
// Mitchell design), which is how the paper's Fig. 6a collapse arises.
type CR struct{}

// NewCR returns the contrast-reduction attack.
func NewCR() *CR { return &CR{} }

// Name implements Attack.
func (a *CR) Name() string { return "CR-l2" }

// Norm implements Attack.
func (a *CR) Norm() Norm { return L2 }

// Perturb implements Attack.
func (a *CR) Perturb(_ Model, x *tensor.T, _ int, eps float64, _ *rand.Rand) *tensor.T {
	adv := x.Clone()
	d := tensor.New(x.Shape...)
	for i, v := range x.Data {
		d.Data[i] = 0.5 - v
	}
	n := d.L2Norm()
	if n == 0 {
		return adv
	}
	t := eps / n
	if t > 1 {
		t = 1 // fully gray; cannot move further along this direction
	}
	adv.AddScaled(float32(t), d)
	adv.Clamp(0, 1)
	return adv
}

// noiseAttack implements the repeated additive noise family: sample a
// noise direction, scale it to the eps budget, and keep the first
// sample that fools the source model (Foolbox's Repeated* attacks).
// If no sample fools the model the last one is returned — the budget
// is spent either way, matching the robustness protocol.
type noiseAttack struct {
	name    string
	norm    Norm
	repeats int
	sample  func(shape []int, rng *rand.Rand) *tensor.T
}

// NewRAG returns the Repeated Additive Gaussian noise attack (l2).
func NewRAG() Attack {
	return &noiseAttack{name: "RAG-l2", norm: L2, repeats: 20, sample: gaussianDir}
}

// NewRAU returns the Repeated Additive Uniform noise attack for the
// given norm (the paper uses both the l2 and linf variants).
func NewRAU(n Norm) Attack {
	return &noiseAttack{name: fmt.Sprintf("RAU-%s", n), norm: n, repeats: 20, sample: uniformDir}
}

// Name implements Attack.
func (a *noiseAttack) Name() string { return a.name }

// Norm implements Attack.
func (a *noiseAttack) Norm() Norm { return a.norm }

// Perturb implements Attack.
func (a *noiseAttack) Perturb(m Model, x *tensor.T, label int, eps float64, rng *rand.Rand) *tensor.T {
	if eps == 0 {
		return x.Clone()
	}
	var last *tensor.T
	for r := 0; r < a.repeats; r++ {
		d := a.sample(x.Shape, rng)
		// A zero direction cannot be scaled to the budget and would
		// silently return the input unperturbed; resample so eps>0
		// always spends the budget.
		for d.LinfNorm() == 0 {
			d = a.sample(x.Shape, rng)
		}
		adv := x.Clone()
		if a.norm == Linf {
			// Scale the direction to have linf norm exactly eps.
			adv.AddScaled(float32(eps/d.LinfNorm()), d)
		} else {
			stepL2(adv, d, eps)
		}
		adv.Clamp(0, 1)
		if fooled(m, adv, label) {
			return adv
		}
		last = adv
	}
	return last
}
