package attack

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// biasModel is a deterministic fake configuration: the source model's
// logits with one class boosted, so distinct pool members disagree.
type biasModel struct {
	base  Model
	class int
	boost float32
}

func (b *biasModel) Logits(x *tensor.T) []float32 {
	l := append([]float32(nil), b.base.Logits(x)...)
	l[b.class] += b.boost
	return l
}

// fakeSampler draws uniformly from a fixed pool.
type fakeSampler struct {
	pool []Model
	key  string
}

func (s *fakeSampler) Logits(x *tensor.T) []float32 { return s.pool[0].Logits(x) }
func (s *fakeSampler) SampleModel(rng *rand.Rand) Model {
	return s.pool[rng.Intn(len(s.pool))]
}
func (s *fakeSampler) SamplerKey() string { return s.key }

func testSampler(m Model, key string) *fakeSampler {
	return &fakeSampler{
		pool: []Model{
			&biasModel{base: m, class: 0, boost: 0.5},
			&biasModel{base: m, class: 7, boost: 0.5},
			m,
		},
		key: key,
	}
}

func eotRngs(n int, seed int64) []*rand.Rand {
	rngs := make([]*rand.Rand, n)
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(seed + int64(i)*1_000_003))
	}
	return rngs
}

func TestEOTZeroEpsIdentity(t *testing.T) {
	m, set := trainedModel(t)
	a := NewEOT(testSampler(m, "t"), Linf, 3)
	x, y := correctSample(t, m, set)
	adv := a.Perturb(m, x, y, 0, rand.New(rand.NewSource(1)))
	for i := range x.Data {
		if adv.Data[i] != x.Data[i] {
			t.Fatal("EOT at eps=0 must be the identity")
		}
	}
}

// TestEOTBudgetAndBox: the crafted batch stays inside the eps-ball and
// the pixel box for both norms.
func TestEOTBudgetAndBox(t *testing.T) {
	m, set := trainedModel(t)
	for _, norm := range []Norm{Linf, L2} {
		a := NewEOT(testSampler(m, "t"), norm, 2)
		const eps = 0.1
		n := 6
		xs := tensor.Stack(set.X[:n])
		adv := a.PerturbBatch(m, xs, set.Y[:n], eps, eotRngs(n, 9))
		for r := 0; r < n; r++ {
			var linf float64
			var l2 float64
			ar, xr := adv.Row(r), xs.Row(r)
			for i := range ar.Data {
				d := float64(ar.Data[i] - xr.Data[i])
				if d < 0 {
					d = -d
				}
				if d > linf {
					linf = d
				}
				l2 += d * d
				if ar.Data[i] < 0 || ar.Data[i] > 1 {
					t.Fatalf("%s: pixel %g outside [0,1]", a.Name(), ar.Data[i])
				}
			}
			if norm == Linf && linf > eps*1.0001 {
				t.Fatalf("linf budget violated: %g > %g", linf, eps)
			}
			if norm == L2 && l2 > eps*eps*1.0002 {
				t.Fatalf("l2 budget violated: %g > %g", l2, eps*eps)
			}
		}
	}
}

// TestEOTBatchMatchesScalar pins the chunk-independence contract every
// attack carries: PerturbBatch row r equals Perturb on sample r under
// the same rng seed, bit for bit.
func TestEOTBatchMatchesScalar(t *testing.T) {
	m, set := trainedModel(t)
	a := NewEOT(testSampler(m, "t"), Linf, 3)
	const eps = 0.08
	n := 5
	xs := tensor.Stack(set.X[:n])
	batch := a.PerturbBatch(m, xs, set.Y[:n], eps, eotRngs(n, 17))
	scalarRngs := eotRngs(n, 17)
	for r := 0; r < n; r++ {
		adv := a.Perturb(m, set.X[r], set.Y[r], eps, scalarRngs[r])
		br := batch.Row(r)
		for i := range adv.Data {
			if adv.Data[i] != br.Data[i] {
				t.Fatalf("row %d diverges from scalar crafting at %d: %v != %v", r, i, br.Data[i], adv.Data[i])
			}
		}
	}
}

// TestEOTConfigKeyIsolatesTargets: two EOT instances over different
// defenses (or sample counts) must never share crafted-example cache
// entries.
func TestEOTConfigKeyIsolatesTargets(t *testing.T) {
	m, _ := trainedModel(t)
	a := NewEOT(testSampler(m, "pool-a"), Linf, 3)
	b := NewEOT(testSampler(m, "pool-b"), Linf, 3)
	c := NewEOT(testSampler(m, "pool-a"), Linf, 5)
	if ConfigKey(a) == ConfigKey(b) {
		t.Fatal("distinct targets share a ConfigKey")
	}
	if ConfigKey(a) == ConfigKey(c) {
		t.Fatal("distinct sample counts share a ConfigKey")
	}
	if a.Name() != "EOT-PGD-linf" {
		t.Fatalf("unexpected name %q", a.Name())
	}
	want := fmt.Sprintf("EOT-PGD-linf[steps=20,rel=0.05,samples=3,target=pool-a]")
	if ConfigKey(a) != want {
		t.Fatalf("ConfigKey %q, want %q", ConfigKey(a), want)
	}
}

// TestEOTFoolsSourceModel: with the trivial sampler that always serves
// the source model, EOT degenerates to PGD-with-averaging and must
// still fool the source on most samples at a generous budget — the
// attack does real damage, not just bookkeeping.
func TestEOTFoolsSourceModel(t *testing.T) {
	m, set := trainedModel(t)
	s := &fakeSampler{pool: []Model{m}, key: "self"}
	a := NewEOT(s, Linf, 2)
	const eps = 0.15
	n := 20
	xs := tensor.Stack(set.X[:n])
	adv := a.PerturbBatch(m, xs, set.Y[:n], eps, eotRngs(n, 23))
	fooledCount := 0
	correct := 0
	for r := 0; r < n; r++ {
		if tensor.ArgMax(m.Logits(xs.Row(r))) != set.Y[r] {
			continue // only initially-correct samples count
		}
		correct++
		if tensor.ArgMax(m.Logits(adv.Row(r))) != set.Y[r] {
			fooledCount++
		}
	}
	if correct == 0 {
		t.Fatal("model classifies nothing correctly")
	}
	if fooledCount*2 < correct {
		t.Fatalf("EOT fooled only %d/%d initially-correct samples at eps=%g", fooledCount, correct, eps)
	}
}
