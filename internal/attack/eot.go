package attack

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Sampler is a randomized victim — a defense that serves each query
// from a randomly drawn configuration (internal/defense.Ensemble draws
// an approximate-multiplier variant per query, MTDeep-style). The EOT
// attack evaluates such defenses honestly by averaging over draws
// instead of attacking any one fixed configuration.
type Sampler interface {
	Model
	// SampleModel draws one configuration from the defense's
	// distribution, consuming rng deterministically.
	SampleModel(rng *rand.Rand) Model
	// SamplerKey identifies the distribution — pool, quantization,
	// source weights, seed — for crafted-example cache keys: two
	// samplers with different pools must never share EOT entries.
	SamplerKey() string
}

// LogitGradModel is a model that can backpropagate an externally
// supplied logits gradient to its input — the BPDA surrogate hook EOT
// needs, since the sampled configurations (quantized AxDNN variants)
// are not differentiable. internal/nn networks implement it.
type LogitGradModel interface {
	Model
	GradFromLogitsBatch(xs, dlogits *tensor.T) *tensor.T
}

// EOT is the adaptive attack on randomized-approximation defenses:
// PGD over the expectation of the loss under the defense's
// configuration distribution (Expectation over Transformation,
// Athalye et al. 2018). Each step scores the current iterate on
// Samples configurations drawn from the target, averages the
// softmax-CE logit gradients, and backpropagates the average through
// the accurate float source network (BPDA — the quantized
// configurations themselves have no gradients). Crafting against the
// mean gradient rather than the single float surrogate is what makes
// the randomized ensemble's measured robustness honest instead of
// gradient-obfuscated.
type EOT struct {
	target Sampler
	norm   Norm
	// Steps / RelStep follow PGD's in-tree defaults (20, 0.05), so the
	// EOT grid is comparable step-for-step with the plain PGD grid.
	Steps   int
	RelStep float64
	// Samples is the number of configuration draws averaged per step.
	Samples int
}

// NewEOT returns an EOT attack on the given randomized defense,
// bounded by the given norm, averaging samples draws per step. Like
// NewRestart it is configuration, not a registry entry: it exists only
// relative to a concrete defense instance.
func NewEOT(target Sampler, n Norm, samples int) *EOT {
	if samples < 1 {
		samples = 1
	}
	return &EOT{target: target, norm: n, Steps: 20, RelStep: 0.05, Samples: samples}
}

// Name implements Attack. The name deliberately reads as an adaptive
// PGD variant — that is the comparison a defense suite draws.
func (a *EOT) Name() string { return fmt.Sprintf("EOT-PGD-%s", a.norm) }

// Norm implements Attack.
func (a *EOT) Norm() Norm { return a.norm }

// ConfigKey implements Configurable: the step schedule, sample count,
// and the target distribution all change what gets crafted.
func (a *EOT) ConfigKey() string {
	return fmt.Sprintf("%s[steps=%d,rel=%g,samples=%d,target=%s]",
		a.Name(), a.Steps, a.RelStep, a.Samples, a.target.SamplerKey())
}

// Perturb implements Attack as the singleton batch, so the scalar
// protocol consumes rng exactly as PerturbBatch consumes rngs[0].
func (a *EOT) Perturb(m Model, x *tensor.T, label int, eps float64, rng *rand.Rand) *tensor.T {
	adv := a.PerturbBatch(m, tensor.Stack([]*tensor.T{x}), []int{label}, eps, []*rand.Rand{rng})
	return adv.Row(0).Clone()
}

// PerturbBatch implements BatchAttack. Row r consumes rngs[r] only —
// random start first, then Samples configuration draws per step — so
// the crafted batch is independent of chunking, bit for bit.
func (a *EOT) PerturbBatch(m Model, xs *tensor.T, labels []int, eps float64, rngs []*rand.Rand) *tensor.T {
	sg := mustLogitGrad(m, a.Name())
	if eps == 0 {
		return xs.Clone()
	}
	adv := xs.Clone()
	for r := 0; r < adv.Rows(); r++ {
		randomInitBall(a.norm, adv.Row(r), xs.Row(r), eps, rngs[r])
	}
	alpha := a.RelStep * eps
	for s := 0; s < a.Steps; s++ {
		dl := a.meanLogitGrad(adv, labels, rngs)
		grad := sg.GradFromLogitsBatch(adv, dl)
		if a.norm == Linf {
			grad.Sign()
			adv.AddScaled(float32(alpha), grad)
		} else {
			stepL2Rows(adv, grad, alpha)
		}
		projectRows(a.norm, adv, xs, eps)
		adv.Clamp(0, 1)
	}
	return adv
}

// meanLogitGrad returns the [N, classes] softmax-CE logit gradient
// averaged over Samples configuration draws per row. Rows drawing the
// same configuration within one sampling round are scored with a
// single LogitsBatch call. Backpropagation is linear in the logits
// gradient, so averaging before the (expensive) backward pass is
// exact: mean_k backward(dl_k) == backward(mean_k dl_k).
func (a *EOT) meanLogitGrad(adv *tensor.T, labels []int, rngs []*rand.Rand) *tensor.T {
	n := adv.Rows()
	var dl *tensor.T
	for k := 0; k < a.Samples; k++ {
		groups := make(map[Model][]int)
		for r := 0; r < n; r++ {
			cfg := a.target.SampleModel(rngs[r])
			groups[cfg] = append(groups[cfg], r)
		}
		// Map order is irrelevant: each row is touched by exactly one
		// group per round, so the accumulation order into any dl row is
		// fixed (round k strictly after round k-1).
		for cfg, rows := range groups {
			logits := groupLogits(cfg, adv, rows)
			classes := logits.RowLen()
			if dl == nil {
				dl = tensor.New(n, classes)
			}
			for i, r := range rows {
				g := softmaxGrad(logits.Row(i).Data, labels[r])
				row := dl.Data[r*classes : (r+1)*classes]
				for j, v := range g {
					row[j] += v
				}
			}
		}
	}
	dl.Scale(1 / float32(a.Samples))
	return dl
}

// groupLogits scores the listed rows of adv on one configuration,
// batched when the configuration supports it.
func groupLogits(cfg Model, adv *tensor.T, rows []int) *tensor.T {
	if bm, ok := cfg.(BatchModel); ok {
		return bm.LogitsBatch(tensor.GatherRows(adv, rows))
	}
	var out *tensor.T
	for i, r := range rows {
		l := cfg.Logits(adv.Row(r))
		if out == nil {
			out = tensor.New(len(rows), len(l))
		}
		copy(out.Row(i).Data, l)
	}
	return out
}

// softmaxGrad is the gradient of softmax cross-entropy w.r.t. the
// logits: softmax(logits) minus the one-hot label. It mirrors
// nn.SoftmaxCE's gradient without coupling the attack package to nn.
func softmaxGrad(logits []float32, label int) []float32 {
	maxv := logits[0]
	for _, v := range logits[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	g := make([]float32, len(logits))
	for i, v := range logits {
		e := math.Exp(float64(v - maxv))
		g[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range g {
		g[i] *= inv
	}
	g[label] -= 1
	return g
}

// mustLogitGrad asserts the model supports surrogate backpropagation.
func mustLogitGrad(m Model, name string) LogitGradModel {
	g, ok := m.(LogitGradModel)
	if !ok {
		panic("attack: " + name + " requires a logit-gradient model (accurate float DNN)")
	}
	return g
}
