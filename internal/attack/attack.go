// Package attack implements the paper's ten adversarial attacks (Table I)
// with Foolbox-compatible semantics:
//
//	gradient-based: FGM (l2, linf), BIM (l2, linf), PGD (l2, linf)
//	decision-based: CR (l2), RAG (l2), RAU (l2, linf)
//
// plus a universal/targeted extension family beyond Table I:
//
//	momentum: MIFGSM (l2, linf) — momentum-iterative FGSM
//	set-level: UAP (l2, linf) — one image-agnostic perturbation per set
//	wrapper: Restart — random restarts around PGD (see NewRestart)
//
// Attacks perturb a correctly labelled input within a perturbation
// budget eps measured in the attack's norm, clamping to the valid pixel
// box [0,1]. Per the paper's threat model, attacks are always run
// against the *accurate* model (the adversary does not know the victim's
// inexactness); the perturbed inputs are then replayed on AxDNN victims
// by the harness in internal/core.
//
// Every attack also has a batched form (see BatchAttack / AsBatch):
// gradient attacks craft whole batches per gradient step, decision
// attacks keep their scalar query semantics behind a per-row adapter,
// and both reproduce the scalar perturbations bit for bit under the
// same per-sample seeds.
package attack

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Model is the minimal classifier interface the decision-based attacks
// need.
type Model interface {
	Logits(x *tensor.T) []float32
}

// GradModel additionally exposes the loss gradient w.r.t. the input,
// as required by the gradient-based attacks. internal/nn networks
// implement it.
type GradModel interface {
	Model
	LossGrad(x *tensor.T, label int) (float32, *tensor.T)
}

// Norm identifies the distance metric bounding a perturbation.
type Norm int

// Supported perturbation norms.
const (
	L2 Norm = iota
	Linf
)

// String returns the paper's notation for the norm.
func (n Norm) String() string {
	if n == Linf {
		return "linf"
	}
	return "l2"
}

// Attack crafts an adversarial example for (x, label) within budget eps.
// Implementations must not modify x and must be safe for concurrent use
// with distinct rng instances. Gradient-based attacks require m to be a
// GradModel and panic otherwise (a configuration bug, not a runtime
// condition).
type Attack interface {
	Name() string
	Norm() Norm
	Perturb(m Model, x *tensor.T, label int, eps float64, rng *rand.Rand) *tensor.T
}

// fooled reports whether m misclassifies x w.r.t. label.
func fooled(m Model, x *tensor.T, label int) bool {
	return tensor.ArgMax(m.Logits(x)) != label
}

// mustGrad asserts the model supports gradients.
func mustGrad(m Model, name string) GradModel {
	g, ok := m.(GradModel)
	if !ok {
		panic("attack: " + name + " requires a gradient model (accurate float DNN)")
	}
	return g
}

// stepL2 moves x along the L2-normalised direction d by length alpha.
func stepL2(x, d *tensor.T, alpha float64) {
	n := d.L2Norm()
	if n == 0 {
		return
	}
	x.AddScaled(float32(alpha/n), d)
}

// gaussianDir fills a fresh tensor with standard normal noise.
func gaussianDir(shape []int, rng *rand.Rand) *tensor.T {
	d := tensor.New(shape...)
	for i := range d.Data {
		d.Data[i] = float32(rng.NormFloat64())
	}
	return d
}

// uniformDir fills a fresh tensor with uniform noise in [-1, 1].
func uniformDir(shape []int, rng *rand.Rand) *tensor.T {
	d := tensor.New(shape...)
	for i := range d.Data {
		d.Data[i] = float32(rng.Float64()*2 - 1)
	}
	return d
}

// project applies the norm-appropriate projection of adv into the
// eps-ball around x.
func project(norm Norm, adv, x *tensor.T, eps float64) {
	if norm == Linf {
		tensor.ProjectLinf(adv, x, eps)
	} else {
		tensor.ProjectL2(adv, x, eps)
	}
}

// TableI returns the paper's ten-attack suite in Table I order.
func TableI() []Attack {
	return []Attack{
		NewFGM(L2), NewFGM(Linf),
		NewBIM(L2), NewBIM(Linf),
		NewPGD(L2), NewPGD(Linf),
		NewCR(),
		NewRAG(),
		NewRAU(L2), NewRAU(Linf),
	}
}

// All returns every registered attack: the Table I suite followed by
// the universal/momentum extension family (MI-FGSM and the UAP set
// attack). The PGD restart wrapper is configuration (see NewRestart
// and experiment.AttackParams), not a registry entry.
func All() []Attack {
	return append(TableI(),
		NewMIFGSM(L2), NewMIFGSM(Linf),
		NewUAP(L2), NewUAP(Linf),
	)
}

// Names lists the attack names of the full suite, Table I first —
// the valid values for spec files and -attack flags.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name()
	}
	return names
}

// Find returns the attack whose Name matches, or the canonical
// unknown-attack error naming the valid set. Every surface that
// resolves attack names — flag parsing, spec validation, defense
// configuration — reports the same message through it.
func Find(name string) (Attack, error) {
	for _, a := range All() {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("unknown attack %q (have: %v)", name, Names())
}

// ByName returns the attack whose Name matches, or nil. Callers that
// need the error message should use Find.
func ByName(name string) Attack {
	a, _ := Find(name)
	return a
}

// Configurable is implemented by attacks with exported tunable
// parameters: ConfigKey must fold every parameter that affects
// crafting into the returned string. Attacks fully determined by
// their constructor (CR, RAG, RAU — no exported knobs) don't need it;
// their Name suffices.
type Configurable interface {
	ConfigKey() string
}

// ConfigKey identifies an attack together with every tunable
// parameter that affects crafting. Caches of crafted examples must
// key on it rather than Name(): two BIM instances named "BIM-linf"
// with different step counts craft different examples.
func ConfigKey(a Attack) string {
	if c, ok := a.(Configurable); ok {
		return c.ConfigKey()
	}
	return a.Name()
}
