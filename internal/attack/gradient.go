package attack

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// FGM is the Fast Gradient Method: a single step of size eps along the
// loss gradient — the sign of the gradient for linf (FGSM), the
// L2-normalised gradient for l2.
type FGM struct{ norm Norm }

// NewFGM returns an FGM attack bounded by the given norm.
func NewFGM(n Norm) *FGM { return &FGM{norm: n} }

// Name implements Attack.
func (a *FGM) Name() string { return fmt.Sprintf("FGM-%s", a.norm) }

// Norm implements Attack.
func (a *FGM) Norm() Norm { return a.norm }

// Perturb implements Attack.
func (a *FGM) Perturb(m Model, x *tensor.T, label int, eps float64, _ *rand.Rand) *tensor.T {
	g := mustGrad(m, a.Name())
	if eps == 0 {
		return x.Clone()
	}
	_, grad := g.LossGrad(x, label)
	adv := x.Clone()
	if a.norm == Linf {
		grad.Sign()
		adv.AddScaled(float32(eps), grad)
	} else {
		stepL2(adv, grad, eps)
	}
	adv.Clamp(0, 1)
	return adv
}

// PerturbBatch implements BatchAttack: one batched gradient call
// crafts the whole batch. FGM draws no randomness, so rngs is unused.
func (a *FGM) PerturbBatch(m Model, xs *tensor.T, labels []int, eps float64, _ []*rand.Rand) *tensor.T {
	g := mustBatchGrad(m, a.Name())
	if eps == 0 {
		return xs.Clone()
	}
	_, grad := g.LossGradBatch(xs, labels)
	adv := xs.Clone()
	if a.norm == Linf {
		grad.Sign()
		adv.AddScaled(float32(eps), grad)
	} else {
		stepL2Rows(adv, grad, eps)
	}
	adv.Clamp(0, 1)
	return adv
}

// BIM is the Basic Iterative Method (iterative FGSM): repeated small
// gradient steps, each followed by projection into the eps-ball and the
// valid pixel box. Defaults follow Foolbox: 10 iterations with a
// relative step size of 0.2.
type BIM struct {
	norm    Norm
	Steps   int
	RelStep float64
	// randomStart enables the PGD variant.
	randomStart bool
	name        string
}

// NewBIM returns a BIM attack bounded by the given norm.
func NewBIM(n Norm) *BIM {
	return &BIM{norm: n, Steps: 10, RelStep: 0.2, name: "BIM"}
}

// NewPGD returns Projected Gradient Descent: BIM with a random start
// inside the eps-ball. Foolbox defaults: 40 iterations, relative step
// 0.025; we keep 20/0.05 for wall-clock parity with the LUT victims —
// at these budgets the attack is already saturated.
func NewPGD(n Norm) *BIM {
	return &BIM{norm: n, Steps: 20, RelStep: 0.05, randomStart: true, name: "PGD"}
}

// Name implements Attack.
func (a *BIM) Name() string { return fmt.Sprintf("%s-%s", a.name, a.norm) }

// ConfigKey implements Configurable: Steps and RelStep are exported
// tuning knobs, so crafted-example caches must distinguish them.
func (a *BIM) ConfigKey() string {
	return fmt.Sprintf("%s[steps=%d,rel=%g]", a.Name(), a.Steps, a.RelStep)
}

// Norm implements Attack.
func (a *BIM) Norm() Norm { return a.norm }

// RandomStart reports whether this instance is the PGD variant —
// i.e. whether re-running it draws fresh randomness, which is what
// makes wrapping it in Restart meaningful.
func (a *BIM) RandomStart() bool { return a.randomStart }

// Perturb implements Attack.
func (a *BIM) Perturb(m Model, x *tensor.T, label int, eps float64, rng *rand.Rand) *tensor.T {
	g := mustGrad(m, a.Name())
	if eps == 0 {
		return x.Clone()
	}
	adv := x.Clone()
	if a.randomStart {
		a.randomInit(adv, x, eps, rng)
	}
	alpha := a.RelStep * eps
	for s := 0; s < a.Steps; s++ {
		_, grad := g.LossGrad(adv, label)
		if a.norm == Linf {
			grad.Sign()
			adv.AddScaled(float32(alpha), grad)
		} else {
			stepL2(adv, grad, alpha)
		}
		project(a.norm, adv, x, eps)
		adv.Clamp(0, 1)
	}
	return adv
}

// randomInit applies the PGD random start to one sample in place.
func (a *BIM) randomInit(adv, x *tensor.T, eps float64, rng *rand.Rand) {
	randomInitBall(a.norm, adv, x, eps, rng)
}

// randomInitBall applies a random start inside the eps-ball to one
// sample in place: uniform in the eps-box for linf, a gaussian
// direction with uniform radius for l2, then projection and box
// clamping. PGD and EOT share it, with an identical draw order, so
// their iterates start from the same distribution.
func randomInitBall(norm Norm, adv, x *tensor.T, eps float64, rng *rand.Rand) {
	if norm == Linf {
		for i := range adv.Data {
			adv.Data[i] += float32((rng.Float64()*2 - 1) * eps)
		}
	} else {
		d := gaussianDir(x.Shape, rng)
		stepL2(adv, d, rng.Float64()*eps)
	}
	project(norm, adv, x, eps)
	adv.Clamp(0, 1)
}

// PerturbBatch implements BatchAttack: every gradient step is one
// batched LossGradBatch call over the whole batch. Row r consumes
// rngs[r] in exactly the scalar draw order, so the crafted batch is
// bit-for-bit the scalar crafted samples.
func (a *BIM) PerturbBatch(m Model, xs *tensor.T, labels []int, eps float64, rngs []*rand.Rand) *tensor.T {
	g := mustBatchGrad(m, a.Name())
	if eps == 0 {
		return xs.Clone()
	}
	adv := xs.Clone()
	if a.randomStart {
		for r := 0; r < adv.Rows(); r++ {
			a.randomInit(adv.Row(r), xs.Row(r), eps, rngs[r])
		}
	}
	alpha := a.RelStep * eps
	for s := 0; s < a.Steps; s++ {
		_, grad := g.LossGradBatch(adv, labels)
		if a.norm == Linf {
			grad.Sign()
			adv.AddScaled(float32(alpha), grad)
		} else {
			stepL2Rows(adv, grad, alpha)
		}
		projectRows(a.norm, adv, xs, eps)
		adv.Clamp(0, 1)
	}
	return adv
}
