package attack

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// MIFGSM is the Momentum Iterative FGSM (Dong et al. 2018; Foolbox's
// momentum-iterative attacks): BIM with a decayed accumulator of
// L1-normalised gradients steering every step, which stabilises the
// update direction across iterations and transfers better than plain
// BIM. Defaults: 10 steps, mu = 0.9, step size eps/10.
type MIFGSM struct {
	norm Norm
	// Steps is the number of gradient iterations.
	Steps int
	// Mu is the momentum decay applied to the accumulated gradient.
	Mu float64
	// RelStep is the per-iteration step size relative to eps.
	RelStep float64
}

// NewMIFGSM returns an MI-FGSM attack bounded by the given norm.
func NewMIFGSM(n Norm) *MIFGSM {
	return &MIFGSM{norm: n, Steps: 10, Mu: 0.9, RelStep: 0.1}
}

// Name implements Attack.
func (a *MIFGSM) Name() string { return fmt.Sprintf("MIFGSM-%s", a.norm) }

// Norm implements Attack.
func (a *MIFGSM) Norm() Norm { return a.norm }

// ConfigKey implements Configurable: Steps, Mu, and RelStep are
// exported tuning knobs, so crafted-example caches must distinguish
// them.
func (a *MIFGSM) ConfigKey() string {
	return fmt.Sprintf("%s[steps=%d,mu=%g,rel=%g]", a.Name(), a.Steps, a.Mu, a.RelStep)
}

// Perturb implements Attack.
func (a *MIFGSM) Perturb(m Model, x *tensor.T, label int, eps float64, _ *rand.Rand) *tensor.T {
	g := mustGrad(m, a.Name())
	if eps == 0 {
		return x.Clone()
	}
	adv := x.Clone()
	mom := tensor.New(x.Shape...)
	alpha := a.RelStep * eps
	for s := 0; s < a.Steps; s++ {
		_, grad := g.LossGrad(adv, label)
		a.accumulate(mom, grad)
		a.step(adv, mom, alpha)
		project(a.norm, adv, x, eps)
		adv.Clamp(0, 1)
	}
	return adv
}

// PerturbBatch implements BatchAttack: every gradient step is one
// batched LossGradBatch call; the momentum accumulator is per-row, so
// the crafted batch is bit-for-bit the scalar crafted samples.
func (a *MIFGSM) PerturbBatch(m Model, xs *tensor.T, labels []int, eps float64, _ []*rand.Rand) *tensor.T {
	g := mustBatchGrad(m, a.Name())
	if eps == 0 {
		return xs.Clone()
	}
	adv := xs.Clone()
	mom := tensor.New(xs.Shape...)
	alpha := a.RelStep * eps
	for s := 0; s < a.Steps; s++ {
		_, grad := g.LossGradBatch(adv, labels)
		for r := 0; r < adv.Rows(); r++ {
			a.accumulate(mom.Row(r), grad.Row(r))
			a.step(adv.Row(r), mom.Row(r), alpha)
		}
		projectRows(a.norm, adv, xs, eps)
		adv.Clamp(0, 1)
	}
	return adv
}

// accumulate folds one L1-normalised gradient into the momentum
// buffer: mom = mu*mom + grad/||grad||_1. grad is consumed.
func (a *MIFGSM) accumulate(mom, grad *tensor.T) {
	if n := grad.L1Norm(); n > 0 {
		grad.Scale(float32(1 / n))
	}
	mom.Scale(float32(a.Mu))
	mom.AddScaled(1, grad)
}

// step moves adv along the momentum direction: its sign for linf, its
// L2-normalised direction for l2.
func (a *MIFGSM) step(adv, mom *tensor.T, alpha float64) {
	if a.norm == Linf {
		addSign(adv, mom, alpha)
	} else {
		stepL2(adv, mom, alpha)
	}
}

// addSign adds alpha*sign(d) to x without mutating d.
func addSign(x, d *tensor.T, alpha float64) {
	a := float32(alpha)
	for i, v := range d.Data {
		switch {
		case v > 0:
			x.Data[i] += a
		case v < 0:
			x.Data[i] -= a
		}
	}
}
