package attack

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/tensor"
)

// TestUAPSingletonParity pins the scalar protocol: Perturb is
// PerturbSet over the one-sample set, bit for bit.
func TestUAPSingletonParity(t *testing.T) {
	m, set := trainedModel(t)
	x, y := correctSample(t, m, set)
	for _, n := range []Norm{L2, Linf} {
		a := NewUAP(n)
		scalar := a.Perturb(m, x, y, 0.3, rand.New(rand.NewSource(11)))
		batch := a.PerturbSet(context.Background(), m, tensor.Stack([]*tensor.T{x}), []int{y}, 0.3, rand.New(rand.NewSource(11)))
		for i := range scalar.Data {
			if scalar.Data[i] != batch.Row(0).Data[i] {
				t.Fatalf("%s scalar/set crafting diverged at pixel %d", a.Name(), i)
			}
		}
	}
}

// TestUAPIsImageAgnostic: the crafted perturbation must be the same
// delta on every row — PerturbSet is exactly Craft's delta added to
// each sample and clamped.
func TestUAPIsImageAgnostic(t *testing.T) {
	m, set := trainedModel(t)
	xs := tensor.Stack(set.X[:8])
	labels := append([]int(nil), set.Y[:8]...)
	const eps = 0.25
	a := NewUAP(Linf)
	delta := a.Craft(context.Background(), m, xs, labels, eps, rand.New(rand.NewSource(21)))
	if got := delta.LinfNorm(); got == 0 || got > eps*1.0001 {
		t.Fatalf("delta linf norm %g, want in (0, %g]", got, eps)
	}
	adv := a.PerturbSet(context.Background(), m, xs, labels, eps, rand.New(rand.NewSource(21)))
	for r := 0; r < xs.Rows(); r++ {
		row, orig := adv.Row(r), xs.Row(r)
		for i := range row.Data {
			want := orig.Data[i] + delta.Data[i]
			if want < 0 {
				want = 0
			} else if want > 1 {
				want = 1
			}
			if row.Data[i] != want {
				t.Fatalf("row %d pixel %d: %g is not clamp(x+delta)=%g", r, i, row.Data[i], want)
			}
		}
	}
}

// TestUAPDeterministicPerSeed: same set, same eps, same seed — same
// crafted batch, bit for bit; a different seed must craft a
// different perturbation (the random init matters).
func TestUAPDeterministicPerSeed(t *testing.T) {
	m, set := trainedModel(t)
	xs := tensor.Stack(set.X[:6])
	labels := set.Y[:6]
	a := NewUAP(Linf)
	one := a.PerturbSet(context.Background(), m, xs, labels, 0.2, rand.New(rand.NewSource(5)))
	two := a.PerturbSet(context.Background(), m, xs, labels, 0.2, rand.New(rand.NewSource(5)))
	for i := range one.Data {
		if one.Data[i] != two.Data[i] {
			t.Fatal("UAP crafting is not deterministic under a fixed seed")
		}
	}
	other := a.PerturbSet(context.Background(), m, xs, labels, 0.2, rand.New(rand.NewSource(6)))
	same := true
	for i := range one.Data {
		if one.Data[i] != other.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds crafted identical universal perturbations")
	}
}

// TestUAPChunkIndependence: the crafted delta must not depend on how
// the set size relates to the internal crafting chunk — the
// aggregation is sequential, so a set spanning multiple chunks is
// still one perturbation.
func TestUAPChunkIndependence(t *testing.T) {
	m, set := trainedModel(t)
	n := uapChunk + 3 // force a partial trailing chunk
	if len(set.X) < n {
		t.Skip("fixture set too small")
	}
	xs := tensor.Stack(set.X[:n])
	a := NewUAP(Linf)
	a.Iters = 2
	delta := a.Craft(context.Background(), m, xs, set.Y[:n], 0.2, rand.New(rand.NewSource(9)))
	if delta.LinfNorm() == 0 {
		t.Fatal("crafting over a multi-chunk set produced a zero delta")
	}
}

// TestRestartMatchesScalar is the wrapper's parity contract: batched
// restarted PGD row r equals the scalar restarted PGD on sample r.
func TestRestartMatchesScalar(t *testing.T) {
	m, set := trainedModel(t)
	xs := tensor.Stack(set.X[:6])
	labels := set.Y[:6]
	a := NewRestart(NewPGD(Linf), 3)
	mkRngs := func() []*rand.Rand {
		out := make([]*rand.Rand, 6)
		for i := range out {
			out[i] = rand.New(rand.NewSource(int64(300 + i)))
		}
		return out
	}
	adv := a.PerturbBatch(m, xs, labels, 0.15, mkRngs())
	scalarRngs := mkRngs()
	for r := 0; r < xs.Rows(); r++ {
		want := a.Perturb(m, xs.Row(r), labels[r], 0.15, scalarRngs[r])
		got := adv.Row(r)
		for j := range want.Data {
			if got.Data[j] != want.Data[j] {
				t.Fatalf("restarted PGD sample %d diverged from scalar at pixel %d", r, j)
			}
		}
	}
}

// TestRestartKeepsIdentity: the wrapper presents the inner attack's
// Name and Norm (grids stay labelled "PGD-linf") while ConfigKey
// gains the restart count.
func TestRestartKeepsIdentity(t *testing.T) {
	a := NewRestart(NewPGD(Linf), 4)
	if a.Name() != "PGD-linf" {
		t.Fatalf("restart wrapper renamed the attack: %s", a.Name())
	}
	if a.Norm() != Linf {
		t.Fatal("restart wrapper changed the norm")
	}
	if !strings.Contains(ConfigKey(a), "restarts=4") {
		t.Fatalf("ConfigKey %q does not carry the restart count", ConfigKey(a))
	}
	if NewRestart(NewPGD(Linf), 0).Restarts != 1 {
		t.Fatal("restart count must be clamped to at least 1")
	}
}

// TestRestartAtLeastAsStrong: with more chances, restarted PGD must
// fool at least as many samples as a single run with the same
// per-sample streams.
func TestRestartAtLeastAsStrong(t *testing.T) {
	m, set := trainedModel(t)
	plain := NewPGD(Linf)
	restarted := NewRestart(NewPGD(Linf), 3)
	var plainFooled, restartFooled int
	for i := 0; i < 40; i++ {
		x, y := set.X[i], set.Y[i]
		if tensor.ArgMax(m.Logits(x)) != y {
			continue
		}
		if fooled(m, plain.Perturb(m, x, y, 0.1, rand.New(rand.NewSource(int64(i)))), y) {
			plainFooled++
		}
		if fooled(m, restarted.Perturb(m, x, y, 0.1, rand.New(rand.NewSource(int64(i)))), y) {
			restartFooled++
		}
	}
	if restartFooled < plainFooled {
		t.Errorf("restarted PGD (%d) weaker than plain PGD (%d)", restartFooled, plainFooled)
	}
}

// TestConfigKeyDistinguishesNewKnobs: every tunable knob of the new
// family must change the cache identity — momentum, UAP iterations,
// restart counts — while equal configurations agree.
func TestConfigKeyDistinguishesNewKnobs(t *testing.T) {
	mi := NewMIFGSM(Linf)
	mi2 := NewMIFGSM(Linf)
	if ConfigKey(mi) != ConfigKey(mi2) {
		t.Fatal("identical MIFGSM configs must share a ConfigKey")
	}
	mi2.Mu = 0.5
	if ConfigKey(mi) == ConfigKey(mi2) {
		t.Fatal("MIFGSM momentum change not reflected in ConfigKey")
	}
	u := NewUAP(Linf)
	u2 := NewUAP(Linf)
	u2.Iters = 3
	if ConfigKey(u) == ConfigKey(u2) {
		t.Fatal("UAP iteration change not reflected in ConfigKey")
	}
	r2 := NewRestart(NewPGD(Linf), 2)
	r3 := NewRestart(NewPGD(Linf), 3)
	if ConfigKey(r2) == ConfigKey(r3) {
		t.Fatal("restart count change not reflected in ConfigKey")
	}
	if ConfigKey(r2) == ConfigKey(NewPGD(Linf)) {
		t.Fatal("restarted PGD must not share plain PGD's cache identity")
	}
	// The AsBatch adapter (used by NewRestart for scalar-only inner
	// attacks) must forward the inner ConfigKey, not degrade to Name.
	tuned := NewUAP(Linf)
	tuned.Iters = 3
	if ConfigKey(NewRestart(tuned, 2)) == ConfigKey(NewRestart(NewUAP(Linf), 2)) {
		t.Fatal("restart wrapper lost the inner attack's tuning knobs through AsBatch")
	}
	seen := map[string]bool{}
	for _, a := range All() {
		k := ConfigKey(a)
		if seen[k] {
			t.Fatalf("duplicate ConfigKey %q in the registry", k)
		}
		seen[k] = true
	}
}

// alwaysRight predicts class 0 for everything, so label-0 samples are
// never fooled — the budget-exhausted path of the noise attacks.
type alwaysRight struct{}

func (alwaysRight) Logits(*tensor.T) []float32 { return []float32{1, 0} }

// TestNoiseBudgetExhausted: when no repeat fools the model, RAG/RAU
// must return the *last* sampled perturbation, deterministically
// under a fixed seed, with the budget fully spent.
func TestNoiseBudgetExhausted(t *testing.T) {
	x := tensor.FromSlice([]float32{0.4, 0.5, 0.6, 0.5}, 4)
	const eps = 0.2
	for _, atk := range []Attack{NewRAG(), NewRAU(L2), NewRAU(Linf)} {
		a := atk.(*noiseAttack)
		adv := atk.Perturb(alwaysRight{}, x, 0, eps, rand.New(rand.NewSource(77)))
		again := atk.Perturb(alwaysRight{}, x, 0, eps, rand.New(rand.NewSource(77)))
		for i := range adv.Data {
			if adv.Data[i] != again.Data[i] {
				t.Fatalf("%s budget-exhausted path not deterministic", atk.Name())
			}
		}
		// Replay the rng by hand: the returned sample must be the
		// final repeat's, not an earlier one.
		rng := rand.New(rand.NewSource(77))
		var want *tensor.T
		for r := 0; r < a.repeats; r++ {
			d := a.sample(x.Shape, rng)
			want = x.Clone()
			if a.norm == Linf {
				want.AddScaled(float32(eps/d.LinfNorm()), d)
			} else {
				stepL2(want, d, eps)
			}
			want.Clamp(0, 1)
		}
		for i := range adv.Data {
			if adv.Data[i] != want.Data[i] {
				t.Fatalf("%s did not return the last repeat's sample", atk.Name())
			}
		}
		// The budget was actually spent: the input came back perturbed.
		if d := tensor.Sub(adv, x); d.L2Norm() == 0 {
			t.Fatalf("%s returned the input unperturbed", atk.Name())
		}
	}
}

// TestNoiseResamplesZeroDirections: a sampler that first draws an
// all-zero direction must be redrawn, so eps>0 always perturbs
// instead of silently returning a clone of the input.
func TestNoiseResamplesZeroDirections(t *testing.T) {
	for _, norm := range []Norm{L2, Linf} {
		draws := 0
		a := &noiseAttack{name: "zero-first", norm: norm, repeats: 1,
			sample: func(shape []int, rng *rand.Rand) *tensor.T {
				draws++
				d := tensor.New(shape...)
				if draws > 1 {
					d.Data[0] = 1
				}
				return d
			}}
		x := tensor.FromSlice([]float32{0.5, 0.5}, 2)
		adv := a.Perturb(alwaysRight{}, x, 0, 0.25, rand.New(rand.NewSource(1)))
		if draws != 2 {
			t.Fatalf("%s: zero direction drawn %d times, want a resample (2 draws)", norm, draws)
		}
		if d := tensor.Sub(adv, x); d.L2Norm() == 0 {
			t.Fatalf("%s: eps>0 returned an unperturbed input", norm)
		}
	}
}
