package attack

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/tensor"
	"repro/internal/train"
)

// trainedModel returns a small trained FFNN plus a labelled test set;
// shared across the attack tests (trained once).
var trainedModel = func() func(t *testing.T) (GradModel, *dataset.Set) {
	var net *GradHolder
	var test *dataset.Set
	return func(t *testing.T) (GradModel, *dataset.Set) {
		t.Helper()
		if net == nil {
			tr := dataset.Digits(1200, 31)
			test = dataset.Digits(120, 32)
			m := models.FFNN(28*28, 10, 33)
			train.Fit(m, tr, train.Config{Epochs: 2, Batch: 32, LR: 0.05, Momentum: 0.9, Seed: 1})
			net = &GradHolder{m}
		}
		return net.N, test
	}
}()

// GradHolder pins the concrete type so tests share one instance.
type GradHolder struct{ N GradModel }

func correctSample(t *testing.T, m Model, set *dataset.Set) (*tensor.T, int) {
	t.Helper()
	for i := range set.X {
		if tensor.ArgMax(m.Logits(set.X[i])) == set.Y[i] {
			return set.X[i], set.Y[i]
		}
	}
	t.Fatal("model classifies nothing correctly")
	return nil, 0
}

func TestAllReturnsAttackRegistry(t *testing.T) {
	if n := len(TableI()); n != 10 {
		t.Fatalf("TableI() has %d attacks, want 10", n)
	}
	// Table I's ten plus the universal/momentum family: MIFGSM and UAP
	// in both norms.
	if n := len(All()); n != 14 {
		t.Fatalf("All() has %d attacks, want 14", n)
	}
	seen := map[string]bool{}
	for _, a := range All() {
		if seen[a.Name()] {
			t.Fatalf("duplicate attack name %s", a.Name())
		}
		seen[a.Name()] = true
	}
	for _, name := range []string{"MIFGSM-l2", "MIFGSM-linf", "UAP-l2", "UAP-linf"} {
		if !seen[name] {
			t.Fatalf("registry is missing %s", name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, a := range All() {
		if got := ByName(a.Name()); got == nil || got.Name() != a.Name() {
			t.Fatalf("ByName(%s) failed", a.Name())
		}
	}
	if ByName("nope") != nil {
		t.Fatal("ByName should return nil for unknown attack")
	}
}

// TestNormBudgetsRespected: every attack must keep the perturbation
// within its declared norm budget (after box clamping, which can only
// shrink the perturbation).
func TestNormBudgetsRespected(t *testing.T) {
	m, set := trainedModel(t)
	x, y := correctSample(t, m, set)
	const eps = 0.3
	for _, atk := range All() {
		rng := rand.New(rand.NewSource(1))
		adv := atk.Perturb(m, x, y, eps, rng)
		d := tensor.Sub(adv, x)
		var got float64
		if atk.Norm() == Linf {
			got = d.LinfNorm()
		} else {
			got = d.L2Norm()
		}
		if got > eps*1.0001 {
			t.Errorf("%s exceeded budget: %f > %f", atk.Name(), got, eps)
		}
	}
}

func TestBoxConstraint(t *testing.T) {
	m, set := trainedModel(t)
	x, y := correctSample(t, m, set)
	for _, atk := range All() {
		rng := rand.New(rand.NewSource(2))
		adv := atk.Perturb(m, x, y, 1.0, rng)
		for _, v := range adv.Data {
			if v < 0 || v > 1 {
				t.Errorf("%s left the [0,1] box: %f", atk.Name(), v)
			}
		}
	}
}

func TestZeroEpsilonIsIdentity(t *testing.T) {
	m, set := trainedModel(t)
	x, y := correctSample(t, m, set)
	for _, atk := range All() {
		rng := rand.New(rand.NewSource(3))
		adv := atk.Perturb(m, x, y, 0, rng)
		for i := range adv.Data {
			if adv.Data[i] != x.Data[i] {
				t.Errorf("%s modified the input at eps=0", atk.Name())
				break
			}
		}
	}
}

func TestInputNeverMutated(t *testing.T) {
	m, set := trainedModel(t)
	x, y := correctSample(t, m, set)
	orig := x.Clone()
	for _, atk := range All() {
		rng := rand.New(rand.NewSource(4))
		atk.Perturb(m, x, y, 0.5, rng)
		for i := range x.Data {
			if x.Data[i] != orig.Data[i] {
				t.Fatalf("%s mutated its input", atk.Name())
			}
		}
	}
}

// TestGradientAttacksReduceAccuracy: FGSM-style attacks at a solid
// budget must fool the source model on a decent fraction of inputs.
func TestGradientAttacksReduceAccuracy(t *testing.T) {
	m, set := trainedModel(t)
	for _, name := range []string{"FGM-linf", "BIM-linf", "PGD-linf"} {
		atk := ByName(name)
		fooledCnt, total := 0, 0
		for i := 0; i < 60; i++ {
			x, y := set.X[i], set.Y[i]
			if tensor.ArgMax(m.Logits(x)) != y {
				continue
			}
			total++
			rng := rand.New(rand.NewSource(int64(i)))
			adv := atk.Perturb(m, x, y, 0.25, rng)
			if tensor.ArgMax(m.Logits(adv)) != y {
				fooledCnt++
			}
		}
		if total == 0 {
			t.Fatal("no correct samples")
		}
		if float64(fooledCnt)/float64(total) < 0.5 {
			t.Errorf("%s fooled only %d/%d at eps=0.25", name, fooledCnt, total)
		}
	}
}

// TestIterativeStrongerThanSingleStep: BIM should fool at least as
// often as FGM at the same budget (the reason the paper calls BIM/PGD
// its strongest attacks).
func TestIterativeStrongerThanSingleStep(t *testing.T) {
	m, set := trainedModel(t)
	fgm, bim := ByName("FGM-linf"), ByName("BIM-linf")
	fgmFooled, bimFooled := 0, 0
	for i := 0; i < 80; i++ {
		x, y := set.X[i], set.Y[i]
		if tensor.ArgMax(m.Logits(x)) != y {
			continue
		}
		rng1 := rand.New(rand.NewSource(int64(i)))
		rng2 := rand.New(rand.NewSource(int64(i)))
		if tensor.ArgMax(m.Logits(fgm.Perturb(m, x, y, 0.12, rng1))) != y {
			fgmFooled++
		}
		if tensor.ArgMax(m.Logits(bim.Perturb(m, x, y, 0.12, rng2))) != y {
			bimFooled++
		}
	}
	if bimFooled < fgmFooled {
		t.Errorf("BIM (%d) weaker than FGM (%d)", bimFooled, fgmFooled)
	}
}

func TestCRMovesTowardGray(t *testing.T) {
	atk := NewCR()
	x := tensor.New(1, 4, 4) // all zeros
	adv := atk.Perturb(nil, x, 0, 1.0, nil)
	for _, v := range adv.Data {
		if v <= 0 || v > 0.5 {
			t.Fatalf("CR moved pixel to %f, want in (0,0.5]", v)
		}
	}
	// Full budget saturates at exactly gray.
	advFull := atk.Perturb(nil, x, 0, 1e9, nil)
	for _, v := range advFull.Data {
		if v != 0.5 {
			t.Fatalf("CR with huge budget should reach 0.5, got %f", v)
		}
	}
}

func TestNoiseAttacksDeterministicPerRNG(t *testing.T) {
	m, set := trainedModel(t)
	x, y := correctSample(t, m, set)
	for _, name := range []string{"RAG-l2", "RAU-l2", "RAU-linf"} {
		atk := ByName(name)
		a := atk.Perturb(m, x, y, 0.5, rand.New(rand.NewSource(42)))
		b := atk.Perturb(m, x, y, 0.5, rand.New(rand.NewSource(42)))
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("%s not deterministic under a fixed rng", name)
			}
		}
	}
}

func TestGradientAttackRequiresGradModel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-gradient model")
		}
	}()
	NewFGM(Linf).Perturb(constModel{}, tensor.New(2), 0, 0.1, rand.New(rand.NewSource(1)))
}

type constModel struct{}

func (constModel) Logits(*tensor.T) []float32 { return []float32{1, 0} }

func TestNormStrings(t *testing.T) {
	if L2.String() != "l2" || Linf.String() != "linf" {
		t.Fatal("norm names wrong")
	}
}
