package attack

import (
	"math/rand"

	"repro/internal/tensor"
)

// BatchModel is a classifier that scores whole batches at once:
// LogitsBatch takes [N, sampleShape...] and returns [N, classes].
// Row r must match Logits on sample r bit for bit, so batched and
// scalar evaluation are interchangeable.
type BatchModel interface {
	Model
	LogitsBatch(xs *tensor.T) *tensor.T
}

// BatchGradModel additionally exposes the batched loss gradient, as
// required by batched gradient attacks. internal/nn networks
// implement it.
type BatchGradModel interface {
	BatchModel
	LossGradBatch(xs *tensor.T, labels []int) ([]float32, *tensor.T)
}

// BatchAttack crafts adversarial examples for a whole batch per model
// call. rngs holds one independent deterministic stream per row; an
// implementation must consume rngs[r] exactly as the scalar Perturb
// consumes its rng on sample r, so that batched and scalar crafting
// produce identical perturbations seed for seed.
type BatchAttack interface {
	Attack
	PerturbBatch(m Model, xs *tensor.T, labels []int, eps float64, rngs []*rand.Rand) *tensor.T
}

// AsBatch returns the batch form of an attack: gradient attacks
// (FGM/BIM/PGD) implement BatchAttack natively and craft whole batches
// per gradient step; decision attacks keep their scalar query
// semantics behind a per-row adapter.
func AsBatch(a Attack) BatchAttack {
	if b, ok := a.(BatchAttack); ok {
		return b
	}
	return &scalarBatch{a}
}

// scalarBatch adapts a scalar Attack to the batched interface by
// perturbing each row independently — exactly the scalar protocol,
// just batch-shaped.
type scalarBatch struct {
	Attack
}

// ConfigKey forwards the wrapped attack's cache identity: the adapter
// must never degrade a Configurable attack to its bare Name, or
// differently-tuned instances would share crafted-example cache
// entries.
func (s *scalarBatch) ConfigKey() string { return ConfigKey(s.Attack) }

func (s *scalarBatch) PerturbBatch(m Model, xs *tensor.T, labels []int, eps float64, rngs []*rand.Rand) *tensor.T {
	out := tensor.New(xs.Shape...)
	for r := 0; r < xs.Rows(); r++ {
		adv := s.Attack.Perturb(m, xs.Row(r), labels[r], eps, rngs[r])
		copy(out.Row(r).Data, adv.Data)
	}
	return out
}

// mustBatchGrad asserts the model supports batched gradients.
func mustBatchGrad(m Model, name string) BatchGradModel {
	g, ok := m.(BatchGradModel)
	if !ok {
		panic("attack: " + name + " requires a batch-gradient model (accurate float DNN)")
	}
	return g
}

// stepL2Rows applies stepL2 row by row with a shared step length.
func stepL2Rows(x, d *tensor.T, alpha float64) {
	for r := 0; r < x.Rows(); r++ {
		stepL2(x.Row(r), d.Row(r), alpha)
	}
}

// projectRows applies the norm-appropriate per-row projection of adv
// into the eps-ball around the matching row of x.
func projectRows(norm Norm, adv, x *tensor.T, eps float64) {
	if norm == Linf {
		tensor.ProjectLinfRows(adv, x, eps)
	} else {
		tensor.ProjectL2Rows(adv, x, eps)
	}
}
