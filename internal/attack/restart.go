package attack

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Restart wraps a randomised attack (PGD) in N random restarts: the
// attack is re-run from fresh random starts and the first restart
// that fools the source model wins; if none does, the last crafted
// sample is returned, so the budget is spent either way. The wrapper
// keeps the inner attack's Name — a restarted PGD-linf still sweeps
// as "PGD-linf" — but extends its ConfigKey, so crafted-example
// caches never conflate restarted and plain runs.
type Restart struct {
	inner BatchAttack
	// Restarts is the number of independent crafting runs.
	Restarts int
}

// NewRestart wraps an attack in n random restarts. The inner attack
// must draw fresh randomness per run (PGD's random start) for the
// restarts to explore distinct basins.
func NewRestart(a Attack, n int) *Restart {
	if n < 1 {
		n = 1
	}
	return &Restart{inner: AsBatch(a), Restarts: n}
}

// Name implements Attack, delegating to the wrapped attack.
func (a *Restart) Name() string { return a.inner.Name() }

// Norm implements Attack.
func (a *Restart) Norm() Norm { return a.inner.Norm() }

// ConfigKey implements Configurable: the restart count changes what
// gets crafted, on top of every inner knob.
func (a *Restart) ConfigKey() string {
	return fmt.Sprintf("%s[restarts=%d]", ConfigKey(a.inner), a.Restarts)
}

// Perturb implements Attack: sequential restarts consume the one rng
// stream in order, so restart k crafts identically whether or not
// restarts 1..k-1 succeeded elsewhere.
func (a *Restart) Perturb(m Model, x *tensor.T, label int, eps float64, rng *rand.Rand) *tensor.T {
	var adv *tensor.T
	for r := 0; r < a.Restarts; r++ {
		adv = a.inner.Perturb(m, x, label, eps, rng)
		if eps == 0 || fooled(m, adv, label) {
			return adv
		}
	}
	return adv
}

// PerturbBatch implements BatchAttack. Rows craft independently, so
// each restart re-crafts only the rows no earlier restart has fooled
// — exactly the rows whose rng streams the scalar protocol would
// still be consuming — and a fooled row keeps its first fooling
// sample, matching Perturb row for row, bit for bit.
func (a *Restart) PerturbBatch(m Model, xs *tensor.T, labels []int, eps float64, rngs []*rand.Rand) *tensor.T {
	out := a.inner.PerturbBatch(m, xs, labels, eps, rngs)
	if a.Restarts <= 1 || eps == 0 {
		return out
	}
	done := a.fooledRows(m, out, labels)
	for r := 1; r < a.Restarts; r++ {
		var open []int
		for row, ok := range done {
			if !ok {
				open = append(open, row)
			}
		}
		if len(open) == 0 {
			return out
		}
		subX := tensor.New(append([]int{len(open)}, xs.Shape[1:]...)...)
		subLabels := make([]int, len(open))
		subRngs := make([]*rand.Rand, len(open))
		for i, row := range open {
			copy(subX.Row(i).Data, xs.Row(row).Data)
			subLabels[i] = labels[row]
			subRngs[i] = rngs[row]
		}
		adv := a.inner.PerturbBatch(m, subX, subLabels, eps, subRngs)
		for i, row := range open {
			copy(out.Row(row).Data, adv.Row(i).Data)
		}
		// After the last restart nothing reads done; before that, only
		// the rows just overwritten can have changed state.
		if r < a.Restarts-1 {
			subDone := a.fooledRows(m, adv, subLabels)
			for i, row := range open {
				done[row] = subDone[i]
			}
		}
	}
	return out
}

// fooledRows reports, per row, whether the victim-free source model
// already misclassifies the crafted sample.
func (a *Restart) fooledRows(m Model, adv *tensor.T, labels []int) []bool {
	done := make([]bool, adv.Rows())
	if bm, ok := m.(BatchModel); ok {
		for i, p := range tensor.ArgMaxRows(bm.LogitsBatch(adv)) {
			done[i] = p != labels[i]
		}
		return done
	}
	for i := range done {
		done[i] = fooled(m, adv.Row(i), labels[i])
	}
	return done
}
