package attack

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// batchFixture packs the first n correctly-shaped test samples plus
// per-sample rng streams seeded the way core's harness seeds them.
func batchFixture(t *testing.T, n int) (GradModel, *tensor.T, []int, func() []*rand.Rand) {
	t.Helper()
	m, set := trainedModel(t)
	xs := make([]*tensor.T, n)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		xs[i] = set.X[i]
		labels[i] = set.Y[i]
	}
	rngs := func() []*rand.Rand {
		out := make([]*rand.Rand, n)
		for i := range out {
			out[i] = rand.New(rand.NewSource(int64(1000 + i)))
		}
		return out
	}
	return m, tensor.Stack(xs), labels, rngs
}

// TestBatchedGradientAttacksMatchScalar is the seed-for-seed parity
// test the batched engine rests on: PerturbBatch row r must equal the
// scalar Perturb on sample r bit for bit, for every gradient attack
// and both norms.
func TestBatchedGradientAttacksMatchScalar(t *testing.T) {
	m, batch, labels, mkRngs := batchFixture(t, 6)
	for _, name := range []string{"FGM-l2", "FGM-linf", "BIM-l2", "BIM-linf", "PGD-l2", "PGD-linf", "MIFGSM-l2", "MIFGSM-linf"} {
		atk := ByName(name)
		b, ok := atk.(BatchAttack)
		if !ok {
			t.Fatalf("%s must implement BatchAttack natively", name)
		}
		adv := b.PerturbBatch(m, batch, labels, 0.2, mkRngs())
		if !adv.SameShape(batch) {
			t.Fatalf("%s batch shape %v != %v", name, adv.Shape, batch.Shape)
		}
		scalarRngs := mkRngs()
		for r := 0; r < batch.Rows(); r++ {
			want := atk.Perturb(m, batch.Row(r), labels[r], 0.2, scalarRngs[r])
			got := adv.Row(r)
			for j := range want.Data {
				if got.Data[j] != want.Data[j] {
					t.Fatalf("%s sample %d pixel %d: batch %v != scalar %v",
						name, r, j, got.Data[j], want.Data[j])
				}
			}
		}
	}
}

// TestAsBatchAdapterMatchesScalar: decision attacks go through the
// scalar adapter and must likewise reproduce the scalar path exactly.
func TestAsBatchAdapterMatchesScalar(t *testing.T) {
	m, batch, labels, mkRngs := batchFixture(t, 5)
	for _, name := range []string{"CR-l2", "RAG-l2", "RAU-l2", "RAU-linf"} {
		b := AsBatch(ByName(name))
		adv := b.PerturbBatch(m, batch, labels, 0.4, mkRngs())
		scalarRngs := mkRngs()
		for r := 0; r < batch.Rows(); r++ {
			want := ByName(name).Perturb(m, batch.Row(r), labels[r], 0.4, scalarRngs[r])
			got := adv.Row(r)
			for j := range want.Data {
				if got.Data[j] != want.Data[j] {
					t.Fatalf("%s sample %d diverged from scalar", name, r)
				}
			}
		}
	}
}

// TestAsBatchIdentity: AsBatch must hand back native BatchAttack
// implementations unchanged instead of wrapping them.
func TestAsBatchIdentity(t *testing.T) {
	fgm := NewFGM(Linf)
	if AsBatch(fgm) != BatchAttack(fgm) {
		t.Fatal("AsBatch re-wrapped a native BatchAttack")
	}
	cr := NewCR()
	if _, ok := AsBatch(cr).(*scalarBatch); !ok {
		t.Fatal("AsBatch must adapt scalar-only attacks")
	}
	if AsBatch(cr).Name() != cr.Name() {
		t.Fatal("adapter must preserve the attack identity")
	}
}

// TestBatchNormBudgetsRespected: the batched paths must keep every
// row of the perturbation within the attack's norm budget.
func TestBatchNormBudgetsRespected(t *testing.T) {
	m, batch, labels, mkRngs := batchFixture(t, 5)
	const eps = 0.3
	for _, name := range []string{"FGM-l2", "BIM-linf", "PGD-l2", "PGD-linf", "RAU-linf"} {
		adv := AsBatch(ByName(name)).PerturbBatch(m, batch, labels, eps, mkRngs())
		d := tensor.Sub(adv, batch)
		var norms []float64
		if ByName(name).Norm() == Linf {
			norms = tensor.LinfNormRows(d)
		} else {
			norms = tensor.L2NormRows(d)
		}
		for r, got := range norms {
			if got > eps*1.0001 {
				t.Errorf("%s row %d exceeded budget: %f > %f", name, r, got, eps)
			}
		}
	}
}

// TestBatchZeroEps: eps=0 must be the identity on the whole batch.
func TestBatchZeroEps(t *testing.T) {
	m, batch, labels, mkRngs := batchFixture(t, 4)
	for _, name := range []string{"PGD-linf", "CR-l2"} {
		adv := AsBatch(ByName(name)).PerturbBatch(m, batch, labels, 0, mkRngs())
		for j := range batch.Data {
			if adv.Data[j] != batch.Data[j] {
				t.Fatalf("%s modified the batch at eps=0", name)
			}
		}
	}
}

// TestBatchInputNeverMutated mirrors the scalar contract.
func TestBatchInputNeverMutated(t *testing.T) {
	m, batch, labels, mkRngs := batchFixture(t, 4)
	orig := batch.Clone()
	for _, name := range []string{"FGM-linf", "PGD-l2", "RAU-linf"} {
		AsBatch(ByName(name)).PerturbBatch(m, batch, labels, 0.3, mkRngs())
		for j := range batch.Data {
			if batch.Data[j] != orig.Data[j] {
				t.Fatalf("%s mutated its input batch", name)
			}
		}
	}
}
