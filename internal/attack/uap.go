package attack

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// SetAttack is a set-level attack: it crafts a single image-agnostic
// perturbation over the whole sample set at once, so it cannot be
// chunked per row the way BatchAttack implementations can. The
// harness in internal/core crafts one perturbation per (attack, eps,
// seed) cell — a single PerturbSet call over the full set — caches
// it, and replays the perturbed batch on every victim.
type SetAttack interface {
	Attack
	// PerturbSet returns the [N, sampleShape...] batch obtained by
	// applying one universal perturbation, crafted over the whole set,
	// to every row. Implementations must not modify xs and must
	// consume rng deterministically: same (set, eps, rng seed), same
	// crafted batch, bit for bit. Crafting observes ctx at chunk
	// granularity; once ctx is cancelled the (partial) result is
	// meaningless and callers must discard it.
	PerturbSet(ctx context.Context, m Model, xs *tensor.T, labels []int, eps float64, rng *rand.Rand) *tensor.T
}

// UAP crafts a universal adversarial perturbation in the style of
// universal adversarial training (Shafahi et al. 2020): one delta,
// shared by every sample, maximising the set's mean loss by iterated
// batched gradient ascent — random init in the eps-ball, then per
// pass aggregate the loss gradient over the whole set, step along its
// sign (linf) or L2-normalised direction (l2), and project delta back
// into the eps-ball. Defaults: 10 passes, step 0.2*eps.
//
// UAP is the paper-title question made literal: is approximation
// defensive against *image-agnostic* perturbations, not just
// per-sample ones?
type UAP struct {
	norm Norm
	// Iters is the number of aggregated-gradient passes over the set.
	Iters int
	// RelStep is the per-pass step size relative to eps.
	RelStep float64
}

// NewUAP returns a UAP crafter bounded by the given norm.
func NewUAP(n Norm) *UAP {
	return &UAP{norm: n, Iters: 10, RelStep: 0.2}
}

// Name implements Attack.
func (a *UAP) Name() string { return fmt.Sprintf("UAP-%s", a.norm) }

// Norm implements Attack.
func (a *UAP) Norm() Norm { return a.norm }

// ConfigKey implements Configurable: Iters and RelStep are exported
// tuning knobs, so crafted-example caches must distinguish them.
func (a *UAP) ConfigKey() string {
	return fmt.Sprintf("%s[iters=%d,rel=%g]", a.Name(), a.Iters, a.RelStep)
}

// uapChunk bounds the batched-gradient workspace during crafting; the
// aggregation is sequential over chunks, so the crafted delta is
// independent of the chunk size's relation to the set size.
const uapChunk = 32

// Craft returns the universal perturbation delta (sample-shaped, not
// batch-shaped) for the set. PerturbSet is Craft followed by applying
// delta to every row; Craft is exported so callers can inspect or
// persist the perturbation itself. Cancelling ctx stops crafting at
// the next chunk boundary, returning a partial delta the caller must
// discard.
func (a *UAP) Craft(ctx context.Context, m Model, xs *tensor.T, labels []int, eps float64, rng *rand.Rand) *tensor.T {
	g := mustBatchGrad(m, a.Name())
	shape := xs.Shape[1:]
	delta := tensor.New(shape...)
	if eps == 0 {
		return delta
	}
	zero := tensor.New(shape...)
	// Random init inside the eps-ball, mirroring PGD's random start.
	if a.norm == Linf {
		for i := range delta.Data {
			delta.Data[i] = float32((rng.Float64()*2 - 1) * eps)
		}
	} else {
		stepL2(delta, gaussianDir(shape, rng), rng.Float64()*eps)
	}
	project(a.norm, delta, zero, eps)

	n := xs.Rows()
	alpha := a.RelStep * eps
	for it := 0; it < a.Iters; it++ {
		mean := tensor.New(shape...)
		for lo := 0; lo < n; lo += uapChunk {
			if ctx.Err() != nil {
				return delta
			}
			hi := lo + uapChunk
			if hi > n {
				hi = n
			}
			batch := xs.RowView(lo, hi).Clone()
			for r := 0; r < batch.Rows(); r++ {
				batch.Row(r).AddScaled(1, delta)
			}
			batch.Clamp(0, 1)
			_, grad := g.LossGradBatch(batch, labels[lo:hi])
			for r := 0; r < grad.Rows(); r++ {
				mean.AddScaled(1, grad.Row(r))
			}
		}
		mean.Scale(1 / float32(n))
		if a.norm == Linf {
			mean.Sign()
			delta.AddScaled(float32(alpha), mean)
		} else {
			stepL2(delta, mean, alpha)
		}
		project(a.norm, delta, zero, eps)
	}
	return delta
}

// PerturbSet implements SetAttack: Craft the universal delta, add it
// to every row, and clamp to the pixel box.
func (a *UAP) PerturbSet(ctx context.Context, m Model, xs *tensor.T, labels []int, eps float64, rng *rand.Rand) *tensor.T {
	if eps == 0 {
		return xs.Clone()
	}
	delta := a.Craft(ctx, m, xs, labels, eps, rng)
	out := xs.Clone()
	for r := 0; r < out.Rows(); r++ {
		out.Row(r).AddScaled(1, delta)
	}
	out.Clamp(0, 1)
	return out
}

// Perturb implements Attack: the degenerate set of one sample, so the
// scalar protocol stays available (and pins PerturbSet's semantics on
// singleton sets).
func (a *UAP) Perturb(m Model, x *tensor.T, label int, eps float64, rng *rand.Rand) *tensor.T {
	if eps == 0 {
		return x.Clone()
	}
	adv := a.PerturbSet(context.Background(), m, tensor.Stack([]*tensor.T{x}), []int{label}, eps, rng)
	return adv.Row(0).Clone()
}
