package analysis

import (
	"go/ast"
	"go/types"
)

// ctxScope is where goroutines are long-lived enough to need a
// lifecycle: the executor/service layers plus the compute packages
// that fan work out across workers.
var ctxScope = []string{
	"repro/internal/core",
	"repro/internal/experiment",
	"repro/internal/axnn",
	"repro/internal/service",
	"repro/internal/store",
}

// CtxHygieneAnalyzer enforces the shutdown contract: every goroutine
// the service/executor layers spawn must be joinable or cancellable —
// it must select on a channel, use a context, participate in a
// WaitGroup, or guard itself with recover. A goroutine with none of
// those signals outlives Close/Drain and leaks past test teardown.
// Additionally, an unconditional for-loop inside a spawned goroutine
// must re-check its cancellation signal (ctx, a channel op, or select)
// inside the loop body, not just once before entering it.
//
// The check follows one level of calls: `go m.worker()` is judged by
// worker's body, and `go func() { defer wg.Done(); work() }()` also
// scans the local closure bound to work.
var CtxHygieneAnalyzer = &Analyzer{
	Name: "ctxhygiene",
	Doc:  "spawned goroutines need a cancellation/join signal; unbounded loops must re-check it",
	Run:  runCtxHygiene,
}

func runCtxHygiene(pass *Pass) {
	if !pathIn(pass.Pkg.Path(), ctxScope) {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			closures := localClosures(pass, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(pass, gs, closures)
				return true
			})
		}
	}
}

// localClosures maps objects bound by `name := func(...) {...}` (or
// var name = func...) in body to their function literals, so the
// goroutine check can see through one level of helper-closure calls.
func localClosures(pass *Pass, body *ast.BlockStmt) map[types.Object]*ast.FuncLit {
	m := map[types.Object]*ast.FuncLit{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			lit, ok := rhs.(*ast.FuncLit)
			if !ok || i >= len(as.Lhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pass.Info.Defs[id]; obj != nil {
					m[obj] = lit
				}
			}
		}
		return true
	})
	return m
}

func checkGoStmt(pass *Pass, gs *ast.GoStmt, closures map[types.Object]*ast.FuncLit) {
	bodies := goBodies(pass, gs, closures)
	if len(bodies) == 0 {
		return // spawning an imported or dynamic function; nothing to judge
	}
	if !anySignal(pass, bodies) {
		pass.Reportf(gs.Pos(),
			"goroutine has no cancellation, channel, WaitGroup, or recover path: it cannot be joined or stopped, so Close/Drain and test teardown race it")
		return
	}
	for _, b := range bodies {
		checkUnboundedLoops(pass, b)
	}
}

// goBodies collects the bodies reachable one call-level deep from the
// go statement: the spawned func literal or same-package function
// declaration, plus any local closures or same-package functions it
// calls directly.
func goBodies(pass *Pass, gs *ast.GoStmt, closures map[types.Object]*ast.FuncLit) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	root := calleeBody(pass, gs.Call.Fun, closures)
	if root == nil {
		return nil
	}
	bodies = append(bodies, root)
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if b := calleeBody(pass, call.Fun, closures); b != nil && b != root {
			bodies = append(bodies, b)
		}
		return true
	})
	return bodies
}

// calleeBody resolves a call/goroutine target expression to a function
// body when it is statically visible: a literal, a local closure, or a
// function/method declared in this package.
func calleeBody(pass *Pass, fun ast.Expr, closures map[types.Object]*ast.FuncLit) *ast.BlockStmt {
	switch f := fun.(type) {
	case *ast.FuncLit:
		return f.Body
	case *ast.ParenExpr:
		return calleeBody(pass, f.X, closures)
	case *ast.Ident:
		obj := pass.Info.Uses[f]
		if lit, ok := closures[obj]; ok {
			return lit.Body
		}
		return declBody(pass, obj)
	case *ast.SelectorExpr:
		return declBody(pass, pass.Info.Uses[f.Sel])
	}
	return nil
}

// declBody finds the FuncDecl body for a function or method object
// declared in the package under analysis.
func declBody(pass *Pass, obj types.Object) *ast.BlockStmt {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg() != pass.Pkg {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != fn.Name() {
				continue
			}
			if pass.Info.Defs[fd.Name] == obj {
				return fd.Body
			}
		}
	}
	return nil
}

// anySignal reports whether any body contains a lifecycle signal.
func anySignal(pass *Pass, bodies []*ast.BlockStmt) bool {
	for _, b := range bodies {
		if hasSignal(pass, b, false) {
			return true
		}
	}
	return false
}

// hasSignal scans one body for lifecycle signals. When loopOnly is
// true, only signals that re-check cancellation count (WaitGroup.Done
// and recover announce completion, they do not bound a loop).
func hasSignal(pass *Pass, body ast.Node, loopOnly bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if isChanRecv(pass, n) {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.Info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.Ident:
			if isContextValue(pass, n) {
				found = true
			}
		case *ast.CallExpr:
			if !loopOnly && (isWaitGroupCall(pass, n) || isBuiltin(pass, n, "recover")) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isChanRecv(pass *Pass, u *ast.UnaryExpr) bool {
	if u.Op.String() != "<-" {
		return false
	}
	t := pass.Info.Types[u.X].Type
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isContextValue reports whether the identifier denotes a value of
// type context.Context (ctx.Done(), ctx.Err(), or just forwarding ctx
// all count — the goroutine observably holds a cancellation handle).
func isContextValue(pass *Pass, id *ast.Ident) bool {
	obj := pass.Info.Uses[id]
	if obj == nil {
		return false
	}
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	return tn.Name() == "Context" && tn.Pkg() != nil && tn.Pkg().Path() == "context"
}

func isWaitGroupCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Done" && sel.Sel.Name != "Wait" && sel.Sel.Name != "Add") {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync"
}

// checkUnboundedLoops flags `for { ... }` loops (no condition) inside
// a goroutine body whose own body never re-checks a cancellation
// signal: such a loop spins forever even after the context is
// cancelled and every channel is drained.
func checkUnboundedLoops(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		fs, ok := n.(*ast.ForStmt)
		if !ok || fs.Cond != nil || fs.Init != nil || fs.Post != nil {
			return true
		}
		if !hasSignal(pass, fs.Body, true) {
			pass.Reportf(fs.Pos(),
				"unbounded for-loop in goroutine never re-checks ctx.Done() or a channel inside the loop body; cancellation cannot stop it")
		}
		return true
	})
}
