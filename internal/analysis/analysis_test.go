package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current analyzer output")

// TestAnalyzerGolden runs each AST analyzer over its fixture package
// and compares the rendered diagnostics against a committed golden
// file: seeded violations must be caught, and the fixtures'
// false-positive regression cases (sorted-after append, integer
// folds, closure expansion, suppression comments) must stay absent.
func TestAnalyzerGolden(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		analyzer string
		fixture  string
	}{
		{"determinism", "determtest"},
		{"determinism", "obsclock"},
		{"cachekey", "cachekeytest"},
		{"ctxhygiene", "ctxtest"},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			loader, err := NewLoader(root)
			if err != nil {
				t.Fatal(err)
			}
			pkgs, err := loader.Load("./internal/analysis/testdata/src/" + tc.fixture)
			if err != nil {
				t.Fatal(err)
			}
			a, ok := ByName(tc.analyzer)
			if !ok {
				t.Fatalf("analyzer %q not registered", tc.analyzer)
			}
			got := renderDiags(Run(pkgs, []*Analyzer{a}))
			compareGolden(t, filepath.Join("testdata", tc.fixture+".golden"), got)
		})
	}
}

// TestBCEGolden drives the real compiler over the bcetest fixture:
// the seeded in-loop check must be reported, the reslice-pinned loop
// and the allowlisted scatter must not.
func TestBCEGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go build -a; skipped in -short mode")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	policy, err := LoadBCEPolicy(filepath.Join("testdata", "bcetest_policy.txt"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunBCE(root, "./internal/analysis/testdata/src/bcetest", policy)
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "bcetest.golden"), renderDiags(diags))
}

// renderDiags renders diagnostics with basenamed files so goldens are
// stable across checkouts.
func renderDiags(diags []Diagnostic) string {
	if len(diags) == 0 {
		return ""
	}
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n", filepath.Base(d.File), d.Line, d.Col, d.Analyzer, d.Message)
	}
	return b.String()
}

func compareGolden(t *testing.T, path, got string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics differ from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestIgnoreDirective(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"//axvet:ignore determinism -- reason", []string{"determinism"}},
		{"//axvet:ignore determinism,cachekey", []string{"determinism", "cachekey"}},
		{"//axvet:ignore determinism, cachekey -- spaced", []string{"determinism", "cachekey"}},
		{"//axvet:ignore", nil},
		{"//axvet:ignore -- reason with no names", nil},
		{"// normal comment", nil},
	}
	for _, tc := range cases {
		got := ignoreDirective(tc.text)
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("ignoreDirective(%q) = %v, want %v", tc.text, got, tc.want)
		}
	}
}

func TestPathIn(t *testing.T) {
	scope := []string{"repro/internal/core", "repro/internal/service"}
	for path, want := range map[string]bool{
		"repro/internal/core":         true,
		"repro/internal/core/sub":     true,
		"repro/internal/corelike":     false,
		"repro/internal/defense":      false,
		"repro/internal/x/testdata/y": true, // fixtures are always in scope
		"repro/internal/service":      true,
	} {
		if got := pathIn(path, scope); got != want {
			t.Errorf("pathIn(%q) = %v, want %v", path, got, want)
		}
	}
}
