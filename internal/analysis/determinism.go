package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// determinismScope names the packages whose outputs must be
// bit-identical across runs, worker counts, and shards: everything
// that feeds report rows, event streams, cache keys, or hash inputs.
var determinismScope = []string{
	"repro/internal/core",
	"repro/internal/experiment",
	"repro/internal/attack",
	"repro/internal/axnn",
	"repro/internal/service",
	"repro/internal/store",
	"repro/internal/obs",
}

// wallClockSanctioned names the packages allowed to call time.Now
// inside the determinism scope — policy in code, like the BCE gate's
// policy file, so sanctioning a whole layer is one reviewed line here
// instead of //axvet:ignore noise on every site. internal/obs is the
// observability layer: spans and latency histograms ARE wall-clock
// measurements, and its output never reaches report rows, cache keys,
// or hash inputs (the traced-vs-untraced byte-identity test pins
// that). Everything else the analyzer enforces — global rand,
// order-sensitive map iteration — still applies to sanctioned
// packages.
var wallClockSanctioned = []string{
	"repro/internal/obs",
	// This policy's own fixture; testdata packages are otherwise always
	// in scope (see pathIn), so the fixture must be listed explicitly.
	"repro/internal/analysis/testdata/src/obsclock",
}

// sanctionedWallClock reports whether pkgPath may read the wall clock.
// Deliberately not pathIn: pathIn blanket-scopes testdata fixtures,
// which would sanction every fixture's time.Now and blind the golden
// tests.
func sanctionedWallClock(pkgPath string) bool {
	for _, s := range wallClockSanctioned {
		if pkgPath == s || strings.HasPrefix(pkgPath, s+"/") {
			return true
		}
	}
	return false
}

// DeterminismAnalyzer enforces the bit-identical-results contract
// (reports are byte-identical across worker counts and shards, pinned
// by the merge-equivalence tests): inside the scoped packages it
// forbids time.Now, the process-global math/rand source, and map
// iteration whose per-iteration effects are order-sensitive — ordered
// accumulation into slices or strings, float accumulation, hash or
// stream writes, channel sends. Collecting map keys and sorting them
// before use is the sanctioned idiom and is not flagged. Sites that
// are deliberate (wall-clock event metadata, proven order-insensitive
// folds) carry //axvet:ignore determinism with a justification;
// whole packages whose job is timing (wallClockSanctioned) are exempt
// from the wall-clock rule only.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global rand, and order-sensitive map iteration in result-affecting packages",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) {
	if !pathIn(pass.Pkg.Path(), determinismScope) {
		return
	}
	sanctioned := sanctionedWallClock(pass.Pkg.Path())
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkForbiddenCall(pass, call, sanctioned)
			}
			if fn, ok := n.(*ast.FuncDecl); ok && fn.Body != nil {
				checkMapRanges(pass, fn.Body)
			}
			return true
		})
	}
}

// pkgFunc resolves a call to a package-level function, returning its
// package path and name ("", "" otherwise).
func pkgFunc(pass *Pass, call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	obj, ok := pass.Info.Uses[sel.Sel]
	if !ok {
		return "", ""
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

// globalRandFuncs are the math/rand package-level functions that draw
// from (or reseed) the shared global source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true, "N": true, "IntN": true, "Int32N": true, "Int64N": true,
}

func checkForbiddenCall(pass *Pass, call *ast.CallExpr, wallClockOK bool) {
	pkgPath, name := pkgFunc(pass, call)
	switch {
	case pkgPath == "time" && name == "Now":
		if wallClockOK {
			return
		}
		pass.Reportf(call.Pos(),
			"time.Now in a determinism-scoped package: wall-clock must never reach report rows, event payloads, cache keys, or hash inputs (//axvet:ignore determinism for metadata-only sites)")
	case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && globalRandFuncs[name]:
		pass.Reportf(call.Pos(),
			"%s.%s draws from the process-global source: crafting and scheduling must use an explicitly seeded *rand.Rand so runs replay bit-identically", pkgPath, name)
	}
}

// checkMapRanges walks one function body, flagging range-over-map
// loops whose bodies have order-sensitive effects.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Info.Types[rs.X].Type
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, rs, body)
		return true
	})
}

// checkMapRangeBody reports order-sensitive sinks inside one
// range-over-map body. fnBody is the enclosing function body, used to
// recognise the collect-keys-then-sort idiom.
func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
	outer := func(e ast.Expr) bool { return declaredOutside(pass, e, rs) }
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rs, fnBody, n, outer)
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"channel send inside map iteration: receivers observe map order; iterate a sorted key slice instead")
		case *ast.CallExpr:
			checkMapRangeCall(pass, n)
		}
		return true
	})
}

func checkMapRangeAssign(pass *Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt, as *ast.AssignStmt, outer func(ast.Expr) bool) {
	switch as.Tok {
	case token.ASSIGN, token.DEFINE:
		// x = append(x, ...) into a variable that outlives the loop
		// accumulates in map order.
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltin(pass, call, "append") || i >= len(as.Lhs) {
				continue
			}
			lhs := as.Lhs[i]
			if !outer(lhs) {
				continue
			}
			if target, ok := lhs.(*ast.Ident); ok && sortedAfter(pass, fnBody, rs, target) {
				continue // collect-then-sort idiom
			}
			pass.Reportf(as.Pos(),
				"append inside map iteration accumulates in map order; sort the keys first (or sort the result before it is consumed)")
		}
	case token.ADD_ASSIGN:
		// Compound addition is order-sensitive for floats (rounding
		// depends on summation order) and strings (concatenation);
		// integer accumulation commutes exactly and is allowed.
		lhs := as.Lhs[0]
		t := pass.Info.Types[lhs].Type
		if t == nil || !outer(lhs) {
			return
		}
		switch b := t.Underlying().(type) {
		case *types.Basic:
			switch {
			case b.Info()&types.IsFloat != 0 || b.Info()&types.IsComplex != 0:
				pass.Reportf(as.Pos(),
					"float accumulation inside map iteration: rounding depends on map order; accumulate over a sorted key slice")
			case b.Info()&types.IsString != 0:
				pass.Reportf(as.Pos(),
					"string concatenation inside map iteration builds an order-dependent value; sort the keys first")
			}
		}
	}
}

func checkMapRangeCall(pass *Pass, call *ast.CallExpr) {
	// Writes to an io.Writer-shaped sink (hash.Hash, bytes.Buffer,
	// files) inside map iteration feed the stream in map order.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Write" {
		if obj, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok {
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil && isWriteSig(sig) {
				pass.Reportf(call.Pos(),
					"Write inside map iteration feeds a hash/stream in map order; write from a sorted key slice")
				return
			}
		}
	}
	if pkgPath, name := pkgFunc(pass, call); pkgPath == "fmt" &&
		(name == "Fprintf" || name == "Fprint" || name == "Fprintln") {
		pass.Reportf(call.Pos(),
			"fmt.%s inside map iteration emits lines in map order; iterate a sorted key slice", name)
	}
}

// isWriteSig matches func([]byte) (int, error) — io.Writer's method.
func isWriteSig(sig *types.Signature) bool {
	if sig.Params().Len() != 1 || sig.Results().Len() != 2 {
		return false
	}
	s, ok := sig.Params().At(0).Type().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isBuiltin(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.Info.Uses[id].(*types.Builtin)
	return ok
}

// declaredOutside reports whether the root of e (identifier, or the
// base of selector/index chains) is declared outside the range body —
// i.e. whether writes through it survive the loop. Selectors on
// receivers and captured variables count as outside.
func declaredOutside(pass *Pass, e ast.Expr, rs *ast.RangeStmt) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := pass.Info.Uses[x]
			if obj == nil {
				obj = pass.Info.Defs[x]
			}
			if obj == nil {
				return false
			}
			return obj.Pos() < rs.Body.Pos() || obj.Pos() > rs.Body.End()
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

// sortedAfter reports whether target is passed to a sort call
// somewhere after the range loop in the enclosing function — the
// collect-keys-then-sort idiom.
func sortedAfter(pass *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, target *ast.Ident) bool {
	tobj := pass.Info.Uses[target]
	if tobj == nil {
		tobj = pass.Info.Defs[target]
	}
	if tobj == nil {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || found {
			return true
		}
		pkgPath, name := pkgFunc(pass, call)
		isSort := (pkgPath == "sort" || pkgPath == "slices") &&
			(name == "Sort" || name == "SortFunc" || name == "SortStableFunc" ||
				name == "Strings" || name == "Ints" || name == "Float64s" ||
				name == "Slice" || name == "SliceStable" || name == "Stable")
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.Info.Uses[id] == tobj {
				found = true
			}
		}
		return true
	})
	return found
}
