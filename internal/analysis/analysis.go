// Package analysis implements axvet, the repo's project-specific
// static-analysis suite. Every load-bearing guarantee the reproduction
// rests on — bit-identical reports across worker counts, collision-free
// ConfigKey/disk-key content addressing, cancellable worker loops, and
// the bounds-check-free tiled kernels — started life as a review
// convention enforced only by example-based tests. The analyzers here
// turn those conventions into machine-checked laws with file:line
// diagnostics, so a new attack, executor, or codec cannot silently
// break them.
//
// The driver is dependency-free: stdlib go/parser and go/types with a
// module-aware importer (see load.go), no x/tools. Analyzers are
// registered in Analyzers(); cmd/axvet runs them over ./internal/...
// and ./cmd/... and exits nonzero on findings. Intentional violations
// are suppressed in place with a comment on, or immediately above, the
// flagged line:
//
//	//axvet:ignore determinism -- wall-clock metadata, normalized in merge
//
// naming one or more analyzers (comma-separated); everything after
// "--" is a human-readable justification. The bounds-check gate
// (bcegate.go) is a separate build-driven mode, axvet -bce, because it
// inspects compiler output rather than the AST.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, addressed by position. The JSON form is
// what axvet -json emits for the CI findings artifact.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the go-vet-style file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one project contract checker. Run inspects a single
// type-checked package through its Pass and reports findings.
type Analyzer struct {
	Name string
	// Doc is the one-line contract statement shown by axvet -list and
	// the README table.
	Doc string
	Run func(*Pass)
}

// Pass hands one package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the registered AST/type analyzers in stable order.
// The bounds-check gate is not listed here: it drives the compiler,
// not the syntax tree (see RunBCE).
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		CacheKeyAnalyzer,
		CtxHygieneAnalyzer,
	}
}

// ByName resolves a registered analyzer.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Run executes the given analyzers over the loaded packages and
// returns the surviving findings, sorted by position. Findings whose
// line (or the line immediately above) carries a matching
// //axvet:ignore comment are dropped.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			a.Run(pass)
		}
		diags = suppress(diags, pkg)
	}
	sort.Slice(diags, func(i, k int) bool {
		a, b := diags[i], diags[k]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// ignoreDirective parses an //axvet:ignore comment, returning the
// named analyzers (nil if the comment is not a directive).
func ignoreDirective(text string) []string {
	const prefix = "//axvet:ignore"
	if !strings.HasPrefix(text, prefix) {
		return nil
	}
	rest := strings.TrimSpace(text[len(prefix):])
	// Strip the optional "-- reason" trailer.
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = strings.TrimSpace(rest[:i])
	}
	if rest == "" {
		return nil
	}
	var names []string
	for _, n := range strings.Split(rest, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// suppress filters out diagnostics covered by //axvet:ignore comments
// in the package's files: a directive suppresses the named analyzers
// on its own line and on the line directly below it (the usual
// comment-above-the-statement placement).
func suppress(diags []Diagnostic, pkg *Package) []Diagnostic {
	// file -> line -> analyzer names ignored there.
	ignored := map[string]map[int]map[string]bool{}
	mark := func(file string, line int, names []string) {
		if ignored[file] == nil {
			ignored[file] = map[int]map[string]bool{}
		}
		for _, offset := range []int{0, 1} {
			l := line + offset
			if ignored[file][l] == nil {
				ignored[file][l] = map[string]bool{}
			}
			for _, n := range names {
				ignored[file][l][n] = true
			}
		}
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := ignoreDirective(c.Text)
				if names == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				mark(pos.Filename, pos.Line, names)
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if lines, ok := ignored[d.File]; ok {
			if names, ok := lines[d.Line]; ok && names[d.Analyzer] {
				continue
			}
		}
		kept = append(kept, d)
	}
	return kept
}

// pathIn reports whether pkgPath is one of (or nested under one of)
// the scope roots — the helper every scoped analyzer shares. Packages
// under a testdata directory are always in scope: they are invisible
// to wildcard loading and only reached by the analyzer tests, whose
// fixtures must exercise the scoped checks.
func pathIn(pkgPath string, scope []string) bool {
	if strings.Contains(pkgPath, "/testdata/") {
		return true
	}
	for _, s := range scope {
		if pkgPath == s || strings.HasPrefix(pkgPath, s+"/") {
			return true
		}
	}
	return false
}
