package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	Path  string // import path ("repro/internal/attack")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of the enclosing module with
// nothing but the standard library: module-local imports are resolved
// by mapping the module path onto directories under the module root
// and type-checking them recursively (with memoisation); standard
// library imports go through go/importer's source importer. One Loader
// shares one FileSet and one cache, so a whole axvet run type-checks
// each package exactly once.
type Loader struct {
	ModuleRoot string
	ModulePath string

	fset     *token.FileSet
	std      types.Importer
	pkgs     map[string]*Package
	checking map[string]bool
}

// NewLoader roots a loader at the module directory, reading the module
// path from go.mod.
func NewLoader(root string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		checking:   map[string]bool{},
	}, nil
}

// FindModuleRoot walks up from dir to the nearest go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Load expands the patterns (./..., ./internal/..., ./cmd/axvet, …)
// into package directories under the module root, then parses and
// type-checks each. Directories named testdata, hidden directories,
// and directories without non-test .go files are skipped during
// wildcard expansion; explicitly named directories are loaded as
// given, which is how the analyzer tests load their fixtures.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			root := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(rest, "./")))
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./"))))
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if name := e.Name(); !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// importPath maps an absolute directory under the module root to its
// import path.
func (l *Loader) importPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleRoot)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// dirFor inverts importPath for module-local packages.
func (l *Loader) dirFor(path string) (string, bool) {
	if path == l.ModulePath {
		return l.ModuleRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// loadDir parses and type-checks the package in dir (non-test files
// only, honoring //go:build constraints for the current GOOS/GOARCH).
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPath(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		if !buildConstraintsMatch(src) {
			continue
		}
		f, err := parser.ParseFile(l.fset, full, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: module-local packages load through
// the loader itself, everything else (the standard library) through
// the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if dir, ok := l.dirFor(path); ok {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// buildConstraintsMatch evaluates a file's //go:build line (if any)
// against the host platform — enough to pick one of the
// lock_unix.go/lock_other.go style pairs so the package type-checks
// without duplicate symbols. Legacy // +build lines are not consulted;
// the repo uses //go:build exclusively.
func buildConstraintsMatch(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if constraint.IsGoBuild(trimmed) {
			expr, err := constraint.Parse(trimmed)
			if err != nil {
				return true
			}
			return expr.Eval(buildTagMatches)
		}
		// Constraints must precede the package clause.
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
	}
	return true
}

// unixGOOS mirrors the platforms the "unix" build tag matches, for the
// ones this repo could plausibly run on.
var unixGOOS = map[string]bool{
	"linux": true, "darwin": true, "freebsd": true, "netbsd": true,
	"openbsd": true, "dragonfly": true, "solaris": true, "aix": true,
}

func buildTagMatches(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "unix":
		return unixGOOS[runtime.GOOS]
	}
	// goN.M release tags: the toolchain building axvet satisfies every
	// version up to its own.
	if strings.HasPrefix(tag, "go1.") {
		return true
	}
	return false
}
