package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// CacheKeyAnalyzer enforces the content-addressing contract. The cache
// (memory and disk tiers) and the service's job dedup both identify
// work by strings derived from attack/defense configuration, so two
// distinct behaviours mapping to one key silently poisons results —
// the bug class fixed by hand twice before this analyzer existed. Two
// rules: (A) every exported field of a type that defines ConfigKey or
// SamplerKey must be read somewhere in that method (a field that can
// change behaviour without changing the key is a collision); (B) every
// *DiskKey constructor must build its key from a literal with a
// name/vN version prefix (craft/v1|…), so on-disk formats can evolve
// without misreading old entries.
var CacheKeyAnalyzer = &Analyzer{
	Name: "cachekey",
	Doc:  "config-key methods must cover every exported field; disk-key constructors must version-prefix",
	Run:  runCacheKey,
}

// keyMethodNames are the identity-method names the cache and dedup
// layers consume (attack.Configurable and attack.Sampler).
var keyMethodNames = map[string]bool{"ConfigKey": true, "SamplerKey": true}

func runCacheKey(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if fn.Recv != nil && keyMethodNames[fn.Name.Name] && returnsString(fn) {
				checkKeyMethod(pass, fn)
			}
			if fn.Recv == nil && strings.HasSuffix(fn.Name.Name, "DiskKey") && returnsString(fn) {
				checkDiskKey(pass, fn)
			}
		}
	}
}

func returnsString(fn *ast.FuncDecl) bool {
	res := fn.Type.Results
	if res == nil || len(res.List) == 0 {
		return false
	}
	id, ok := res.List[0].Type.(*ast.Ident)
	return ok && id.Name == "string"
}

// checkKeyMethod verifies rule A for one ConfigKey/SamplerKey method:
// every exported field of the receiver's struct type must be selected
// somewhere in the body.
func checkKeyMethod(pass *Pass, fn *ast.FuncDecl) {
	st := receiverStruct(pass, fn)
	if st == nil {
		return
	}
	used := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			used[sel.Sel.Name] = true
		}
		return true
	})
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		if !field.Exported() || used[field.Name()] {
			continue
		}
		pass.Reportf(fn.Name.Pos(),
			"%s does not read exported field %s: a field that changes behaviour without changing the key poisons the cache (fold it in, or //axvet:ignore cachekey with why it is key-irrelevant)",
			fn.Name.Name, field.Name())
	}
}

// receiverStruct resolves the method receiver to its underlying struct
// type (through one level of pointer), nil if it is not a struct.
func receiverStruct(pass *Pass, fn *ast.FuncDecl) *types.Struct {
	if len(fn.Recv.List) == 0 {
		return nil
	}
	t := pass.Info.Types[fn.Recv.List[0].Type].Type
	if t == nil {
		// Receiver types carry no Types entry in some go/types
		// versions; fall back to the declared object.
		names := fn.Recv.List[0].Names
		if len(names) == 1 {
			if obj, ok := pass.Info.Defs[names[0]]; ok && obj != nil {
				t = obj.Type()
			}
		}
	}
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

// diskKeyPrefix matches the mandatory version prefix: a codec name, a
// version, and a field separator — e.g. "craft/v1|" or "job/v2/".
var diskKeyPrefix = regexp.MustCompile(`^[A-Za-z0-9_.-]+/v[0-9]+[|/]`)

// checkDiskKey verifies rule B for one *DiskKey constructor: every
// return statement's key operand must be a compile-time-visible string
// whose value carries a version prefix. An empty string is the
// conventional "not cacheable" sentinel and is allowed.
func checkDiskKey(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closure returns are not the constructor's
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return true
		}
		expr := ret.Results[0]
		lit, ok := keyLiteral(pass, expr)
		if !ok {
			pass.Reportf(expr.Pos(),
				"%s returns a key that is not built from a literal format string; disk keys must start with a name/vN version prefix so the codec can evolve", fn.Name.Name)
			return true
		}
		if lit != "" && !diskKeyPrefix.MatchString(lit) {
			pass.Reportf(expr.Pos(),
				"%s key %q lacks a name/vN version prefix (like craft/v1|); bump the version whenever the encoded layout changes", fn.Name.Name, lit)
		}
		return true
	})
}

// keyLiteral extracts the compile-time-visible head of a key
// expression: a string literal, a constant, fmt.Sprintf's format
// string, or a + concatenation whose leftmost operand is one of those.
func keyLiteral(pass *Pass, expr ast.Expr) (string, bool) {
	if tv, ok := pass.Info.Types[expr]; ok && tv.Value != nil {
		return constStr(tv.Value.ExactString()), true
	}
	switch e := expr.(type) {
	case *ast.BinaryExpr:
		return keyLiteral(pass, e.X)
	case *ast.CallExpr:
		if pkg, name := pkgFunc(pass, e); pkg == "fmt" && strings.HasPrefix(name, "Sprint") && len(e.Args) > 0 {
			return keyLiteral(pass, e.Args[0])
		}
	case *ast.ParenExpr:
		return keyLiteral(pass, e.X)
	}
	return "", false
}

// constStr unquotes a go/constant ExactString if it is a quoted
// string, else returns it unchanged.
func constStr(s string) string {
	if u, err := strconv.Unquote(s); err == nil {
		return u
	}
	return s
}
