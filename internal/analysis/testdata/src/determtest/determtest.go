// Package determtest is the determinism analyzer's fixture: each
// "want" comment below marks a line the golden file expects a
// diagnostic on; the unmarked cases are false-positive regressions
// that must stay silent.
package determtest

import (
	"crypto/sha256"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"
)

// wallClock seeds the two forbidden-call violations.
func wallClock() int64 {
	t := time.Now()                        // want determinism: time.Now
	return t.Unix() + int64(rand.Intn(10)) // want determinism: global rand
}

// seededRand must stay silent: an explicit source replays.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// suppressedClock must stay silent: the ignore directive covers it.
func suppressedClock() int64 {
	//axvet:ignore determinism -- fixture: metadata-only site
	return time.Now().Unix()
}

// mapOrderSinks seeds one violation per order-sensitive sink.
func mapOrderSinks(m map[string]float64, ch chan string, f *os.File) ([]string, float64, string) {
	var names []string
	var total float64
	var joined string
	h := sha256.New()
	for k, v := range m {
		names = append(names, k)  // want determinism: append
		total += v                // want determinism: float accumulation
		joined += k               // want determinism: string concatenation
		ch <- k                   // want determinism: channel send
		h.Write([]byte(k))        // want determinism: hash write
		fmt.Fprintf(f, "%s\n", k) // want determinism: stream write
	}
	return names, total, joined
}

// collectThenSort must stay silent: the keys are sorted before use.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// intFold must stay silent: integer addition commutes exactly.
func intFold(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// localAccumulator must stay silent: nothing escapes the iteration.
func localAccumulator(m map[string][]int) int {
	worst := 0
	for _, vs := range m {
		local := []int{}
		local = append(local, vs...)
		if len(local) > worst {
			worst = len(local)
		}
	}
	return worst
}
