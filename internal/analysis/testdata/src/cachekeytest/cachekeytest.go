// Package cachekeytest is the cachekey analyzer's fixture: seeded
// key-coverage and version-prefix violations next to compliant
// shapes that must stay silent.
package cachekeytest

import "fmt"

// Complete covers every exported field: silent.
type Complete struct {
	Steps   int
	RelStep float64
	name    string // unexported: never required
}

func (c *Complete) ConfigKey() string {
	return fmt.Sprintf("complete|steps=%d|rel=%g", c.Steps, c.RelStep)
}

// Leaky omits Mu from its key: one diagnostic on the method.
type Leaky struct {
	Steps int
	Mu    float64
}

func (l *Leaky) ConfigKey() string { // want cachekey: Mu not read
	return fmt.Sprintf("leaky|steps=%d", l.Steps)
}

// SamplerLeaky exercises the SamplerKey spelling of the same rule.
type SamplerLeaky struct {
	Draws int
}

func (s SamplerLeaky) SamplerKey() string { // want cachekey: Draws not read
	return "sampler-leaky"
}

// Waived documents a key-irrelevant field with a suppression: silent.
type Waived struct {
	Steps   int
	Verbose bool
}

//axvet:ignore cachekey -- fixture: Verbose only toggles logging, never the crafted bytes
func (w *Waived) ConfigKey() string {
	return fmt.Sprintf("waived|steps=%d", w.Steps)
}

// indirectCover reads a field through a local copy: silent (the
// selection is what counts, not the receiver expression).
type Indirect struct {
	Eps float64
}

func (i *Indirect) ConfigKey() string {
	c := *i
	return fmt.Sprintf("indirect|eps=%g", c.Eps)
}

// goodDiskKey carries the mandatory name/vN prefix: silent. The empty
// string is the "not cacheable" sentinel and is also allowed.
func goodDiskKey(id string, ok bool) string {
	if !ok {
		return ""
	}
	return fmt.Sprintf("fix/v1|id=%s", id)
}

// constDiskKey builds from a versioned constant: silent.
const fixPrefix = "fix/v2|"

func constDiskKey(id string) string {
	return fixPrefix + id
}

// unversionedDiskKey lacks the prefix: one diagnostic.
func unversionedDiskKey(id string) string {
	return fmt.Sprintf("fix|id=%s", id) // want cachekey: missing version prefix
}

// opaqueDiskKey returns something axvet cannot see through: one
// diagnostic (unverifiable keys are findings, not passes).
func opaqueDiskKey(parts []string) string {
	k := parts[0]
	return k // want cachekey: not a literal
}
