// Package ctxtest is the ctxhygiene analyzer's fixture: goroutines
// with and without lifecycle signals, and unbounded loops with and
// without a cancellation re-check.
package ctxtest

import (
	"context"
	"sync"
)

type pool struct {
	queue chan int
	wg    sync.WaitGroup
}

// nakedGoroutine has no signal at all: one diagnostic.
func nakedGoroutine(n *int) {
	go func() { // want ctxhygiene: no signal
		*n++
	}()
}

// ctxGoroutine is silent: it holds a cancellation handle.
func ctxGoroutine(ctx context.Context, n *int) {
	go func() {
		if ctx.Err() == nil {
			*n++
		}
	}()
}

// methodWorker is silent: `go p.worker()` resolves to the declared
// method body, which ranges over a channel.
func (p *pool) methodWorker() {
	go p.worker()
}

func (p *pool) worker() {
	for v := range p.queue {
		_ = v
	}
}

// closureExpansion is silent: the spawned literal only calls a local
// closure, and the closure selects on ctx.Done. One level of
// expansion must see through this.
func closureExpansion(ctx context.Context) {
	work := func() {
		select {
		case <-ctx.Done():
		default:
		}
	}
	go func() {
		work()
	}()
}

// waitGroupGoroutine is silent: Done participates in a join.
func (p *pool) waitGroupGoroutine(n *int) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		*n++
	}()
}

// spinningLoop has a WaitGroup signal but its unbounded loop never
// re-checks anything: one diagnostic on the for statement.
func (p *pool) spinningLoop(n *int) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for { // want ctxhygiene: unbounded loop
			*n++
		}
	}()
}

// recheckedLoop is silent: the loop body selects every iteration.
func recheckedLoop(ctx context.Context, ticks chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticks:
			}
		}
	}()
}

// suppressedGoroutine is silent: the directive covers the go
// statement.
func suppressedGoroutine(n *int) {
	//axvet:ignore ctxhygiene -- fixture: process-lifetime helper
	go func() {
		*n++
	}()
}
