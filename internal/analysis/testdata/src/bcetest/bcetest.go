// Package bcetest is the bounds-check gate's fixture: a seeded
// per-element bounds check, the sanctioned reslice fix, and a
// data-dependent site covered by the test policy's allowlist.
package bcetest

// hot seeds the violation: the compiler cannot relate len(b) to
// len(a), so b[i] keeps its per-element check.
func hot(a, b []int32) {
	for i := range a {
		a[i] += b[i]
	}
}

// pinned is the sanctioned fix and must stay silent.
func pinned(a, b []int32) {
	b = b[:len(a)]
	for i := range a {
		a[i] += b[i]
	}
}

// scatter indexes by data: unprovable by design, allowlisted in
// bcetest_policy.txt.
func scatter(a []int32, idx []uint32) {
	for _, i := range idx {
		a[i]++
	}
}
