// Package obsclock is the wallClockSanctioned policy's fixture: this
// package path is on the allowlist, so its time.Now calls must stay
// silent — while every other determinism rule (global rand, ordered
// map iteration) still fires. Compare determtest, where the same
// time.Now is a violation.
package obsclock

import (
	"math/rand"
	"time"
)

// span mimics the observability layer's legitimate wall-clock use.
type span struct {
	start time.Time
	dur   time.Duration
}

// begin must stay silent: the package is sanctioned for wall-clock.
func begin() *span {
	return &span{start: time.Now()}
}

// end must stay silent too — both reads are measurement, not output.
func (s *span) end() time.Duration {
	s.dur = time.Now().Sub(s.start)
	return s.dur
}

// seededID must still be flagged: sanctioning covers the clock, not
// the process-global rand source.
func seededID() uint64 {
	return rand.Uint64() // want determinism: global rand
}

// exportOrder must still be flagged: map-order sinks stay forbidden
// in sanctioned packages.
func exportOrder(hists map[string]int) []string {
	var names []string
	for k := range hists {
		names = append(names, k) // want determinism: append in map order
	}
	return names
}
