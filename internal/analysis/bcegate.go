package analysis

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// The bounds-check gate pins the tiled-kernel performance claim as
// policy-in-code: the LUT kernels' throughput rests on the compiler
// proving every per-element access in their innermost loops in-bounds,
// and one careless index rewrite silently re-inserts a branch per MAC.
// Unlike the AST analyzers, this gate drives the compiler itself
// (`go build -gcflags=-d=ssa/check_bce`) and filters its findings down
// to the innermost loops of the functions named in bce_policy.txt.
// Sites the prove pass fundamentally cannot handle (data-dependent
// sparse scatters) are allowlisted there, with reasons, next to the
// gate entries.

// BCEPolicy is the parsed bce_policy.txt: which functions are gated
// and which file:line sites are accepted.
type BCEPolicy struct {
	// Gated maps "file.go:funcName" (basename) to true.
	Gated map[string]bool
	// Allowed maps "file.go:line" (basename) to the recorded reason.
	Allowed map[string]string
}

// LoadBCEPolicy parses the policy file. Lines are `gate file.go:func`,
// `allow file.go:line -- reason`, blank, or #-comments.
func LoadBCEPolicy(path string) (*BCEPolicy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p := &BCEPolicy{Gated: map[string]bool{}, Allowed: map[string]string{}}
	sc := bufio.NewScanner(f)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		verb, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		switch verb {
		case "gate":
			p.Gated[rest] = true
		case "allow":
			site, reason, _ := strings.Cut(rest, "--")
			p.Allowed[strings.TrimSpace(site)] = strings.TrimSpace(reason)
		default:
			return nil, fmt.Errorf("%s:%d: unknown policy verb %q", path, lineno, verb)
		}
	}
	return p, sc.Err()
}

var bceDiag = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): Found (IsInBounds|IsSliceInBounds)`)

// RunBCE builds pkg (an import path pattern like ./internal/axnn) with
// the SSA check_bce debug flag and returns the bounds checks that land
// inside the innermost loops of gated functions and are not
// allowlisted. -a defeats the build cache, which would otherwise
// swallow the compiler's diagnostics on a cache hit.
func RunBCE(moduleRoot, pkg string, policy *BCEPolicy) ([]Diagnostic, error) {
	cmd := exec.Command("go", "build", "-a", "-gcflags=-d=ssa/check_bce", pkg)
	cmd.Dir = moduleRoot
	out, err := cmd.CombinedOutput()
	// check_bce findings are warnings (exit 0); a nonzero status means
	// the build itself failed, and the output is the explanation.
	if err != nil {
		return nil, fmt.Errorf("go build -d=ssa/check_bce: %v\n%s", err, out)
	}

	pkgDir := filepath.Join(moduleRoot, filepath.FromSlash(strings.TrimPrefix(pkg, "./")))
	ranges, err := gatedInnerLoopRanges(pkgDir, policy)
	if err != nil {
		return nil, err
	}

	var diags []Diagnostic
	for _, line := range strings.Split(string(out), "\n") {
		m := bceDiag.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		file := m[1]
		lineNo, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		base := filepath.Base(file)
		fn := ""
		for _, r := range ranges[base] {
			if lineNo > r.lbrace && lineNo <= r.rbrace {
				fn = r.fn
				break
			}
		}
		if fn == "" {
			continue // outside every gated innermost loop
		}
		if _, ok := policy.Allowed[fmt.Sprintf("%s:%d", base, lineNo)]; ok {
			continue
		}
		diags = append(diags, Diagnostic{
			Analyzer: "bcegate",
			File:     file,
			Line:     lineNo,
			Col:      col,
			Message:  fmt.Sprintf("%s in innermost loop of gated kernel %s: this inserts a branch per element; restructure so the prove pass can eliminate it, or allowlist the site in bce_policy.txt with a reason", m[4], fn),
		})
	}
	return diags, nil
}

// loopRange is one innermost-loop body: diagnostics with
// lbrace < line <= rbrace fall inside it. The range deliberately
// excludes the for/range header line itself — the per-iteration bound
// checks the runtime performs on the range expression are charged to
// that line and are not per-element work.
type loopRange struct {
	fn     string
	lbrace int
	rbrace int
}

// gatedInnerLoopRanges parses the package directory (syntax only) and
// returns, per file basename, the innermost-loop body line ranges of
// every gated function.
func gatedInnerLoopRanges(pkgDir string, policy *BCEPolicy) (map[string][]loopRange, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		return nil, err
	}
	ranges := map[string][]loopRange{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(pkgDir, name), nil, 0)
		if err != nil {
			return nil, err
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !policy.Gated[name+":"+fd.Name.Name] {
				continue
			}
			for _, body := range innermostLoopBodies(fd.Body) {
				ranges[name] = append(ranges[name], loopRange{
					fn:     fd.Name.Name,
					lbrace: fset.Position(body.Lbrace).Line,
					rbrace: fset.Position(body.Rbrace).Line,
				})
			}
		}
	}
	return ranges, nil
}

// innermostLoopBodies returns the bodies of loops that contain no
// nested loop — the per-element hot paths the gate protects.
func innermostLoopBodies(body *ast.BlockStmt) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	var visit func(n ast.Node)
	visit = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			var b *ast.BlockStmt
			switch l := m.(type) {
			case *ast.ForStmt:
				b = l.Body
			case *ast.RangeStmt:
				b = l.Body
			default:
				return true
			}
			if containsLoop(b) {
				visit(b) // descend; only the innermost level is gated
			} else {
				out = append(out, b)
			}
			return false
		})
	}
	visit(body)
	return out
}

func containsLoop(b *ast.BlockStmt) bool {
	found := false
	ast.Inspect(b, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}
