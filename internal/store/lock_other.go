//go:build !unix

package store

// Without flock the store degrades to the original single-writer-per-
// directory contract: every Open believes it may adopt the newest
// segment. Safe for all single-process use; sharing a directory
// between processes needs a unix build.
func flockTry(fd uintptr) bool { return true }

func funlock(fd uintptr) {}
