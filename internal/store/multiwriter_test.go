package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMultiWriterSharedDir pins the shared-directory contract behind
// the cross-shard cache fabric: a second store opening a directory
// with a live writer must not adopt (and tail-truncate) the writer's
// active segment — it reads the records already on disk and appends
// to a segment of its own, so both write without clobbering.
func TestMultiWriterSharedDir(t *testing.T) {
	dir := t.TempDir()
	a := open(t, Options{Dir: dir})
	defer a.Close()
	mustPut(t, a, "from-a", []byte("A"))

	b, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if v, ok := b.Get("from-a"); !ok || string(v) != "A" {
		t.Fatalf("b.Get(from-a) = %q, %v; want A", v, ok)
	}
	if st := b.Stats(); st.TruncatedTails != 0 || st.CorruptRecords != 0 {
		t.Fatalf("opening beside a live writer counted damage: %+v", st)
	}

	// Writes on both sides land in distinct segments; neither clobbers
	// the other. Visibility across stores is Open-time only.
	mustPut(t, b, "from-b", []byte("B"))
	mustPut(t, a, "from-a2", []byte("A2"))
	if _, ok := a.Get("from-b"); ok {
		t.Fatal("a sees b's write without reopening")
	}
	if v, ok := a.Get("from-a"); !ok || string(v) != "A" {
		t.Fatalf("a.Get(from-a) = %q, %v after b opened", v, ok)
	}

	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	c := open(t, Options{Dir: dir})
	defer c.Close()
	for key, want := range map[string]string{"from-a": "A", "from-a2": "A2", "from-b": "B"} {
		if v, ok := c.Get(key); !ok || string(v) != want {
			t.Fatalf("after both closed, Get(%s) = %q, %v; want %q", key, v, ok, want)
		}
	}
}

// TestLegacySegmentNamesAdopted proves nonce-less segment files from
// earlier versions still open, index, and are adopted as the active
// segment when unlocked.
func TestLegacySegmentNamesAdopted(t *testing.T) {
	dir := t.TempDir()
	s := open(t, Options{Dir: dir})
	mustPut(t, s, "old", []byte("v1"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	if len(names) != 1 {
		t.Fatalf("segments = %v", names)
	}
	legacy := filepath.Join(dir, "0000000000000001"+segSuffix)
	if err := os.Rename(names[0], legacy); err != nil {
		t.Fatal(err)
	}

	r := open(t, Options{Dir: dir})
	defer r.Close()
	if v, ok := r.Get("old"); !ok || string(v) != "v1" {
		t.Fatalf("Get(old) = %q, %v", v, ok)
	}
	mustPut(t, r, "new", []byte("v2"))
	// Adoption means the append landed in the legacy file itself, not
	// a fresh segment.
	if st := r.Stats(); st.Segments != 1 {
		t.Fatalf("Segments = %d, want 1 (legacy file adopted)", st.Segments)
	}
	names, _ = filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	if len(names) != 1 || !strings.HasSuffix(names[0], "0000000000000001"+segSuffix) {
		t.Fatalf("segments after adoption = %v", names)
	}
}
