//go:build unix

package store

import "syscall"

// flockTry takes a non-blocking exclusive flock on the descriptor.
// flock locks belong to the open file description, so two Opens of
// the same path — even within one process — contend as two writers.
func flockTry(fd uintptr) bool {
	return syscall.Flock(int(fd), syscall.LOCK_EX|syscall.LOCK_NB) == nil
}

func funlock(fd uintptr) {
	syscall.Flock(int(fd), syscall.LOCK_UN)
}
