// Package store implements the disk-backed content-addressed store
// behind the persistent cache tier (core.Cache) and the service's
// write-ahead job log (internal/service). It is log-structured:
// records append to fixed-capacity segment files, an in-memory key
// index is rebuilt by scanning the segments on Open, and retention is
// bounded by deleting whole oldest segments once the directory
// exceeds its size budget.
//
// On-disk format (all integers little-endian):
//
//	<dir>/0000000000000001-9f2c41aa.seg
//	<dir>/0000000000000002-9f2c41aa.seg     newest = active, append-only
//	...
//
// Segment names carry the creating store's random owner nonce, and
// every store holds a flock on its active segment, so several
// processes can share one directory: each appends to its own active
// segment, and Open only adopts (and tail-truncates) the newest
// segment when its flock succeeds — i.e. when no live peer owns it —
// otherwise it reads the peer's records and appends to a fresh
// segment of its own. Peers see each other's records from the scan at
// Open time; there is no live cross-process index exchange. Legacy
// nonce-less names still parse and sort first among equals.
//
// Each segment is a sequence of records:
//
//	crc  uint32   Castagnoli CRC-32 of everything after this field
//	klen uint32   key length in bytes
//	vlen uint32   value length in bytes
//	key  [klen]byte
//	val  [vlen]byte
//
// Open replays every segment oldest-first: the last valid write of a
// key wins the index. A structurally torn tail (header or payload
// running past EOF — the shape a crash mid-append leaves) is truncated
// off the final segment and counted; a record whose CRC fails but
// whose framing is intact (bit rot) is skipped and counted, and the
// scan continues at the next record boundary. Keys are indexed by a
// 128-bit FNV digest — constant memory per key regardless of key
// length — and Get re-reads the stored key bytes to rule out digest
// collisions. A bloom filter rebuilt on Open (and appended on Put)
// fronts the index so lookups for cold keys are answered without
// probing the index or disk; GC never rebuilds it, so it only ever
// errs toward admitting a probe.
//
// All methods are safe for concurrent use. The zero Store is not
// usable; construct with Open.
package store

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Get/Put latency histograms in the process-wide registry: the store
// serves both the cache's persistent tier and the job WAL, so its
// latency distribution is the first place a slow suite's disk story
// shows up in /metrics.
var (
	getHist = obs.Default.Histogram("ax_store_get_duration_seconds",
		"Persistent store Get latency in seconds (includes misses).")
	putHist = obs.Default.Histogram("ax_store_put_duration_seconds",
		"Persistent store Put (append + index) latency in seconds.")
)

const (
	headerSize = 12
	// maxRecordLen bounds a single key or value; anything larger in a
	// header is treated as corruption, which keeps a flipped length
	// byte from making the scanner leap gigabytes ahead.
	maxRecordLen = 1 << 30

	segSuffix           = ".seg"
	defaultSegmentBytes = 8 << 20
	defaultBloomBits    = 1 << 21
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures Open. The zero value (plus Dir) selects the
// defaults.
type Options struct {
	// Dir is the segment directory, created if absent.
	Dir string
	// SegmentBytes is the rotation threshold for the active segment
	// (default 8 MiB). Retention granularity is whole segments, so
	// smaller segments give finer GC at the cost of more files.
	SegmentBytes int64
	// MaxBytes bounds the total size of all segments; 0 means
	// unbounded. When a rotation pushes the directory over the bound,
	// oldest segments are deleted whole — log-structured GC with cache
	// semantics: cold keys whose only record lived there are gone.
	MaxBytes int64
	// BloomBits sizes the admission filter (default 2^21 bits, 256 KiB;
	// rounded up to a power of two).
	BloomBits int
	// Sync fsyncs the active segment after every Put. The write-ahead
	// job log wants it; the cache tier (whose contents are
	// recomputable) does not.
	Sync bool
}

// Stats is a point-in-time snapshot of a store's counters.
// Hit/miss/corruption/GC counters are lifetime-monotone; Keys,
// Segments, and DiskBytes are gauges.
type Stats struct {
	// Hits / Misses count Get outcomes.
	Hits   int64
	Misses int64
	// BloomRejects counts the Get misses answered by the admission
	// filter alone, with no index or disk probe.
	BloomRejects int64
	// CorruptRecords counts CRC-failed or unframeable records skipped
	// during Open scans and Get reads.
	CorruptRecords int64
	// TruncatedTails counts torn segment tails chopped off on Open —
	// the expected trace of a crash mid-append.
	TruncatedTails int64
	// GCEvictedRecords / GCEvictedSegments count index entries and
	// whole segments dropped by size-bounded retention.
	GCEvictedRecords  int64
	GCEvictedSegments int64
	// Puts / BytesWritten count appends.
	Puts         int64
	BytesWritten int64
	// Keys is the live index size; Segments and DiskBytes describe the
	// on-disk footprint right now.
	Keys      int64
	Segments  int64
	DiskBytes int64
}

type digest [16]byte

// loc locates one live record.
type loc struct {
	seg  *segment
	off  int64
	klen uint32
	vlen uint32
}

type segment struct {
	id     uint64
	nonce  string // creating store's owner nonce; "" on legacy files
	path   string
	f      *os.File
	size   int64
	locked bool // this store holds the segment's flock
}

// Store is a disk-backed content-addressed key/value store. See the
// package comment for the on-disk format and recovery semantics.
type Store struct {
	dir      string
	nonce    string // this store's segment-name owner nonce
	segBytes int64
	maxBytes int64
	syncPut  bool

	mu        sync.RWMutex
	index     map[digest]loc
	segs      []*segment // ascending id; the last is the active one
	bloom     []uint64
	bloomMask uint64

	hits, misses, bloomRejects atomic.Int64
	corrupt, truncated         atomic.Int64
	gcRecords, gcSegments      atomic.Int64
	puts, bytesWritten         atomic.Int64
}

// Open creates or reopens the store at o.Dir, rebuilding the index and
// bloom filter from the segment files. Torn tails are truncated,
// corrupt records skipped (both counted in Stats), so a store that was
// killed mid-append reopens to every record that was fully written.
func Open(o Options) (*Store, error) {
	if o.Dir == "" {
		return nil, errors.New("store: Options.Dir is required")
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	bits := o.BloomBits
	if bits <= 0 {
		bits = defaultBloomBits
	}
	for bits&(bits-1) != 0 { // round up to a power of two
		bits &= bits - 1
		bits <<= 1
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:       o.Dir,
		segBytes:  o.SegmentBytes,
		maxBytes:  o.MaxBytes,
		syncPut:   o.Sync,
		index:     make(map[digest]loc),
		bloom:     make([]uint64, bits/64),
		bloomMask: uint64(bits - 1),
	}
	var nb [4]byte
	if _, err := crand.Read(nb[:]); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.nonce = hex.EncodeToString(nb[:])

	refs, err := listSegments(o.Dir)
	if err != nil {
		return nil, err
	}
	// Only the newest segment is adoptable as this store's active
	// segment, and only when no live peer process holds its flock:
	// adoption truncates the torn tail a crash leaves, which on a
	// peer's segment would chop off an append in flight.
	adopted := false
	for i, ref := range refs {
		seg, err := s.openSegment(ref, i == len(refs)-1)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.segs = append(s.segs, seg)
		if i == len(refs)-1 && seg.locked {
			adopted = true
		}
	}
	if !adopted {
		next := uint64(1)
		if len(refs) > 0 {
			next = refs[len(refs)-1].id + 1
		}
		seg, err := s.createSegment(next)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.segs = append(s.segs, seg)
	}
	return s, nil
}

// segRef names one segment file: numeric id plus the creating store's
// owner nonce ("" on legacy nonce-less files).
type segRef struct {
	id    uint64
	nonce string
}

func listSegments(dir string) ([]segRef, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var refs []segRef
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		base := strings.TrimSuffix(name, segSuffix)
		idPart, nonce, _ := strings.Cut(base, "-")
		id, err := strconv.ParseUint(idPart, 10, 64)
		if err != nil {
			continue // foreign file; leave it alone
		}
		refs = append(refs, segRef{id: id, nonce: nonce})
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].id != refs[j].id {
			return refs[i].id < refs[j].id
		}
		return refs[i].nonce < refs[j].nonce
	})
	return refs, nil
}

func segPath(dir string, ref segRef) string {
	if ref.nonce == "" {
		return filepath.Join(dir, fmt.Sprintf("%016d%s", ref.id, segSuffix))
	}
	return filepath.Join(dir, fmt.Sprintf("%016d-%s%s", ref.id, ref.nonce, segSuffix))
}

// createSegment makes a fresh, empty, flocked segment owned by this
// store. O_EXCL plus the nonce in the name makes racing creators land
// on distinct files.
func (s *Store) createSegment(id uint64) (*segment, error) {
	path := segPath(s.dir, segRef{id: id, nonce: s.nonce})
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if !flockTry(f.Fd()) {
		f.Close()
		return nil, fmt.Errorf("store: cannot lock fresh segment %s", path)
	}
	return &segment{id: id, nonce: s.nonce, path: path, f: f, locked: true}, nil
}

// openSegment reads one existing segment into the index. A torn tail —
// the trace of a crash mid-append — is physically truncated off the
// newest segment when its flock succeeds (no live peer owns it; it
// becomes this store's active segment again). A tail on a live peer's
// segment is an append in flight, skipped without counting; on an
// older dead segment it is abandoned and counted corrupt.
func (s *Store) openSegment(ref segRef, last bool) (*segment, error) {
	path := segPath(s.dir, ref)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	locked := flockTry(f.Fd())
	buf, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	seg := &segment{id: ref.id, nonce: ref.nonce, path: path, f: f, size: int64(len(buf)), locked: locked}
	adopt := last && locked
	if locked && !adopt {
		// Old dead segments stay read-only; holding their lock would
		// only stop a peer from classifying them as dead too.
		funlock(f.Fd())
		seg.locked = false
	}

	off := 0
	for off < len(buf) {
		key, _, end, ok := parseRecord(buf, off)
		if !ok {
			if end < 0 { // structurally torn: nothing parseable follows
				switch {
				case adopt:
					s.truncated.Add(1)
					seg.size = int64(off)
					if err := f.Truncate(seg.size); err != nil {
						f.Close()
						return nil, fmt.Errorf("store: truncating torn tail of %s: %w", path, err)
					}
				case locked:
					s.corrupt.Add(1)
				}
				// A live peer's tail (lock refused) is an append in
				// flight, not corruption.
				break
			}
			// Framing intact but CRC failed: bit rot, or a torn final
			// value. At the very end of the adopted segment, treat it as
			// a torn write and truncate; mid-file, skip to the next
			// record.
			if adopt && end == len(buf) {
				s.truncated.Add(1)
				seg.size = int64(off)
				if err := f.Truncate(seg.size); err != nil {
					f.Close()
					return nil, fmt.Errorf("store: truncating torn tail of %s: %w", path, err)
				}
				break
			}
			if !locked && end == len(buf) {
				break // live peer's final value, mid-append
			}
			s.corrupt.Add(1)
			off = end
			continue
		}
		vlen := uint32(end-off-headerSize) - uint32(len(key))
		s.installLocked(key, loc{seg: seg, off: int64(off), klen: uint32(len(key)), vlen: vlen})
		off = end
	}
	return seg, nil
}

// parseRecord frames one record at off. ok reports a valid record;
// end is the offset just past it. end < 0 means the remaining bytes
// cannot frame a record at all (torn tail).
func parseRecord(buf []byte, off int) (key, val []byte, end int, ok bool) {
	rem := len(buf) - off
	if rem < headerSize {
		return nil, nil, -1, false
	}
	crc := binary.LittleEndian.Uint32(buf[off:])
	klen := binary.LittleEndian.Uint32(buf[off+4:])
	vlen := binary.LittleEndian.Uint32(buf[off+8:])
	if klen == 0 || klen > maxRecordLen || vlen > maxRecordLen ||
		int64(klen)+int64(vlen) > int64(rem-headerSize) {
		return nil, nil, -1, false
	}
	end = off + headerSize + int(klen) + int(vlen)
	body := buf[off+4 : end]
	if crc32.Checksum(body, castagnoli) != crc {
		return nil, nil, end, false
	}
	key = buf[off+headerSize : off+headerSize+int(klen)]
	val = buf[off+headerSize+int(klen) : end]
	return key, val, end, true
}

func digestOf(key string) digest {
	h := fnv.New128a()
	io.WriteString(h, key)
	var d digest
	h.Sum(d[:0])
	return d
}

// bloom probes: double hashing from the two digest halves.
func (s *Store) bloomAdd(d digest) {
	h1 := binary.LittleEndian.Uint64(d[:8])
	h2 := binary.LittleEndian.Uint64(d[8:])
	for i := uint64(0); i < 4; i++ {
		bit := (h1 + i*h2) & s.bloomMask
		s.bloom[bit/64] |= 1 << (bit % 64)
	}
}

func (s *Store) bloomHas(d digest) bool {
	h1 := binary.LittleEndian.Uint64(d[:8])
	h2 := binary.LittleEndian.Uint64(d[8:])
	for i := uint64(0); i < 4; i++ {
		bit := (h1 + i*h2) & s.bloomMask
		if s.bloom[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

func (s *Store) installLocked(key []byte, l loc) {
	d := digestOf(string(key))
	s.index[d] = l
	s.bloomAdd(d)
}

// Put appends one record and makes it the key's live value. Values are
// copied to disk immediately; durability additionally needs
// Options.Sync (or a clean Close).
func (s *Store) Put(key string, val []byte) error {
	defer putHist.Time()()
	if key == "" {
		return errors.New("store: empty key")
	}
	if len(key) > maxRecordLen || len(val) > maxRecordLen {
		return fmt.Errorf("store: record too large (%d-byte key, %d-byte value)", len(key), len(val))
	}
	rec := make([]byte, headerSize+len(key)+len(val))
	binary.LittleEndian.PutUint32(rec[4:], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[8:], uint32(len(val)))
	copy(rec[headerSize:], key)
	copy(rec[headerSize+len(key):], val)
	binary.LittleEndian.PutUint32(rec, crc32.Checksum(rec[4:], castagnoli))

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.segs == nil {
		return ErrClosed
	}
	active := s.segs[len(s.segs)-1]
	if _, err := active.f.WriteAt(rec, active.size); err != nil {
		// The partial bytes (if any) sit past active.size and will be
		// overwritten by the next append or truncated on reopen.
		return fmt.Errorf("store: %w", err)
	}
	if s.syncPut {
		if err := active.f.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	off := active.size
	active.size += int64(len(rec))
	s.installLocked([]byte(key), loc{seg: active, off: off, klen: uint32(len(key)), vlen: uint32(len(val))})
	s.puts.Add(1)
	s.bytesWritten.Add(int64(len(rec)))
	if active.size >= s.segBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) rotateLocked() error {
	next := s.segs[len(s.segs)-1].id + 1
	seg, err := s.createSegment(next)
	if err != nil {
		return err
	}
	s.segs = append(s.segs, seg)
	s.gcLocked()
	return nil
}

// gcLocked enforces the size bound by deleting whole oldest segments.
// The active segment is never deleted.
func (s *Store) gcLocked() {
	if s.maxBytes <= 0 {
		return
	}
	for len(s.segs) > 1 && s.totalLocked() > s.maxBytes {
		victim := s.segs[0]
		var dropped int64
		for d, l := range s.index {
			if l.seg == victim {
				delete(s.index, d)
				dropped++
			}
		}
		victim.f.Close()
		os.Remove(victim.path)
		s.segs = s.segs[1:]
		s.gcRecords.Add(dropped)
		s.gcSegments.Add(1)
	}
}

func (s *Store) totalLocked() int64 {
	var n int64
	for _, seg := range s.segs {
		n += seg.size
	}
	return n
}

// Get returns a copy-free view of the key's live value (the returned
// slice is freshly read and owned by the caller). A missing key, a
// record that fails its CRC on read, or a digest collision with a
// different key all report !ok.
func (s *Store) Get(key string) ([]byte, bool) {
	defer getHist.Time()()
	d := digestOf(key)
	s.mu.RLock()
	if s.segs == nil {
		s.mu.RUnlock()
		s.misses.Add(1)
		return nil, false
	}
	if !s.bloomHas(d) {
		s.mu.RUnlock()
		s.bloomRejects.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	l, ok := s.index[d]
	if !ok {
		s.mu.RUnlock()
		s.misses.Add(1)
		return nil, false
	}
	buf := make([]byte, headerSize+int(l.klen)+int(l.vlen))
	_, readErr := l.seg.f.ReadAt(buf, l.off)
	s.mu.RUnlock()
	if readErr != nil {
		s.misses.Add(1)
		s.corrupt.Add(1)
		return nil, false
	}
	gotKey, val, _, ok := parseRecord(buf, 0)
	if !ok {
		s.corrupt.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	if string(gotKey) != key { // digest collision
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return val, true
}

// Has reports whether the key is live, without touching disk.
// Subject to the same digest-collision caveat as the index itself:
// a false positive is possible (and astronomically unlikely); Get is
// authoritative.
func (s *Store) Has(key string) bool {
	d := digestOf(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.segs == nil || !s.bloomHas(d) {
		return false
	}
	_, ok := s.index[d]
	return ok
}

// Len reports the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Scan walks every valid record in append order — including records
// later superseded by a newer write of the same key — and calls fn for
// each; a non-nil error from fn stops the walk and is returned. This
// is the write-ahead-log replay primitive: callers that append events
// under distinct keys see them back in exactly the order they were
// written. fn must not call back into the store.
func (s *Store) Scan(fn func(key string, val []byte) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.segs == nil {
		return ErrClosed
	}
	for _, seg := range s.segs {
		buf := make([]byte, seg.size)
		if _, err := seg.f.ReadAt(buf, 0); err != nil && err != io.EOF {
			return fmt.Errorf("store: %w", err)
		}
		off := 0
		for off < len(buf) {
			key, val, end, ok := parseRecord(buf, off)
			if !ok {
				if end < 0 {
					break // already counted at Open
				}
				off = end
				continue
			}
			if err := fn(string(key), val); err != nil {
				return err
			}
			off = end
		}
	}
	return nil
}

// Stats snapshots the store's counters. Each field is read
// independently, which is all a metrics scrape needs.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	keys := int64(len(s.index))
	segs := int64(len(s.segs))
	bytes := s.totalLocked()
	s.mu.RUnlock()
	return Stats{
		Hits:              s.hits.Load(),
		Misses:            s.misses.Load(),
		BloomRejects:      s.bloomRejects.Load(),
		CorruptRecords:    s.corrupt.Load(),
		TruncatedTails:    s.truncated.Load(),
		GCEvictedRecords:  s.gcRecords.Load(),
		GCEvictedSegments: s.gcSegments.Load(),
		Puts:              s.puts.Load(),
		BytesWritten:      s.bytesWritten.Load(),
		Keys:              keys,
		Segments:          segs,
		DiskBytes:         bytes,
	}
}

// Close syncs and closes every segment. Further operations return
// ErrClosed (Get/Has report misses).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for _, seg := range s.segs {
		if err := seg.f.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := seg.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.segs = nil
	s.index = nil
	return firstErr
}
