package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
)

func open(t *testing.T, o Options) *Store {
	t.Helper()
	s, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustPut(t *testing.T, s *Store, key string, val []byte) {
	t.Helper()
	if err := s.Put(key, val); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetReopen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, Options{Dir: dir})
	for i := 0; i < 100; i++ {
		mustPut(t, s, fmt.Sprintf("key-%03d", i), []byte(fmt.Sprintf("value-%d", i)))
	}
	// Overwrites: the latest write must win, both live and after reopen.
	mustPut(t, s, "key-007", []byte("bond"))
	if v, ok := s.Get("key-007"); !ok || string(v) != "bond" {
		t.Fatalf("overwritten key = %q, %v", v, ok)
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100 (overwrite must not add a key)", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := open(t, Options{Dir: dir})
	if r.Len() != 100 {
		t.Fatalf("reopened Len = %d, want 100", r.Len())
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%03d", i)
		want := fmt.Sprintf("value-%d", i)
		if i == 7 {
			want = "bond"
		}
		v, ok := r.Get(key)
		if !ok || string(v) != want {
			t.Fatalf("reopened Get(%s) = %q, %v; want %q", key, v, ok, want)
		}
	}
	st := r.Stats()
	if st.CorruptRecords != 0 || st.TruncatedTails != 0 {
		t.Fatalf("clean reopen reported corruption: %+v", st)
	}
	// The reopened store keeps appending into the recovered segment.
	mustPut(t, r, "post-reopen", []byte("x"))
	if _, ok := r.Get("post-reopen"); !ok {
		t.Fatal("append after reopen lost")
	}
}

func TestColdKeysAndBloom(t *testing.T) {
	s := open(t, Options{Dir: t.TempDir()})
	mustPut(t, s, "present", []byte("v"))
	for i := 0; i < 50; i++ {
		if _, ok := s.Get(fmt.Sprintf("absent-%d", i)); ok {
			t.Fatal("absent key reported present")
		}
	}
	st := s.Stats()
	if st.Misses != 50 {
		t.Fatalf("misses = %d, want 50", st.Misses)
	}
	// With one live key in a 2^21-bit filter, essentially every cold
	// lookup is rejected by the filter without an index probe.
	if st.BloomRejects == 0 {
		t.Fatalf("bloom admitted every cold key: %+v", st)
	}
	if !s.Has("present") || s.Has("absent-0") {
		t.Fatal("Has disagrees with contents")
	}
}

// TestTornTailRecovered is the crash fixture: the process dies
// mid-append, leaving a truncated record at the segment tail. Reopen
// must chop the torn record, keep every prior key, and leave the store
// appendable.
func TestTornTailRecovered(t *testing.T) {
	for _, cut := range []struct {
		name string
		keep func(recLen int) int // bytes of the final record that hit disk
	}{
		{"mid-header", func(n int) int { return headerSize / 2 }},
		{"mid-key", func(n int) int { return headerSize + 2 }},
		{"mid-value", func(n int) int { return n - 3 }},
	} {
		t.Run(cut.name, func(t *testing.T) {
			dir := t.TempDir()
			s := open(t, Options{Dir: dir})
			for i := 0; i < 10; i++ {
				mustPut(t, s, fmt.Sprintf("safe-%d", i), bytes.Repeat([]byte{byte(i)}, 64))
			}
			before, _ := s.segFileSize(t)
			mustPut(t, s, "torn-key", []byte("this record will be half-written"))
			after, path := s.segFileSize(t)
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			// Simulate the crash: only a prefix of the last append
			// reached disk.
			recLen := int(after - before)
			if err := os.Truncate(path, before+int64(cut.keep(recLen))); err != nil {
				t.Fatal(err)
			}

			r := open(t, Options{Dir: dir})
			st := r.Stats()
			if st.TruncatedTails != 1 {
				t.Fatalf("truncated tails = %d, want 1 (%+v)", st.TruncatedTails, st)
			}
			if _, ok := r.Get("torn-key"); ok {
				t.Fatal("torn record served")
			}
			for i := 0; i < 10; i++ {
				if _, ok := r.Get(fmt.Sprintf("safe-%d", i)); !ok {
					t.Fatalf("prior key safe-%d lost to tail truncation", i)
				}
			}
			// The truncation is physical: a rewrite of the same key and a
			// further reopen must both be clean.
			mustPut(t, r, "torn-key", []byte("rewritten"))
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}
			r2 := open(t, Options{Dir: dir})
			if v, ok := r2.Get("torn-key"); !ok || string(v) != "rewritten" {
				t.Fatalf("post-recovery rewrite = %q, %v", v, ok)
			}
			if st := r2.Stats(); st.TruncatedTails != 0 || st.CorruptRecords != 0 {
				t.Fatalf("second reopen not clean: %+v", st)
			}
		})
	}
}

// segFileSize returns the active segment's current size and path.
func (s *Store) segFileSize(t *testing.T) (int64, string) {
	t.Helper()
	s.mu.RLock()
	defer s.mu.RUnlock()
	active := s.segs[len(s.segs)-1]
	return active.size, active.path
}

// TestCorruptRecordSkipped flips value bytes of a mid-file record: the
// reopen scan must skip exactly that record (counting it) and index
// everything around it.
func TestCorruptRecordSkipped(t *testing.T) {
	dir := t.TempDir()
	s := open(t, Options{Dir: dir})
	var offsets []int64
	for i := 0; i < 5; i++ {
		before, _ := s.segFileSize(t)
		offsets = append(offsets, before)
		mustPut(t, s, fmt.Sprintf("k%d", i), bytes.Repeat([]byte{'a' + byte(i)}, 32))
	}
	_, path := s.segFileSize(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside record 2's value region (past header + key).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[offsets[2]+headerSize+4] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r := open(t, Options{Dir: dir})
	st := r.Stats()
	if st.CorruptRecords != 1 {
		t.Fatalf("corrupt records = %d, want 1 (%+v)", st.CorruptRecords, st)
	}
	if st.TruncatedTails != 0 {
		t.Fatalf("mid-file corruption must not truncate the tail: %+v", st)
	}
	if _, ok := r.Get("k2"); ok {
		t.Fatal("corrupt record served")
	}
	for _, k := range []string{"k0", "k1", "k3", "k4"} {
		if _, ok := r.Get(k); !ok {
			t.Fatalf("key %s lost around the corrupt record", k)
		}
	}
}

func TestRotationAndGC(t *testing.T) {
	dir := t.TempDir()
	// ~200-byte records, 1 KiB segments, 4 KiB total: old segments must
	// be deleted as new ones rotate in.
	s := open(t, Options{Dir: dir, SegmentBytes: 1 << 10, MaxBytes: 4 << 10})
	val := bytes.Repeat([]byte{0xAB}, 180)
	for i := 0; i < 60; i++ {
		mustPut(t, s, fmt.Sprintf("rec-%03d", i), val)
	}
	st := s.Stats()
	if st.GCEvictedSegments == 0 || st.GCEvictedRecords == 0 {
		t.Fatalf("no GC under a 4 KiB bound: %+v", st)
	}
	if st.DiskBytes > 5<<10 {
		t.Fatalf("disk footprint %d exceeds bound + one segment", st.DiskBytes)
	}
	// The newest records always survive; the oldest were evicted.
	if _, ok := s.Get("rec-059"); !ok {
		t.Fatal("newest record evicted")
	}
	if _, ok := s.Get("rec-000"); ok {
		t.Fatal("oldest record survived a 4 KiB bound over ~12 KiB of writes")
	}
	// GC'd state must survive reopen: deleted segments stay deleted.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := open(t, Options{Dir: dir, SegmentBytes: 1 << 10, MaxBytes: 4 << 10})
	if _, ok := r.Get("rec-059"); !ok {
		t.Fatal("newest record lost across reopen after GC")
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	if len(files) > 6 {
		t.Fatalf("%d segment files on disk after GC", len(files))
	}
}

func TestScanAppendOrder(t *testing.T) {
	s := open(t, Options{Dir: t.TempDir(), SegmentBytes: 1 << 9})
	var want []string
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("ev/%04d", i)
		mustPut(t, s, k, []byte{byte(i)})
		want = append(want, k)
	}
	// A superseding write appears again, later in the scan.
	mustPut(t, s, "ev/0000", []byte{99})
	want = append(want, "ev/0000")

	var got []string
	var last byte
	err := s.Scan(func(key string, val []byte) error {
		got = append(got, key)
		last = val[0]
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan yielded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if last != 99 {
		t.Fatalf("superseding write not last in scan (got %d)", last)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := open(t, Options{Dir: t.TempDir(), SegmentBytes: 1 << 12})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				if err := s.Put(key, []byte(key)); err != nil {
					t.Error(err)
					return
				}
				if v, ok := s.Get(key); !ok || string(v) != key {
					t.Errorf("Get(%s) = %q, %v", key, v, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 400 {
		t.Fatalf("Len = %d, want 400", s.Len())
	}
}

// TestRecordFraming pins the on-disk record layout documented in the
// package comment, so the format cannot drift silently.
func TestRecordFraming(t *testing.T) {
	dir := t.TempDir()
	s := open(t, Options{Dir: dir})
	mustPut(t, s, "k", []byte("vv"))
	_, path := s.segFileSize(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != headerSize+1+2 {
		t.Fatalf("record length %d, want %d", len(data), headerSize+3)
	}
	if klen := binary.LittleEndian.Uint32(data[4:]); klen != 1 {
		t.Fatalf("klen = %d", klen)
	}
	if vlen := binary.LittleEndian.Uint32(data[8:]); vlen != 2 {
		t.Fatalf("vlen = %d", vlen)
	}
	if string(data[headerSize:headerSize+1]) != "k" || string(data[headerSize+1:]) != "vv" {
		t.Fatalf("payload = %q", data[headerSize:])
	}
	if crc := binary.LittleEndian.Uint32(data); crc != crc32.Checksum(data[4:], castagnoli) {
		t.Fatal("stored CRC does not cover klen|vlen|key|value")
	}
	// Segment names sort lexically in id order and carry the creating
	// store's owner nonce: 0000000000000001-<8 hex>.seg.
	names, _ := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	sort.Strings(names)
	base := filepath.Base(names[0])
	if ok, _ := filepath.Match("0000000000000001-????????.seg", base); !ok {
		t.Fatalf("first segment named %s", base)
	}
}
