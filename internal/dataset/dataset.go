// Package dataset provides deterministic synthetic stand-ins for the
// paper's datasets (the environment is offline; see README.md):
//
//   - Digits: 28x28x1 procedurally rendered digit glyphs with affine
//     jitter and noise — the MNIST substitute. LeNet-5 reaches a high
//     baseline on it, matching the paper's 98% MNIST baseline regime.
//   - Objects: 32x32x3 textured shapes with heavy colour/position/noise
//     jitter — the CIFAR-10 substitute. It is deliberately harder, so
//     AlexNet's baseline lands near the paper's 81% regime.
//
// All generation is driven by explicit seeds and is reproducible
// bit-for-bit.
package dataset

import (
	"math/rand"

	"repro/internal/tensor"
)

// Set is a labelled image set with pixel values in [0,1].
type Set struct {
	Name    string
	X       []*tensor.T
	Y       []int
	Classes int
}

// Len returns the number of samples.
func (s *Set) Len() int { return len(s.X) }

// Slice returns a view of the first n samples (or all if n <= 0 or
// beyond the end).
func (s *Set) Slice(n int) *Set {
	if n <= 0 || n > len(s.X) {
		n = len(s.X)
	}
	return &Set{Name: s.Name, X: s.X[:n], Y: s.Y[:n], Classes: s.Classes}
}

// Inputs returns the first n input tensors (for calibration).
func (s *Set) Inputs(n int) []*tensor.T {
	return s.Slice(n).X
}

// clamp01 limits v into the valid pixel box.
func clamp01(v float32) float32 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// addNoise perturbs every pixel with N(0, sigma), clamped to [0,1].
func addNoise(t *tensor.T, sigma float64, rng *rand.Rand) {
	for i := range t.Data {
		t.Data[i] = clamp01(t.Data[i] + float32(rng.NormFloat64()*sigma))
	}
}
