package dataset

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Objects generates n CIFAR-like samples: 32x32 RGB images of ten
// procedurally drawn object/texture classes over noisy backgrounds.
// The classes (circle, square, triangle, horizontal stripes, vertical
// stripes, checkerboard, ring, cross, diagonal gradient, blob cluster)
// carry enough intra-class jitter — colour, position, scale, noise —
// that a small CNN lands in the paper's ~80% CIFAR accuracy regime
// rather than saturating.
func Objects(n int, seed int64) *Set {
	rng := rand.New(rand.NewSource(seed))
	s := &Set{Name: "synth-objects", Classes: 10}
	for i := 0; i < n; i++ {
		c := i % 10
		s.X = append(s.X, renderObject(c, rng))
		s.Y = append(s.Y, c)
	}
	shuffle(s, rng)
	return s
}

func renderObject(class int, rng *rand.Rand) *tensor.T {
	t := tensor.New(3, 32, 32)
	bg := randColor(rng)
	fg := contrastColor(bg, rng)
	// Background with a soft gradient.
	gx := rng.Float64()*0.4 - 0.2
	gy := rng.Float64()*0.4 - 0.2
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			sh := float32(gx*float64(x)/32 + gy*float64(y)/32)
			for ch := 0; ch < 3; ch++ {
				t.Data[ch*1024+y*32+x] = clamp01(bg[ch] + sh)
			}
		}
	}
	cx := 12.0 + rng.Float64()*8.0
	cy := 12.0 + rng.Float64()*8.0
	r := 6.0 + rng.Float64()*5.0
	drawShape(t, class, cx, cy, r, fg, rng)
	addNoise(t, 0.14, rng)
	return t
}

func randColor(rng *rand.Rand) [3]float32 {
	return [3]float32{rng.Float32(), rng.Float32(), rng.Float32()}
}

// contrastColor picks a colour far enough from bg to keep shapes
// learnable through the noise.
func contrastColor(bg [3]float32, rng *rand.Rand) [3]float32 {
	for {
		c := randColor(rng)
		var d float32
		for i := 0; i < 3; i++ {
			d += (c[i] - bg[i]) * (c[i] - bg[i])
		}
		if d > 0.45 {
			return c
		}
	}
}

// setPix blends the foreground colour into the image at (x, y) with
// weight w.
func setPix(t *tensor.T, x, y int, fg [3]float32, w float32) {
	if x < 0 || x >= 32 || y < 0 || y >= 32 {
		return
	}
	for ch := 0; ch < 3; ch++ {
		i := ch*1024 + y*32 + x
		t.Data[i] = clamp01(t.Data[i]*(1-w) + fg[ch]*w)
	}
}

func drawShape(t *tensor.T, class int, cx, cy, r float64, fg [3]float32, rng *rand.Rand) {
	switch class {
	case 0: // filled circle
		forEachPix(func(x, y int) float32 {
			d := dist(x, y, cx, cy)
			return edge(r - d)
		}, t, fg)
	case 1: // filled square
		forEachPix(func(x, y int) float32 {
			dx, dy := math.Abs(float64(x)-cx), math.Abs(float64(y)-cy)
			return edge(r*0.9 - math.Max(dx, dy))
		}, t, fg)
	case 2: // triangle (upward)
		forEachPix(func(x, y int) float32 {
			fx, fy := float64(x)-cx, float64(y)-cy
			if fy < -r || fy > r*0.7 {
				return 0
			}
			half := (fy + r) / (1.7 * r) * r
			return edge(half - math.Abs(fx))
		}, t, fg)
	case 3: // horizontal stripes
		period := 3.0 + rng.Float64()*3.0
		phase := rng.Float64() * period
		forEachPix(func(x, y int) float32 {
			if math.Mod(float64(y)+phase, period) < period/2 {
				return 0.85
			}
			return 0
		}, t, fg)
	case 4: // vertical stripes
		period := 3.0 + rng.Float64()*3.0
		phase := rng.Float64() * period
		forEachPix(func(x, y int) float32 {
			if math.Mod(float64(x)+phase, period) < period/2 {
				return 0.85
			}
			return 0
		}, t, fg)
	case 5: // checkerboard
		cell := 3.0 + rng.Float64()*2.0
		forEachPix(func(x, y int) float32 {
			if (int(float64(x)/cell)+int(float64(y)/cell))%2 == 0 {
				return 0.85
			}
			return 0
		}, t, fg)
	case 6: // ring
		forEachPix(func(x, y int) float32 {
			d := dist(x, y, cx, cy)
			return edge(r*0.35 - math.Abs(d-r*0.8))
		}, t, fg)
	case 7: // cross
		forEachPix(func(x, y int) float32 {
			dx, dy := math.Abs(float64(x)-cx), math.Abs(float64(y)-cy)
			arm := r * 0.35
			if (dx < arm && dy < r) || (dy < arm && dx < r) {
				return 0.9
			}
			return 0
		}, t, fg)
	case 8: // diagonal gradient overlay
		sign := 1.0
		if rng.Intn(2) == 0 {
			sign = -1
		}
		forEachPix(func(x, y int) float32 {
			v := (float64(x) + sign*float64(y)) / 64.0
			return float32(math.Mod(math.Abs(v), 1.0)) * 0.9
		}, t, fg)
	case 9: // blob cluster
		nb := 3 + rng.Intn(3)
		type blob struct{ x, y, r float64 }
		blobs := make([]blob, nb)
		for i := range blobs {
			blobs[i] = blob{cx + rng.Float64()*10 - 5, cy + rng.Float64()*10 - 5, 2 + rng.Float64()*3}
		}
		forEachPix(func(x, y int) float32 {
			var best float32
			for _, b := range blobs {
				if v := edge(b.r - dist(x, y, b.x, b.y)); v > best {
					best = v
				}
			}
			return best
		}, t, fg)
	}
}

func forEachPix(weight func(x, y int) float32, t *tensor.T, fg [3]float32) {
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			if w := weight(x, y); w > 0 {
				setPix(t, x, y, fg, w)
			}
		}
	}
}

func dist(x, y int, cx, cy float64) float64 {
	dx, dy := float64(x)-cx, float64(y)-cy
	return math.Sqrt(dx*dx + dy*dy)
}

// edge converts a signed distance to a soft coverage weight.
func edge(d float64) float32 {
	if d <= 0 {
		return 0
	}
	if d >= 1 {
		return 1
	}
	return float32(d)
}
