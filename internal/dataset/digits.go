package dataset

import (
	"math/rand"

	"repro/internal/tensor"
)

// glyphs is a 5x7 bitmap font for the ten digits; rows top to bottom,
// 1 = ink. The renderer scales, shears, and jitters these into 28x28
// images.
var glyphs = [10][7]uint8{
	{0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110}, // 0
	{0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110}, // 1
	{0b01110, 0b10001, 0b00001, 0b00110, 0b01000, 0b10000, 0b11111}, // 2
	{0b01110, 0b10001, 0b00001, 0b00110, 0b00001, 0b10001, 0b01110}, // 3
	{0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010}, // 4
	{0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110}, // 5
	{0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110}, // 6
	{0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000}, // 7
	{0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110}, // 8
	{0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100}, // 9
}

// glyphAt samples the digit bitmap at continuous coordinates with
// bilinear smoothing, returning ink intensity in [0,1].
func glyphAt(d int, gx, gy float64) float64 {
	x0, y0 := int(gx), int(gy)
	fx, fy := gx-float64(x0), gy-float64(y0)
	v := 0.0
	for dy := 0; dy <= 1; dy++ {
		for dx := 0; dx <= 1; dx++ {
			xx, yy := x0+dx, y0+dy
			if xx < 0 || xx >= 5 || yy < 0 || yy >= 7 {
				continue
			}
			ink := float64((glyphs[d][yy] >> uint(4-xx)) & 1)
			wx := fx
			if dx == 0 {
				wx = 1 - fx
			}
			wy := fy
			if dy == 0 {
				wy = 1 - fy
			}
			v += ink * wx * wy
		}
	}
	return v
}

// renderDigit draws class d into a 28x28 single-channel tensor with a
// random affine placement, background level, noise, and occasional
// occlusion — enough intra-class variation that classifiers land in
// the paper's MNIST accuracy regime instead of saturating.
func renderDigit(d int, rng *rand.Rand) *tensor.T {
	t := tensor.New(1, 28, 28)
	// Random glyph-to-canvas transform: scale, shear, offset.
	sx := 2.6 + rng.Float64()*1.8 // horizontal pixels per glyph cell
	sy := 2.3 + rng.Float64()*1.3
	shear := (rng.Float64() - 0.5) * 0.7
	ox := 3.0 + rng.Float64()*8.0
	oy := 1.5 + rng.Float64()*5.0
	ink := 0.55 + rng.Float64()*0.45
	bg := float32(0)
	for y := 0; y < 28; y++ {
		for x := 0; x < 28; x++ {
			// Inverse map canvas -> glyph coordinates.
			gy := (float64(y) - oy) / sy
			gx := (float64(x) - ox - shear*(float64(y)-oy)) / sx
			v := glyphAt(d, gx, gy)
			t.Data[y*28+x] = clamp01(bg + float32(v*ink))
		}
	}
	// Occasional occluding bar (clutter).
	if rng.Float64() < 0.35 {
		level := float32(rng.Float64())
		width := 1 + rng.Intn(2)
		if rng.Intn(2) == 0 {
			row := rng.Intn(28 - width)
			for y := row; y < row+width; y++ {
				for x := 0; x < 28; x++ {
					t.Data[y*28+x] = level
				}
			}
		} else {
			col := rng.Intn(28 - width)
			for y := 0; y < 28; y++ {
				for x := col; x < col+width; x++ {
					t.Data[y*28+x] = level
				}
			}
		}
	}
	addNoise(t, 0.02, rng)
	return t
}

// Digits generates n MNIST-like samples (28x28x1) with balanced random
// classes, deterministically from seed.
func Digits(n int, seed int64) *Set {
	rng := rand.New(rand.NewSource(seed))
	s := &Set{Name: "synth-digits", Classes: 10}
	for i := 0; i < n; i++ {
		d := i % 10
		s.X = append(s.X, renderDigit(d, rng))
		s.Y = append(s.Y, d)
	}
	shuffle(s, rng)
	return s
}

// Digits32 is Digits rendered into the 32x32x3 AlexNet input format:
// the 28x28 glyph image is zero-padded to 32x32 and replicated across
// the three channels (the standard way to feed MNIST to a CIFAR-shaped
// network, used by the transferability study of Table II).
func Digits32(n int, seed int64) *Set {
	base := Digits(n, seed)
	out := &Set{Name: "synth-digits-32", Classes: 10}
	for i, x := range base.X {
		t := tensor.New(3, 32, 32)
		for y := 0; y < 28; y++ {
			for xx := 0; xx < 28; xx++ {
				v := x.Data[y*28+xx]
				for c := 0; c < 3; c++ {
					t.Data[c*32*32+(y+2)*32+(xx+2)] = v
				}
			}
		}
		out.X = append(out.X, t)
		out.Y = append(out.Y, base.Y[i])
	}
	return out
}

func shuffle(s *Set, rng *rand.Rand) {
	rng.Shuffle(len(s.X), func(i, j int) {
		s.X[i], s.X[j] = s.X[j], s.X[i]
		s.Y[i], s.Y[j] = s.Y[j], s.Y[i]
	})
}
