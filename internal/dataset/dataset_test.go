package dataset

import (
	"testing"
)

func TestDigitsDeterministic(t *testing.T) {
	a := Digits(50, 7)
	b := Digits(50, 7)
	for i := range a.X {
		if a.Y[i] != b.Y[i] {
			t.Fatal("labels differ across identical seeds")
		}
		for j := range a.X[i].Data {
			if a.X[i].Data[j] != b.X[i].Data[j] {
				t.Fatal("pixels differ across identical seeds")
			}
		}
	}
}

func TestDigitsSeedsDiffer(t *testing.T) {
	a := Digits(10, 1)
	b := Digits(10, 2)
	same := true
	for i := range a.X {
		for j := range a.X[i].Data {
			if a.X[i].Data[j] != b.X[i].Data[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestDigitsShapeAndRange(t *testing.T) {
	s := Digits(30, 3)
	if s.Classes != 10 {
		t.Fatal("classes != 10")
	}
	for i, x := range s.X {
		if len(x.Shape) != 3 || x.Shape[0] != 1 || x.Shape[1] != 28 || x.Shape[2] != 28 {
			t.Fatalf("sample %d shape %v", i, x.Shape)
		}
		for _, v := range x.Data {
			if v < 0 || v > 1 {
				t.Fatalf("pixel %f outside [0,1]", v)
			}
		}
		if s.Y[i] < 0 || s.Y[i] > 9 {
			t.Fatalf("label %d out of range", s.Y[i])
		}
	}
}

func TestDigitsBalanced(t *testing.T) {
	s := Digits(200, 4)
	counts := make([]int, 10)
	for _, y := range s.Y {
		counts[y]++
	}
	for c, n := range counts {
		if n != 20 {
			t.Fatalf("class %d has %d samples, want 20", c, n)
		}
	}
}

func TestDigitsClassesAreDistinct(t *testing.T) {
	// Mean images of different classes must differ substantially;
	// otherwise the generator lost its class signal.
	s := Digits(400, 5)
	means := make([][]float32, 10)
	counts := make([]int, 10)
	for i := range means {
		means[i] = make([]float32, 28*28)
	}
	for i, x := range s.X {
		y := s.Y[i]
		counts[y]++
		for j, v := range x.Data {
			means[y][j] += v
		}
	}
	for c := range means {
		for j := range means[c] {
			means[c][j] /= float32(counts[c])
		}
	}
	var dist float64
	for j := range means[0] {
		d := float64(means[0][j] - means[1][j])
		dist += d * d
	}
	if dist < 0.5 {
		t.Fatalf("class mean images of 0 and 1 too close: %f", dist)
	}
}

func TestDigits32Format(t *testing.T) {
	s := Digits32(20, 6)
	for _, x := range s.X {
		if x.Shape[0] != 3 || x.Shape[1] != 32 || x.Shape[2] != 32 {
			t.Fatalf("Digits32 shape %v", x.Shape)
		}
		// Channels must be replicas.
		for i := 0; i < 1024; i++ {
			if x.Data[i] != x.Data[1024+i] || x.Data[i] != x.Data[2048+i] {
				t.Fatal("Digits32 channels not replicated")
			}
		}
	}
}

func TestDigits32MatchesDigitsLabels(t *testing.T) {
	a := Digits(15, 9)
	b := Digits32(15, 9)
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatal("Digits32 labels diverge from Digits with same seed")
		}
	}
}

func TestObjectsDeterministic(t *testing.T) {
	a := Objects(30, 11)
	b := Objects(30, 11)
	for i := range a.X {
		for j := range a.X[i].Data {
			if a.X[i].Data[j] != b.X[i].Data[j] {
				t.Fatal("Objects not deterministic")
			}
		}
	}
}

func TestObjectsShapeRangeBalance(t *testing.T) {
	s := Objects(100, 12)
	counts := make([]int, 10)
	for i, x := range s.X {
		if x.Shape[0] != 3 || x.Shape[1] != 32 || x.Shape[2] != 32 {
			t.Fatalf("Objects shape %v", x.Shape)
		}
		for _, v := range x.Data {
			if v < 0 || v > 1 {
				t.Fatalf("pixel %f outside [0,1]", v)
			}
		}
		counts[s.Y[i]]++
	}
	for c, n := range counts {
		if n != 10 {
			t.Fatalf("class %d has %d samples", c, n)
		}
	}
}

func TestSliceAndInputs(t *testing.T) {
	s := Digits(40, 13)
	sl := s.Slice(10)
	if sl.Len() != 10 {
		t.Fatal("Slice wrong length")
	}
	if s.Slice(0).Len() != 40 || s.Slice(100).Len() != 40 {
		t.Fatal("Slice bounds handling wrong")
	}
	if len(s.Inputs(5)) != 5 {
		t.Fatal("Inputs wrong length")
	}
}
