// Package cli holds the flag-parsing and output helpers shared by the
// cmd tools, which previously each carried private copies of eps
// parsing and error reporting. It deliberately depends on nothing
// above the standard library, so every cmd binary (and, if ever
// needed, the experiment engine itself) can use it without dragging
// in the evaluation stack.
package cli

import (
	"fmt"
	"math"
	"net/url"
	"os"
	"strconv"
	"strings"
)

// ParseEps parses a comma-separated list of perturbation budgets.
// Budgets must be finite and non-negative: ParseFloat happily accepts
// "NaN" and "+Inf", which are never meaningful eps values and would
// poison downstream eps quantization.
func ParseEps(s string) ([]float64, error) {
	var eps []float64
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return nil, fmt.Errorf("bad eps %q: %w", tok, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("non-finite eps %q", strings.TrimSpace(tok))
		}
		if v < 0 {
			return nil, fmt.Errorf("negative eps %g", v)
		}
		eps = append(eps, v)
	}
	return eps, nil
}

// ParseList splits a comma-separated flag value into trimmed,
// non-empty entries.
func ParseList(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

// ParsePeers parses a comma-separated list of peer node base URLs
// (the axserve -peers flag). Each entry must be an absolute http(s)
// URL with a host; trailing slashes are trimmed so clients can append
// paths directly. Empty input returns no peers.
func ParsePeers(s string) ([]string, error) {
	var out []string
	for _, tok := range ParseList(s) {
		u, err := url.Parse(tok)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("bad peer URL %q (want http://host:port or https://host:port)", tok)
		}
		out = append(out, strings.TrimRight(tok, "/"))
	}
	return out, nil
}

// ParseFormat validates a report output-format flag against the
// formats every suite surface understands — the text renderer plus
// the two machine encodings the server's report endpoint serves.
// Empty selects "text" so tools agree on the default.
func ParseFormat(s string) (string, error) {
	switch s {
	case "":
		return "text", nil
	case "text", "json", "csv":
		return s, nil
	}
	return "", fmt.Errorf("unknown format %q (want text, json, or csv)", s)
}

// Fail prints "tool: err" to stderr and exits non-zero — the shared
// fatal-error path of every cmd tool.
func Fail(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(1)
}
