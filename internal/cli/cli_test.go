package cli

import (
	"reflect"
	"testing"
)

func TestParseEps(t *testing.T) {
	eps, err := ParseEps("0, 0.05,0.1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(eps, []float64{0, 0.05, 0.1}) {
		t.Fatalf("ParseEps = %v", eps)
	}
	if _, err := ParseEps("0,zero"); err == nil {
		t.Fatal("expected error for non-numeric eps")
	}
	// ParseFloat accepts these spellings, but no eps sweep wants them:
	// NaN/Inf poison downstream eps quantization and negatives are
	// meaningless budgets.
	for _, bad := range []string{"NaN", "0.1,nan", "+Inf", "-Inf", "Infinity", "-0.5"} {
		if _, err := ParseEps(bad); err == nil {
			t.Errorf("ParseEps(%q) accepted a non-finite or negative budget", bad)
		}
	}
	if _, err := ParseEps("0,0.05"); err != nil {
		t.Fatalf("finite non-negative budgets rejected: %v", err)
	}
}

func TestParseList(t *testing.T) {
	got := ParseList(" a, b ,,c ")
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("ParseList = %v", got)
	}
}

func TestParseFormat(t *testing.T) {
	for in, want := range map[string]string{"": "text", "text": "text", "json": "json", "csv": "csv"} {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Fatalf("ParseFormat(%q) = (%q, %v), want %q", in, got, err, want)
		}
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Fatal("unknown formats must be rejected")
	}
}
