package cli

import (
	"reflect"
	"testing"
)

func TestParseEps(t *testing.T) {
	eps, err := ParseEps("0, 0.05,0.1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(eps, []float64{0, 0.05, 0.1}) {
		t.Fatalf("ParseEps = %v", eps)
	}
	if _, err := ParseEps("0,zero"); err == nil {
		t.Fatal("expected error for non-numeric eps")
	}
	// ParseFloat accepts these spellings, but no eps sweep wants them:
	// NaN/Inf poison downstream eps quantization and negatives are
	// meaningless budgets.
	for _, bad := range []string{"NaN", "0.1,nan", "+Inf", "-Inf", "Infinity", "-0.5"} {
		if _, err := ParseEps(bad); err == nil {
			t.Errorf("ParseEps(%q) accepted a non-finite or negative budget", bad)
		}
	}
	if _, err := ParseEps("0,0.05"); err != nil {
		t.Fatalf("finite non-negative budgets rejected: %v", err)
	}
}

func TestParseList(t *testing.T) {
	got := ParseList(" a, b ,,c ")
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("ParseList = %v", got)
	}
}

func TestParseFormat(t *testing.T) {
	for in, want := range map[string]string{"": "text", "text": "text", "json": "json", "csv": "csv"} {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Fatalf("ParseFormat(%q) = (%q, %v), want %q", in, got, err, want)
		}
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Fatal("unknown formats must be rejected")
	}
}

func TestParsePeers(t *testing.T) {
	got, err := ParsePeers(" http://10.0.0.1:8080 , https://peer.example/ ")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"http://10.0.0.1:8080", "https://peer.example"}) {
		t.Fatalf("ParsePeers = %v", got)
	}
	// No peers is a valid single-node configuration.
	if got, err := ParsePeers(""); err != nil || got != nil {
		t.Fatalf("ParsePeers(\"\") = (%v, %v), want no peers", got, err)
	}
	// Anything that is not an absolute http(s) URL with a host would
	// produce silently unreachable shard requests.
	for _, bad := range []string{"10.0.0.1:8080", "ftp://peer:21", "http://", "peer", "http://ok:1,bogus"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted a bad peer URL", bad)
		}
	}
}
