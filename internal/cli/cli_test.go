package cli

import (
	"reflect"
	"testing"
)

func TestParseEps(t *testing.T) {
	eps, err := ParseEps("0, 0.05,0.1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(eps, []float64{0, 0.05, 0.1}) {
		t.Fatalf("ParseEps = %v", eps)
	}
	if _, err := ParseEps("0,zero"); err == nil {
		t.Fatal("expected error for non-numeric eps")
	}
}

func TestParseList(t *testing.T) {
	got := ParseList(" a, b ,,c ")
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("ParseList = %v", got)
	}
}
