package models

import (
	"testing"

	"repro/internal/tensor"
)

func TestLeNet5Shapes(t *testing.T) {
	cases := []struct{ c, h, w int }{{1, 28, 28}, {3, 32, 32}}
	for _, cse := range cases {
		net := LeNet5(cse.c, cse.h, cse.w, 10, 1)
		out := net.Forward(tensor.New(cse.c, cse.h, cse.w))
		if out.Len() != 10 {
			t.Fatalf("LeNet5(%v) produced %d logits", cse, out.Len())
		}
	}
}

func TestLeNet5LayerCount(t *testing.T) {
	// Per the paper: 2 conv+pool blocks + flattening conv + 2 dense.
	net := LeNet5(1, 28, 28, 10, 1)
	convs, pools, denses := 0, 0, 0
	for _, l := range net.Layers {
		switch l.(type) {
		case interface{ OutSize(int, int) (int, int) }:
			convs++
		}
	}
	_ = pools
	_ = denses
	if convs != 3 {
		t.Fatalf("LeNet5 has %d conv layers, want 3", convs)
	}
}

func TestAlexNetShapes(t *testing.T) {
	net := AlexNet(3, 32, 32, 10, 2)
	out := net.Forward(tensor.New(3, 32, 32))
	if out.Len() != 10 {
		t.Fatalf("AlexNet produced %d logits", out.Len())
	}
}

func TestAlexNetStructure(t *testing.T) {
	// Five conv layers, three pools, two dense layers (Section IV-A).
	net := AlexNet(3, 32, 32, 10, 3)
	convs := 0
	for _, l := range net.Layers {
		if _, ok := l.(interface{ OutSize(int, int) (int, int) }); ok {
			convs++
		}
	}
	if convs != 5 {
		t.Fatalf("AlexNet has %d conv layers, want 5", convs)
	}
}

func TestFFNNShapes(t *testing.T) {
	net := FFNN(28*28, 10, 4)
	out := net.Forward(tensor.New(1, 28, 28))
	if out.Len() != 10 {
		t.Fatalf("FFNN produced %d logits", out.Len())
	}
}

func TestSeedsChangeInit(t *testing.T) {
	a := LeNet5(1, 28, 28, 10, 1)
	b := LeNet5(1, 28, 28, 10, 2)
	wa, wb := a.Params()[0].W, b.Params()[0].W
	same := true
	for i := range wa {
		if wa[i] != wb[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical init")
	}
}

func TestSameSeedSameInit(t *testing.T) {
	a := AlexNet(3, 32, 32, 10, 7)
	b := AlexNet(3, 32, 32, 10, 7)
	wa, wb := a.Params()[0].W, b.Params()[0].W
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("same seed gave different init")
		}
	}
}
