// Package models builds the paper's three architectures (Section IV-A):
//
//   - LeNet-5: two conv+avgpool blocks, a flattening conv layer, two
//     fully connected layers, softmax classifier.
//   - AlexNet (CIFAR-scale): five conv layers, three avgpool layers,
//     two fully connected layers.
//   - FFNN: the feed-forward network of the Fig. 1 motivational study.
//
// Builders are parameterised on input geometry so the same
// architectures run on both the MNIST-like (28x28x1) and CIFAR-like
// (32x32x3) datasets, as the transferability study requires.
package models

import (
	"math/rand"

	"repro/internal/nn"
)

// convOut returns the conv output size for input n.
func convOut(n, k, stride, pad int) int { return (n+2*pad-k)/stride + 1 }

// LeNet5 builds the paper's LeNet-5 for the given input geometry.
func LeNet5(inC, inH, inW, classes int, seed int64) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	h, w := inH, inW
	c1 := nn.NewConv2D(inC, 6, 5, 1, 2, rng)
	h, w = convOut(h, 5, 1, 2), convOut(w, 5, 1, 2)
	h, w = h/2, w/2 // pool
	c2 := nn.NewConv2D(6, 16, 5, 1, 0, rng)
	h, w = convOut(h, 5, 1, 0), convOut(w, 5, 1, 0)
	h, w = h/2, w/2 // pool
	c3 := nn.NewConv2D(16, 120, 5, 1, 0, rng)
	h, w = convOut(h, 5, 1, 0), convOut(w, 5, 1, 0)
	flat := 120 * h * w
	return &nn.Network{
		Name: "lenet5",
		Layers: []nn.Layer{
			c1, &nn.ReLU{}, nn.NewAvgPool2D(2, 2),
			c2, &nn.ReLU{}, nn.NewAvgPool2D(2, 2),
			c3, &nn.ReLU{},
			&nn.Flatten{},
			nn.NewDense(flat, 84, rng), &nn.ReLU{},
			nn.NewDense(84, classes, rng),
		},
	}
}

// AlexNet builds the paper's CIFAR-scale AlexNet: five convolutions,
// three average-pooling layers, two fully connected layers.
func AlexNet(inC, inH, inW, classes int, seed int64) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	h, w := inH, inW
	c1 := nn.NewConv2D(inC, 32, 3, 1, 1, rng)
	h, w = h/2, w/2 // pool 1
	c2 := nn.NewConv2D(32, 64, 3, 1, 1, rng)
	h, w = h/2, w/2 // pool 2
	c3 := nn.NewConv2D(64, 96, 3, 1, 1, rng)
	c4 := nn.NewConv2D(96, 64, 3, 1, 1, rng)
	c5 := nn.NewConv2D(64, 64, 3, 1, 1, rng)
	h, w = h/2, w/2 // pool 3
	flat := 64 * h * w
	return &nn.Network{
		Name: "alexnet",
		Layers: []nn.Layer{
			c1, &nn.ReLU{}, nn.NewAvgPool2D(2, 2),
			c2, &nn.ReLU{}, nn.NewAvgPool2D(2, 2),
			c3, &nn.ReLU{},
			c4, &nn.ReLU{},
			c5, &nn.ReLU{}, nn.NewAvgPool2D(2, 2),
			&nn.Flatten{},
			nn.NewDense(flat, 256, rng), &nn.ReLU{},
			nn.NewDense(256, classes, rng),
		},
	}
}

// FFNN builds the feed-forward network of the Fig. 1 study.
func FFNN(in, classes int, seed int64) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	return &nn.Network{
		Name: "ffnn",
		Layers: []nn.Layer{
			&nn.Flatten{},
			nn.NewDense(in, 128, rng), &nn.ReLU{},
			nn.NewDense(128, 64, rng), &nn.ReLU{},
			nn.NewDense(64, classes, rng),
		},
	}
}
