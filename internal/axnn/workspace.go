package axnn

import "sync"

// workspace is the per-worker scratch arena for one pass through the
// layer stack: im2col columns, zero-point activation sums, register-
// blocked accumulators, ping-pong activation buffers, and the dense
// float staging area. Workspaces are checked out of the Network's
// sync.Pool per runChunk call (one per concurrent goroutine), presized
// at Compile from the calibration shape, and grown on demand — so the
// steady-state forward pass allocates only its returned logits.
type workspace struct {
	cols []uint8
	aSum []int32
	acc  []int32
	vals []float32

	// nz and nzOff hold the sparse im2col view used by the skip-zero
	// conv kernel: nz packs (pixel<<8 | code) for every column entry
	// whose code differs from the activation zero-point, and
	// nzOff[q]:nzOff[q+1] bounds row q's entries.
	nz    []uint32
	nzOff []int32

	// pack holds the dense kernels' packed pixel-pair accumulators
	// (convBlock lanes of convTile/2 uint64 halves); each kernel call
	// clears only the pairs its tile actually uses.
	pack []uint64

	// act holds the ping-pong activation buffers: each layer reads its
	// input from one buffer and writes its output into the other, so
	// intermediate activations never allocate and never alias.
	act [2][]uint8
	cur int
}

// wsHint carries the per-sample buffer maxima derived at Compile time
// (activation buffers additionally scale with the runtime chunk size).
type wsHint struct {
	cols  int // max im2col footprint: kk * p over conv layers
	p     int // max conv pixel count (aSum)
	acc   int // register-block accumulator footprint
	vol   int // max per-sample activation volume (any layer, and input)
	dense int // max dense output width (vals, per sample)
	kk    int // max conv reduction depth (nzOff)
}

func newWorkspace(h wsHint) *workspace {
	return &workspace{
		cols:  make([]uint8, h.cols),
		aSum:  make([]int32, h.p),
		acc:   make([]int32, h.acc),
		vals:  make([]float32, h.dense),
		nz:    make([]uint32, h.cols),
		nzOff: make([]int32, h.kk+1),
		pack:  make([]uint64, convBlock*(convTile/2)),
		act:   [2][]uint8{make([]uint8, h.vol), make([]uint8, h.vol)},
	}
}

// nextAct flips to the other activation buffer and returns it sized to
// n codes. The returned slice is valid until the next-but-one nextAct
// call on this workspace.
func (w *workspace) nextAct(n int) []uint8 {
	w.cur ^= 1
	buf := &w.act[w.cur]
	if cap(*buf) < n {
		*buf = make([]uint8, n)
	}
	return (*buf)[:n]
}

// u8, i32, and f32 return scratch slices of exactly n elements, growing
// the backing buffer when a larger shape than the Compile-time hint
// shows up. Contents are unspecified; callers must initialise.
func u8(buf *[]uint8, n int) []uint8 {
	if cap(*buf) < n {
		*buf = make([]uint8, n)
	}
	return (*buf)[:n]
}

func i32(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	return (*buf)[:n]
}

func f32(buf *[]float32, n int) []float32 {
	if cap(*buf) < n {
		*buf = make([]float32, n)
	}
	return (*buf)[:n]
}

func u32(buf *[]uint32, n int) []uint32 {
	if cap(*buf) < n {
		*buf = make([]uint32, n)
	}
	return (*buf)[:n]
}

func u64(buf *[]uint64, n int) []uint64 {
	if cap(*buf) < n {
		*buf = make([]uint64, n)
	}
	return (*buf)[:n]
}

// getWS checks a workspace out of the network's pool; putWS returns it.
// The pool is shared by every WithMultiplier/WithWorkers copy of a
// compiled network (the layer geometry is identical), so chunked
// evaluation fan-outs in internal/core reuse the same arenas across
// goroutines and grid cells instead of re-allocating per call.
func (q *Network) getWS() *workspace {
	return q.pool.Get().(*workspace)
}

func (q *Network) putWS(w *workspace) {
	q.pool.Put(w)
}

func newWSPool(h wsHint) *sync.Pool {
	return &sync.Pool{New: func() any { return newWorkspace(h) }}
}
