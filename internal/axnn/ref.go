package axnn

// The reference kernels below are the pre-tiling conv/dense forward
// passes, kept verbatim: naive activation-major LUT indexing
// (lut[a<<8|w] — 512 bytes between consecutive loads of one weight
// row), per-call scratch allocation, serial samples. They are the
// ground truth for the bit-for-bit parity suite (parity_test.go runs
// every registered multiplier through both kernels) and the baseline
// side of BenchmarkTiledVsSeed, reachable via WithReferenceKernel.

// refIm2colCodes is the pre-tiling column builder, kept verbatim for
// the same reason as the kernels: the shared im2colCodes has since
// grown a bulk-copy fast path, and the seed side of the benchmark must
// keep measuring the pre-PR cost. Output is identical either way.
func refIm2colCodes(x []uint8, inC, h, w, k, stride, pad int, padCode uint8, cols []uint8) {
	outH := (h+2*pad-k)/stride + 1
	outW := (w+2*pad-k)/stride + 1
	p := outH * outW
	for ci := 0; ci < inC; ci++ {
		base := ci * h * w
		for ki := 0; ki < k; ki++ {
			for kj := 0; kj < k; kj++ {
				row := ((ci*k+ki)*k + kj) * p
				idx := 0
				for oi := 0; oi < outH; oi++ {
					ii := oi*stride + ki - pad
					if ii < 0 || ii >= h {
						for oj := 0; oj < outW; oj++ {
							cols[row+idx] = padCode
							idx++
						}
						continue
					}
					rowBase := base + ii*w
					for oj := 0; oj < outW; oj++ {
						jj := oj*stride + kj - pad
						if jj < 0 || jj >= w {
							cols[row+idx] = padCode
						} else {
							cols[row+idx] = x[rowBase+jj]
						}
						idx++
					}
				}
			}
		}
	}
}

// refForward is the seed qConv kernel.
func (c *qConv) refForward(net *Network, in qtensor) (qtensor, []float32) {
	h, w := in.shape[1], in.shape[2]
	outH := (h+2*c.pad-c.k)/c.stride + 1
	outW := (w+2*c.pad-c.k)/c.stride + 1
	p := outH * outW
	kk := c.inC * c.k * c.k
	inVol := c.inC * h * w

	cols := make([]uint8, kk*p)
	aSum := make([]int32, p)
	acc := make([]int32, p)

	za := int32(c.inQP.Zero)
	lut := net.mul

	out := qtensor{n: in.n, shape: []int{c.outC, outH, outW}, data: make([]uint8, in.n*c.outC*p), qp: c.outQP}
	for s := 0; s < in.n; s++ {
		refIm2colCodes(in.data[s*inVol:(s+1)*inVol], c.inC, h, w, c.k, c.stride, c.pad, in.qp.Zero, cols)

		for i := range aSum {
			aSum[i] = 0
		}
		for q := 0; q < kk; q++ {
			col := cols[q*p : (q+1)*p]
			for i, a := range col {
				aSum[i] += int32(a)
			}
		}

		sOut := out.data[s*c.outC*p:]
		for oc := 0; oc < c.outC; oc++ {
			for i := range acc {
				acc[i] = 0
			}
			wRow := c.wCodes[oc*kk : (oc+1)*kk]
			for q := 0; q < kk; q++ {
				wc := uint32(wRow[q])
				col := cols[q*p : (q+1)*p]
				for i, a := range col {
					acc[i] += int32(lut[uint32(a)<<8|wc])
				}
			}
			zw := int32(c.wQP[oc].Zero)
			scale := c.inQP.Scale * c.wQP[oc].Scale
			fixed := int32(kk)*za*zw - za*c.wSum[oc]
			bias := c.bias[oc]
			dst := sOut[oc*p : (oc+1)*p]
			if net.noZP {
				for i := range acc {
					dst[i] = c.outQP.Quantize(float32(acc[i])*scale + bias)
				}
				continue
			}
			for i := range acc {
				v := float32(acc[i]-zw*aSum[i]+fixed)*scale + bias
				dst[i] = c.outQP.Quantize(v)
			}
		}
	}
	return out, nil
}

// refForward is the seed qDense kernel.
func (d *qDense) refForward(net *Network, in qtensor) (qtensor, []float32) {
	za := int32(d.inQP.Zero)
	zw := int32(d.wQP.Zero)
	scale := d.inQP.Scale * d.wQP.Scale
	lut := net.mul

	vals := make([]float32, in.n*d.out)
	for s := 0; s < in.n; s++ {
		xd := in.data[s*d.in : (s+1)*d.in]
		var aSum int32
		for _, a := range xd {
			aSum += int32(a)
		}
		sVals := vals[s*d.out : (s+1)*d.out]
		for o := 0; o < d.out; o++ {
			w := d.wCodes[o*d.in : (o+1)*d.in]
			var acc int32
			if net.approxDense {
				for i, a := range xd {
					acc += int32(lut[uint32(a)<<8|uint32(w[i])])
				}
			} else {
				for i, a := range xd {
					acc += int32(a) * int32(w[i])
				}
			}
			acc += int32(d.in)*za*zw - za*d.wSum[o] - zw*aSum
			sVals[o] = float32(acc)*scale + d.bias[o]
		}
	}
	if d.last {
		return qtensor{}, vals
	}
	out := qtensor{n: in.n, shape: []int{d.out}, data: make([]uint8, in.n*d.out), qp: d.outQP}
	for i, v := range vals {
		out.data[i] = d.outQP.Quantize(v)
	}
	return out, nil
}
