package axnn

import (
	"repro/internal/nn"
	"repro/internal/quant"
)

// qDense is the quantized fully connected stage. Per Section IV-A only
// conv multipliers are approximate, so dense products default to exact
// int32 MACs; Options.ApproxDense reroutes them through the LUT (used
// for the conv-free FFNN of Fig. 1 and the dense-approximation
// ablation). The final dense layer emits float logits directly.
//
// The approximate path runs activation-stationary: for each input
// element the 256-entry product row lut[a<<8:...] is contiguous, and a
// transposed weight-code matrix (wT, built only when ApproxDense is
// compiled in) makes the per-input weight walk sequential too — every
// load in the inner loop is unit-stride. Accumulation order per output
// is unchanged (ascending input index), so results stay bit-identical
// to the reference kernel.
type qDense struct {
	in, out int
	wCodes  []uint8
	wT      []uint8 // [in][out] transposed codes; nil unless ApproxDense
	wSum    []int32
	wQP     quant.Params
	inQP    quant.Params
	outQP   quant.Params
	bias    []float32
	last    bool
}

func newQDense(d *nn.Dense, inQP, outQP quant.Params, bits uint, last, approxDense bool) *qDense {
	lo, hi := quant.Range(d.W)
	wQP := quant.Calibrate(lo, hi, bits)
	q := &qDense{
		in: d.In, out: d.Out,
		wCodes: wQP.QuantizeSlice(d.W),
		wSum:   make([]int32, d.Out),
		wQP:    wQP, inQP: inQP, outQP: outQP,
		bias: append([]float32(nil), d.B...),
		last: last,
	}
	for o := 0; o < d.Out; o++ {
		var s int32
		for _, w := range q.wCodes[o*d.In : (o+1)*d.In] {
			s += int32(w)
		}
		q.wSum[o] = s
	}
	if approxDense {
		q.wT = make([]uint8, d.In*d.Out)
		for o := 0; o < d.Out; o++ {
			for i := 0; i < d.In; i++ {
				q.wT[i*d.Out+o] = q.wCodes[o*d.In+i]
			}
		}
	}
	return q
}

func (d *qDense) forward(net *Network, ws *workspace, in qtensor) (qtensor, []float32) {
	if net.ref {
		return d.refForward(net, in)
	}
	za := int32(d.inQP.Zero)
	zw := int32(d.wQP.Zero)
	scale := d.inQP.Scale * d.wQP.Scale

	var vals []float32
	if d.last {
		// Final logits leave the engine; they must not live in the
		// recycled workspace.
		vals = make([]float32, in.n*d.out)
	} else {
		vals = f32(&ws.vals, in.n*d.out)
	}
	for s := 0; s < in.n; s++ {
		xd := in.data[s*d.in : (s+1)*d.in]
		var aSum int32
		for _, a := range xd {
			aSum += int32(a)
		}
		sVals := vals[s*d.out : (s+1)*d.out]
		fixed := int32(d.in)*za*zw - zw*aSum
		if net.approxDense {
			acc := i32(&ws.acc, d.out)
			clear(acc)
			lut := net.mul
			for i, a := range xd {
				row := (*[256]uint16)(lut[int(a)<<8:])
				wRow := d.wT[i*d.out : (i+1)*d.out]
				b := acc[:len(wRow)]
				for o, wc := range wRow {
					b[o] += int32(row[wc])
				}
			}
			// Pin the epilogue operands to len(acc) so the o indexes
			// are provably in-bounds (axvet -bce gates this loop).
			sv, wSum, bias := sVals[:len(acc)], d.wSum[:len(acc)], d.bias[:len(acc)]
			for o, a := range acc {
				sv[o] = float32(a+fixed-za*wSum[o])*scale + bias[o]
			}
			continue
		}
		for o := 0; o < d.out; o++ {
			w := d.wCodes[o*d.in : (o+1)*d.in]
			w = w[:len(xd)] // i < len(xd) == len(w): per-MAC bounds check eliminated
			var acc int32
			for i, a := range xd {
				acc += int32(a) * int32(w[i])
			}
			sVals[o] = float32(acc+fixed-za*d.wSum[o])*scale + d.bias[o]
		}
	}
	if d.last {
		return qtensor{}, vals
	}
	out := qtensor{n: in.n, shape: []int{d.out}, data: ws.nextAct(in.n * d.out), qp: d.outQP}
	dst := out.data[:len(vals)]
	for i, v := range vals {
		dst[i] = d.outQP.Quantize(v)
	}
	return out, nil
}
