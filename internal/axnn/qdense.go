package axnn

import (
	"repro/internal/nn"
	"repro/internal/quant"
)

// qDense is the quantized fully connected stage. Per Section IV-A only
// conv multipliers are approximate, so dense products default to exact
// int32 MACs; Options.ApproxDense reroutes them through the LUT (used
// for the conv-free FFNN of Fig. 1 and the dense-approximation
// ablation). The final dense layer emits float logits directly.
type qDense struct {
	in, out int
	wCodes  []uint8
	wSum    []int32
	wQP     quant.Params
	inQP    quant.Params
	outQP   quant.Params
	bias    []float32
	last    bool
}

func newQDense(d *nn.Dense, inQP, outQP quant.Params, bits uint, last bool) *qDense {
	lo, hi := quant.Range(d.W)
	wQP := quant.Calibrate(lo, hi, bits)
	q := &qDense{
		in: d.In, out: d.Out,
		wCodes: wQP.QuantizeSlice(d.W),
		wSum:   make([]int32, d.Out),
		wQP:    wQP, inQP: inQP, outQP: outQP,
		bias: append([]float32(nil), d.B...),
		last: last,
	}
	for o := 0; o < d.Out; o++ {
		var s int32
		for _, w := range q.wCodes[o*d.In : (o+1)*d.In] {
			s += int32(w)
		}
		q.wSum[o] = s
	}
	return q
}

func (d *qDense) forward(net *Network, in qtensor) (qtensor, []float32) {
	za := int32(d.inQP.Zero)
	zw := int32(d.wQP.Zero)
	scale := d.inQP.Scale * d.wQP.Scale
	lut := net.mul

	vals := make([]float32, in.n*d.out)
	for s := 0; s < in.n; s++ {
		xd := in.data[s*d.in : (s+1)*d.in]
		var aSum int32
		for _, a := range xd {
			aSum += int32(a)
		}
		sVals := vals[s*d.out : (s+1)*d.out]
		for o := 0; o < d.out; o++ {
			w := d.wCodes[o*d.in : (o+1)*d.in]
			var acc int32
			if net.approxDense {
				for i, a := range xd {
					acc += int32(lut[uint32(a)<<8|uint32(w[i])])
				}
			} else {
				for i, a := range xd {
					acc += int32(a) * int32(w[i])
				}
			}
			acc += int32(d.in)*za*zw - za*d.wSum[o] - zw*aSum
			sVals[o] = float32(acc)*scale + d.bias[o]
		}
	}
	if d.last {
		return qtensor{}, vals
	}
	out := qtensor{n: in.n, shape: []int{d.out}, data: make([]uint8, in.n*d.out), qp: d.outQP}
	for i, v := range vals {
		out.data[i] = d.outQP.Quantize(v)
	}
	return out, nil
}
