package axnn

import (
	"repro/internal/nn"
	"repro/internal/quant"
)

// qConv is the quantized convolution stage — the layer whose multipliers
// the paper replaces with approximate designs.
//
// Weights are quantized per output channel (filter-wise scales), the
// standard scheme for deep conv stacks: per-tensor scales starve
// small-magnitude filters of resolution.
//
// With activation codes a (zero-point za) and weight codes w (zero-point
// zw of the channel), the exact affine accumulation per output element is
//
//	acc = sum (a-za)(w-zw)
//	    = sum M(a,w) - zw*sum(a) - za*sum(w) + n*za*zw
//
// where M is the multiplier. Only the first term goes through the
// (possibly approximate) LUT; the zero-point corrections are exact adder
// work in the accelerator and are computed exactly here, mirroring the
// TFApprox formulation.
type qConv struct {
	inC, outC, k, stride, pad int

	wCodes []uint8        // [outC][inC*k*k]
	wSum   []int32        // per-outC sum of weight codes
	wQP    []quant.Params // per-outC weight quantizer
	inQP   quant.Params
	outQP  quant.Params
	bias   []float32
}

func newQConv(c *nn.Conv2D, inQP, outQP quant.Params, bits uint) *qConv {
	kk := c.InC * c.K * c.K
	q := &qConv{
		inC: c.InC, outC: c.OutC, k: c.K, stride: c.Stride, pad: c.Pad,
		wCodes: make([]uint8, c.OutC*kk),
		wSum:   make([]int32, c.OutC),
		wQP:    make([]quant.Params, c.OutC),
		inQP:   inQP, outQP: outQP,
		bias: append([]float32(nil), c.B...),
	}
	for oc := 0; oc < c.OutC; oc++ {
		row := c.W[oc*kk : (oc+1)*kk]
		lo, hi := quant.Range(row)
		qp := quant.Calibrate(lo, hi, bits)
		q.wQP[oc] = qp
		codes := qp.QuantizeSlice(row)
		copy(q.wCodes[oc*kk:(oc+1)*kk], codes)
		var s int32
		for _, w := range codes {
			s += int32(w)
		}
		q.wSum[oc] = s
	}
	return q
}

func (c *qConv) forward(net *Network, in qtensor) (qtensor, []float32) {
	h, w := in.shape[1], in.shape[2]
	outH := (h+2*c.pad-c.k)/c.stride + 1
	outW := (w+2*c.pad-c.k)/c.stride + 1
	p := outH * outW
	kk := c.inC * c.k * c.k
	inVol := c.inC * h * w

	// Batch-shared scratch: the column, activation-sum, and accumulator
	// buffers are allocated once and reused by every sample, so the
	// per-sample cost is pure LUT/adder work.
	cols := make([]uint8, kk*p)
	aSum := make([]int32, p)
	acc := make([]int32, p)

	za := int32(c.inQP.Zero)
	lut := net.mul

	out := qtensor{n: in.n, shape: []int{c.outC, outH, outW}, data: make([]uint8, in.n*c.outC*p), qp: c.outQP}
	for s := 0; s < in.n; s++ {
		// im2col in the code domain; padding contributes the zero-point
		// code (real value 0), as in the hardware dataflow.
		im2colCodes(in.data[s*inVol:(s+1)*inVol], c.inC, h, w, c.k, c.stride, c.pad, in.qp.Zero, cols)

		// Per-pixel activation-code sums for the zero-point correction.
		for i := range aSum {
			aSum[i] = 0
		}
		for q := 0; q < kk; q++ {
			col := cols[q*p : (q+1)*p]
			for i, a := range col {
				aSum[i] += int32(a)
			}
		}

		sOut := out.data[s*c.outC*p:]
		for oc := 0; oc < c.outC; oc++ {
			for i := range acc {
				acc[i] = 0
			}
			wRow := c.wCodes[oc*kk : (oc+1)*kk]
			for q := 0; q < kk; q++ {
				wc := uint32(wRow[q])
				col := cols[q*p : (q+1)*p]
				for i, a := range col {
					acc[i] += int32(lut[uint32(a)<<8|wc])
				}
			}
			zw := int32(c.wQP[oc].Zero)
			scale := c.inQP.Scale * c.wQP[oc].Scale
			fixed := int32(kk)*za*zw - za*c.wSum[oc]
			bias := c.bias[oc]
			dst := sOut[oc*p : (oc+1)*p]
			if net.noZP {
				// Ablation: raw LUT sums without the correction adders.
				for i := range acc {
					dst[i] = c.outQP.Quantize(float32(acc[i])*scale + bias)
				}
				continue
			}
			for i := range acc {
				v := float32(acc[i]-zw*aSum[i]+fixed)*scale + bias
				dst[i] = c.outQP.Quantize(v)
			}
		}
	}
	return out, nil
}

// im2colCodes is Im2col over uint8 codes with a configurable padding
// code (the activation zero-point).
func im2colCodes(x []uint8, inC, h, w, k, stride, pad int, padCode uint8, cols []uint8) {
	outH := (h+2*pad-k)/stride + 1
	outW := (w+2*pad-k)/stride + 1
	p := outH * outW
	for ci := 0; ci < inC; ci++ {
		base := ci * h * w
		for ki := 0; ki < k; ki++ {
			for kj := 0; kj < k; kj++ {
				row := ((ci*k+ki)*k + kj) * p
				idx := 0
				for oi := 0; oi < outH; oi++ {
					ii := oi*stride + ki - pad
					if ii < 0 || ii >= h {
						for oj := 0; oj < outW; oj++ {
							cols[row+idx] = padCode
							idx++
						}
						continue
					}
					rowBase := base + ii*w
					for oj := 0; oj < outW; oj++ {
						jj := oj*stride + kj - pad
						if jj < 0 || jj >= w {
							cols[row+idx] = padCode
						} else {
							cols[row+idx] = x[rowBase+jj]
						}
						idx++
					}
				}
			}
		}
	}
}
