package axnn

import (
	"repro/internal/nn"
	"repro/internal/quant"
)

// qConv is the quantized convolution stage — the layer whose multipliers
// the paper replaces with approximate designs.
//
// Weights are quantized per output channel (filter-wise scales), the
// standard scheme for deep conv stacks: per-tensor scales starve
// small-magnitude filters of resolution.
//
// With activation codes a (zero-point za) and weight codes w (zero-point
// zw of the channel), the exact affine accumulation per output element is
//
//	acc = sum (a-za)(w-zw)
//	    = sum M(a,w) - zw*sum(a) - za*sum(w) + n*za*zw
//
// where M is the multiplier. Only the first term goes through the
// (possibly approximate) LUT; the zero-point corrections are exact adder
// work in the accelerator and are computed exactly here, mirroring the
// TFApprox formulation.
//
// The accumulation runs as a tiled, weight-stationary GEMM over the
// im2col matrix: the transposed multiplier table keeps each weight
// code's 256 possible products in one contiguous 512-byte row,
// convBlock output channels share each pass over the column data, and
// the pixel dimension is cut into convTile-sized strips so the working
// set (column strip + block accumulators + 2 KB of LUT rows) stays
// L1/L2-resident. Integer accumulation is order-independent, so the
// tiled kernel is bit-for-bit identical to the retained reference
// kernel (refForward below), which tests pin for every registered
// multiplier.
type qConv struct {
	inC, outC, k, stride, pad int

	wCodes []uint8        // [outC][inC*k*k]
	wSum   []int32        // per-outC sum of weight codes
	wQP    []quant.Params // per-outC weight quantizer
	inQP   quant.Params
	outQP  quant.Params
	bias   []float32
}

const (
	// convBlock is the register-blocking factor: output channels whose
	// weight rows share one pass over each column strip.
	convBlock = 4
	// convTile is the pixel-strip width in elements: 4 accumulator rows
	// of int32 stay under 8 KB and each column strip is one L1 line run.
	convTile = 512
)

func newQConv(c *nn.Conv2D, inQP, outQP quant.Params, bits uint) *qConv {
	kk := c.InC * c.K * c.K
	q := &qConv{
		inC: c.InC, outC: c.OutC, k: c.K, stride: c.Stride, pad: c.Pad,
		wCodes: make([]uint8, c.OutC*kk),
		wSum:   make([]int32, c.OutC),
		wQP:    make([]quant.Params, c.OutC),
		inQP:   inQP, outQP: outQP,
		bias: append([]float32(nil), c.B...),
	}
	for oc := 0; oc < c.OutC; oc++ {
		row := c.W[oc*kk : (oc+1)*kk]
		lo, hi := quant.Range(row)
		qp := quant.Calibrate(lo, hi, bits)
		q.wQP[oc] = qp
		codes := qp.QuantizeSlice(row)
		copy(q.wCodes[oc*kk:(oc+1)*kk], codes)
		var s int32
		for _, w := range codes {
			s += int32(w)
		}
		q.wSum[oc] = s
	}
	return q
}

func (c *qConv) forward(net *Network, ws *workspace, in qtensor) (qtensor, []float32) {
	if net.ref {
		return c.refForward(net, in)
	}
	h, w := in.shape[1], in.shape[2]
	outH := (h+2*c.pad-c.k)/c.stride + 1
	outW := (w+2*c.pad-c.k)/c.stride + 1
	p := outH * outW
	kk := c.inC * c.k * c.k
	inVol := c.inC * h * w

	cols := u8(&ws.cols, kk*p)
	aSum := i32(&ws.aSum, p)
	nz := u32(&ws.nz, kk*p)
	nzOff := i32(&ws.nzOff, kk+1)
	tile := min(convTile, p)

	lutT := net.mulT
	zaCode := in.qp.Zero

	out := qtensor{n: in.n, shape: []int{c.outC, outH, outW}, data: ws.nextAct(in.n * c.outC * p), qp: c.outQP}
	for s := 0; s < in.n; s++ {
		x := in.data[s*inVol : (s+1)*inVol]
		// Route the sample on the raw activation plane: the fraction of
		// codes differing from the zero-point is (border effects aside)
		// the column matrix's nonzero fraction, and counting it here
		// costs one pass over the input instead of one over the k*k
		// times larger im2col output.
		nzX := 0
		for _, a := range x {
			if a != zaCode {
				nzX++
			}
		}

		sOut := out.data[s*c.outC*p:]
		if p == 1 {
			// im2col in the code domain; padding contributes the
			// zero-point code (real value 0), as in the hardware
			// dataflow.
			im2colCodes(x, c.inC, h, w, c.k, c.stride, c.pad, zaCode, cols)
			var colSum int32
			for _, a := range cols[:kk] {
				colSum += int32(a)
			}
			aSum[0] = colSum
			// 1x1 output plane (LeNet's conv3): the GEMM degenerates to
			// one dot product per output channel. Accumulate in registers
			// — no strip scratch, no tiles, no zeroing.
			acc := i32(&ws.acc, convBlock)
			col := cols[:kk]
			for oc0 := 0; oc0 < c.outC; oc0 += convBlock {
				nb := min(convBlock, c.outC-oc0)
				switch nb {
				case convBlock:
					acc[0], acc[1], acc[2], acc[3] = dot4(lutT, col,
						c.wCodes[(oc0+0)*kk:(oc0+1)*kk],
						c.wCodes[(oc0+1)*kk:(oc0+2)*kk],
						c.wCodes[(oc0+2)*kk:(oc0+3)*kk],
						c.wCodes[(oc0+3)*kk:(oc0+4)*kk])
				case 3:
					acc[0], acc[1] = dot2(lutT, col,
						c.wCodes[(oc0+0)*kk:(oc0+1)*kk],
						c.wCodes[(oc0+1)*kk:(oc0+2)*kk])
					acc[2] = dot1(lutT, col, c.wCodes[(oc0+2)*kk:(oc0+3)*kk])
				case 2:
					acc[0], acc[1] = dot2(lutT, col,
						c.wCodes[(oc0+0)*kk:(oc0+1)*kk],
						c.wCodes[(oc0+1)*kk:(oc0+2)*kk])
				default:
					acc[0] = dot1(lutT, col, c.wCodes[oc0*kk:(oc0+1)*kk])
				}
				c.epilogue(net, acc, aSum, sOut, oc0, nb, 0, 1, 1)
			}
			continue
		}
		if nzX*sparseDen <= len(x)*sparseNum {
			// Sparse sample: decompose acc = sum_q row_q[za] (a per-
			// channel constant) + corrections over nonzero codes only.
			// Integer-exact, so bit-identical to the dense walk.
			var cnt int
			if c.stride == 1 {
				// Unit stride never materialises the column matrix for
				// sparse samples: the view is read off the (much
				// smaller) input plane directly.
				cnt = nzFromInput(x, c.inC, h, w, c.k, c.pad, outH, outW, zaCode, nz, nzOff[:kk+1])
			} else {
				im2colCodes(x, c.inC, h, w, c.k, c.stride, c.pad, zaCode, cols)
				cnt = nzFromCols(cols, p, kk, zaCode, nz, nzOff[:kk+1])
			}
			// Reconstruct the per-pixel code sums from the sparse view:
			// every column entry contributes za except the recorded
			// nonzero codes. Integer-exact, same value the dense scan
			// would produce.
			za32 := int32(zaCode)
			colBase := int32(kk) * za32
			for i := range aSum {
				aSum[i] = colBase
			}
			for _, pk := range nz[:cnt] {
				aSum[pk>>8] += int32(pk&0xff) - za32
			}
			acc := i32(&ws.acc, 2*convBlock*p)
			for oc0 := 0; oc0 < c.outC; oc0 += convBlock {
				nb := min(convBlock, c.outC-oc0)
				switch nb {
				case convBlock:
					sparseQuad4(lutT, nz, nzOff, kk, zaCode,
						c.wCodes[(oc0+0)*kk:(oc0+1)*kk],
						c.wCodes[(oc0+1)*kk:(oc0+2)*kk],
						c.wCodes[(oc0+2)*kk:(oc0+3)*kk],
						c.wCodes[(oc0+3)*kk:(oc0+4)*kk],
						acc[0:4*p], acc[4*p:8*p])
				case 3:
					sparseBlock2(lutT, nz, nzOff, kk, zaCode,
						c.wCodes[(oc0+0)*kk:(oc0+1)*kk],
						c.wCodes[(oc0+1)*kk:(oc0+2)*kk],
						acc[0:p], acc[p:2*p])
					sparseBlock1(lutT, nz, nzOff, kk, zaCode,
						c.wCodes[(oc0+2)*kk:(oc0+3)*kk], acc[2*p:3*p])
				case 2:
					sparseBlock2(lutT, nz, nzOff, kk, zaCode,
						c.wCodes[(oc0+0)*kk:(oc0+1)*kk],
						c.wCodes[(oc0+1)*kk:(oc0+2)*kk],
						acc[0:p], acc[p:2*p])
				default:
					sparseBlock1(lutT, nz, nzOff, kk, zaCode,
						c.wCodes[oc0*kk:(oc0+1)*kk], acc[0:p])
				}
				c.epilogue(net, acc, aSum, sOut, oc0, nb, 0, p, p)
			}
			continue
		}

		// Dense sample: materialise the column matrix and take per-pixel
		// code sums in one sequential pass each.
		im2colCodes(x, c.inC, h, w, c.k, c.stride, c.pad, zaCode, cols)
		clear(aSum)
		for q := 0; q < kk; q++ {
			col := cols[q*p : (q+1)*p]
			sum := aSum[:len(col)]
			for i, a := range col {
				sum[i] += int32(a)
			}
		}

		acc := i32(&ws.acc, convBlock*tile)
		pack := u64(&ws.pack, convBlock*(convTile/2))
		for pt := 0; pt < p; pt += tile {
			pe := min(pt+tile, p)
			tw := pe - pt
			for oc0 := 0; oc0 < c.outC; oc0 += convBlock {
				nb := min(convBlock, c.outC-oc0)
				clear(acc[:nb*tw])
				switch nb {
				case convBlock:
					accBlock4(lutT, pack, cols, p, pt, pe, kk,
						c.wCodes[(oc0+0)*kk:(oc0+1)*kk],
						c.wCodes[(oc0+1)*kk:(oc0+2)*kk],
						c.wCodes[(oc0+2)*kk:(oc0+3)*kk],
						c.wCodes[(oc0+3)*kk:(oc0+4)*kk],
						acc[0:tw], acc[tw:2*tw], acc[2*tw:3*tw], acc[3*tw:4*tw])
				case 3:
					accBlock2(lutT, pack, cols, p, pt, pe, kk,
						c.wCodes[(oc0+0)*kk:(oc0+1)*kk],
						c.wCodes[(oc0+1)*kk:(oc0+2)*kk],
						acc[0:tw], acc[tw:2*tw])
					accBlock1(lutT, pack, cols, p, pt, pe, kk,
						c.wCodes[(oc0+2)*kk:(oc0+3)*kk], acc[2*tw:3*tw])
				case 2:
					accBlock2(lutT, pack, cols, p, pt, pe, kk,
						c.wCodes[(oc0+0)*kk:(oc0+1)*kk],
						c.wCodes[(oc0+1)*kk:(oc0+2)*kk],
						acc[0:tw], acc[tw:2*tw])
				default:
					accBlock1(lutT, pack, cols, p, pt, pe, kk,
						c.wCodes[oc0*kk:(oc0+1)*kk], acc[0:tw])
				}
				c.epilogue(net, acc, aSum, sOut, oc0, nb, pt, pe, p)
			}
		}
	}
	return out, nil
}

// sparseNum/sparseDen: a sample routes to the skip-zero kernel when its
// nonzero-code fraction is at most sparseNum/sparseDen. The sparse
// walk costs noticeably more per visited entry than the packed dense
// kernel per element (scattered read-modify-writes vs paired
// sequential accumulation), so it only wins once skipping removes a
// solid majority of the work; profiled on lenet5-digits, the
// crossover sits near half the entries zero.
const (
	sparseNum = 9
	sparseDen = 20
)

// epilogue requantizes one register block of accumulator rows into the
// output tensor; the arithmetic is exactly the reference kernel's.
func (c *qConv) epilogue(net *Network, acc, aSum []int32, sOut []uint8, oc0, nb, pt, pe, p int) {
	kk := c.inC * c.k * c.k
	tw := pe - pt
	za := int32(c.inQP.Zero)
	for j := 0; j < nb; j++ {
		oc := oc0 + j
		accj := acc[j*tw : (j+1)*tw]
		zw := int32(c.wQP[oc].Zero)
		scale := c.inQP.Scale * c.wQP[oc].Scale
		fixed := int32(kk)*za*zw - za*c.wSum[oc]
		bias := c.bias[oc]
		dst := sOut[oc*p+pt : oc*p+pe]
		if net.noZP {
			// Ablation: raw LUT sums without the correction adders.
			for i := range accj {
				dst[i] = c.outQP.Quantize(float32(accj[i])*scale + bias)
			}
			continue
		}
		sumT := aSum[pt:pe]
		for i := range accj {
			v := float32(accj[i]-zw*sumT[i]+fixed)*scale + bias
			dst[i] = c.outQP.Quantize(v)
		}
	}
}

// lutArr views the transposed table as a fixed-size array: one length
// check per kernel call, after which every uint16-composed index
// (uint16(w)<<8 | uint16(a)) is provably in bounds — the steady-state
// MAC is an OR, a load, and an add, with no per-access checks.
func lutArr(lutT []uint16) *[1 << 16]uint16 {
	return (*[1 << 16]uint16)(lutT)
}

// lutRow returns weight code wc's contiguous 256-entry product row of
// the transposed table — the row view used by the dense kernel, where
// the weight row is walked with varying codes per activation.
func lutRow(lutT []uint16, wc uint8) *[256]uint16 {
	return (*[256]uint16)(lutT[int(wc)<<8:])
}

// accBlock4 accumulates LUT products of four weight rows over the pixel
// strip [pt, pe), with the reduction (q) loop OUTER: for each q the four
// weight codes pin four contiguous 512-byte LUT rows, which stay
// L1-resident while the whole pixel strip streams past them — the only
// random accesses land inside those hot rows. Partial sums for pixel
// pairs are packed into uint64 halves (products are uint16, so a half
// never exceeds kk*65535 and the low half cannot carry into the high
// half for any kk the reference kernel's own int32 accumulator can
// represent) and live in the workspace pack scratch walked
// sequentially — cleared only up to the live pair count, so narrow
// tiles never pay for the full strip — and the steady-state MAC is an
// L1 row load, an OR/shift, and a packed add.
func accBlock4(lutT []uint16, pack []uint64, cols []uint8, p, pt, pe, kk int, w0, w1, w2, w3 []uint8, a0, a1, a2, a3 []int32) {
	t := lutArr(lutT)
	tw := pe - pt
	w0 = w0[:kk]
	w1 = w1[:kk]
	w2 = w2[:kk]
	w3 = w3[:kk]
	pairs := tw / 2
	const half = convTile / 2
	d0 := pack[0*half : 0*half+pairs : 1*half]
	d1 := pack[1*half : 1*half+pairs : 2*half]
	d2 := pack[2*half : 2*half+pairs : 3*half]
	d3 := pack[3*half : 3*half+pairs : 4*half]
	clear(d0)
	clear(d1)
	clear(d2)
	clear(d3)
	for q := 0; q < kk; q++ {
		col := cols[q*p+pt : q*p+pe : q*p+pe]
		h0 := uint16(w0[q]) << 8
		h1 := uint16(w1[q]) << 8
		h2 := uint16(w2[q]) << 8
		h3 := uint16(w3[q]) << 8
		for jj := range d0 {
			v0 := uint16(col[2*jj])
			v1 := uint16(col[2*jj+1])
			d0[jj] += uint64(t[h0|v0]) | uint64(t[h0|v1])<<32
			d1[jj] += uint64(t[h1|v0]) | uint64(t[h1|v1])<<32
			d2[jj] += uint64(t[h2|v0]) | uint64(t[h2|v1])<<32
			d3[jj] += uint64(t[h3|v0]) | uint64(t[h3|v1])<<32
		}
		if tw&1 != 0 {
			v := uint16(col[tw-1])
			a0[tw-1] += int32(t[h0|v])
			a1[tw-1] += int32(t[h1|v])
			a2[tw-1] += int32(t[h2|v])
			a3[tw-1] += int32(t[h3|v])
		}
	}
	for jj := 0; jj < pairs; jj++ {
		a0[2*jj] += int32(uint32(d0[jj]))
		a0[2*jj+1] += int32(uint32(d0[jj] >> 32))
		a1[2*jj] += int32(uint32(d1[jj]))
		a1[2*jj+1] += int32(uint32(d1[jj] >> 32))
		a2[2*jj] += int32(uint32(d2[jj]))
		a2[2*jj+1] += int32(uint32(d2[jj] >> 32))
		a3[2*jj] += int32(uint32(d3[jj]))
		a3[2*jj+1] += int32(uint32(d3[jj] >> 32))
	}
}

// accBlock2 is the two-row variant of accBlock4 for output-channel
// tails of 2 or 3 (e.g. LeNet's 6-channel first conv).
func accBlock2(lutT []uint16, pack []uint64, cols []uint8, p, pt, pe, kk int, w0, w1 []uint8, a0, a1 []int32) {
	t := lutArr(lutT)
	tw := pe - pt
	w0 = w0[:kk]
	w1 = w1[:kk]
	pairs := tw / 2
	const half = convTile / 2
	d0 := pack[0*half : 0*half+pairs : 1*half]
	d1 := pack[1*half : 1*half+pairs : 2*half]
	clear(d0)
	clear(d1)
	for q := 0; q < kk; q++ {
		col := cols[q*p+pt : q*p+pe : q*p+pe]
		h0 := uint16(w0[q]) << 8
		h1 := uint16(w1[q]) << 8
		for jj := range d0 {
			v0 := uint16(col[2*jj])
			v1 := uint16(col[2*jj+1])
			d0[jj] += uint64(t[h0|v0]) | uint64(t[h0|v1])<<32
			d1[jj] += uint64(t[h1|v0]) | uint64(t[h1|v1])<<32
		}
		if tw&1 != 0 {
			v := uint16(col[tw-1])
			a0[tw-1] += int32(t[h0|v])
			a1[tw-1] += int32(t[h1|v])
		}
	}
	for jj := 0; jj < pairs; jj++ {
		a0[2*jj] += int32(uint32(d0[jj]))
		a0[2*jj+1] += int32(uint32(d0[jj] >> 32))
		a1[2*jj] += int32(uint32(d1[jj]))
		a1[2*jj+1] += int32(uint32(d1[jj] >> 32))
	}
}

// accBlock1 is the single-row tail for output-channel counts that do
// not divide by convBlock, structured the same way.
func accBlock1(lutT []uint16, pack []uint64, cols []uint8, p, pt, pe, kk int, w0 []uint8, a0 []int32) {
	t := lutArr(lutT)
	tw := pe - pt
	w0 = w0[:kk]
	pairs := tw / 2
	d0 := pack[0 : pairs : convTile/2]
	clear(d0)
	for q := 0; q < kk; q++ {
		col := cols[q*p+pt : q*p+pe : q*p+pe]
		h0 := uint16(w0[q]) << 8
		for jj := range d0 {
			d0[jj] += uint64(t[h0|uint16(col[2*jj])]) | uint64(t[h0|uint16(col[2*jj+1])])<<32
		}
		if tw&1 != 0 {
			a0[tw-1] += int32(t[h0|uint16(col[tw-1])])
		}
	}
	for jj := 0; jj < pairs; jj++ {
		a0[2*jj] += int32(uint32(d0[jj]))
		a0[2*jj+1] += int32(uint32(d0[jj] >> 32))
	}
}

// dot4 is the degenerate p==1 kernel: four weight rows against one
// im2col column, accumulated entirely in registers. Column layers
// (LeNet's conv3) hit this shape once per sample per channel block,
// where strip scratch and tiling are pure overhead.
func dot4(lutT []uint16, col []uint8, w0, w1, w2, w3 []uint8) (int32, int32, int32, int32) {
	t := lutArr(lutT)
	w0 = w0[:len(col)]
	w1 = w1[:len(col)]
	w2 = w2[:len(col)]
	w3 = w3[:len(col)]
	var acc0, acc1, acc2, acc3 int32
	for q, a := range col {
		v := uint16(a)
		acc0 += int32(t[uint16(w0[q])<<8|v])
		acc1 += int32(t[uint16(w1[q])<<8|v])
		acc2 += int32(t[uint16(w2[q])<<8|v])
		acc3 += int32(t[uint16(w3[q])<<8|v])
	}
	return acc0, acc1, acc2, acc3
}

// dot2 is the two-row p==1 kernel.
func dot2(lutT []uint16, col []uint8, w0, w1 []uint8) (int32, int32) {
	t := lutArr(lutT)
	w0 = w0[:len(col)]
	w1 = w1[:len(col)]
	var acc0, acc1 int32
	for q, a := range col {
		v := uint16(a)
		acc0 += int32(t[uint16(w0[q])<<8|v])
		acc1 += int32(t[uint16(w1[q])<<8|v])
	}
	return acc0, acc1
}

// dot1 is the single-row p==1 kernel.
func dot1(lutT []uint16, col []uint8, w0 []uint8) int32 {
	t := lutArr(lutT)
	w0 = w0[:len(col)]
	var acc0 int32
	for q, a := range col {
		acc0 += int32(t[uint16(w0[q])<<8|uint16(a)])
	}
	return acc0
}

// sparseQuad4 is the skip-zero counterpart of accBlock4, decomposing
// each accumulator as the per-channel sum of the reduction rows'
// zero-point products (what a pixel of all-zero codes accumulates)
// plus corrections for the entries whose code differs from the
// zero-point, taken from the packed sparse view built in forward.
// Corrections land in quad, a pixel-interleaved scratch (the four
// channels of pixel i at quad[4i..4i+4]) so each entry touches one
// cache line through one bounds check; the final pass de-interleaves
// into the four rows of acc and adds the base term. Integer addition
// is order-independent, so results are bit-identical to the dense
// kernels. Rows are OVERWRITTEN, not accumulated into.
func sparseQuad4(lutT []uint16, nz []uint32, nzOff []int32, kk int, zaCode uint8, w0, w1, w2, w3 []uint8, acc, quad []int32) {
	t := lutArr(lutT)
	za := uint16(zaCode)
	w0 = w0[:kk]
	w1 = w1[:kk]
	w2 = w2[:kk]
	w3 = w3[:kk]
	clear(quad)
	var base0, base1, base2, base3 int32
	for q := 0; q < kk; q++ {
		h0 := uint16(w0[q]) << 8
		h1 := uint16(w1[q]) << 8
		h2 := uint16(w2[q]) << 8
		h3 := uint16(w3[q]) << 8
		z0 := int32(t[h0|za])
		z1 := int32(t[h1|za])
		z2 := int32(t[h2|za])
		z3 := int32(t[h3|za])
		base0 += z0
		base1 += z1
		base2 += z2
		base3 += z3
		for _, pk := range nz[nzOff[q]:nzOff[q+1]] {
			j := int(pk>>8) * 4
			v := uint16(pk & 0xff)
			s := quad[j : j+4 : j+4]
			s[0] += int32(t[h0|v]) - z0
			s[1] += int32(t[h1|v]) - z1
			s[2] += int32(t[h2|v]) - z2
			s[3] += int32(t[h3|v]) - z3
		}
	}
	p := len(quad) / 4
	a0 := acc[0*p : 1*p]
	a1 := acc[1*p : 2*p]
	a2 := acc[2*p : 3*p]
	a3 := acc[3*p : 4*p]
	for i := range a0 {
		a0[i] = quad[4*i] + base0
		a1[i] = quad[4*i+1] + base1
		a2[i] = quad[4*i+2] + base2
		a3[i] = quad[4*i+3] + base3
	}
}

// sparseBlock2 is the two-row skip-zero variant.
func sparseBlock2(lutT []uint16, nz []uint32, nzOff []int32, kk int, zaCode uint8, w0, w1 []uint8, a0, a1 []int32) {
	t := lutArr(lutT)
	za := uint16(zaCode)
	w0 = w0[:kk]
	w1 = w1[:kk]
	var base0, base1 int32
	for q := 0; q < kk; q++ {
		base0 += int32(t[uint16(w0[q])<<8|za])
		base1 += int32(t[uint16(w1[q])<<8|za])
	}
	a1 = a1[:len(a0)] // i < len(a0) == len(a1): fill loop stays check-free
	for i := range a0 {
		a0[i] = base0
		a1[i] = base1
	}
	for q := 0; q < kk; q++ {
		h0 := uint16(w0[q]) << 8
		h1 := uint16(w1[q]) << 8
		z0 := int32(t[h0|za])
		z1 := int32(t[h1|za])
		for _, pk := range nz[nzOff[q]:nzOff[q+1]] {
			i := int(pk >> 8)
			v := uint16(pk & 0xff)
			a0[i] += int32(t[h0|v]) - z0
			a1[i] += int32(t[h1|v]) - z1
		}
	}
}

// sparseBlock1 is the single-row skip-zero variant.
func sparseBlock1(lutT []uint16, nz []uint32, nzOff []int32, kk int, zaCode uint8, w0 []uint8, a0 []int32) {
	t := lutArr(lutT)
	za := uint16(zaCode)
	w0 = w0[:kk]
	var base0 int32
	for q := 0; q < kk; q++ {
		base0 += int32(t[uint16(w0[q])<<8|za])
	}
	for i := range a0 {
		a0[i] = base0
	}
	for q := 0; q < kk; q++ {
		h0 := uint16(w0[q]) << 8
		z0 := int32(t[h0|za])
		for _, pk := range nz[nzOff[q]:nzOff[q+1]] {
			i := int(pk >> 8)
			v := uint16(pk & 0xff)
			a0[i] += int32(t[h0|v]) - z0
		}
	}
}

// nzFromInput builds the packed sparse column view (pixel<<8 | code
// per entry, rows delimited by nzOff) straight from the input
// activation plane of a stride-1 convolution, never materialising the
// dense column matrix: each kernel offset (ci, ki, kj) reads one
// shifted window of the input rows, and out-of-image positions hold
// the zero-point code, so they can never yield an entry. Entry order
// (ascending q, then ascending pixel) matches nzFromCols exactly.
func nzFromInput(x []uint8, inC, h, w, k, pad, outH, outW int, zaCode uint8, nz []uint32, nzOff []int32) int {
	cnt := 0
	q := 0
	for ci := 0; ci < inC; ci++ {
		plane := x[ci*h*w : (ci+1)*h*w]
		for ki := 0; ki < k; ki++ {
			oi0 := max(0, pad-ki)
			oi1 := min(outH, h+pad-ki)
			for kj := 0; kj < k; kj++ {
				nzOff[q] = int32(cnt)
				q++
				j0 := max(0, pad-kj)
				j1 := min(outW, w+pad-kj)
				off := kj - pad
				for oi := oi0; oi < oi1; oi++ {
					row := plane[(oi+ki-pad)*w : (oi+ki-pad)*w+w]
					base := uint32(oi*outW) << 8
					for oj := j0; oj < j1; oj++ {
						a := row[oj+off]
						// Unconditional store + conditional bump
						// compiles branch-free; zero-point entries are
						// overwritten by the next nonzero one.
						nz[cnt] = (base + uint32(oj)<<8) | uint32(a)
						if a != zaCode {
							cnt++
						}
					}
				}
			}
		}
	}
	nzOff[q] = int32(cnt)
	return cnt
}

// nzFromCols builds the same packed sparse view from an already
// materialised column matrix — the fallback for strided convolutions.
func nzFromCols(cols []uint8, p, kk int, zaCode uint8, nz []uint32, nzOff []int32) int {
	cnt := 0
	for q := 0; q < kk; q++ {
		nzOff[q] = int32(cnt)
		for i, a := range cols[q*p : (q+1)*p] {
			nz[cnt] = uint32(i)<<8 | uint32(a)
			if a != zaCode {
				cnt++
			}
		}
	}
	nzOff[kk] = int32(cnt)
	return cnt
}

// im2colCodes is Im2col over uint8 codes with a configurable padding
// code (the activation zero-point).
func im2colCodes(x []uint8, inC, h, w, k, stride, pad int, padCode uint8, cols []uint8) {
	outH := (h+2*pad-k)/stride + 1
	outW := (w+2*pad-k)/stride + 1
	p := outH * outW
	for ci := 0; ci < inC; ci++ {
		base := ci * h * w
		for ki := 0; ki < k; ki++ {
			for kj := 0; kj < k; kj++ {
				row := ((ci*k+ki)*k + kj) * p
				idx := 0
				for oi := 0; oi < outH; oi++ {
					ii := oi*stride + ki - pad
					if ii < 0 || ii >= h {
						dst := cols[row+idx : row+idx+outW]
						for oj := range dst {
							dst[oj] = padCode
						}
						idx += outW
						continue
					}
					rowBase := base + ii*w
					if stride == 1 {
						// Unit stride reads a contiguous input run: pad the
						// out-of-image edges in bulk, memcpy the interior.
						j0 := max(0, pad-kj)
						j1 := min(outW, w+pad-kj)
						dst := cols[row+idx : row+idx+outW]
						for oj := 0; oj < j0; oj++ {
							dst[oj] = padCode
						}
						if j1 > j0 {
							copy(dst[j0:j1], x[rowBase+j0+kj-pad:])
						}
						for oj := j1; oj < outW; oj++ {
							dst[oj] = padCode
						}
						idx += outW
						continue
					}
					for oj := 0; oj < outW; oj++ {
						jj := oj*stride + kj - pad
						if jj < 0 || jj >= w {
							cols[row+idx] = padCode
						} else {
							cols[row+idx] = x[rowBase+jj]
						}
						idx++
					}
				}
			}
		}
	}
}
