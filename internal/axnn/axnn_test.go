package axnn

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/axmult"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func tinyNet(seed int64) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	return &nn.Network{
		Name: "tiny",
		Layers: []nn.Layer{
			nn.NewConv2D(1, 4, 3, 1, 1, rng),
			&nn.ReLU{},
			nn.NewAvgPool2D(2, 2),
			nn.NewConv2D(4, 6, 3, 1, 0, rng),
			&nn.ReLU{},
			&nn.Flatten{},
			nn.NewDense(6*2*2, 8, rng),
			&nn.ReLU{},
			nn.NewDense(8, 4, rng),
		},
	}
}

func calibSet(n int, seed int64) []*tensor.T {
	rng := rand.New(rand.NewSource(seed))
	var xs []*tensor.T
	for i := 0; i < n; i++ {
		x := tensor.New(1, 8, 8)
		for j := range x.Data {
			x.Data[j] = rng.Float32()
		}
		xs = append(xs, x)
	}
	return xs
}

// TestExactQuantizationTracksFloat verifies the engine with the exact
// multiplier approximates the float network: same argmax on most
// inputs and logits within quantization tolerance.
func TestExactQuantizationTracksFloat(t *testing.T) {
	net := tinyNet(1)
	calib := calibSet(32, 2)
	q, err := Compile(net, calib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for _, x := range calibSet(64, 3) {
		fl := net.Logits(x)
		ql := q.Logits(x)
		if len(fl) != len(ql) {
			t.Fatal("logit length mismatch")
		}
		if tensor.ArgMax(fl) == tensor.ArgMax(ql) {
			agree++
		}
	}
	if agree < 58 { // allow a few borderline flips out of 64
		t.Fatalf("quantized engine agrees on only %d/64 inputs", agree)
	}
}

func TestCompileRejectsEmptyCalibration(t *testing.T) {
	if _, err := Compile(tinyNet(1), nil, Options{}); err == nil {
		t.Fatal("expected error for empty calibration")
	}
}

func TestWithMultiplierIsolation(t *testing.T) {
	net := tinyNet(4)
	calib := calibSet(16, 5)
	q, err := Compile(net, calib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	exact := q.MultiplierName()
	q2 := q.WithMultiplier(axmult.MustLookup("mul8u_JV3"))
	if q.MultiplierName() != exact {
		t.Fatal("WithMultiplier mutated the original network")
	}
	if q2.MultiplierName() != "mul8u_JV3" {
		t.Fatal("WithMultiplier did not set the new multiplier")
	}
}

func TestApproximateMultiplierChangesOutputs(t *testing.T) {
	net := tinyNet(6)
	calib := calibSet(16, 7)
	q, err := Compile(net, calib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	qa := q.WithMultiplier(axmult.MustLookup("mul8u_FTA"))
	x := calibSet(1, 8)[0]
	le := q.Logits(x)
	la := qa.Logits(x)
	diff := 0.0
	for i := range le {
		diff += math.Abs(float64(le[i] - la[i]))
	}
	if diff == 0 {
		t.Fatal("an approximate multiplier should perturb the logits")
	}
}

func TestConcurrentLogits(t *testing.T) {
	net := tinyNet(9)
	calib := calibSet(16, 10)
	q, err := Compile(net, calib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := calibSet(1, 11)[0]
	want := append([]float32(nil), q.Logits(x)...)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := q.Logits(x)
			for j := range want {
				if got[j] != want[j] {
					t.Error("concurrent Logits diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestReducedBitsStillClassifies(t *testing.T) {
	net := tinyNet(12)
	calib := calibSet(32, 13)
	q8, err := Compile(net, calib, Options{Bits: 8})
	if err != nil {
		t.Fatal(err)
	}
	q4, err := Compile(net, calib, Options{Bits: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 4-bit quantization must run and produce finite logits; agreement
	// with 8-bit will be partial by design.
	x := calibSet(1, 14)[0]
	for _, v := range q4.Logits(x) {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("4-bit engine produced non-finite logits")
		}
	}
	_ = q8
}

func TestApproxDenseOption(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	ff := &nn.Network{
		Name: "ff",
		Layers: []nn.Layer{
			&nn.Flatten{},
			nn.NewDense(16, 12, rng),
			&nn.ReLU{},
			nn.NewDense(12, 3, rng),
		},
	}
	var calib []*tensor.T
	crng := rand.New(rand.NewSource(16))
	for i := 0; i < 16; i++ {
		x := tensor.New(16)
		for j := range x.Data {
			x.Data[j] = crng.Float32()
		}
		calib = append(calib, x)
	}
	qe, err := Compile(ff, calib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	qa, err := Compile(ff, calib, Options{ApproxDense: true})
	if err != nil {
		t.Fatal(err)
	}
	qa = qa.WithMultiplier(axmult.MustLookup("mul8u_FTA"))
	x := calib[0]
	de, da := qe.Logits(x), qa.Logits(x)
	diff := 0.0
	for i := range de {
		diff += math.Abs(float64(de[i] - da[i]))
	}
	if diff == 0 {
		t.Fatal("ApproxDense with an approximate multiplier should change dense outputs")
	}
	// Without ApproxDense, dense layers must be immune to the
	// multiplier choice (conv-free network => identical outputs).
	qe2 := qe.WithMultiplier(axmult.MustLookup("mul8u_FTA"))
	d2 := qe2.Logits(x)
	for i := range de {
		if de[i] != d2[i] {
			t.Fatal("dense layers must not use the approximate multiplier by default")
		}
	}
}

// TestZeroPointCorrectionExactness: with the exact multiplier, the
// LUT path plus zero-point corrections must equal the direct integer
// affine convolution — i.e. the error introduced by the engine is only
// quantization, never bookkeeping.
func TestZeroPointCorrectionExactness(t *testing.T) {
	net := tinyNet(20)
	calib := calibSet(16, 21)
	q, err := Compile(net, calib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Find the first qConv and run one output by hand.
	qc, ok := q.layers[0].(*qConv)
	if !ok {
		t.Fatalf("layer 0 is %T, want *qConv", q.layers[0])
	}
	x := calibSet(1, 22)[0]
	in := qtensor{n: 1, shape: x.Shape, data: q.inQP.QuantizeSlice(x.Data), qp: q.inQP}
	ws := q.getWS()
	defer q.putWS(ws)
	out, _ := qc.forward(q, ws, in)

	// Direct affine computation for output (oc=0, oi=0, oj=0).
	kk := qc.inC * qc.k * qc.k
	cols := make([]uint8, kk*((8+2*qc.pad-qc.k)/qc.stride+1)*((8+2*qc.pad-qc.k)/qc.stride+1))
	im2colCodes(in.data, qc.inC, 8, 8, qc.k, qc.stride, qc.pad, in.qp.Zero, cols)
	p := len(cols) / kk
	var acc int32
	for qi := 0; qi < kk; qi++ {
		a := int32(cols[qi*p+0]) - int32(qc.inQP.Zero)
		w := int32(qc.wCodes[qi]) - int32(qc.wQP[0].Zero)
		acc += a * w
	}
	v := float32(acc)*qc.inQP.Scale*qc.wQP[0].Scale + qc.bias[0]
	want := qc.outQP.Quantize(v)
	if out.data[0] != want {
		t.Fatalf("zero-point correction mismatch: engine %d, direct %d", out.data[0], want)
	}
}
