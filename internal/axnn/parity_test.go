package axnn

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/axmult"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// parityNets returns conv+dense stacks covering the shape corners the
// tiled kernel specialises on: padded and strided convolutions, an
// output-channel count that exercises both the 4-wide register block
// and its 1-wide tail, pooling, and the dense stages.
func parityNets() []*nn.Network {
	rng := rand.New(rand.NewSource(97))
	return []*nn.Network{
		{
			Name: "parity-pad",
			Layers: []nn.Layer{
				nn.NewConv2D(1, 6, 3, 1, 1, rng), // pad=1, outC=6: one block + 2-tail
				&nn.ReLU{},
				nn.NewAvgPool2D(2, 2),
				nn.NewConv2D(6, 4, 3, 1, 0, rng), // outC=4: exactly one block
				&nn.ReLU{},
				&nn.Flatten{},
				nn.NewDense(4*2*2, 10, rng),
				&nn.ReLU{},
				nn.NewDense(10, 4, rng),
			},
		},
		{
			Name: "parity-stride",
			Layers: []nn.Layer{
				nn.NewConv2D(2, 5, 3, 2, 2, rng), // stride=2, pad=2, outC=5: block + 1-tail
				&nn.ReLU{},
				nn.NewConv2D(5, 3, 3, 1, 0, rng), // outC=3: tail only, no full block
				&nn.ReLU{},
				&nn.Flatten{},
				nn.NewDense(3*3*3, 5, rng),
			},
		},
	}
}

func parityBatch(chans, n int, seed int64) []*tensor.T {
	rng := rand.New(rand.NewSource(seed))
	var xs []*tensor.T
	for i := 0; i < n; i++ {
		x := tensor.New(chans, 8, 8)
		for j := range x.Data {
			x.Data[j] = rng.Float32()*2 - 0.5
		}
		xs = append(xs, x)
	}
	return xs
}

func assertSameLogits(t *testing.T, label string, want, got *tensor.T) {
	t.Helper()
	if len(want.Data) != len(got.Data) {
		t.Fatalf("%s: logit count %d != %d", label, len(got.Data), len(want.Data))
	}
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("%s: logit %d diverged: reference %v, tiled %v", label, i, want.Data[i], got.Data[i])
		}
	}
}

// TestTiledKernelParityAllMultipliers pins the tentpole's correctness
// claim: for EVERY multiplier in the axmult registry, on conv+dense
// stacks with padded and strided shapes and random batches, the tiled
// weight-major kernel produces logits bit-identical to the retained
// reference kernel.
func TestTiledKernelParityAllMultipliers(t *testing.T) {
	names := axmult.Names()
	if len(names) < 20 {
		t.Fatalf("registry unexpectedly small: %d designs", len(names))
	}
	for ni, net := range parityNets() {
		chans := net.Layers[0].(*nn.Conv2D).InC
		q, err := Compile(net, parityBatch(chans, 12, int64(100+ni)), Options{})
		if err != nil {
			t.Fatal(err)
		}
		batch := tensor.Stack(parityBatch(chans, 5, int64(200+ni)))
		for _, name := range names {
			lut, err := axmult.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			eng := q.WithMultiplier(lut)
			want := eng.WithReferenceKernel().LogitsBatch(batch)
			got := eng.LogitsBatch(batch)
			assertSameLogits(t, fmt.Sprintf("%s/%s", net.Name, name), want, got)
		}
	}
}

// sparseParityBatch builds inputs whose real value is exactly zero
// with probability 1-density — after quantization those positions hold
// the activation zero-point code, driving the per-sample router toward
// the skip-zero kernel.
func sparseParityBatch(chans, n int, density float64, seed int64) []*tensor.T {
	rng := rand.New(rand.NewSource(seed))
	var xs []*tensor.T
	for i := 0; i < n; i++ {
		x := tensor.New(chans, 8, 8)
		for j := range x.Data {
			if rng.Float64() < density {
				x.Data[j] = rng.Float32()*2 - 0.5
			}
		}
		xs = append(xs, x)
	}
	return xs
}

// TestTiledKernelParitySparse pins the skip-zero path: batches mixing
// mostly-zero samples (sparse-routed), dense samples, and an all-zero
// sample (an empty sparse view) must stay bit-identical to the
// reference kernel on every structural corner — padded stride-1 convs
// (the direct-from-input sparse view builder), strided convs (the
// column-matrix fallback builder), and a 1x1-output conv (the dot
// path), across structurally diverse multipliers.
func TestTiledKernelParitySparse(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	nets := parityNets()
	nets = append(nets, &nn.Network{
		Name: "parity-1x1",
		Layers: []nn.Layer{
			nn.NewConv2D(1, 7, 8, 1, 0, rng), // k == input size: p == 1, outC=7: dot4+dot2+dot1
			&nn.ReLU{},
			&nn.Flatten{},
			nn.NewDense(7, 4, rng),
		},
	})
	muls := []string{"mul8u_1JFF", "mul8u_17KS", "mul8u_JV3", "mul8u_L40", "mul8u_QJD", "mul8u_FTA"}
	for ni, net := range nets {
		chans := net.Layers[0].(*nn.Conv2D).InC
		q, err := Compile(net, sparseParityBatch(chans, 12, 0.4, int64(400+ni)), Options{})
		if err != nil {
			t.Fatal(err)
		}
		var xs []*tensor.T
		xs = append(xs, sparseParityBatch(chans, 3, 0.08, int64(500+ni))...) // sparse-routed
		xs = append(xs, parityBatch(chans, 2, int64(510+ni))...)             // dense-routed
		xs = append(xs, tensor.New(chans, 8, 8))                             // all-zero: empty sparse view
		batch := tensor.Stack(xs)
		for _, name := range muls {
			eng := q.WithMultiplier(axmult.MustLookup(name))
			want := eng.WithReferenceKernel().LogitsBatch(batch)
			got := eng.LogitsBatch(batch)
			assertSameLogits(t, fmt.Sprintf("sparse/%s/%s", net.Name, name), want, got)
		}
	}
}

// TestSparseViewBuilders pins nzFromInput against nzFromCols: for
// stride-1 geometries with and without padding, building the packed
// sparse view straight from the input plane must yield exactly the
// entries and row offsets that the column-matrix walk produces.
func TestSparseViewBuilders(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const zaCode = 37
	for _, g := range []struct{ inC, h, w, k, pad int }{
		{1, 8, 8, 3, 0},
		{1, 8, 8, 3, 1},
		{2, 7, 9, 3, 2},
		{3, 6, 6, 5, 2},
		{1, 5, 5, 5, 0}, // p == 1
	} {
		outH := g.h + 2*g.pad - g.k + 1
		outW := g.w + 2*g.pad - g.k + 1
		p := outH * outW
		kk := g.inC * g.k * g.k
		x := make([]uint8, g.inC*g.h*g.w)
		for i := range x {
			if rng.Float64() < 0.3 {
				x[i] = uint8(rng.Intn(256))
			} else {
				x[i] = zaCode
			}
		}
		cols := make([]uint8, kk*p)
		im2colCodes(x, g.inC, g.h, g.w, g.k, 1, g.pad, zaCode, cols)
		wantNz := make([]uint32, kk*p)
		wantOff := make([]int32, kk+1)
		wantCnt := nzFromCols(cols, p, kk, zaCode, wantNz, wantOff)
		gotNz := make([]uint32, kk*p)
		gotOff := make([]int32, kk+1)
		gotCnt := nzFromInput(x, g.inC, g.h, g.w, g.k, g.pad, outH, outW, zaCode, gotNz, gotOff)
		if gotCnt != wantCnt {
			t.Fatalf("%+v: entry count %d, want %d", g, gotCnt, wantCnt)
		}
		for q := 0; q <= kk; q++ {
			if gotOff[q] != wantOff[q] {
				t.Fatalf("%+v: nzOff[%d] = %d, want %d", g, q, gotOff[q], wantOff[q])
			}
		}
		for i := 0; i < wantCnt; i++ {
			if gotNz[i] != wantNz[i] {
				t.Fatalf("%+v: entry %d = %#x, want %#x", g, i, gotNz[i], wantNz[i])
			}
		}
	}
}

// TestTiledKernelParityApproxDense covers the ApproxDense
// (activation-stationary LUT dense) path against the reference dense
// kernel for a sample of structurally diverse designs.
func TestTiledKernelParityApproxDense(t *testing.T) {
	net := parityNets()[0]
	q, err := Compile(net, parityBatch(1, 12, 300), Options{ApproxDense: true})
	if err != nil {
		t.Fatal(err)
	}
	batch := tensor.Stack(parityBatch(1, 6, 301))
	for _, name := range []string{"mul8u_1JFF", "mul8u_JV3", "mul8u_L40", "mul8u_JQQ", "mul8u_QJD", "mul8u_FTA"} {
		eng := q.WithMultiplier(axmult.MustLookup(name))
		want := eng.WithReferenceKernel().LogitsBatch(batch)
		got := eng.LogitsBatch(batch)
		assertSameLogits(t, "approx-dense/"+name, want, got)
	}
}

// TestTiledKernelParityNoZeroPoint covers the ablation epilogue.
func TestTiledKernelParityNoZeroPoint(t *testing.T) {
	net := parityNets()[0]
	q, err := Compile(net, parityBatch(1, 12, 310), Options{NoZeroPointCorrection: true})
	if err != nil {
		t.Fatal(err)
	}
	batch := tensor.Stack(parityBatch(1, 4, 311))
	eng := q.WithMultiplier(axmult.MustLookup("mul8u_17KS"))
	assertSameLogits(t, "no-zp",
		eng.WithReferenceKernel().LogitsBatch(batch), eng.LogitsBatch(batch))
}

// TestWorkersParity: intra-batch parallelism must be invisible in the
// output — every Workers setting yields bit-identical rows, including
// worker counts that do not divide the batch and exceed it.
func TestWorkersParity(t *testing.T) {
	net := parityNets()[0]
	q, err := Compile(net, parityBatch(1, 12, 320), Options{})
	if err != nil {
		t.Fatal(err)
	}
	q = q.WithMultiplier(axmult.MustLookup("mul8u_JV3"))
	batch := tensor.Stack(parityBatch(1, 7, 321))
	want := q.LogitsBatch(batch)
	for _, w := range []int{2, 3, 4, 16} {
		got := q.WithWorkers(w).LogitsBatch(batch)
		assertSameLogits(t, fmt.Sprintf("workers=%d", w), want, got)
	}
}

// TestConcurrentBatchedWorkersRace hammers one shared Network with
// batched, worker-parallel inference from many goroutines — the
// pooled-workspace contract under the race detector (CI runs the whole
// suite with -race).
func TestConcurrentBatchedWorkersRace(t *testing.T) {
	net := parityNets()[0]
	q, err := Compile(net, parityBatch(1, 12, 330), Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	q = q.WithMultiplier(axmult.MustLookup("mul8u_L40"))
	batch := tensor.Stack(parityBatch(1, 9, 331))
	want := q.LogitsBatch(batch)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 8; iter++ {
				got := q.LogitsBatch(batch)
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						t.Error("concurrent worker-parallel LogitsBatch diverged")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
