package axnn

import (
	"fmt"
	"math"
	"os"
	"testing"

	"repro/internal/modelzoo"
)

// TestDiagnoseQuantizationDepth traces float vs quantized activations
// layer by layer on the deepest model. Run explicitly with
// AXREPRO_DIAG=1 go test ./internal/axnn -run Diagnose -v
func TestDiagnoseQuantizationDepth(t *testing.T) {
	if os.Getenv("AXREPRO_DIAG") == "" {
		t.Skip("diagnostic; set AXREPRO_DIAG=1 to run")
	}
	m, err := modelzoo.Get("alexnet-objects")
	if err != nil {
		t.Fatal(err)
	}
	q, err := Compile(m.Net, m.Test.Inputs(64), Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := m.Test.X[0]
	floats := m.Net.ForwardTrace(x)

	in := qtensor{n: 1, shape: x.Shape, data: q.inQP.QuantizeSlice(x.Data), qp: q.inQP}
	ws := q.getWS()
	defer q.putWS(ws)
	for i, l := range q.layers {
		var logits []float32
		in, logits = l.forward(q, ws, in)
		var deq []float32
		if logits != nil {
			deq = logits
		} else {
			deq = in.qp.DequantizeSlice(in.data)
		}
		f := floats[i].Data
		if len(f) != len(deq) {
			t.Fatalf("layer %d length mismatch %d vs %d", i, len(f), len(deq))
		}
		var dot, nf, nq float64
		for j := range f {
			dot += float64(f[j]) * float64(deq[j])
			nf += float64(f[j]) * float64(f[j])
			nq += float64(deq[j]) * float64(deq[j])
		}
		cos := dot / (math.Sqrt(nf)*math.Sqrt(nq) + 1e-12)
		fmt.Printf("layer %2d %-12T cos=%.4f  |f|=%.2f |q|=%.2f\n", i, l, cos, math.Sqrt(nf), math.Sqrt(nq))
	}
}
