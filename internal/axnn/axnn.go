// Package axnn is the AxDNN accelerator simulator: it compiles a
// trained float network (internal/nn) into an integer inference engine
// with affine-quantized activations and weights, int32 accumulators,
// and a pluggable 8x8 multiplier LUT for the convolution layers — the
// Go equivalent of running TFApprox with an EvoApprox multiplier.
//
// Semantics follow the paper's methodology (Fig. 3):
//
//   - Weights and activations are fixed-point quantized (default 8 bit,
//     configurable Qlevel).
//   - Only convolution products go through the approximate multiplier
//     (Section IV-A replaces multipliers in the conv layers); dense
//     layers use exact int32 MACs unless Options.ApproxDense is set
//     (needed for the FFNN of Fig. 1, which has no conv layers).
//   - Zero-point cross terms are corrected exactly, so with the exact
//     multiplier the engine reproduces standard uint8 post-training
//     quantization.
//
// Networks produced by Compile are immutable after SetMultiplier and
// safe for concurrent Logits calls.
package axnn

import (
	"fmt"

	"repro/internal/axmult"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// Options configures compilation.
type Options struct {
	// Bits is the activation/weight code width (the paper's Qlevel).
	// 0 means 8.
	Bits uint
	// ApproxDense routes dense-layer products through the approximate
	// multiplier too (used for the FFNN study and ablations).
	ApproxDense bool
	// NoZeroPointCorrection drops the exact zero-point cross terms in
	// the conv accumulation. Only for the ablation bench: it breaks the
	// affine semantics and shows why TFApprox-style engines must carry
	// the correction adders.
	NoZeroPointCorrection bool
	// Multiplier is the initial multiplier; nil means the exact design.
	Multiplier *axmult.LUT
}

// Network is a compiled quantized network.
type Network struct {
	Name        string
	layers      []qlayer
	mul         []uint16 // active LUT table, index a<<8|w
	mulID       string
	inQP        quant.Params
	approxDense bool
	noZP        bool
}

// qtensor is a batch of n quantized activations sharing one code
// layout: shape is the PER-SAMPLE shape and data packs the n samples
// contiguously ([n * vol(shape)] codes).
type qtensor struct {
	n     int
	shape []int
	data  []uint8
	qp    quant.Params
}

// vol returns the per-sample element count.
func (t qtensor) vol() int { return len(t.data) / t.n }

// qlayer either produces another quantized batch or, for the final
// stage, float logits ([n * classes], row-major by sample).
type qlayer interface {
	forward(net *Network, in qtensor) (qtensor, []float32)
}

// Compile quantizes a trained float network using the calibration set
// to derive per-layer activation ranges.
func Compile(n *nn.Network, calib []*tensor.T, opts Options) (*Network, error) {
	if len(calib) == 0 {
		return nil, fmt.Errorf("axnn: empty calibration set")
	}
	bits := opts.Bits
	// Per-layer output ranges over the calibration set. Activation
	// ranges use the *average* of per-sample extrema rather than the
	// global min/max: deep networks produce rare outlier activations
	// that would otherwise blow up the scale and starve the common
	// range of resolution (the standard moving-min/max calibration).
	mins := make([]float32, len(n.Layers))
	maxs := make([]float32, len(n.Layers))
	var inMin, inMax float32
	for _, x := range calib {
		lo, hi := quant.Range(x.Data)
		inMin += lo
		inMax += hi
		for i, o := range n.ForwardTrace(x) {
			l2, h2 := quant.Range(o.Data)
			mins[i] += l2
			maxs[i] += h2
		}
	}
	norm := float32(len(calib))
	inMin /= norm
	inMax /= norm
	for i := range mins {
		mins[i] /= norm
		maxs[i] /= norm
	}

	q := &Network{
		Name:        n.Name,
		inQP:        quant.Calibrate(inMin, inMax, bits),
		approxDense: opts.ApproxDense,
		noZP:        opts.NoZeroPointCorrection,
	}
	inQP := q.inQP
	for i, l := range n.Layers {
		outQP := quant.Calibrate(mins[i], maxs[i], bits)
		last := i == len(n.Layers)-1
		switch t := l.(type) {
		case *nn.Conv2D:
			q.layers = append(q.layers, newQConv(t, inQP, outQP, bits))
		case *nn.Dense:
			q.layers = append(q.layers, newQDense(t, inQP, outQP, bits, last))
		case *nn.ReLU:
			q.layers = append(q.layers, &qReLU{outQP: outQP, lut: quant.RequantLUT(inQP, outQP, func(v float32) float32 {
				if v < 0 {
					return 0
				}
				return v
			})})
		case *nn.AvgPool2D:
			q.layers = append(q.layers, &qAvgPool{k: t.K, stride: poolStride(t), outQP: outQP, lut: quant.RequantLUT(inQP, outQP, nil)})
		case *nn.Flatten:
			q.layers = append(q.layers, &qFlatten{})
			outQP = inQP // passthrough keeps params
		default:
			return nil, fmt.Errorf("axnn: unsupported layer type %T", l)
		}
		if _, ok := l.(*nn.Flatten); ok {
			continue
		}
		inQP = outQP
	}
	if opts.Multiplier != nil {
		q.SetMultiplier(opts.Multiplier)
	} else {
		q.SetMultiplier(axmult.MustLookup("mul8u_1JFF"))
	}
	return q, nil
}

func poolStride(p *nn.AvgPool2D) int {
	if p.Stride == 0 {
		return p.K
	}
	return p.Stride
}

// SetMultiplier installs the approximate multiplier used by conv (and
// optionally dense) layers. It returns the network for chaining.
func (q *Network) SetMultiplier(l *axmult.LUT) *Network {
	q.mul = l.Table()
	q.mulID = l.Name()
	return q
}

// WithMultiplier returns a shallow copy of the network running on the
// given multiplier. The copy shares the (immutable) quantized layers,
// so building one AxDNN per multiplier from a single compilation is
// cheap — the harness uses this to fan a grid out across designs.
func (q *Network) WithMultiplier(l *axmult.LUT) *Network {
	c := *q
	c.mul = l.Table()
	c.mulID = l.Name()
	return &c
}

// MultiplierName returns the active multiplier's name.
func (q *Network) MultiplierName() string { return q.mulID }

// Logits quantizes x and runs the integer pipeline, returning float
// logits. Safe for concurrent use.
func (q *Network) Logits(x *tensor.T) []float32 {
	return q.run(x.Data, x.Shape, 1)
}

// LogitsBatch runs the integer pipeline on a batch [N, sampleShape...]
// and returns the [N, classes] logits. The whole batch shares one
// quantization pass and one set of im2col/accumulator buffers per conv
// stage, so the LUT work is amortised; row r is bit-for-bit identical
// to Logits on sample r. Safe for concurrent use.
func (q *Network) LogitsBatch(xs *tensor.T) *tensor.T {
	n := xs.Shape[0]
	out := q.run(xs.Data, xs.Shape[1:], n)
	return tensor.FromSlice(out, n, len(out)/n)
}

// run quantizes n packed samples and pushes them through the layers.
func (q *Network) run(data []float32, sampleShape []int, n int) []float32 {
	in := qtensor{
		n:     n,
		shape: append([]int(nil), sampleShape...),
		data:  q.inQP.QuantizeSlice(data),
		qp:    q.inQP,
	}
	for _, l := range q.layers {
		var logits []float32
		in, logits = l.forward(q, in)
		if logits != nil {
			return logits
		}
	}
	// Networks not ending in a Dense layer: dequantize the final codes.
	return in.qp.DequantizeSlice(in.data)
}

// Predict returns the argmax class for x.
func (q *Network) Predict(x *tensor.T) int {
	return tensor.ArgMax(q.Logits(x))
}

// qReLU and requantization stages are 256-entry code maps.
type qReLU struct {
	lut   []uint8
	outQP quant.Params
}

func (r *qReLU) forward(_ *Network, in qtensor) (qtensor, []float32) {
	// Elementwise code map: the batch is one flat pass.
	out := qtensor{n: in.n, shape: in.shape, data: make([]uint8, len(in.data)), qp: r.outQP}
	for i, c := range in.data {
		out.data[i] = r.lut[c]
	}
	return out, nil
}

type qFlatten struct{}

func (f *qFlatten) forward(_ *Network, in qtensor) (qtensor, []float32) {
	return qtensor{n: in.n, shape: []int{in.vol()}, data: in.data, qp: in.qp}, nil
}

// qAvgPool averages codes inside each window (affine codes average like
// their real values) and requantizes via a 256-entry map.
type qAvgPool struct {
	k, stride int
	lut       []uint8
	outQP     quant.Params
}

func (p *qAvgPool) forward(_ *Network, in qtensor) (qtensor, []float32) {
	c, h, w := in.shape[0], in.shape[1], in.shape[2]
	outH := (h-p.k)/p.stride + 1
	outW := (w-p.k)/p.stride + 1
	out := qtensor{n: in.n, shape: []int{c, outH, outW}, data: make([]uint8, in.n*c*outH*outW), qp: p.outQP}
	kk := p.k * p.k
	half := kk / 2
	for s := 0; s < in.n; s++ {
		sIn := in.data[s*c*h*w:]
		sOut := out.data[s*c*outH*outW:]
		for ci := 0; ci < c; ci++ {
			src := sIn[ci*h*w:]
			dst := sOut[ci*outH*outW:]
			for oi := 0; oi < outH; oi++ {
				for oj := 0; oj < outW; oj++ {
					sum := 0
					for ki := 0; ki < p.k; ki++ {
						row := (oi*p.stride + ki) * w
						for kj := 0; kj < p.k; kj++ {
							sum += int(src[row+oj*p.stride+kj])
						}
					}
					dst[oi*outW+oj] = p.lut[(sum+half)/kk]
				}
			}
		}
	}
	return out, nil
}
