// Package axnn is the AxDNN accelerator simulator: it compiles a
// trained float network (internal/nn) into an integer inference engine
// with affine-quantized activations and weights, int32 accumulators,
// and a pluggable 8x8 multiplier LUT for the convolution layers — the
// Go equivalent of running TFApprox with an EvoApprox multiplier.
//
// Semantics follow the paper's methodology (Fig. 3):
//
//   - Weights and activations are fixed-point quantized (default 8 bit,
//     configurable Qlevel).
//   - Only convolution products go through the approximate multiplier
//     (Section IV-A replaces multipliers in the conv layers); dense
//     layers use exact int32 MACs unless Options.ApproxDense is set
//     (needed for the FFNN of Fig. 1, which has no conv layers).
//   - Zero-point cross terms are corrected exactly, so with the exact
//     multiplier the engine reproduces standard uint8 post-training
//     quantization.
//
// The conv/dense kernels are tiled, weight-stationary LUT GEMMs: each
// weight code reads one contiguous 256-entry row of the transposed
// multiplier table, output channels are register-blocked, the pixel
// dimension is tiled to L1-sized chunks, and all scratch comes from a
// pooled per-Network workspace arena (see workspace.go). The pre-PR
// naive kernel is retained behind WithReferenceKernel for bit-for-bit
// parity tests and the BenchmarkTiledVsSeed regression gate.
//
// Networks produced by Compile are immutable after SetMultiplier and
// safe for concurrent Logits calls.
package axnn

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"repro/internal/axmult"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// Options configures compilation.
type Options struct {
	// Bits is the activation/weight code width (the paper's Qlevel).
	// 0 means 8.
	Bits uint
	// ApproxDense routes dense-layer products through the approximate
	// multiplier too (used for the FFNN study and ablations).
	ApproxDense bool
	// NoZeroPointCorrection drops the exact zero-point cross terms in
	// the conv accumulation. Only for the ablation bench: it breaks the
	// affine semantics and shows why TFApprox-style engines must carry
	// the correction adders.
	NoZeroPointCorrection bool
	// Multiplier is the initial multiplier; nil means the exact design.
	Multiplier *axmult.LUT
	// Workers caps intra-batch sample parallelism: LogitsBatch splits
	// its samples across up to Workers goroutines, each owning a pooled
	// workspace. 0 or 1 keeps the serial behavior; rows are bit-for-bit
	// independent of the worker count. Useful for large-sample cells,
	// EOT averaging, and hardened-training crafting, where a single
	// call carries enough samples to fill a machine by itself.
	Workers int
}

// Network is a compiled quantized network.
type Network struct {
	Name        string
	layers      []qlayer
	mul         []uint16 // active LUT table, index a<<8|w
	mulT        []uint16 // transposed table, index w<<8|a (weight-major rows)
	mulID       string
	cfgKey      string // compile-time identity sans multiplier; see ModelKey
	inQP        quant.Params
	approxDense bool
	noZP        bool
	workers     int
	ref         bool // route conv/dense through the retained pre-PR kernel

	// pool hands out per-goroutine workspace arenas sized from hint.
	// It is a pointer so WithMultiplier/WithWorkers copies share it.
	pool *sync.Pool
	hint wsHint
}

// qtensor is a batch of n quantized activations sharing one code
// layout: shape is the PER-SAMPLE shape and data packs the n samples
// contiguously ([n * vol(shape)] codes).
type qtensor struct {
	n     int
	shape []int
	data  []uint8
	qp    quant.Params
}

// vol returns the per-sample element count.
func (t qtensor) vol() int { return len(t.data) / t.n }

// qlayer either produces another quantized batch or, for the final
// stage, float logits ([n * classes], row-major by sample). ws is the
// caller-owned scratch arena; it is nil only on the reference-kernel
// path, where layers allocate per call as the seed engine did.
type qlayer interface {
	forward(net *Network, ws *workspace, in qtensor) (qtensor, []float32)
}

// Compile quantizes a trained float network using the calibration set
// to derive per-layer activation ranges.
func Compile(n *nn.Network, calib []*tensor.T, opts Options) (*Network, error) {
	if len(calib) == 0 {
		return nil, fmt.Errorf("axnn: empty calibration set")
	}
	bits := opts.Bits
	// Per-layer output ranges over the calibration set. Activation
	// ranges use the *average* of per-sample extrema rather than the
	// global min/max: deep networks produce rare outlier activations
	// that would otherwise blow up the scale and starve the common
	// range of resolution (the standard moving-min/max calibration).
	mins := make([]float32, len(n.Layers))
	maxs := make([]float32, len(n.Layers))
	var inMin, inMax float32
	for _, x := range calib {
		lo, hi := quant.Range(x.Data)
		inMin += lo
		inMax += hi
		for i, o := range n.ForwardTrace(x) {
			l2, h2 := quant.Range(o.Data)
			mins[i] += l2
			maxs[i] += h2
		}
	}
	norm := float32(len(calib))
	inMin /= norm
	inMax /= norm
	for i := range mins {
		mins[i] /= norm
		maxs[i] /= norm
	}

	q := &Network{
		Name:        n.Name,
		cfgKey:      configKey(n, calib, opts),
		inQP:        quant.Calibrate(inMin, inMax, bits),
		approxDense: opts.ApproxDense,
		noZP:        opts.NoZeroPointCorrection,
		workers:     opts.Workers,
	}
	// Shape walk alongside layer compilation: the workspace hint
	// records the largest im2col, accumulator, and activation
	// footprints any layer needs for one sample, so pooled arenas are
	// right-sized from their first checkout.
	shape := append([]int(nil), calib[0].Shape...)
	q.hint.vol = volOf(shape)
	inQP := q.inQP
	for i, l := range n.Layers {
		outQP := quant.Calibrate(mins[i], maxs[i], bits)
		last := i == len(n.Layers)-1
		switch t := l.(type) {
		case *nn.Conv2D:
			q.layers = append(q.layers, newQConv(t, inQP, outQP, bits))
			h, w := shape[1], shape[2]
			outH := (h+2*t.Pad-t.K)/t.Stride + 1
			outW := (w+2*t.Pad-t.K)/t.Stride + 1
			p := outH * outW
			kk := t.InC * t.K * t.K
			q.hint.cols = max(q.hint.cols, kk*p)
			q.hint.p = max(q.hint.p, p)
			// The sparse skip-zero kernel accumulates whole pixel rows
			// plus an equally sized pixel-interleaved quad scratch.
			q.hint.acc = max(q.hint.acc, 2*convBlock*p)
			q.hint.kk = max(q.hint.kk, kk)
			shape = []int{t.OutC, outH, outW}
		case *nn.Dense:
			q.layers = append(q.layers, newQDense(t, inQP, outQP, bits, last, opts.ApproxDense))
			q.hint.dense = max(q.hint.dense, t.Out)
			q.hint.acc = max(q.hint.acc, t.Out)
			shape = []int{t.Out}
		case *nn.ReLU:
			q.layers = append(q.layers, &qReLU{outQP: outQP, lut: quant.RequantLUT(inQP, outQP, func(v float32) float32 {
				if v < 0 {
					return 0
				}
				return v
			})})
		case *nn.AvgPool2D:
			stride := poolStride(t)
			q.layers = append(q.layers, &qAvgPool{k: t.K, stride: stride, outQP: outQP, lut: quant.RequantLUT(inQP, outQP, nil)})
			shape = []int{shape[0], (shape[1]-t.K)/stride + 1, (shape[2]-t.K)/stride + 1}
		case *nn.Flatten:
			q.layers = append(q.layers, &qFlatten{})
			shape = []int{volOf(shape)}
			outQP = inQP // passthrough keeps params
		default:
			return nil, fmt.Errorf("axnn: unsupported layer type %T", l)
		}
		q.hint.vol = max(q.hint.vol, volOf(shape))
		if _, ok := l.(*nn.Flatten); ok {
			continue
		}
		inQP = outQP
	}
	q.pool = newWSPool(q.hint)
	if opts.Multiplier != nil {
		q.SetMultiplier(opts.Multiplier)
	} else {
		q.SetMultiplier(axmult.MustLookup("mul8u_1JFF"))
	}
	return q, nil
}

// configKey captures everything that determines a compiled network's
// behavior apart from the (swappable) multiplier: source weights,
// calibration content, code width, and the dense/zero-point switches.
// Two processes that Compile from the same inputs derive the same key,
// which is what lets a persistent prediction cache outlive the process
// (see ModelKey).
func configKey(n *nn.Network, calib []*tensor.T, opts Options) string {
	h := fnv.New64a()
	var w [4]byte
	for _, x := range calib {
		for _, d := range x.Shape {
			binary.LittleEndian.PutUint32(w[:], uint32(d))
			h.Write(w[:])
		}
		for _, v := range x.Data {
			binary.LittleEndian.PutUint32(w[:], math.Float32bits(v))
			h.Write(w[:])
		}
	}
	bits := opts.Bits
	if bits == 0 {
		bits = 8 // quant.Calibrate's default width
	}
	return fmt.Sprintf("axnn/v1|src=%s:%016x|calib=%d:%016x|bits=%d|ad=%t|nozp=%t",
		n.Name, n.WeightsFingerprint(), len(calib), h.Sum64(), bits, opts.ApproxDense, opts.NoZeroPointCorrection)
}

// ModelKey is the network's stable content identity: the compile-time
// configKey plus the active multiplier. It satisfies core's ModelKeyer,
// so prediction memos key on configuration rather than pointer
// identity — equal-config networks share entries in-process, and a
// persistent cache tier can serve predictions across restarts.
func (q *Network) ModelKey() string { return q.cfgKey + "|mul=" + q.mulID }

func volOf(shape []int) int {
	v := 1
	for _, d := range shape {
		v *= d
	}
	return v
}

func poolStride(p *nn.AvgPool2D) int {
	if p.Stride == 0 {
		return p.K
	}
	return p.Stride
}

// SetMultiplier installs the approximate multiplier used by conv (and
// optionally dense) layers. It returns the network for chaining.
func (q *Network) SetMultiplier(l *axmult.LUT) *Network {
	q.mul = l.Table()
	q.mulT = l.TableT()
	q.mulID = l.Name()
	return q
}

// WithMultiplier returns a shallow copy of the network running on the
// given multiplier. The copy shares the (immutable) quantized layers
// and the workspace pool, so building one AxDNN per multiplier from a
// single compilation is cheap — the harness uses this to fan a grid
// out across designs.
func (q *Network) WithMultiplier(l *axmult.LUT) *Network {
	c := *q
	c.mul = l.Table()
	c.mulT = l.TableT()
	c.mulID = l.Name()
	return &c
}

// WithWorkers returns a shallow copy whose LogitsBatch splits samples
// across up to n goroutines (see Options.Workers). The copy shares
// layers and the workspace pool.
func (q *Network) WithWorkers(n int) *Network {
	c := *q
	c.workers = n
	return &c
}

// WithReferenceKernel returns a shallow copy that routes conv and
// dense stages through the retained pre-tiling kernel (naive
// activation-major LUT indexing, per-call scratch). It exists for the
// bit-for-bit parity tests and the BenchmarkTiledVsSeed baseline;
// production paths never set it.
func (q *Network) WithReferenceKernel() *Network {
	c := *q
	c.ref = true
	return &c
}

// MultiplierName returns the active multiplier's name.
func (q *Network) MultiplierName() string { return q.mulID }

// Logits quantizes x and runs the integer pipeline, returning float
// logits. Safe for concurrent use.
func (q *Network) Logits(x *tensor.T) []float32 {
	return q.run(x.Data, x.Shape, 1)
}

// LogitsBatch runs the integer pipeline on a batch [N, sampleShape...]
// and returns the [N, classes] logits. The whole batch shares one
// quantization pass and pooled im2col/accumulator workspaces per conv
// stage, so the LUT work is amortised; row r is bit-for-bit identical
// to Logits on sample r, for any Workers setting. Safe for concurrent
// use.
func (q *Network) LogitsBatch(xs *tensor.T) *tensor.T {
	n := xs.Shape[0]
	out := q.run(xs.Data, xs.Shape[1:], n)
	return tensor.FromSlice(out, n, len(out)/n)
}

// run pushes n packed samples through the layers, splitting them
// across workers when intra-batch parallelism is enabled. Per-sample
// results are independent deterministic integer arithmetic, so the
// split is invisible in the output.
func (q *Network) run(data []float32, sampleShape []int, n int) []float32 {
	w := q.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		return q.runChunk(data, sampleShape, n)
	}
	vol := len(data) / n
	chunk := (n + w - 1) / w
	parts := make([][]float32, (n+chunk-1)/chunk)
	var wg sync.WaitGroup
	for ci, lo := 0, 0; lo < n; ci, lo = ci+1, lo+chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(ci, lo, hi int) {
			defer wg.Done()
			parts[ci] = q.runChunk(data[lo*vol:hi*vol], sampleShape, hi-lo)
		}(ci, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]float32, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// runChunk quantizes one contiguous chunk of samples and pushes it
// through the layer stack on a pooled workspace.
func (q *Network) runChunk(data []float32, sampleShape []int, n int) []float32 {
	in := qtensor{n: n, shape: sampleShape, qp: q.inQP}
	var ws *workspace
	if q.ref {
		// Reference path: allocate per call, exactly as the seed engine.
		in.data = q.inQP.QuantizeSlice(data)
	} else {
		ws = q.getWS()
		defer q.putWS(ws)
		in.data = ws.nextAct(len(data))
		q.inQP.QuantizeInto(in.data, data)
	}
	for _, l := range q.layers {
		var logits []float32
		in, logits = l.forward(q, ws, in)
		if logits != nil {
			return logits
		}
	}
	// Networks not ending in a Dense layer: dequantize the final codes.
	return in.qp.DequantizeSlice(in.data)
}

// Predict returns the argmax class for x.
func (q *Network) Predict(x *tensor.T) int {
	return tensor.ArgMax(q.Logits(x))
}

// outBuf returns the output activation buffer for a layer: the other
// ping-pong arena buffer normally, a fresh allocation on the
// reference-kernel path.
func outBuf(net *Network, ws *workspace, n int) []uint8 {
	if net.ref {
		return make([]uint8, n)
	}
	return ws.nextAct(n)
}

// qReLU and requantization stages are 256-entry code maps.
type qReLU struct {
	lut   []uint8
	outQP quant.Params
}

func (r *qReLU) forward(net *Network, ws *workspace, in qtensor) (qtensor, []float32) {
	// Elementwise code map: the batch is one flat pass.
	out := qtensor{n: in.n, shape: in.shape, data: outBuf(net, ws, len(in.data)), qp: r.outQP}
	lut := (*[256]uint8)(r.lut)
	for i, c := range in.data {
		out.data[i] = lut[c]
	}
	return out, nil
}

type qFlatten struct{}

func (f *qFlatten) forward(_ *Network, _ *workspace, in qtensor) (qtensor, []float32) {
	return qtensor{n: in.n, shape: []int{in.vol()}, data: in.data, qp: in.qp}, nil
}

// qAvgPool averages codes inside each window (affine codes average like
// their real values) and requantizes via a 256-entry map.
type qAvgPool struct {
	k, stride int
	lut       []uint8
	outQP     quant.Params
}

func (p *qAvgPool) forward(net *Network, ws *workspace, in qtensor) (qtensor, []float32) {
	c, h, w := in.shape[0], in.shape[1], in.shape[2]
	outH := (h-p.k)/p.stride + 1
	outW := (w-p.k)/p.stride + 1
	out := qtensor{n: in.n, shape: []int{c, outH, outW}, data: outBuf(net, ws, in.n*c*outH*outW), qp: p.outQP}
	kk := p.k * p.k
	half := kk / 2
	for s := 0; s < in.n; s++ {
		sIn := in.data[s*c*h*w:]
		sOut := out.data[s*c*outH*outW:]
		for ci := 0; ci < c; ci++ {
			src := sIn[ci*h*w:]
			dst := sOut[ci*outH*outW:]
			if p.k == 2 && p.stride == 2 && !net.ref {
				// The ubiquitous 2x2/2 window, unrolled: row pairs are
				// walked once with no inner window loops. Arithmetic is
				// identical to the general path below. The reference
				// engine takes the general path so the seed side of
				// BenchmarkTiledVsSeed keeps the pre-PR layer cost.
				for oi := 0; oi < outH; oi++ {
					r0 := src[(2*oi)*w : (2*oi)*w+w]
					r1 := src[(2*oi+1)*w : (2*oi+1)*w+w]
					d := dst[oi*outW : oi*outW+outW]
					for oj := range d {
						sum := int(r0[2*oj]) + int(r0[2*oj+1]) + int(r1[2*oj]) + int(r1[2*oj+1])
						d[oj] = p.lut[(sum+2)/4]
					}
				}
				continue
			}
			for oi := 0; oi < outH; oi++ {
				for oj := 0; oj < outW; oj++ {
					sum := 0
					for ki := 0; ki < p.k; ki++ {
						row := (oi*p.stride + ki) * w
						for kj := 0; kj < p.k; kj++ {
							sum += int(src[row+oj*p.stride+kj])
						}
					}
					dst[oi*outW+oj] = p.lut[(sum+half)/kk]
				}
			}
		}
	}
	return out, nil
}
