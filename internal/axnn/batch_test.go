package axnn

import (
	"sync"
	"testing"

	"repro/internal/axmult"
	"repro/internal/tensor"
)

// TestLogitsBatchMatchesScalar is the golden batched/scalar parity
// test for the integer engine: LogitsBatch row r must equal Logits on
// sample r bit for bit, for both the exact and an approximate
// multiplier (the whole pipeline is per-sample deterministic integer
// arithmetic, so any divergence is a batching bug).
func TestLogitsBatchMatchesScalar(t *testing.T) {
	net := tinyNet(30)
	q, err := Compile(net, calibSet(32, 31), Options{})
	if err != nil {
		t.Fatal(err)
	}
	xs := calibSet(9, 32)
	batch := tensor.Stack(xs)
	for _, eng := range []*Network{q, q.WithMultiplier(axmult.MustLookup("mul8u_JV3"))} {
		out := eng.LogitsBatch(batch)
		if out.Shape[0] != 9 {
			t.Fatalf("LogitsBatch shape %v", out.Shape)
		}
		for r, x := range xs {
			want := eng.Logits(x)
			got := out.Row(r).Data
			if len(got) != len(want) {
				t.Fatalf("row %d has %d logits, want %d", r, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("[%s] sample %d logit %d: batch %v != scalar %v",
						eng.MultiplierName(), r, j, got[j], want[j])
				}
			}
		}
	}
}

// TestLogitsBatchApproxDense covers the conv-free FFNN path through
// the batched dense stage.
func TestLogitsBatchApproxDense(t *testing.T) {
	net := tinyNet(33)
	q, err := Compile(net, calibSet(16, 34), Options{ApproxDense: true})
	if err != nil {
		t.Fatal(err)
	}
	q = q.WithMultiplier(axmult.MustLookup("mul8u_FTA"))
	xs := calibSet(4, 35)
	out := q.LogitsBatch(tensor.Stack(xs))
	for r, x := range xs {
		want := q.Logits(x)
		got := out.Row(r).Data
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("approx-dense sample %d diverged", r)
			}
		}
	}
}

// TestConcurrentLogitsBatch: batched inference on a shared engine from
// many goroutines must stay deterministic.
func TestConcurrentLogitsBatch(t *testing.T) {
	net := tinyNet(36)
	q, err := Compile(net, calibSet(16, 37), Options{})
	if err != nil {
		t.Fatal(err)
	}
	batch := tensor.Stack(calibSet(6, 38))
	want := q.LogitsBatch(batch)
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := q.LogitsBatch(batch)
			for j := range want.Data {
				if got.Data[j] != want.Data[j] {
					t.Error("concurrent LogitsBatch diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
}
