package axmult

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/adder"
)

// The registry binds EvoApprox8b-style names (the ones the paper's
// figures use) to configured behavioural designs. The mapping is a
// documented substitution: see README.md. Error metrics for every entry
// are reported by cmd/axmultinfo and pinned by the package tests.
var (
	regMu   sync.Mutex
	regs    = map[string]func() Multiplier{}
	lutOnce = map[string]*LUT{}
)

// Register adds a named multiplier constructor. It panics on duplicate
// names; intended for package init and tests.
func Register(name string, ctor func() Multiplier) {
	regMu.Lock()
	defer regMu.Unlock()
	key := canon(name)
	if _, dup := regs[key]; dup {
		panic("axmult: duplicate registration of " + name)
	}
	regs[key] = ctor
}

func canon(name string) string {
	n := strings.ToLower(strings.TrimSpace(name))
	n = strings.TrimPrefix(n, "mul8u_")
	return n
}

// New instantiates the behavioural circuit registered under name.
// Names are case-insensitive and the "mul8u_" prefix is optional.
func New(name string) (Multiplier, error) {
	regMu.Lock()
	ctor, ok := regs[canon(name)]
	regMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("axmult: unknown multiplier %q", name)
	}
	return ctor(), nil
}

// Lookup returns the compiled LUT for name, building and caching it on
// first use. Safe for concurrent use.
func Lookup(name string) (*LUT, error) {
	key := canon(name)
	regMu.Lock()
	if l, ok := lutOnce[key]; ok {
		regMu.Unlock()
		return l, nil
	}
	ctor, ok := regs[key]
	regMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("axmult: unknown multiplier %q", name)
	}
	l := Compile(ctor())
	regMu.Lock()
	lutOnce[key] = l
	regMu.Unlock()
	return l, nil
}

// MustLookup is Lookup that panics on unknown names; for examples,
// benches, and table-driven experiment code where the name set is static.
func MustLookup(name string) *LUT {
	l, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return l
}

// Names returns all registered multiplier names, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(regs))
	for k := range regs {
		out = append(out, "mul8u_"+strings.ToUpper(k))
	}
	sort.Strings(out)
	return out
}

// MNISTSet is the multiplier set of the paper's Figs. 4-6 (LeNet-5 on
// MNIST), in the paper's M1..M9 order. M1 is the accurate design.
func MNISTSet() []string {
	return []string{
		"mul8u_1JFF", "mul8u_96D", "mul8u_12N4", "mul8u_17KS", "mul8u_1AGV",
		"mul8u_FTA", "mul8u_JQQ", "mul8u_L40", "mul8u_JV3",
	}
}

// CIFARSet is the multiplier set of the paper's Fig. 7 (AlexNet on
// CIFAR-10), in the paper's M1..M8 order. M1 is the accurate design.
func CIFARSet() []string {
	return []string{
		"mul8u_1JFF", "mul8u_2P7", "mul8u_KEM", "mul8u_150Q",
		"mul8u_14VP", "mul8u_QJD", "mul8u_1446", "mul8u_GS2",
	}
}

func init() {
	// --- MNIST set (Figs. 4-6): M1..M9 ---

	// M1: the accurate design, assembled gate-by-gate from exact full
	// adders (verified exact by tests).
	Register("mul8u_1JFF", func() Multiplier {
		return ArrayMult{ID: "mul8u_1JFF", Cell: adder.Exact}
	})
	// M2: fixed-width truncation of 3 columns with compensation; tiny,
	// near-zero-mean error.
	Register("mul8u_96D", func() Multiplier {
		return TruncMult{ID: "mul8u_96D", Cut: 3, Compensate: true}
	})
	// M3: lower-part-OR cross term, K=3; tiny error.
	Register("mul8u_12N4", func() Multiplier {
		return LowOR{ID: "mul8u_12N4", K: 3}
	})
	// M4: six-column truncation with static compensation — the
	// "moderate error, high resilience" rung of the ladder (clean
	// accuracy one to two points under the accurate design, like 17KS).
	Register("mul8u_17KS", func() Multiplier {
		return TruncMult{ID: "mul8u_17KS", Cut: 6, Compensate: true}
	})
	// M5: perforation of partial-product row 0 with compensation;
	// moderate variance, near-zero bias.
	Register("mul8u_1AGV", func() Multiplier {
		return Perforated{ID: "mul8u_1AGV", Rows: 0b0000_0001, Compensate: true}
	})
	// M6: truncated logarithmic multiplier (5 mantissa bits) — the
	// low-90s clean-accuracy rung the paper reports for FTA.
	Register("mul8u_FTA", func() Multiplier {
		return MitchellTrunc{ID: "mul8u_FTA", MBits: 5}
	})
	// M7: DRUM with 4-bit mantissas; large but unbiased error
	// (the paper quotes MAE 1.12% yet high clean accuracy for JQQ).
	Register("mul8u_JQQ", func() Multiplier {
		return DRUM{ID: "mul8u_JQQ", K: 4}
	})
	// M8: perforation of partial-product row 1 (compensated) — the
	// highest-variance design of the set and, as in the paper, the
	// lowest clean accuracy (L40).
	Register("mul8u_L40", func() Multiplier {
		return Perforated{ID: "mul8u_L40", Rows: 0b0000_0010, Compensate: true}
	})
	// M9: Mitchell logarithmic; always-undershooting, mid-code-peaked
	// error (drives the CR-attack collapse of Fig. 6a).
	Register("mul8u_JV3", func() Multiplier {
		return Mitchell{ID: "mul8u_JV3"}
	})

	// Fig. 1 motivational multiplier: array with approximate mirror
	// adders in the low columns (the Guesmi et al. construction).
	Register("mul8u_L1G", func() Multiplier {
		return ArrayMult{ID: "mul8u_L1G", Cell: adder.AMA1, ApproxCols: 5}
	})

	// --- CIFAR set (Fig. 7): M2..M8 (M1 = 1JFF above) ---
	// All chosen for high error resilience, as the paper requires
	// (designs below 75% CIFAR accuracy were discarded); QJD is the
	// set's weakest, as in the paper's Fig. 7 baseline row.
	Register("mul8u_2P7", func() Multiplier {
		return DRUM{ID: "mul8u_2P7", K: 6}
	})
	Register("mul8u_KEM", func() Multiplier {
		return LowOR{ID: "mul8u_KEM", K: 4}
	})
	Register("mul8u_150Q", func() Multiplier {
		return Compressor42{ID: "mul8u_150Q", ApproxCols: 12}
	})
	Register("mul8u_14VP", func() Multiplier {
		return Compressor42{ID: "mul8u_14VP", ApproxCols: 6}
	})
	Register("mul8u_QJD", func() Multiplier {
		return Compressor42{ID: "mul8u_QJD", ApproxCols: 16}
	})
	Register("mul8u_1446", func() Multiplier {
		return DRUM{ID: "mul8u_1446", K: 5}
	})
	Register("mul8u_GS2", func() Multiplier {
		return KulkarniLow{ID: "mul8u_GS2"}
	})

	// Extra registered designs available to ablations and tests.
	Register("mul8u_KUL8", func() Multiplier {
		return Kulkarni{ID: "mul8u_KUL8"}
	})
	Register("mul8u_AMA5C6", func() Multiplier {
		return ArrayMult{ID: "mul8u_AMA5C6", Cell: adder.AMA5, ApproxCols: 6}
	})

	// Generic design-space sweep, named by family and parameter. These
	// power the ablation benches and let users explore the
	// accuracy/error trade-off beyond the paper's sets.
	for k := uint(2); k <= 7; k++ {
		k := k
		Register(fmt.Sprintf("lowor%d", k), func() Multiplier {
			return LowOR{ID: fmt.Sprintf("lowor%d", k), K: k}
		})
		Register(fmt.Sprintf("drum%d", k), func() Multiplier {
			return DRUM{ID: fmt.Sprintf("drum%d", k), K: k}
		})
		Register(fmt.Sprintf("mt%d", k), func() Multiplier {
			return MitchellTrunc{ID: fmt.Sprintf("mt%d", k), MBits: k}
		})
		Register(fmt.Sprintf("trunc%dc", k), func() Multiplier {
			return TruncMult{ID: fmt.Sprintf("trunc%dc", k), Cut: k, Compensate: true}
		})
		Register(fmt.Sprintf("trunc%d", k), func() Multiplier {
			return TruncMult{ID: fmt.Sprintf("trunc%d", k), Cut: k}
		})
	}
	for _, rows := range []uint8{0b1, 0b10, 0b100, 0b11} {
		rows := rows
		Register(fmt.Sprintf("perf%dc", rows), func() Multiplier {
			return Perforated{ID: fmt.Sprintf("perf%dc", rows), Rows: rows, Compensate: true}
		})
	}
	for _, cols := range []uint{6, 9, 12, 16} {
		cols := cols
		Register(fmt.Sprintf("cmp%d", cols), func() Multiplier {
			return Compressor42{ID: fmt.Sprintf("cmp%d", cols), ApproxCols: cols}
		})
	}
	for _, bound := range []uint8{8, 16, 24, 32, 48} {
		for _, mb := range []uint{2, 3, 4} {
			bound, mb := bound, mb
			name := fmt.Sprintf("seg%dm%d", bound, mb)
			Register(name, func() Multiplier {
				return SegMult{ID: name, Boundary: bound, MBits: mb}
			})
		}
	}
	for _, band := range []struct{ lo, hi, step uint8 }{
		{16, 48, 32}, {16, 48, 16}, {16, 64, 24}, {24, 56, 32}, {8, 40, 32}, {16, 40, 24},
		{16, 32, 16}, {16, 36, 20}, {20, 40, 20}, {12, 32, 20},
	} {
		band := band
		name := fmt.Sprintf("band%d_%ds%d", band.lo, band.hi, band.step)
		Register(name, func() Multiplier {
			return BandMult{ID: name, Lo: band.lo, Hi: band.hi, Step: band.step}
		})
		aname := name + "a"
		Register(aname, func() Multiplier {
			return BandMult{ID: aname, Lo: band.lo, Hi: band.hi, Step: band.step, ActOnly: true}
		})
	}
	for _, band := range []struct{ lo, hi, step uint8 }{
		{32, 64, 16}, {32, 96, 32}, {24, 72, 24}, {32, 64, 32}, {24, 88, 32}, {16, 80, 32},
	} {
		band := band
		name := fmt.Sprintf("rband%d_%ds%d", band.lo, band.hi, band.step)
		Register(name, func() Multiplier {
			return BandMult{ID: name, Lo: band.lo, Hi: band.hi, Step: band.step, ActOnly: true, Round: true}
		})
	}
	for _, band := range []struct{ lo, hi uint8 }{
		{24, 88}, {32, 96}, {16, 64}, {24, 64}, {32, 128},
	} {
		band := band
		name := fmt.Sprintf("oband%d_%d", band.lo, band.hi)
		Register(name, func() Multiplier {
			return BandMult{ID: name, Lo: band.lo, Hi: band.hi, ActOnly: true, Overshoot: true}
		})
	}
	for _, cells := range []struct {
		name string
		cell adder.Cell
	}{{"ama1", adder.AMA1}, {"ama2", adder.AMA2}, {"ama4", adder.AMA4}} {
		cells := cells
		for _, cols := range []uint{4, 6, 8} {
			cols := cols
			name := fmt.Sprintf("%sc%d", cells.name, cols)
			Register(name, func() Multiplier {
				return ArrayMult{ID: name, Cell: cells.cell, ApproxCols: cols}
			})
		}
	}
}
