package axmult

import "sync"

// LUT is a multiplier compiled to an exhaustive 256x256 lookup table —
// the representation TFApprox-style accelerator simulators consume.
// Index layout: table[a<<8 | b].
type LUT struct {
	id    string
	table []uint16

	// tOnce guards the lazily built transposed table (index b<<8 | a).
	// Weight-stationary GEMM kernels read the transposed layout: with
	// the weight code fixed, the 256 possible activation codes sit in
	// one contiguous 512-byte row instead of 512 bytes apart.
	tOnce  sync.Once
	tableT []uint16
}

// Compile evaluates m over the full 8x8 input space.
func Compile(m Multiplier) *LUT {
	t := make([]uint16, 1<<16)
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			t[a<<8|b] = m.Mul(uint8(a), uint8(b))
		}
	}
	return &LUT{id: m.Name(), table: t}
}

// Name implements Multiplier.
func (l *LUT) Name() string { return l.id }

// Mul implements Multiplier.
func (l *LUT) Mul(a, b uint8) uint16 {
	return l.table[uint32(a)<<8|uint32(b)]
}

// Table exposes the raw table for hot loops (length 65536, index
// a<<8|b). Callers must not modify it.
func (l *LUT) Table() []uint16 { return l.table }

// TableT exposes the transposed table (length 65536, index b<<8|a),
// built on first use and cached on the LUT — so registry users
// (Lookup caches LUT instances process-wide) pay the 64 KB transpose
// once per design. TableT()[b<<8|a] == Table()[a<<8|b] exactly.
// Callers must not modify it.
func (l *LUT) TableT() []uint16 {
	l.tOnce.Do(func() {
		t := make([]uint16, 1<<16)
		for a := 0; a < 256; a++ {
			row := l.table[a<<8 : a<<8+256]
			for b, v := range row {
				t[b<<8|a] = v
			}
		}
		l.tableT = t
	})
	return l.tableT
}
