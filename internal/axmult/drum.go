package axmult

import "repro/internal/bitops"

// DRUM models the Dynamic Range Unbiased Multiplier (Hashemi et al.,
// ICCAD 2015): each operand is reduced to its K most significant bits
// starting at the leading one, with the lowest kept bit forced to 1 to
// unbias the truncation, then the two short mantissas are multiplied
// exactly and shifted back. The result has near-zero mean error and a
// relative error bounded by the mantissa width — large MAE with high
// clean accuracy, the "JQQ-like" profile in the paper's multiplier set.
type DRUM struct {
	ID string
	K  uint
}

// Name implements Multiplier.
func (m DRUM) Name() string { return m.ID }

// Mul implements Multiplier.
func (m DRUM) Mul(a, b uint8) uint16 {
	k := m.K
	if k < 2 {
		k = 2
	}
	ma, sa := drumTrunc(uint32(a), k)
	mb, sb := drumTrunc(uint32(b), k)
	p := (ma * mb) << (sa + sb)
	if p > 0xFFFF {
		return 0xFFFF
	}
	return uint16(p)
}

// drumTrunc reduces x to a k-bit mantissa with the LSB forced to one,
// returning the mantissa and the restoring shift.
func drumTrunc(x uint32, k uint) (mant uint32, shift uint) {
	lo := bitops.LeadingOne(x)
	if lo < 0 {
		return 0, 0
	}
	if uint(lo) < k {
		return x, 0 // short operand: exact
	}
	shift = uint(lo) + 1 - k
	mant = (x >> shift) | 1 // force LSB to 1: unbiased truncation
	return mant, shift
}
