package axmult

import "repro/internal/bitops"

// SegMult is a static-segment multiplier: operands below Boundary are
// multiplied exactly (the low segment covers them), while operands at
// or above it are floored to an MBits-wide mantissa anchored at the
// leading one before multiplying — a coarse, always-undershooting
// approximation of the high segment.
//
// The design's signature is a *code-region cliff*: inputs whose codes
// sit below the boundary see zero error, and a global shift of the
// input distribution across the boundary (exactly what a contrast
// reduction attack does to the many background pixels of an image)
// unmasks the full truncation error at once. This models the
// data-dependent masking/unmasking of approximation errors the paper
// identifies as the cause of the Fig. 6a collapse.
type SegMult struct {
	ID       string
	Boundary uint8
	MBits    uint
}

// Name implements Multiplier.
func (m SegMult) Name() string { return m.ID }

// Mul implements Multiplier.
func (m SegMult) Mul(a, b uint8) uint16 {
	return uint16(m.seg(a) * m.seg(b))
}

// seg returns the operand itself in the exact region, or its floored
// MBits-bit mantissa (shifted back into place) above the boundary.
func (m SegMult) seg(x uint8) uint32 {
	v := uint32(x)
	if x < m.Boundary {
		return v
	}
	lo := uint(bitops.LeadingOne(v))
	mb := m.MBits
	if mb < 1 {
		mb = 1
	}
	if lo+1 <= mb {
		return v
	}
	shift := lo + 1 - mb
	return v >> shift << shift
}
