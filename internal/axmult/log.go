package axmult

import "repro/internal/bitops"

// Mitchell is the classic Mitchell logarithmic multiplier: both operands
// are converted to approximate base-2 logarithms (characteristic = index
// of the leading one, mantissa = remaining bits read as a linear
// fraction), the logs are added, and the antilog is approximated
// piecewise-linearly.
//
// Its error is always non-positive (the approximate product never
// exceeds the exact one) and peaks mid-way between powers of two — the
// input-dependent "mid-code" error profile that makes contrast-reduction
// attacks interesting for AxDNNs: pulling pixels toward mid-range codes
// pushes operands into the multiplier's worst region.
type Mitchell struct {
	ID string
}

// Name implements Multiplier.
func (m Mitchell) Name() string { return m.ID }

// Mul implements Multiplier.
func (m Mitchell) Mul(a, b uint8) uint16 {
	return mitchell(a, b, 16)
}

// mitchell computes the Mitchell product keeping mbits fractional bits
// of each operand's log mantissa (16 = full precision for 8-bit
// operands).
func mitchell(a, b uint8, mbits uint) uint16 {
	if a == 0 || b == 0 {
		return 0
	}
	k1 := uint(bitops.LeadingOne(uint32(a)))
	k2 := uint(bitops.LeadingOne(uint32(b)))
	// Mantissas as Q16 fractions in [0, 1).
	f1 := (uint32(a) - 1<<k1) << 16 >> k1
	f2 := (uint32(b) - 1<<k2) << 16 >> k2
	if mbits < 16 {
		drop := 16 - mbits
		f1 = f1 >> drop << drop
		f2 = f2 >> drop << drop
	}
	l := k1 + k2
	s := f1 + f2
	var p uint32
	if s < 1<<16 {
		// 2^l * (1 + s)
		p = ((1 << 16) + s) << l >> 16
	} else {
		// 2^(l+1) * s  (s in [1,2), interpreted as 1 + (s-1))
		p = s << (l + 1) >> 16
	}
	if p > 0xFFFF {
		return 0xFFFF
	}
	return uint16(p)
}

// MitchellTrunc is a Mitchell multiplier whose log mantissas are
// truncated to MBits fractional bits before the antilog stage — the
// cheap "truncated logarithmic multiplier" variant. Smaller MBits means
// larger, still always-non-positive error.
type MitchellTrunc struct {
	ID    string
	MBits uint
}

// Name implements Multiplier.
func (m MitchellTrunc) Name() string { return m.ID }

// Mul implements Multiplier.
func (m MitchellTrunc) Mul(a, b uint8) uint16 {
	return mitchell(a, b, m.MBits)
}
