package axmult

// Compressor42 models a Wallace-style multiplier whose partial-product
// reduction uses approximate 4:2 compressors in the ApproxCols
// least-significant columns. The approximate compressor maps four ones
// to the output pair (sum=1, carry=1) — value 3 instead of 4 — losing
// one unit (2^c) per saturated group, the behaviour of the classic
// transistor-pruned 4:2 compressor designs (Momeni et al.).
type Compressor42 struct {
	ID         string
	ApproxCols uint
	// Offset is a constant compensation added to every product,
	// counteracting the compressor's systematic undershoot.
	Offset uint16
}

// Name implements Multiplier.
func (m Compressor42) Name() string { return m.ID }

// Mul implements Multiplier.
func (m Compressor42) Mul(a, b uint8) uint16 {
	cols := partialProducts(a, b, nil)
	var acc uint32
	carry := int32(0)
	for c := 0; c < 16; c++ {
		n := cols[c] + carry
		carry = 0
		if uint(c) < m.ApproxCols {
			// Each approximate 4:2 compression of four ones yields a sum
			// bit in this column and a carry in the next: value 3, not 4.
			for n >= 4 {
				n -= 4
				n++
				carry++
			}
		}
		acc += uint32(n) << uint(c)
	}
	acc += uint32(carry) << 16
	acc += uint32(m.Offset)
	if acc > 0xFFFF {
		return 0xFFFF
	}
	return uint16(acc)
}
