package axmult

// kulkarni2 is the underdesigned 2x2 multiplier of Kulkarni et al.
// (VLSI Design 2011): exact for all inputs except 3*3, which yields 7
// (0b0111) instead of 9 (0b1001), saving the fourth output bit.
func kulkarni2(a, b uint32) uint32 {
	if a == 3 && b == 3 {
		return 7
	}
	return a * b
}

// kulkarni4 builds a 4x4 multiplier from four approximate 2x2 blocks
// with exact recombination adders.
func kulkarni4(a, b uint32) uint32 {
	al, ah := a&3, a>>2
	bl, bh := b&3, b>>2
	return kulkarni2(ah, bh)<<4 + (kulkarni2(ah, bl)+kulkarni2(al, bh))<<2 + kulkarni2(al, bl)
}

// Kulkarni is the fully recursive 8x8 underdesigned multiplier: every
// 2x2 block is approximate.
type Kulkarni struct {
	ID string
}

// Name implements Multiplier.
func (m Kulkarni) Name() string { return m.ID }

// Mul implements Multiplier.
func (m Kulkarni) Mul(a, b uint8) uint16 {
	al, ah := uint32(a)&15, uint32(a)>>4
	bl, bh := uint32(b)&15, uint32(b)>>4
	p := kulkarni4(ah, bh)<<8 + (kulkarni4(ah, bl)+kulkarni4(al, bh))<<4 + kulkarni4(al, bl)
	if p > 0xFFFF {
		return 0xFFFF
	}
	return uint16(p)
}

// KulkarniLow applies the underdesigned 2x2 blocks only to the low
// nibble cross term (al*bl); the three high-significance block products
// are exact. A mild, low-bias design.
type KulkarniLow struct {
	ID string
}

// Name implements Multiplier.
func (m KulkarniLow) Name() string { return m.ID }

// Mul implements Multiplier.
func (m KulkarniLow) Mul(a, b uint8) uint16 {
	al, ah := uint32(a)&15, uint32(a)>>4
	bl, bh := uint32(b)&15, uint32(b)>>4
	p := (ah*bh)<<8 + (ah*bl+al*bh)<<4 + kulkarni4(al, bl)
	if p > 0xFFFF {
		return 0xFFFF
	}
	return uint16(p)
}
