package axmult

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/adder"
)

func TestExactMultiplier(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got := Exact.Mul(uint8(a), uint8(b)); got != uint16(a*b) {
				t.Fatalf("Exact.Mul(%d,%d) = %d", a, b, got)
			}
		}
	}
}

// TestArrayMultExact verifies the gate-level array multiplier built
// from exact full adders reproduces a*b over the whole input space —
// the structural sanity check for the carry-save reduction.
func TestArrayMultExact(t *testing.T) {
	m := ArrayMult{ID: "exact-array", Cell: adder.Exact}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got := m.Mul(uint8(a), uint8(b)); got != uint16(a*b) {
				t.Fatalf("ArrayMult(%d,%d) = %d, want %d", a, b, got, a*b)
			}
		}
	}
}

func TestArrayMultApproxColsZeroIsExact(t *testing.T) {
	m := ArrayMult{ID: "x", Cell: adder.AMA5, ApproxCols: 0}
	f := func(a, b uint8) bool { return m.Mul(a, b) == uint16(a)*uint16(b) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTruncMultNeverOvershootsWithoutComp(t *testing.T) {
	m := TruncMult{ID: "t", Cut: 6}
	f := func(a, b uint8) bool { return m.Mul(a, b) <= uint16(a)*uint16(b) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTruncMultErrorBound(t *testing.T) {
	// Truncating columns < k can drop at most sum over dropped columns
	// of count(c)*2^c.
	cut := uint(6)
	var bound int64
	for c := uint(0); c < cut; c++ {
		n := int64(c) + 1
		bound += n << c
	}
	m := TruncMult{ID: "t", Cut: cut}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			err := int64(a*b) - int64(m.Mul(uint8(a), uint8(b)))
			if err < 0 || err > bound {
				t.Fatalf("trunc error %d outside [0,%d] at %d*%d", err, bound, a, b)
			}
		}
	}
}

func TestBrokenArraySubsetOfTrunc(t *testing.T) {
	// A broken array with HRows=0 equals pure column truncation.
	ba := BrokenArray{ID: "ba", VBreak: 5}
	tr := TruncMult{ID: "t", Cut: 5}
	f := func(a, b uint8) bool { return ba.Mul(a, b) == tr.Mul(a, b) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPerforatedDropsRows(t *testing.T) {
	m := Perforated{ID: "p", Rows: 0b10}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			want := uint16((a &^ 2) * b)
			if got := m.Mul(uint8(a), uint8(b)); got != want {
				t.Fatalf("Perforated(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestLowORExactOnDisjointLowBits(t *testing.T) {
	// When al*bl == al|bl (e.g. one of them is zero) LowOR is exact.
	m := LowOR{ID: "l", K: 3}
	for a := 0; a < 256; a += 8 { // low bits of a are zero
		for b := 0; b < 256; b++ {
			al, bl := uint32(a)&7, uint32(b)&7
			if al*bl != (al | bl) {
				continue
			}
			if got := m.Mul(uint8(a), uint8(b)); got != uint16(a*b) {
				t.Fatalf("LowOR(%d,%d) = %d, want %d", a, b, got, a*b)
			}
		}
	}
}

func TestMitchellProperties(t *testing.T) {
	m := Mitchell{ID: "mitchell"}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			got := int64(m.Mul(uint8(a), uint8(b)))
			exact := int64(a * b)
			if got > exact {
				t.Fatalf("Mitchell overshoots: %d*%d = %d > %d", a, b, got, exact)
			}
			// Mitchell's relative error is bounded by ~11.1%.
			if exact > 0 && float64(exact-got)/float64(exact) > 0.12 {
				t.Fatalf("Mitchell relative error > 12%% at %d*%d: got %d", a, b, got)
			}
		}
	}
}

func TestMitchellExactOnPowersOfTwo(t *testing.T) {
	m := Mitchell{ID: "mitchell"}
	for i := uint(0); i < 8; i++ {
		for j := uint(0); j < 8; j++ {
			a, b := uint8(1<<i), uint8(1<<j)
			if got := m.Mul(a, b); got != uint16(a)*uint16(b) {
				t.Errorf("Mitchell(%d,%d) = %d, want exact", a, b, got)
			}
		}
	}
}

func TestDRUMShortOperandsExact(t *testing.T) {
	// Operands that fit in K bits are untouched.
	m := DRUM{ID: "d", K: 4}
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			if got := m.Mul(uint8(a), uint8(b)); got != uint16(a*b) {
				t.Fatalf("DRUM small %d*%d = %d", a, b, got)
			}
		}
	}
}

func TestDRUMRelativeErrorBound(t *testing.T) {
	m := DRUM{ID: "d", K: 4}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			exact := float64(a * b)
			if exact == 0 {
				continue
			}
			got := float64(m.Mul(uint8(a), uint8(b)))
			rel := (got - exact) / exact
			// Per-operand error is bounded by 1/8 for K=4 (the forced
			// LSB can overshoot), so the product error is within
			// (1+1/8)^2 - 1 ~ 26.6%.
			if rel > 0.27 || rel < -0.27 {
				t.Fatalf("DRUM4 relative error %.3f at %d*%d", rel, a, b)
			}
		}
	}
}

func TestKulkarniOnlyDeviatesOn3x3Blocks(t *testing.T) {
	// The 2x2 block is exact unless both operands are 3.
	for a := uint32(0); a < 4; a++ {
		for b := uint32(0); b < 4; b++ {
			got := kulkarni2(a, b)
			if a == 3 && b == 3 {
				if got != 7 {
					t.Fatalf("kulkarni2(3,3) = %d, want 7", got)
				}
			} else if got != a*b {
				t.Fatalf("kulkarni2(%d,%d) = %d", a, b, got)
			}
		}
	}
}

func TestKulkarniNeverOvershoots(t *testing.T) {
	m := Kulkarni{ID: "k"}
	f := func(a, b uint8) bool { return m.Mul(a, b) <= uint16(a)*uint16(b) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompressorExactWhenNoApproxCols(t *testing.T) {
	m := Compressor42{ID: "c", ApproxCols: 0}
	f := func(a, b uint8) bool { return m.Mul(a, b) == uint16(a)*uint16(b) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompressorUndershootBound(t *testing.T) {
	// Each approximate compression loses exactly 2^c; the cumulative
	// loss over an 8x8 reduction stays under 2^13.
	m := Compressor42{ID: "c", ApproxCols: 16}
	var worst int64
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			got := int64(m.Mul(uint8(a), uint8(b)))
			exact := int64(a * b)
			if got > exact {
				t.Fatalf("compressor overshoots at %d*%d", a, b)
			}
			if exact-got > worst {
				worst = exact - got
			}
		}
	}
	// Compressions cascade (a lost carry can trigger further lossy
	// groups), so the bound is loose: 2^14 covers the measured worst
	// case (10584) with margin while still catching structural breaks.
	if worst > 16384 {
		t.Fatalf("compressor worst-case loss %d exceeds 2^14", worst)
	}
	if worst == 0 {
		t.Fatal("fully approximate compressor should lose something somewhere")
	}
}

func TestSegMultExactBelowBoundary(t *testing.T) {
	m := SegMult{ID: "s", Boundary: 32, MBits: 3}
	for a := 0; a < 32; a++ {
		for b := 0; b < 32; b++ {
			if got := m.Mul(uint8(a), uint8(b)); got != uint16(a*b) {
				t.Fatalf("SegMult below boundary %d*%d = %d", a, b, got)
			}
		}
	}
}

func TestBandMultExactOutsideBand(t *testing.T) {
	m := BandMult{ID: "b", Lo: 16, Hi: 48, Step: 16}
	for a := 0; a < 256; a++ {
		if a >= 16 && a < 48 {
			continue
		}
		for b := 0; b < 256; b++ {
			if b >= 16 && b < 48 {
				continue
			}
			if got := m.Mul(uint8(a), uint8(b)); got != uint16(a*b) {
				t.Fatalf("BandMult outside band %d*%d = %d", a, b, got)
			}
		}
	}
}

func TestBandMultActOnlyKeepsWeightExact(t *testing.T) {
	m := BandMult{ID: "b", Lo: 16, Hi: 48, Step: 16, ActOnly: true}
	// Second operand in band must not be bucketed.
	if got := m.Mul(0, 20); got != 0 {
		t.Fatalf("BandMult(0,20) = %d", got)
	}
	if got := m.Mul(2, 20); got != 40 {
		t.Fatalf("BandMult(2,20) = %d, want 40", got)
	}
}

func TestLUTMatchesCircuit(t *testing.T) {
	for _, name := range []string{"mul8u_1JFF", "mul8u_17KS", "mul8u_JV3", "mul8u_JQQ", "mul8u_L40"} {
		m, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		lut := Compile(m)
		for a := 0; a < 256; a++ {
			for b := 0; b < 256; b++ {
				if lut.Mul(uint8(a), uint8(b)) != m.Mul(uint8(a), uint8(b)) {
					t.Fatalf("%s LUT mismatch at %d,%d", name, a, b)
				}
			}
		}
	}
}

func TestRegistry1JFFIsExact(t *testing.T) {
	lut := MustLookup("mul8u_1JFF")
	f := func(a, b uint8) bool { return lut.Mul(a, b) == uint16(a)*uint16(b) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryAliases(t *testing.T) {
	a, err := Lookup("mul8u_17KS")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Lookup("17ks")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("alias lookup should return the same cached LUT")
	}
}

func TestRegistryUnknown(t *testing.T) {
	if _, err := New("mul8u_NOPE"); err == nil {
		t.Fatal("expected error for unknown multiplier")
	}
	if _, err := Lookup("mul8u_NOPE"); err == nil {
		t.Fatal("expected error for unknown multiplier")
	}
}

func TestPaperSetsRegistered(t *testing.T) {
	for _, n := range append(MNISTSet(), CIFARSet()...) {
		if _, err := New(n); err != nil {
			t.Errorf("paper multiplier %s not registered: %v", n, err)
		}
	}
	if len(MNISTSet()) != 9 {
		t.Errorf("MNIST set has %d entries, want 9 (M1..M9)", len(MNISTSet()))
	}
	if len(CIFARSet()) != 8 {
		t.Errorf("CIFAR set has %d entries, want 8 (M1..M8)", len(CIFARSet()))
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	Register("mul8u_1JFF", func() Multiplier { return Exact })
}

func TestNamesSortedAndPrefixed(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("no registered names")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not strictly sorted: %q >= %q", names[i-1], names[i])
		}
	}
}

func TestAllRegisteredSaturate(t *testing.T) {
	// Every design must stay within the 16-bit product range on the
	// extreme corners.
	for _, name := range Names() {
		m, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, pair := range [][2]uint8{{255, 255}, {255, 0}, {0, 255}, {0, 0}, {128, 128}} {
			got := m.Mul(pair[0], pair[1])
			_ = got // must simply not panic; uint16 bounds by construction
		}
	}
}

// TestTableTransposeParity pins the transposed-table contract the
// weight-stationary axnn kernel relies on: TableT()[b<<8|a] equals
// Table()[a<<8|b] over the full input space, the build is lazy but
// cached on the LUT instance, and concurrent first use is safe.
func TestTableTransposeParity(t *testing.T) {
	l := MustLookup("mul8u_JV3")
	var tts [4][]uint16
	var wg sync.WaitGroup
	for i := range tts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tts[i] = l.TableT()
		}(i)
	}
	wg.Wait()
	tt := tts[0]
	for _, other := range tts[1:] {
		if &other[0] != &tt[0] {
			t.Fatal("TableT rebuilt the transposed table instead of caching it")
		}
	}
	tab := l.Table()
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if tab[a<<8|b] != tt[b<<8|a] {
				t.Fatalf("transpose mismatch at a=%d b=%d: %d != %d", a, b, tab[a<<8|b], tt[b<<8|a])
			}
		}
	}
}
