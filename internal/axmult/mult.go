// Package axmult provides behavioural models of 8x8 -> 16-bit unsigned
// approximate multipliers in the style of the EvoApprox8b library
// (Mrazek et al., DATE 2017), plus exhaustive-LUT compilation as used by
// TFApprox-style accelerator simulators.
//
// The paper reproduced here consumes multipliers purely as input->output
// maps (it simulates AxDNN inference through LUTs), so each design below
// is a functional model of a known approximate-multiplier family:
// truncation, broken arrays, partial-product perforation, lower-part-OR,
// Mitchell logarithmic, DRUM dynamic-range, approximate compressors, and
// the recursive Kulkarni 2x2 block. The registry in registry.go binds
// configured instances to the EvoApprox names the paper uses.
package axmult

import "fmt"

// Multiplier is a behavioural 8x8 -> 16-bit unsigned combinational
// multiplier. Implementations must be pure functions of their inputs.
type Multiplier interface {
	// Name returns the design's registered name, e.g. "mul8u_17KS".
	Name() string
	// Mul returns the (possibly approximate) product of a and b.
	Mul(a, b uint8) uint16
}

// Func adapts a plain function to the Multiplier interface.
type Func struct {
	ID string
	F  func(a, b uint8) uint16
}

// Name implements Multiplier.
func (f Func) Name() string { return f.ID }

// Mul implements Multiplier.
func (f Func) Mul(a, b uint8) uint16 { return f.F(a, b) }

// Exact is the exact 8x8 unsigned multiplier.
var Exact Multiplier = Func{ID: "exact", F: func(a, b uint8) uint16 {
	return uint16(a) * uint16(b)
}}

// partialProducts fills pp[c] with the count-free list of partial-product
// bits of column c (c = i+j for a_i * b_j). keep decides whether the
// partial product at (row i, col j) participates; a nil keep keeps all.
// It returns per-column bit counts in a [16]int8 and the accumulated
// column sums in a [16]int32 (each entry = number of 1-bits in column).
func partialProducts(a, b uint8, keep func(i, j uint) bool) (cols [16]int32) {
	for i := uint(0); i < 8; i++ {
		if (a>>i)&1 == 0 {
			continue
		}
		for j := uint(0); j < 8; j++ {
			if (b>>j)&1 == 0 {
				continue
			}
			if keep != nil && !keep(i, j) {
				continue
			}
			cols[i+j]++
		}
	}
	return cols
}

// sumColumns adds up column counts exactly: result = sum cols[c] * 2^c,
// saturated to 16 bits.
func sumColumns(cols [16]int32) uint16 {
	var acc uint32
	for c := 0; c < 16; c++ {
		acc += uint32(cols[c]) << uint(c)
	}
	if acc > 0xFFFF {
		return 0xFFFF
	}
	return uint16(acc)
}

// MustMul panics if m is nil; convenience for registry consumers.
func MustMul(m Multiplier, a, b uint8) uint16 {
	if m == nil {
		panic(fmt.Sprintf("axmult: nil multiplier for %d*%d", a, b))
	}
	return m.Mul(a, b)
}
