package axmult

import "repro/internal/bitops"

// LowOR splits each operand into a high part and a K-bit low part and
// approximates the low-low cross term with a bitwise OR (the
// lower-part-OR-adder idea applied to a multiplier): the three exact
// cross terms ah*bh, ah*bl and al*bh are kept, while al*bl — the term
// with the smallest dynamic range — collapses to (al | bl).
type LowOR struct {
	ID string
	K  uint
}

// Name implements Multiplier.
func (m LowOR) Name() string { return m.ID }

// Mul implements Multiplier.
func (m LowOR) Mul(a, b uint8) uint16 {
	k := m.K
	if k == 0 {
		return uint16(a) * uint16(b)
	}
	if k > 8 {
		k = 8
	}
	mask := bitops.Mask(k)
	al, bl := uint32(a)&mask, uint32(b)&mask
	ah, bh := uint32(a)>>k, uint32(b)>>k
	p := (ah*bh)<<(2*k) + (ah*bl+al*bh)<<k + (al | bl)
	if p > 0xFFFF {
		return 0xFFFF
	}
	return uint16(p)
}
