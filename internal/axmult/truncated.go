package axmult

// TruncMult drops the Cut least-significant partial-product columns of
// the 8x8 array (fixed-width truncation, the cheapest approximate
// multiplier family). If Compensate is true a constant equal to the
// expected value of the dropped columns (operands uniform) is added
// back, turning a downward-biased design into a near-zero-mean one.
type TruncMult struct {
	ID         string
	Cut        uint
	Compensate bool
}

// Name implements Multiplier.
func (m TruncMult) Name() string { return m.ID }

// Mul implements Multiplier.
func (m TruncMult) Mul(a, b uint8) uint16 {
	cols := partialProducts(a, b, func(i, j uint) bool { return i+j >= m.Cut })
	p := uint32(sumColumns(cols))
	if m.Compensate {
		p += truncCompensation(m.Cut)
	}
	if p > 0xFFFF {
		return 0xFFFF
	}
	return uint16(p)
}

// truncCompensation returns the expected value of the dropped columns:
// column c of an 8x8 array has min(c+1, 15-c, 8) partial products, each
// one with probability 1/4 under uniform operands.
func truncCompensation(cut uint) uint32 {
	var e float64
	for c := uint(0); c < cut && c < 16; c++ {
		n := int(c) + 1
		if v := 15 - int(c); v < n {
			n = v
		}
		if n > 8 {
			n = 8
		}
		e += float64(n) * 0.25 * float64(uint32(1)<<c)
	}
	return uint32(e + 0.5)
}

// BrokenArray models a broken-array multiplier (BAM): partial products
// are omitted below a vertical break (columns < VBreak) and, in
// addition, the HRows least-significant rows of the array are cut
// entirely (horizontal break). Both cuts bias the product downward.
type BrokenArray struct {
	ID     string
	VBreak uint // drop partial products with i+j < VBreak
	HRows  uint // drop partial products with row i < HRows
}

// Name implements Multiplier.
func (m BrokenArray) Name() string { return m.ID }

// Mul implements Multiplier.
func (m BrokenArray) Mul(a, b uint8) uint16 {
	cols := partialProducts(a, b, func(i, j uint) bool {
		return i+j >= m.VBreak && i >= m.HRows
	})
	return sumColumns(cols)
}
