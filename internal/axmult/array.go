package axmult

import "repro/internal/adder"

// ArrayMult is an 8x8 unsigned array multiplier assembled from 1-bit
// adder cells. Partial products are reduced column by column with the
// configured cell standing in for every adder in the ApproxCols
// least-significant columns, and the exact cell above — the structure
// used by "defensive approximation" (Guesmi et al.) where exact mirror
// adders are swapped for approximate ones in the low part of the array.
//
// With Cell == adder.Exact or ApproxCols == 0 the design is exact; the
// package tests verify this against a*b over the full input space.
type ArrayMult struct {
	ID         string
	Cell       adder.Cell
	ApproxCols uint
}

// Name implements Multiplier.
func (m ArrayMult) Name() string { return m.ID }

// Mul implements Multiplier by carry-save reduction of the partial
// product matrix using 1-bit cells.
func (m ArrayMult) Mul(a, b uint8) uint16 {
	// bits[c] holds the unreduced bits of column c.
	var bitcols [17][]uint32
	for i := uint(0); i < 8; i++ {
		ai := uint32(a>>i) & 1
		if ai == 0 {
			continue
		}
		for j := uint(0); j < 8; j++ {
			bj := uint32(b>>j) & 1
			if bj == 0 {
				continue
			}
			bitcols[i+j] = append(bitcols[i+j], 1)
		}
	}
	cell := m.Cell
	if cell == nil {
		cell = adder.Exact
	}
	var out uint32
	for c := 0; c < 16; c++ {
		use := adder.Exact
		if uint(c) < m.ApproxCols {
			use = cell
		}
		bits := bitcols[c]
		// Reduce the column to a single bit, pushing carries to c+1.
		for len(bits) > 1 {
			if len(bits) >= 3 {
				s, co := use(bits[0], bits[1], bits[2])
				bits = append(bits[3:], s&1)
				if co&1 == 1 {
					bitcols[c+1] = append(bitcols[c+1], 1)
				}
			} else { // half adder
				s, co := use(bits[0], bits[1], 0)
				bits = []uint32{s & 1}
				if co&1 == 1 {
					bitcols[c+1] = append(bitcols[c+1], 1)
				}
			}
		}
		if len(bits) == 1 && bits[0]&1 == 1 {
			out |= 1 << uint(c)
		}
	}
	// Column 16 can only receive carries if approximation inflated the
	// count; exact reduction never produces one. Saturate.
	if len(bitcols[16]) > 0 {
		for _, bb := range bitcols[16] {
			if bb&1 == 1 {
				return 0xFFFF
			}
		}
	}
	return uint16(out)
}
