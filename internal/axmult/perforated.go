package axmult

// Perforated models partial-product perforation: whole rows of the
// partial-product matrix (selected bits of operand a) are skipped.
// With Compensate set, the expected value of each skipped row under
// uniform operands (P[a_i]=1/2, E[b]=127.5) is added back, making the
// error distribution roughly zero-mean — high variance but low bias,
// the profile of designs that keep clean accuracy despite a large MAE.
type Perforated struct {
	ID         string
	Rows       uint8 // bitmask of rows (bits of a) to skip
	Compensate bool
}

// Name implements Multiplier.
func (m Perforated) Name() string { return m.ID }

// Mul implements Multiplier.
func (m Perforated) Mul(a, b uint8) uint16 {
	kept := a &^ m.Rows
	p := uint32(kept) * uint32(b)
	if m.Compensate {
		p += m.compensation()
	}
	if p > 0xFFFF {
		return 0xFFFF
	}
	return uint16(p)
}

func (m Perforated) compensation() uint32 {
	var e float64
	for i := uint(0); i < 8; i++ {
		if (m.Rows>>i)&1 == 1 {
			e += 0.5 * 127.5 * float64(uint32(1)<<i)
		}
	}
	return uint32(e + 0.5)
}
