package axmult

// BandMult models an evolved multiplier whose error is concentrated in
// a band of operand codes: operands outside [Lo, Hi) are exact, while
// operands inside are floored to a Step-wide bucket before multiplying.
//
// Designs like this are common among evolved (EvoApprox-style)
// circuits, whose error maps are irregular rather than smooth. Their
// behavioural signature is the data-dependent masking the paper
// describes: inputs whose code distribution avoids the band see almost
// no error ("masked"), while a distribution shift into the band — a
// contrast-reduction attack raising all dark pixels, or an linf
// perturbation widening the background population — unmasks the full
// error at once. This is the Fig. 6a / Fig. 5b JV3 mechanism.
type BandMult struct {
	ID     string
	Lo, Hi uint8
	Step   uint8
	// ActOnly applies the band to the first operand only (the
	// activation, by the engine's convention) — evolved designs are
	// frequently non-commutative, and one-sided error keeps the static
	// weight operand exact.
	ActOnly bool
	// Round buckets with rounding instead of flooring, making the
	// in-band error a zero-mean sawtooth: broad (deep-layer) code
	// distributions cancel it, while a narrow code population — e.g. an
	// image background shifted into the band by a contrast-reduction
	// attack — picks it up coherently. This is the masking/unmasking
	// discontinuity the paper attributes to designs like JV3.
	Round bool
	// Overshoot replaces bucketing by a slope-2 segment: in-band
	// operands read as x + (x-Lo), continuous at the low edge. A code
	// population entering the band inflates its products coherently and
	// drives the downstream requantizer into saturation.
	Overshoot bool
}

// Name implements Multiplier.
func (m BandMult) Name() string { return m.ID }

// Mul implements Multiplier.
func (m BandMult) Mul(a, b uint8) uint16 {
	if m.ActOnly {
		return uint16(uint32(m.bucket(a)) * uint32(b))
	}
	return uint16(uint32(m.bucket(a)) * uint32(m.bucket(b)))
}

func (m BandMult) bucket(x uint8) uint8 {
	if x < m.Lo || x >= m.Hi {
		return x
	}
	if m.Overshoot {
		v := uint32(x) + uint32(x-m.Lo)
		if v > 255 {
			v = 255
		}
		return uint8(v)
	}
	step := uint32(m.Step)
	if step == 0 {
		step = uint32(m.Hi - m.Lo)
	}
	off := uint32(x - m.Lo)
	if m.Round {
		off += step / 2
	}
	v := uint32(m.Lo) + off/step*step
	if v > 255 {
		v = 255
	}
	return uint8(v)
}
