package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// numBuckets finite buckets at power-of-two microsecond boundaries
// (1us, 2us, 4us, ... ~33.5s) plus an implicit +Inf. Power-of-two
// boundaries make Observe a bits.Len64, no search and no floats on the
// hot path.
const numBuckets = 26

// Histogram is a lock-free log-bucketed latency histogram. Observe is
// a handful of atomic adds — safe to call from every cell worker
// concurrently. The zero value is not usable; get histograms from a
// Registry so they render in /metrics.
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	inf     atomic.Uint64
	count   atomic.Uint64
	sumNS   atomic.Int64
}

// bucketIndex maps a duration to its finite bucket, or numBuckets for
// +Inf. Bucket i holds observations with d <= 2^i microseconds.
func bucketIndex(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	// Round up so a 1.001us observation lands in le=2us, not le=1us.
	us := uint64((d + time.Microsecond - 1) / time.Microsecond)
	i := 0
	if us > 1 {
		i = bits.Len64(us - 1)
	}
	if i > numBuckets {
		return numBuckets
	}
	return i
}

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) {
	if i := bucketIndex(d); i < numBuckets {
		h.buckets[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	h.sumNS.Add(int64(d))
}

// Time returns a stop function recording the elapsed time since the
// call: defer h.Time()() around a whole function body.
func (h *Histogram) Time() func() {
	start := time.Now()
	return func() { h.Observe(time.Since(start)) }
}

// family is one metric family: a name/help pair with one histogram per
// label value ("" = unlabeled).
type family struct {
	name     string
	help     string
	labelKey string // "" for plain histograms
	mu       sync.Mutex
	hists    map[string]*Histogram
}

func (f *family) with(labelValue string) *Histogram {
	f.mu.Lock()
	defer f.mu.Unlock()
	h, ok := f.hists[labelValue]
	if !ok {
		h = &Histogram{}
		f.hists[labelValue] = h
	}
	return h
}

// HistogramVec is a family of histograms keyed by one label (e.g. HTTP
// route). With interns the child, so callers resolve it once at
// registration time rather than per observation.
type HistogramVec struct{ f *family }

// With returns the child histogram for the label value.
func (v *HistogramVec) With(labelValue string) *Histogram { return v.f.with(labelValue) }

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration is idempotent by name, so package
// init order doesn't matter.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Default is the process-wide registry the service /metrics endpoint
// renders.
var Default = NewRegistry()

func (r *Registry) family(name, help, labelKey string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, labelKey: labelKey, hists: map[string]*Histogram{}}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	return f
}

// Histogram registers (or fetches) an unlabeled histogram family.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.family(name, help, "").with("")
}

// HistogramVec registers (or fetches) a one-label histogram family.
func (r *Registry) HistogramVec(name, help, labelKey string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, labelKey)}
}

// EscapeLabel escapes a label value per the Prometheus text format:
// backslash, double quote, and newline.
func EscapeLabel(v string) string {
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// formatLE renders a bucket boundary (given in microseconds) in
// seconds the way Prometheus clients do: shortest decimal that
// round-trips.
func formatLE(us uint64) string {
	return strconv.FormatFloat(float64(us)/1e6, 'g', -1, 64)
}

// WriteProm renders every family in registration order: HELP and TYPE
// once, then per label value the cumulative _bucket series ending at
// le="+Inf", then _sum and _count. Seconds are the exposition unit
// (Prometheus convention) even though buckets are defined in
// microseconds.
func (r *Registry) WriteProm(w io.Writer) {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	for _, f := range fams {
		f.mu.Lock()
		values := make([]string, 0, len(f.hists))
		for v := range f.hists {
			values = append(values, v)
		}
		hists := make(map[string]*Histogram, len(f.hists))
		for v, h := range f.hists {
			hists[v] = h
		}
		f.mu.Unlock()
		sort.Strings(values)

		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s histogram\n", f.name)
		for _, v := range values {
			h := hists[v]
			extra := ""
			if f.labelKey != "" {
				extra = fmt.Sprintf(`%s="%s",`, f.labelKey, EscapeLabel(v))
			}
			var cum uint64
			for i := 0; i < numBuckets; i++ {
				cum += h.buckets[i].Load()
				fmt.Fprintf(w, "%s_bucket{%sle=\"%s\"} %d\n", f.name, extra, formatLE(uint64(1)<<uint(i)), cum)
			}
			cum += h.inf.Load()
			fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", f.name, extra, cum)
			label := ""
			if f.labelKey != "" {
				label = fmt.Sprintf(`{%s="%s"}`, f.labelKey, EscapeLabel(v))
			}
			fmt.Fprintf(w, "%s_sum%s %g\n", f.name, label, float64(h.sumNS.Load())/1e9)
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, label, h.count.Load())
		}
	}
}
