package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestStartWithoutRecorderIsInert(t *testing.T) {
	ctx := context.Background()
	cctx, h := Start(ctx, "cell")
	if h == nil {
		t.Fatal("Start returned nil handle without recorder")
	}
	if cctx != ctx {
		t.Error("Start allocated a child context without a recorder")
	}
	if h.ID() != "" {
		t.Errorf("untraced span has ID %q, want empty", h.ID())
	}
	h.SetAttr("k", "v") // must not panic
	if d := h.End(); d < 0 {
		t.Errorf("End returned negative duration %v", d)
	}
	var nilH *SpanHandle
	if nilH.End() != 0 || nilH.ID() != "" {
		t.Error("nil handle methods not inert")
	}
}

func TestSpanTreeRecorded(t *testing.T) {
	rec := NewRecorder(16)
	ctx := WithRecorder(context.Background(), rec)

	sctx, suite := Start(ctx, "suite", Attr{Key: "job", Value: "j1"})
	cctx, cell := Start(sctx, "cell")
	_, craft := Start(cctx, "craft")
	craft.End()
	cell.End()
	suite.End()

	spans := rec.Spans()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	byName := map[string]Span{}
	for _, sp := range spans {
		if sp.Trace != rec.TraceID() {
			t.Errorf("span %s trace = %q, want %q", sp.Name, sp.Trace, rec.TraceID())
		}
		byName[sp.Name] = sp
	}
	if byName["suite"].Parent != "" {
		t.Errorf("suite parent = %q, want root", byName["suite"].Parent)
	}
	if byName["cell"].Parent != byName["suite"].ID {
		t.Errorf("cell parent = %q, want suite %q", byName["cell"].Parent, byName["suite"].ID)
	}
	if byName["craft"].Parent != byName["cell"].ID {
		t.Errorf("craft parent = %q, want cell %q", byName["craft"].Parent, byName["cell"].ID)
	}
	if got := byName["suite"].Attrs; len(got) != 1 || got[0] != (Attr{Key: "job", Value: "j1"}) {
		t.Errorf("suite attrs = %v", got)
	}
	// Spans() is start-ordered: suite started first.
	if spans[0].Name != "suite" {
		t.Errorf("first span = %q, want suite", spans[0].Name)
	}
}

func TestRecorderRingBounds(t *testing.T) {
	rec := NewRecorder(4)
	ctx := WithRecorder(context.Background(), rec)
	for i := 0; i < 10; i++ {
		_, h := Start(ctx, fmt.Sprintf("s%d", i))
		h.End()
	}
	spans := rec.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want cap 4", len(spans))
	}
	if rec.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", rec.Dropped())
	}
	// Oldest dropped: the survivors are the last four.
	for i, sp := range spans {
		want := fmt.Sprintf("s%d", 6+i)
		if sp.Name != want {
			t.Errorf("span[%d] = %q, want %q", i, sp.Name, want)
		}
	}
}

func TestInjectExtractRoundTrip(t *testing.T) {
	rec := NewRecorder(8)
	ctx := WithRecorder(context.Background(), rec)
	sctx, sp := Start(ctx, "shard-rpc")
	defer sp.End()

	h := http.Header{}
	Inject(sctx, h)
	traceID, parentID := Extract(h)
	if traceID != rec.TraceID() {
		t.Errorf("trace = %q, want %q", traceID, rec.TraceID())
	}
	if parentID != sp.ID() {
		t.Errorf("parent = %q, want %q", parentID, sp.ID())
	}

	// Untraced context injects nothing.
	h2 := http.Header{}
	Inject(context.Background(), h2)
	if tr, pa := Extract(h2); tr != "" || pa != "" {
		t.Errorf("untraced Inject wrote %q/%q", tr, pa)
	}

	// The remote side resumes the trace under the caller's span.
	remote := ResumeRecorder(8, traceID)
	rctx := WithParent(context.Background(), remote, parentID)
	_, child := Start(rctx, "cell")
	child.End()
	got := remote.Spans()
	if len(got) != 1 || got[0].Trace != traceID || got[0].Parent != parentID {
		t.Fatalf("resumed span = %+v, want trace %q parent %q", got, traceID, parentID)
	}
}

func TestImportStampsNode(t *testing.T) {
	rec := NewRecorder(8)
	rec.Import("http://peer:8402", []Span{
		{Trace: rec.TraceID(), ID: "a", Name: "cell"},
		{Trace: rec.TraceID(), ID: "b", Name: "cell", Node: "http://far:9000"},
	})
	spans := rec.Spans()
	if spans[0].Node != "http://peer:8402" && spans[1].Node != "http://peer:8402" {
		t.Error("Import did not stamp node on unlabeled span")
	}
	for _, sp := range spans {
		if sp.ID == "b" && sp.Node != "http://far:9000" {
			t.Errorf("Import overwrote pre-labeled node: %q", sp.Node)
		}
	}
}

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{4 * time.Microsecond, 2},
		{5 * time.Microsecond, 3},
		{time.Millisecond, 10},          // 1024us = 2^10
		{time.Second, 20},               // ~1.05s bucket 2^20us
		{200 * time.Second, numBuckets}, // beyond the last finite bucket
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestHistogramExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("ax_test_duration_seconds", "test latency.")
	h.Observe(3 * time.Microsecond)   // bucket le=4us
	h.Observe(100 * time.Microsecond) // bucket le=128us
	h.Observe(time.Hour)              // +Inf

	var buf bytes.Buffer
	reg.WriteProm(&buf)
	out := buf.String()

	for _, want := range []string{
		"# HELP ax_test_duration_seconds test latency.\n",
		"# TYPE ax_test_duration_seconds histogram\n",
		`ax_test_duration_seconds_bucket{le="+Inf"} 3`,
		"ax_test_duration_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// le="4e-06" (4us) holds exactly 1; le="0.000128" holds 2.
	if !strings.Contains(out, `ax_test_duration_seconds_bucket{le="4e-06"} 1`) {
		t.Errorf("4us bucket wrong:\n%s", out)
	}
	if !strings.Contains(out, `ax_test_duration_seconds_bucket{le="0.000128"} 2`) {
		t.Errorf("128us bucket wrong:\n%s", out)
	}
	// Sum ~ 1 hour in seconds.
	if !strings.Contains(out, "ax_test_duration_seconds_sum 3600.000103\n") {
		t.Errorf("sum wrong:\n%s", out)
	}
}

func TestHistogramVecLabels(t *testing.T) {
	reg := NewRegistry()
	vec := reg.HistogramVec("ax_http_request_duration_seconds", "HTTP latency.", "route")
	vec.With(`GET /v1/suites/{id}`).Observe(time.Millisecond)
	vec.With("weird\"\\\nroute").Observe(time.Millisecond)

	var buf bytes.Buffer
	reg.WriteProm(&buf)
	out := buf.String()
	if !strings.Contains(out, `route="GET /v1/suites/{id}"`) {
		t.Errorf("route label missing:\n%s", out)
	}
	if !strings.Contains(out, `route="weird\"\\\nroute"`) {
		t.Errorf("escaped label missing:\n%s", out)
	}
	if n := strings.Count(out, "# TYPE ax_http_request_duration_seconds histogram"); n != 1 {
		t.Errorf("TYPE emitted %d times, want once", n)
	}
}

func TestEscapeLabel(t *testing.T) {
	if got := EscapeLabel("a\\b\"c\nd"); got != `a\\b\"c\nd` {
		t.Errorf("EscapeLabel = %q", got)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	rec := NewRecorder(32)
	ctx := WithRecorder(context.Background(), rec)
	sctx, suite := Start(ctx, "suite")
	cctx, cell := Start(sctx, "cell", Attr{Key: "attack", Value: "FGSM"})
	_, craft := Start(cctx, "craft")
	time.Sleep(time.Millisecond)
	craft.End()
	cell.End()
	suite.End()
	// A remote span imported from a peer.
	rec.Import("http://peer:8402", []Span{{
		Trace: rec.TraceID(), ID: "r1", Parent: cell.ID(), Name: "cell",
		Start: time.Now(), Dur: time.Millisecond,
	}})

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, rec.Spans()); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	var xEvents, metas int
	pids := map[float64]bool{}
	for _, ev := range tr.TraceEvents {
		switch ev["ph"] {
		case "X":
			xEvents++
			for _, k := range []string{"pid", "tid", "ts", "name"} {
				if _, ok := ev[k]; !ok {
					t.Errorf("X event missing %s: %v", k, ev)
				}
			}
			pids[ev["pid"].(float64)] = true
		case "M":
			metas++
		}
	}
	if xEvents != 4 {
		t.Errorf("got %d X events, want 4", xEvents)
	}
	if metas != 2 {
		t.Errorf("got %d metadata events, want 2 (local + peer)", metas)
	}
	if len(pids) != 2 {
		t.Errorf("spans spread over %d pids, want 2", len(pids))
	}

	// The craft span must share or nest within the cell span's lane
	// window; verify parent linkage via args.
	var cellSpanID string
	for _, ev := range tr.TraceEvents {
		if ev["name"] == "cell" && ev["ph"] == "X" {
			args := ev["args"].(map[string]any)
			if args["node"] == nil {
				cellSpanID = args["span"].(string)
			}
		}
	}
	found := false
	for _, ev := range tr.TraceEvents {
		if ev["name"] == "craft" {
			args := ev["args"].(map[string]any)
			if args["parent"] == cellSpanID {
				found = true
			}
			if args["attack"] != nil {
				t.Error("craft span inherited cell attrs")
			}
		}
	}
	if !found {
		t.Error("craft span not parented under cell span")
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("empty trace not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) != 0 {
		t.Errorf("empty trace has %d events", len(tr.TraceEvents))
	}
}

func TestHistogramTime(t *testing.T) {
	var h Histogram
	stop := h.Time()
	time.Sleep(2 * time.Millisecond)
	stop()
	if h.count.Load() != 1 {
		t.Fatalf("count = %d", h.count.Load())
	}
	if h.sumNS.Load() < int64(2*time.Millisecond) {
		t.Errorf("sum %dns < slept 2ms", h.sumNS.Load())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				h.Observe(time.Duration(j) * time.Microsecond)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if h.count.Load() != 8000 {
		t.Errorf("count = %d, want 8000", h.count.Load())
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		cum += h.buckets[i].Load()
	}
	cum += h.inf.Load()
	if cum != 8000 {
		t.Errorf("bucket total = %d, want 8000", cum)
	}
}
