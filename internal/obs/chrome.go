package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// chromeEvent is one entry of the Chrome trace_event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// the JSON dialect chrome://tracing and Perfetto both load. We emit
// only "X" (complete) duration events plus "M" process_name metadata.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   int64          `json:"ts"`            // microseconds
	Dur  int64          `json:"dur,omitempty"` // microseconds
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace renders spans as Chrome trace_event JSON. Each node
// becomes its own pid (the local node "" is pid 1; remote nodes get
// pids in sorted order) because clocks across nodes are not
// comparable — the viewer shows each node's spans on its own process
// track. Within a node, spans are packed onto tids (lanes) so that
// nested spans share a lane with their parent where possible and
// overlapping siblings split onto fresh lanes, keeping the rendered
// nesting faithful to the span tree.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	// Stable ordering: by start time, then ID.
	sorted := append([]Span(nil), spans...)
	sort.SliceStable(sorted, func(i, k int) bool {
		if !sorted[i].Start.Equal(sorted[k].Start) {
			return sorted[i].Start.Before(sorted[k].Start)
		}
		return sorted[i].ID < sorted[k].ID
	})

	// Assign pids per node.
	pidOf := map[string]int{}
	var nodes []string
	for _, sp := range sorted {
		if _, ok := pidOf[sp.Node]; !ok {
			pidOf[sp.Node] = 0
			nodes = append(nodes, sp.Node)
		}
	}
	sort.Strings(nodes) // "" (local) sorts first -> pid 1
	for i, n := range nodes {
		pidOf[n] = i + 1
	}

	var events []chromeEvent
	for _, n := range nodes {
		label := n
		if label == "" {
			label = "local"
		}
		events = append(events, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  pidOf[n],
			Args: map[string]any{"name": label},
		})
	}

	// Timestamps are relative to the earliest span so traces start
	// near zero in the viewer.
	var t0 time.Time
	if len(sorted) > 0 {
		t0 = sorted[0].Start
		for _, sp := range sorted {
			if sp.Start.Before(t0) {
				t0 = sp.Start
			}
		}
	}

	// Lane assignment per pid: each lane tracks the end time of its
	// last interval; a span goes on its parent's lane if it fits
	// (nesting), otherwise the first free lane, otherwise a new one.
	type laneState struct{ ends []time.Time }
	type placement struct{ pid, tid int }
	lanes := map[int]*laneState{}
	laneOf := map[string]placement{} // span ID -> (pid, tid)

	for _, sp := range sorted {
		pid := pidOf[sp.Node]
		ls := lanes[pid]
		if ls == nil {
			ls = &laneState{}
			lanes[pid] = ls
		}
		end := sp.Start.Add(sp.Dur)
		tid := -1
		if p, ok := laneOf[sp.Parent]; ok && p.pid == pid && p.tid < len(ls.ends) && !ls.ends[p.tid].Before(end) {
			// Parent's lane is still "open" past this span's end: the
			// viewer nests us under it.
			tid = p.tid
		} else {
			for i, e := range ls.ends {
				if !e.After(sp.Start) {
					tid = i
					break
				}
			}
		}
		if tid == -1 {
			ls.ends = append(ls.ends, end)
			tid = len(ls.ends) - 1
		} else if ls.ends[tid].Before(end) {
			ls.ends[tid] = end
		}
		laneOf[sp.ID] = placement{pid, tid}

		args := map[string]any{
			"span":  sp.ID,
			"trace": sp.Trace,
		}
		if sp.Parent != "" {
			args["parent"] = sp.Parent
		}
		if sp.Node != "" {
			args["node"] = sp.Node
		}
		for _, a := range sp.Attrs {
			args[a.Key] = a.Value
		}
		dur := sp.Dur.Microseconds()
		if dur < 1 {
			dur = 1 // zero-duration events render invisibly
		}
		events = append(events, chromeEvent{
			Name: sp.Name,
			Ph:   "X",
			Pid:  pid,
			Tid:  tid + 1, // 1-based lanes: tid 0 never appears, so it can mean "absent" to validators
			Ts:   sp.Start.Sub(t0).Microseconds(),
			Dur:  dur,
			Args: args,
		})
	}

	enc := json.NewEncoder(w)
	if err := enc.Encode(chromeTrace{TraceEvents: events}); err != nil {
		return fmt.Errorf("obs: encode trace: %w", err)
	}
	return nil
}
