// Package obs is the repo's dependency-free observability layer:
// context-carried span trees recorded into bounded ring buffers
// (exportable as Chrome trace_event JSON, see chrome.go) and
// log-bucketed latency histograms rendered in Prometheus exposition
// format (see hist.go). Stdlib only, matching the house style.
//
// Observation is strictly additive: spans and histograms time work and
// never feed report rows, cache keys, or event payloads, so every
// result byte is identical with tracing on or off — the same contract
// Event.Time already satisfies. obs is therefore the one sanctioned
// wall-clock package inside the determinism-scoped tree (policy-in-code
// in internal/analysis/determinism.go); instrumented packages call
// Start/End and Histogram.Observe instead of time.Now directly.
//
// Usage:
//
//	ctx = obs.WithRecorder(ctx, obs.NewRecorder(obs.DefaultSpanCap))
//	ctx, sp := obs.Start(ctx, "cell", obs.Attr{Key: "attack", Value: name})
//	...
//	cellHist.Observe(sp.End())
//
// Start is cheap when ctx carries no recorder: it still stamps a start
// time (so End can feed histograms) but generates no IDs and records
// nothing.
package obs

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSpanCap bounds a per-job span ring: large enough for every
// stage of a full paper suite (14 attacks x 10 eps x ~10 spans per
// cell), small enough that a long-lived service holding the ring for
// every retained job stays bounded.
const DefaultSpanCap = 4096

// Attr is one key/value annotation on a span (attack name, eps, peer
// URL). Values are strings: spans are for humans and trace viewers,
// not for computation.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one completed timed operation in a trace tree. Trace is
// shared by the whole tree (across nodes, for sharded suites), Parent
// links the tree together, and Node labels which process recorded the
// span ("" = the local one; the shard client stamps peer URLs on
// imported spans). The JSON form travels on the internal shard
// response so remote spans nest under the originating suite's trace.
type Span struct {
	Trace  string        `json:"trace"`
	ID     string        `json:"id"`
	Parent string        `json:"parent,omitempty"`
	Name   string        `json:"name"`
	Node   string        `json:"node,omitempty"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur"`
	Attrs  []Attr        `json:"attrs,omitempty"`
}

// Recorder collects finished spans for one trace into a bounded ring:
// once capacity is reached the oldest spans are overwritten and
// Dropped counts them, so a pathological suite can never grow a job's
// trace without bound. All methods are safe for concurrent use.
type Recorder struct {
	trace string
	cap   int

	mu      sync.Mutex
	buf     []Span
	next    int // ring write position once len(buf) == cap
	dropped int64
}

// NewRecorder returns a recorder for a fresh trace. capacity <= 0
// selects DefaultSpanCap.
func NewRecorder(capacity int) *Recorder {
	return ResumeRecorder(capacity, newID())
}

// ResumeRecorder returns a recorder joining an existing trace — the
// shard server's side of cross-node propagation: spans it records
// carry the originating node's trace ID.
func ResumeRecorder(capacity int, traceID string) *Recorder {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	return &Recorder{trace: traceID, cap: capacity}
}

// TraceID returns the trace every span of this recorder belongs to.
func (r *Recorder) TraceID() string { return r.trace }

func (r *Recorder) add(sp Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, sp)
		return
	}
	r.buf[r.next] = sp
	r.next = (r.next + 1) % r.cap
	r.dropped++
}

// Import merges spans recorded on another node (the shard client's
// side), stamping node on any span that does not already carry a node
// label — multi-hop traces keep the label of the process that actually
// did the work.
func (r *Recorder) Import(node string, spans []Span) {
	for _, sp := range spans {
		if sp.Node == "" {
			sp.Node = node
		}
		r.add(sp)
	}
}

// Spans snapshots the recorded spans in start order.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	out := make([]Span, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	r.mu.Unlock()
	// Completion order (ring order) is almost start order already;
	// insertion sort keeps the common case cheap and the export stable.
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].Start.Before(out[k-1].Start); k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// Dropped reports how many spans the ring has overwritten.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// ctxKey carries the recorder and the current parent span ID.
type ctxKey struct{}

type ctxVal struct {
	rec    *Recorder
	parent string
}

// WithRecorder attaches a recorder to the context; spans Started under
// it are recorded there, the first as roots of the trace.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	return context.WithValue(ctx, ctxKey{}, ctxVal{rec: r})
}

// WithParent attaches a recorder with an explicit parent span ID — the
// shard server resuming a remote caller's trace: its spans nest under
// the caller's shard-rpc span.
func WithParent(ctx context.Context, r *Recorder, parentID string) context.Context {
	return context.WithValue(ctx, ctxKey{}, ctxVal{rec: r, parent: parentID})
}

// FromContext returns the context's recorder and current parent span
// ID (nil, "" when tracing is off).
func FromContext(ctx context.Context) (*Recorder, string) {
	v, _ := ctx.Value(ctxKey{}).(ctxVal)
	return v.rec, v.parent
}

// SpanHandle is an in-flight span. The zero of tracing — a context
// with no recorder — still yields a usable handle whose End returns
// the elapsed time (feeding histograms) but records nothing.
type SpanHandle struct {
	rec   *Recorder
	start time.Time
	sp    Span
}

// Start opens a span named name under ctx's current span and returns
// the context its children should use. It always returns a non-nil
// handle; the caller must End it.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *SpanHandle) {
	h := &SpanHandle{start: time.Now()}
	v, _ := ctx.Value(ctxKey{}).(ctxVal)
	if v.rec == nil {
		return ctx, h
	}
	h.rec = v.rec
	h.sp = Span{
		Trace:  v.rec.trace,
		ID:     newID(),
		Parent: v.parent,
		Name:   name,
		Start:  h.start,
		Attrs:  attrs,
	}
	return context.WithValue(ctx, ctxKey{}, ctxVal{rec: v.rec, parent: h.sp.ID}), h
}

// SetAttr appends one annotation (no-op when tracing is off, so hot
// paths need no guards).
func (h *SpanHandle) SetAttr(key, value string) {
	if h == nil || h.rec == nil {
		return
	}
	h.sp.Attrs = append(h.sp.Attrs, Attr{Key: key, Value: value})
}

// ID returns the span's ID ("" when tracing is off) — what the shard
// client propagates as the remote subtree's parent.
func (h *SpanHandle) ID() string {
	if h == nil {
		return ""
	}
	return h.sp.ID
}

// End closes the span, records it when tracing is on, and returns the
// elapsed time either way so callers feed latency histograms from the
// same clock reads. End is idempotent in effect only for timing; call
// it exactly once.
func (h *SpanHandle) End() time.Duration {
	if h == nil {
		return 0
	}
	d := time.Since(h.start)
	if h.rec != nil {
		h.sp.Dur = d
		h.rec.add(h.sp)
	}
	return d
}

// Trace-context propagation headers of the internal shard call.
const (
	// TraceHeader carries the trace ID.
	TraceHeader = "X-Ax-Trace-Id"
	// ParentHeader carries the calling span's ID.
	ParentHeader = "X-Ax-Parent-Id"
)

// headerCarrier is the subset of http.Header obs needs; declared
// structurally so obs stays free of net/http.
type headerCarrier interface {
	Set(key, value string)
	Get(key string) string
}

// Inject writes ctx's trace context into the carrier (an http.Header).
// No-op when tracing is off.
func Inject(ctx context.Context, h headerCarrier) {
	rec, parent := FromContext(ctx)
	if rec == nil {
		return
	}
	h.Set(TraceHeader, rec.TraceID())
	if parent != "" {
		h.Set(ParentHeader, parent)
	}
}

// Extract reads a trace context written by Inject ("", "" when the
// caller was not tracing).
func Extract(h headerCarrier) (traceID, parentID string) {
	return h.Get(TraceHeader), h.Get(ParentHeader)
}

// ID generation: a process-unique seed mixed with an atomic counter
// through a splitmix64 finalizer. IDs are unique within a process and
// collision-free across nodes for any plausible span volume; they
// carry no ordering semantics.
var (
	idCounter atomic.Uint64
	idSeed    = uint64(time.Now().UnixNano())
)

func newID() string {
	x := idSeed + idCounter.Add(1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return strconv.FormatUint(x, 16)
}
