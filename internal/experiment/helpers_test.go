package experiment

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/axnn"
)

func attackByName(t *testing.T, name string) attack.Attack {
	t.Helper()
	a := attack.ByName(name)
	if a == nil {
		t.Fatalf("unknown attack %q", name)
	}
	return a
}

// axnnOptions mirrors the engine's victim compilation options for
// reference runs.
func axnnOptions(s *Spec) axnn.Options {
	return axnn.Options{Bits: s.Bits, ApproxDense: s.ApproxDense}
}
