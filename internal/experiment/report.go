package experiment

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
)

// CellTiming records one (attack, eps) cell of the executed plan:
// whether its crafted batch was a cache hit and how long crafting
// plus all victim evaluations took.
type CellTiming struct {
	Attack    string  `json:"attack"`
	Eps       float64 `json:"eps"`
	CacheHit  bool    `json:"cache_hit"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// Report is the result of executing one Spec: one Grid per attack
// plus per-cell timings. It embeds the Spec it was produced from, so
// a serialized report is self-describing and replayable.
type Report struct {
	Spec Spec `json:"spec"`
	// CleanAcc is the source model's float test accuracy, %.
	CleanAcc float64      `json:"clean_acc"`
	Grids    []*core.Grid `json:"grids"`
	Cells    []CellTiming `json:"cells,omitempty"`
}

// Grid returns the grid swept with the named attack.
func (r *Report) Grid(attack string) (*core.Grid, bool) {
	for _, g := range r.Grids {
		if g.Attack == attack {
			return g, true
		}
	}
	return nil, false
}

// MaxAccuracyLoss returns the largest drop from the clean baseline
// observed anywhere in the suite — the paper's headline statistic
// taken over every attack's grid — with the attack, victim, and
// budget where it happens.
func (r *Report) MaxAccuracyLoss() (loss float64, attack, victim string, eps float64) {
	for _, g := range r.Grids {
		if l, v, e := g.MaxAccuracyLoss(); l > loss {
			loss, attack, victim, eps = l, g.Attack, v, e
		}
	}
	return loss, attack, victim, eps
}

// WriteJSON encodes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport decodes a Report previously encoded with WriteJSON — the
// counterpart remote clients use to consume server output without
// re-parsing by hand. Unknown fields are tolerated so older clients
// keep working against newer servers; the grids must decode to a
// non-empty suite, since an empty report is never a valid WriteJSON
// product.
func ReadReport(rd io.Reader) (*Report, error) {
	r := &Report{}
	if err := json.NewDecoder(rd).Decode(r); err != nil {
		return nil, fmt.Errorf("experiment: decoding report: %w", err)
	}
	if len(r.Grids) == 0 {
		return nil, fmt.Errorf("experiment: decoded report has no grids")
	}
	return r, nil
}

// WriteCSV encodes the suite as one long-format row per (attack, eps,
// victim) cell — the layout plotting scripts and spreadsheets want.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"attack", "dataset", "eps", "victim", "robustness_pct"}); err != nil {
		return err
	}
	for _, g := range r.Grids {
		for ei, eps := range g.Eps {
			for vi, victim := range g.Victims {
				rec := []string{
					g.Attack,
					g.Dataset,
					strconv.FormatFloat(eps, 'g', -1, 64),
					victim,
					strconv.FormatFloat(g.Acc[ei][vi], 'g', -1, 64),
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders every grid in the paper's figure layout followed by
// the suite-wide accuracy-loss headline.
func (r *Report) String() string {
	var b strings.Builder
	for _, g := range r.Grids {
		b.WriteString(g.String())
		b.WriteByte('\n')
	}
	if loss, atk, victim, eps := r.MaxAccuracyLoss(); loss > 0 {
		fmt.Fprintf(&b, "max accuracy loss: %.0f%% under %s on %s at eps=%g\n", loss, atk, victim, eps)
	}
	return b.String()
}
