package experiment

import (
	"fmt"
	"io"
	"time"
)

// Kind discriminates progress events.
type Kind int

const (
	// CellStarted fires before a (attack, eps) cell is crafted and
	// evaluated.
	CellStarted Kind = iota
	// CellFinished fires after every victim has been scored on the
	// cell; Elapsed and CacheHit are set.
	CellFinished
	// CacheHit / CacheMiss report whether the cell's crafted batch was
	// served from the engine cache — across attacks, the eps=0 clean
	// row hits after the first attack; across Runs, every repeated
	// cell hits.
	CacheHit
	CacheMiss
)

// String names the kind for logs.
func (k Kind) String() string {
	switch k {
	case CellStarted:
		return "cell-started"
	case CellFinished:
		return "cell-finished"
	case CacheHit:
		return "cache-hit"
	case CacheMiss:
		return "cache-miss"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one progress observation streamed from Engine.Run. Cell
// and Cells give suite-wide progress (1-based cell index over the
// attack × eps plan).
type Event struct {
	Kind   Kind
	Suite  string
	Attack string
	Eps    float64
	Cell   int
	Cells  int
	// CacheHit is meaningful on CellFinished: whether the cell's
	// crafted batch came from the cache.
	CacheHit bool
	// Elapsed is meaningful on CellFinished: crafting plus all victim
	// evaluations for the cell.
	Elapsed time.Duration
}

// Progress returns a WithProgress callback that streams one line per
// cell start and finish to w (finish lines tag cache hits with
// "(cached)"; the separate CacheHit/CacheMiss events are dropped to
// keep the stream one line per transition) — the -progress rendering
// shared by the suite-running cmd tools.
func Progress(w io.Writer) func(Event) {
	return func(ev Event) {
		switch ev.Kind {
		case CellStarted, CellFinished:
			fmt.Fprintln(w, ev)
		}
	}
}

// String renders the event as one progress line.
func (e Event) String() string {
	head := fmt.Sprintf("[%d/%d] %s eps=%g", e.Cell, e.Cells, e.Attack, e.Eps)
	switch e.Kind {
	case CellFinished:
		tag := ""
		if e.CacheHit {
			tag = " (cached)"
		}
		return fmt.Sprintf("%s done in %s%s", head, e.Elapsed.Round(time.Millisecond), tag)
	case CacheHit, CacheMiss:
		return fmt.Sprintf("%s %s", head, e.Kind)
	}
	return fmt.Sprintf("%s %s", head, e.Kind)
}
