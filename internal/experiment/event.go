package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Kind discriminates progress events.
type Kind int

const (
	// CellStarted fires before a (attack, eps) cell is crafted and
	// evaluated.
	CellStarted Kind = iota
	// CellFinished fires after every victim has been scored on the
	// cell; Elapsed and CacheHit are set.
	CellFinished
	// CacheHit / CacheMiss report whether the cell's crafted batch was
	// served from the engine cache — across attacks, the eps=0 clean
	// row hits after the first attack; across Runs, every repeated
	// cell hits.
	CacheHit
	CacheMiss
	// SuiteStarted / SuiteFinished bracket a whole Run when a job
	// runner (the service Manager) executes it; the engine itself only
	// emits cell-level events. SuiteFinished carries Elapsed and, when
	// the run failed or was cancelled, Err.
	SuiteStarted
	SuiteFinished
)

// kindNames is the stable wire vocabulary: these strings are the JSON
// encoding of Kind, consumed by SSE clients, so they must never change
// for existing kinds.
var kindNames = map[Kind]string{
	CellStarted:   "cell-started",
	CellFinished:  "cell-finished",
	CacheHit:      "cache-hit",
	CacheMiss:     "cache-miss",
	SuiteStarted:  "suite-started",
	SuiteFinished: "suite-finished",
}

// String names the kind for logs.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MarshalJSON encodes the kind by its stable name, never its integer
// value — remote consumers must not depend on enum ordering.
func (k Kind) MarshalJSON() ([]byte, error) {
	s, ok := kindNames[k]
	if !ok {
		return nil, fmt.Errorf("experiment: cannot marshal unknown event kind %d", int(k))
	}
	return json.Marshal(s)
}

// UnmarshalJSON decodes a kind name produced by MarshalJSON.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for kind, name := range kindNames {
		if name == s {
			*k = kind
			return nil
		}
	}
	return fmt.Errorf("experiment: unknown event kind %q", s)
}

// Event is one progress observation streamed from Engine.Run (or a
// service job wrapping it). Cell is the cell's 1-based position in
// the compiled plan and Cells the plan's total — stable identities,
// not arrival counters, so parallel and sharded executors that finish
// cells out of order still number them exactly as a serial run would.
// Suite carries the spec name and Job the service job ID, so
// interleaved runs in one process produce attributable lines; the
// engine stamps Time at emission. The JSON encoding is stable (string
// kinds, elapsed in milliseconds) and is what the server's SSE stream
// carries.
type Event struct {
	Kind Kind `json:"kind"`
	// Time is when the event was emitted. Engine.Run stamps it if the
	// emitter left it zero.
	Time time.Time `json:"time,omitzero"`
	// Job is the service job ID the run belongs to; empty for direct
	// engine runs.
	Job    string  `json:"job,omitempty"`
	Suite  string  `json:"suite,omitempty"`
	Attack string  `json:"attack,omitempty"`
	Eps    float64 `json:"eps"`
	Cell   int     `json:"cell,omitempty"`
	Cells  int     `json:"cells,omitempty"`
	// CacheHit is meaningful on CellFinished: whether the cell's
	// crafted batch came from the cache.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Elapsed is meaningful on CellFinished (crafting plus all victim
	// evaluations for the cell) and SuiteFinished (the whole run). It
	// is marshalled as fractional milliseconds under "elapsed_ms".
	Elapsed time.Duration `json:"-"`
	// Err is meaningful on SuiteFinished: why the run stopped early
	// (failure or cancellation), empty on success.
	Err string `json:"error,omitempty"`
}

// eventAlias strips Event's methods so the custom (un)marshallers can
// reuse the struct tags without recursing.
type eventAlias Event

// MarshalJSON renders the event with its stable wire schema: Kind by
// name and Elapsed as fractional milliseconds ("elapsed_ms"), the unit
// the Report's CellTiming already uses.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		eventAlias
		ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	}{eventAlias(e), float64(e.Elapsed) / float64(time.Millisecond)})
}

// UnmarshalJSON decodes the wire schema produced by MarshalJSON.
func (e *Event) UnmarshalJSON(data []byte) error {
	aux := struct {
		*eventAlias
		ElapsedMS float64 `json:"elapsed_ms"`
	}{eventAlias: (*eventAlias)(e)}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	e.Elapsed = time.Duration(aux.ElapsedMS * float64(time.Millisecond))
	return nil
}

// Progress returns a WithProgress callback that streams one line per
// cell start and finish to w (finish lines tag cache hits with
// "(cached)"; the separate CacheHit/CacheMiss events are dropped to
// keep the stream one line per transition) — the -progress rendering
// shared by the suite-running cmd tools. Suite brackets emitted by a
// job runner render too, so server-streamed progress shows run
// boundaries.
func Progress(w io.Writer) func(Event) {
	return func(ev Event) {
		switch ev.Kind {
		case CellStarted, CellFinished, SuiteStarted, SuiteFinished:
			fmt.Fprintln(w, ev)
		}
	}
}

// String renders the event as one progress line.
func (e Event) String() string {
	switch e.Kind {
	case SuiteStarted:
		return fmt.Sprintf("suite %s started (%d cells)", e.suiteLabel(), e.Cells)
	case SuiteFinished:
		if e.Err != "" {
			return fmt.Sprintf("suite %s failed after %s: %s", e.suiteLabel(), e.Elapsed.Round(time.Millisecond), e.Err)
		}
		return fmt.Sprintf("suite %s finished in %s", e.suiteLabel(), e.Elapsed.Round(time.Millisecond))
	}
	head := fmt.Sprintf("[%d/%d] %s eps=%g", e.Cell, e.Cells, e.Attack, e.Eps)
	switch e.Kind {
	case CellFinished:
		tag := ""
		if e.CacheHit {
			tag = " (cached)"
		}
		return fmt.Sprintf("%s done in %s%s", head, e.Elapsed.Round(time.Millisecond), tag)
	case CacheHit, CacheMiss:
		return fmt.Sprintf("%s %s", head, e.Kind)
	}
	return fmt.Sprintf("%s %s", head, e.Kind)
}

// suiteLabel names the run for suite-level lines: the spec name when
// set, else the job ID, else a placeholder.
func (e Event) suiteLabel() string {
	if e.Suite != "" {
		return e.Suite
	}
	if e.Job != "" {
		return e.Job
	}
	return "(unnamed)"
}
