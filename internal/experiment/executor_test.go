package experiment

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"
)

// normalizeTimings strips the execution-history artifacts from a
// report's cell timings. CacheHit and ElapsedMS depend on scheduling
// (serially, PGD@0 hits the clean batch FGM@0 just crafted; with four
// workers both may miss concurrently), so byte-identity across
// executors is asserted on the normalized JSON; the CSV carries no
// timings and must match raw.
func normalizeTimings(rep *Report) {
	for i := range rep.Cells {
		rep.Cells[i].CacheHit = false
		rep.Cells[i].ElapsedMS = 0
	}
}

func runWithExecutor(t *testing.T, x Executor, onEvent func(Event)) *Report {
	t.Helper()
	opts := []Option{WithModelSource(fixtureSource(t)), WithExecutor(x)}
	if onEvent != nil {
		opts = append(opts, WithProgress(onEvent))
	}
	rep, err := New(opts...).Run(context.Background(), tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestExecutorMergeEquivalence is the tentpole's acceptance criterion
// at the executor level: the serial path and a 4-worker parallel run
// of the same plan produce byte-identical CSV (golden-pinned) and
// byte-identical normalized JSON, and the scheduler counters account
// for every cell. Regenerate the golden with
//
//	go test ./internal/experiment -run TestExecutorMergeEquivalence -update
//
// (needed once per architecture class if FP contraction differs).
func TestExecutorMergeEquivalence(t *testing.T) {
	serial := runWithExecutor(t, &LocalExecutor{Parallel: 1}, nil)

	var sc SchedCounters
	par := runWithExecutor(t, &LocalExecutor{Parallel: 4, Counters: &sc}, nil)

	var serialCSV, parCSV bytes.Buffer
	if err := serial.WriteCSV(&serialCSV); err != nil {
		t.Fatal(err)
	}
	if err := par.WriteCSV(&parCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialCSV.Bytes(), parCSV.Bytes()) {
		t.Fatalf("parallel CSV diverged from serial:\n--- serial ---\n%s--- parallel ---\n%s", serialCSV.Bytes(), parCSV.Bytes())
	}

	golden := filepath.Join("testdata", "executor_golden.csv")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, serialCSV.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialCSV.Bytes(), want) {
		t.Fatalf("CSV drifted from the golden fixture:\n--- golden ---\n%s--- got ---\n%s", want, serialCSV.Bytes())
	}

	normalizeTimings(serial)
	normalizeTimings(par)
	var serialJSON, parJSON bytes.Buffer
	if err := serial.WriteJSON(&serialJSON); err != nil {
		t.Fatal(err)
	}
	if err := par.WriteJSON(&parJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialJSON.Bytes(), parJSON.Bytes()) {
		t.Fatalf("normalized JSON diverged:\n--- serial ---\n%s--- parallel ---\n%s", serialJSON.Bytes(), parJSON.Bytes())
	}

	// Every cell ran locally, and the ready gauge drained.
	if want := int64(tinySpec().CellCount()); sc.Local.Load() != want {
		t.Fatalf("scheduler counted %d local cells, want %d", sc.Local.Load(), want)
	}
	if sc.Ready.Load() != 0 {
		t.Fatalf("ready gauge stuck at %d after the run", sc.Ready.Load())
	}
	if sc.Remote.Load() != 0 || sc.Fallback.Load() != 0 {
		t.Fatal("local executor must not touch the sharded counters")
	}
}

// TestExecutorParallelEventIndices: whatever order four workers finish
// cells in, every event carries the cell's plan position — each index
// exactly once per started/finished kind, all advertising the plan's
// Total — so concurrent progress streams stay coherent.
func TestExecutorParallelEventIndices(t *testing.T) {
	var (
		mu     sync.Mutex
		events []Event
	)
	runWithExecutor(t, &LocalExecutor{Parallel: 4}, func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})

	total := tinySpec().CellCount()
	started := map[int]int{}
	finished := map[int]int{}
	for _, ev := range events {
		switch ev.Kind {
		case CellStarted:
			started[ev.Cell]++
		case CellFinished:
			finished[ev.Cell]++
		default:
			continue
		}
		if ev.Cells != total {
			t.Fatalf("event advertises %d cells, want plan total %d: %+v", ev.Cells, total, ev)
		}
	}
	for idx := 1; idx <= total; idx++ {
		if started[idx] != 1 || finished[idx] != 1 {
			t.Fatalf("plan index %d: started %d times, finished %d times, want exactly once each",
				idx, started[idx], finished[idx])
		}
	}
	if len(started) != total || len(finished) != total {
		t.Fatalf("events covered %d/%d started and %d/%d finished indices", len(started), total, len(finished), total)
	}
}

// TestExecutorParallelCancellation: cancelling a 4-worker run returns
// ctx.Err() promptly and leaks no worker goroutines.
func TestExecutorParallelCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	finished := 0
	eng := New(
		WithModelSource(fixtureSource(t)),
		WithExecutor(&LocalExecutor{Parallel: 4}),
		WithProgress(func(ev Event) {
			if ev.Kind == CellFinished {
				mu.Lock()
				if finished++; finished == 1 {
					cancel()
				}
				mu.Unlock()
			}
		}),
	)
	rep, err := eng.Run(ctx, tinySpec())
	if rep != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled parallel Run returned (%v, %v), want (nil, context.Canceled)", rep, err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked by cancelled parallel run: %d before, %d after", before, n)
	}
}
