package experiment

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/modelzoo"
	"repro/internal/train"
)

// fixtureZoo trains two small FFNNs once and serves them like the
// model zoo would, so engine tests never touch the real trained-model
// cache.
var fixtureZoo map[string]*modelzoo.Model

func fixtureSource(t *testing.T) func(string) (*modelzoo.Model, error) {
	t.Helper()
	if fixtureZoo == nil {
		fixtureZoo = map[string]*modelzoo.Model{}
		for i, name := range []string{"tiny-a", "tiny-b"} {
			tr := dataset.Digits(800, 71+int64(i))
			test := dataset.Digits(150, 91+int64(i))
			net := models.FFNN(28*28, 10, 73+int64(i))
			net.Name = name
			train.Fit(net, tr, train.Config{Epochs: 2, Batch: 32, LR: 0.05, Momentum: 0.9, Seed: 3})
			fixtureZoo[name] = &modelzoo.Model{Net: net, Test: test, CleanAcc: 100 * train.Accuracy(net, test, 0)}
		}
	}
	return func(name string) (*modelzoo.Model, error) {
		m, ok := fixtureZoo[name]
		if !ok {
			return nil, fmt.Errorf("fixture zoo: unknown model %q", name)
		}
		return m, nil
	}
}

func tinySpec() *Spec {
	return &Spec{
		Name:        "engine-test",
		Model:       "tiny-a",
		Multipliers: []string{"mul8u_1JFF", "mul8u_JV3"},
		Attacks:     []string{"FGM-linf", "PGD-linf"},
		Eps:         []float64{0, 0.1},
		Samples:     60,
		Seed:        5,
	}
}

// TestEngineMatchesRobustnessGrid is the acceptance criterion: one
// Run over a multi-attack spec produces grids identical — cell for
// cell and in MaxAccuracyLoss — to the per-grid core.RobustnessGrid
// path with the same options.
func TestEngineMatchesRobustnessGrid(t *testing.T) {
	src := fixtureSource(t)
	eng := New(WithModelSource(src))
	spec := tinySpec()
	rep, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Grids) != len(spec.Attacks) {
		t.Fatalf("suite produced %d grids, want %d", len(rep.Grids), len(spec.Attacks))
	}
	m, _ := src("tiny-a")
	victims, err := core.BuildAxVictims(m.Net, m.Test, spec.ExpandMultipliers(), axnnOptions(spec))
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range spec.Attacks {
		ref := core.RobustnessGrid(m.Net, victims, m.Test, attackByName(t, name), spec.Eps,
			core.Options{Samples: spec.Samples, Seed: spec.Seed, Cache: core.NewCache(core.CacheConfig{})})
		if !reflect.DeepEqual(rep.Grids[i].Acc, ref.Acc) {
			t.Fatalf("%s: engine grid diverged from RobustnessGrid:\nengine %v\nref    %v", name, rep.Grids[i].Acc, ref.Acc)
		}
		el, ev, ee := rep.Grids[i].MaxAccuracyLoss()
		rl, rv, re := ref.MaxAccuracyLoss()
		if el != rl || ev != rv || ee != re {
			t.Fatalf("%s: MaxAccuracyLoss diverged: %v/%v/%v vs %v/%v/%v", name, el, ev, ee, rl, rv, re)
		}
	}
	if len(rep.Cells) != len(spec.Attacks)*len(spec.Eps) {
		t.Fatalf("report has %d cell timings, want %d", len(rep.Cells), len(spec.Attacks)*len(spec.Eps))
	}
}

// TestEngineCleanRowSharedAcrossAttacks pins the cross-attack cache
// contract: the eps=0 clean batch is attack-independent, so the
// second attack's clean cell must be a cache hit.
func TestEngineCleanRowSharedAcrossAttacks(t *testing.T) {
	var events []Event
	eng := New(WithModelSource(fixtureSource(t)), WithProgress(func(ev Event) { events = append(events, ev) }))
	if _, err := eng.Run(context.Background(), tinySpec()); err != nil {
		t.Fatal(err)
	}
	hitAt := map[string]bool{}
	for _, ev := range events {
		if ev.Kind == CellFinished {
			hitAt[fmt.Sprintf("%s@%g", ev.Attack, ev.Eps)] = ev.CacheHit
		}
	}
	if hitAt["FGM-linf@0"] {
		t.Fatal("first attack's clean row cannot be a hit on a fresh engine")
	}
	if !hitAt["PGD-linf@0"] {
		t.Fatal("second attack's eps=0 cell must hit the shared clean batch")
	}
	if hitAt["PGD-linf@0.1"] {
		t.Fatal("distinct attacks must not share nonzero-eps cells")
	}

	// A second identical Run replays entirely from the cache.
	events = nil
	if _, err := eng.Run(context.Background(), tinySpec()); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev.Kind == CellFinished && !ev.CacheHit {
			t.Fatalf("repeated run re-crafted %s eps=%g", ev.Attack, ev.Eps)
		}
	}
}

// TestEngineCacheIsolation: two engines never observe each other's
// entries, and neither touches the shared default cache.
func TestEngineCacheIsolation(t *testing.T) {
	core.ClearCraftedCache()
	src := fixtureSource(t)
	e1 := New(WithModelSource(src))
	if _, err := e1.Run(context.Background(), tinySpec()); err != nil {
		t.Fatal(err)
	}
	if e1.Cache().CraftedLen() == 0 {
		t.Fatal("first engine cached nothing")
	}

	var events []Event
	e2 := New(WithModelSource(src), WithProgress(func(ev Event) { events = append(events, ev) }))
	if _, err := e2.Run(context.Background(), tinySpec()); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev.Kind == CellFinished && ev.CacheHit && ev.Eps != 0 {
			t.Fatalf("fresh engine hit another engine's entry at %s eps=%g", ev.Attack, ev.Eps)
		}
	}
	n1 := e1.Cache().CraftedLen()
	e2.Cache().Clear()
	if e1.Cache().CraftedLen() != n1 {
		t.Fatal("clearing one engine's cache drained the other's")
	}
	if core.CraftedCacheLen() != 0 {
		t.Fatalf("engines leaked %d entries into the shared default cache", core.CraftedCacheLen())
	}
}

// TestEngineCancellationMidSweep cancels after the first finished
// cell: Run must return ctx.Err() promptly without leaking worker
// goroutines or memoising cells it never finished.
func TestEngineCancellationMidSweep(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var finished int
	eng := New(WithModelSource(fixtureSource(t)), WithProgress(func(ev Event) {
		if ev.Kind == CellFinished {
			if finished++; finished == 1 {
				cancel()
			}
		}
	}))
	rep, err := eng.Run(ctx, tinySpec())
	if rep != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Run returned (%v, %v), want (nil, context.Canceled)", rep, err)
	}
	if finished > 2 {
		t.Fatalf("engine kept sweeping after cancellation: %d cells finished", finished)
	}
	// No goroutine leak: the crafting/evaluation workers must all have
	// exited shortly after Run returns.
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked by cancelled sweep: %d before, %d after", before, n)
	}
}

// TestEngineTransferSuite runs a victim_model spec — crafted on one
// architecture, replayed on another — and checks it against the
// direct core path.
func TestEngineTransferSuite(t *testing.T) {
	src := fixtureSource(t)
	spec := tinySpec()
	spec.VictimModel = "tiny-b"
	spec.Attacks = []string{"FGM-linf"}
	eng := New(WithModelSource(src))
	rep, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := src("tiny-a")
	b, _ := src("tiny-b")
	victims, err := core.BuildAxVictims(b.Net, b.Test, spec.ExpandMultipliers(), axnnOptions(spec))
	if err != nil {
		t.Fatal(err)
	}
	ref := core.RobustnessGrid(a.Net, victims, b.Test, attackByName(t, "FGM-linf"), spec.Eps,
		core.Options{Samples: spec.Samples, Seed: spec.Seed, Cache: core.NewCache(core.CacheConfig{})})
	if !reflect.DeepEqual(rep.Grids[0].Acc, ref.Acc) {
		t.Fatalf("transfer suite diverged from core path:\nengine %v\nref    %v", rep.Grids[0].Acc, ref.Acc)
	}
}

func TestEngineUnknownModel(t *testing.T) {
	eng := New(WithModelSource(fixtureSource(t)))
	spec := tinySpec()
	spec.Model = "no-such-model"
	if _, err := eng.Run(context.Background(), spec); err == nil {
		t.Fatal("unknown model must fail the run with an error")
	}
	spec = tinySpec()
	spec.Attacks = []string{"bogus"}
	if _, err := eng.Run(context.Background(), spec); err == nil {
		t.Fatal("invalid spec must fail the run with an error")
	}
}

// TestEngineUniversalSuite is the acceptance criterion for the
// set-level family: a UAP/MIFGSM/restarted-PGD suite runs end to end,
// the UAP perturbation is crafted once per (eps, seed) and replayed
// from the cache on repeat runs, and the Report is bit-identical
// across two fresh engines with the same seed.
func TestEngineUniversalSuite(t *testing.T) {
	spec := tinySpec()
	spec.Attacks = []string{"UAP-linf", "MIFGSM-linf", "PGD-linf"}
	spec.AttackParams = &AttackParams{Momentum: 0.9, Restarts: 2, UAPIters: 2}
	spec.Samples = 40

	var events []Event
	eng := New(WithModelSource(fixtureSource(t)), WithProgress(func(ev Event) { events = append(events, ev) }))
	rep, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Grids) != 3 {
		t.Fatalf("suite produced %d grids, want 3", len(rep.Grids))
	}
	if g, ok := rep.Grid("UAP-linf"); !ok || g.Attack != "UAP-linf" {
		t.Fatal("report is missing the UAP grid")
	}
	if g, ok := rep.Grid("PGD-linf"); !ok || g.Attack != "PGD-linf" {
		t.Fatal("restarted PGD must still sweep under its plain name")
	}

	// Repeat run on the same engine: every cell — including the
	// set-crafted UAP cells — replays from the cache.
	events = nil
	rep2, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev.Kind == CellFinished && !ev.CacheHit {
			t.Fatalf("repeated universal run re-crafted %s eps=%g", ev.Attack, ev.Eps)
		}
	}

	// A fresh engine with the same spec/seed reproduces the report's
	// numbers bit for bit.
	rep3, err := New(WithModelSource(fixtureSource(t))).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Grids {
		if !reflect.DeepEqual(rep.Grids[i].Acc, rep2.Grids[i].Acc) ||
			!reflect.DeepEqual(rep.Grids[i].Acc, rep3.Grids[i].Acc) {
			t.Fatalf("%s: universal suite not bit-identical across runs", rep.Grids[i].Attack)
		}
	}
}

// TestEngineConcurrentRunsSharedCache runs two engines over one cache
// from concurrent goroutines — the exact pattern the service worker
// pool uses (one engine per job, WithCache on the manager's shared
// cache). Under -race this pins that concurrent Runs racing on the
// same cells are safe, converge on one memoised batch, and produce
// the same numbers as an isolated run.
func TestEngineConcurrentRunsSharedCache(t *testing.T) {
	src := fixtureSource(t)
	ref, err := New(WithModelSource(src)).Run(context.Background(), tinySpec())
	if err != nil {
		t.Fatal(err)
	}

	shared := core.NewCache(core.CacheConfig{})
	const runs = 4
	reports := make([]*Report, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A fresh engine per goroutine, all sharing one cache — jobs
			// in the service never share engine structs, only the cache.
			eng := New(WithModelSource(src), WithCache(shared))
			spec := tinySpec()
			// Two distinct specs interleaved: half the runs flip the
			// attack order, so the goroutines race on shared cells rather
			// than marching in lockstep.
			if i%2 == 1 {
				spec.Attacks = []string{"PGD-linf", "FGM-linf"}
			}
			reports[i], errs[i] = eng.Run(context.Background(), spec)
		}(i)
	}
	wg.Wait()
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent run %d failed: %v", i, errs[i])
		}
		for _, name := range []string{"FGM-linf", "PGD-linf"} {
			got, ok := reports[i].Grid(name)
			if !ok {
				t.Fatalf("run %d missing grid %s", i, name)
			}
			want, _ := ref.Grid(name)
			if !reflect.DeepEqual(got.Acc, want.Acc) {
				t.Fatalf("run %d: %s grid diverged under the shared cache:\ngot  %v\nwant %v", i, name, got.Acc, want.Acc)
			}
		}
	}
	// The shared cache holds exactly one entry per distinct cell (clean
	// batch + 2 attacks at eps=0.1), however the four runs raced.
	if n := shared.CraftedLen(); n != 3 {
		t.Fatalf("shared cache holds %d crafted batches after concurrent runs, want 3", n)
	}
}

// TestEngineRejectsDuplicateAttacks pins the Report.Grid collision
// fix at the engine boundary: a spec with the same attack twice must
// fail validation instead of producing colliding grids.
func TestEngineRejectsDuplicateAttacks(t *testing.T) {
	spec := tinySpec()
	spec.Attacks = []string{"FGM-linf", "FGM-linf"}
	if _, err := New(WithModelSource(fixtureSource(t))).Run(context.Background(), spec); err == nil {
		t.Fatal("duplicate attacks must fail the run")
	}
}
