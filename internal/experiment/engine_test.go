package experiment

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/models"
	"repro/internal/modelzoo"
	"repro/internal/train"
)

// fixtureZoo trains two small FFNNs once and serves them like the
// model zoo would, so engine tests never touch the real trained-model
// cache.
var (
	fixtureZoo map[string]*modelzoo.Model
	// fixtureMu guards fixtureZoo across every source closure — the
	// map is package-shared, so the lock must be too.
	fixtureMu sync.Mutex
)

func fixtureSource(t *testing.T) func(context.Context, string) (*modelzoo.Model, error) {
	t.Helper()
	fixtureMu.Lock()
	if fixtureZoo == nil {
		fixtureZoo = map[string]*modelzoo.Model{}
		for i, name := range []string{"tiny-a", "tiny-b"} {
			tr := dataset.Digits(800, 71+int64(i))
			test := dataset.Digits(150, 91+int64(i))
			net := models.FFNN(28*28, 10, 73+int64(i))
			net.Name = name
			train.Fit(net, tr, train.Config{Epochs: 2, Batch: 32, LR: 0.05, Momentum: 0.9, Seed: 3})
			fixtureZoo[name] = &modelzoo.Model{Net: net, Train: tr, Test: test, CleanAcc: 100 * train.Accuracy(net, test, 0)}
		}
	}
	fixtureMu.Unlock()
	return func(ctx context.Context, name string) (*modelzoo.Model, error) {
		fixtureMu.Lock()
		defer fixtureMu.Unlock()
		if m, ok := fixtureZoo[name]; ok {
			return m, nil
		}
		// Hardened derived ids resolve against the fixture zoo the way
		// the real zoo's defense deriver resolves against entries —
		// trained on demand, memoised, single worker for bit stability.
		if defense.IsHardenedID(name) {
			base, cfg, err := defense.ParseHardenedID(name)
			if err != nil {
				return nil, err
			}
			bm, ok := fixtureZoo[base]
			if !ok {
				return nil, fmt.Errorf("fixture zoo: unknown base model %q", base)
			}
			cfg.Workers = 1
			m, err := defense.Harden(ctx, bm, cfg)
			if err != nil {
				return nil, err
			}
			fixtureZoo[name] = m
			return m, nil
		}
		return nil, fmt.Errorf("fixture zoo: unknown model %q", name)
	}
}

func tinySpec() *Spec {
	return &Spec{
		Name:        "engine-test",
		Model:       "tiny-a",
		Multipliers: []string{"mul8u_1JFF", "mul8u_JV3"},
		Attacks:     []string{"FGM-linf", "PGD-linf"},
		Eps:         []float64{0, 0.1},
		Samples:     60,
		Seed:        5,
	}
}

// TestEngineMatchesRobustnessGrid is the acceptance criterion: one
// Run over a multi-attack spec produces grids identical — cell for
// cell and in MaxAccuracyLoss — to the per-grid core.RobustnessGrid
// path with the same options.
func TestEngineMatchesRobustnessGrid(t *testing.T) {
	src := fixtureSource(t)
	eng := New(WithModelSource(src))
	spec := tinySpec()
	rep, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Grids) != len(spec.Attacks) {
		t.Fatalf("suite produced %d grids, want %d", len(rep.Grids), len(spec.Attacks))
	}
	m, _ := src(context.Background(), "tiny-a")
	victims, err := core.BuildAxVictims(m.Net, m.Test, spec.ExpandMultipliers(), axnnOptions(spec))
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range spec.Attacks {
		ref := core.RobustnessGrid(m.Net, victims, m.Test, attackByName(t, name), spec.Eps,
			core.Options{Samples: spec.Samples, Seed: spec.Seed, Cache: core.NewCache(core.CacheConfig{})})
		if !reflect.DeepEqual(rep.Grids[i].Acc, ref.Acc) {
			t.Fatalf("%s: engine grid diverged from RobustnessGrid:\nengine %v\nref    %v", name, rep.Grids[i].Acc, ref.Acc)
		}
		el, ev, ee := rep.Grids[i].MaxAccuracyLoss()
		rl, rv, re := ref.MaxAccuracyLoss()
		if el != rl || ev != rv || ee != re {
			t.Fatalf("%s: MaxAccuracyLoss diverged: %v/%v/%v vs %v/%v/%v", name, el, ev, ee, rl, rv, re)
		}
	}
	if len(rep.Cells) != len(spec.Attacks)*len(spec.Eps) {
		t.Fatalf("report has %d cell timings, want %d", len(rep.Cells), len(spec.Attacks)*len(spec.Eps))
	}
}

// TestEngineCleanRowSharedAcrossAttacks pins the cross-attack cache
// contract: the eps=0 clean batch is attack-independent, so the
// second attack's clean cell must be a cache hit.
func TestEngineCleanRowSharedAcrossAttacks(t *testing.T) {
	var events []Event
	eng := New(WithModelSource(fixtureSource(t)), WithProgress(func(ev Event) { events = append(events, ev) }))
	if _, err := eng.Run(context.Background(), tinySpec()); err != nil {
		t.Fatal(err)
	}
	hitAt := map[string]bool{}
	for _, ev := range events {
		if ev.Kind == CellFinished {
			hitAt[fmt.Sprintf("%s@%g", ev.Attack, ev.Eps)] = ev.CacheHit
		}
	}
	if hitAt["FGM-linf@0"] {
		t.Fatal("first attack's clean row cannot be a hit on a fresh engine")
	}
	if !hitAt["PGD-linf@0"] {
		t.Fatal("second attack's eps=0 cell must hit the shared clean batch")
	}
	if hitAt["PGD-linf@0.1"] {
		t.Fatal("distinct attacks must not share nonzero-eps cells")
	}

	// A second identical Run replays entirely from the cache.
	events = nil
	if _, err := eng.Run(context.Background(), tinySpec()); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev.Kind == CellFinished && !ev.CacheHit {
			t.Fatalf("repeated run re-crafted %s eps=%g", ev.Attack, ev.Eps)
		}
	}
}

// TestEngineCacheIsolation: two engines never observe each other's
// entries, and neither touches the shared default cache.
func TestEngineCacheIsolation(t *testing.T) {
	core.ClearCraftedCache()
	src := fixtureSource(t)
	e1 := New(WithModelSource(src))
	if _, err := e1.Run(context.Background(), tinySpec()); err != nil {
		t.Fatal(err)
	}
	if e1.Cache().CraftedLen() == 0 {
		t.Fatal("first engine cached nothing")
	}

	var events []Event
	e2 := New(WithModelSource(src), WithProgress(func(ev Event) { events = append(events, ev) }))
	if _, err := e2.Run(context.Background(), tinySpec()); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev.Kind == CellFinished && ev.CacheHit && ev.Eps != 0 {
			t.Fatalf("fresh engine hit another engine's entry at %s eps=%g", ev.Attack, ev.Eps)
		}
	}
	n1 := e1.Cache().CraftedLen()
	e2.Cache().Clear()
	if e1.Cache().CraftedLen() != n1 {
		t.Fatal("clearing one engine's cache drained the other's")
	}
	if core.CraftedCacheLen() != 0 {
		t.Fatalf("engines leaked %d entries into the shared default cache", core.CraftedCacheLen())
	}
}

// TestEngineCancellationMidSweep cancels after the first finished
// cell: Run must return ctx.Err() promptly without leaking worker
// goroutines or memoising cells it never finished.
func TestEngineCancellationMidSweep(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var finished int
	eng := New(WithModelSource(fixtureSource(t)), WithProgress(func(ev Event) {
		if ev.Kind == CellFinished {
			if finished++; finished == 1 {
				cancel()
			}
		}
	}))
	rep, err := eng.Run(ctx, tinySpec())
	if rep != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Run returned (%v, %v), want (nil, context.Canceled)", rep, err)
	}
	if finished > 2 {
		t.Fatalf("engine kept sweeping after cancellation: %d cells finished", finished)
	}
	// No goroutine leak: the crafting/evaluation workers must all have
	// exited shortly after Run returns.
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked by cancelled sweep: %d before, %d after", before, n)
	}
}

// TestEngineTransferSuite runs a victim_model spec — crafted on one
// architecture, replayed on another — and checks it against the
// direct core path.
func TestEngineTransferSuite(t *testing.T) {
	src := fixtureSource(t)
	spec := tinySpec()
	spec.VictimModel = "tiny-b"
	spec.Attacks = []string{"FGM-linf"}
	eng := New(WithModelSource(src))
	rep, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := src(context.Background(), "tiny-a")
	b, _ := src(context.Background(), "tiny-b")
	victims, err := core.BuildAxVictims(b.Net, b.Test, spec.ExpandMultipliers(), axnnOptions(spec))
	if err != nil {
		t.Fatal(err)
	}
	ref := core.RobustnessGrid(a.Net, victims, b.Test, attackByName(t, "FGM-linf"), spec.Eps,
		core.Options{Samples: spec.Samples, Seed: spec.Seed, Cache: core.NewCache(core.CacheConfig{})})
	if !reflect.DeepEqual(rep.Grids[0].Acc, ref.Acc) {
		t.Fatalf("transfer suite diverged from core path:\nengine %v\nref    %v", rep.Grids[0].Acc, ref.Acc)
	}
}

func TestEngineUnknownModel(t *testing.T) {
	eng := New(WithModelSource(fixtureSource(t)))
	spec := tinySpec()
	spec.Model = "no-such-model"
	if _, err := eng.Run(context.Background(), spec); err == nil {
		t.Fatal("unknown model must fail the run with an error")
	}
	spec = tinySpec()
	spec.Attacks = []string{"bogus"}
	if _, err := eng.Run(context.Background(), spec); err == nil {
		t.Fatal("invalid spec must fail the run with an error")
	}
}

// TestEngineUniversalSuite is the acceptance criterion for the
// set-level family: a UAP/MIFGSM/restarted-PGD suite runs end to end,
// the UAP perturbation is crafted once per (eps, seed) and replayed
// from the cache on repeat runs, and the Report is bit-identical
// across two fresh engines with the same seed.
func TestEngineUniversalSuite(t *testing.T) {
	spec := tinySpec()
	spec.Attacks = []string{"UAP-linf", "MIFGSM-linf", "PGD-linf"}
	spec.AttackParams = &AttackParams{Momentum: 0.9, Restarts: 2, UAPIters: 2}
	spec.Samples = 40

	var events []Event
	eng := New(WithModelSource(fixtureSource(t)), WithProgress(func(ev Event) { events = append(events, ev) }))
	rep, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Grids) != 3 {
		t.Fatalf("suite produced %d grids, want 3", len(rep.Grids))
	}
	if g, ok := rep.Grid("UAP-linf"); !ok || g.Attack != "UAP-linf" {
		t.Fatal("report is missing the UAP grid")
	}
	if g, ok := rep.Grid("PGD-linf"); !ok || g.Attack != "PGD-linf" {
		t.Fatal("restarted PGD must still sweep under its plain name")
	}

	// Repeat run on the same engine: every cell — including the
	// set-crafted UAP cells — replays from the cache.
	events = nil
	rep2, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev.Kind == CellFinished && !ev.CacheHit {
			t.Fatalf("repeated universal run re-crafted %s eps=%g", ev.Attack, ev.Eps)
		}
	}

	// A fresh engine with the same spec/seed reproduces the report's
	// numbers bit for bit.
	rep3, err := New(WithModelSource(fixtureSource(t))).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Grids {
		if !reflect.DeepEqual(rep.Grids[i].Acc, rep2.Grids[i].Acc) ||
			!reflect.DeepEqual(rep.Grids[i].Acc, rep3.Grids[i].Acc) {
			t.Fatalf("%s: universal suite not bit-identical across runs", rep.Grids[i].Attack)
		}
	}
}

// TestEngineConcurrentRunsSharedCache runs two engines over one cache
// from concurrent goroutines — the exact pattern the service worker
// pool uses (one engine per job, WithCache on the manager's shared
// cache). Under -race this pins that concurrent Runs racing on the
// same cells are safe, converge on one memoised batch, and produce
// the same numbers as an isolated run.
func TestEngineConcurrentRunsSharedCache(t *testing.T) {
	src := fixtureSource(t)
	ref, err := New(WithModelSource(src)).Run(context.Background(), tinySpec())
	if err != nil {
		t.Fatal(err)
	}

	shared := core.NewCache(core.CacheConfig{})
	const runs = 4
	reports := make([]*Report, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A fresh engine per goroutine, all sharing one cache — jobs
			// in the service never share engine structs, only the cache.
			eng := New(WithModelSource(src), WithCache(shared))
			spec := tinySpec()
			// Two distinct specs interleaved: half the runs flip the
			// attack order, so the goroutines race on shared cells rather
			// than marching in lockstep.
			if i%2 == 1 {
				spec.Attacks = []string{"PGD-linf", "FGM-linf"}
			}
			reports[i], errs[i] = eng.Run(context.Background(), spec)
		}(i)
	}
	wg.Wait()
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent run %d failed: %v", i, errs[i])
		}
		for _, name := range []string{"FGM-linf", "PGD-linf"} {
			got, ok := reports[i].Grid(name)
			if !ok {
				t.Fatalf("run %d missing grid %s", i, name)
			}
			want, _ := ref.Grid(name)
			if !reflect.DeepEqual(got.Acc, want.Acc) {
				t.Fatalf("run %d: %s grid diverged under the shared cache:\ngot  %v\nwant %v", i, name, got.Acc, want.Acc)
			}
		}
	}
	// The shared cache holds exactly one entry per distinct cell (clean
	// batch + 2 attacks at eps=0.1), however the four runs raced.
	if n := shared.CraftedLen(); n != 3 {
		t.Fatalf("shared cache holds %d crafted batches after concurrent runs, want 3", n)
	}
}

// TestEngineRejectsDuplicateAttacks pins the Report.Grid collision
// fix at the engine boundary: a spec with the same attack twice must
// fail validation instead of producing colliding grids.
func TestEngineRejectsDuplicateAttacks(t *testing.T) {
	spec := tinySpec()
	spec.Attacks = []string{"FGM-linf", "FGM-linf"}
	if _, err := New(WithModelSource(fixtureSource(t))).Run(context.Background(), spec); err == nil {
		t.Fatal("duplicate attacks must fail the run")
	}
}

func defenseSpec() *Spec {
	return &Spec{
		Name:  "defense-test",
		Model: "tiny-a",
		// The fixture FFNNs have no conv layers, so the approximate
		// multipliers only bite through the dense path.
		ApproxDense: true,
		Multipliers: []string{"mul8u_1JFF", "mul8u_JV3"},
		Attacks:     []string{"PGD-linf", "FGM-linf"},
		Eps:         []float64{0, 0.05, 0.1},
		Samples:     60,
		Seed:        5,
		Defense: &DefenseSpec{
			Kind:       "advtrain,ensemble",
			Attack:     "PGD-linf",
			Eps:        0.1,
			Ratio:      0.5,
			Epochs:     1,
			Pool:       []string{"mul8u_1JFF", "mul8u_JV3", "mul8u_L40"},
			EOTSamples: 4,
		},
	}
}

// TestEngineDefenseSuite is the acceptance criterion for the defense
// subsystem: one spec runs an adversarially trained model AND a
// randomized-approximation ensemble as victim rows of the same
// Report, the adaptive EOT grid rides alongside the declared attacks,
// and EOT measurably lowers the ensemble's apparent robustness
// compared with plain PGD on the same seed — the honest-evaluation
// property (everything is seeded, so these comparisons are exact, not
// statistical).
func TestEngineDefenseSuite(t *testing.T) {
	spec := defenseSpec()
	var events []Event
	eng := New(WithModelSource(fixtureSource(t)), WithProgress(func(ev Event) { events = append(events, ev) }))
	rep, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Grids) != 3 {
		t.Fatalf("defended suite produced %d grids, want attacks + EOT = 3", len(rep.Grids))
	}
	eot, ok := rep.Grid("EOT-PGD-linf")
	if !ok {
		t.Fatal("report is missing the adaptive EOT grid")
	}
	pgd, _ := rep.Grid("PGD-linf")
	advName := spec.Defense.AdvTrainVictimName()
	for _, g := range rep.Grids {
		for _, name := range []string{advName, "ensemble[3]"} {
			if _, ok := g.Column(name); !ok {
				t.Fatalf("grid %s is missing defense victim %q (victims %v)", g.Attack, name, g.Victims)
			}
		}
	}

	// The adversarially trained victim must out-rank every undefended
	// victim at the training budget under the attack it trained
	// against — otherwise the defense did nothing.
	const trainEps = 0.1
	advRob, _ := pgd.At(trainEps, advName)
	for _, name := range spec.ExpandMultipliers() {
		if r, _ := pgd.At(trainEps, name); advRob <= r {
			t.Fatalf("advtrain robustness %.1f%% not above undefended %s (%.1f%%) at eps=%g", advRob, name, r, trainEps)
		}
	}

	// Honest evaluation: the ensemble's EOT robustness is never above
	// its plain-PGD robustness, and strictly below at some budget —
	// plain PGD overstates the randomized defense.
	ensPGD, _ := pgd.Column("ensemble[3]")
	ensEOT, _ := eot.Column("ensemble[3]")
	strictly := false
	for ei, e := range pgd.Eps {
		if e == 0 {
			if ensEOT[ei] != ensPGD[ei] {
				t.Fatal("clean row must be identical across grids")
			}
			continue
		}
		if ensEOT[ei] > ensPGD[ei] {
			t.Fatalf("EOT raised apparent robustness at eps=%g: %.1f%% > %.1f%%", e, ensEOT[ei], ensPGD[ei])
		}
		if ensEOT[ei] < ensPGD[ei] {
			strictly = true
		}
	}
	if !strictly {
		t.Fatalf("EOT did not measurably lower the ensemble's robustness anywhere: PGD %v vs EOT %v", ensPGD, ensEOT)
	}

	// The progress plan covers attacks + EOT, matching Spec.CellCount.
	finished := 0
	for _, ev := range events {
		if ev.Kind == CellFinished {
			finished++
			if ev.Cells != spec.CellCount() {
				t.Fatalf("event advertises %d cells, want CellCount %d", ev.Cells, spec.CellCount())
			}
		}
	}
	if finished != spec.CellCount() {
		t.Fatalf("finished %d cells, want %d", finished, spec.CellCount())
	}

	// Bit-identical across a fresh engine with the same seed: the
	// defense stack (hardening, ensemble draws, EOT sampling) inherits
	// the repo's determinism contract.
	rep2, err := New(WithModelSource(fixtureSource(t))).Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Grids {
		if !reflect.DeepEqual(rep.Grids[i].Acc, rep2.Grids[i].Acc) {
			t.Fatalf("%s: defended suite not bit-identical across engines", rep.Grids[i].Attack)
		}
	}
}

// TestEngineDefenseCacheIsolation is the cross-run cache-collision
// test: defended and undefended suites sharing one engine (and so one
// cache) must neither pollute each other's cells nor share the
// adaptive grid's crafted batches with plain PGD's.
func TestEngineDefenseCacheIsolation(t *testing.T) {
	src := fixtureSource(t)
	undefended := defenseSpec()
	undefended.Defense = nil

	ref, err := New(WithModelSource(src)).Run(context.Background(), undefended)
	if err != nil {
		t.Fatal(err)
	}

	var events []Event
	shared := New(WithModelSource(src), WithProgress(func(ev Event) { events = append(events, ev) }))
	defended, err := shared.Run(context.Background(), defenseSpec())
	if err != nil {
		t.Fatal(err)
	}
	// The EOT grid's nonzero cells must be crafted fresh — a cache
	// collision with the PGD cells (same source, eps, seed, sample
	// count) would serve PGD's batches under the EOT name.
	for _, ev := range events {
		if ev.Kind == CellFinished && ev.Attack == "EOT-PGD-linf" && ev.Eps != 0 && ev.CacheHit {
			t.Fatalf("EOT cell at eps=%g served from another attack's cache entry", ev.Eps)
		}
	}
	eot, _ := defended.Grid("EOT-PGD-linf")
	pgd, _ := defended.Grid("PGD-linf")
	if reflect.DeepEqual(eot.Acc, pgd.Acc) {
		t.Fatal("EOT grid identical to PGD grid — crafted batches collided")
	}

	// Re-running the undefended suite on the same engine after the
	// defended one reproduces the reference exactly: defense entries
	// never leak into undefended cells.
	events = nil
	again, err := shared.Run(context.Background(), undefended)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Grids {
		if !reflect.DeepEqual(again.Grids[i].Acc, ref.Grids[i].Acc) {
			t.Fatalf("%s: undefended grid changed after a defended run shared the cache", ref.Grids[i].Attack)
		}
	}
	// ... and the shared (source, attack, eps, seed) cells deduplicate
	// across the defended and undefended runs — that reuse is correct
	// because the crafted batch does not depend on the victim list.
	for _, ev := range events {
		if ev.Kind == CellFinished && !ev.CacheHit {
			t.Fatalf("undefended re-run re-crafted %s eps=%g despite the shared cache", ev.Attack, ev.Eps)
		}
	}
}

// TestEngineDefenseUnknownPieces: defense blocks that reference
// unresolvable pieces fail the run with an error.
func TestEngineDefenseUnknownPieces(t *testing.T) {
	spec := defenseSpec()
	spec.Defense.Pool = []string{"mul8u_NOPE"}
	if _, err := New(WithModelSource(fixtureSource(t))).Run(context.Background(), spec); err == nil {
		t.Fatal("unknown ensemble pool multiplier must fail the run")
	}
	spec = defenseSpec()
	spec.Defense.Attack = "DeepFool"
	if _, err := New(WithModelSource(fixtureSource(t))).Run(context.Background(), spec); err == nil {
		t.Fatal("unknown advtrain attack must fail the run")
	}
}

// TestEngineDefenseCancellationDuringHardening: a cancelled run
// context must reach hardened-model training (the model source is
// ctx-aware), not let it run to completion — the axserve
// cancel-while-training path.
func TestEngineDefenseCancellationDuringHardening(t *testing.T) {
	spec := defenseSpec()
	// A config no other test uses, so the fixture zoo cannot serve a
	// memoised hardened model and Run must actually train.
	spec.Defense.Eps = 0.07
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := New(WithModelSource(fixtureSource(t))).Run(ctx, spec)
	if rep != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled defended Run returned (%v, %v), want (nil, context.Canceled)", rep, err)
	}
}

// TestEngineEnsemblePredictionsMemoisedAcrossRuns: a fresh Ensemble is
// built per Run, but its behaviour is fully determined by its config
// key, so the second Run's ensemble column must be served from the
// prediction memo (core.ModelKeyer) instead of re-scoring 9 members
// per cell.
func TestEngineEnsemblePredictionsMemoisedAcrossRuns(t *testing.T) {
	spec := defenseSpec()
	spec.Defense.Kind = "ensemble" // no advtrain: keep the run light
	spec.Defense.Attack, spec.Defense.Eps, spec.Defense.Ratio, spec.Defense.Epochs = "", 0, 0, 0
	eng := New(WithModelSource(fixtureSource(t)))
	rep1, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	s1 := eng.Cache().Stats()
	rep2, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	s2 := eng.Cache().Stats()
	// Every cell's ensemble prediction hits; the rebuilt multiplier
	// victims (fresh pointers) may miss, but the ensemble must not.
	if hits := s2.PredHits - s1.PredHits; hits < int64(spec.CellCount()) {
		t.Fatalf("second run scored only %d prediction hits, want >= %d (ensemble column memoised)", hits, spec.CellCount())
	}
	for i := range rep1.Grids {
		if !reflect.DeepEqual(rep1.Grids[i].Acc, rep2.Grids[i].Acc) {
			t.Fatalf("%s: memoised ensemble run diverged", rep1.Grids[i].Attack)
		}
	}
}
