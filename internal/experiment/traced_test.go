package experiment

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/obs"
)

// TestTracedRunByteIdentical is the tracing layer's contract: spans
// and histograms observe the pipeline without perturbing it, so a
// traced run's CSV bytes (and normalized JSON) equal an untraced
// run's, while the recorder actually captured the span tree.
func TestTracedRunByteIdentical(t *testing.T) {
	untraced := runWithExecutor(t, &LocalExecutor{Parallel: 2}, nil)

	rec := obs.NewRecorder(obs.DefaultSpanCap)
	ctx := obs.WithRecorder(context.Background(), rec)
	sctx, suite := obs.Start(ctx, "suite")
	eng := New(WithModelSource(fixtureSource(t)), WithExecutor(&LocalExecutor{Parallel: 2}))
	traced, err := eng.Run(sctx, tinySpec())
	suite.End()
	if err != nil {
		t.Fatal(err)
	}

	var a, b bytes.Buffer
	if err := untraced.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := traced.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("traced CSV diverged:\n--- untraced ---\n%s--- traced ---\n%s", a.Bytes(), b.Bytes())
	}

	normalizeTimings(untraced)
	normalizeTimings(traced)
	a.Reset()
	b.Reset()
	if err := untraced.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := traced.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("traced normalized JSON diverged:\n--- untraced ---\n%s--- traced ---\n%s", a.Bytes(), b.Bytes())
	}

	// The trace really recorded the pipeline: a suite root, the bind
	// phase, per-grid and per-cell spans, and craft work under cells.
	spans := rec.Spans()
	byName := map[string][]obs.Span{}
	byID := map[string]obs.Span{}
	for _, sp := range spans {
		byName[sp.Name] = append(byName[sp.Name], sp)
		byID[sp.ID] = sp
	}
	spec := tinySpec()
	if got := len(byName["suite"]); got != 1 {
		t.Fatalf("recorded %d suite spans, want 1", got)
	}
	if got := len(byName["grid"]); got != len(spec.Attacks) {
		t.Errorf("recorded %d grid spans, want %d", got, len(spec.Attacks))
	}
	if got := len(byName["cell"]); got != spec.CellCount() {
		t.Errorf("recorded %d cell spans, want %d", got, spec.CellCount())
	}
	if len(byName["craft"]) == 0 {
		t.Error("no craft spans recorded")
	}
	if len(byName["bind"]) != 1 {
		t.Errorf("recorded %d bind spans, want 1", len(byName["bind"]))
	}
	suiteID := byName["suite"][0].ID
	for _, g := range byName["grid"] {
		if g.Parent != suiteID {
			t.Errorf("grid span parent = %q, want suite %q", g.Parent, suiteID)
		}
	}
	for _, c := range byName["cell"] {
		if byID[c.Parent].Name != "grid" {
			t.Errorf("cell span parented under %q, want a grid span", byID[c.Parent].Name)
		}
	}
	for _, cr := range byName["craft"] {
		if byID[cr.Parent].Name != "cell" {
			t.Errorf("craft span parented under %q, want a cell span", byID[cr.Parent].Name)
		}
	}
	if rec.Dropped() != 0 {
		t.Errorf("ring dropped %d spans on a tiny suite", rec.Dropped())
	}
}
