package experiment

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// updateGolden regenerates the checked-in wire-format fixtures from
// the in-memory sample report: go test ./internal/experiment -update
var updateGolden = flag.Bool("update", false, "rewrite golden fixtures")

func sampleReport() *Report {
	return &Report{
		Spec:     *validSpec(),
		CleanAcc: 97.5,
		Grids: []*core.Grid{
			{
				Attack:  "FGM-linf",
				Dataset: "digits",
				Eps:     []float64{0, 0.1},
				Victims: []string{"mul8u_1JFF", "mul8u_JV3"},
				Acc:     [][]float64{{95, 90}, {70, 40}},
			},
			{
				Attack:  "PGD-linf",
				Dataset: "digits",
				Eps:     []float64{0, 0.1},
				Victims: []string{"mul8u_1JFF", "mul8u_JV3"},
				Acc:     [][]float64{{95, 90}, {30, 20}},
			},
		},
		Cells: []CellTiming{
			{Attack: "FGM-linf", Eps: 0, CacheHit: false, ElapsedMS: 1.5},
			{Attack: "FGM-linf", Eps: 0.1, CacheHit: false, ElapsedMS: 12},
			{Attack: "PGD-linf", Eps: 0, CacheHit: true, ElapsedMS: 0.2},
			{Attack: "PGD-linf", Eps: 0.1, CacheHit: false, ElapsedMS: 30},
		},
	}
}

func TestReportMaxAccuracyLoss(t *testing.T) {
	loss, atk, victim, eps := sampleReport().MaxAccuracyLoss()
	// Suite-wide max: PGD drops mul8u_JV3 from 90 to 20.
	if loss != 70 || atk != "PGD-linf" || victim != "mul8u_JV3" || eps != 0.1 {
		t.Fatalf("MaxAccuracyLoss = %v %q %q %v", loss, atk, victim, eps)
	}
}

func TestReportGridLookup(t *testing.T) {
	r := sampleReport()
	if g, ok := r.Grid("PGD-linf"); !ok || g.Attack != "PGD-linf" {
		t.Fatalf("Grid(PGD-linf) = %v, %v", g, ok)
	}
	if _, ok := r.Grid("CR-l2"); ok {
		t.Fatal("absent attack must report !ok")
	}
}

func TestReportCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleReport().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header + 2 grids x 2 eps x 2 victims.
	if len(lines) != 1+8 {
		t.Fatalf("CSV has %d lines:\n%s", len(lines), buf.String())
	}
	if lines[0] != "attack,dataset,eps,victim,robustness_pct" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if lines[4] != "FGM-linf,digits,0.1,mul8u_JV3,40" {
		t.Fatalf("CSV row 4 = %q", lines[4])
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := sampleReport()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Spec.Model != r.Spec.Model || back.CleanAcc != r.CleanAcc {
		t.Fatalf("round-trip lost spec/clean acc: %+v", back)
	}
	if len(back.Grids) != 2 || back.Grids[1].Acc[1][1] != 20 {
		t.Fatalf("round-trip lost grid data: %+v", back.Grids)
	}
	if len(back.Cells) != 4 || !back.Cells[2].CacheHit {
		t.Fatalf("round-trip lost cell timings: %+v", back.Cells)
	}
}

// TestReportGoldenRoundTrip pins the report wire format: the
// checked-in fixture must decode through ReadReport and re-encode
// byte for byte through WriteJSON, so remote clients (ReadReport) and
// the server's report endpoint (WriteJSON) can never drift apart
// silently.
func TestReportGoldenRoundTrip(t *testing.T) {
	golden := filepath.Join("testdata", "report_golden.json")
	if *updateGolden {
		var buf bytes.Buffer
		if err := sampleReport().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReadReport(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Spec.Model != "lenet5-digits" || rep.CleanAcc != 97.5 || len(rep.Grids) != 2 {
		t.Fatalf("golden report decoded wrong: %+v", rep)
	}
	if loss, atk, _, _ := rep.MaxAccuracyLoss(); loss != 70 || atk != "PGD-linf" {
		t.Fatalf("golden report lost grid data: loss=%v attack=%q", loss, atk)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatalf("golden fixture does not round-trip byte for byte:\n--- file ---\n%s--- re-encoded ---\n%s", data, buf.Bytes())
	}
}

// TestReportReencodeByteIdentical pins the stability property the
// service's write-ahead log leans on: any report, awkward floats
// included, decodes through ReadReport and re-encodes through
// WriteJSON / WriteCSV byte for byte. That is what lets a restarted
// server re-serve a persisted report identically to the process that
// computed it (Go's shortest-representation float encoding is exact
// over a decode/encode cycle).
func TestReportReencodeByteIdentical(t *testing.T) {
	r := sampleReport()
	r.CleanAcc = 100.0 / 3.0
	r.Grids[0].Acc[1][0] = 200.0 / 3.0
	r.Grids[0].Eps[1] = 0.30000000000000004 // 3*0.1: classic non-representable sum
	r.Cells[1].ElapsedMS = 12.000000000000002

	var first bytes.Buffer
	if err := r.WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := back.WriteJSON(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("JSON re-encode drifted:\n--- first ---\n%s--- second ---\n%s", first.Bytes(), second.Bytes())
	}
	var csvA, csvB bytes.Buffer
	if err := r.WriteCSV(&csvA); err != nil {
		t.Fatal(err)
	}
	if err := back.WriteCSV(&csvB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csvA.Bytes(), csvB.Bytes()) {
		t.Fatalf("CSV re-encode drifted:\n--- first ---\n%s--- second ---\n%s", csvA.Bytes(), csvB.Bytes())
	}
}

func TestReadReportRejectsGarbage(t *testing.T) {
	if _, err := ReadReport(strings.NewReader("{")); err == nil {
		t.Fatal("truncated JSON must fail")
	}
	if _, err := ReadReport(strings.NewReader(`{"spec":{},"clean_acc":1,"grids":[]}`)); err == nil {
		t.Fatal("a report with no grids must fail")
	}
}

func TestReportString(t *testing.T) {
	s := sampleReport().String()
	if !strings.Contains(s, "FGM-linf") || !strings.Contains(s, "PGD-linf") {
		t.Fatalf("report text missing grids:\n%s", s)
	}
	if !strings.Contains(s, "max accuracy loss: 70%") {
		t.Fatalf("report text missing suite headline:\n%s", s)
	}
}
