package experiment

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
)

func sampleReport() *Report {
	return &Report{
		Spec:     *validSpec(),
		CleanAcc: 97.5,
		Grids: []*core.Grid{
			{
				Attack:  "FGM-linf",
				Dataset: "digits",
				Eps:     []float64{0, 0.1},
				Victims: []string{"mul8u_1JFF", "mul8u_JV3"},
				Acc:     [][]float64{{95, 90}, {70, 40}},
			},
			{
				Attack:  "PGD-linf",
				Dataset: "digits",
				Eps:     []float64{0, 0.1},
				Victims: []string{"mul8u_1JFF", "mul8u_JV3"},
				Acc:     [][]float64{{95, 90}, {30, 20}},
			},
		},
		Cells: []CellTiming{
			{Attack: "FGM-linf", Eps: 0, CacheHit: false, ElapsedMS: 1.5},
			{Attack: "FGM-linf", Eps: 0.1, CacheHit: false, ElapsedMS: 12},
			{Attack: "PGD-linf", Eps: 0, CacheHit: true, ElapsedMS: 0.2},
			{Attack: "PGD-linf", Eps: 0.1, CacheHit: false, ElapsedMS: 30},
		},
	}
}

func TestReportMaxAccuracyLoss(t *testing.T) {
	loss, atk, victim, eps := sampleReport().MaxAccuracyLoss()
	// Suite-wide max: PGD drops mul8u_JV3 from 90 to 20.
	if loss != 70 || atk != "PGD-linf" || victim != "mul8u_JV3" || eps != 0.1 {
		t.Fatalf("MaxAccuracyLoss = %v %q %q %v", loss, atk, victim, eps)
	}
}

func TestReportGridLookup(t *testing.T) {
	r := sampleReport()
	if g, ok := r.Grid("PGD-linf"); !ok || g.Attack != "PGD-linf" {
		t.Fatalf("Grid(PGD-linf) = %v, %v", g, ok)
	}
	if _, ok := r.Grid("CR-l2"); ok {
		t.Fatal("absent attack must report !ok")
	}
}

func TestReportCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleReport().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header + 2 grids x 2 eps x 2 victims.
	if len(lines) != 1+8 {
		t.Fatalf("CSV has %d lines:\n%s", len(lines), buf.String())
	}
	if lines[0] != "attack,dataset,eps,victim,robustness_pct" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if lines[4] != "FGM-linf,digits,0.1,mul8u_JV3,40" {
		t.Fatalf("CSV row 4 = %q", lines[4])
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := sampleReport()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Spec.Model != r.Spec.Model || back.CleanAcc != r.CleanAcc {
		t.Fatalf("round-trip lost spec/clean acc: %+v", back)
	}
	if len(back.Grids) != 2 || back.Grids[1].Acc[1][1] != 20 {
		t.Fatalf("round-trip lost grid data: %+v", back.Grids)
	}
	if len(back.Cells) != 4 || !back.Cells[2].CacheHit {
		t.Fatalf("round-trip lost cell timings: %+v", back.Cells)
	}
}

func TestReportString(t *testing.T) {
	s := sampleReport().String()
	if !strings.Contains(s, "FGM-linf") || !strings.Contains(s, "PGD-linf") {
		t.Fatalf("report text missing grids:\n%s", s)
	}
	if !strings.Contains(s, "max accuracy loss: 70%") {
		t.Fatalf("report text missing suite headline:\n%s", s)
	}
}
