package experiment

import (
	"strings"
	"testing"
)

func TestProgressRendersCells(t *testing.T) {
	var b strings.Builder
	fn := Progress(&b)
	fn(Event{Kind: CellStarted, Attack: "BIM-linf", Eps: 0.1, Cell: 1, Cells: 4})
	fn(Event{Kind: CacheMiss, Attack: "BIM-linf", Eps: 0.1, Cell: 1, Cells: 4})
	fn(Event{Kind: CellFinished, Attack: "BIM-linf", Eps: 0.1, Cell: 1, Cells: 4, CacheHit: true})
	out := b.String()
	if !strings.Contains(out, "[1/4] BIM-linf eps=0.1") {
		t.Fatalf("progress output = %q", out)
	}
	if !strings.Contains(out, "(cached)") {
		t.Fatalf("cache hit not rendered: %q", out)
	}
	if strings.Contains(out, "cache-miss") {
		t.Fatalf("cache events must not spam the progress stream: %q", out)
	}
}
