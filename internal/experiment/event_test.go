package experiment

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestProgressRendersCells(t *testing.T) {
	var b strings.Builder
	fn := Progress(&b)
	fn(Event{Kind: CellStarted, Attack: "BIM-linf", Eps: 0.1, Cell: 1, Cells: 4})
	fn(Event{Kind: CacheMiss, Attack: "BIM-linf", Eps: 0.1, Cell: 1, Cells: 4})
	fn(Event{Kind: CellFinished, Attack: "BIM-linf", Eps: 0.1, Cell: 1, Cells: 4, CacheHit: true})
	out := b.String()
	if !strings.Contains(out, "[1/4] BIM-linf eps=0.1") {
		t.Fatalf("progress output = %q", out)
	}
	if !strings.Contains(out, "(cached)") {
		t.Fatalf("cache hit not rendered: %q", out)
	}
	if strings.Contains(out, "cache-miss") {
		t.Fatalf("cache events must not spam the progress stream: %q", out)
	}
}

// TestEventJSONStable pins the SSE wire schema: string kinds, the
// documented field names, elapsed in milliseconds, and a lossless
// round trip — remote consumers parse these bytes.
func TestEventJSONStable(t *testing.T) {
	ev := Event{
		Kind:     CellFinished,
		Time:     time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC),
		Job:      "ab12cd34",
		Suite:    "fig4",
		Attack:   "BIM-linf",
		Eps:      0.1,
		Cell:     3,
		Cells:    40,
		CacheHit: true,
		Elapsed:  1500 * time.Millisecond,
	}
	data, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"kind":"cell-finished"`, `"job":"ab12cd34"`, `"suite":"fig4"`,
		`"attack":"BIM-linf"`, `"eps":0.1`, `"cell":3`, `"cells":40`,
		`"cache_hit":true`, `"elapsed_ms":1500`, `"time":"2026-07-01T12:00:00Z"`,
	} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("event JSON missing %s:\n%s", want, data)
		}
	}
	var back Event
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != ev {
		t.Fatalf("event round trip lost data:\n in %+v\nout %+v", ev, back)
	}

	// Suite brackets carry the error; zero time and elapsed stay off
	// the wire.
	fail := Event{Kind: SuiteFinished, Job: "ab12cd34", Err: "context canceled"}
	data, err = json.Marshal(fail)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"error":"context canceled"`) {
		t.Fatalf("failure event JSON missing error:\n%s", data)
	}
	if strings.Contains(string(data), "elapsed_ms") || strings.Contains(string(data), `"time"`) {
		t.Fatalf("zero elapsed/time must be omitted:\n%s", data)
	}
	if _, err := json.Marshal(Event{Kind: Kind(99)}); err == nil {
		t.Fatal("unknown kinds must not marshal silently")
	}
	var bad Event
	if err := json.Unmarshal([]byte(`{"kind":"no-such-kind"}`), &bad); err == nil {
		t.Fatal("unknown kind names must not unmarshal silently")
	}
}

// TestEventSuiteRendering covers the suite-bracket progress lines the
// service streams around each job.
func TestEventSuiteRendering(t *testing.T) {
	s := Event{Kind: SuiteStarted, Suite: "fig4", Cells: 40}.String()
	if !strings.Contains(s, "suite fig4 started") {
		t.Fatalf("SuiteStarted rendering = %q", s)
	}
	s = Event{Kind: SuiteFinished, Job: "ab12cd34", Err: "boom"}.String()
	if !strings.Contains(s, "ab12cd34") || !strings.Contains(s, "boom") {
		t.Fatalf("SuiteFinished failure rendering = %q", s)
	}
}
