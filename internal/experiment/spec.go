// Package experiment is the declarative face of the reproduction: a
// JSON-(de)serializable Spec describes an entire evaluation suite —
// source model, victim multipliers and quantization, multiple attacks,
// eps sweeps, sample counts, seed — and an Engine executes it under a
// context with its own caches, returning a multi-grid Report and
// streaming progress events along the way.
//
// The paper's methodology (Algorithm 1) is run at suite scale: six
// attacks × two norms × eps grids × dozens of AxDNN victims (Figs.
// 4-7, Table I). A Spec captures one such suite as data, so the same
// protocol can be checked in, diffed, replayed (cmd/axrobust -spec),
// and reproduced in a single engine.Run call with crafted-batch reuse
// across every grid that shares a cell.
package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/attack"
	"repro/internal/axmult"
	"repro/internal/core"
	"repro/internal/defense"
)

// Spec declares one evaluation suite. The zero values of optional
// fields select the same defaults the cmd tools use, so minimal specs
// stay short. Multiplier entries may be the aliases "mnist" or
// "cifar", which expand to the paper's Figs. 4-6 / Fig. 7 sets.
type Spec struct {
	// Name labels the suite in reports and progress output.
	Name string `json:"name,omitempty"`
	// Model is the modelzoo identifier of the accurate source model
	// the attacks are crafted on.
	Model string `json:"model"`
	// VictimModel optionally names a different modelzoo model to build
	// the AxDNN victims from — the Table II transferability scenario,
	// where examples crafted on Model replay on another architecture.
	// Empty means Model itself. The victims are evaluated on the
	// victim model's test set.
	VictimModel string `json:"victim_model,omitempty"`
	// Multipliers are the approximate designs, one victim per entry
	// ("mnist"/"cifar" expand to the paper's sets).
	Multipliers []string `json:"multipliers"`
	// Bits is the victim quantization level (the paper's Qlevel);
	// 0 means 8.
	Bits uint `json:"bits,omitempty"`
	// ApproxDense routes dense-layer products through the approximate
	// multiplier too.
	ApproxDense bool `json:"approx_dense,omitempty"`
	// Attacks name the attacks to sweep, one Grid per entry.
	Attacks []string `json:"attacks"`
	// AttackParams tunes the configurable attack families for the
	// whole suite; nil keeps every attack's defaults.
	AttackParams *AttackParams `json:"attack_params,omitempty"`
	// Defense declares deliberate defenses evaluated alongside the
	// plain victims: an adversarially trained model and/or a
	// randomized-approximation ensemble appear as extra victim columns,
	// and EOTSamples adds the adaptive EOT grid. nil runs the classic
	// undefended suite.
	Defense *DefenseSpec `json:"defense,omitempty"`
	// Eps are the perturbation budgets of every sweep.
	Eps []float64 `json:"eps"`
	// Samples caps the number of test samples (0 = all).
	Samples int `json:"samples,omitempty"`
	// Seed drives the attack randomness.
	Seed int64 `json:"seed,omitempty"`
	// Workers caps parallelism (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Batch caps the crafting/evaluation batch size (0 = derived).
	Batch int `json:"batch,omitempty"`
}

// AttackParams are the suite-wide knobs of the configurable attack
// families. Zero values keep the attack's own defaults, so a spec
// only states what it changes.
type AttackParams struct {
	// Momentum overrides MI-FGSM's gradient decay mu (default 0.9).
	Momentum float64 `json:"momentum,omitempty"`
	// Restarts wraps PGD in that many random restarts (0 or 1 = run
	// PGD plain).
	Restarts int `json:"restarts,omitempty"`
	// UAPIters overrides the UAP crafter's aggregated-gradient passes
	// over the sample set (default 10).
	UAPIters int `json:"uap_iters,omitempty"`
}

// Defense kinds a DefenseSpec can enable.
const (
	DefenseAdvTrain = "advtrain"
	DefenseEnsemble = "ensemble"
)

// DefenseSpec declares the suite's defenses (the spec's "defense"
// block). Kind selects which are active; the remaining fields
// configure them. Defended and undefended runs of the same model never
// share crafted-example cache entries for the adaptive grid, and the
// hardened model is a distinct network, so their rows never collide.
type DefenseSpec struct {
	// Kind enables defenses: "advtrain", "ensemble", or both as a
	// comma-separated list.
	Kind string `json:"kind"`
	// Attack names the adversarial-training crafting attack (kind
	// advtrain), e.g. "PGD-linf". Any attack name is accepted;
	// set-level attacks (UAP) select universal adversarial training.
	Attack string `json:"attack,omitempty"`
	// Eps is the adversarial-training crafting budget.
	Eps float64 `json:"eps,omitempty"`
	// Ratio is the fraction of training samples adversarially replaced
	// per epoch (0 = defense default 0.5).
	Ratio float64 `json:"ratio,omitempty"`
	// Epochs is the number of adversarial fine-tuning epochs (0 =
	// defense default 1).
	Epochs int `json:"epochs,omitempty"`
	// Pool are the ensemble's multipliers (kind ensemble); the
	// "mnist"/"cifar" aliases expand like Multipliers.
	Pool []string `json:"pool,omitempty"`
	// EOTSamples > 0 adds the adaptive EOT-PGD-linf grid: PGD over the
	// mean of that many configuration draws per step, the honest
	// evaluation of the randomized ensemble (kind ensemble only).
	EOTSamples int `json:"eot_samples,omitempty"`
}

// kinds splits the comma-separated Kind field into trimmed tokens.
func (d *DefenseSpec) kinds() []string {
	var out []string
	for _, k := range strings.Split(d.Kind, ",") {
		if k = strings.TrimSpace(k); k != "" {
			out = append(out, k)
		}
	}
	return out
}

// Has reports whether the given defense kind is enabled.
func (d *DefenseSpec) Has(kind string) bool {
	for _, k := range d.kinds() {
		if k == kind {
			return true
		}
	}
	return false
}

// ExpandPool resolves the ensemble pool's set aliases, like
// Spec.ExpandMultipliers.
func (d *DefenseSpec) ExpandPool() []string { return expandMultiplierAliases(d.Pool) }

// AdvTrainConfig maps the block onto the defense package's config;
// the suite's seed drives selection, crafting, and SGD shuffles.
func (d *DefenseSpec) AdvTrainConfig(seed int64) defense.AdvTrainConfig {
	return defense.AdvTrainConfig{
		Attack: d.Attack,
		Eps:    d.Eps,
		Ratio:  d.Ratio,
		Epochs: d.Epochs,
		Seed:   seed,
	}
}

// AdvTrainVictimName is the hardened model's victim column label.
func (d *DefenseSpec) AdvTrainVictimName() string {
	return fmt.Sprintf("advtrain[%s@%g]", d.Attack, d.Eps)
}

// validate checks the defense block's internal consistency; the
// "spec: defense:" prefix is applied by Spec.Validate's caller
// context.
func (d *DefenseSpec) validate() error {
	kinds := d.kinds()
	if len(kinds) == 0 {
		return fmt.Errorf("spec: defense.kind is required (%s, %s, or both)", DefenseAdvTrain, DefenseEnsemble)
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		if k != DefenseAdvTrain && k != DefenseEnsemble {
			return fmt.Errorf("spec: unknown defense kind %q (have: %s, %s)", k, DefenseAdvTrain, DefenseEnsemble)
		}
		if seen[k] {
			return fmt.Errorf("spec: duplicate defense kind %q", k)
		}
		seen[k] = true
	}
	if d.Has(DefenseAdvTrain) {
		if err := d.AdvTrainConfig(0).Validate(); err != nil {
			return fmt.Errorf("spec: %w", err)
		}
	} else if d.Attack != "" || d.Eps != 0 || d.Ratio != 0 || d.Epochs != 0 {
		// Config that silently applies to nothing would make the report
		// look adversarially trained without being so.
		return fmt.Errorf("spec: defense attack/eps/ratio/epochs set without the %q kind", DefenseAdvTrain)
	}
	if d.Has(DefenseEnsemble) {
		pool := d.ExpandPool()
		if len(pool) == 0 {
			return fmt.Errorf("spec: defense.pool is required for the %q kind", DefenseEnsemble)
		}
		for _, m := range pool {
			if _, err := axmult.Lookup(m); err != nil {
				return fmt.Errorf("spec: defense: %w", err)
			}
		}
		if d.EOTSamples < 0 {
			return fmt.Errorf("spec: negative defense.eot_samples %d", d.EOTSamples)
		}
	} else if len(d.Pool) != 0 || d.EOTSamples != 0 {
		return fmt.Errorf("spec: defense pool/eot_samples set without the %q kind", DefenseEnsemble)
	}
	return nil
}

// Load reads and validates a Spec from a JSON file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("experiment: reading spec: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("experiment: spec %s: %w", path, err)
	}
	return s, nil
}

// Parse decodes and validates a Spec from JSON. Unknown fields are
// rejected so a typo in a checked-in spec fails loudly instead of
// silently running defaults.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	s := &Spec{}
	if err := dec.Decode(s); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Encode renders the spec as canonical indented JSON with a trailing
// newline — the format of the checked-in testdata/specs files, so
// Load followed by Encode round-trips them byte for byte.
func (s *Spec) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Validate checks everything that can be checked without touching the
// model zoo: attacks resolve, multipliers resolve after alias
// expansion, budgets and counts are sane. Model names are validated
// by the engine's model source at run time.
func (s *Spec) Validate() error {
	if s.Model == "" {
		return fmt.Errorf("spec: model is required")
	}
	if len(s.Attacks) == 0 {
		return fmt.Errorf("spec: at least one attack is required")
	}
	seenAtk := make(map[string]bool, len(s.Attacks))
	for _, name := range s.Attacks {
		if _, err := attack.Find(name); err != nil {
			return fmt.Errorf("spec: %w", err)
		}
		// Duplicate attacks would produce two grids that collide in
		// Report.Grid and double-count in WriteCSV.
		if seenAtk[name] {
			return fmt.Errorf("spec: duplicate attack %q", name)
		}
		seenAtk[name] = true
	}
	mults := s.ExpandMultipliers()
	if len(mults) == 0 {
		return fmt.Errorf("spec: at least one multiplier is required")
	}
	for _, m := range mults {
		if _, err := axmult.Lookup(m); err != nil {
			return fmt.Errorf("spec: %w", err)
		}
	}
	if len(s.Eps) == 0 {
		return fmt.Errorf("spec: at least one eps budget is required")
	}
	seenEps := make(map[int64]float64, len(s.Eps))
	for _, e := range s.Eps {
		// NaN slips past `e < 0` and both NaN and ±Inf would poison
		// the crafted-example cache's eps quantization, so budgets
		// must be finite and non-negative.
		if math.IsNaN(e) || math.IsInf(e, 0) {
			return fmt.Errorf("spec: non-finite eps %g", e)
		}
		if e < 0 {
			return fmt.Errorf("spec: negative eps %g", e)
		}
		// Budgets that quantise identically alias under Grid.At's
		// round-off tolerance and the crafting cache: the second entry
		// would waste a whole grid row on duplicated cells.
		q := core.EpsKey(e)
		if prev, ok := seenEps[q]; ok {
			return fmt.Errorf("spec: duplicate eps %g (aliases %g)", e, prev)
		}
		seenEps[q] = e
	}
	if s.Samples < 0 {
		return fmt.Errorf("spec: negative samples %d", s.Samples)
	}
	if s.Defense != nil {
		if err := s.Defense.validate(); err != nil {
			return err
		}
	}
	if s.Workers < 0 || s.Batch < 0 {
		return fmt.Errorf("spec: negative workers/batch")
	}
	if p := s.AttackParams; p != nil {
		if math.IsNaN(p.Momentum) || math.IsInf(p.Momentum, 0) || p.Momentum < 0 || p.Momentum > 1 {
			return fmt.Errorf("spec: attack_params.momentum %g outside [0, 1]", p.Momentum)
		}
		if p.Restarts < 0 {
			return fmt.Errorf("spec: negative attack_params.restarts %d", p.Restarts)
		}
		if p.UAPIters < 0 {
			return fmt.Errorf("spec: negative attack_params.uap_iters %d", p.UAPIters)
		}
		// A param that applies to no attack in the suite would be
		// silently ignored — the report would look like a restarted or
		// re-tuned evaluation without being one.
		if p.Momentum > 0 && !s.anyAttack(func(a attack.Attack) bool { _, ok := a.(*attack.MIFGSM); return ok }) {
			return fmt.Errorf("spec: attack_params.momentum set but no MIFGSM attack in the suite")
		}
		if p.Restarts > 1 && !s.anyAttack(func(a attack.Attack) bool { b, ok := a.(*attack.BIM); return ok && b.RandomStart() }) {
			return fmt.Errorf("spec: attack_params.restarts set but no PGD attack in the suite")
		}
		if p.UAPIters > 0 && !s.anyAttack(func(a attack.Attack) bool { _, ok := a.(*attack.UAP); return ok }) {
			return fmt.Errorf("spec: attack_params.uap_iters set but no UAP attack in the suite")
		}
	}
	return nil
}

// anyAttack reports whether some attack in the suite matches pred.
// Callers run after the attack-name loop, so ByName always resolves.
func (s *Spec) anyAttack(pred func(attack.Attack) bool) bool {
	for _, name := range s.Attacks {
		if a := attack.ByName(name); a != nil && pred(a) {
			return true
		}
	}
	return false
}

// ExpandMultipliers resolves the "mnist"/"cifar" set aliases into
// concrete multiplier names, preserving order and leaving explicit
// names untouched.
func (s *Spec) ExpandMultipliers() []string {
	return expandMultiplierAliases(s.Multipliers)
}

// expandMultiplierAliases implements the alias expansion shared by the
// victim multiplier list and the defense ensemble pool.
func expandMultiplierAliases(mults []string) []string {
	var out []string
	for _, m := range mults {
		switch m {
		case "mnist":
			out = append(out, axmult.MNISTSet()...)
		case "cifar":
			out = append(out, axmult.CIFARSet()...)
		default:
			out = append(out, m)
		}
	}
	return out
}

// CellCount returns the number of (grid, eps) cells Run sweeps, by
// compiling the plan and counting its cells — one grid per attack,
// plus the adaptive EOT grid when the defense block enables it. The
// service sizes job progress with it, and because the plan is the
// single source of truth it cannot drift from what the executor runs.
func (s *Spec) CellCount() int {
	return len(compilePlan(s).Cells)
}

// attackList resolves the attack names and applies AttackParams to
// the families they tune; Validate guarantees resolution succeeds.
func (s *Spec) attackList() []attack.Attack {
	atks := make([]attack.Attack, len(s.Attacks))
	for i, name := range s.Attacks {
		a := attack.ByName(name)
		if p := s.AttackParams; p != nil {
			switch t := a.(type) {
			case *attack.MIFGSM:
				if p.Momentum > 0 {
					t.Mu = p.Momentum
				}
			case *attack.UAP:
				if p.UAPIters > 0 {
					t.Iters = p.UAPIters
				}
			case *attack.BIM:
				if p.Restarts > 1 && t.RandomStart() {
					a = attack.NewRestart(t, p.Restarts)
				}
			}
		}
		atks[i] = a
	}
	return atks
}

// victimModel returns the modelzoo name the victims are built from.
func (s *Spec) victimModel() string {
	if s.VictimModel != "" {
		return s.VictimModel
	}
	return s.Model
}
