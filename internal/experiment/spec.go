// Package experiment is the declarative face of the reproduction: a
// JSON-(de)serializable Spec describes an entire evaluation suite —
// source model, victim multipliers and quantization, multiple attacks,
// eps sweeps, sample counts, seed — and an Engine executes it under a
// context with its own caches, returning a multi-grid Report and
// streaming progress events along the way.
//
// The paper's methodology (Algorithm 1) is run at suite scale: six
// attacks × two norms × eps grids × dozens of AxDNN victims (Figs.
// 4-7, Table I). A Spec captures one such suite as data, so the same
// protocol can be checked in, diffed, replayed (cmd/axrobust -spec),
// and reproduced in a single engine.Run call with crafted-batch reuse
// across every grid that shares a cell.
package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/attack"
	"repro/internal/axmult"
)

// Spec declares one evaluation suite. The zero values of optional
// fields select the same defaults the cmd tools use, so minimal specs
// stay short. Multiplier entries may be the aliases "mnist" or
// "cifar", which expand to the paper's Figs. 4-6 / Fig. 7 sets.
type Spec struct {
	// Name labels the suite in reports and progress output.
	Name string `json:"name,omitempty"`
	// Model is the modelzoo identifier of the accurate source model
	// the attacks are crafted on.
	Model string `json:"model"`
	// VictimModel optionally names a different modelzoo model to build
	// the AxDNN victims from — the Table II transferability scenario,
	// where examples crafted on Model replay on another architecture.
	// Empty means Model itself. The victims are evaluated on the
	// victim model's test set.
	VictimModel string `json:"victim_model,omitempty"`
	// Multipliers are the approximate designs, one victim per entry
	// ("mnist"/"cifar" expand to the paper's sets).
	Multipliers []string `json:"multipliers"`
	// Bits is the victim quantization level (the paper's Qlevel);
	// 0 means 8.
	Bits uint `json:"bits,omitempty"`
	// ApproxDense routes dense-layer products through the approximate
	// multiplier too.
	ApproxDense bool `json:"approx_dense,omitempty"`
	// Attacks name the attacks to sweep, one Grid per entry.
	Attacks []string `json:"attacks"`
	// Eps are the perturbation budgets of every sweep.
	Eps []float64 `json:"eps"`
	// Samples caps the number of test samples (0 = all).
	Samples int `json:"samples,omitempty"`
	// Seed drives the attack randomness.
	Seed int64 `json:"seed,omitempty"`
	// Workers caps parallelism (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Batch caps the crafting/evaluation batch size (0 = derived).
	Batch int `json:"batch,omitempty"`
}

// Load reads and validates a Spec from a JSON file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("experiment: reading spec: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("experiment: spec %s: %w", path, err)
	}
	return s, nil
}

// Parse decodes and validates a Spec from JSON. Unknown fields are
// rejected so a typo in a checked-in spec fails loudly instead of
// silently running defaults.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	s := &Spec{}
	if err := dec.Decode(s); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Encode renders the spec as canonical indented JSON with a trailing
// newline — the format of the checked-in testdata/specs files, so
// Load followed by Encode round-trips them byte for byte.
func (s *Spec) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Validate checks everything that can be checked without touching the
// model zoo: attacks resolve, multipliers resolve after alias
// expansion, budgets and counts are sane. Model names are validated
// by the engine's model source at run time.
func (s *Spec) Validate() error {
	if s.Model == "" {
		return fmt.Errorf("spec: model is required")
	}
	if len(s.Attacks) == 0 {
		return fmt.Errorf("spec: at least one attack is required")
	}
	for _, name := range s.Attacks {
		if attack.ByName(name) == nil {
			return fmt.Errorf("spec: unknown attack %q (have %v)", name, attack.Names())
		}
	}
	mults := s.ExpandMultipliers()
	if len(mults) == 0 {
		return fmt.Errorf("spec: at least one multiplier is required")
	}
	for _, m := range mults {
		if _, err := axmult.Lookup(m); err != nil {
			return fmt.Errorf("spec: %w", err)
		}
	}
	if len(s.Eps) == 0 {
		return fmt.Errorf("spec: at least one eps budget is required")
	}
	for _, e := range s.Eps {
		if e < 0 {
			return fmt.Errorf("spec: negative eps %g", e)
		}
	}
	if s.Samples < 0 {
		return fmt.Errorf("spec: negative samples %d", s.Samples)
	}
	if s.Workers < 0 || s.Batch < 0 {
		return fmt.Errorf("spec: negative workers/batch")
	}
	return nil
}

// ExpandMultipliers resolves the "mnist"/"cifar" set aliases into
// concrete multiplier names, preserving order and leaving explicit
// names untouched.
func (s *Spec) ExpandMultipliers() []string {
	var out []string
	for _, m := range s.Multipliers {
		switch m {
		case "mnist":
			out = append(out, axmult.MNISTSet()...)
		case "cifar":
			out = append(out, axmult.CIFARSet()...)
		default:
			out = append(out, m)
		}
	}
	return out
}

// attackList resolves the attack names; Validate guarantees success.
func (s *Spec) attackList() []attack.Attack {
	atks := make([]attack.Attack, len(s.Attacks))
	for i, name := range s.Attacks {
		atks[i] = attack.ByName(name)
	}
	return atks
}

// victimModel returns the modelzoo name the victims are built from.
func (s *Spec) victimModel() string {
	if s.VictimModel != "" {
		return s.VictimModel
	}
	return s.Model
}
