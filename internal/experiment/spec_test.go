package experiment

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/attack"
)

// specsDir locates the checked-in example specs relative to this
// package.
const specsDir = "../../testdata/specs"

// TestSpecGoldenRoundTrip pins the canonical encoding: every
// checked-in spec file must decode, validate, and re-encode to the
// identical bytes, so the files double as golden fixtures for the
// JSON surface.
func TestSpecGoldenRoundTrip(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(specsDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("expected several example specs under %s, found %v", specsDir, paths)
	}
	for _, path := range paths {
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Load(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		got, err := s.Encode()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s does not round-trip through Spec.Encode:\n--- file ---\n%s--- re-encoded ---\n%s", path, want, got)
		}
	}
}

func validSpec() *Spec {
	return &Spec{
		Model:       "lenet5-digits",
		Multipliers: []string{"mul8u_1JFF"},
		Attacks:     []string{"FGM-linf"},
		Eps:         []float64{0, 0.1},
	}
}

func TestSpecValidate(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no model", func(s *Spec) { s.Model = "" }},
		{"no attacks", func(s *Spec) { s.Attacks = nil }},
		{"unknown attack", func(s *Spec) { s.Attacks = []string{"DeepFool"} }},
		{"no multipliers", func(s *Spec) { s.Multipliers = nil }},
		{"unknown multiplier", func(s *Spec) { s.Multipliers = []string{"mul8u_NOPE"} }},
		{"no eps", func(s *Spec) { s.Eps = nil }},
		{"negative eps", func(s *Spec) { s.Eps = []float64{-0.1} }},
		{"NaN eps", func(s *Spec) { s.Eps = []float64{math.NaN()} }},
		{"+Inf eps", func(s *Spec) { s.Eps = []float64{math.Inf(1)} }},
		{"-Inf eps", func(s *Spec) { s.Eps = []float64{math.Inf(-1)} }},
		{"duplicate eps", func(s *Spec) { s.Eps = []float64{0, 0.1, 0.1} }},
		{"aliasing eps", func(s *Spec) { s.Eps = []float64{0.3, 0.1 * 3} }},
		{"duplicate attack", func(s *Spec) { s.Attacks = []string{"FGM-linf", "FGM-linf"} }},
		{"negative samples", func(s *Spec) { s.Samples = -1 }},
		{"negative workers", func(s *Spec) { s.Workers = -2 }},
		{"momentum above 1", func(s *Spec) { s.AttackParams = &AttackParams{Momentum: 1.5} }},
		{"NaN momentum", func(s *Spec) { s.AttackParams = &AttackParams{Momentum: math.NaN()} }},
		{"negative restarts", func(s *Spec) { s.AttackParams = &AttackParams{Restarts: -1} }},
		{"negative uap iters", func(s *Spec) { s.AttackParams = &AttackParams{UAPIters: -3} }},
		// Params that apply to no attack in the suite would be silently
		// ignored: FGM-linf is neither MIFGSM, PGD, nor UAP.
		{"momentum without MIFGSM", func(s *Spec) { s.AttackParams = &AttackParams{Momentum: 0.9} }},
		{"restarts without PGD", func(s *Spec) { s.AttackParams = &AttackParams{Restarts: 3} }},
		{"uap iters without UAP", func(s *Spec) { s.AttackParams = &AttackParams{UAPIters: 5} }},
		{"defense without kind", func(s *Spec) { s.Defense = &DefenseSpec{Attack: "PGD-linf", Eps: 0.1} }},
		{"unknown defense kind", func(s *Spec) { s.Defense = &DefenseSpec{Kind: "distillation"} }},
		{"duplicate defense kind", func(s *Spec) {
			s.Defense = &DefenseSpec{Kind: "advtrain,advtrain", Attack: "PGD-linf", Eps: 0.1}
		}},
		{"advtrain without attack", func(s *Spec) { s.Defense = &DefenseSpec{Kind: "advtrain", Eps: 0.1} }},
		{"advtrain unknown attack", func(s *Spec) { s.Defense = &DefenseSpec{Kind: "advtrain", Attack: "DeepFool", Eps: 0.1} }},
		{"advtrain zero eps", func(s *Spec) { s.Defense = &DefenseSpec{Kind: "advtrain", Attack: "PGD-linf"} }},
		{"advtrain ratio above 1", func(s *Spec) {
			s.Defense = &DefenseSpec{Kind: "advtrain", Attack: "PGD-linf", Eps: 0.1, Ratio: 1.5}
		}},
		{"advtrain config without kind", func(s *Spec) {
			s.Defense = &DefenseSpec{Kind: "ensemble", Pool: []string{"mul8u_1JFF"}, Attack: "PGD-linf", Eps: 0.1}
		}},
		{"ensemble without pool", func(s *Spec) { s.Defense = &DefenseSpec{Kind: "ensemble"} }},
		{"ensemble unknown pool", func(s *Spec) { s.Defense = &DefenseSpec{Kind: "ensemble", Pool: []string{"mul8u_NOPE"}} }},
		{"negative eot samples", func(s *Spec) {
			s.Defense = &DefenseSpec{Kind: "ensemble", Pool: []string{"mul8u_1JFF"}, EOTSamples: -1}
		}},
		{"eot without ensemble", func(s *Spec) {
			s.Defense = &DefenseSpec{Kind: "advtrain", Attack: "PGD-linf", Eps: 0.1, EOTSamples: 4}
		}},
	}
	for _, tc := range cases {
		s := validSpec()
		tc.mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid spec", tc.name)
		}
	}
}

// TestSpecDefenseValidAndCellCount: well-formed defense blocks
// validate, the alias pool expands, and CellCount accounts for the
// adaptive grid — the figure the service sizes job progress with.
func TestSpecDefenseValidAndCellCount(t *testing.T) {
	s := validSpec()
	if s.CellCount() != len(s.Attacks)*len(s.Eps) {
		t.Fatalf("undefended CellCount %d, want %d", s.CellCount(), len(s.Attacks)*len(s.Eps))
	}
	s.Defense = &DefenseSpec{
		Kind:       "advtrain,ensemble",
		Attack:     "UAP-linf", // set-level attacks are legal AT crafters
		Eps:        0.1,
		Pool:       []string{"mnist"},
		EOTSamples: 3,
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid defended spec rejected: %v", err)
	}
	if got := s.Defense.ExpandPool(); len(got) != 9 {
		t.Fatalf("mnist pool alias expanded to %v", got)
	}
	if want := (len(s.Attacks) + 1) * len(s.Eps); s.CellCount() != want {
		t.Fatalf("defended CellCount %d, want %d (EOT grid included)", s.CellCount(), want)
	}
	// EOT disabled: no extra grid.
	s.Defense.EOTSamples = 0
	if s.CellCount() != len(s.Attacks)*len(s.Eps) {
		t.Fatal("EOT-less defense must not add a grid")
	}
	if !s.Defense.Has(DefenseAdvTrain) || !s.Defense.Has(DefenseEnsemble) || s.Defense.Has("x") {
		t.Fatal("kind membership misreported")
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"model":"lenet5-digits","multipliers":["mul8u_1JFF"],"attacks":["FGM-linf"],"eps":[0.1],"sampels":10}`))
	if err == nil {
		t.Fatal("a typoed field must fail Parse, not silently run defaults")
	}
}

func TestExpandMultipliers(t *testing.T) {
	s := &Spec{Multipliers: []string{"mnist", "mul8u_L1G"}}
	got := s.ExpandMultipliers()
	if len(got) != 10 { // 9-entry mnist set + 1 explicit
		t.Fatalf("mnist alias + explicit expanded to %v", got)
	}
	if got[len(got)-1] != "mul8u_L1G" {
		t.Fatalf("explicit name not preserved in order: %v", got)
	}
	for _, m := range got[:9] {
		if m == "mnist" {
			t.Fatal("alias not expanded")
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(specsDir, "does-not-exist.json")); err == nil {
		t.Fatal("expected error for missing spec file")
	}
}

// TestAttackParamsApplied: AttackParams must reach the resolved
// attack instances — momentum onto MI-FGSM, iterations onto UAP, and
// a restart wrapper (with its own cache identity) around PGD — while
// leaving non-matching attacks and nil-params suites untouched.
func TestAttackParamsApplied(t *testing.T) {
	s := validSpec()
	s.Attacks = []string{"MIFGSM-linf", "UAP-linf", "PGD-linf", "BIM-linf"}
	s.AttackParams = &AttackParams{Momentum: 0.5, Restarts: 4, UAPIters: 3}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	atks := s.attackList()
	if mi := atks[0].(*attack.MIFGSM); mi.Mu != 0.5 {
		t.Fatalf("momentum not applied: mu=%g", mi.Mu)
	}
	if u := atks[1].(*attack.UAP); u.Iters != 3 {
		t.Fatalf("uap_iters not applied: iters=%d", u.Iters)
	}
	r, ok := atks[2].(*attack.Restart)
	if !ok || r.Restarts != 4 {
		t.Fatalf("PGD not wrapped in restarts: %T", atks[2])
	}
	if r.Name() != "PGD-linf" {
		t.Fatalf("restarted PGD renamed to %q", r.Name())
	}
	if _, wrapped := atks[3].(*attack.Restart); wrapped {
		t.Fatal("restarts must not wrap plain BIM (no random start)")
	}

	s.AttackParams = nil
	plain := s.attackList()
	if mi := plain[0].(*attack.MIFGSM); mi.Mu != 0.9 {
		t.Fatalf("nil params changed MIFGSM defaults: mu=%g", mi.Mu)
	}
	if _, wrapped := plain[2].(*attack.Restart); wrapped {
		t.Fatal("nil params wrapped PGD in restarts")
	}
}
