package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/core"
)

// EOTGridName is the adaptive grid a defense block with EOTSamples > 0
// appends to the suite: PGD over the expectation of the randomized
// ensemble, under the Linf norm (attack.NewEOT's name for it).
const EOTGridName = "EOT-PGD-linf"

// CellID is the stable, content-derived identity of one plan cell. It
// hashes the spec's protocol fields (the same Workers/Batch-zeroed
// encoding the service hashes into job IDs) together with the cell's
// grid name and quantised budget (core.EpsKey — the crafting cache's
// own eps identity), so two specs that would craft identical batches
// assign their shared cells identical IDs, while execution knobs that
// cannot change the numbers don't perturb them.
type CellID string

// PlanCell is one schedulable unit of a compiled plan: craft the
// (attack, eps) batch once, then evaluate it on every victim. Index is
// the cell's 1-based position in the full plan — the stable value of
// Event.Cell and the sort key of Report.Cells, however many workers or
// shards execute the plan and in whatever order cells finish.
type PlanCell struct {
	Index  int
	Grid   int // index into the owning Plan's Grids
	EpsIdx int // index into Spec.Eps
	Attack string
	Eps    float64
	ID     CellID
}

// Plan is a Spec compiled into its deterministic cell DAG: one grid
// per attack (plus the adaptive EOT grid when the defense enables it),
// one cell per grid × eps, grid-major — exactly the order the serial
// engine swept, so "plan order" and historical report order coincide.
// The dependency structure is implicit and uniform: each cell is a
// craft node feeding one evaluate node per victim, and cells are
// mutually independent.
//
// A restricted plan (see Restrict) covers a subset of the grids but
// keeps the full plan's cell indices and Total, so events and merged
// reports from sharded execution number cells identically to a
// single-node run.
type Plan struct {
	spec  *Spec
	Grids []string
	Cells []PlanCell
	Total int
}

// Plan validates the spec and compiles it.
func (s *Spec) Plan() (*Plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return compilePlan(s), nil
}

// compilePlan builds the cell graph for an already-validated spec. It
// is purely structural — no model or dataset resolution — so it is
// cheap enough to back CellCount.
func compilePlan(s *Spec) *Plan {
	grids := append([]string(nil), s.Attacks...)
	if s.Defense != nil && s.Defense.EOTSamples > 0 {
		grids = append(grids, EOTGridName)
	}
	p := &Plan{
		spec:  s,
		Grids: grids,
		Cells: make([]PlanCell, 0, len(grids)*len(s.Eps)),
	}
	fp := s.fingerprint()
	for gi, name := range grids {
		for ei, eps := range s.Eps {
			p.Cells = append(p.Cells, PlanCell{
				Index:  len(p.Cells) + 1,
				Grid:   gi,
				EpsIdx: ei,
				Attack: name,
				Eps:    eps,
				ID:     cellID(fp, name, core.EpsKey(eps)),
			})
		}
	}
	p.Total = len(p.Cells)
	return p
}

// Spec returns the spec the plan was compiled from. Restricted plans
// keep the full spec: a shard executes a subset of grids of the whole
// suite, not a smaller suite.
func (p *Plan) Spec() *Spec { return p.spec }

// Restrict returns a sub-plan covering exactly the named grids —
// sharding is grid-granular, so a crafted batch never splits across
// nodes. Cell indices, IDs, and Total are preserved from the full
// plan; only the Grids slice (and each cell's Grid index into it)
// shrinks. Unknown or duplicate grid names are errors: a shard
// silently executing the wrong subset would merge into a report with
// holes.
func (p *Plan) Restrict(grids []string) (*Plan, error) {
	if len(grids) == 0 {
		return nil, fmt.Errorf("experiment: restrict: at least one grid is required")
	}
	want := make(map[string]int, len(grids))
	for i, g := range grids {
		if _, dup := want[g]; dup {
			return nil, fmt.Errorf("experiment: restrict: duplicate grid %q", g)
		}
		found := false
		for _, have := range p.Grids {
			if have == g {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("experiment: restrict: grid %q not in plan", g)
		}
		want[g] = i
	}
	sub := &Plan{
		spec:  p.spec,
		Grids: append([]string(nil), grids...),
		Total: p.Total,
	}
	for _, c := range p.Cells {
		if gi, ok := want[c.Attack]; ok {
			c.Grid = gi
			sub.Cells = append(sub.Cells, c)
		}
	}
	return sub, nil
}

// CellAt finds the plan cell for an (attack, eps) pair, matching eps
// under the crafting cache's quantisation. The shard merger uses it to
// map a peer's cell timings back onto plan positions.
func (p *Plan) CellAt(attackName string, eps float64) (PlanCell, bool) {
	q := core.EpsKey(eps)
	for _, c := range p.Cells {
		if c.Attack == attackName && core.EpsKey(c.Eps) == q {
			return c, true
		}
	}
	return PlanCell{}, false
}

// fingerprint hashes the spec's protocol content — the encoding with
// the execution-only Workers/Batch knobs zeroed, the same identity the
// service derives job IDs from.
func (s *Spec) fingerprint() string {
	hashed := *s
	hashed.Workers, hashed.Batch = 0, 0
	data, err := json.Marshal(&hashed)
	if err != nil {
		// Spec is a plain data struct; Marshal cannot fail on one.
		panic(fmt.Sprintf("experiment: encoding spec: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// cellID derives a cell's identity from the suite fingerprint, grid
// name, and quantised budget.
func cellID(fp, grid string, epsQ int64) CellID {
	sum := sha256.Sum256([]byte(fmt.Sprintf("cell|%s|%s|%d", fp, grid, epsQ)))
	return CellID(hex.EncodeToString(sum[:8]))
}
