package experiment

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// cellHist times whole cells (craft + all victim evaluations) — the
// top-line latency distribution of the pipeline.
var cellHist = obs.Default.Histogram("ax_cell_duration_seconds",
	"End-to-end cell execution latency (craft through last victim evaluation), in seconds.")

// Executor runs a bound plan and assembles its Report. Implementations
// may execute cells in any order and with any parallelism; the Report
// is always assembled in plan order, so every executor producing the
// same numbers produces the same bytes.
type Executor interface {
	Execute(ctx context.Context, run *PlanRun) (*Report, error)
}

// SchedCounters are the scheduler's lifetime counters, shared between
// an executor and whoever exports them (axserve's /metrics). Local
// counts cells this process executed through its own executor,
// Remote cells a peer executed for this node's sharded jobs, and
// Fallback the subset of Local re-executed here after a peer shard
// failed. Ready is a gauge of cell-graph nodes currently ready to run.
type SchedCounters struct {
	Local    atomic.Int64
	Remote   atomic.Int64
	Fallback atomic.Int64
	Ready    atomic.Int64
}

// PlanRun is a plan bound to its runtime inputs — resolved models,
// sliced test set, built victims, per-grid attack instances — ready
// for an Executor. Engine.RunPlan constructs it; executors consume it.
type PlanRun struct {
	plan     *Plan
	dataset  string
	cleanAcc float64
	src      *nn.Network
	test     *dataset.Set
	atks     []attack.Attack // parallel to plan.Grids
	names    []string        // victim columns, in report order
	models   []attack.Model  // parallel to names
	opts     core.Options
	cache    *core.Cache
	emit     func(Event)
}

// Plan returns the plan this run was bound from.
func (r *PlanRun) Plan() *Plan { return r.plan }

// cellState accumulates one cell's results as its craft and evaluate
// nodes complete.
type cellState struct {
	adv     *tensor.T
	hit     bool
	start   time.Time
	elapsed time.Duration
	row     []float64
	pending int // evaluate nodes still outstanding
	// ctx/span carry the cell's trace context from its craft node to
	// its evaluate nodes, so predict spans nest under the cell span.
	// Written in runCraft's critical section, read by evaluate nodes
	// that only exist after it — ordered by the scheduler mutex.
	ctx  context.Context
	span *obs.SpanHandle
}

// evalNode is one (cell, victim) evaluation, runnable once the cell's
// batch is crafted.
type evalNode struct {
	cell   int // index into plan.Cells
	victim int
}

// LocalExecutor schedules a plan's cell graph over a bounded worker
// pool in this process. Craft nodes are all initially ready; each
// completed craft unlocks the cell's per-victim evaluate nodes, and a
// cell's CellFinished event fires when its last evaluation lands.
//
// Scheduling order: evaluate nodes first (finishing an in-flight cell
// beats starting a new one), then craft nodes whose batch the cache
// already holds (a hit costs microseconds and may unlock work for
// idle workers), then plan order. With Parallel <= 1 this degenerates
// to exactly the serial engine's sweep — same cell order, same event
// order, emitted from a single goroutine.
//
// Reports are assembled in plan order after all cells complete, so the
// bytes are identical whatever the completion order was.
type LocalExecutor struct {
	// Parallel is the number of cells (craft or evaluate nodes) in
	// flight at once; 0 or 1 means serial. Within-cell crafting
	// parallelism is still governed by Spec.Workers.
	Parallel int
	// Counters, when non-nil, receives scheduler counts (Local,
	// Ready); Remote/Fallback are the sharded scheduler's.
	Counters *SchedCounters
}

func (x *LocalExecutor) Execute(ctx context.Context, run *PlanRun) (*Report, error) {
	plan := run.plan
	n := len(plan.Cells)
	workers := x.Parallel
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}

	var (
		mu         sync.Mutex
		cond       = sync.NewCond(&mu)
		craftReady = make([]int, 0, n) // cell indices, plan order
		evalReady  []evalNode          // FIFO
		states     = make([]cellState, n)
		cellsDone  int
		runErr     error
	)
	for i := range plan.Cells {
		craftReady = append(craftReady, i)
	}
	// Per-grid spans open lazily at the grid's first craft and close
	// when its last cell finishes, so the trace shows grid phases even
	// though the scheduler interleaves grids freely.
	gridCtx := make([]context.Context, len(plan.Grids))
	gridSpan := make([]*obs.SpanHandle, len(plan.Grids))
	gridLeft := make([]int, len(plan.Grids))
	for _, c := range plan.Cells {
		gridLeft[c.Grid]++
	}
	gauge := func() {
		if x.Counters != nil {
			x.Counters.Ready.Store(int64(len(craftReady) + len(evalReady)))
		}
	}
	gauge()
	fail := func(err error) {
		mu.Lock()
		if runErr == nil {
			runErr = err
		}
		cond.Broadcast()
		mu.Unlock()
	}

	runCraft := func(ci int) {
		cell := plan.Cells[ci]
		st := &states[ci]
		mu.Lock()
		if gridCtx[cell.Grid] == nil {
			gridCtx[cell.Grid], gridSpan[cell.Grid] = obs.Start(ctx, "grid",
				obs.Attr{Key: "attack", Value: plan.Grids[cell.Grid]})
		}
		st.ctx, st.span = obs.Start(gridCtx[cell.Grid], "cell",
			obs.Attr{Key: "attack", Value: cell.Attack},
			obs.Attr{Key: "eps", Value: strconv.FormatFloat(cell.Eps, 'g', -1, 64)},
			obs.Attr{Key: "cell", Value: strconv.Itoa(cell.Index)})
		mu.Unlock()
		//axvet:ignore determinism -- wall-clock start for the ElapsedMS metric, which report comparisons normalize
		st.start = time.Now()
		run.emit(Event{Kind: CellStarted, Suite: plan.spec.Name, Attack: cell.Attack, Eps: cell.Eps, Cell: cell.Index, Cells: plan.Total})
		adv, hit, err := run.cache.CraftedBatch(st.ctx, run.src, run.test, run.atks[cell.Grid], cell.Eps, run.opts)
		if err != nil {
			fail(err)
			return
		}
		run.emit(Event{Kind: cacheKind(hit), Suite: plan.spec.Name, Attack: cell.Attack, Eps: cell.Eps, Cell: cell.Index, Cells: plan.Total})
		mu.Lock()
		st.adv, st.hit = adv, hit
		st.row = make([]float64, len(run.models))
		st.pending = len(run.models)
		for vi := range run.models {
			evalReady = append(evalReady, evalNode{cell: ci, victim: vi})
		}
		gauge()
		cond.Broadcast()
		mu.Unlock()
	}

	runEval := func(nd evalNode) {
		cell := plan.Cells[nd.cell]
		st := &states[nd.cell]
		preds, _, err := run.cache.Predictions(st.ctx, run.models[nd.victim], st.adv, run.opts)
		if err != nil {
			fail(err)
			return
		}
		rob := core.Robustness(preds, run.test.Y)
		mu.Lock()
		st.row[nd.victim] = rob
		st.pending--
		finished := st.pending == 0
		gridDone := false
		if finished {
			st.elapsed = time.Since(st.start)
			cellsDone++
			gridLeft[cell.Grid]--
			gridDone = gridLeft[cell.Grid] == 0
		}
		cond.Broadcast()
		mu.Unlock()
		if finished {
			st.span.End()
			cellHist.Observe(st.elapsed)
			if gridDone {
				gridSpan[cell.Grid].End()
			}
			if x.Counters != nil {
				x.Counters.Local.Add(1)
			}
			run.emit(Event{Kind: CellFinished, Suite: plan.spec.Name, Attack: cell.Attack, Eps: cell.Eps, Cell: cell.Index, Cells: plan.Total, CacheHit: st.hit, Elapsed: st.elapsed})
		}
	}

	work := func() {
		for {
			mu.Lock()
			for runErr == nil && cellsDone < n && len(evalReady) == 0 && len(craftReady) == 0 {
				cond.Wait()
			}
			if runErr != nil || cellsDone == n {
				mu.Unlock()
				return
			}
			if len(evalReady) > 0 {
				nd := evalReady[0]
				evalReady = evalReady[1:]
				gauge()
				mu.Unlock()
				runEval(nd)
				continue
			}
			// Among ready craft nodes, prefer the first (plan order)
			// whose batch is already cached; otherwise plan order.
			pick := 0
			for i, ci := range craftReady {
				c := plan.Cells[ci]
				if run.cache.CraftedCached(run.src, run.test, run.atks[c.Grid], c.Eps, run.opts) {
					pick = i
					break
				}
			}
			ci := craftReady[pick]
			craftReady = append(craftReady[:pick], craftReady[pick+1:]...)
			gauge()
			mu.Unlock()
			// The serial engine checked ctx once per cell; keep that
			// granularity so a cancelled fully-cached sweep still errors.
			if err := ctx.Err(); err != nil {
				fail(err)
				return
			}
			runCraft(ci)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
	if x.Counters != nil {
		x.Counters.Ready.Store(0)
	}
	if runErr != nil {
		return nil, runErr
	}
	return run.assemble(states), nil
}

// assemble builds the Report in plan order from completed cell states.
func (r *PlanRun) assemble(states []cellState) *Report {
	spec := r.plan.spec
	rep := &Report{
		Spec:     *spec,
		CleanAcc: r.cleanAcc,
		Grids:    make([]*core.Grid, len(r.plan.Grids)),
		Cells:    make([]CellTiming, 0, len(r.plan.Cells)),
	}
	for gi, name := range r.plan.Grids {
		rep.Grids[gi] = &core.Grid{
			Attack:  name,
			Dataset: r.dataset,
			Eps:     append([]float64(nil), spec.Eps...),
			Victims: append([]string(nil), r.names...),
			Acc:     make([][]float64, len(spec.Eps)),
		}
	}
	for i, cell := range r.plan.Cells {
		st := &states[i]
		rep.Grids[cell.Grid].Acc[cell.EpsIdx] = st.row
		rep.Cells = append(rep.Cells, CellTiming{
			Attack:    cell.Attack,
			Eps:       cell.Eps,
			CacheHit:  st.hit,
			ElapsedMS: float64(st.elapsed) / float64(time.Millisecond),
		})
	}
	return rep
}
