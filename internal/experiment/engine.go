package experiment

import (
	"context"
	"fmt"
	"time"

	"repro/internal/attack"
	"repro/internal/axnn"
	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/modelzoo"
	"repro/internal/obs"
)

// Engine executes Specs. Each engine owns its crafted-batch and
// prediction caches (core.Cache), so two engines never interfere and
// repeated or overlapping cells within one engine — the shared eps=0
// clean row across attacks, identical cells across Runs — are served
// from the memo. The zero Engine is not usable; construct with New.
type Engine struct {
	cache    *core.Cache
	onEvent  func(Event)
	getModel func(context.Context, string) (*modelzoo.Model, error)
	exec     Executor
}

// Option configures an Engine.
type Option func(*Engine)

// WithCache replaces the engine's owned cache — e.g. to share one
// cache between engines deliberately, or to bound retention via
// core.CacheConfig.
func WithCache(c *core.Cache) Option {
	return func(e *Engine) { e.cache = c }
}

// WithProgress registers a callback receiving progress events (cell
// started/finished, cache hit/miss). Under the default serial executor
// events are emitted synchronously, in plan order, from one goroutine;
// a parallel executor emits them from its workers as cells complete,
// so the callback must be safe for concurrent use and interleaving
// (Event.Cell still carries each cell's stable plan position).
func WithProgress(fn func(Event)) Option {
	return func(e *Engine) { e.onEvent = fn }
}

// WithModelSource replaces the model resolver (default
// modelzoo.GetCtx) — primarily for tests, which inject small
// purpose-trained fixtures instead of the full zoo models. The
// context is Run's: sources that train on demand (hardened derived
// models) observe cancellation through it.
func WithModelSource(fn func(context.Context, string) (*modelzoo.Model, error)) Option {
	return func(e *Engine) { e.getModel = fn }
}

// WithExecutor replaces the executor Run hands compiled plans to
// (default: a serial LocalExecutor). nil keeps the default.
func WithExecutor(x Executor) Option {
	return func(e *Engine) {
		if x != nil {
			e.exec = x
		}
	}
}

// New returns an engine with a fresh owned cache and a serial local
// executor.
func New(opts ...Option) *Engine {
	e := &Engine{
		cache:    core.NewCache(core.CacheConfig{}),
		getModel: modelzoo.GetCtx,
		exec:     &LocalExecutor{},
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Cache exposes the engine's cache, chiefly so tests can assert
// isolation and callers can Clear it after retraining models in
// place.
func (e *Engine) Cache() *core.Cache { return e.cache }

func (e *Engine) emit(ev Event) {
	if e.onEvent != nil {
		if ev.Time.IsZero() {
			//axvet:ignore determinism -- observability timestamp on the event envelope; never in report rows, and merge-equivalence tests normalize Time
			ev.Time = time.Now()
		}
		e.onEvent(ev)
	}
}

// Run executes the suite declared by spec: it compiles the spec into
// its cell plan, binds the plan to resolved models and built victims,
// and hands it to the engine's executor — one Grid per attack, crafted
// batches and victim predictions deduplicated through the engine's
// cache. Cancellation via ctx is observed at cell and chunk
// granularity; Run then returns ctx.Err() with no partial results
// memoised and no goroutines leaked.
//
// The numbers are identical to running core.RobustnessGrid once per
// attack with the same options: the plan/executor split only changes
// who owns the cache and in what order cells run, never the protocol —
// and the Report is assembled in plan order, so the bytes don't depend
// on the executor either.
func (e *Engine) Run(ctx context.Context, spec *Spec) (*Report, error) {
	_, sp := obs.Start(ctx, "plan")
	plan, err := spec.Plan()
	sp.End()
	if err != nil {
		return nil, err
	}
	return e.RunPlan(ctx, plan)
}

// RunPlan binds an already-compiled plan (possibly restricted to a
// subset of its grids — the shard server's path) and executes it.
func (e *Engine) RunPlan(ctx context.Context, plan *Plan) (*Report, error) {
	// bind gets its own span (model resolution can train hardened
	// victims on first use); Execute keeps the original ctx so grid
	// spans parent directly under the caller's suite span.
	_, sp := obs.Start(ctx, "bind")
	run, err := e.bind(ctx, plan)
	sp.End()
	if err != nil {
		return nil, err
	}
	return e.exec.Execute(ctx, run)
}

// bind resolves everything a plan needs at runtime: the source (and,
// for transfer suites, victim) model, the AxDNN victims plus
// defense-appended columns, the sliced test set, and one attack
// instance per plan grid.
func (e *Engine) bind(ctx context.Context, plan *Plan) (*PlanRun, error) {
	spec := plan.spec
	src, err := e.getModel(ctx, spec.Model)
	if err != nil {
		return nil, err
	}
	vic := src
	if spec.victimModel() != spec.Model {
		if vic, err = e.getModel(ctx, spec.victimModel()); err != nil {
			return nil, err
		}
	}
	victims, err := core.BuildAxVictims(vic.Net, vic.Test, spec.ExpandMultipliers(), axnn.Options{Bits: spec.Bits, ApproxDense: spec.ApproxDense})
	if err != nil {
		return nil, err
	}
	test := vic.Test.Slice(spec.Samples)
	if test.Len() == 0 {
		return nil, fmt.Errorf("experiment: %s has no test samples", spec.victimModel())
	}

	byName := make(map[string]attack.Attack, len(spec.Attacks)+1)
	for i, a := range spec.attackList() {
		byName[spec.Attacks[i]] = a
	}
	needEOT := false
	for _, g := range plan.Grids {
		if g == EOTGridName {
			needEOT = true
		}
	}
	// The defense block appends its victim columns whatever grids the
	// plan covers — a restricted shard must evaluate the same columns
	// as the full suite — and builds the adaptive EOT attack only when
	// the plan includes its grid.
	if d := spec.Defense; d != nil {
		if d.Has(DefenseAdvTrain) {
			// Defenses defend the victim: the hardened model derives
			// from the victim-side base (relevant in transfer suites).
			// Resolving it through the engine's model source means
			// axserve jobs train (and the zoo persists) hardened
			// weights on first use, and tests inject fixtures.
			hid := defense.HardenedID(spec.victimModel(), d.AdvTrainConfig(spec.Seed))
			hm, err := e.getModel(ctx, hid)
			if err != nil {
				return nil, err
			}
			victims = append(victims, core.NewFloatVictim(d.AdvTrainVictimName(), hm.Net))
		}
		if d.Has(DefenseEnsemble) {
			ens, err := defense.BuildEnsemble(vic.Net, vic.Test, d.ExpandPool(), axnn.Options{Bits: spec.Bits, ApproxDense: spec.ApproxDense}, spec.Seed)
			if err != nil {
				return nil, err
			}
			victims = append(victims, core.NewVictim(ens.Name(), ens))
			if d.EOTSamples > 0 && needEOT {
				byName[EOTGridName] = attack.NewEOT(ens, attack.Linf, d.EOTSamples)
			}
		}
	}

	atks := make([]attack.Attack, len(plan.Grids))
	for gi, name := range plan.Grids {
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("experiment: plan grid %q has no attack", name)
		}
		atks[gi] = a
	}

	names := make([]string, len(victims))
	models := make([]attack.Model, len(victims))
	for i, v := range victims {
		names[i] = v.Name
		models[i] = v.Factory()
	}

	return &PlanRun{
		plan:     plan,
		dataset:  vic.Test.Name,
		cleanAcc: src.CleanAcc,
		src:      src.Net,
		test:     test,
		atks:     atks,
		names:    names,
		models:   models,
		opts: core.Options{
			Samples: spec.Samples,
			Seed:    spec.Seed,
			Workers: spec.Workers,
			Batch:   spec.Batch,
			Cache:   e.cache,
		},
		cache: e.cache,
		emit:  e.emit,
	}, nil
}

func cacheKind(hit bool) Kind {
	if hit {
		return CacheHit
	}
	return CacheMiss
}
