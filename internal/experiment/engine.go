package experiment

import (
	"context"
	"fmt"
	"time"

	"repro/internal/attack"
	"repro/internal/axnn"
	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/modelzoo"
)

// Engine executes Specs. Each engine owns its crafted-batch and
// prediction caches (core.Cache), so two engines never interfere and
// repeated or overlapping cells within one engine — the shared eps=0
// clean row across attacks, identical cells across Runs — are served
// from the memo. The zero Engine is not usable; construct with New.
type Engine struct {
	cache    *core.Cache
	onEvent  func(Event)
	getModel func(context.Context, string) (*modelzoo.Model, error)
}

// Option configures an Engine.
type Option func(*Engine)

// WithCache replaces the engine's owned cache — e.g. to share one
// cache between engines deliberately, or to bound retention via
// core.CacheConfig.
func WithCache(c *core.Cache) Option {
	return func(e *Engine) { e.cache = c }
}

// WithProgress registers a callback receiving progress events (cell
// started/finished, cache hit/miss). Events are emitted synchronously
// from the Run goroutine, in order.
func WithProgress(fn func(Event)) Option {
	return func(e *Engine) { e.onEvent = fn }
}

// WithModelSource replaces the model resolver (default
// modelzoo.GetCtx) — primarily for tests, which inject small
// purpose-trained fixtures instead of the full zoo models. The
// context is Run's: sources that train on demand (hardened derived
// models) observe cancellation through it.
func WithModelSource(fn func(context.Context, string) (*modelzoo.Model, error)) Option {
	return func(e *Engine) { e.getModel = fn }
}

// New returns an engine with a fresh owned cache.
func New(opts ...Option) *Engine {
	e := &Engine{
		cache:    core.NewCache(core.CacheConfig{}),
		getModel: modelzoo.GetCtx,
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Cache exposes the engine's cache, chiefly so tests can assert
// isolation and callers can Clear it after retraining models in
// place.
func (e *Engine) Cache() *core.Cache { return e.cache }

func (e *Engine) emit(ev Event) {
	if e.onEvent != nil {
		if ev.Time.IsZero() {
			ev.Time = time.Now()
		}
		e.onEvent(ev)
	}
}

// Run executes the suite declared by spec: it resolves the source
// (and, for transfer suites, victim) model, compiles one AxDNN victim
// per multiplier, and sweeps every attack over every budget — one
// Grid per attack, crafted batches and victim predictions
// deduplicated through the engine's cache. Cancellation via ctx is
// observed at chunk granularity inside crafting and evaluation; Run
// then returns ctx.Err() with no partial results memoised and no
// goroutines leaked.
//
// The numbers are identical to running core.RobustnessGrid once per
// attack with the same options: the engine only changes who owns the
// cache and how progress is observed, never the protocol.
func (e *Engine) Run(ctx context.Context, spec *Spec) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	src, err := e.getModel(ctx, spec.Model)
	if err != nil {
		return nil, err
	}
	vic := src
	if spec.victimModel() != spec.Model {
		if vic, err = e.getModel(ctx, spec.victimModel()); err != nil {
			return nil, err
		}
	}
	victims, err := core.BuildAxVictims(vic.Net, vic.Test, spec.ExpandMultipliers(), axnn.Options{Bits: spec.Bits, ApproxDense: spec.ApproxDense})
	if err != nil {
		return nil, err
	}
	test := vic.Test.Slice(spec.Samples)
	if test.Len() == 0 {
		return nil, fmt.Errorf("experiment: %s has no test samples", spec.victimModel())
	}
	opts := core.Options{
		Samples: spec.Samples,
		Seed:    spec.Seed,
		Workers: spec.Workers,
		Batch:   spec.Batch,
		Cache:   e.cache,
	}

	atks := spec.attackList()
	// The defense block appends its victims after the plain multiplier
	// columns, and the adaptive EOT grid after the declared attacks.
	if d := spec.Defense; d != nil {
		if d.Has(DefenseAdvTrain) {
			// Defenses defend the victim: the hardened model derives
			// from the victim-side base (relevant in transfer suites).
			// Resolving it through the engine's model source means
			// axserve jobs train (and the zoo persists) hardened
			// weights on first use, and tests inject fixtures.
			hid := defense.HardenedID(spec.victimModel(), d.AdvTrainConfig(spec.Seed))
			hm, err := e.getModel(ctx, hid)
			if err != nil {
				return nil, err
			}
			victims = append(victims, core.NewFloatVictim(d.AdvTrainVictimName(), hm.Net))
		}
		if d.Has(DefenseEnsemble) {
			ens, err := defense.BuildEnsemble(vic.Net, vic.Test, d.ExpandPool(), axnn.Options{Bits: spec.Bits, ApproxDense: spec.ApproxDense}, spec.Seed)
			if err != nil {
				return nil, err
			}
			victims = append(victims, core.NewVictim(ens.Name(), ens))
			if d.EOTSamples > 0 {
				atks = append(atks, attack.NewEOT(ens, attack.Linf, d.EOTSamples))
			}
		}
	}

	names := make([]string, len(victims))
	models := make([]attack.Model, len(victims))
	for i, v := range victims {
		names[i] = v.Name
		models[i] = v.Factory()
	}

	rep := &Report{
		Spec:     *spec,
		CleanAcc: src.CleanAcc,
		Grids:    make([]*core.Grid, 0, len(atks)),
	}
	cells := spec.CellCount()
	cell := 0
	for _, atk := range atks {
		g := &core.Grid{
			Attack:  atk.Name(),
			Dataset: vic.Test.Name,
			Eps:     append([]float64(nil), spec.Eps...),
			Victims: append([]string(nil), names...),
			Acc:     make([][]float64, len(spec.Eps)),
		}
		for ei, eps := range spec.Eps {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			cell++
			e.emit(Event{Kind: CellStarted, Suite: spec.Name, Attack: atk.Name(), Eps: eps, Cell: cell, Cells: cells})
			start := time.Now()
			adv, hit, err := e.cache.CraftedBatch(ctx, src.Net, test, atk, eps, opts)
			if err != nil {
				return nil, err
			}
			e.emit(Event{Kind: cacheKind(hit), Suite: spec.Name, Attack: atk.Name(), Eps: eps, Cell: cell, Cells: cells})
			row := make([]float64, len(models))
			for vi, m := range models {
				preds, _, err := e.cache.Predictions(ctx, m, adv, opts)
				if err != nil {
					return nil, err
				}
				row[vi] = core.Robustness(preds, test.Y)
			}
			g.Acc[ei] = row
			elapsed := time.Since(start)
			e.emit(Event{Kind: CellFinished, Suite: spec.Name, Attack: atk.Name(), Eps: eps, Cell: cell, Cells: cells, CacheHit: hit, Elapsed: elapsed})
			rep.Cells = append(rep.Cells, CellTiming{
				Attack:    atk.Name(),
				Eps:       eps,
				CacheHit:  hit,
				ElapsedMS: float64(elapsed) / float64(time.Millisecond),
			})
		}
		rep.Grids = append(rep.Grids, g)
	}
	return rep, nil
}

func cacheKind(hit bool) Kind {
	if hit {
		return CacheHit
	}
	return CacheMiss
}
