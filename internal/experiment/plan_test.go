package experiment

import (
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
)

// TestPlanCompilesGridMajor pins the compiled plan's shape: one grid
// per attack, cells grid-major in spec order, 1-based indices, and
// Total covering every cell — exactly the serial engine's historical
// sweep order, so plan order and report order coincide.
func TestPlanCompilesGridMajor(t *testing.T) {
	spec := validSpec()
	spec.Attacks = []string{"FGM-linf", "PGD-linf"}
	spec.Eps = []float64{0, 0.1, 0.2}
	plan, err := spec.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Grids) != 2 || plan.Grids[0] != "FGM-linf" || plan.Grids[1] != "PGD-linf" {
		t.Fatalf("plan grids = %v", plan.Grids)
	}
	if plan.Total != 6 || len(plan.Cells) != 6 {
		t.Fatalf("plan has %d cells, Total %d, want 6", len(plan.Cells), plan.Total)
	}
	for i, c := range plan.Cells {
		if c.Index != i+1 {
			t.Fatalf("cell %d has Index %d, want 1-based plan position", i, c.Index)
		}
		wantGrid, wantEps := i/3, i%3
		if c.Grid != wantGrid || c.EpsIdx != wantEps {
			t.Fatalf("cell %d = grid %d eps %d, want grid-major (%d, %d)", i, c.Grid, c.EpsIdx, wantGrid, wantEps)
		}
		if c.Attack != plan.Grids[c.Grid] || c.Eps != spec.Eps[c.EpsIdx] {
			t.Fatalf("cell %d carries (%s, %g), want (%s, %g)", i, c.Attack, c.Eps, plan.Grids[c.Grid], spec.Eps[c.EpsIdx])
		}
		if c.ID == "" {
			t.Fatalf("cell %d has no ID", i)
		}
	}
	if plan.Spec() != spec {
		t.Fatal("plan lost its spec")
	}
	if got := spec.CellCount(); got != plan.Total {
		t.Fatalf("CellCount = %d, plan Total = %d", got, plan.Total)
	}
}

// TestPlanRejectsInvalidSpec: compiling goes through Validate.
func TestPlanRejectsInvalidSpec(t *testing.T) {
	spec := validSpec()
	spec.Attacks = nil
	if _, err := spec.Plan(); err == nil {
		t.Fatal("plan of an invalid spec must fail")
	}
}

// TestPlanEOTGrid: a defense block with EOTSamples appends the
// adaptive grid after the declared attacks, under the exact name
// attack.NewEOT would report — the engine resolves the grid by this
// name, so drift here would strand the EOT cells.
func TestPlanEOTGrid(t *testing.T) {
	if got := attack.NewEOT(nil, attack.Linf, 4).Name(); got != EOTGridName {
		t.Fatalf("EOTGridName %q does not match attack.NewEOT's name %q", EOTGridName, got)
	}
	spec := validSpec()
	spec.Defense = &DefenseSpec{Kind: "ensemble", Pool: []string{"mul8u_1JFF"}, EOTSamples: 4}
	plan, err := spec.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Grids) != 2 || plan.Grids[1] != EOTGridName {
		t.Fatalf("defended plan grids = %v, want declared attacks + %s", plan.Grids, EOTGridName)
	}
	if spec.CellCount() != 2*len(spec.Eps) {
		t.Fatalf("CellCount = %d, want %d with the EOT grid", spec.CellCount(), 2*len(spec.Eps))
	}
	// EOTSamples = 0 must not add the grid.
	spec.Defense.EOTSamples = 0
	if plan, err = spec.Plan(); err != nil {
		t.Fatal(err)
	}
	if len(plan.Grids) != 1 {
		t.Fatalf("plan grew an EOT grid without EOTSamples: %v", plan.Grids)
	}
}

// TestPlanCellIDStability pins the content-derived identity contract:
// IDs survive execution-only knobs (Workers/Batch), alias under eps
// quantisation exactly like the crafting cache, and change whenever
// the protocol (attack, eps, seed) changes.
func TestPlanCellIDStability(t *testing.T) {
	ids := func(s *Spec) []CellID {
		plan, err := s.Plan()
		if err != nil {
			t.Fatal(err)
		}
		out := make([]CellID, len(plan.Cells))
		for i, c := range plan.Cells {
			out[i] = c.ID
		}
		return out
	}
	base := ids(validSpec())

	// Execution knobs don't perturb identity.
	knobs := validSpec()
	knobs.Workers, knobs.Batch = 7, 16
	for i, id := range ids(knobs) {
		if id != base[i] {
			t.Fatalf("cell %d changed ID under Workers/Batch: %s vs %s", i, id, base[i])
		}
	}

	// The eps component of the identity is the crafting cache's own
	// quantised key, so budgets that alias under EpsKey alias in the ID.
	if core.EpsKey(0.1+1e-12) != core.EpsKey(0.1) {
		t.Fatal("test eps does not alias under EpsKey; pick a smaller delta")
	}
	fp := validSpec().fingerprint()
	if cellID(fp, "FGM-linf", core.EpsKey(0.1+1e-12)) != cellID(fp, "FGM-linf", core.EpsKey(0.1)) {
		t.Fatal("quantisation-aliased eps produced distinct cell IDs")
	}
	if cellID(fp, "FGM-linf", core.EpsKey(0.1)) == cellID(fp, "PGD-linf", core.EpsKey(0.1)) {
		t.Fatal("distinct grids share a cell ID")
	}

	// Protocol changes do perturb identity.
	seeded := validSpec()
	seeded.Seed = 99
	for i, id := range ids(seeded) {
		if id == base[i] {
			t.Fatalf("cell %d kept its ID across a seed change", i)
		}
	}
	// Within one plan every cell ID is distinct.
	seen := map[CellID]bool{}
	for _, id := range base {
		if seen[id] {
			t.Fatalf("duplicate cell ID %s within one plan", id)
		}
		seen[id] = true
	}
}

// TestPlanRestrict: a restricted plan covers exactly the named grids
// while keeping the full plan's indices, IDs, and Total, so sharded
// events and merged reports number cells like a single-node run.
func TestPlanRestrict(t *testing.T) {
	spec := validSpec()
	spec.Attacks = []string{"FGM-linf", "PGD-linf", "BIM-linf"}
	plan, err := spec.Plan()
	if err != nil {
		t.Fatal(err)
	}
	sub, err := plan.Restrict([]string{"BIM-linf", "FGM-linf"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Grids) != 2 || sub.Grids[0] != "BIM-linf" || sub.Grids[1] != "FGM-linf" {
		t.Fatalf("restricted grids = %v", sub.Grids)
	}
	if sub.Total != plan.Total {
		t.Fatalf("restricted Total = %d, want full plan's %d", sub.Total, plan.Total)
	}
	if len(sub.Cells) != 2*len(spec.Eps) {
		t.Fatalf("restricted plan has %d cells, want %d", len(sub.Cells), 2*len(spec.Eps))
	}
	for _, c := range sub.Cells {
		if got := sub.Grids[c.Grid]; got != c.Attack {
			t.Fatalf("cell %s points at grid %q after restriction", c.Attack, got)
		}
		// The cell keeps its full-plan identity.
		full, ok := plan.CellAt(c.Attack, c.Eps)
		if !ok || full.Index != c.Index || full.ID != c.ID {
			t.Fatalf("restricted cell %s@%g lost its full-plan index/ID", c.Attack, c.Eps)
		}
	}
	if sub.Spec() != spec {
		t.Fatal("restricted plan lost the full spec")
	}

	for _, bad := range [][]string{
		nil,
		{"FGM-linf", "FGM-linf"},
		{"no-such-grid"},
	} {
		if _, err := plan.Restrict(bad); err == nil {
			t.Fatalf("Restrict(%v) must fail", bad)
		}
	}
	if _, err := plan.Restrict([]string{"FGM-linf", "FGM-linf"}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatal("duplicate grids must name the duplication")
	}
}

// TestPlanCellAt matches eps under the crafting cache's quantisation.
func TestPlanCellAt(t *testing.T) {
	plan, err := validSpec().Plan()
	if err != nil {
		t.Fatal(err)
	}
	c, ok := plan.CellAt("FGM-linf", 0.1+1e-12)
	if !ok || c.Eps != 0.1 || c.Index != 2 {
		t.Fatalf("CellAt(FGM-linf, ~0.1) = (%+v, %v)", c, ok)
	}
	if _, ok := plan.CellAt("FGM-linf", 0.5); ok {
		t.Fatal("CellAt must miss on an eps outside the sweep")
	}
	if _, ok := plan.CellAt("PGD-linf", 0.1); ok {
		t.Fatal("CellAt must miss on a grid outside the plan")
	}
}
