// Package core implements the paper's contribution: the adversarial
// robustness evaluation methodology for approximate DNN accelerators
// (Algorithm 1 and the analyses of Section IV).
//
// The protocol, faithful to the paper's threat model:
//
//  1. Adversarial examples are crafted against the accurate float DNN
//     (the adversary knows the model but not the accelerator's
//     inexactness) for every perturbation budget in the sweep.
//  2. Each crafted input is replayed on every victim — the quantized
//     accurate DNN and the AxDNNs, one per approximate multiplier.
//  3. Robustness is the percentage of test samples the victim still
//     classifies correctly: R(eps) = (1 - adv/|D|) * 100.
//
// The harness is batch-first and stateless: each (attack, eps) batch
// is crafted once on the shared source network (no per-worker clones),
// fanned across every victim with LogitsBatch, and memoised in a
// Cache keyed by (source, samples, attack, eps, seed) so multi-grid
// sweeps never re-craft identical examples. Victim predictions are
// memoised per (victim, batch) too, so overlapping sweeps — the
// attack-independent eps=0 clean row, or the same (attack, eps) cell
// across figures — replay nothing twice.
//
// Caches are injectable (Options.Cache): each engine owns its own,
// two engines never interfere, and the crafting/prediction worker
// loops observe context cancellation. RobustnessGridCtx is the full
// API; RobustnessGrid is a compatibility wrapper over the shared
// default cache. Whole declared suites (many attacks, one spec, one
// cache, streaming progress) live one level up in
// internal/experiment.
package core

import (
	"context"
	"math"
	"runtime"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Victim is a named classifier under evaluation. Factory is invoked
// once per RobustnessGrid call and must return a model that is safe
// for concurrent Logits calls — both the float nn networks and
// compiled axnn networks now are. Models that additionally implement
// attack.BatchModel are evaluated with LogitsBatch. Factories that
// return a stable model across calls additionally let the prediction
// memo span grids.
type Victim struct {
	Name    string
	Factory func() attack.Model
}

// NewVictim wraps a concurrency-safe model (e.g. a compiled axnn
// network) as a victim.
func NewVictim(name string, m attack.Model) Victim {
	return Victim{Name: name, Factory: func() attack.Model { return m }}
}

// NewFloatVictim wraps a float nn network. Inference on nn networks is
// stateless, so the network is shared as-is — no per-worker cloning.
func NewFloatVictim(name string, n *nn.Network) Victim {
	return Victim{Name: name, Factory: func() attack.Model { return n }}
}

// Options tunes a robustness evaluation.
type Options struct {
	// Samples caps the number of test samples (0 = all).
	Samples int
	// Seed drives the attack randomness; each (sample, eps) pair gets
	// an independent deterministic stream.
	Seed int64
	// Workers caps parallelism (0 = GOMAXPROCS).
	Workers int
	// Batch caps the crafting/evaluation batch size (0 = derived from
	// the worker count, at most maxBatch).
	Batch int
	// Cache memoises crafted batches and victim predictions. nil
	// selects the shared package default (DefaultCache); engines that
	// must not interfere with each other inject their own NewCache.
	Cache *Cache
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) cache() *Cache {
	if o.Cache != nil {
		return o.Cache
	}
	return defaultCache
}

// maxBatch bounds the default batch on huge sample counts. With the
// pooled workspace arenas in axnn (im2col/accumulator scratch is
// checked out per call and reused across layers, samples, and grid
// cells), the per-batch setup no longer scales with batch size, so
// larger default batches amortise quantization passes and chunk
// boundaries while the arena keeps memory bounded.
const maxBatch = 64

// batchSize derives the crafting batch: small enough that every worker
// gets work, large enough to amortise the batched engine's setup.
func (o Options) batchSize(n int) int {
	if o.Batch > 0 {
		return o.Batch
	}
	w := o.workers()
	b := (n + w - 1) / w
	if b > maxBatch {
		b = maxBatch
	}
	if b < 1 {
		b = 1
	}
	return b
}

// Grid is the result of sweeping one attack over perturbation budgets
// and victims — one paper heat-map panel (Figs. 4-7).
type Grid struct {
	Attack  string    `json:"attack"`
	Dataset string    `json:"dataset"`
	Eps     []float64 `json:"eps"`
	Victims []string  `json:"victims"`
	// Acc[ei][vi] is the percentage robustness of victim vi at Eps[ei].
	Acc [][]float64 `json:"acc"`
}

// RobustnessGrid runs Algorithm 1 with the shared default cache and
// no cancellation — the one-call compatibility path. New code that
// needs cancellation, progress, or an isolated cache should use
// RobustnessGridCtx (or the internal/experiment engine for whole
// suites).
func RobustnessGrid(src *nn.Network, victims []Victim, set *dataset.Set, atk attack.Attack, eps []float64, opts Options) *Grid {
	g, err := RobustnessGridCtx(context.Background(), src, victims, set, atk, eps, opts)
	if err != nil {
		// Unreachable: the only error source is ctx cancellation and
		// the background context never cancels.
		panic(err)
	}
	return g
}

// RobustnessGridCtx runs Algorithm 1: for every budget in eps, craft
// adversarial examples on the accurate source model (or recall them
// from the cache) and evaluate every victim on them. It returns
// ctx.Err() promptly — at the next crafting/evaluation chunk boundary
// — when ctx is cancelled, leaking no goroutines and memoising no
// partial results.
func RobustnessGridCtx(ctx context.Context, src *nn.Network, victims []Victim, set *dataset.Set, atk attack.Attack, eps []float64, opts Options) (*Grid, error) {
	test := set.Slice(opts.Samples)
	g := &Grid{
		Attack:  atk.Name(),
		Dataset: set.Name,
		Eps:     append([]float64(nil), eps...),
		Acc:     make([][]float64, len(eps)),
	}
	models := make([]attack.Model, len(victims))
	for i, v := range victims {
		g.Victims = append(g.Victims, v.Name)
		models[i] = v.Factory()
	}
	if test.Len() == 0 {
		// Degenerate sweep: no samples to craft or score.
		for ei := range eps {
			row := make([]float64, len(victims))
			for i := range row {
				row[i] = math.NaN()
			}
			g.Acc[ei] = row
		}
		return g, nil
	}
	cache := opts.cache()
	for ei, e := range eps {
		adv, _, err := cache.CraftedBatch(ctx, src, test, atk, e, opts)
		if err != nil {
			return nil, err
		}
		row := make([]float64, len(models))
		for vi, m := range models {
			preds, _, err := cache.Predictions(ctx, m, adv, opts)
			if err != nil {
				return nil, err
			}
			row[vi] = Robustness(preds, test.Y)
		}
		g.Acc[ei] = row
	}
	return g, nil
}

// Robustness scores predictions against labels as the paper's
// percentage metric: R = (1 - adv/|D|) * 100.
func Robustness(preds, labels []int) float64 {
	var correct int
	for i, p := range preds {
		if p == labels[i] {
			correct++
		}
	}
	return 100 * float64(correct) / float64(len(labels))
}

// craftKey identifies one crafted adversarial batch. Sample identity
// is captured by pointer (the cache is in-memory only and datasets are
// immutable); source identity is the network pointer plus a weights
// fingerprint, so retraining a network in place invalidates its
// entries instead of serving stale adversarial examples.
type craftKey struct {
	src    *nn.Network
	srcFP  uint64
	first  *tensor.T
	n      int
	attack string
	// epsQ is the quantised budget (see EpsKey): budgets the Grid API
	// treats as equal must hit the same entry.
	epsQ int64
	seed int64
}

// predKey identifies one victim's predictions over one crafted batch.
// Models and batches are pointer identities (compiled axnn networks
// are immutable; batches are cache-retained tensors); mutable models
// that expose a weights fingerprint (float nn networks) additionally
// carry it, so retraining in place invalidates their memos. Models
// with a declared config identity (ModelKeyer) are keyed by that
// string instead of the pointer, so rebuilding an identical victim —
// a fresh defense ensemble per engine run — still hits the memo and
// the key does not pin the dead instance.
type predKey struct {
	model   attack.Model
	modelFP uint64
	key     string
	batch   *tensor.T
}

// fingerprinter is implemented by mutable models (nn.Network) whose
// cache entries must track weight changes.
type fingerprinter interface {
	WeightsFingerprint() uint64
}

// ModelKeyer is implemented by victims whose behaviour is fully
// determined by a configuration string (defense.Ensemble: pool,
// source-weights fingerprint, quantization, draw seed). Their
// prediction memos are keyed by that string, surviving across engine
// runs and service jobs that rebuild the victim instance.
type ModelKeyer interface {
	ModelKey() string
}

// EpsKey quantises a budget to the same tolerance Grid.At uses for
// comparison (epsTolerance), so budgets the API treats as equal craft
// identically: same rng salt, same cache entry. Exported so spec
// validation (internal/experiment) can reject budget lists that would
// alias in the cache and the Grid accessors.
func EpsKey(eps float64) int64 {
	return int64(math.Round(eps / epsTolerance))
}

// epsTolerance is the budget comparison tolerance shared by the Grid
// accessors and the crafting cache: budgets within it are the same
// cell (absorbs float64 round-off in arithmetic like 0.05*i).
const epsTolerance = 1e-9

// epsEqual compares budgets within epsTolerance.
func epsEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= epsTolerance
}

// At returns the robustness of victim name at budget eps, and whether
// the grid contains that cell.
func (g *Grid) At(eps float64, name string) (float64, bool) {
	ei, vi := -1, -1
	for i, e := range g.Eps {
		if epsEqual(e, eps) {
			ei = i
		}
	}
	for i, v := range g.Victims {
		if v == name {
			vi = i
		}
	}
	if ei < 0 || vi < 0 {
		return 0, false
	}
	return g.Acc[ei][vi], true
}

// Column returns victim name's robustness across all budgets and
// whether the grid has that victim at all — so an absent victim is
// distinguishable from one with no budgets.
func (g *Grid) Column(name string) ([]float64, bool) {
	for vi, v := range g.Victims {
		if v == name {
			col := make([]float64, len(g.Eps))
			for ei := range g.Eps {
				col[ei] = g.Acc[ei][vi]
			}
			return col, true
		}
	}
	return nil, false
}

// MaxAccuracyLoss returns the largest drop from the eps=0 (clean)
// row observed anywhere in the grid, with the victim and budget where
// it happens — the paper's headline "X% accuracy loss" statistic.
// If the grid has no eps=0 row, the smallest budget's row is the
// baseline.
func (g *Grid) MaxAccuracyLoss() (loss float64, victim string, eps float64) {
	if len(g.Acc) == 0 {
		return 0, "", 0
	}
	bi := 0
	for i, e := range g.Eps {
		if epsEqual(e, 0) {
			bi = i
			break
		}
		if e < g.Eps[bi] {
			bi = i
		}
	}
	base := g.Acc[bi]
	for ei := range g.Eps {
		for vi := range g.Victims {
			if d := base[vi] - g.Acc[ei][vi]; d > loss {
				loss, victim, eps = d, g.Victims[vi], g.Eps[ei]
			}
		}
	}
	return loss, victim, eps
}
