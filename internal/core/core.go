// Package core implements the paper's contribution: the adversarial
// robustness evaluation methodology for approximate DNN accelerators
// (Algorithm 1 and the analyses of Section IV).
//
// The protocol, faithful to the paper's threat model:
//
//  1. Adversarial examples are crafted against the accurate float DNN
//     (the adversary knows the model but not the accelerator's
//     inexactness) for every perturbation budget in the sweep.
//  2. Each crafted input is replayed on every victim — the quantized
//     accurate DNN and the AxDNNs, one per approximate multiplier.
//  3. Robustness is the percentage of test samples the victim still
//     classifies correctly: R(eps) = (1 - adv/|D|) * 100.
//
// Because step 1 is independent of the victim, each (attack, eps,
// sample) adversarial example is crafted once and amortised across all
// victims, exactly as Algorithm 1's loop nesting implies.
package core

import (
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Victim is a named classifier under evaluation. Factory must return an
// instance safe for use by a single goroutine; thread-safe models may
// return themselves.
type Victim struct {
	Name    string
	Factory func() attack.Model
}

// NewVictim wraps a concurrency-safe model (e.g. a compiled axnn
// network) as a victim.
func NewVictim(name string, m attack.Model) Victim {
	return Victim{Name: name, Factory: func() attack.Model { return m }}
}

// NewFloatVictim wraps a float nn network, cloning it per worker since
// its forward pass caches activations.
func NewFloatVictim(name string, n *nn.Network) Victim {
	return Victim{Name: name, Factory: func() attack.Model { return n.Clone() }}
}

// Options tunes a robustness evaluation.
type Options struct {
	// Samples caps the number of test samples (0 = all).
	Samples int
	// Seed drives the attack randomness; each (sample, eps) pair gets
	// an independent deterministic stream.
	Seed int64
	// Workers caps parallelism (0 = GOMAXPROCS).
	Workers int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Grid is the result of sweeping one attack over perturbation budgets
// and victims — one paper heat-map panel (Figs. 4-7).
type Grid struct {
	Attack  string
	Dataset string
	Eps     []float64
	Victims []string
	// Acc[ei][vi] is the percentage robustness of victim vi at Eps[ei].
	Acc [][]float64
}

// RobustnessGrid runs Algorithm 1: for every budget in eps, craft
// adversarial examples on the accurate source model and evaluate every
// victim on them.
func RobustnessGrid(src *nn.Network, victims []Victim, set *dataset.Set, atk attack.Attack, eps []float64, opts Options) *Grid {
	test := set.Slice(opts.Samples)
	g := &Grid{
		Attack:  atk.Name(),
		Dataset: set.Name,
		Eps:     append([]float64(nil), eps...),
		Acc:     make([][]float64, len(eps)),
	}
	for _, v := range victims {
		g.Victims = append(g.Victims, v.Name)
	}
	for ei, e := range eps {
		g.Acc[ei] = evaluateOnce(src, victims, test, atk, e, opts, ei)
	}
	return g
}

// evaluateOnce crafts adversarial examples at a single budget and
// returns per-victim robustness percentages.
func evaluateOnce(src *nn.Network, victims []Victim, test *dataset.Set, atk attack.Attack, eps float64, opts Options, epsIdx int) []float64 {
	workers := opts.workers()
	if workers > test.Len() {
		workers = test.Len()
	}
	correct := make([][]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			srcLocal := src.Clone()
			vlocal := make([]attack.Model, len(victims))
			for i, v := range victims {
				vlocal[i] = v.Factory()
			}
			cnt := make([]int64, len(victims))
			for i := w; i < test.Len(); i += workers {
				rng := rand.New(rand.NewSource(opts.Seed + int64(i)*1_000_003 + int64(epsIdx)*7_919))
				adv := atk.Perturb(srcLocal, test.X[i], test.Y[i], eps, rng)
				for vi, vm := range vlocal {
					if tensor.ArgMax(vm.Logits(adv)) == test.Y[i] {
						cnt[vi]++
					}
				}
			}
			correct[w] = cnt
		}(w)
	}
	wg.Wait()
	out := make([]float64, len(victims))
	for vi := range victims {
		var c int64
		for w := 0; w < workers; w++ {
			c += correct[w][vi]
		}
		out[vi] = 100 * float64(c) / float64(test.Len())
	}
	return out
}

// At returns the robustness of victim name at budget eps, and whether
// the grid contains that cell.
func (g *Grid) At(eps float64, name string) (float64, bool) {
	ei, vi := -1, -1
	for i, e := range g.Eps {
		if e == eps {
			ei = i
		}
	}
	for i, v := range g.Victims {
		if v == name {
			vi = i
		}
	}
	if ei < 0 || vi < 0 {
		return 0, false
	}
	return g.Acc[ei][vi], true
}

// Column returns victim name's robustness across all budgets.
func (g *Grid) Column(name string) []float64 {
	for vi, v := range g.Victims {
		if v == name {
			col := make([]float64, len(g.Eps))
			for ei := range g.Eps {
				col[ei] = g.Acc[ei][vi]
			}
			return col
		}
	}
	return nil
}

// MaxAccuracyLoss returns the largest drop from the eps=0 row observed
// anywhere in the grid, with the victim and budget where it happens —
// the paper's headline "X% accuracy loss" statistic.
func (g *Grid) MaxAccuracyLoss() (loss float64, victim string, eps float64) {
	if len(g.Acc) == 0 {
		return 0, "", 0
	}
	base := g.Acc[0]
	for ei := range g.Eps {
		for vi := range g.Victims {
			if d := base[vi] - g.Acc[ei][vi]; d > loss {
				loss, victim, eps = d, g.Victims[vi], g.Eps[ei]
			}
		}
	}
	return loss, victim, eps
}
