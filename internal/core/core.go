// Package core implements the paper's contribution: the adversarial
// robustness evaluation methodology for approximate DNN accelerators
// (Algorithm 1 and the analyses of Section IV).
//
// The protocol, faithful to the paper's threat model:
//
//  1. Adversarial examples are crafted against the accurate float DNN
//     (the adversary knows the model but not the accelerator's
//     inexactness) for every perturbation budget in the sweep.
//  2. Each crafted input is replayed on every victim — the quantized
//     accurate DNN and the AxDNNs, one per approximate multiplier.
//  3. Robustness is the percentage of test samples the victim still
//     classifies correctly: R(eps) = (1 - adv/|D|) * 100.
//
// The harness is batch-first and stateless: each (attack, eps) batch
// is crafted once on the shared source network (no per-worker clones),
// fanned across every victim with LogitsBatch, and memoised in an
// in-memory crafted-example cache keyed by (source, samples, attack,
// eps, seed) so multi-grid sweeps never re-craft identical examples.
// Victim predictions are memoised per (victim, batch) too, so
// overlapping sweeps — the attack-independent eps=0 clean row, or the
// same (attack, eps) cell across figures — replay nothing twice.
package core

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Victim is a named classifier under evaluation. Factory is invoked
// once per RobustnessGrid call and must return a model that is safe
// for concurrent Logits calls — both the float nn networks and
// compiled axnn networks now are. Models that additionally implement
// attack.BatchModel are evaluated with LogitsBatch. Factories that
// return a stable model across calls additionally let the prediction
// memo span grids.
type Victim struct {
	Name    string
	Factory func() attack.Model
}

// NewVictim wraps a concurrency-safe model (e.g. a compiled axnn
// network) as a victim.
func NewVictim(name string, m attack.Model) Victim {
	return Victim{Name: name, Factory: func() attack.Model { return m }}
}

// NewFloatVictim wraps a float nn network. Inference on nn networks is
// stateless, so the network is shared as-is — no per-worker cloning.
func NewFloatVictim(name string, n *nn.Network) Victim {
	return Victim{Name: name, Factory: func() attack.Model { return n }}
}

// Options tunes a robustness evaluation.
type Options struct {
	// Samples caps the number of test samples (0 = all).
	Samples int
	// Seed drives the attack randomness; each (sample, eps) pair gets
	// an independent deterministic stream.
	Seed int64
	// Workers caps parallelism (0 = GOMAXPROCS).
	Workers int
	// Batch caps the crafting/evaluation batch size (0 = derived from
	// the worker count, at most maxBatch).
	Batch int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// maxBatch bounds the default batch so im2col buffers stay cache- and
// memory-friendly even on huge sample counts.
const maxBatch = 32

// batchSize derives the crafting batch: small enough that every worker
// gets work, large enough to amortise the batched engine's setup.
func (o Options) batchSize(n int) int {
	if o.Batch > 0 {
		return o.Batch
	}
	w := o.workers()
	b := (n + w - 1) / w
	if b > maxBatch {
		b = maxBatch
	}
	if b < 1 {
		b = 1
	}
	return b
}

// Grid is the result of sweeping one attack over perturbation budgets
// and victims — one paper heat-map panel (Figs. 4-7).
type Grid struct {
	Attack  string
	Dataset string
	Eps     []float64
	Victims []string
	// Acc[ei][vi] is the percentage robustness of victim vi at Eps[ei].
	Acc [][]float64
}

// RobustnessGrid runs Algorithm 1: for every budget in eps, craft
// adversarial examples on the accurate source model and evaluate every
// victim on them.
func RobustnessGrid(src *nn.Network, victims []Victim, set *dataset.Set, atk attack.Attack, eps []float64, opts Options) *Grid {
	test := set.Slice(opts.Samples)
	g := &Grid{
		Attack:  atk.Name(),
		Dataset: set.Name,
		Eps:     append([]float64(nil), eps...),
		Acc:     make([][]float64, len(eps)),
	}
	models := make([]attack.Model, len(victims))
	for i, v := range victims {
		g.Victims = append(g.Victims, v.Name)
		models[i] = v.Factory()
	}
	if test.Len() == 0 {
		// Degenerate sweep: no samples to craft or score.
		for ei := range eps {
			row := make([]float64, len(victims))
			for i := range row {
				row[i] = math.NaN()
			}
			g.Acc[ei] = row
		}
		return g
	}
	for ei, e := range eps {
		g.Acc[ei] = evaluateOnce(src, models, test, atk, e, opts)
	}
	return g
}

// evaluateOnce crafts (or recalls) the adversarial batch at a single
// budget and returns per-victim robustness percentages.
func evaluateOnce(src *nn.Network, models []attack.Model, test *dataset.Set, atk attack.Attack, eps float64, opts Options) []float64 {
	adv := craftedBatch(src, test, atk, eps, opts)
	out := make([]float64, len(models))
	for vi, m := range models {
		preds := victimPredictions(m, adv, opts)
		var correct int64
		for i, p := range preds {
			if p == test.Y[i] {
				correct++
			}
		}
		out[vi] = 100 * float64(correct) / float64(test.Len())
	}
	return out
}

// craftKey identifies one crafted adversarial batch. Sample identity
// is captured by pointer (the cache is in-memory only and datasets are
// immutable); source identity is the network pointer plus a weights
// fingerprint, so retraining a network in place invalidates its
// entries instead of serving stale adversarial examples.
type craftKey struct {
	src    *nn.Network
	srcFP  uint64
	first  *tensor.T
	n      int
	attack string
	// epsQ is the quantised budget (see epsKey): budgets the Grid API
	// treats as equal must hit the same entry.
	epsQ int64
	seed int64
}

// craftCache memoises crafted batches across grids: bench figures
// E1-E15 and the cmd tools sweep several grids whose (attack, eps,
// seed, sample) cells coincide, and step 1 of Algorithm 1 is
// victim-independent, so identical cells never need re-crafting.
var craftCache sync.Map

// predKey identifies one victim's predictions over one crafted batch.
// Models and batches are pointer identities (compiled axnn networks
// are immutable; batches are craftCache tensors); mutable models that
// expose a weights fingerprint (float nn networks) additionally carry
// it, so retraining in place invalidates their memos.
type predKey struct {
	model   attack.Model
	modelFP uint64
	batch   *tensor.T
}

// fingerprinter is implemented by mutable models (nn.Network) whose
// cache entries must track weight changes.
type fingerprinter interface {
	WeightsFingerprint() uint64
}

// predCache is the victim-side analog of craftCache: sweeps replay the
// same crafted batch on the same victim whenever grids overlap (the
// shared eps=0 clean row across all attacks, repeated (attack, eps)
// cells across figure benches and cmd tools), so per-row argmaxes are
// memoised per (victim, batch).
var predCache sync.Map

// craftCacheBudget bounds the total float32 elements retained across
// crafted batches (default ~128 MB). Exceeding it resets both caches —
// a simple epoch eviction that keeps any one sweep fully cached while
// keeping long-lived processes bounded. Var, not const, so tests can
// shrink it.
var craftCacheBudget int64 = 32 << 20

// predCacheMax bounds the number of prediction memos independently of
// the craft budget: prediction slices are tiny, but their keys pin
// victim models, which must not accumulate forever in processes that
// keep compiling fresh victims over small sample sets.
var predCacheMax int64 = 4096

// craftCacheSize and predCacheCount approximately track retention.
var (
	craftCacheSize atomic.Int64
	predCacheCount atomic.Int64
)

// storeCrafted memoises one batch, resetting the caches first when the
// retention budget would be exhausted. It returns the retained tensor:
// when two goroutines race on the same cell, both callers converge on
// the single stored batch and the size accounting counts it once.
func storeCrafted(key craftKey, b *tensor.T) *tensor.T {
	if craftCacheSize.Load()+int64(b.Len()) > craftCacheBudget {
		ClearCraftedCache()
	}
	if prev, loaded := craftCache.LoadOrStore(key, b); loaded {
		return prev.(*tensor.T)
	}
	craftCacheSize.Add(int64(b.Len()))
	return b
}

// storePreds memoises one victim's predictions under the same epoch
// eviction scheme. Only the prediction memos are dropped on overflow —
// crafted batches are expensive and stay until their own budget trips.
func storePreds(key predKey, preds []int) {
	if predCacheCount.Load() >= predCacheMax {
		clearPredCache()
	}
	if _, loaded := predCache.LoadOrStore(key, preds); !loaded {
		predCacheCount.Add(1)
	}
}

// ClearCraftedCache drops every memoised adversarial batch and victim
// prediction. Weight changes invalidate entries automatically (the
// keys fingerprint the network), so this exists to reclaim memory in
// long-running sweeps ahead of the automatic budget eviction.
func ClearCraftedCache() {
	craftCache.Range(func(k, _ any) bool {
		craftCache.Delete(k)
		return true
	})
	craftCacheSize.Store(0)
	clearPredCache()
}

func clearPredCache() {
	predCache.Range(func(k, _ any) bool {
		predCache.Delete(k)
		return true
	})
	predCacheCount.Store(0)
}

// CraftedCacheLen reports the number of memoised (attack, eps, seed)
// batches.
func CraftedCacheLen() int {
	n := 0
	craftCache.Range(func(_, _ any) bool {
		n++
		return true
	})
	return n
}

// epsKey quantises a budget to the same tolerance Grid.At uses for
// comparison (epsTolerance), so budgets the API treats as equal craft
// identically: same rng salt, same cache entry.
func epsKey(eps float64) int64 {
	return int64(math.Round(eps / epsTolerance))
}

// craftedBatch returns the [N, sampleShape...] adversarial batch for
// one (attack, eps) cell, crafting it in parallel batches on first use.
func craftedBatch(src *nn.Network, test *dataset.Set, atk attack.Attack, eps float64, opts Options) *tensor.T {
	epsQ := epsKey(eps)
	if epsQ == 0 {
		return cleanBatch(test)
	}
	key := craftKey{
		src: src, srcFP: src.WeightsFingerprint(),
		first: test.X[0], n: test.Len(),
		// ConfigKey, not Name: tunable attack parameters (BIM/PGD
		// steps) must never share cache entries.
		attack: attack.ConfigKey(atk), epsQ: epsQ, seed: opts.Seed,
	}
	if v, ok := craftCache.Load(key); ok {
		return v.(*tensor.T)
	}

	n := test.Len()
	batk := attack.AsBatch(atk)
	adv := tensor.New(append([]int{n}, test.X[0].Shape...)...)
	chunk := opts.batchSize(n)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	workers := opts.workers()
	if workers > (n+chunk-1)/chunk {
		workers = (n + chunk - 1) / chunk
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				lo := next
				next += chunk
				mu.Unlock()
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				xs := tensor.Stack(test.X[lo:hi])
				rngs := make([]*rand.Rand, hi-lo)
				for i := range rngs {
					// Per-sample stream keyed by (seed, sample, eps):
					// independent of batch chunking and sweep shape, so
					// cached and freshly crafted batches agree bit for
					// bit.
					rngs[i] = rand.New(rand.NewSource(opts.Seed + int64(lo+i)*1_000_003 + epsQ*7_919))
				}
				out := batk.PerturbBatch(src, xs, test.Y[lo:hi], eps, rngs)
				copy(adv.RowView(lo, hi).Data, out.Data)
			}
		}()
	}
	wg.Wait()
	return storeCrafted(key, adv)
}

// cleanBatch returns the memoised stacked clean inputs — the eps=0
// cell of every attack's sweep, which is attack- and seed-independent
// (all attacks are the identity at zero budget, pinned by the attack
// tests).
func cleanBatch(test *dataset.Set) *tensor.T {
	key := craftKey{first: test.X[0], n: test.Len()}
	if v, ok := craftCache.Load(key); ok {
		return v.(*tensor.T)
	}
	return storeCrafted(key, tensor.Stack(test.X))
}

// victimPredictions scores one victim over the crafted batch, using
// the batched path when the model supports it and memoising per
// (victim, batch).
func victimPredictions(m attack.Model, adv *tensor.T, opts Options) []int {
	key := predKey{model: m, batch: adv}
	if f, ok := m.(fingerprinter); ok {
		key.modelFP = f.WeightsFingerprint()
	}
	if v, ok := predCache.Load(key); ok {
		return v.([]int)
	}
	n := adv.Rows()
	preds := make([]int, n)
	chunk := opts.batchSize(n)
	workers := opts.workers()
	if workers > (n+chunk-1)/chunk {
		workers = (n + chunk - 1) / chunk
	}
	bm, batched := m.(attack.BatchModel)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				lo := next
				next += chunk
				mu.Unlock()
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				if batched {
					copy(preds[lo:hi], tensor.ArgMaxRows(bm.LogitsBatch(adv.RowView(lo, hi))))
				} else {
					for i := lo; i < hi; i++ {
						preds[i] = tensor.ArgMax(m.Logits(adv.Row(i)))
					}
				}
			}
		}()
	}
	wg.Wait()
	storePreds(key, preds)
	return preds
}

// epsTolerance is the budget comparison tolerance shared by the Grid
// accessors and the crafting cache: budgets within it are the same
// cell (absorbs float64 round-off in arithmetic like 0.05*i).
const epsTolerance = 1e-9

// epsEqual compares budgets within epsTolerance.
func epsEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= epsTolerance
}

// At returns the robustness of victim name at budget eps, and whether
// the grid contains that cell.
func (g *Grid) At(eps float64, name string) (float64, bool) {
	ei, vi := -1, -1
	for i, e := range g.Eps {
		if epsEqual(e, eps) {
			ei = i
		}
	}
	for i, v := range g.Victims {
		if v == name {
			vi = i
		}
	}
	if ei < 0 || vi < 0 {
		return 0, false
	}
	return g.Acc[ei][vi], true
}

// Column returns victim name's robustness across all budgets.
func (g *Grid) Column(name string) []float64 {
	for vi, v := range g.Victims {
		if v == name {
			col := make([]float64, len(g.Eps))
			for ei := range g.Eps {
				col[ei] = g.Acc[ei][vi]
			}
			return col
		}
	}
	return nil
}

// MaxAccuracyLoss returns the largest drop from the eps=0 (clean)
// row observed anywhere in the grid, with the victim and budget where
// it happens — the paper's headline "X% accuracy loss" statistic.
// If the grid has no eps=0 row, the smallest budget's row is the
// baseline.
func (g *Grid) MaxAccuracyLoss() (loss float64, victim string, eps float64) {
	if len(g.Acc) == 0 {
		return 0, "", 0
	}
	bi := 0
	for i, e := range g.Eps {
		if epsEqual(e, 0) {
			bi = i
			break
		}
		if e < g.Eps[bi] {
			bi = i
		}
	}
	base := g.Acc[bi]
	for ei := range g.Eps {
		for vi := range g.Victims {
			if d := base[vi] - g.Acc[ei][vi]; d > loss {
				loss, victim, eps = d, g.Victims[vi], g.Eps[ei]
			}
		}
	}
	return loss, victim, eps
}
