package core

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/axmult"
	"repro/internal/axnn"
	"repro/internal/dataset"
	"repro/internal/nn"
)

// BuildAxVictims compiles the trained float network once (with the
// given calibration samples and quantization options) and returns one
// victim per multiplier name — the paper's M1..Mn columns. The first
// name is conventionally the accurate design (mul8u_1JFF), making that
// column the quantized accurate DNN.
func BuildAxVictims(src *nn.Network, calib *dataset.Set, mults []string, opts axnn.Options) ([]Victim, error) {
	base, err := axnn.Compile(src, calib.Inputs(64), opts)
	if err != nil {
		return nil, fmt.Errorf("core: compiling %s: %w", src.Name, err)
	}
	victims := make([]Victim, 0, len(mults))
	for _, name := range mults {
		lut, err := axmult.Lookup(name)
		if err != nil {
			return nil, err
		}
		victims = append(victims, NewVictim(name, base.WithMultiplier(lut)))
	}
	return victims, nil
}

// QuantPair returns the Fig. 8 victim pair: the non-quantized float
// network and its 8-bit quantized (exact-multiplier) counterpart.
func QuantPair(src *nn.Network, calib *dataset.Set, bits uint) ([]Victim, error) {
	q, err := axnn.Compile(src, calib.Inputs(64), axnn.Options{Bits: bits})
	if err != nil {
		return nil, err
	}
	return []Victim{
		NewFloatVictim("float", src),
		NewVictim(fmt.Sprintf("q%d", bitsLabel(bits)), q),
	}, nil
}

func bitsLabel(bits uint) uint {
	if bits == 0 || bits > 8 {
		return 8
	}
	return bits
}

// TransferResult is one cell of the paper's Table II: accuracy of a
// victim before and after replaying adversarial examples crafted on a
// different source model.
type TransferResult struct {
	Source  string
	Victim  string
	Dataset string
	// CleanAcc and AdvAcc are percentages ("X/Y" in Table II).
	CleanAcc float64
	AdvAcc   float64
}

// Transfer crafts adversarial examples on src (accurate float model)
// and measures victim accuracy before and after — the paper's
// transferability protocol with BIM-linf at eps=0.05.
func Transfer(src *nn.Network, victim Victim, set *dataset.Set, atk attack.Attack, eps float64, opts Options) TransferResult {
	g := RobustnessGrid(src, []Victim{victim}, set, atk, []float64{0, eps}, opts)
	return TransferResult{
		Source:   src.Name,
		Victim:   victim.Name,
		Dataset:  set.Name,
		CleanAcc: g.Acc[0][0],
		AdvAcc:   g.Acc[1][0],
	}
}

// String renders the result in Table II's "before/after" notation.
func (t TransferResult) String() string {
	return fmt.Sprintf("%s -> %s on %s: %.0f/%.0f", t.Source, t.Victim, t.Dataset, t.CleanAcc, t.AdvAcc)
}
