package core

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/tensor"
)

// Stage latency histograms in the process-wide registry. Both observe
// only cache-miss work (a memory hit costs a map load and is not a
// stage): craft covers the disk probe plus any recompute, predict
// covers victim scoring.
var (
	craftHist = obs.Default.Histogram("ax_craft_duration_seconds",
		"Adversarial batch crafting latency on cache misses (disk probe + compute), in seconds.")
	predictHist = obs.Default.Histogram("ax_predict_duration_seconds",
		"Victim prediction latency on cache misses (disk probe + compute), in seconds.")
)

// CacheConfig bounds a Cache's retention. The zero value selects the
// defaults.
type CacheConfig struct {
	// CraftBudget bounds the total float32 elements retained across
	// crafted batches (default ~128 MB worth). Exceeding it resets the
	// cache — a simple epoch eviction that keeps any one sweep fully
	// cached while keeping long-lived processes bounded.
	CraftBudget int64
	// PredMax bounds the number of prediction memos independently of
	// the craft budget: prediction slices are tiny, but their keys pin
	// victim models, which must not accumulate forever in processes
	// that keep compiling fresh victims over small sample sets.
	PredMax int64
	// Disk adds an optional persistent tier under the in-memory one: a
	// memory miss probes the store by the artifact's stable
	// content-addressed key (see diskcodec.go) before recomputing, and
	// freshly computed artifacts are written through. A cold process
	// over a warm store therefore serves a repeated suite with zero
	// re-crafting. nil (the default) keeps the cache memory-only with
	// exactly the previous behavior.
	Disk *store.Store
}

const (
	defaultCraftBudget int64 = 32 << 20
	defaultPredMax     int64 = 4096
)

// Cache memoises crafted adversarial batches and victim predictions
// for one evaluation engine. Step 1 of Algorithm 1 is
// victim-independent, so identical (source, samples, attack, eps,
// seed) cells never need re-crafting; the victim side memoises per
// (victim, batch) so overlapping sweeps — the attack-independent
// eps=0 clean row, or the same cell across figures — replay nothing
// twice.
//
// Each Cache is independent: two engines with their own caches never
// observe each other's entries. A zero Cache is not usable; construct
// with NewCache. All methods are safe for concurrent use.
type Cache struct {
	craft       sync.Map // craftKey -> *tensor.T
	pred        sync.Map // predKey -> []int
	craftSize   atomic.Int64
	predCount   atomic.Int64
	craftBudget int64
	predMax     int64
	// disk is the optional persistent tier (CacheConfig.Disk): probed
	// on memory misses, written through on computes. Store failures
	// degrade to recomputes, never to errors on the evaluation path.
	disk *store.Store

	// Lifetime counters behind Stats. They are monotone: Clear and the
	// budget evictions drop entries but never reset the counters, so
	// long-lived services can export them as Prometheus-style counters.
	craftHits      atomic.Int64
	craftMisses    atomic.Int64
	predHits       atomic.Int64
	predMisses     atomic.Int64
	craftEvictions atomic.Int64
	predEvictions  atomic.Int64

	// Disk-tier counters. diskCraft/diskPred hits and misses partition
	// the memory misses that went on to probe the store; diskErrors
	// counts store writes that failed and stored values that would not
	// decode (both degrade to recomputes).
	diskCraftHits   atomic.Int64
	diskCraftMisses atomic.Int64
	diskPredHits    atomic.Int64
	diskPredMisses  atomic.Int64
	diskErrors      atomic.Int64
}

// CacheStats is a point-in-time snapshot of a cache's counters — the
// surface a metrics endpoint scrapes and cache tests assert directly
// (instead of inferring hits from event streams or entry counts).
// Hit/miss/eviction counters are lifetime-monotone; entry and byte
// gauges reflect what is retained right now.
type CacheStats struct {
	// CraftHits / CraftMisses count CraftedBatch lookups, including the
	// attack-independent eps=0 clean row.
	CraftHits   int64
	CraftMisses int64
	// PredHits / PredMisses count Predictions lookups.
	PredHits   int64
	PredMisses int64
	// CraftEvictions / PredEvictions count automatic epoch resets
	// (budget or entry-cap trips) — explicit Clear calls are not
	// evictions. A craft-budget trip wipes the prediction memos too
	// (Clear drops both sides), so it counts a PredEviction whenever
	// predictions were actually retained.
	CraftEvictions int64
	PredEvictions  int64
	// CraftEntries / PredEntries are the currently retained memo counts.
	CraftEntries int64
	PredEntries  int64
	// CraftBytes is the memory currently retained by crafted batches
	// (float32 payload, excluding keys and map overhead).
	CraftBytes int64

	// Disk-tier counters; all zero on a memory-only cache. DiskCraft* /
	// DiskPred* partition the memory misses that probed the persistent
	// store: a disk hit is an artifact served with zero recompute, a
	// disk miss went on to the compute path. DiskErrors counts failed
	// store writes and undecodable stored values (both degrade to
	// recomputes).
	DiskCraftHits   int64
	DiskCraftMisses int64
	DiskPredHits    int64
	DiskPredMisses  int64
	DiskErrors      int64
	// Store-level counters surfaced from the backing store.Store:
	// bloom-admission rejects (cold-key lookups answered without a
	// probe), records dropped by size-bounded segment GC, corrupt
	// records skipped on open/read, and the live key/byte footprint.
	DiskAdmissionRejects int64
	DiskGCEvictions      int64
	DiskCorruptRecords   int64
	DiskKeys             int64
	DiskBytes            int64
}

// Stats snapshots the cache's counters. Safe for concurrent use; the
// snapshot is internally consistent only field by field (counters are
// read independently), which is all a metrics scrape needs.
func (c *Cache) Stats() CacheStats {
	s := CacheStats{
		CraftHits:       c.craftHits.Load(),
		CraftMisses:     c.craftMisses.Load(),
		PredHits:        c.predHits.Load(),
		PredMisses:      c.predMisses.Load(),
		CraftEvictions:  c.craftEvictions.Load(),
		PredEvictions:   c.predEvictions.Load(),
		CraftEntries:    int64(c.CraftedLen()),
		PredEntries:     c.predCount.Load(),
		CraftBytes:      c.craftSize.Load() * 4, // float32 elements
		DiskCraftHits:   c.diskCraftHits.Load(),
		DiskCraftMisses: c.diskCraftMisses.Load(),
		DiskPredHits:    c.diskPredHits.Load(),
		DiskPredMisses:  c.diskPredMisses.Load(),
		DiskErrors:      c.diskErrors.Load(),
	}
	if c.disk != nil {
		ds := c.disk.Stats()
		s.DiskAdmissionRejects = ds.BloomRejects
		s.DiskGCEvictions = ds.GCEvictedRecords
		s.DiskCorruptRecords = ds.CorruptRecords
		s.DiskKeys = ds.Keys
		s.DiskBytes = ds.DiskBytes
	}
	return s
}

// NewCache returns an empty cache with the given retention bounds.
func NewCache(cfg CacheConfig) *Cache {
	c := &Cache{craftBudget: cfg.CraftBudget, predMax: cfg.PredMax, disk: cfg.Disk}
	if c.craftBudget <= 0 {
		c.craftBudget = defaultCraftBudget
	}
	if c.predMax <= 0 {
		c.predMax = defaultPredMax
	}
	return c
}

// defaultCache backs the package-level compatibility API
// (RobustnessGrid and friends) when Options.Cache is nil.
var defaultCache = NewCache(CacheConfig{})

// DefaultCache returns the shared package-level cache used when
// Options.Cache is nil. Prefer per-engine caches (NewCache) in new
// code; the default exists so the one-call RobustnessGrid path keeps
// deduplicating across sweeps.
func DefaultCache() *Cache { return defaultCache }

// ClearCraftedCache drops every batch and prediction memoised in the
// shared default cache. Per-engine caches are cleared with
// Cache.Clear.
func ClearCraftedCache() { defaultCache.Clear() }

// CraftedCacheLen reports the number of batches memoised in the
// shared default cache.
func CraftedCacheLen() int { return defaultCache.CraftedLen() }

// Clear drops every memoised adversarial batch and victim prediction.
// Weight changes invalidate entries automatically (the keys
// fingerprint the network), so this exists to reclaim memory in
// long-running sweeps ahead of the automatic budget eviction.
func (c *Cache) Clear() {
	c.craft.Range(func(k, _ any) bool {
		c.craft.Delete(k)
		return true
	})
	c.craftSize.Store(0)
	c.clearPreds()
}

func (c *Cache) clearPreds() {
	c.pred.Range(func(k, _ any) bool {
		c.pred.Delete(k)
		return true
	})
	c.predCount.Store(0)
}

// CraftedLen reports the number of memoised (attack, eps, seed)
// batches.
func (c *Cache) CraftedLen() int {
	n := 0
	c.craft.Range(func(_, _ any) bool {
		n++
		return true
	})
	return n
}

// storeCrafted memoises one batch, resetting the cache first when the
// retention budget would be exhausted. It returns the retained tensor:
// when two goroutines race on the same cell, both callers converge on
// the single stored batch and the size accounting counts it once.
func (c *Cache) storeCrafted(key craftKey, b *tensor.T) *tensor.T {
	if c.craftSize.Load()+int64(b.Len()) > c.craftBudget {
		c.craftEvictions.Add(1)
		// Clear wipes the prediction memos alongside the batches;
		// account for that reset so scrapers can attribute the drop.
		if c.predCount.Load() > 0 {
			c.predEvictions.Add(1)
		}
		c.Clear()
	}
	if prev, loaded := c.craft.LoadOrStore(key, b); loaded {
		return prev.(*tensor.T)
	}
	c.craftSize.Add(int64(b.Len()))
	return b
}

// storePreds memoises one victim's predictions under the same epoch
// eviction scheme. Only the prediction memos are dropped on overflow —
// crafted batches are expensive and stay until their own budget trips.
func (c *Cache) storePreds(key predKey, preds []int) {
	if c.predCount.Load() >= c.predMax {
		c.predEvictions.Add(1)
		c.clearPreds()
	}
	if _, loaded := c.pred.LoadOrStore(key, preds); !loaded {
		c.predCount.Add(1)
	}
}

// diskCraftProbe asks the persistent tier for one crafted batch,
// validating the decoded shape against what the compute path would
// produce. A stored value that will not decode or has the wrong shape
// counts a disk error and degrades to a recompute.
func (c *Cache) diskCraftProbe(ctx context.Context, dkey string, want []int) (*tensor.T, bool) {
	pctx, probe := obs.Start(ctx, "cache-probe")
	defer probe.End()
	_, get := obs.Start(pctx, "disk-get")
	val, ok := c.disk.Get(dkey)
	get.End()
	if !ok {
		c.diskCraftMisses.Add(1)
		return nil, false
	}
	t, err := decodeTensor(val)
	if err != nil || !shapeEq(t.Shape, want) {
		c.diskErrors.Add(1)
		c.diskCraftMisses.Add(1)
		return nil, false
	}
	c.diskCraftHits.Add(1)
	return t, true
}

// diskPut writes one freshly computed artifact through to the
// persistent tier. Failures count a disk error and are otherwise
// ignored: the evaluation path never fails on persistence.
func (c *Cache) diskPut(ctx context.Context, dkey string, val []byte) {
	_, sp := obs.Start(ctx, "disk-put")
	defer sp.End()
	if err := c.disk.Put(dkey, val); err != nil {
		c.diskErrors.Add(1)
	}
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CraftedBatch returns the [N, sampleShape...] adversarial batch for
// one (attack, eps) cell, crafting it in parallel batches on first
// use and serving the memo afterwards. hit reports whether the batch
// came from the cache. Crafting observes ctx: on cancellation the
// workers stop at the next chunk boundary, nothing is memoised, and
// ctx.Err() is returned.
func (c *Cache) CraftedBatch(ctx context.Context, src *nn.Network, test *dataset.Set, atk attack.Attack, eps float64, opts Options) (adv *tensor.T, hit bool, err error) {
	if test.Len() == 0 {
		return nil, false, errors.New("core: cannot craft over an empty test set")
	}
	epsQ := EpsKey(eps)
	if epsQ == 0 {
		return c.cleanBatch(test)
	}
	key := craftKey{
		src: src, srcFP: src.WeightsFingerprint(),
		first: test.X[0], n: test.Len(),
		// ConfigKey, not Name: tunable attack parameters (BIM/PGD
		// steps, MI-FGSM momentum, UAP iterations, restart counts)
		// must never share cache entries.
		attack: attack.ConfigKey(atk), epsQ: epsQ, seed: opts.Seed,
	}
	if v, ok := c.craft.Load(key); ok {
		c.craftHits.Add(1)
		return v.(*tensor.T), true, nil
	}
	c.craftMisses.Add(1)
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	// A memory miss is the start of the craft stage: the span (and the
	// craft histogram) covers the disk probe plus any recompute, and
	// every disk touch below nests under it.
	ctx, span := obs.Start(ctx, "craft",
		obs.Attr{Key: "attack", Value: key.attack},
		obs.Attr{Key: "eps", Value: strconv.FormatFloat(eps, 'g', -1, 64)})
	defer func() { craftHist.Observe(span.End()) }()
	var dkey string
	if c.disk != nil {
		dkey = craftDiskKey(src, test, key.attack, epsQ, opts.Seed)
		want := append([]int{test.Len()}, test.X[0].Shape...)
		if t, ok := c.diskCraftProbe(ctx, dkey, want); ok {
			// A disk hit is an artifact served with zero recompute, which
			// is what hit means to callers (CellTiming.CacheHit, events).
			return c.storeCrafted(key, t), true, nil
		}
	}

	if sa, ok := atk.(attack.SetAttack); ok {
		// Set-level attacks (UAP) craft one image-agnostic perturbation
		// over the whole set, so there is nothing to chunk across
		// workers: one PerturbSet call, one rng stream per (eps, seed) —
		// independent of worker count and batch size, so two runs with
		// the same seed memoise bit-identical batches. Cancellation is
		// observed inside PerturbSet at chunk granularity; the partial
		// result is discarded below, never memoised.
		rng := rand.New(rand.NewSource(opts.Seed*1_000_003 + epsQ*7_919))
		out := sa.PerturbSet(ctx, src, tensor.Stack(test.X), test.Y, eps, rng)
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		kept := c.storeCrafted(key, out)
		if dkey != "" {
			c.diskPut(ctx, dkey, encodeTensor(kept))
		}
		return kept, false, nil
	}

	n := test.Len()
	batk := attack.AsBatch(atk)
	out := tensor.New(append([]int{n}, test.X[0].Shape...)...)
	runChunked(ctx, n, opts, func(lo, hi int) {
		xs := tensor.Stack(test.X[lo:hi])
		rngs := make([]*rand.Rand, hi-lo)
		for i := range rngs {
			// Per-sample stream keyed by (seed, sample, eps):
			// independent of batch chunking and sweep shape, so cached
			// and freshly crafted batches agree bit for bit.
			rngs[i] = rand.New(rand.NewSource(opts.Seed + int64(lo+i)*1_000_003 + epsQ*7_919))
		}
		crafted := batk.PerturbBatch(src, xs, test.Y[lo:hi], eps, rngs)
		copy(out.RowView(lo, hi).Data, crafted.Data)
	})
	if err := ctx.Err(); err != nil {
		// Partial batches must never be memoised.
		return nil, false, err
	}
	kept := c.storeCrafted(key, out)
	if dkey != "" {
		c.diskPut(ctx, dkey, encodeTensor(kept))
	}
	return kept, false, nil
}

// cleanBatch returns the memoised stacked clean inputs — the eps=0
// cell of every attack's sweep, which is attack- and seed-independent
// (all attacks are the identity at zero budget, pinned by the attack
// tests).
func (c *Cache) cleanBatch(test *dataset.Set) (*tensor.T, bool, error) {
	key := craftKey{first: test.X[0], n: test.Len()}
	if v, ok := c.craft.Load(key); ok {
		c.craftHits.Add(1)
		return v.(*tensor.T), true, nil
	}
	c.craftMisses.Add(1)
	return c.storeCrafted(key, tensor.Stack(test.X)), false, nil
}

// CraftedCached reports whether CraftedBatch would return the cell's
// batch without crafting — the memory memo already holds it, or the
// persistent tier's index knows the key. Cell schedulers use it to
// prioritise hit cells over cold ones; a wrong answer only reorders
// work, so the disk probe is index-only (no read, no decode, no
// shape check).
func (c *Cache) CraftedCached(src *nn.Network, test *dataset.Set, atk attack.Attack, eps float64, opts Options) bool {
	if test.Len() == 0 {
		return false
	}
	epsQ := EpsKey(eps)
	if epsQ == 0 {
		_, ok := c.craft.Load(craftKey{first: test.X[0], n: test.Len()})
		return ok
	}
	key := craftKey{
		src: src, srcFP: src.WeightsFingerprint(),
		first: test.X[0], n: test.Len(),
		attack: attack.ConfigKey(atk), epsQ: epsQ, seed: opts.Seed,
	}
	if _, ok := c.craft.Load(key); ok {
		return true
	}
	return c.disk != nil && c.disk.Has(craftDiskKey(src, test, key.attack, epsQ, opts.Seed))
}

// Predictions scores one victim over the crafted batch, using the
// batched path when the model supports it and memoising per (victim,
// batch). hit reports whether the predictions came from the cache;
// cancellation behaves as in CraftedBatch.
func (c *Cache) Predictions(ctx context.Context, m attack.Model, adv *tensor.T, opts Options) (preds []int, hit bool, err error) {
	key := predKey{batch: adv}
	if mk, ok := m.(ModelKeyer); ok {
		key.key = mk.ModelKey()
	} else {
		key.model = m
		if f, ok := m.(fingerprinter); ok {
			key.modelFP = f.WeightsFingerprint()
		}
	}
	if v, ok := c.pred.Load(key); ok {
		c.predHits.Add(1)
		return v.([]int), true, nil
	}
	c.predMisses.Add(1)
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	ctx, span := obs.Start(ctx, "predict")
	defer func() { predictHist.Observe(span.End()) }()
	var dkey string
	if c.disk != nil {
		// Models without a stable content identity (no ModelKey or
		// weights fingerprint) stay memory-tier only.
		if dk, ok := predDiskKey(m, adv); ok {
			dkey = dk
			pctx, probe := obs.Start(ctx, "cache-probe")
			_, get := obs.Start(pctx, "disk-get")
			val, found := c.disk.Get(dkey)
			get.End()
			probe.End()
			if !found {
				c.diskPredMisses.Add(1)
			} else if ps, err := decodePreds(val); err != nil || len(ps) != adv.Rows() {
				c.diskErrors.Add(1)
				c.diskPredMisses.Add(1)
			} else {
				c.diskPredHits.Add(1)
				c.storePreds(key, ps)
				return ps, true, nil
			}
		}
	}
	n := adv.Rows()
	preds = make([]int, n)
	bm, batched := m.(attack.BatchModel)
	runChunked(ctx, n, opts, func(lo, hi int) {
		if batched {
			copy(preds[lo:hi], tensor.ArgMaxRows(bm.LogitsBatch(adv.RowView(lo, hi))))
		} else {
			for i := lo; i < hi; i++ {
				preds[i] = tensor.ArgMax(m.Logits(adv.Row(i)))
			}
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	c.storePreds(key, preds)
	if dkey != "" {
		c.diskPut(ctx, dkey, encodePreds(preds))
	}
	return preds, false, nil
}

// runChunked fans fn over [0, n) in opts-derived chunks across
// opts-derived workers.
func runChunked(ctx context.Context, n int, opts Options, fn func(lo, hi int)) {
	RunChunked(ctx, n, opts.batchSize(n), opts.workers(), fn)
}

// RunChunked fans fn over [0, n) in chunk-sized ranges across workers,
// stopping at the next chunk boundary once ctx is cancelled (returned
// as the error). Non-positive chunk and workers select 1 and
// GOMAXPROCS (the repo-wide "0 = default" convention), so an
// un-defaulted config can never silently run zero workers. It returns
// only after every worker has exited, so callers never leak
// goroutines into cancelled sweeps. Exported for the other chunked
// crafting loops in the tree (defense.AdvTrain) so the
// fan-out/cancellation semantics live in one place.
func RunChunked(ctx context.Context, n, chunk, workers int, fn func(lo, hi int)) error {
	if chunk < 1 {
		chunk = 1
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := (n + chunk - 1) / chunk; workers > max {
		workers = max
	}
	done := ctx.Done()
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				mu.Lock()
				lo := next
				next += chunk
				mu.Unlock()
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
