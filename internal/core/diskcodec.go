package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Stable codecs and keys for the persistent cache tier. Unlike the
// in-memory craftKey/predKey — which lean on pointer identity and are
// therefore process-local — the disk tier keys every artifact by
// content: weights fingerprints, dataset content hashes, the attack's
// canonical ConfigKey, and the quantised EpsKey. A cold process over a
// warm store recomputes the same strings and finds the same records.
//
// Values are versioned little-endian frames; decode validates the
// magic, the declared shape, and the payload length, so a key
// collision or a truncated value degrades to a recompute, never to a
// malformed tensor.

const (
	tensorMagic = "axt1"
	predsMagic  = "axp1"
)

// encodeTensor frames t as: magic | ndims u32 | dims u32... | float32
// bits (LE).
func encodeTensor(t *tensor.T) []byte {
	buf := make([]byte, 0, len(tensorMagic)+4+4*len(t.Shape)+4*len(t.Data))
	buf = append(buf, tensorMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.Shape)))
	for _, d := range t.Shape {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d))
	}
	for _, v := range t.Data {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
	}
	return buf
}

func decodeTensor(buf []byte) (*tensor.T, error) {
	if len(buf) < len(tensorMagic)+4 || string(buf[:len(tensorMagic)]) != tensorMagic {
		return nil, fmt.Errorf("core: bad tensor frame")
	}
	buf = buf[len(tensorMagic):]
	ndims := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	if ndims == 0 || ndims > 8 || len(buf) < int(ndims)*4 {
		return nil, fmt.Errorf("core: bad tensor rank %d", ndims)
	}
	shape := make([]int, ndims)
	vol := 1
	for i := range shape {
		d := binary.LittleEndian.Uint32(buf[4*i:])
		if d == 0 || d > 1<<24 {
			return nil, fmt.Errorf("core: bad tensor dim %d", d)
		}
		shape[i] = int(d)
		vol *= int(d)
	}
	buf = buf[4*ndims:]
	if len(buf) != 4*vol {
		return nil, fmt.Errorf("core: tensor payload %d bytes, want %d", len(buf), 4*vol)
	}
	data := make([]float32, vol)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return tensor.FromSlice(data, shape...), nil
}

// encodePreds frames one victim's predictions as: magic | n u32 |
// int32 labels (LE).
func encodePreds(preds []int) []byte {
	buf := make([]byte, 0, len(predsMagic)+4+4*len(preds))
	buf = append(buf, predsMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(preds)))
	for _, p := range preds {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(p)))
	}
	return buf
}

func decodePreds(buf []byte) ([]int, error) {
	if len(buf) < len(predsMagic)+4 || string(buf[:len(predsMagic)]) != predsMagic {
		return nil, fmt.Errorf("core: bad predictions frame")
	}
	buf = buf[len(predsMagic):]
	n := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	if len(buf) != 4*int(n) {
		return nil, fmt.Errorf("core: predictions payload %d bytes, want %d", len(buf), 4*n)
	}
	preds := make([]int, n)
	for i := range preds {
		preds[i] = int(int32(binary.LittleEndian.Uint32(buf[4*i:])))
	}
	return preds, nil
}

// setFingerprint hashes a test set's content — every sample's raw
// float bits plus the labels — so the disk key survives process
// restarts that rebuild the dataset objects. Sets are small relative
// to crafting cost (one pass over the data the attack will ascend
// dozens of times), so this is recomputed per lookup rather than
// memoised against mutable pointers.
func setFingerprint(test *dataset.Set) uint64 {
	h := fnv.New64a()
	var w [4]byte
	for i, x := range test.X {
		binary.LittleEndian.PutUint32(w[:], uint32(test.Y[i]))
		h.Write(w[:])
		for _, v := range x.Data {
			binary.LittleEndian.PutUint32(w[:], math.Float32bits(v))
			h.Write(w[:])
		}
	}
	return h.Sum64()
}

// batchFingerprint hashes a crafted batch's shape and content for the
// prediction-tier key.
func batchFingerprint(b *tensor.T) uint64 {
	h := fnv.New64a()
	var w [4]byte
	for _, d := range b.Shape {
		binary.LittleEndian.PutUint32(w[:], uint32(d))
		h.Write(w[:])
	}
	for _, v := range b.Data {
		binary.LittleEndian.PutUint32(w[:], math.Float32bits(v))
		h.Write(w[:])
	}
	return h.Sum64()
}

// craftDiskKey is the stable identity of one crafted batch: source
// weights, sample content, canonical attack configuration, quantised
// budget, seed. Everything the crafting rng streams and gradient
// ascent observe — and nothing process-local.
func craftDiskKey(src *nn.Network, test *dataset.Set, atkKey string, epsQ, seed int64) string {
	return fmt.Sprintf("craft/v1|src=%s:%016x|set=%s:%d:%016x|atk=%s|eps=%d|seed=%d",
		src.Name, src.WeightsFingerprint(), test.Name, test.Len(), setFingerprint(test), atkKey, epsQ, seed)
}

// predDiskKey is the stable identity of one victim's predictions over
// one crafted batch, or ok=false when the model has no stable identity
// to key by (then the prediction stays memory-tier only).
func predDiskKey(m attack.Model, adv *tensor.T) (string, bool) {
	var id string
	switch mm := m.(type) {
	case ModelKeyer:
		id = mm.ModelKey()
	case fingerprinter:
		id = fmt.Sprintf("nnfp:%016x", mm.WeightsFingerprint())
	default:
		return "", false
	}
	return fmt.Sprintf("pred/v1|model=%s|batch=%d:%016x", id, adv.Rows(), batchFingerprint(adv)), true
}
