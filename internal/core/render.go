package core

import (
	"fmt"
	"strings"
)

// String renders the grid in the paper's figure layout: one row per
// perturbation budget, one column per victim, cell = % robustness.
func (g *Grid) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s (robustness %%)\n", g.Attack, g.Dataset)
	fmt.Fprintf(&b, "%8s", "eps")
	for _, v := range g.Victims {
		fmt.Fprintf(&b, " %*s", colWidth(v), shortName(v))
	}
	b.WriteByte('\n')
	for ei, e := range g.Eps {
		fmt.Fprintf(&b, "%8.2f", e)
		for vi, v := range g.Victims {
			fmt.Fprintf(&b, " %*.0f", colWidth(v), g.Acc[ei][vi])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// shortName strips the mul8u_ prefix so grid columns stay narrow.
func shortName(v string) string {
	return strings.TrimPrefix(v, "mul8u_")
}

func colWidth(v string) int {
	w := len(shortName(v))
	if w < 4 {
		w = 4
	}
	return w
}
