package core

import (
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/axnn"
	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/train"
)

// fixture trains a small LeNet once for all core tests.
type fixture struct {
	net  *nn.Network
	test *dataset.Set
}

var fix *fixture

func getFixture(t *testing.T) *fixture {
	t.Helper()
	if fix == nil {
		tr := dataset.Digits(1500, 41)
		test := dataset.Digits(200, 42)
		net := models.LeNet5(1, 28, 28, 10, 43)
		net.Name = "lenet5-test"
		train.Fit(net, tr, train.Config{Epochs: 2, Batch: 32, LR: 0.05, Momentum: 0.9, Seed: 2})
		fix = &fixture{net: net, test: test}
	}
	return fix
}

func TestRobustnessGridShapeAndBaseline(t *testing.T) {
	f := getFixture(t)
	victims, err := BuildAxVictims(f.net, f.test, []string{"mul8u_1JFF", "mul8u_JV3"}, axnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	atk := attack.ByName("FGM-linf")
	g := RobustnessGrid(f.net, victims, f.test, atk, []float64{0, 0.1}, Options{Samples: 80, Seed: 3})
	if len(g.Acc) != 2 || len(g.Acc[0]) != 2 {
		t.Fatalf("grid shape %dx%d", len(g.Acc), len(g.Acc[0]))
	}
	// eps=0 row is clean accuracy: the quantized accurate victim must
	// be close to the float model's accuracy.
	floatAcc := 100 * train.AccuracyCloned(func() train.Predictor { return f.net.Clone() }, f.test, 80)
	if diff := g.Acc[0][0] - floatAcc; diff > 5 || diff < -5 {
		t.Fatalf("clean quantized accuracy %f far from float %f", g.Acc[0][0], floatAcc)
	}
	// The attack must not increase accuracy at a real budget.
	if g.Acc[1][0] > g.Acc[0][0] {
		t.Fatalf("FGM increased accuracy: %f -> %f", g.Acc[0][0], g.Acc[1][0])
	}
}

func TestGridDeterminism(t *testing.T) {
	f := getFixture(t)
	victims, err := BuildAxVictims(f.net, f.test, []string{"mul8u_1JFF"}, axnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	atk := attack.ByName("RAU-linf")
	a := RobustnessGrid(f.net, victims, f.test, atk, []float64{0.2}, Options{Samples: 60, Seed: 9})
	b := RobustnessGrid(f.net, victims, f.test, atk, []float64{0.2}, Options{Samples: 60, Seed: 9})
	if a.Acc[0][0] != b.Acc[0][0] {
		t.Fatalf("grid not deterministic: %f vs %f", a.Acc[0][0], b.Acc[0][0])
	}
}

func TestGridAccessors(t *testing.T) {
	g := &Grid{
		Attack:  "X",
		Eps:     []float64{0, 1},
		Victims: []string{"a", "b"},
		Acc:     [][]float64{{90, 80}, {50, 20}},
	}
	if v, ok := g.At(1, "b"); !ok || v != 20 {
		t.Fatalf("At(1,b) = %f,%v", v, ok)
	}
	if _, ok := g.At(2, "b"); ok {
		t.Fatal("At with unknown eps should report !ok")
	}
	col := g.Column("a")
	if len(col) != 2 || col[1] != 50 {
		t.Fatalf("Column(a) = %v", col)
	}
	if g.Column("zzz") != nil {
		t.Fatal("unknown column should be nil")
	}
	loss, victim, eps := g.MaxAccuracyLoss()
	if loss != 60 || victim != "b" || eps != 1 {
		t.Fatalf("MaxAccuracyLoss = %f %s %f", loss, victim, eps)
	}
}

func TestGridRender(t *testing.T) {
	g := &Grid{
		Attack:  "BIM-linf",
		Dataset: "d",
		Eps:     []float64{0, 0.5},
		Victims: []string{"mul8u_1JFF", "mul8u_JV3"},
		Acc:     [][]float64{{98, 93}, {50, 40}},
	}
	s := g.String()
	if !strings.Contains(s, "1JFF") || !strings.Contains(s, "JV3") {
		t.Fatalf("render missing columns:\n%s", s)
	}
	if !strings.Contains(s, "0.50") {
		t.Fatalf("render missing eps row:\n%s", s)
	}
}

func TestBuildAxVictimsUnknownMultiplier(t *testing.T) {
	f := getFixture(t)
	if _, err := BuildAxVictims(f.net, f.test, []string{"mul8u_NOPE"}, axnn.Options{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestQuantPair(t *testing.T) {
	f := getFixture(t)
	pair, err := QuantPair(f.net, f.test, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pair) != 2 || pair[0].Name != "float" || pair[1].Name != "q8" {
		t.Fatalf("QuantPair = %v", []string{pair[0].Name, pair[1].Name})
	}
}

func TestTransferProtocol(t *testing.T) {
	f := getFixture(t)
	victims, err := BuildAxVictims(f.net, f.test, []string{"mul8u_17KS"}, axnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := Transfer(f.net, victims[0], f.test, attack.ByName("BIM-linf"), 0.1, Options{Samples: 60, Seed: 4})
	if res.CleanAcc < res.AdvAcc {
		t.Fatalf("transfer attack increased accuracy: %v", res)
	}
	if !strings.Contains(res.String(), "->") {
		t.Fatalf("TransferResult.String() = %q", res.String())
	}
}
