package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/axnn"
	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/train"
)

// fixture trains a small LeNet once for all core tests.
type fixture struct {
	net  *nn.Network
	test *dataset.Set
}

var fix *fixture

func getFixture(t *testing.T) *fixture {
	t.Helper()
	if fix == nil {
		tr := dataset.Digits(1500, 41)
		test := dataset.Digits(200, 42)
		net := models.LeNet5(1, 28, 28, 10, 43)
		net.Name = "lenet5-test"
		train.Fit(net, tr, train.Config{Epochs: 2, Batch: 32, LR: 0.05, Momentum: 0.9, Seed: 2})
		fix = &fixture{net: net, test: test}
	}
	return fix
}

func TestRobustnessGridShapeAndBaseline(t *testing.T) {
	f := getFixture(t)
	victims, err := BuildAxVictims(f.net, f.test, []string{"mul8u_1JFF", "mul8u_JV3"}, axnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	atk := attack.ByName("FGM-linf")
	g := RobustnessGrid(f.net, victims, f.test, atk, []float64{0, 0.1}, Options{Samples: 80, Seed: 3})
	if len(g.Acc) != 2 || len(g.Acc[0]) != 2 {
		t.Fatalf("grid shape %dx%d", len(g.Acc), len(g.Acc[0]))
	}
	// eps=0 row is clean accuracy: the quantized accurate victim must
	// be close to the float model's accuracy.
	floatAcc := 100 * train.Accuracy(f.net, f.test, 80)
	if diff := g.Acc[0][0] - floatAcc; diff > 5 || diff < -5 {
		t.Fatalf("clean quantized accuracy %f far from float %f", g.Acc[0][0], floatAcc)
	}
	// The attack must not increase accuracy at a real budget.
	if g.Acc[1][0] > g.Acc[0][0] {
		t.Fatalf("FGM increased accuracy: %f -> %f", g.Acc[0][0], g.Acc[1][0])
	}
}

func TestGridDeterminism(t *testing.T) {
	f := getFixture(t)
	victims, err := BuildAxVictims(f.net, f.test, []string{"mul8u_1JFF"}, axnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	atk := attack.ByName("RAU-linf")
	a := RobustnessGrid(f.net, victims, f.test, atk, []float64{0.2}, Options{Samples: 60, Seed: 9})
	b := RobustnessGrid(f.net, victims, f.test, atk, []float64{0.2}, Options{Samples: 60, Seed: 9})
	if a.Acc[0][0] != b.Acc[0][0] {
		t.Fatalf("grid not deterministic: %f vs %f", a.Acc[0][0], b.Acc[0][0])
	}
}

func TestGridAccessors(t *testing.T) {
	g := &Grid{
		Attack:  "X",
		Eps:     []float64{0, 1},
		Victims: []string{"a", "b"},
		Acc:     [][]float64{{90, 80}, {50, 20}},
	}
	if v, ok := g.At(1, "b"); !ok || v != 20 {
		t.Fatalf("At(1,b) = %f,%v", v, ok)
	}
	if _, ok := g.At(2, "b"); ok {
		t.Fatal("At with unknown eps should report !ok")
	}
	col, ok := g.Column("a")
	if !ok || len(col) != 2 || col[1] != 50 {
		t.Fatalf("Column(a) = %v, %v", col, ok)
	}
	if col, ok := g.Column("zzz"); ok || col != nil {
		t.Fatal("unknown column must report !ok with a nil slice")
	}
	loss, victim, eps := g.MaxAccuracyLoss()
	if loss != 60 || victim != "b" || eps != 1 {
		t.Fatalf("MaxAccuracyLoss = %f %s %f", loss, victim, eps)
	}
}

func TestGridRender(t *testing.T) {
	g := &Grid{
		Attack:  "BIM-linf",
		Dataset: "d",
		Eps:     []float64{0, 0.5},
		Victims: []string{"mul8u_1JFF", "mul8u_JV3"},
		Acc:     [][]float64{{98, 93}, {50, 40}},
	}
	s := g.String()
	if !strings.Contains(s, "1JFF") || !strings.Contains(s, "JV3") {
		t.Fatalf("render missing columns:\n%s", s)
	}
	if !strings.Contains(s, "0.50") {
		t.Fatalf("render missing eps row:\n%s", s)
	}
}

func TestGridAtToleratesEpsRoundoff(t *testing.T) {
	// Budgets produced by arithmetic (0.1*3 != 0.3 in float64) must
	// still be addressable with the literal value.
	g := &Grid{
		Attack:  "X",
		Eps:     []float64{0, 0.1 * 3},
		Victims: []string{"a"},
		Acc:     [][]float64{{90}, {40}},
	}
	if v, ok := g.At(0.3, "a"); !ok || v != 40 {
		t.Fatalf("At(0.3) = %f,%v despite round-off tolerance", v, ok)
	}
	if _, ok := g.At(0.31, "a"); ok {
		t.Fatal("At must not match a genuinely different budget")
	}
}

func TestMaxAccuracyLossBaselinesEpsZeroRow(t *testing.T) {
	// The clean row is not first: the baseline must still be eps==0.
	g := &Grid{
		Attack:  "X",
		Eps:     []float64{0.5, 0},
		Victims: []string{"a"},
		Acc:     [][]float64{{50}, {90}},
	}
	loss, victim, eps := g.MaxAccuracyLoss()
	if loss != 40 || victim != "a" || eps != 0.5 {
		t.Fatalf("MaxAccuracyLoss = %f %s %f, want 40 a 0.5", loss, victim, eps)
	}
	// Without a zero row, the smallest budget anchors the baseline.
	g2 := &Grid{
		Attack:  "X",
		Eps:     []float64{0.4, 0.1},
		Victims: []string{"a"},
		Acc:     [][]float64{{60}, {80}},
	}
	if loss, _, _ := g2.MaxAccuracyLoss(); loss != 20 {
		t.Fatalf("fallback baseline loss = %f, want 20", loss)
	}
}

func TestCraftedCacheReuse(t *testing.T) {
	f := getFixture(t)
	victims, err := BuildAxVictims(f.net, f.test, []string{"mul8u_1JFF"}, axnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(CacheConfig{})
	atk := attack.ByName("PGD-linf")
	opts := Options{Samples: 40, Seed: 13, Cache: c}
	a := RobustnessGrid(f.net, victims, f.test, atk, []float64{0, 0.1}, opts)
	filled := c.CraftedLen()
	if filled != 2 {
		t.Fatalf("cache holds %d batches after a 2-eps grid, want 2", filled)
	}
	st := c.Stats()
	if st.CraftHits != 0 || st.CraftMisses != 2 {
		t.Fatalf("first sweep stats = %d hits / %d misses, want 0/2", st.CraftHits, st.CraftMisses)
	}
	if st.CraftEntries != 2 || st.CraftBytes <= 0 {
		t.Fatalf("stats gauges = %d entries / %d bytes, want 2 entries and positive bytes", st.CraftEntries, st.CraftBytes)
	}
	// A second identical sweep must reuse every batch and agree exactly.
	b := RobustnessGrid(f.net, victims, f.test, atk, []float64{0, 0.1}, opts)
	if c.CraftedLen() != filled {
		t.Fatalf("identical sweep re-crafted: %d batches", c.CraftedLen())
	}
	st = c.Stats()
	if st.CraftHits != 2 || st.CraftMisses != 2 {
		t.Fatalf("repeated sweep stats = %d hits / %d misses, want 2/2", st.CraftHits, st.CraftMisses)
	}
	if st.PredHits != 2 || st.PredMisses != 2 {
		t.Fatalf("prediction stats = %d hits / %d misses, want 2/2", st.PredHits, st.PredMisses)
	}
	for ei := range a.Acc {
		if a.Acc[ei][0] != b.Acc[ei][0] {
			t.Fatalf("cached sweep diverged at row %d", ei)
		}
	}
	c.Clear()
	if c.CraftedLen() != 0 {
		t.Fatal("Clear left entries behind")
	}
	st = c.Stats()
	if st.CraftEntries != 0 || st.PredEntries != 0 || st.CraftBytes != 0 {
		t.Fatalf("Clear left gauges behind: %+v", st)
	}
	if st.CraftHits != 2 || st.CraftEvictions != 0 {
		t.Fatalf("explicit Clear must keep lifetime counters and count no eviction: %+v", st)
	}
}

func TestCrossSweepCellReuse(t *testing.T) {
	// The same (attack, eps, seed) cell must be crafted once and agree
	// exactly even when the two sweeps shape their eps grids
	// differently — the rng stream is keyed by the budget value, not
	// its index in the sweep.
	f := getFixture(t)
	victims, err := BuildAxVictims(f.net, f.test, []string{"mul8u_1JFF"}, axnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(CacheConfig{})
	atk := attack.ByName("PGD-linf")
	opts := Options{Samples: 40, Seed: 21, Cache: c}
	a := RobustnessGrid(f.net, victims, f.test, atk, []float64{0, 0.1, 0.2}, opts)
	filled := c.CraftedLen() // clean batch + eps 0.1 + eps 0.2
	if filled != 3 {
		t.Fatalf("cache holds %d batches, want 3", filled)
	}
	b := RobustnessGrid(f.net, victims, f.test, atk, []float64{0.05, 0.1}, opts)
	if c.CraftedLen() != filled+1 {
		t.Fatalf("misaligned sweep re-crafted shared cells: %d batches, want %d", c.CraftedLen(), filled+1)
	}
	va, _ := a.At(0.1, "mul8u_1JFF")
	vb, _ := b.At(0.1, "mul8u_1JFF")
	if va != vb {
		t.Fatalf("shared (attack, eps, seed) cell diverged across sweeps: %f vs %f", va, vb)
	}
}

func TestCraftedCacheEpsRoundoff(t *testing.T) {
	// Budgets the Grid API treats as equal (within epsTolerance) must
	// hit the same crafted batch: 0.1*3 and the literal 0.3 are one
	// cell.
	f := getFixture(t)
	victims, err := BuildAxVictims(f.net, f.test, []string{"mul8u_1JFF"}, axnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(CacheConfig{})
	atk := attack.ByName("PGD-linf")
	opts := Options{Samples: 30, Seed: 8, Cache: c}
	a := RobustnessGrid(f.net, victims, f.test, atk, []float64{0.1 * 3}, opts)
	filled := c.CraftedLen()
	b := RobustnessGrid(f.net, victims, f.test, atk, []float64{0.3}, opts)
	if c.CraftedLen() != filled {
		t.Fatalf("round-off twin budgets crafted separately (%d entries)", c.CraftedLen())
	}
	va, _ := a.At(0.3, "mul8u_1JFF")
	vb, _ := b.At(0.3, "mul8u_1JFF")
	if va != vb {
		t.Fatalf("round-off twin budgets disagree: %f vs %f", va, vb)
	}
}

func TestCraftedCacheKeysAttackConfig(t *testing.T) {
	// Two PGD instances sharing a Name but differing in Steps must not
	// share crafted batches.
	f := getFixture(t)
	victims, err := BuildAxVictims(f.net, f.test, []string{"mul8u_1JFF"}, axnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(CacheConfig{})
	short := attack.NewPGD(attack.Linf)
	long := attack.NewPGD(attack.Linf)
	long.Steps = 40
	opts := Options{Samples: 30, Seed: 5, Cache: c}
	RobustnessGrid(f.net, victims, f.test, short, []float64{0.1}, opts)
	filled := c.CraftedLen()
	RobustnessGrid(f.net, victims, f.test, long, []float64{0.1}, opts)
	if c.CraftedLen() != filled+1 {
		t.Fatalf("differently-configured attacks shared a cache entry (%d entries)", c.CraftedLen())
	}
}

func TestCraftedCacheInvalidatedByRetraining(t *testing.T) {
	// Mutating weights in place must miss the old cache entries — the
	// keys fingerprint the network, so a fine-tuned model never
	// replays adversarial examples crafted against its old weights.
	f := getFixture(t)
	victims, err := BuildAxVictims(f.net, f.test, []string{"mul8u_1JFF"}, axnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(CacheConfig{})
	atk := attack.ByName("FGM-linf")
	opts := Options{Samples: 30, Seed: 9, Cache: c}
	RobustnessGrid(f.net, victims, f.test, atk, []float64{0.1}, opts)
	filled := c.CraftedLen()
	p := f.net.Params()[0]
	orig := p.W[0]
	p.W[0] += 0.25
	RobustnessGrid(f.net, victims, f.test, atk, []float64{0.1}, opts)
	p.W[0] = orig
	if c.CraftedLen() != filled+1 {
		t.Fatalf("retrained network reused stale crafted batch (%d entries, want %d)", c.CraftedLen(), filled+1)
	}
}

func TestCraftedCacheBudgetEviction(t *testing.T) {
	f := getFixture(t)
	victims, err := BuildAxVictims(f.net, f.test, []string{"mul8u_1JFF"}, axnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Budget below two 20-sample batches: the second store must reset
	// the cache instead of growing it. The bound lives in the cache
	// instance, so no package state is mutated.
	c := NewCache(CacheConfig{CraftBudget: int64(30 * f.test.X[0].Len())})
	opts := Options{Samples: 20, Seed: 6, Cache: c}
	atk := attack.ByName("FGM-linf")
	RobustnessGrid(f.net, victims, f.test, atk, []float64{0.1}, opts)
	RobustnessGrid(f.net, victims, f.test, atk, []float64{0.2}, opts)
	if n := c.CraftedLen(); n != 1 {
		t.Fatalf("cache holds %d entries over budget, want 1 after epoch eviction", n)
	}
	if st := c.Stats(); st.CraftEvictions != 1 || st.PredEvictions != 1 {
		t.Fatalf("budget trip recorded %d craft / %d pred evictions, want 1/1 (Clear wipes both sides)", st.CraftEvictions, st.PredEvictions)
	}
}

func TestBuildAxVictimsUnknownMultiplier(t *testing.T) {
	f := getFixture(t)
	if _, err := BuildAxVictims(f.net, f.test, []string{"mul8u_NOPE"}, axnn.Options{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestQuantPair(t *testing.T) {
	f := getFixture(t)
	pair, err := QuantPair(f.net, f.test, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pair) != 2 || pair[0].Name != "float" || pair[1].Name != "q8" {
		t.Fatalf("QuantPair = %v", []string{pair[0].Name, pair[1].Name})
	}
}

func TestTransferProtocol(t *testing.T) {
	f := getFixture(t)
	victims, err := BuildAxVictims(f.net, f.test, []string{"mul8u_17KS"}, axnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := Transfer(f.net, victims[0], f.test, attack.ByName("BIM-linf"), 0.1, Options{Samples: 60, Seed: 4})
	if res.CleanAcc < res.AdvAcc {
		t.Fatalf("transfer attack increased accuracy: %v", res)
	}
	if !strings.Contains(res.String(), "->") {
		t.Fatalf("TransferResult.String() = %q", res.String())
	}
}

func TestCacheIsolation(t *testing.T) {
	// Two caches over the same cells never observe each other's
	// entries — the property that lets two engines coexist in one
	// process.
	f := getFixture(t)
	victims, err := BuildAxVictims(f.net, f.test, []string{"mul8u_1JFF"}, axnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewCache(CacheConfig{})
	c2 := NewCache(CacheConfig{})
	atk := attack.ByName("FGM-linf")
	RobustnessGrid(f.net, victims, f.test, atk, []float64{0, 0.1}, Options{Samples: 30, Seed: 3, Cache: c1})
	if c1.CraftedLen() != 2 || c2.CraftedLen() != 0 {
		t.Fatalf("cache leak: c1=%d c2=%d, want 2/0", c1.CraftedLen(), c2.CraftedLen())
	}
	RobustnessGrid(f.net, victims, f.test, atk, []float64{0, 0.1}, Options{Samples: 30, Seed: 3, Cache: c2})
	if c2.CraftedLen() != 2 {
		t.Fatalf("second cache crafted %d batches, want its own 2", c2.CraftedLen())
	}
	c1.Clear()
	if c1.CraftedLen() != 0 || c2.CraftedLen() != 2 {
		t.Fatalf("Clear crossed caches: c1=%d c2=%d", c1.CraftedLen(), c2.CraftedLen())
	}
}

func TestDefaultCacheCompat(t *testing.T) {
	// Options without a Cache keep flowing through the shared default
	// cache, and the package-level helpers keep operating on it.
	f := getFixture(t)
	victims, err := BuildAxVictims(f.net, f.test, []string{"mul8u_1JFF"}, axnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ClearCraftedCache()
	RobustnessGrid(f.net, victims, f.test, attack.ByName("FGM-linf"), []float64{0.1}, Options{Samples: 20, Seed: 2})
	if CraftedCacheLen() != 1 {
		t.Fatalf("default cache holds %d batches, want 1", CraftedCacheLen())
	}
	if DefaultCache().CraftedLen() != 1 {
		t.Fatal("DefaultCache must be the cache the nil-Cache options used")
	}
	ClearCraftedCache()
	if CraftedCacheLen() != 0 {
		t.Fatal("ClearCraftedCache left entries behind")
	}
}

func TestRobustnessGridCtxCancellation(t *testing.T) {
	f := getFixture(t)
	victims, err := BuildAxVictims(f.net, f.test, []string{"mul8u_1JFF"}, axnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := NewCache(CacheConfig{})
	g, err := RobustnessGridCtx(ctx, f.net, victims, f.test, attack.ByName("PGD-linf"), []float64{0.1, 0.2}, Options{Samples: 40, Seed: 11, Cache: c})
	if g != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned (%v, %v), want (nil, context.Canceled)", g, err)
	}
	if c.CraftedLen() != 0 {
		t.Fatalf("cancelled sweep memoised %d partial batches", c.CraftedLen())
	}
}

func TestSetAttackCraftedOnceAndCached(t *testing.T) {
	// Set-level attacks (UAP) craft one image-agnostic perturbation
	// per (attack, eps, seed) cell: crafted once, cached like any
	// batch, deterministic across fresh caches and worker counts.
	f := getFixture(t)
	victims, err := BuildAxVictims(f.net, f.test, []string{"mul8u_1JFF"}, axnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	atk := attack.NewUAP(attack.Linf)
	atk.Iters = 3
	c := NewCache(CacheConfig{})
	opts := Options{Samples: 40, Seed: 19, Cache: c, Workers: 1}
	a := RobustnessGrid(f.net, victims, f.test, atk, []float64{0, 0.1}, opts)
	if n := c.CraftedLen(); n != 2 {
		t.Fatalf("cache holds %d batches after a 2-eps UAP grid, want 2", n)
	}
	b := RobustnessGrid(f.net, victims, f.test, atk, []float64{0, 0.1}, opts)
	if n := c.CraftedLen(); n != 2 {
		t.Fatalf("identical UAP sweep re-crafted: %d batches", n)
	}
	// A fresh cache and a different worker count must reproduce the
	// grid bit for bit: set crafting is one call, not chunked work.
	opts2 := Options{Samples: 40, Seed: 19, Cache: NewCache(CacheConfig{}), Workers: 4}
	d := RobustnessGrid(f.net, victims, f.test, atk, []float64{0, 0.1}, opts2)
	for ei := range a.Acc {
		if a.Acc[ei][0] != b.Acc[ei][0] || a.Acc[ei][0] != d.Acc[ei][0] {
			t.Fatalf("UAP grid not reproducible at row %d: %v %v %v", ei, a.Acc[ei][0], b.Acc[ei][0], d.Acc[ei][0])
		}
	}
	// A different seed crafts a different universal perturbation.
	test := f.test.Slice(40)
	adv1, hit, err := c.CraftedBatch(context.Background(), f.net, test, atk, 0.1, opts)
	if err != nil || !hit {
		t.Fatalf("expected a cache hit for the crafted UAP batch (err=%v hit=%v)", err, hit)
	}
	adv2, _, err := c.CraftedBatch(context.Background(), f.net, test, atk, 0.1, Options{Samples: 40, Seed: 20, Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range adv1.Data {
		if adv1.Data[i] != adv2.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical universal perturbation")
	}
}

func TestCraftedCacheKeysNewAttackKnobs(t *testing.T) {
	// The new family's knobs — UAP iterations, PGD restart counts —
	// must key distinct cache entries, exactly like BIM/PGD steps.
	f := getFixture(t)
	victims, err := BuildAxVictims(f.net, f.test, []string{"mul8u_1JFF"}, axnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(CacheConfig{})
	opts := Options{Samples: 30, Seed: 5, Cache: c}
	uapShort := attack.NewUAP(attack.Linf)
	uapShort.Iters = 2
	uapLong := attack.NewUAP(attack.Linf)
	uapLong.Iters = 4
	RobustnessGrid(f.net, victims, f.test, uapShort, []float64{0.1}, opts)
	filled := c.CraftedLen()
	RobustnessGrid(f.net, victims, f.test, uapLong, []float64{0.1}, opts)
	if c.CraftedLen() != filled+1 {
		t.Fatalf("differently-configured UAPs shared a cache entry (%d entries)", c.CraftedLen())
	}
	plain := attack.NewPGD(attack.Linf)
	restarted := attack.NewRestart(attack.NewPGD(attack.Linf), 3)
	RobustnessGrid(f.net, victims, f.test, plain, []float64{0.1}, opts)
	filled = c.CraftedLen()
	RobustnessGrid(f.net, victims, f.test, restarted, []float64{0.1}, opts)
	if c.CraftedLen() != filled+1 {
		t.Fatalf("restarted PGD shared plain PGD's cache entry (%d entries)", c.CraftedLen())
	}
}

func TestSetAttackObservesCancellation(t *testing.T) {
	// The set-level crafting path must return ctx.Err() without
	// memoising the partial perturbation.
	f := getFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := NewCache(CacheConfig{})
	atk := attack.NewUAP(attack.Linf)
	adv, hit, err := c.CraftedBatch(ctx, f.net, f.test.Slice(20), atk, 0.1, Options{Samples: 20, Seed: 3, Cache: c})
	if adv != nil || hit || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled set crafting returned (%v, %v, %v), want (nil, false, context.Canceled)", adv, hit, err)
	}
	if c.CraftedLen() != 0 {
		t.Fatalf("cancelled set crafting memoised %d batches", c.CraftedLen())
	}
}
