package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/axnn"
	"repro/internal/store"
)

// openTestStore opens a store rooted at dir with small segments so the
// tests exercise rotation without megabytes of crafting.
func openTestStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDiskTierColdProcessZeroRecraft is the tentpole acceptance test
// on the craft side: a brand-new Cache (the memory tier of a cold
// process) over a reopened warm store serves the same cell as a hit,
// bit-identical to the original crafting, with zero recompute.
func TestDiskTierColdProcessZeroRecraft(t *testing.T) {
	f := getFixture(t)
	test := f.test.Slice(40)
	atk := attack.ByName("PGD-linf")
	dir := t.TempDir()

	s1 := openTestStore(t, dir)
	warm := NewCache(CacheConfig{Disk: s1})
	ctx := context.Background()
	opts := Options{Seed: 9}
	b1, hit, err := warm.CraftedBatch(ctx, f.net, test, atk, 0.1, opts)
	if err != nil || hit {
		t.Fatalf("first craft: hit=%v err=%v", hit, err)
	}
	st := warm.Stats()
	if st.DiskCraftMisses != 1 || st.DiskCraftHits != 0 {
		t.Fatalf("warm stats: %+v", st)
	}
	if st.DiskKeys == 0 || st.DiskBytes == 0 {
		t.Fatalf("write-through left no disk footprint: %+v", st)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Cold process": fresh memory tier, reopened store.
	s2 := openTestStore(t, dir)
	defer s2.Close()
	cold := NewCache(CacheConfig{Disk: s2})
	b2, hit, err := cold.CraftedBatch(ctx, f.net, test, atk, 0.1, opts)
	if err != nil || !hit {
		t.Fatalf("cold craft: hit=%v err=%v", hit, err)
	}
	st = cold.Stats()
	if st.DiskCraftHits != 1 || st.DiskCraftMisses != 0 {
		t.Fatalf("cold stats: %+v", st)
	}
	if len(b1.Data) != len(b2.Data) {
		t.Fatalf("batch sizes differ: %d vs %d", len(b1.Data), len(b2.Data))
	}
	for i := range b1.Data {
		if b1.Data[i] != b2.Data[i] {
			t.Fatalf("disk-served batch differs at %d: %v vs %v", i, b1.Data[i], b2.Data[i])
		}
	}
	// Second lookup on the cold cache is now a memory hit: the disk
	// tier installs into the hot tier rather than re-probing.
	if _, hit, _ = cold.CraftedBatch(ctx, f.net, test, atk, 0.1, opts); !hit {
		t.Fatal("disk hit did not install into the memory tier")
	}
	if st := cold.Stats(); st.DiskCraftHits != 1 {
		t.Fatalf("memory hit re-probed disk: %+v", st)
	}

	// Different seed is a different artifact: disk miss, recompute.
	if _, hit, _ = cold.CraftedBatch(ctx, f.net, test, atk, 0.1, Options{Seed: 10}); hit {
		t.Fatal("seed change served a stale artifact")
	}
	if st := cold.Stats(); st.DiskCraftMisses != 1 {
		t.Fatalf("want 1 disk craft miss after seed change, got %+v", st)
	}
}

// TestDiskTierPredictions covers the prediction side: axnn victims key
// by configuration (ModelKey), so a freshly compiled equal-config
// victim in a new process hits the persisted predictions.
func TestDiskTierPredictions(t *testing.T) {
	f := getFixture(t)
	test := f.test.Slice(30)
	calib := test.Inputs(16)
	dir := t.TempDir()

	compile := func() *axnn.Network {
		v, err := axnn.Compile(f.net, calib, axnn.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	v1 := compile()
	v2 := compile()
	if v1.ModelKey() != v2.ModelKey() {
		t.Fatalf("equal-config compiles disagree on ModelKey:\n%s\n%s", v1.ModelKey(), v2.ModelKey())
	}
	if !strings.Contains(v1.ModelKey(), "mul=") {
		t.Fatalf("ModelKey misses multiplier: %s", v1.ModelKey())
	}

	ctx := context.Background()
	opts := Options{Seed: 4}
	s1 := openTestStore(t, dir)
	warm := NewCache(CacheConfig{Disk: s1})
	adv, _, err := warm.CraftedBatch(ctx, f.net, test, attack.ByName("FGM-linf"), 0.05, opts)
	if err != nil {
		t.Fatal(err)
	}
	p1, hit, err := warm.Predictions(ctx, v1, adv, opts)
	if err != nil || hit {
		t.Fatalf("first predictions: hit=%v err=%v", hit, err)
	}
	if st := warm.Stats(); st.DiskPredMisses != 1 || st.DiskPredHits != 0 {
		t.Fatalf("warm pred stats: %+v", st)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTestStore(t, dir)
	defer s2.Close()
	cold := NewCache(CacheConfig{Disk: s2})
	// The crafted batch itself comes off disk; the prediction key hangs
	// off its content, so this works end to end from a cold start.
	adv2, hit, err := cold.CraftedBatch(ctx, f.net, test, attack.ByName("FGM-linf"), 0.05, opts)
	if err != nil || !hit {
		t.Fatalf("cold craft: hit=%v err=%v", hit, err)
	}
	p2, hit, err := cold.Predictions(ctx, v2, adv2, opts)
	if err != nil || !hit {
		t.Fatalf("cold predictions: hit=%v err=%v", hit, err)
	}
	if st := cold.Stats(); st.DiskPredHits != 1 {
		t.Fatalf("cold pred stats: %+v", st)
	}
	if len(p1) != len(p2) {
		t.Fatalf("prediction lengths differ: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("disk-served prediction differs at %d: %d vs %d", i, p1[i], p2[i])
		}
	}
}

// TestDiskTierCorruptValueRecomputes pins the degrade path: a stored
// value that fails to decode counts a disk error and falls back to the
// compute path instead of surfacing an error or a bad tensor.
func TestDiskTierCorruptValueRecomputes(t *testing.T) {
	f := getFixture(t)
	test := f.test.Slice(20)
	atk := attack.ByName("FGM-linf")
	dir := t.TempDir()
	ctx := context.Background()
	opts := Options{Seed: 6}

	s1 := openTestStore(t, dir)
	warm := NewCache(CacheConfig{Disk: s1})
	b1, _, err := warm.CraftedBatch(ctx, f.net, test, atk, 0.1, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Supersede the stored value with junk under the same key.
	var craftKeys []string
	if err := s1.Scan(func(key string, _ []byte) error {
		if strings.HasPrefix(key, "craft/v1|") {
			craftKeys = append(craftKeys, key)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(craftKeys) != 1 {
		t.Fatalf("want 1 craft record, found %d", len(craftKeys))
	}
	if err := s1.Put(craftKeys[0], []byte("not a tensor")); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTestStore(t, dir)
	defer s2.Close()
	cold := NewCache(CacheConfig{Disk: s2})
	b2, hit, err := cold.CraftedBatch(ctx, f.net, test, atk, 0.1, opts)
	if err != nil || hit {
		t.Fatalf("corrupt value should recompute: hit=%v err=%v", hit, err)
	}
	st := cold.Stats()
	if st.DiskErrors == 0 || st.DiskCraftMisses != 1 {
		t.Fatalf("corrupt value not accounted: %+v", st)
	}
	for i := range b1.Data {
		if b1.Data[i] != b2.Data[i] {
			t.Fatalf("recomputed batch differs at %d", i)
		}
	}
}

// TestMemoryOnlyCacheDiskStatsZero pins the default-off contract: a
// cache without a disk tier reports all-zero disk counters.
func TestMemoryOnlyCacheDiskStatsZero(t *testing.T) {
	c := NewCache(CacheConfig{})
	st := c.Stats()
	if st.DiskCraftHits != 0 || st.DiskCraftMisses != 0 || st.DiskPredHits != 0 ||
		st.DiskPredMisses != 0 || st.DiskErrors != 0 || st.DiskKeys != 0 || st.DiskBytes != 0 {
		t.Fatalf("memory-only cache has disk stats: %+v", st)
	}
}
