package service

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/store"
)

// normalizeTimings strips the execution-history fields from a report's
// cell timings. CacheHit/ElapsedMS depend on which node crafted what
// and in which order, so byte-identity across execution topologies is
// asserted on the normalized JSON; the CSV carries no timings.
func normalizeTimings(rep *experiment.Report) {
	for i := range rep.Cells {
		rep.Cells[i].CacheHit = false
		rep.Cells[i].ElapsedMS = 0
	}
}

// TestShardedSuiteMatchesLocal is the tentpole's acceptance criterion
// for multi-node execution: a two-node sharded run over a shared disk
// store produces a report whose CSV bytes and normalized JSON are
// identical to a single-node local run, with the scheduler counters
// attributing cells to the right nodes and the job's event stream
// covering every plan position exactly once.
func TestShardedSuiteMatchesLocal(t *testing.T) {
	// Both nodes mount one store instance as their cache's disk tier —
	// the in-process equivalent of two axserve processes sharing a
	// -data-dir — so a batch crafted on one shard is replayable on the
	// other.
	shared, err := store.Open(store.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { shared.Close() })

	peer := newTestManager(t, Config{Workers: 1, Cache: core.NewCache(core.CacheConfig{Disk: shared})})
	peerSrv := httptest.NewServer(NewHandler(peer))
	t.Cleanup(peerSrv.Close)

	m := newTestManager(t, Config{
		Workers: 1,
		Cache:   core.NewCache(core.CacheConfig{Disk: shared}),
		Peers:   []string{peerSrv.URL},
	})

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	id, _, err := m.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := m.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}

	local, err := experiment.New(experiment.WithModelSource(fixtureSource(t))).Run(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}

	var shardedCSV, localCSV bytes.Buffer
	if err := sharded.WriteCSV(&shardedCSV); err != nil {
		t.Fatal(err)
	}
	if err := local.WriteCSV(&localCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shardedCSV.Bytes(), localCSV.Bytes()) {
		t.Fatalf("sharded CSV diverged from a local run:\n--- sharded ---\n%s--- local ---\n%s", shardedCSV.Bytes(), localCSV.Bytes())
	}
	normalizeTimings(sharded)
	normalizeTimings(local)
	var shardedJSON, localJSON bytes.Buffer
	if err := sharded.WriteJSON(&shardedJSON); err != nil {
		t.Fatal(err)
	}
	if err := local.WriteJSON(&localJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shardedJSON.Bytes(), localJSON.Bytes()) {
		t.Fatalf("sharded normalized JSON diverged:\n--- sharded ---\n%s--- local ---\n%s", shardedJSON.Bytes(), localJSON.Bytes())
	}

	// The 2-grid suite split one grid per node: both nodes executed
	// cells locally, the sharding node counted the peer's as remote,
	// and nothing fell back.
	cellsPerGrid := int64(len(tinySpec().Eps))
	if got := m.Sched().Remote.Load(); got != cellsPerGrid {
		t.Fatalf("sharding node counted %d remote cells, want %d", got, cellsPerGrid)
	}
	if got := m.Sched().Local.Load(); got != cellsPerGrid {
		t.Fatalf("sharding node executed %d cells locally, want %d", got, cellsPerGrid)
	}
	if got := peer.Sched().Local.Load(); got != cellsPerGrid {
		t.Fatalf("peer executed %d cells, want %d", got, cellsPerGrid)
	}
	if m.Sched().Fallback.Load() != 0 {
		t.Fatal("healthy peer must not trigger fallback")
	}

	// The job's event stream covers every plan position exactly once,
	// remote cells included (replayed at their stable indices).
	plan, err := tinySpec().Plan()
	if err != nil {
		t.Fatal(err)
	}
	finished := map[int]int{}
	for _, ev := range collectEvents(t, m, id) {
		if ev.Kind == experiment.CellFinished {
			finished[ev.Cell]++
			if ev.Cells != plan.Total {
				t.Fatalf("event advertises %d cells, want plan total %d: %+v", ev.Cells, plan.Total, ev)
			}
		}
	}
	for idx := 1; idx <= plan.Total; idx++ {
		if finished[idx] != 1 {
			t.Fatalf("plan index %d finished %d times in the event stream, want exactly once", idx, finished[idx])
		}
	}
}

// TestShardPeerFailureFallsBackLocal: a dead peer degrades a sharded
// job to local execution of the peer's partition — the suite still
// completes with a correct report, and the fallback counter records
// the re-executed cells.
func TestShardPeerFailureFallsBackLocal(t *testing.T) {
	// An unroutable peer: connections fail fast, no server involved.
	m := newTestManager(t, Config{Workers: 1, Peers: []string{"http://127.0.0.1:1"}})

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	id, _, err := m.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}

	local, err := experiment.New(experiment.WithModelSource(fixtureSource(t))).Run(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	var repCSV, localCSV bytes.Buffer
	if err := rep.WriteCSV(&repCSV); err != nil {
		t.Fatal(err)
	}
	if err := local.WriteCSV(&localCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repCSV.Bytes(), localCSV.Bytes()) {
		t.Fatalf("fallback run's CSV diverged from a local run:\n--- fallback ---\n%s--- local ---\n%s", repCSV.Bytes(), localCSV.Bytes())
	}

	cellsPerGrid := int64(len(tinySpec().Eps))
	if got := m.Sched().Fallback.Load(); got != cellsPerGrid {
		t.Fatalf("fallback counter = %d, want the dead peer's %d cells", got, cellsPerGrid)
	}
	if m.Sched().Remote.Load() != 0 {
		t.Fatal("a dead peer must not count remote cells")
	}
	// Local counts its own partition plus the fallback cells.
	if got := m.Sched().Local.Load(); got != 2*cellsPerGrid {
		t.Fatalf("local counter = %d, want %d (own partition + fallback)", got, 2*cellsPerGrid)
	}
}

// TestSingleGridSuiteNeverShards: sharding is only worth a network
// hop when there is more than one grid; a 1-grid suite runs entirely
// locally even on a peer-configured manager.
func TestSingleGridSuiteNeverShards(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, Peers: []string{"http://127.0.0.1:1"}})
	spec := tinySpec()
	spec.Attacks = []string{"FGM-linf"}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	id, _, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(ctx, id); err != nil {
		t.Fatal(err)
	}
	if m.Sched().Remote.Load() != 0 || m.Sched().Fallback.Load() != 0 {
		t.Fatal("single-grid suite must not touch the sharded path")
	}
}

// TestMergeShardReports covers the merger's integrity checks directly:
// partial coverage, duplicated grids, and clean-accuracy skew must all
// fail rather than assemble a report with holes.
func TestMergeShardReports(t *testing.T) {
	plan, err := tinySpec().Plan()
	if err != nil {
		t.Fatal(err)
	}
	part := func(attack string, clean float64) *experiment.Report {
		g := &core.Grid{
			Attack:  attack,
			Dataset: "synth-digits",
			Eps:     []float64{0, 0.1},
			Victims: []string{"mul8u_1JFF", "mul8u_JV3"},
			Acc:     [][]float64{{90, 90}, {40, 40}},
		}
		return &experiment.Report{
			Spec:     *plan.Spec(),
			CleanAcc: clean,
			Grids:    []*core.Grid{g},
			Cells: []experiment.CellTiming{
				{Attack: attack, Eps: 0},
				{Attack: attack, Eps: 0.1},
			},
		}
	}

	full, err := mergeShardReports(plan, []*experiment.Report{part("FGM-linf", 95), part("PGD-linf", 95)})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Grids) != 2 || full.Grids[0].Attack != "FGM-linf" || len(full.Cells) != plan.Total {
		t.Fatalf("merged report malformed: %d grids, %d cells", len(full.Grids), len(full.Cells))
	}

	if _, err := mergeShardReports(plan, nil); err == nil {
		t.Fatal("merging zero parts must fail")
	}
	if _, err := mergeShardReports(plan, []*experiment.Report{part("FGM-linf", 95)}); err == nil {
		t.Fatal("a merge that leaves a grid uncovered must fail")
	}
	if _, err := mergeShardReports(plan, []*experiment.Report{part("FGM-linf", 95), part("FGM-linf", 95)}); err == nil {
		t.Fatal("the same grid from two shards must fail")
	}
	if _, err := mergeShardReports(plan, []*experiment.Report{part("FGM-linf", 95), part("PGD-linf", 90)}); err == nil {
		t.Fatal("clean-accuracy skew across shards must fail")
	}
}
