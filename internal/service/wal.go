package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/experiment"
	"repro/internal/store"
)

// Write-ahead job log. When Config.Log is set, the manager persists
// each job's submission, event stream, and outcome to the store under
// content-addressed keys, and NewManager replays the log on startup:
// finished jobs come back with their full event history and report
// (re-served byte-identically, without recompute), while jobs the
// previous process never finished — killed mid-run, or force-cancelled
// by a drain-expired Close — are re-enqueued under the same JobID.
//
// Key scheme (one logical record per key; the store's append-only
// segments keep every version, the index serves the last write):
//
//	job/<id>/spec          canonical experiment.Spec encoding
//	job/<id>/ev/<gen>/<n>  event n of attempt <gen>, JSON wire schema
//	job/<id>/state         walState JSON — the commit record
//
// A "generation" is one execution attempt, stamped from the submission
// clock. Re-running a job (crash resume, resubmit after failure) opens
// a new generation, so stale events from a longer earlier attempt can
// never interleave into a shorter re-run's log: replay only loads the
// events of the generation named by the final state record.
//
// The report is NOT a separate record: walState carries the exact
// WriteJSON bytes, so a restarted server re-serves what the original
// run would have sent. Report encoding round-trips byte-identically
// (pinned by the experiment report tests), so re-encoding the decoded
// report — as the HTTP facade does — yields the same bytes.

// walPrefix roots every job-log key, keeping the WAL keyspace disjoint
// from the cache tier's craft/pred keys even if both point at one store.
const walPrefix = "job/"

// walState is the per-job commit record. Every submission writes one
// (queued); every terminal transition supersedes it. Replay trusts the
// last write.
type walState struct {
	State     State     `json:"state"`
	Gen       int64     `json:"gen"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`
	CellsDone int       `json:"cells_done,omitempty"`
	Error     string    `json:"error,omitempty"`
	// Resumable marks a cancellation the job's owner never asked for —
	// a drain-expired shutdown — so restart re-enqueues it instead of
	// honoring the cancel.
	Resumable bool `json:"resumable,omitempty"`
	// ReportJSON is the finished report's exact WriteJSON bytes
	// (StateDone only).
	ReportJSON json.RawMessage `json:"report,omitempty"`
}

// jobLog appends one job's records to the shared store. A nil *jobLog
// is valid and drops every write — the memory-only manager pays one
// nil check per event and nothing else. Writes happen under the
// owning job's mutex, which orders the event sequence numbers.
type jobLog struct {
	s   *store.Store
	id  string
	gen int64
	seq int
}

// newJobLog opens a fresh generation of one job's log. Generations are
// stamped from the wall clock, so a re-run (crash resume, resubmit
// after failure) can never collide with an earlier attempt's event
// keys.
func newJobLog(s *store.Store, id string) *jobLog {
	//axvet:ignore determinism -- generation stamp only orders WAL attempts of one job; event payloads never contain it
	return &jobLog{s: s, id: id, gen: time.Now().UnixNano()}
}

func (w *jobLog) key(parts ...string) string {
	return walPrefix + w.id + "/" + strings.Join(parts, "/")
}

// putSpec persists the canonical spec encoding once per job ID.
func (w *jobLog) putSpec(canonical []byte) {
	if w == nil {
		return
	}
	w.s.Put(w.key("spec"), canonical)
}

// putEvent appends one event to the current generation.
func (w *jobLog) putEvent(ev experiment.Event) {
	if w == nil {
		return
	}
	raw, err := json.Marshal(ev)
	if err != nil {
		return
	}
	w.s.Put(w.key("ev", fmt.Sprintf("%016x", w.gen), fmt.Sprintf("%08d", w.seq)), raw)
	w.seq++
}

// putState supersedes the job's commit record.
func (w *jobLog) putState(st walState) {
	if w == nil {
		return
	}
	st.Gen = w.gen
	raw, err := json.Marshal(st)
	if err != nil {
		return
	}
	w.s.Put(w.key("state"), raw)
}

// walJob is one job reassembled from a log scan.
type walJob struct {
	id     string
	spec   []byte
	state  *walState
	events map[int64]map[int][]byte // gen -> seq -> wire bytes
}

// replayWAL scans the store and rebuilds the job table. Records that
// fail to parse are skipped — a WAL that lost its tail to a crash
// degrades to recomputing the affected job, never to a failed startup.
func replayWAL(s *store.Store) []*walJob {
	byID := map[string]*walJob{}
	get := func(id string) *walJob {
		w := byID[id]
		if w == nil {
			w = &walJob{id: id, events: map[int64]map[int][]byte{}}
			byID[id] = w
		}
		return w
	}
	s.Scan(func(key string, val []byte) error {
		if !strings.HasPrefix(key, walPrefix) {
			return nil
		}
		parts := strings.Split(key[len(walPrefix):], "/")
		switch {
		case len(parts) == 2 && parts[1] == "spec":
			get(parts[0]).spec = append([]byte(nil), val...)
		case len(parts) == 2 && parts[1] == "state":
			var st walState
			if json.Unmarshal(val, &st) == nil {
				get(parts[0]).state = &st
			}
		case len(parts) == 4 && parts[1] == "ev":
			gen, err1 := strconv.ParseInt(parts[2], 16, 64)
			seq, err2 := strconv.Atoi(parts[3])
			if err1 != nil || err2 != nil {
				return nil
			}
			w := get(parts[0])
			if w.events[gen] == nil {
				w.events[gen] = map[int][]byte{}
			}
			w.events[gen][seq] = append([]byte(nil), val...)
		}
		return nil
	})
	out := make([]*walJob, 0, len(byID))
	for _, w := range byID {
		if w.spec == nil || w.state == nil {
			continue // torn submission: nothing actionable survived
		}
		out = append(out, w)
	}
	// Submission order, as List and eviction expect.
	sort.Slice(out, func(i, k int) bool {
		a, b := out[i].state, out[k].state
		if !a.Submitted.Equal(b.Submitted) {
			return a.Submitted.Before(b.Submitted)
		}
		return out[i].id < out[k].id
	})
	return out
}

// restore turns a replayed terminal WAL job back into a live job
// record: full event log, decoded report, closed done channel.
func (w *walJob) restore(log *store.Store) (*job, error) {
	spec, err := experiment.Parse(w.spec)
	if err != nil {
		return nil, err
	}
	st := w.state
	j := &job{
		id:        w.id,
		spec:      spec,
		state:     st.State,
		cellsDone: st.CellsDone,
		submitted: st.Submitted,
		started:   st.Started,
		finished:  st.Finished,
		done:      make(chan struct{}),
	}
	j.cond = sync.NewCond(&j.mu)
	j.wal = &jobLog{s: log, id: w.id, gen: st.Gen}
	if st.Error != "" {
		j.err = errors.New(st.Error)
	}
	seqs := make([]int, 0, len(w.events[st.Gen]))
	for seq := range w.events[st.Gen] {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	for _, seq := range seqs {
		var ev experiment.Event
		if err := json.Unmarshal(w.events[st.Gen][seq], &ev); err != nil {
			continue
		}
		j.log = append(j.log, ev)
	}
	j.wal.seq = len(j.log)
	if st.State == StateDone {
		rep, err := experiment.ReadReport(bytes.NewReader(st.ReportJSON))
		if err != nil {
			return nil, err
		}
		j.report = rep
	}
	close(j.done)
	return j, nil
}
