// Package service turns the experiment engine into a job-oriented
// suite service: a Manager accepts experiment.Specs, deduplicates them
// by canonical content hash (the job ID), runs them on a bounded
// worker pool that shares one core.Cache across jobs, and exposes
// Status / Result / Events / Cancel / List. Every job keeps a
// persisted event log, so progress is replayable by subscribers that
// arrive mid-run or after completion — the contract the HTTP façade's
// SSE stream (NewHandler) and the Go client (Client) are built on.
//
// The execution semantics are exactly Engine.Run's: one engine per
// job, all engines sharing the manager's cache via
// experiment.WithCache — the concurrency pattern pinned by the
// engine's shared-cache race test. The service only adds ownership:
// who queues, observes, cancels, and remembers runs.
package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/modelzoo"
	"repro/internal/obs"
	"repro/internal/store"
)

// State is a job's lifecycle phase.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the job has stopped moving: its log is
// complete and Result/Report will never change again.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Sentinel errors mapped to HTTP statuses by the façade.
var (
	ErrNotFound    = errors.New("service: no such job")
	ErrNotFinished = errors.New("service: job has not finished")
	ErrQueueFull   = errors.New("service: job queue is full")
	ErrClosed      = errors.New("service: manager is shut down")
)

// Config tunes a Manager. The zero value selects the defaults.
type Config struct {
	// Workers bounds the number of suites running concurrently
	// (default 2). Each job still parallelises internally per its
	// spec's Workers field, so this is jobs-in-flight, not CPU fan-out.
	Workers int
	// QueueDepth bounds the jobs waiting behind the pool (default 64);
	// Submit returns ErrQueueFull beyond it rather than blocking.
	QueueDepth int
	// Cache is the crafted-batch/prediction cache shared by every job
	// (default: a fresh core.NewCache). Sharing is the point: identical
	// cells across queued suites — the eps=0 clean row, overlapping
	// sweeps — are crafted once for the whole service.
	Cache *core.Cache
	// ModelSource overrides the engines' model resolver (default
	// modelzoo.Get) — tests inject small purpose-trained fixtures.
	ModelSource func(context.Context, string) (*modelzoo.Model, error)
	// MaxJobs bounds how many jobs — and their event logs and reports
	// — the manager retains (default 1024). Beyond it, the oldest
	// terminal jobs are evicted; queued and running jobs are never
	// dropped. Eviction also bounds the dedup window: resubmitting an
	// evicted spec recomputes it under the same content-derived ID.
	MaxJobs int
	// Log is the optional write-ahead job log (see wal.go): every
	// submission, event, and outcome is persisted, and NewManager
	// replays the store on startup — finished jobs are re-served
	// without recompute, unfinished ones re-enqueue under the same
	// JobID. nil (the default) keeps jobs in memory only, exactly the
	// previous behavior. The manager does not own the store; callers
	// close it after Close returns.
	Log *store.Store
	// Peers are base URLs of other axserve nodes to shard multi-grid
	// suites across (see shard.go). Empty (the default) runs every job
	// locally. A peer that fails mid-shard degrades to local fallback,
	// never to a failed job.
	Peers []string
	// CellParallel is the number of suite cells each job runs in
	// flight through the local executor (0 or 1 = serial, the previous
	// behavior). Within-cell parallelism is still the spec's Workers.
	CellParallel int
}

// JobStatus is the observable snapshot of a job.
type JobStatus struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Suite is the spec's name, Model its source model.
	Suite string `json:"suite,omitempty"`
	Model string `json:"model"`
	// Cells / CellsDone give suite-wide progress over the attack × eps
	// plan.
	Cells     int       `json:"cells"`
	CellsDone int       `json:"cells_done"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`
	// Error is set on failed/cancelled jobs.
	Error string `json:"error,omitempty"`
}

// job is the Manager's record of one submitted spec.
type job struct {
	id   string
	spec *experiment.Spec

	mu   sync.Mutex
	cond *sync.Cond // broadcast on log append and state change
	// log is the persisted per-job event log: the single source every
	// subscriber replays from, so late subscribers see the full
	// history before going live.
	log       []experiment.Event
	state     State
	cellsDone int
	report    *experiment.Report
	err       error
	cancelReq bool
	shutdown  bool               // cancellation came from Close, not the owner
	cancel    context.CancelFunc // set while running
	submitted time.Time
	started   time.Time
	finished  time.Time
	// wal mirrors the log and terminal state to the persistent job log;
	// nil on a memory-only manager (every write is a nil-receiver no-op).
	wal *jobLog
	// trace is the job's bounded span ring, created when the job starts
	// running; nil for queued jobs and jobs restored from the WAL
	// (traces are in-memory observability, not part of the durable
	// record).
	trace *obs.Recorder

	done chan struct{} // closed when state turns terminal
}

func (j *job) statusLocked() JobStatus {
	st := JobStatus{
		ID:        j.id,
		State:     j.state,
		Suite:     j.spec.Name,
		Model:     j.spec.Model,
		Cells:     j.spec.CellCount(),
		CellsDone: j.cellsDone,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// record appends one event to the job's log and wakes subscribers. It
// is the engine's WithProgress callback, so it also stamps the job ID
// (and timestamp, for service-originated suite brackets) onto every
// event — interleaved jobs in one process stay attributable.
func (j *job) record(ev experiment.Event) {
	ev.Job = j.id
	if ev.Suite == "" {
		ev.Suite = j.spec.Name
	}
	if ev.Time.IsZero() {
		//axvet:ignore determinism -- observability timestamp on the event envelope; replay comparisons normalize Time
		ev.Time = time.Now()
	}
	j.mu.Lock()
	if ev.Kind == experiment.CellFinished {
		j.cellsDone++
	}
	j.log = append(j.log, ev)
	j.wal.putEvent(ev)
	j.cond.Broadcast()
	j.mu.Unlock()
}

// finishLocked moves the job to a terminal state, appends the closing
// SuiteFinished event, and releases waiters. Callers hold j.mu.
func (j *job) finishLocked(state State, elapsed time.Duration, err error) {
	j.state = state
	j.err = err
	j.finished = time.Now() //axvet:ignore determinism -- job lifecycle metadata for status queries, not part of any result
	ev := experiment.Event{
		Kind:    experiment.SuiteFinished,
		Time:    j.finished,
		Job:     j.id,
		Suite:   j.spec.Name,
		Cells:   j.spec.CellCount(),
		Cell:    j.cellsDone,
		Elapsed: elapsed,
	}
	if err != nil {
		ev.Err = err.Error()
	}
	j.log = append(j.log, ev)
	j.wal.putEvent(ev)
	st := walState{
		State:     state,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
		CellsDone: j.cellsDone,
		// A shutdown-forced cancellation is not the owner's decision:
		// mark it resumable so a restart re-enqueues the job instead of
		// honoring a cancel nobody requested.
		Resumable: state == StateCancelled && j.shutdown,
	}
	if err != nil {
		st.Error = err.Error()
	}
	if state == StateDone && j.report != nil {
		var buf bytes.Buffer
		if j.report.WriteJSON(&buf) == nil {
			st.ReportJSON = buf.Bytes()
		}
	}
	j.wal.putState(st)
	j.cond.Broadcast()
	close(j.done)
}

// Manager owns the job table, the worker pool, and the shared cache.
// Construct with NewManager; all methods are safe for concurrent use.
type Manager struct {
	cache       *core.Cache
	modelSource func(context.Context, string) (*modelzoo.Model, error)
	maxJobs     int
	log         *store.Store // nil = memory-only
	peers       []*Client
	cellPar     int
	sched       experiment.SchedCounters

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // submission order, for List
	queue  chan *job
	closed bool
	wg     sync.WaitGroup
}

// NewManager starts a manager with cfg.Workers job runners.
func NewManager(cfg Config) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Cache == nil {
		cfg.Cache = core.NewCache(core.CacheConfig{})
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 1024
	}
	m := &Manager{
		cache:       cfg.Cache,
		modelSource: cfg.ModelSource,
		maxJobs:     cfg.MaxJobs,
		log:         cfg.Log,
		cellPar:     cfg.CellParallel,
		jobs:        make(map[string]*job),
	}
	for _, p := range cfg.Peers {
		m.peers = append(m.peers, NewClient(p))
	}
	// Replay the write-ahead log before the workers start: restored
	// terminal jobs are served from memory again, and jobs the previous
	// process never finished are re-enqueued ahead of any new
	// submissions. The queue is sized to fit every resumed job even
	// when that exceeds QueueDepth — resuming must not fail.
	var resume []*job
	if m.log != nil {
		var restored []*job
		restored, resume = m.replay()
		for _, j := range restored {
			m.jobs[j.id] = j
			m.order = append(m.order, j.id)
		}
	}
	depth := cfg.QueueDepth
	if len(resume) > depth {
		depth = len(resume)
	}
	m.queue = make(chan *job, depth)
	for _, j := range resume {
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
		m.queue <- j
	}
	m.evictLocked()
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// replay rebuilds the job table from the write-ahead log: jobs that
// reached a terminal state on their own come back restored (event log,
// report, timestamps); jobs that did not — still queued/running when
// the process died, or force-cancelled by a drain-expired Close — come
// back as fresh queued jobs under the same ID, in submission order.
// Unparseable jobs are dropped: a torn log degrades to recompute on
// resubmission, never to a failed startup.
func (m *Manager) replay() (restored, resume []*job) {
	for _, w := range replayWAL(m.log) {
		st := w.state
		if st.State.Terminal() && !(st.State == StateCancelled && st.Resumable) {
			j, err := w.restore(m.log)
			if err != nil {
				continue
			}
			restored = append(restored, j)
			continue
		}
		spec, err := experiment.Parse(w.spec)
		if err != nil {
			continue
		}
		j := &job{
			id:        w.id,
			spec:      spec,
			state:     StateQueued,
			submitted: st.Submitted, // keep the original submission order
			done:      make(chan struct{}),
		}
		j.cond = sync.NewCond(&j.mu)
		j.wal = newJobLog(m.log, w.id)
		j.wal.putState(walState{State: StateQueued, Submitted: j.submitted})
		resume = append(resume, j)
	}
	return restored, resume
}

// Cache exposes the shared cache, chiefly for the /metrics scrape.
func (m *Manager) Cache() *core.Cache { return m.cache }

// Sched exposes the scheduler counters, chiefly for the /metrics
// scrape. On a single-node manager Remote and Fallback stay pinned at
// zero.
func (m *Manager) Sched() *experiment.SchedCounters { return &m.sched }

// newEngine builds the per-job engine: shared cache, this manager's
// local executor (cell parallelism + scheduler counters), optional
// progress sink and model source.
func (m *Manager) newEngine(progress func(experiment.Event)) *experiment.Engine {
	opts := []experiment.Option{
		experiment.WithCache(m.cache),
		experiment.WithExecutor(&experiment.LocalExecutor{Parallel: m.cellPar, Counters: &m.sched}),
	}
	if progress != nil {
		opts = append(opts, experiment.WithProgress(progress))
	}
	if m.modelSource != nil {
		opts = append(opts, experiment.WithModelSource(m.modelSource))
	}
	return experiment.New(opts...)
}

// JobID derives the job ID for a spec: the hex-truncated SHA-256 of
// its canonical encoding (Spec.Encode). Identical suites — however
// their JSON was formatted on the way in — always hash to the same ID,
// which is what makes Submit deduplicate instead of recompute.
// Workers and Batch tune execution, not results (crafting rng streams
// are chunking-independent, pinned by the core determinism tests), so
// they are excluded from the hash: suites differing only in
// parallelism dedupe too, running with the first submission's
// settings.
func JobID(spec *experiment.Spec) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}
	hashed := *spec
	hashed.Workers, hashed.Batch = 0, 0
	canonical, err := hashed.Encode()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:8]), nil
}

// Submit queues the suite and returns its content-derived job ID.
// created reports whether this call enqueued new work: resubmitting a
// spec the manager already knows as queued, running, or done returns
// the existing job untouched, so identical suites are computed once
// and every subsequent submission is served from the first job's log
// and result. Failed and cancelled jobs are dead ends with no report
// to serve, so resubmission retries them with a fresh job under the
// same ID.
func (m *Manager) Submit(spec *experiment.Spec) (id string, created bool, err error) {
	id, err = JobID(spec)
	if err != nil {
		return "", false, err
	}
	// Re-parse the canonical encoding so the job owns an independent
	// copy: callers reusing their spec (flag overrides, repeated
	// submissions) must not mutate a queued job's plan.
	canonical, err := spec.Encode()
	if err != nil {
		return "", false, err
	}
	own, err := experiment.Parse(canonical)
	if err != nil {
		return "", false, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return "", false, ErrClosed
	}
	replacing := false
	if prev, ok := m.jobs[id]; ok {
		prev.mu.Lock()
		state := prev.state
		prev.mu.Unlock()
		if state != StateFailed && state != StateCancelled {
			return id, false, nil
		}
		replacing = true
	}
	j := &job{
		id:        id,
		spec:      own,
		state:     StateQueued,
		submitted: time.Now(), //axvet:ignore determinism -- job lifecycle metadata for status queries, not part of any result
		done:      make(chan struct{}),
	}
	j.cond = sync.NewCond(&j.mu)
	// Journal before publishing: the queue send is what hands the job
	// to a worker, and the worker appends events through j.wal, so the
	// log (and its queued commit record) must exist first — anything
	// later races, and a later queued record could supersede a fast
	// job's terminal one.
	if m.log != nil {
		j.wal = newJobLog(m.log, id)
		j.wal.putSpec(canonical)
		j.wal.putState(walState{State: StateQueued, Submitted: j.submitted})
	}
	select {
	case m.queue <- j:
	default:
		// The journaled submission was never admitted; tombstone it so
		// a restart doesn't resurrect a job the caller was refused.
		j.wal.putState(walState{State: StateCancelled, Submitted: j.submitted, Error: ErrQueueFull.Error()})
		return "", false, ErrQueueFull
	}
	m.jobs[id] = j
	if !replacing {
		m.order = append(m.order, id)
	}
	m.evictLocked()
	return id, true, nil
}

// evictLocked drops the oldest terminal jobs once the table exceeds
// the retention bound, so a long-lived server's job history — event
// logs, reports — stays bounded. Active jobs are never dropped, even
// over the bound. Callers hold m.mu.
func (m *Manager) evictLocked() {
	if len(m.jobs) <= m.maxJobs {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		j := m.jobs[id]
		if len(m.jobs) > m.maxJobs {
			j.mu.Lock()
			terminal := j.state.Terminal()
			j.mu.Unlock()
			if terminal {
				delete(m.jobs, id)
				continue
			}
		}
		kept = append(kept, id)
	}
	m.order = kept
}

func (m *Manager) lookup(id string) (*job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return j, nil
}

// Status snapshots one job.
func (m *Manager) Status(id string) (JobStatus, error) {
	j, err := m.lookup(id)
	if err != nil {
		return JobStatus{}, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked(), nil
}

// List snapshots every job in submission order.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*job, len(ids))
	for i, id := range ids {
		jobs[i] = m.jobs[id]
	}
	m.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		j.mu.Lock()
		out[i] = j.statusLocked()
		j.mu.Unlock()
	}
	return out
}

// Result returns the finished job's report. A job that has not
// finished yet returns ErrNotFinished; a failed or cancelled job
// returns its terminal error.
func (m *Manager) Result(id string) (*experiment.Report, error) {
	j, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.state == StateDone:
		return j.report, nil
	case j.state.Terminal():
		return nil, j.err
	default:
		return nil, fmt.Errorf("%w: %s is %s", ErrNotFinished, id, j.state)
	}
}

// Wait blocks until the job reaches a terminal state (or ctx is
// cancelled), then returns Result.
func (m *Manager) Wait(ctx context.Context, id string) (*experiment.Report, error) {
	j, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-j.done:
	}
	return m.Result(id)
}

// Trace snapshots the job's recorded spans — local stages plus any
// shard subtrees imported from peers. A job that has not started (or
// was restored from the WAL, whose traces are not durable) has no
// spans yet; that is an empty trace, not an error.
func (m *Manager) Trace(id string) ([]obs.Span, error) {
	j, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	rec := j.trace
	j.mu.Unlock()
	if rec == nil {
		return nil, nil
	}
	return rec.Spans(), nil
}

// Events subscribes to the job's event stream: the persisted log is
// replayed from the beginning — late subscribers see the full history,
// including after the job finished — followed by live events, and the
// channel closes once the terminal SuiteFinished event has been
// delivered or ctx is cancelled.
func (m *Manager) Events(ctx context.Context, id string) (<-chan experiment.Event, error) {
	j, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	ch := make(chan experiment.Event)
	// The cond loop below sleeps on j.cond; wake it when the
	// subscriber's ctx dies so the goroutine never outlives its reader.
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	go func() {
		defer close(ch)
		defer stop()
		next := 0
		for {
			j.mu.Lock()
			for next >= len(j.log) && !j.state.Terminal() && ctx.Err() == nil {
				j.cond.Wait()
			}
			if next < len(j.log) && ctx.Err() == nil {
				ev := j.log[next]
				next++
				j.mu.Unlock()
				select {
				case ch <- ev:
					continue
				case <-ctx.Done():
					return
				}
			}
			j.mu.Unlock()
			// Either the log is fully drained on a terminal job, or the
			// subscriber went away.
			return
		}
	}()
	return ch, nil
}

// Cancel stops the job: a queued job turns cancelled immediately
// (the worker skips it), a running job has its context cancelled and
// turns cancelled when Engine.Run unwinds. Cancelling a terminal job
// is a no-op, so DELETE is idempotent.
func (m *Manager) Cancel(id string) (JobStatus, error) {
	j, err := m.lookup(id)
	if err != nil {
		return JobStatus{}, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.state.Terminal():
	case j.state == StateQueued:
		j.cancelReq = true
		j.finishLocked(StateCancelled, 0, context.Canceled)
	default: // running
		j.cancelReq = true
		j.cancel()
	}
	return j.statusLocked(), nil
}

// worker runs queued jobs until the queue is closed and drained.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runJob(j)
	}
}

// runJob executes one job, bracketing the cell events with
// SuiteStarted / SuiteFinished in the persisted log. The job's plan is
// compiled once here: a multi-grid plan on a manager with peers runs
// sharded (see shard.go), everything else on a fresh local engine
// sharing the manager's cache.
func (m *Manager) runJob(j *job) {
	j.mu.Lock()
	if j.state.Terminal() { // cancelled while queued
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	j.state = StateRunning
	j.started = time.Now() //axvet:ignore determinism -- job lifecycle metadata for status queries, not part of any result
	// Every run gets a fresh bounded span ring; the suite span below is
	// the root every stage (and every remote shard subtree) nests under.
	rec := obs.NewRecorder(obs.DefaultSpanCap)
	j.trace = rec
	j.mu.Unlock()
	defer cancel()
	ctx = obs.WithRecorder(ctx, rec)
	sctx, suiteSpan := obs.Start(ctx, "suite",
		obs.Attr{Key: "job", Value: j.id},
		obs.Attr{Key: "suite", Value: j.spec.Name})

	j.record(experiment.Event{
		Kind:  experiment.SuiteStarted,
		Cells: j.spec.CellCount(),
	})
	start := time.Now() //axvet:ignore determinism -- feeds the ElapsedMS metric only, which replay comparisons normalize
	var rep *experiment.Report
	_, planSpan := obs.Start(sctx, "plan")
	plan, err := j.spec.Plan()
	planSpan.End()
	if err == nil {
		if len(m.peers) > 0 && len(plan.Grids) > 1 {
			rep, err = m.runSharded(sctx, j, plan)
		} else {
			rep, err = m.newEngine(j.record).RunPlan(sctx, plan)
		}
	}

	// End the root span before the terminal state publishes, so anyone
	// who observed the job finish reads a complete trace.
	suiteSpan.End()

	j.mu.Lock()
	defer j.mu.Unlock()
	j.report = rep
	switch {
	case err == nil:
		j.finishLocked(StateDone, time.Since(start), nil)
	case j.cancelReq || errors.Is(err, context.Canceled):
		j.finishLocked(StateCancelled, time.Since(start), err)
	default:
		j.finishLocked(StateFailed, time.Since(start), err)
	}
}

// Close drains the service for shutdown: Submit starts refusing work,
// queued and running jobs keep going, and Close returns once every
// worker has exited. If ctx expires first, all remaining jobs are
// cancelled and Close still waits for the workers to unwind before
// returning ctx's error — the SIGTERM path of cmd/axserve.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return nil
	}
	m.closed = true
	close(m.queue)
	m.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
	}
	// Forced drain: cancel everything still moving, then wait for the
	// workers to observe it. Each job is marked shutdown first so its
	// terminal cancelled record reads as resumable — the restart
	// re-enqueues it rather than honoring a cancel nobody requested —
	// and so replayed logs always end in a terminal state (the engine's
	// unwind still appends the SuiteFinished event before Close returns).
	for _, st := range m.List() {
		if !st.State.Terminal() {
			if j, err := m.lookup(st.ID); err == nil {
				j.mu.Lock()
				j.shutdown = true
				j.mu.Unlock()
			}
			m.Cancel(st.ID)
		}
	}
	<-drained
	return ctx.Err()
}
