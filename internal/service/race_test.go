package service

import (
	"bytes"
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/store"
)

// TestRaceWALReplayConcurrentSubmit hammers the restart path the
// -race job previously never saw: a manager replaying a crashed job
// from its WAL while clients concurrently Submit the same spec
// (dedup onto the resuming job), Submit fresh work, poll Status, and
// subscribe to the event stream. Everything must converge on done
// jobs with the resumed report identical to an undisturbed run.
func TestRaceWALReplayConcurrentSubmit(t *testing.T) {
	wal := openWAL(t, t.TempDir())
	spec := tinySpec()
	id, err := JobID(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Crash fixture, exactly what a process killed mid-run leaves
	// behind: spec, non-terminal state, orphan events.
	canonical, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	w := newJobLog(wal, id)
	w.putSpec(canonical)
	w.putState(walState{State: StateQueued, Submitted: time.Now()})
	w.putEvent(experiment.Event{Kind: experiment.SuiteStarted, Job: id, Cells: spec.CellCount()})
	w.putEvent(experiment.Event{Kind: experiment.CellStarted, Job: id, Attack: "FGM-linf"})

	// Opening the manager starts the resume; every client below races
	// it from the first instant.
	m := newTestManager(t, Config{Workers: 2, Log: wal})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	other := tinySpec()
	other.Name = "service-test-race-b"

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Same spec as the resuming job: must dedup, never fork a
			// second run of the same ID.
			gotID, created, err := m.Submit(tinySpec())
			if err != nil {
				errs <- err
				return
			}
			if created {
				errs <- errDuplicateRun{gotID}
				return
			}
			if _, err := m.Wait(ctx, gotID); err != nil {
				errs <- err
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Fresh work interleaved with the replayed job.
		otherID, _, err := m.Submit(other)
		if err != nil {
			errs <- err
			return
		}
		if _, err := m.Wait(ctx, otherID); err != nil {
			errs <- err
		}
	}()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch, err := m.Events(ctx, id)
			if err != nil {
				errs <- err
				return
			}
			for range ch {
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			if st, err := m.Status(id); err == nil && st.State.Terminal() {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	rep, err := m.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	// The raced, resumed run still reproduces the undisturbed grid.
	ref := newTestManager(t, Config{Workers: 1})
	refID, _, err := ref.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	refRep, err := ref.Wait(ctx, refID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportCSV(t, rep), reportCSV(t, refRep)) {
		t.Fatal("raced WAL resume produced a different grid than an undisturbed run")
	}
}

type errDuplicateRun struct{ id string }

func (e errDuplicateRun) Error() string {
	return "submit during WAL replay created a second run of job " + e.id
}

// TestRaceShardedMergeConcurrentReaders covers the sharded executor's
// merge path under the race detector: while node A farms one grid to
// its peer and merges the shard reports, concurrent clients re-Submit
// (dedup), Wait, stream events, and poll Status. All waiters must see
// one finished job and byte-identical report CSVs.
func TestRaceShardedMergeConcurrentReaders(t *testing.T) {
	shared, err := store.Open(store.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { shared.Close() })

	peer := newTestManager(t, Config{Workers: 1, Cache: core.NewCache(core.CacheConfig{Disk: shared})})
	peerSrv := httptest.NewServer(NewHandler(peer))
	t.Cleanup(peerSrv.Close)

	m := newTestManager(t, Config{
		Workers: 1,
		Cache:   core.NewCache(core.CacheConfig{Disk: shared}),
		Peers:   []string{peerSrv.URL},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	id, _, err := m.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	csvs := make(chan []byte, 8)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			gotID, created, err := m.Submit(tinySpec())
			if err != nil {
				errs <- err
				return
			}
			if created || gotID != id {
				errs <- errDuplicateRun{gotID}
				return
			}
			rep, err := m.Wait(ctx, gotID)
			if err != nil {
				errs <- err
				return
			}
			var buf bytes.Buffer
			if err := rep.WriteCSV(&buf); err != nil {
				errs <- err
				return
			}
			csvs <- buf.Bytes()
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch, err := m.Events(ctx, id)
			if err != nil {
				errs <- err
				return
			}
			for range ch {
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			st, err := m.Status(id)
			if err != nil {
				errs <- err
				return
			}
			if st.State.Terminal() {
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
	}()
	wg.Wait()
	close(errs)
	close(csvs)
	for err := range errs {
		t.Fatal(err)
	}
	var first []byte
	for csv := range csvs {
		if first == nil {
			first = csv
			continue
		}
		if !bytes.Equal(first, csv) {
			t.Fatal("concurrent waiters saw different merged CSVs")
		}
	}
	if first == nil {
		t.Fatal("no waiter returned a report")
	}
	if m.Sched().Fallback.Load() != 0 {
		t.Fatal("healthy peer must not trigger fallback")
	}
}
