package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"time"

	"repro/internal/experiment"
	"repro/internal/obs"
)

// httpHist is the per-route HTTP handler latency family. Children are
// resolved once per registered pattern at handler construction (the
// mux only sets Request.Pattern on its own cloned request, so an outer
// middleware never sees it — wrapping per pattern sidesteps that).
var httpHist = obs.Default.HistogramVec("ax_http_request_duration_seconds",
	"HTTP handler latency by route pattern, in seconds.", "route")

// sseKeepalive is how often an idle /events stream emits a
// ": keepalive" SSE comment so proxies and load balancers don't sever
// long-quiet defense-job subscriptions. Package variable so the slow-
// subscriber test can tighten it.
var sseKeepalive = 15 * time.Second

// SubmitResponse is the body of POST /v1/suites.
type SubmitResponse struct {
	// Created reports whether this submission enqueued new work; false
	// means the spec deduplicated onto an existing job.
	Created bool      `json:"created"`
	Job     JobStatus `json:"job"`
}

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

// maxSpecBytes bounds POST bodies; the largest checked-in spec is
// under 1 KB, so 1 MB leaves room for any plausible suite.
const maxSpecBytes = 1 << 20

// NewHandler wraps the manager in the service's HTTP/JSON façade:
//
//	POST   /v1/suites               submit a Spec (201 created, 200 deduplicated)
//	GET    /v1/suites               list jobs
//	GET    /v1/suites/{id}          job status
//	GET    /v1/suites/{id}/report   finished report, ?format=json|csv
//	GET    /v1/suites/{id}/events   replay + live progress as SSE
//	GET    /v1/suites/{id}/trace    Chrome trace_event JSON of the job's spans
//	DELETE /v1/suites/{id}          cancel
//	GET    /healthz                 liveness
//	GET    /metrics                 Prometheus-style counters, gauges, and latency histograms
//	POST   /internal/v1/shard       node-to-node: run a subset of a suite's grids
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	// handle registers a route with its latency histogram child
	// pre-resolved, so the hot path is two clock reads and atomic adds.
	handle := func(pattern string, fn http.HandlerFunc) {
		h := httpHist.With(pattern)
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			defer h.Time()()
			fn(w, r)
		})
	}
	handle("POST /v1/suites", func(w http.ResponseWriter, r *http.Request) {
		body := http.MaxBytesReader(w, r.Body, maxSpecBytes)
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		spec := &experiment.Spec{}
		if err := dec.Decode(spec); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
			return
		}
		id, created, err := m.Submit(spec)
		if err != nil {
			writeError(w, submitStatus(err), err)
			return
		}
		st, err := m.Status(id)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Location", "/v1/suites/"+id)
		code := http.StatusOK
		if created {
			code = http.StatusCreated
		}
		writeJSON(w, code, SubmitResponse{Created: created, Job: st})
	})

	handle("GET /v1/suites", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.List())
	})

	handle("GET /v1/suites/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Status(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	handle("GET /v1/suites/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		format := r.URL.Query().Get("format")
		if format == "" {
			format = "json"
		}
		if format != "json" && format != "csv" {
			writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (want json or csv)", format))
			return
		}
		rep, err := m.Result(r.PathValue("id"))
		if err != nil {
			switch {
			case errors.Is(err, ErrNotFound):
				writeError(w, http.StatusNotFound, err)
			case errors.Is(err, ErrNotFinished):
				writeError(w, http.StatusConflict, err)
			default: // failed or cancelled: the result is permanently gone
				writeError(w, http.StatusGone, err)
			}
			return
		}
		if format == "csv" {
			w.Header().Set("Content-Type", "text/csv")
			if err := rep.WriteCSV(w); err != nil {
				return // headers are out; nothing recoverable
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		rep.WriteJSON(w)
	})

	handle("GET /v1/suites/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		events, err := m.Events(r.Context(), r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)
		rc := http.NewResponseController(w)
		rc.Flush()
		// Between events — long stretches on defense jobs whose cells
		// take minutes — emit SSE comments so idle proxies and load
		// balancers don't sever the stream. Comments are invisible to
		// event parsers (the Go client skips non-"data:" lines).
		keepalive := time.NewTicker(sseKeepalive)
		defer keepalive.Stop()
		for {
			select {
			case ev, ok := <-events:
				if !ok {
					return // terminal event delivered or subscriber gone
				}
				data, err := json.Marshal(ev)
				if err != nil {
					continue
				}
				if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
					return // subscriber went away; Events observes r.Context()
				}
				rc.Flush()
			case <-keepalive.C:
				if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
					return
				}
				rc.Flush()
			}
		}
	})

	handle("GET /v1/suites/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		spans, err := m.Trace(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		obs.WriteChromeTrace(w, spans)
	})

	handle("DELETE /v1/suites/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	// Internal node-to-node path of sharded execution: run a subset of
	// a suite's grids synchronously and return the partial report. Not
	// part of the public suite API — no job, no events, no dedup.
	handle("POST /internal/v1/shard", func(w http.ResponseWriter, r *http.Request) {
		body := http.MaxBytesReader(w, r.Body, maxSpecBytes)
		var req shardRequest
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding shard request: %w", err))
			return
		}
		spec, err := experiment.Parse(req.Spec)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// Resume the caller's trace when it sent one: spans recorded
		// while executing this shard join the originating suite's trace,
		// parented under the caller's shard-rpc span, and travel back in
		// the response envelope.
		ctx := r.Context()
		var rec *obs.Recorder
		if traceID, parentID := obs.Extract(r.Header); traceID != "" {
			rec = obs.ResumeRecorder(obs.DefaultSpanCap, traceID)
			ctx = obs.WithParent(ctx, rec, parentID)
		}
		rep, err := m.ExecuteShard(ctx, spec, req.Grids)
		if err != nil {
			switch {
			case errors.Is(err, ErrClosed):
				writeError(w, http.StatusServiceUnavailable, err)
			default:
				writeError(w, http.StatusInternalServerError, err)
			}
			return
		}
		var repJSON bytes.Buffer
		if err := rep.WriteJSON(&repJSON); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		resp := shardResponse{Report: repJSON.Bytes()}
		if rec != nil {
			resp.Spans = rec.Spans()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})

	handle("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "jobs": len(m.List())})
	})

	handle("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		writeMetrics(w, m)
	})

	return mux
}

func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default: // spec validation
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

// writeMetrics renders the shared cache's counters (the
// core.Cache.Stats surface) and per-state job counts in the Prometheus
// text format, so any scraper can watch dedup effectiveness and queue
// health without a client library.
func writeMetrics(w http.ResponseWriter, m *Manager) {
	st := m.Cache().Stats()
	counters := []struct {
		name, help string
		value      int64
	}{
		{"axserve_cache_craft_hits_total", "Crafted-batch cache hits.", st.CraftHits},
		{"axserve_cache_craft_misses_total", "Crafted-batch cache misses.", st.CraftMisses},
		{"axserve_cache_pred_hits_total", "Victim-prediction cache hits.", st.PredHits},
		{"axserve_cache_pred_misses_total", "Victim-prediction cache misses.", st.PredMisses},
		{"axserve_cache_craft_evictions_total", "Crafted-batch epoch evictions.", st.CraftEvictions},
		{"axserve_cache_pred_evictions_total", "Prediction epoch evictions.", st.PredEvictions},
		{"axserve_cache_disk_craft_hits_total", "Crafted batches served from the persistent tier.", st.DiskCraftHits},
		{"axserve_cache_disk_craft_misses_total", "Crafted-batch probes the persistent tier missed.", st.DiskCraftMisses},
		{"axserve_cache_disk_pred_hits_total", "Predictions served from the persistent tier.", st.DiskPredHits},
		{"axserve_cache_disk_pred_misses_total", "Prediction probes the persistent tier missed.", st.DiskPredMisses},
		{"axserve_cache_disk_errors_total", "Persistent-tier failures degraded to recomputes.", st.DiskErrors},
		{"axserve_store_admission_rejects_total", "Cold-key lookups rejected by the bloom filter without a disk probe.", st.DiskAdmissionRejects},
		{"axserve_store_gc_evicted_records_total", "Records dropped by size-bounded segment GC.", st.DiskGCEvictions},
		{"axserve_store_corrupt_records_total", "Corrupt records skipped by the store.", st.DiskCorruptRecords},
		{"axserve_sched_cells_local_total", "Suite cells executed by this node's local executor.", m.Sched().Local.Load()},
		{"axserve_sched_cells_remote_total", "Suite cells peer nodes executed for this node's sharded jobs.", m.Sched().Remote.Load()},
		{"axserve_sched_cells_fallback_total", "Suite cells re-executed locally after a peer shard failed.", m.Sched().Fallback.Load()},
	}
	for _, c := range counters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.value)
	}
	gauges := []struct {
		name, help string
		value      int64
	}{
		{"axserve_cache_craft_entries", "Crafted batches currently retained.", st.CraftEntries},
		{"axserve_cache_pred_entries", "Prediction memos currently retained.", st.PredEntries},
		{"axserve_cache_craft_bytes", "Bytes retained by crafted batches.", st.CraftBytes},
		{"axserve_store_keys", "Live keys in the persistent cache store.", st.DiskKeys},
		{"axserve_store_bytes", "Bytes on disk in the persistent cache store.", st.DiskBytes},
		{"axserve_sched_ready_cells", "Cell-graph nodes ready to run in the local executor right now.", m.Sched().Ready.Load()},
	}
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, g.help, g.name, g.name, g.value)
	}
	byState := map[State]int{}
	for _, js := range m.List() {
		byState[js.State]++
	}
	fmt.Fprintf(w, "# HELP axserve_jobs Jobs by state.\n# TYPE axserve_jobs gauge\n")
	for _, s := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		fmt.Fprintf(w, "axserve_jobs{state=%q} %d\n", s, byState[s])
	}
	writeBuildInfo(w)
	// Stage latency histograms (cell/craft/predict/store/shard-RPC/HTTP)
	// registered across the tree in the process-wide obs registry.
	obs.Default.WriteProm(w)
}

// writeBuildInfo emits the axserve_build_info gauge: a constant-1
// metric whose labels carry the Go toolchain and VCS revision, so
// deployed-version skew across shard peers is visible by comparing
// scrapes.
func writeBuildInfo(w io.Writer) {
	goversion, revision := "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.GoVersion != "" {
			goversion = bi.GoVersion
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				revision = s.Value
			}
		}
	}
	fmt.Fprintf(w, "# HELP axserve_build_info Build metadata; the value is always 1.\n# TYPE axserve_build_info gauge\n")
	fmt.Fprintf(w, "axserve_build_info{goversion=\"%s\",revision=\"%s\"} 1\n",
		obs.EscapeLabel(goversion), obs.EscapeLabel(revision))
}
