package service

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/experiment"
	"repro/internal/models"
	"repro/internal/modelzoo"
	"repro/internal/train"
)

// The service tests drive real engine runs over a small purpose-
// trained fixture model, mirroring the experiment engine's test setup
// so job results can be checked against direct Engine.Run output.
var (
	fixtureOnce sync.Once
	fixtureZoo  map[string]*modelzoo.Model
	// fixtureMu guards fixtureZoo across every source closure — the
	// map is package-shared, so the lock must be too.
	fixtureMu sync.Mutex
)

func fixtureSource(t *testing.T) func(context.Context, string) (*modelzoo.Model, error) {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureZoo = map[string]*modelzoo.Model{}
		tr := dataset.Digits(800, 171)
		test := dataset.Digits(150, 191)
		net := models.FFNN(28*28, 10, 173)
		net.Name = "tiny-svc"
		train.Fit(net, tr, train.Config{Epochs: 2, Batch: 32, LR: 0.05, Momentum: 0.9, Seed: 3})
		fixtureZoo["tiny-svc"] = &modelzoo.Model{Net: net, Train: tr, Test: test, CleanAcc: 100 * train.Accuracy(net, test, 0)}
	})
	return func(ctx context.Context, name string) (*modelzoo.Model, error) {
		fixtureMu.Lock()
		defer fixtureMu.Unlock()
		if m, ok := fixtureZoo[name]; ok {
			return m, nil
		}
		// Defended jobs harden fixture models on demand, the way the
		// real zoo's defense deriver would.
		if defense.IsHardenedID(name) {
			base, cfg, err := defense.ParseHardenedID(name)
			if err != nil {
				return nil, err
			}
			bm, ok := fixtureZoo[base]
			if !ok {
				return nil, fmt.Errorf("fixture zoo: unknown base model %q", base)
			}
			cfg.Workers = 1
			m, err := defense.Harden(ctx, bm, cfg)
			if err != nil {
				return nil, err
			}
			fixtureZoo[name] = m
			return m, nil
		}
		return nil, fmt.Errorf("fixture zoo: unknown model %q", name)
	}
}

func tinySpec() *experiment.Spec {
	return &experiment.Spec{
		Name:        "service-test",
		Model:       "tiny-svc",
		Multipliers: []string{"mul8u_1JFF", "mul8u_JV3"},
		Attacks:     []string{"FGM-linf", "PGD-linf"},
		Eps:         []float64{0, 0.1},
		Samples:     50,
		Seed:        5,
	}
}

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.ModelSource == nil {
		cfg.ModelSource = fixtureSource(t)
	}
	m := NewManager(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	return m
}

func TestJobIDCanonical(t *testing.T) {
	a := tinySpec()
	b := tinySpec()
	ida, err := JobID(a)
	if err != nil {
		t.Fatal(err)
	}
	idb, err := JobID(b)
	if err != nil {
		t.Fatal(err)
	}
	if ida != idb {
		t.Fatalf("identical specs hashed differently: %s vs %s", ida, idb)
	}
	// Formatting must not matter: a spec parsed from differently laid
	// out JSON hashes identically.
	compact, err := experiment.Parse([]byte(`{"name":"service-test","model":"tiny-svc",` +
		`"multipliers":["mul8u_1JFF","mul8u_JV3"],"attacks":["FGM-linf","PGD-linf"],` +
		`"eps":[0,0.1],"samples":50,"seed":5}`))
	if err != nil {
		t.Fatal(err)
	}
	if idc, _ := JobID(compact); idc != ida {
		t.Fatalf("JSON formatting changed the job ID: %s vs %s", idc, ida)
	}
	// Workers/Batch tune execution, never results: they must not split
	// the dedup key.
	b.Workers, b.Batch = 4, 16
	if idw, _ := JobID(b); idw != ida {
		t.Fatalf("parallelism settings changed the job ID: %s vs %s", idw, ida)
	}
	b.Samples = 8
	if idm, _ := JobID(b); idm == ida {
		t.Fatal("different suites must not share a job ID")
	}
	if _, err := JobID(&experiment.Spec{}); err == nil {
		t.Fatal("invalid specs must not hash")
	}
}

// TestSubmitDedupeAndResult is the acceptance criterion: submitting
// the same spec twice returns the same job ID, the suite is computed
// once, and later submissions are served from the finished job.
func TestSubmitDedupeAndResult(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	spec := tinySpec()
	id1, created, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("first submission must create the job")
	}
	// A second submission — different *Spec value, same content — must
	// dedupe whether the job is queued, running, or done.
	id2, created, err := m.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if created || id2 != id1 {
		t.Fatalf("resubmission = (%s, created=%v), want (%s, created=false)", id2, created, id1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := m.Wait(ctx, id1)
	if err != nil {
		t.Fatal(err)
	}

	// Submitting after completion still dedupes and recomputes nothing:
	// same job, result immediately available, exactly one run in the
	// replayable log.
	id3, created, err := m.Submit(tinySpec())
	if err != nil || created || id3 != id1 {
		t.Fatalf("post-completion submission = (%s, %v, %v)", id3, created, err)
	}
	rep2, err := m.Result(id1)
	if err != nil {
		t.Fatal(err)
	}
	if rep2 != rep {
		t.Fatal("resubmission must be served from the finished job's report")
	}
	starts := 0
	for _, ev := range collectEvents(t, m, id1) {
		if ev.Kind == experiment.SuiteStarted {
			starts++
		}
	}
	if starts != 1 {
		t.Fatalf("deduplicated spec ran %d times, want 1", starts)
	}

	// The numbers match a direct engine run of the same spec.
	ref, err := experiment.New(experiment.WithModelSource(fixtureSource(t))).Run(context.Background(), tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Grids {
		if !reflect.DeepEqual(rep.Grids[i].Acc, ref.Grids[i].Acc) {
			t.Fatalf("service job diverged from direct engine run on %s", ref.Grids[i].Attack)
		}
	}

	st, err := m.Status(id1)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.CellsDone != 4 || st.Cells != 4 || st.Suite != "service-test" {
		t.Fatalf("finished status = %+v", st)
	}
	if st.Started.IsZero() || st.Finished.IsZero() || st.Submitted.IsZero() {
		t.Fatalf("finished status missing timestamps: %+v", st)
	}
}

// collectEvents drains a full replay subscription on a terminal job.
func collectEvents(t *testing.T, m *Manager, id string) []experiment.Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ch, err := m.Events(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	var out []experiment.Event
	for ev := range ch {
		out = append(out, ev)
	}
	return out
}

// TestEventsReplayableByLateSubscribers pins the persisted-log
// contract: a subscriber arriving after the job finished receives the
// complete, attributable event history and then the channel closes.
func TestEventsReplayableByLateSubscribers(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	id, _, err := m.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := m.Wait(ctx, id); err != nil {
		t.Fatal(err)
	}

	evs := collectEvents(t, m, id)
	if len(evs) == 0 {
		t.Fatal("late subscriber got no replay")
	}
	if evs[0].Kind != experiment.SuiteStarted {
		t.Fatalf("replay must open with suite-started, got %s", evs[0].Kind)
	}
	last := evs[len(evs)-1]
	if last.Kind != experiment.SuiteFinished || last.Err != "" {
		t.Fatalf("replay must close with a clean suite-finished, got %+v", last)
	}
	cellsFinished := 0
	for _, ev := range evs {
		if ev.Job != id {
			t.Fatalf("event not tagged with the job ID: %+v", ev)
		}
		if ev.Suite != "service-test" {
			t.Fatalf("event not tagged with the suite name: %+v", ev)
		}
		if ev.Time.IsZero() {
			t.Fatalf("event missing timestamp: %+v", ev)
		}
		if ev.Kind == experiment.CellFinished {
			cellsFinished++
		}
	}
	if cellsFinished != 4 {
		t.Fatalf("replay carries %d cell-finished events, want 4", cellsFinished)
	}
	// Replay is repeatable: a second late subscriber sees the same log.
	if evs2 := collectEvents(t, m, id); len(evs2) != len(evs) {
		t.Fatalf("second replay has %d events, first had %d", len(evs2), len(evs))
	}
}

// gatedSource blocks model resolution until the gate opens, giving
// tests deterministic control over when a running job can proceed.
func gatedSource(t *testing.T, gate <-chan struct{}) func(context.Context, string) (*modelzoo.Model, error) {
	src := fixtureSource(t)
	return func(ctx context.Context, name string) (*modelzoo.Model, error) {
		<-gate
		return src(ctx, name)
	}
}

func waitState(t *testing.T, m *Manager, id string, want State) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := m.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, _ := m.Status(id)
	t.Fatalf("job %s never reached %s (now %s)", id, want, st.State)
	return JobStatus{}
}

// TestCancelQueuedAndRunning drives both cancellation paths with a
// single worker: job B is cancelled while queued behind blocked job A,
// then A is cancelled mid-run.
func TestCancelQueuedAndRunning(t *testing.T) {
	gate := make(chan struct{})
	m := newTestManager(t, Config{Workers: 1, ModelSource: gatedSource(t, gate)})

	specA := tinySpec()
	idA, _, err := m.Submit(specA)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, idA, StateRunning)

	specB := tinySpec()
	specB.Seed = 99 // distinct content, distinct job
	idB, _, err := m.Submit(specB)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Cancel(idB)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("queued job state after cancel = %s, want cancelled", st.State)
	}
	if _, err := m.Result(idB); err == nil {
		t.Fatal("cancelled job must not expose a report")
	}
	evs := collectEvents(t, m, idB)
	if len(evs) != 1 || evs[0].Kind != experiment.SuiteFinished || evs[0].Err == "" {
		t.Fatalf("queue-cancelled job log = %+v, want a single failed suite-finished", evs)
	}

	// Cancel the running job, then unblock it so Engine.Run observes
	// the dead context.
	if _, err := m.Cancel(idA); err != nil {
		t.Fatal(err)
	}
	close(gate)
	waitState(t, m, idA, StateCancelled)
	if _, err := m.Result(idA); !errors.Is(err, context.Canceled) {
		t.Fatalf("running-cancelled job Result err = %v, want context.Canceled", err)
	}
	// Idempotent on terminal jobs.
	if st, err := m.Cancel(idA); err != nil || st.State != StateCancelled {
		t.Fatalf("re-cancel = (%+v, %v)", st, err)
	}
}

func TestQueueBoundsAndUnknownJobs(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 1, ModelSource: gatedSource(t, gate)})
	a := tinySpec()
	idA, _, err := m.Submit(a)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, idA, StateRunning) // worker holds A, queue is empty
	b := tinySpec()
	b.Seed = 91
	if _, _, err := m.Submit(b); err != nil {
		t.Fatal(err)
	}
	c := tinySpec()
	c.Seed = 92
	if _, _, err := m.Submit(c); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull queue Submit err = %v, want ErrQueueFull", err)
	}
	// Unknown IDs are ErrNotFound everywhere.
	if _, err := m.Status("feedfeedfeedfeed"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Status err = %v", err)
	}
	if _, err := m.Result("feedfeedfeedfeed"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Result err = %v", err)
	}
	if _, err := m.Events(context.Background(), "feedfeedfeedfeed"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Events err = %v", err)
	}
	if _, err := m.Cancel("feedfeedfeedfeed"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Cancel err = %v", err)
	}
	if _, err := m.Wait(context.Background(), "feedfeedfeedfeed"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Wait err = %v", err)
	}
}

func TestFailedJobState(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	spec := tinySpec()
	spec.Model = "no-such-model"
	id, _, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, m, id, StateFailed)
	if st.Error == "" {
		t.Fatal("failed job must carry its error")
	}
	if _, err := m.Result(id); err == nil {
		t.Fatal("failed job must not expose a report")
	}
	evs := collectEvents(t, m, id)
	if last := evs[len(evs)-1]; last.Kind != experiment.SuiteFinished || last.Err == "" {
		t.Fatalf("failed job log must end with a failed suite-finished, got %+v", last)
	}
}

// TestResubmitRetriesTerminalFailures: failed and cancelled jobs
// must not poison their spec hash forever — resubmitting retries them
// under the same ID, while done jobs keep deduplicating.
func TestResubmitRetriesTerminalFailures(t *testing.T) {
	var calls int
	var mu sync.Mutex
	src := fixtureSource(t)
	flaky := func(ctx context.Context, name string) (*modelzoo.Model, error) {
		mu.Lock()
		calls++
		first := calls == 1
		mu.Unlock()
		if first {
			return nil, fmt.Errorf("model store briefly unavailable")
		}
		return src(ctx, name)
	}
	m := newTestManager(t, Config{Workers: 1, ModelSource: flaky})
	id, created, err := m.Submit(tinySpec())
	if err != nil || !created {
		t.Fatalf("Submit = (%s, %v, %v)", id, created, err)
	}
	waitState(t, m, id, StateFailed)

	id2, created, err := m.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if !created || id2 != id {
		t.Fatalf("resubmit of failed job = (%s, created=%v), want (%s, created=true)", id2, created, id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := m.Wait(ctx, id); err != nil {
		t.Fatalf("retried job did not recover: %v", err)
	}
	// One retained job per ID: the retry replaced the failed record.
	if jobs := m.List(); len(jobs) != 1 || jobs[0].State != StateDone {
		t.Fatalf("job table after retry = %+v", jobs)
	}
	// Done jobs still dedupe.
	if _, created, _ := m.Submit(tinySpec()); created {
		t.Fatal("done job must keep deduplicating")
	}

	// Cancelled jobs retry too.
	spec := tinySpec()
	spec.Seed = 77
	idc, _, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	m.Cancel(idc)
	waitState(t, m, idc, StateCancelled)
	if _, created, err := m.Submit(spec); err != nil || !created {
		t.Fatalf("resubmit of cancelled job = (created=%v, %v), want created=true", created, err)
	}
	if _, err := m.Wait(ctx, idc); err != nil {
		t.Fatalf("retried cancelled job: %v", err)
	}
}

// TestJobRetentionBound: the manager must not grow without bound — a
// long-lived server evicts its oldest finished jobs (with their logs
// and reports) past MaxJobs, never its active ones.
func TestJobRetentionBound(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, MaxJobs: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var ids []string
	for seed := int64(1); seed <= 3; seed++ {
		spec := tinySpec()
		spec.Seed = seed
		id, _, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Wait(ctx, id); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	jobs := m.List()
	if len(jobs) != 2 {
		t.Fatalf("retained %d jobs over MaxJobs=2, want 2: %+v", len(jobs), jobs)
	}
	if _, err := m.Status(ids[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("oldest finished job must be evicted, Status err = %v", err)
	}
	if jobs[0].ID != ids[1] || jobs[1].ID != ids[2] {
		t.Fatalf("eviction broke submission order: %+v", jobs)
	}
	// The evicted spec recomputes under the same content-derived ID —
	// the dedup window is the retention window.
	spec := tinySpec()
	spec.Seed = 1
	id, created, err := m.Submit(spec)
	if err != nil || !created || id != ids[0] {
		t.Fatalf("resubmit of evicted spec = (%s, %v, %v), want (%s, true, nil)", id, created, err, ids[0])
	}
}

// TestSharedCacheAcrossJobs pins the service's scaling story: two
// distinct suites overlapping on cells (the clean row; identical
// attack cells) share one cache, observable through Cache().Stats().
func TestSharedCacheAcrossJobs(t *testing.T) {
	cache := core.NewCache(core.CacheConfig{})
	m := newTestManager(t, Config{Workers: 1, Cache: cache})
	a := tinySpec()
	id1, _, err := m.Submit(a)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := m.Wait(ctx, id1); err != nil {
		t.Fatal(err)
	}
	missesAfterFirst := cache.Stats().CraftMisses

	// Same cells, different attack order: a fresh job, but every cell
	// replays from the shared cache.
	b := tinySpec()
	b.Attacks = []string{"PGD-linf", "FGM-linf"}
	id2, created, err := m.Submit(b)
	if err != nil || !created || id2 == id1 {
		t.Fatalf("reordered suite must be a new job: (%s, %v, %v)", id2, created, err)
	}
	if _, err := m.Wait(ctx, id2); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.CraftMisses != missesAfterFirst {
		t.Fatalf("second job re-crafted cells: %d misses, want %d", st.CraftMisses, missesAfterFirst)
	}
	if m.Cache() != cache {
		t.Fatal("manager must expose the injected cache")
	}
}

// TestCloseDrains covers both shutdown modes: a patient Close waits
// for the queue to drain; an expired Close cancels what remains.
func TestCloseDrains(t *testing.T) {
	src := fixtureSource(t)
	m := NewManager(Config{Workers: 1, ModelSource: src})
	id, _, err := m.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatalf("patient close = %v", err)
	}
	if st, _ := m.Status(id); st.State != StateDone {
		t.Fatalf("drained job state = %s, want done", st.State)
	}
	if _, _, err := m.Submit(tinySpec()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after close err = %v, want ErrClosed", err)
	}

	gate := make(chan struct{})
	m2 := NewManager(Config{Workers: 1, ModelSource: gatedSource(t, gate)})
	id2, _, err := m2.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m2, id2, StateRunning)
	expired, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	closed := make(chan error, 1)
	go func() { closed <- m2.Close(expired) }()
	// The forced drain cancels the stuck job's context; the engine can
	// then unwind once the gate opens.
	time.Sleep(100 * time.Millisecond)
	close(gate)
	if err := <-closed; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced close = %v, want deadline exceeded", err)
	}
	if st, _ := m2.Status(id2); st.State != StateCancelled {
		t.Fatalf("force-drained job state = %s, want cancelled", st.State)
	}
}

// TestDefendedSuiteJob: a spec with a defense block runs end to end
// through the manager — hardened-model training happens inside the
// job, the report carries the defense victims and the adaptive EOT
// grid, progress is sized by Spec.CellCount, and the defended spec
// never dedups onto its undefended twin.
func TestDefendedSuiteJob(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	plain := tinySpec()
	defended := tinySpec()
	defended.ApproxDense = true
	defended.Defense = &experiment.DefenseSpec{
		Kind:       "advtrain,ensemble",
		Attack:     "PGD-linf",
		Eps:        0.1,
		Ratio:      0.3,
		Epochs:     1,
		Pool:       []string{"mul8u_1JFF", "mul8u_JV3"},
		EOTSamples: 2,
	}
	idPlain, err := JobID(plain)
	if err != nil {
		t.Fatal(err)
	}
	idDef, err := JobID(defended)
	if err != nil {
		t.Fatal(err)
	}
	if idPlain == idDef {
		t.Fatal("defended and undefended specs hash to one job ID")
	}

	id, created, err := m.Submit(defended)
	if err != nil || !created {
		t.Fatalf("Submit = (%v, %v, %v)", id, created, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	rep, err := m.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Grids) != len(defended.Attacks)+1 {
		t.Fatalf("defended job produced %d grids, want %d", len(rep.Grids), len(defended.Attacks)+1)
	}
	if _, ok := rep.Grid("EOT-PGD-linf"); !ok {
		t.Fatal("defended job report is missing the EOT grid")
	}
	g := rep.Grids[0]
	for _, name := range []string{defended.Defense.AdvTrainVictimName(), "ensemble[2]"} {
		if _, ok := g.Column(name); !ok {
			t.Fatalf("defended job report is missing victim %q (victims %v)", name, g.Victims)
		}
	}
	st, err := m.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells != defended.CellCount() || st.CellsDone != defended.CellCount() {
		t.Fatalf("job progress %d/%d, want %d/%d", st.CellsDone, st.Cells, defended.CellCount(), defended.CellCount())
	}
}
