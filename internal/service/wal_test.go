package service

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/store"
)

func openWAL(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func reportJSON(t *testing.T, rep *experiment.Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func reportCSV(t *testing.T, rep *experiment.Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWALRestoreDoneJob pins the re-serve path: a manager over a WAL
// holding a finished job restarts with the job done, its event log
// replayable, and its report byte-identical to the original — with no
// recompute (the restored job never touches the queue).
func TestWALRestoreDoneJob(t *testing.T) {
	dir := t.TempDir()
	wal := openWAL(t, dir)

	m1 := newTestManager(t, Config{Workers: 1, Log: wal})
	id, created, err := m1.Submit(tinySpec())
	if err != nil || !created {
		t.Fatalf("submit: created=%v err=%v", created, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep1, err := m1.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	ev1 := collectEvents(t, m1, id)
	if err := m1.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Restart over the same WAL.
	m2 := newTestManager(t, Config{Workers: 1, Log: wal})
	st, err := m2.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("restored job state %s, want done", st.State)
	}
	if st.CellsDone != tinySpec().CellCount() {
		t.Fatalf("restored cells_done %d, want %d", st.CellsDone, tinySpec().CellCount())
	}
	rep2, err := m2.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportJSON(t, rep1), reportJSON(t, rep2)) {
		t.Fatal("restored report is not byte-identical to the original")
	}
	ev2 := collectEvents(t, m2, id)
	if len(ev1) != len(ev2) {
		t.Fatalf("restored log has %d events, original had %d", len(ev2), len(ev1))
	}
	last := ev2[len(ev2)-1]
	if last.Kind != experiment.SuiteFinished || last.Err != "" {
		t.Fatalf("restored log does not end in a clean terminal event: %+v", last)
	}
	// Resubmitting the same spec after restart is a dedup, not a re-run.
	if _, created, err := m2.Submit(tinySpec()); err != nil || created {
		t.Fatalf("resubmit after restore: created=%v err=%v", created, err)
	}
}

// TestWALResumesCrashedJob pins the crash path: a WAL whose last state
// record is non-terminal (the process died mid-run, no chance to write
// anything else) re-enqueues the job on startup under the same ID, and
// the resumed run finishes with a report identical to an undisturbed
// run.
func TestWALResumesCrashedJob(t *testing.T) {
	dir := t.TempDir()
	wal := openWAL(t, dir)
	spec := tinySpec()
	id, err := JobID(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Hand-craft the crash fixture: spec + queued state + a few orphan
	// events, exactly what a process killed mid-run leaves behind.
	canonical, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	w := newJobLog(wal, id)
	w.putSpec(canonical)
	w.putState(walState{State: StateQueued, Submitted: time.Now()})
	w.putEvent(experiment.Event{Kind: experiment.SuiteStarted, Job: id, Cells: spec.CellCount()})
	w.putEvent(experiment.Event{Kind: experiment.CellStarted, Job: id, Attack: "FGM-linf"})

	m := newTestManager(t, Config{Workers: 1, Log: wal})
	st, err := m.Status(id)
	if err != nil {
		t.Fatalf("crashed job not resumed: %v", err)
	}
	if st.State.Terminal() {
		t.Fatalf("resumed job already terminal: %s", st.State)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := m.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the same spec run on a fresh memory-only manager.
	ref := newTestManager(t, Config{Workers: 1})
	refID, _, err := ref.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	refRep, err := ref.Wait(ctx, refID)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-run comparison goes through the CSV (the accuracy grid):
	// the JSON embeds per-cell wall-clock timings, which legitimately
	// differ between runs. The numbers the paper cares about must not.
	if !bytes.Equal(reportCSV(t, rep), reportCSV(t, refRep)) {
		t.Fatal("resumed run's grid differs from an undisturbed run")
	}

	// The resumed generation owns the log: no orphan events from the
	// crashed attempt may leak into the replayed history.
	evs := collectEvents(t, m, id)
	if evs[0].Kind != experiment.SuiteStarted {
		t.Fatalf("log starts with %v, want SuiteStarted", evs[0].Kind)
	}
	if last := evs[len(evs)-1]; last.Kind != experiment.SuiteFinished {
		t.Fatalf("log ends with %v, want SuiteFinished", last.Kind)
	}
}

// TestWALForcedCloseMarksResumable pins satellite semantics for the
// SIGTERM path: a Close whose drain deadline expires force-cancels the
// running job, the persisted log still ends in a terminal cancelled
// event, and the restarted manager re-enqueues the job (the cancel was
// the shutdown's, not the owner's) and runs it to done.
func TestWALForcedCloseMarksResumable(t *testing.T) {
	dir := t.TempDir()
	wal := openWAL(t, dir)

	m1 := NewManager(Config{Workers: 1, Log: wal, ModelSource: fixtureSource(t)})
	spec := tinySpec()
	spec.Samples = 120 // enough work that the drain deadline hits mid-run
	id, _, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the job to actually start before slamming the door.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := m1.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	err = m1.Close(ctx)
	cancel()
	if err == nil {
		t.Skip("job finished inside the drain window; forced path not exercised")
	}
	st, err := m1.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("forced close left job %s, want cancelled", st.State)
	}
	// Satellite: the persisted log must end in a terminal event.
	jobs := replayWAL(wal)
	if len(jobs) != 1 {
		t.Fatalf("replay found %d jobs, want 1", len(jobs))
	}
	wst := jobs[0].state
	if wst.State != StateCancelled || !wst.Resumable {
		t.Fatalf("persisted state %+v, want resumable cancelled", wst)
	}
	gen := wst.Gen
	if len(jobs[0].events[gen]) == 0 {
		t.Fatal("no events persisted for the cancelled attempt")
	}
	maxSeq := -1
	for seq := range jobs[0].events[gen] {
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	var last experiment.Event
	if err := last.UnmarshalJSON(jobs[0].events[gen][maxSeq]); err != nil {
		t.Fatal(err)
	}
	if last.Kind != experiment.SuiteFinished {
		t.Fatalf("persisted log ends with %v, want terminal SuiteFinished", last.Kind)
	}

	// Restart: the shutdown-cancelled job resumes and completes.
	m2 := newTestManager(t, Config{Workers: 1, Log: wal})
	st, err = m2.Status(id)
	if err != nil {
		t.Fatalf("resumable job not re-enqueued: %v", err)
	}
	if st.State.Terminal() {
		t.Fatalf("resumable job restored terminal: %s", st.State)
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer wcancel()
	if _, err := m2.Wait(wctx, id); err != nil {
		t.Fatal(err)
	}
}

// TestWALUserCancelStaysCancelled pins the counterpart: a cancel the
// owner asked for is honored across restarts — no surprise resurrection.
func TestWALUserCancelStaysCancelled(t *testing.T) {
	dir := t.TempDir()
	wal := openWAL(t, dir)

	m1 := newTestManager(t, Config{Workers: 1, Log: wal})
	// Park a decoy first so the real job sits in the queue long enough
	// to cancel deterministically.
	decoy := tinySpec()
	decoy.Name = "decoy"
	decoy.Samples = 60
	if _, _, err := m1.Submit(decoy); err != nil {
		t.Fatal(err)
	}
	id, _, err := m1.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Cancel(id); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := m1.Close(ctx); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, Config{Workers: 1, Log: wal})
	st, err := m2.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("user-cancelled job restored as %s, want cancelled", st.State)
	}
}

// TestWALQueueFullTombstones pins the rejected-submission path: the
// journal is written before the queue admits the job (the worker logs
// through it the instant the job is published), so a refused
// submission must be tombstoned — a restart may list it as cancelled,
// but never re-enqueue work the caller was told didn't get in.
func TestWALQueueFullTombstones(t *testing.T) {
	dir := t.TempDir()
	wal := openWAL(t, dir)

	gate := make(chan struct{})
	defer close(gate)
	m1 := newTestManager(t, Config{Workers: 1, QueueDepth: 1, Log: wal, ModelSource: gatedSource(t, gate)})
	// Fill the single worker and the single queue slot.
	blocker := tinySpec()
	blocker.Name = "blocker"
	blockerID, _, err := m1.Submit(blocker)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := m1.Status(blockerID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	parked := tinySpec()
	parked.Name = "parked"
	if _, _, err := m1.Submit(parked); err != nil {
		t.Fatal(err)
	}
	refused := tinySpec()
	refused.Name = "refused"
	id, _, err := m1.Submit(refused)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit = %v, want ErrQueueFull", err)
	}
	if id, err = JobID(refused); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, Config{Workers: 1, Log: wal, ModelSource: gatedSource(t, gate)})
	st, err := m2.Status(id)
	if err != nil {
		t.Fatalf("tombstoned job not replayed: %v", err)
	}
	if st.State != StateCancelled {
		t.Fatalf("refused submission restored as %s, want cancelled (never re-run)", st.State)
	}
}
