package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/store"
)

// TestShardedTraceNestsRemoteSpans is the tentpole's tracing
// acceptance criterion: a two-node sharded run yields ONE trace on
// the submitting node in which the peer's spans — imported over the
// shard RPC's span envelope — nest under the local shard-rpc span,
// which itself nests under the suite root. The trace endpoint then
// serves that tree as Chrome trace_event JSON with the remote node on
// its own pid.
func TestShardedTraceNestsRemoteSpans(t *testing.T) {
	shared, err := store.Open(store.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { shared.Close() })

	peer := newTestManager(t, Config{Workers: 1, Cache: core.NewCache(core.CacheConfig{Disk: shared})})
	peerSrv := httptest.NewServer(NewHandler(peer))
	t.Cleanup(peerSrv.Close)

	m := newTestManager(t, Config{
		Workers: 1,
		Cache:   core.NewCache(core.CacheConfig{Disk: shared}),
		Peers:   []string{peerSrv.URL},
	})
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(srv.Close)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	id, _, err := m.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(ctx, id); err != nil {
		t.Fatal(err)
	}

	spans, err := m.Trace(id)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]obs.Span{}
	byName := map[string][]obs.Span{}
	for _, sp := range spans {
		byID[sp.ID] = sp
		byName[sp.Name] = append(byName[sp.Name], sp)
	}
	if len(byName["suite"]) != 1 {
		t.Fatalf("trace has %d suite spans, want exactly 1", len(byName["suite"]))
	}
	suite := byName["suite"][0]
	if suite.Parent != "" {
		t.Fatalf("suite span has parent %q, want root", suite.Parent)
	}
	// One trace ID across local and imported spans.
	for _, sp := range spans {
		if sp.Trace != suite.Trace {
			t.Fatalf("span %s/%s carries trace %q, suite has %q", sp.Name, sp.ID, sp.Trace, suite.Trace)
		}
	}

	// The 2-grid suite shipped one grid to the peer: exactly one
	// shard-rpc span, parented directly under the suite root.
	if len(byName["shard-rpc"]) != 1 {
		t.Fatalf("trace has %d shard-rpc spans, want 1", len(byName["shard-rpc"]))
	}
	rpc := byName["shard-rpc"][0]
	if rpc.Parent != suite.ID {
		t.Fatalf("shard-rpc parent = %q, want suite %q", rpc.Parent, suite.ID)
	}
	if rpc.Node != "" {
		t.Fatalf("shard-rpc is local work, got node %q", rpc.Node)
	}
	if len(byName["merge"]) != 1 || byName["merge"][0].Parent != suite.ID {
		t.Fatalf("merge span missing or misparented: %+v", byName["merge"])
	}

	// Remote spans came back stamped with the peer's base URL, include
	// the peer's cell spans, and every one of them reaches the local
	// shard-rpc span through its parent chain.
	var remote, remoteCells int
	for _, sp := range spans {
		if sp.Node == "" {
			continue
		}
		if sp.Node != peerSrv.URL {
			t.Fatalf("imported span %s has node %q, want peer %q", sp.Name, sp.Node, peerSrv.URL)
		}
		remote++
		if sp.Name == "cell" {
			remoteCells++
		}
		cur, hops := sp, 0
		for cur.ID != rpc.ID {
			p, ok := byID[cur.Parent]
			if !ok {
				t.Fatalf("remote span %s/%s has dangling ancestor %q", sp.Name, sp.ID, cur.Parent)
			}
			cur = p
			if hops++; hops > 10 {
				t.Fatalf("remote span %s/%s never reaches shard-rpc", sp.Name, sp.ID)
			}
		}
	}
	if remote == 0 || remoteCells == 0 {
		t.Fatalf("trace has %d remote spans (%d cells), want both > 0", remote, remoteCells)
	}
	// Local cells exist too: both partitions are in one trace.
	cellsPerGrid := len(tinySpec().Eps)
	if got := len(byName["cell"]); got != 2*cellsPerGrid {
		t.Fatalf("trace has %d cell spans, want %d (both shards)", got, 2*cellsPerGrid)
	}
	if got := len(byName["cell"]) - remoteCells; got != cellsPerGrid {
		t.Fatalf("trace has %d local cell spans, want %d", got, cellsPerGrid)
	}

	// The same tree over HTTP, in Chrome trace_event form: the remote
	// node renders as its own process, every slice event is placeable.
	resp, err := http.Get(srv.URL + "/v1/suites/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace = %d, want 200", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace endpoint is not valid JSON: %v", err)
	}
	pids := map[int]bool{}
	var slices, remoteSlices int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			pids[ev.Pid] = true
		case "X":
			slices++
			if ev.Pid == 0 || ev.Tid == 0 || ev.Dur <= 0 {
				t.Fatalf("slice %q not placeable: %+v", ev.Name, ev)
			}
			if node, _ := ev.Args["node"].(string); node == peerSrv.URL {
				remoteSlices++
			}
		default:
			t.Fatalf("unexpected phase %q in trace", ev.Ph)
		}
	}
	if len(pids) != 2 {
		t.Fatalf("Chrome trace has %d processes, want 2 (local + peer)", len(pids))
	}
	if slices != len(spans) {
		t.Fatalf("Chrome trace has %d slices for %d spans", slices, len(spans))
	}
	if remoteSlices != remote {
		t.Fatalf("Chrome trace has %d remote slices for %d remote spans", remoteSlices, remote)
	}

	// Unknown jobs 404 on the trace endpoint like everywhere else.
	resp404, err := http.Get(srv.URL + "/v1/suites/feedfeed/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp404.Body.Close()
	if resp404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job trace = %d, want 404", resp404.StatusCode)
	}
}

// TestSSEKeepalive: while a job is stalled and emitting nothing, the
// events stream still carries periodic `: keepalive` comments — what
// keeps idle connections alive through proxies and lets the server
// notice dead subscribers — and the Go client's parser skips them
// without miscounting events.
func TestSSEKeepalive(t *testing.T) {
	old := sseKeepalive
	sseKeepalive = 20 * time.Millisecond
	t.Cleanup(func() { sseKeepalive = old })

	gate := make(chan struct{})
	openGate := sync.OnceFunc(func() { close(gate) })
	defer openGate()
	srv, _ := newTestServer(t, Config{Workers: 1, ModelSource: gatedSource(t, gate)})
	c := NewClient(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	st, _, err := c.Submit(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}

	// Raw SSE read: the gated model source keeps the job silent, so
	// anything arriving past the replay must be keepalive comments.
	resp, err := http.Get(srv.URL + "/v1/suites/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	keepalives := 0
	deadline := time.After(10 * time.Second)
	for keepalives < 2 {
		lineCh := make(chan string, 1)
		go func() {
			if sc.Scan() {
				lineCh <- sc.Text()
			} else {
				close(lineCh)
			}
		}()
		select {
		case line, ok := <-lineCh:
			if !ok {
				t.Fatalf("stream ended after %d keepalives: %v", keepalives, sc.Err())
			}
			if strings.HasPrefix(line, ": keepalive") {
				keepalives++
			}
		case <-deadline:
			t.Fatalf("saw %d keepalives before timing out, want 2", keepalives)
		}
	}
	resp.Body.Close()

	// Unblock the job; the client-side parser must deliver exactly the
	// real events despite the interleaved comments.
	openGate()
	rep, err := c.Wait(ctx, st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Grids) != len(tinySpec().Attacks) {
		t.Fatalf("report has %d grids, want %d", len(rep.Grids), len(tinySpec().Attacks))
	}
}
