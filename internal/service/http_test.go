package service

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiment"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Manager) {
	t.Helper()
	m := newTestManager(t, cfg)
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(srv.Close)
	return srv, m
}

// TestHTTPSubmitStreamReport drives the full remote lifecycle through
// the Go client: submit, dedupe on resubmission, SSE progress with
// replay, and a report whose CSV bytes are identical to a local
// engine run — the acceptance criterion at the HTTP boundary.
func TestHTTPSubmitStreamReport(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1})
	c := NewClient(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	st, created, err := c.Submit(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if !created || st.ID == "" {
		t.Fatalf("first remote submission = (%+v, created=%v)", st, created)
	}

	var events []experiment.Event
	rep, err := c.Wait(ctx, st.ID, func(ev experiment.Event) { events = append(events, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || events[0].Kind != experiment.SuiteStarted {
		t.Fatalf("SSE stream must start with suite-started, got %d events", len(events))
	}
	if last := events[len(events)-1]; last.Kind != experiment.SuiteFinished || last.Err != "" {
		t.Fatalf("SSE stream must end with a clean suite-finished, got %+v", last)
	}
	for _, ev := range events {
		if ev.Job != st.ID {
			t.Fatalf("SSE event lost its job tag: %+v", ev)
		}
	}

	// Resubmitting the identical spec dedupes to the same finished job.
	st2, created, err := c.Submit(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if created || st2.ID != st.ID || st2.State != StateDone {
		t.Fatalf("remote resubmission = (%+v, created=%v)", st2, created)
	}

	// The remote report matches a local engine run cell for cell, and
	// the served CSV is byte-identical to the local encoder's output.
	ref, err := experiment.New(experiment.WithModelSource(fixtureSource(t))).Run(context.Background(), tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Grids {
		if !reflect.DeepEqual(rep.Grids[i].Acc, ref.Grids[i].Acc) {
			t.Fatalf("remote report diverged on %s", ref.Grids[i].Attack)
		}
	}
	remoteCSV, err := c.ReportRaw(ctx, st.ID, "csv")
	if err != nil {
		t.Fatal(err)
	}
	var localCSV bytes.Buffer
	if err := ref.WriteCSV(&localCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(remoteCSV, localCSV.Bytes()) {
		t.Fatalf("served CSV is not byte-identical to the local encoder:\n--- remote ---\n%s--- local ---\n%s", remoteCSV, localCSV.Bytes())
	}

	// A late SSE subscriber replays the finished job's whole history.
	var replay []experiment.Event
	if err := c.Events(ctx, st.ID, func(ev experiment.Event) { replay = append(replay, ev) }); err != nil {
		t.Fatal(err)
	}
	if len(replay) != len(events) {
		t.Fatalf("late SSE replay has %d events, live stream had %d", len(replay), len(events))
	}

	// List and status agree.
	jobs, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != st.ID || jobs[0].State != StateDone {
		t.Fatalf("remote list = %+v", jobs)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	gate := make(chan struct{})
	openGate := sync.OnceFunc(func() { close(gate) })
	defer openGate()
	srv, _ := newTestServer(t, Config{Workers: 1, ModelSource: gatedSource(t, gate)})
	c := NewClient(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// Unknown jobs are 404 everywhere.
	for _, path := range []string{"/v1/suites/feedfeed", "/v1/suites/feedfeed/report", "/v1/suites/feedfeed/events"} {
		if code, body := get(path); code != http.StatusNotFound || !strings.Contains(body, "no such job") {
			t.Fatalf("GET %s = %d %q, want 404", path, code, body)
		}
	}

	// Invalid specs are 400 with the validation message.
	resp, err := http.Post(srv.URL+"/v1/suites", "application/json", strings.NewReader(`{"model":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "attack") {
		t.Fatalf("bad spec POST = %d %q", resp.StatusCode, body)
	}
	// So is malformed JSON.
	resp, err = http.Post(srv.URL+"/v1/suites", "application/json", strings.NewReader(`{"mode`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed POST = %d", resp.StatusCode)
	}

	// An unfinished job's report is 409, and the client surfaces it.
	st, _, err := c.Submit(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := get("/v1/suites/" + st.ID + "/report"); code != http.StatusConflict {
		t.Fatalf("unfinished report = %d, want 409", code)
	}
	if _, err := c.Report(ctx, st.ID); err == nil || !strings.Contains(err.Error(), "not finished") {
		t.Fatalf("client Report on unfinished job = %v", err)
	}
	if code, _ := get("/v1/suites/" + st.ID + "/report?format=yaml"); code != http.StatusBadRequest {
		t.Fatal("unknown report formats must be 400")
	}

	// DELETE cancels; the cancelled report is 410.
	cancelled, err := c.Cancel(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cancelled.State != StateCancelled && cancelled.State != StateRunning {
		t.Fatalf("DELETE state = %s", cancelled.State)
	}
	// Unblock the gated model source so the cancelled run can unwind.
	openGate()
	waitTerminal := func(id string) {
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			st, err := c.Status(ctx, id)
			if err != nil {
				t.Fatal(err)
			}
			if st.State.Terminal() {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("job %s never terminal", id)
	}
	waitTerminal(st.ID)
	if code, _ := get("/v1/suites/" + st.ID + "/report"); code != http.StatusGone {
		t.Fatalf("cancelled report = %d, want 410", code)
	}
	if _, err := c.Wait(ctx, st.ID, nil); err == nil || !strings.Contains(err.Error(), string(StateCancelled)) {
		t.Fatalf("client Wait on cancelled job = %v", err)
	}
}

func TestHTTPHealthAndMetrics(t *testing.T) {
	srv, m := newTestServer(t, Config{Workers: 1})
	c := NewClient(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, _, err := c.Submit(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(body)
	for _, want := range []string{
		"axserve_cache_craft_hits_total",
		"axserve_cache_craft_misses_total",
		"axserve_cache_pred_misses_total",
		"axserve_cache_craft_evictions_total",
		"axserve_cache_craft_bytes",
		"axserve_cache_disk_craft_hits_total",
		"axserve_cache_disk_pred_hits_total",
		"axserve_cache_disk_errors_total",
		"axserve_store_admission_rejects_total",
		"axserve_store_gc_evicted_records_total",
		"axserve_store_corrupt_records_total",
		"axserve_store_keys",
		"axserve_store_bytes",
		// Scheduler counters: the finished 4-cell suite ran entirely on
		// this node's local executor; remote and fallback are pinned at
		// zero on a single-node manager, and the ready gauge drains.
		"axserve_sched_cells_local_total 4",
		"axserve_sched_cells_remote_total 0",
		"axserve_sched_cells_fallback_total 0",
		"axserve_sched_ready_cells 0",
		`axserve_jobs{state="done"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
	// The finished 4-cell suite crafted 3 distinct batches (clean row
	// shared): misses are visible to scrapers.
	if !strings.Contains(metrics, "axserve_cache_craft_misses_total 3") {
		t.Fatalf("metrics miss counter wrong:\n%s", metrics)
	}
	// This manager runs memory-only: the disk tier counters must exist
	// for scrapers but stay pinned at zero.
	if !strings.Contains(metrics, "axserve_cache_disk_craft_misses_total 0") {
		t.Fatalf("memory-only manager has nonzero disk counters:\n%s", metrics)
	}
}
