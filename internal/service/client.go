package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/experiment"
	"repro/internal/obs"
)

// Client is the thin Go client of the axserve HTTP API — what
// cmd/axrobust -server uses to submit-and-stream instead of running
// locally. It only speaks the wire formats the experiment package
// already owns (Spec.Encode, ReadReport, Event JSON), so client and
// server cannot drift apart without a test noticing.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client of the server at base (e.g.
// "http://127.0.0.1:8080"), using http.DefaultClient. Suites can run
// for a long time, so no request timeout is imposed; bound calls with
// their contexts.
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient}
}

// Base returns the server base URL this client talks to — the node
// label sharded traces stamp on spans imported from this peer.
func (c *Client) Base() string { return c.base }

// do issues one request and decodes error bodies into errors. When
// ctx carries a trace context it is propagated as headers, so server
// work can nest under the caller's span (the sharded-execution path).
func (c *Client) do(ctx context.Context, method, path string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	obs.Inject(ctx, req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		defer resp.Body.Close()
		var apiErr errorResponse
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&apiErr) == nil && apiErr.Error != "" {
			return nil, fmt.Errorf("server: %s (%s)", apiErr.Error, resp.Status)
		}
		return nil, fmt.Errorf("server: %s %s: %s", method, path, resp.Status)
	}
	return resp, nil
}

func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	resp, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// Submit posts the spec and returns the job (existing or new) plus
// whether this submission created it.
func (c *Client) Submit(ctx context.Context, spec *experiment.Spec) (JobStatus, bool, error) {
	body, err := spec.Encode()
	if err != nil {
		return JobStatus{}, false, err
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/suites", bytes.NewReader(body))
	if err != nil {
		return JobStatus{}, false, err
	}
	defer resp.Body.Close()
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		return JobStatus{}, false, fmt.Errorf("decoding submit response: %w", err)
	}
	return sub.Job, sub.Created, nil
}

// Status fetches one job's snapshot.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.getJSON(ctx, "/v1/suites/"+id, &st)
	return st, err
}

// List fetches every job the server knows.
func (c *Client) List(ctx context.Context) ([]JobStatus, error) {
	var out []JobStatus
	err := c.getJSON(ctx, "/v1/suites", &out)
	return out, err
}

// Cancel asks the server to stop the job and returns its status.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	resp, err := c.do(ctx, http.MethodDelete, "/v1/suites/"+id, nil)
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	var st JobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

// Report fetches and decodes the finished job's report.
func (c *Client) Report(ctx context.Context, id string) (*experiment.Report, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/suites/"+id+"/report?format=json", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return experiment.ReadReport(resp.Body)
}

// ReportRaw fetches the finished report's bytes in the given server
// format ("json" or "csv") without re-encoding, so e.g. the CSV a
// remote caller writes to disk is byte-identical to the server's.
func (c *Client) ReportRaw(ctx context.Context, id, format string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/suites/"+id+"/report?format="+format, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// ExecuteShard asks the peer to run the named grids of the spec on
// its local executor, synchronously, returning the partial report.
// This is the node-to-node path of sharded suite execution — not part
// of the public suite API, and not a job on the peer.
func (c *Client) ExecuteShard(ctx context.Context, spec *experiment.Spec, grids []string) (*experiment.Report, error) {
	specJSON, err := spec.Encode()
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(shardRequest{Spec: specJSON, Grids: grids})
	if err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, http.MethodPost, "/internal/v1/shard", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	// Current peers reply with a {report, spans} envelope; a peer one
	// deploy behind replies with the bare report JSON (which has no
	// "report" key), so fall back to parsing the body directly.
	var env shardResponse
	if json.Unmarshal(raw, &env) == nil && len(env.Report) > 0 {
		if rec, _ := obs.FromContext(ctx); rec != nil {
			rec.Import(c.base, env.Spans)
		}
		return experiment.ReadReport(bytes.NewReader(env.Report))
	}
	return experiment.ReadReport(bytes.NewReader(raw))
}

// TraceRaw fetches a job's Chrome trace_event JSON verbatim — what
// axrobust -trace writes to disk for chrome://tracing / Perfetto.
func (c *Client) TraceRaw(ctx context.Context, id string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/suites/"+id+"/trace", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Events consumes the job's SSE stream — full replay, then live —
// invoking fn for every event until the server closes the stream (the
// job reached a terminal state) or ctx is cancelled. fn may be nil to
// just block until the stream ends.
func (c *Client) Events(ctx context.Context, id string, fn func(experiment.Event)) error {
	resp, err := c.do(ctx, http.MethodGet, "/v1/suites/"+id+"/events", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue // blank separators, comments, other SSE fields
		}
		var ev experiment.Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return fmt.Errorf("decoding event %q: %w", data, err)
		}
		if fn != nil {
			fn(ev)
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return ctx.Err()
}

// WaitDone follows the job to a terminal state — streaming progress
// through fn when given — and returns its final status, turning any
// state but done into an error carrying the server's terminal error.
func (c *Client) WaitDone(ctx context.Context, id string, fn func(experiment.Event)) (JobStatus, error) {
	if err := c.Events(ctx, id, fn); err != nil {
		return JobStatus{}, err
	}
	st, err := c.Status(ctx, id)
	if err != nil {
		return JobStatus{}, err
	}
	if st.State != StateDone {
		return st, fmt.Errorf("job %s %s: %s", id, st.State, st.Error)
	}
	return st, nil
}

// Wait follows the job to completion — streaming progress through fn
// when given — and returns its decoded report. Failed or cancelled
// jobs surface the server's terminal error.
func (c *Client) Wait(ctx context.Context, id string, fn func(experiment.Event)) (*experiment.Report, error) {
	if _, err := c.WaitDone(ctx, id, fn); err != nil {
		return nil, err
	}
	return c.Report(ctx, id)
}

// WaitRaw is Wait for callers that want the server's encoding
// verbatim: it follows the job to completion and returns the report
// bytes in the given server format ("json" or "csv").
func (c *Client) WaitRaw(ctx context.Context, id, format string, fn func(experiment.Event)) ([]byte, error) {
	if _, err := c.WaitDone(ctx, id, fn); err != nil {
		return nil, err
	}
	return c.ReportRaw(ctx, id, format)
}
