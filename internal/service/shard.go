// Sharded suite execution: a manager with peers partitions a job's
// plan grid-wise across itself and the peer nodes, each part runs on
// its node's local executor, and the partial reports merge back in
// plan order — byte-identical to a single-node run, because every
// executor assembles in plan order and model training is
// deterministic. The shared disk store (same -data-dir on every node)
// is the cross-shard cache fabric: a batch crafted on one shard is
// replayed from disk everywhere else.

package service

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/obs"
)

// shardHist times whole shard RPC round-trips (encode, peer
// execution, decode) from the requesting node's side.
var shardHist = obs.Default.Histogram("ax_shard_rpc_duration_seconds",
	"Shard RPC round-trip latency (peer executes its grid partition), in seconds.")

// shardRequest is the wire form of the internal shard endpoint: the
// full suite spec plus the grid names this node should execute.
type shardRequest struct {
	Spec  json.RawMessage `json:"spec"`
	Grids []string        `json:"grids"`
}

// shardResponse is the internal shard endpoint's reply: the partial
// report plus — when the caller propagated a trace context — the spans
// the peer recorded while executing, so remote work nests under the
// originating suite's trace. Older nodes replied with the bare report
// JSON; the client accepts both (see Client.ExecuteShard).
type shardResponse struct {
	Report json.RawMessage `json:"report"`
	Spans  []obs.Span      `json:"spans,omitempty"`
}

// ExecuteShard runs the named grids of the spec on this manager's
// local executor, synchronously, and returns the partial report. It
// is the server side of the internal shard endpoint: no job is
// created, no events are logged — the requesting node owns the job —
// but executed cells do count into this node's scheduler counters and
// land in its shared cache tiers.
func (m *Manager) ExecuteShard(ctx context.Context, spec *experiment.Spec, grids []string) (*experiment.Report, error) {
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	plan, err := spec.Plan()
	if err != nil {
		return nil, err
	}
	sub, err := plan.Restrict(grids)
	if err != nil {
		return nil, err
	}
	return m.newEngine(nil).RunPlan(ctx, sub)
}

// runSharded partitions the plan's grids round-robin over this node
// and its peers, runs the remote parts concurrently with the local
// one, and merges. Grid 0 always stays local, so the node doing the
// merge always executed part of the suite itself.
func (m *Manager) runSharded(ctx context.Context, j *job, plan *experiment.Plan) (*experiment.Report, error) {
	nodes := len(m.peers) + 1
	parts := make([][]string, nodes)
	for gi, g := range plan.Grids {
		parts[gi%nodes] = append(parts[gi%nodes], g)
	}

	reports := make([]*experiment.Report, nodes)
	errs := make([]error, nodes)
	var wg sync.WaitGroup
	for ni := 1; ni < nodes; ni++ {
		if len(parts[ni]) == 0 {
			continue
		}
		wg.Add(1)
		go func(ni int) {
			defer wg.Done()
			reports[ni], errs[ni] = m.runShardPart(ctx, j, plan, m.peers[ni-1], parts[ni])
		}(ni)
	}
	if len(parts[0]) > 0 {
		sub, err := plan.Restrict(parts[0])
		if err == nil {
			reports[0], err = m.newEngine(j.record).RunPlan(ctx, sub)
		}
		errs[0] = err
	}
	wg.Wait()
	var merged []*experiment.Report
	for ni, err := range errs {
		if err != nil {
			return nil, err
		}
		if reports[ni] != nil {
			merged = append(merged, reports[ni])
		}
	}
	_, span := obs.Start(ctx, "merge")
	defer span.End()
	return mergeShardReports(plan, merged)
}

// runShardPart executes one partition on a peer, falling back to
// local execution when the peer fails — one dead node degrades
// throughput, never the suite. Remote cells are replayed into the
// job's event log (as CellFinished, with their plan positions) so
// progress subscribers count them like local ones.
func (m *Manager) runShardPart(ctx context.Context, j *job, plan *experiment.Plan, peer *Client, grids []string) (*experiment.Report, error) {
	// The shard-rpc span is the local parent every remote span nests
	// under: the client injects its ID as the peer's parent header.
	rctx, span := obs.Start(ctx, "shard-rpc",
		obs.Attr{Key: "peer", Value: peer.Base()},
		obs.Attr{Key: "grids", Value: strings.Join(grids, ",")})
	rep, err := peer.ExecuteShard(rctx, j.spec, grids)
	shardHist.Observe(span.End())
	if err == nil {
		m.sched.Remote.Add(int64(len(rep.Cells)))
		m.recordRemoteCells(j, plan, rep)
		return rep, nil
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	sub, rerr := plan.Restrict(grids)
	if rerr != nil {
		return nil, rerr
	}
	rep, rerr = m.newEngine(j.record).RunPlan(ctx, sub)
	if rerr == nil {
		m.sched.Fallback.Add(int64(len(rep.Cells)))
	}
	return rep, rerr
}

// recordRemoteCells logs a peer's finished cells into the job's event
// stream, mapped onto their stable plan positions.
func (m *Manager) recordRemoteCells(j *job, plan *experiment.Plan, rep *experiment.Report) {
	for _, ct := range rep.Cells {
		cell, ok := plan.CellAt(ct.Attack, ct.Eps)
		if !ok {
			continue
		}
		j.record(experiment.Event{
			Kind:     experiment.CellFinished,
			Attack:   ct.Attack,
			Eps:      ct.Eps,
			Cell:     cell.Index,
			Cells:    plan.Total,
			CacheHit: ct.CacheHit,
			Elapsed:  time.Duration(ct.ElapsedMS * float64(time.Millisecond)),
		})
	}
}

// mergeShardReports reassembles partial reports into the full suite
// report, grids and cell timings in plan order — the same order every
// executor emits, so the merged bytes match a single-node run's
// (timing fields aside, which differ run to run even locally).
func mergeShardReports(plan *experiment.Plan, parts []*experiment.Report) (*experiment.Report, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("service: merge: no shard reports")
	}
	grids := make(map[string]*core.Grid)
	cells := make(map[int]experiment.CellTiming)
	for _, part := range parts {
		if part.CleanAcc != parts[0].CleanAcc {
			// Deterministic training means every node resolves identical
			// models; a mismatch is a deployment skew worth failing on.
			return nil, fmt.Errorf("service: merge: clean accuracy mismatch across shards (%g vs %g)", part.CleanAcc, parts[0].CleanAcc)
		}
		for _, g := range part.Grids {
			if _, dup := grids[g.Attack]; dup {
				return nil, fmt.Errorf("service: merge: grid %q from two shards", g.Attack)
			}
			grids[g.Attack] = g
		}
		for _, ct := range part.Cells {
			cell, ok := plan.CellAt(ct.Attack, ct.Eps)
			if !ok {
				return nil, fmt.Errorf("service: merge: cell %s eps=%g not in plan", ct.Attack, ct.Eps)
			}
			cells[cell.Index] = ct
		}
	}
	rep := &experiment.Report{
		Spec:     *plan.Spec(),
		CleanAcc: parts[0].CleanAcc,
		Grids:    make([]*core.Grid, 0, len(plan.Grids)),
		Cells:    make([]experiment.CellTiming, 0, len(plan.Cells)),
	}
	for _, name := range plan.Grids {
		g, ok := grids[name]
		if !ok {
			return nil, fmt.Errorf("service: merge: no shard covered grid %q", name)
		}
		rep.Grids = append(rep.Grids, g)
	}
	for _, cell := range plan.Cells {
		ct, ok := cells[cell.Index]
		if !ok {
			return nil, fmt.Errorf("service: merge: no shard covered cell %d (%s eps=%g)", cell.Index, cell.Attack, cell.Eps)
		}
		rep.Cells = append(rep.Cells, ct)
	}
	return rep, nil
}
