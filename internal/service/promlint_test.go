package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestMetricsExpositionWellFormed scrapes a populated /metrics and
// lints the whole body against the Prometheus text-format rules a
// real scraper enforces: HELP/TYPE at most once per family and before
// its samples, families contiguous, label values legally escaped,
// histogram buckets cumulative and ascending with a terminal +Inf
// that equals _count, and _sum present. A hand-rolled exposition
// writer only stays correct if a test reads it back the way
// Prometheus would.
func TestMetricsExpositionWellFormed(t *testing.T) {
	srv, m := newTestServer(t, Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	id, _, err := m.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(ctx, id); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	families := lintPromText(t, text)

	// The suite that just ran must have populated every stage
	// histogram, and the build-info gauge must carry its labels.
	for _, name := range []string{
		"ax_cell_duration_seconds",
		"ax_craft_duration_seconds",
		"ax_predict_duration_seconds",
		"ax_store_get_duration_seconds",
		"ax_store_put_duration_seconds",
		"ax_http_request_duration_seconds",
	} {
		f, ok := families[name]
		if !ok {
			t.Errorf("family %s missing from /metrics", name)
			continue
		}
		if f.typ != "histogram" {
			t.Errorf("family %s has type %q, want histogram", name, f.typ)
		}
		if f.samples == 0 {
			t.Errorf("family %s has no samples", name)
		}
	}
	if f, ok := families["axserve_build_info"]; !ok || f.typ != "gauge" {
		t.Fatalf("axserve_build_info missing or not a gauge: %+v", f)
	}
	if !strings.Contains(text, `axserve_build_info{goversion="go`) {
		t.Fatalf("build info lacks a goversion label:\n%s", text)
	}
}

type promFamily struct {
	typ     string
	help    bool
	samples int
}

// lintPromText parses an exposition body strictly and fails the test
// on any format violation, returning the families it saw.
func lintPromText(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	families := map[string]*promFamily{}
	// histogram series state, keyed by family + label-set sans le
	type histSeries struct {
		les     []float64
		counts  []float64
		sum     float64
		hasSum  bool
		count   float64
		hasCnt  bool
		lastKey string
	}
	hists := map[string]*histSeries{}

	family := func(name string) string {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base, ok := strings.CutSuffix(name, suffix)
			if !ok {
				continue
			}
			if f := families[base]; f != nil && f.typ == "histogram" {
				return base
			}
		}
		return name
	}

	var current string          // family whose block we are inside
	closed := map[string]bool{} // families whose block has ended
	enter := func(lineno int, fam string) *promFamily {
		if fam != current {
			if current != "" {
				closed[current] = true
			}
			if closed[fam] {
				t.Fatalf("line %d: family %s reappears after other families; exposition requires contiguous families", lineno, fam)
			}
			current = fam
		}
		f := families[fam]
		if f == nil {
			f = &promFamily{}
			families[fam] = f
		}
		return f
	}

	for i, line := range strings.Split(text, "\n") {
		lineno := i + 1
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# "); ok {
			verb, rest, found := strings.Cut(rest, " ")
			name, _, _ := strings.Cut(rest, " ")
			if !found || name == "" {
				t.Fatalf("line %d: malformed comment %q", lineno, line)
			}
			f := enter(lineno, name)
			switch verb {
			case "HELP":
				if f.help {
					t.Fatalf("line %d: second HELP for %s", lineno, name)
				}
				if f.samples > 0 {
					t.Fatalf("line %d: HELP for %s after its samples", lineno, name)
				}
				f.help = true
			case "TYPE":
				if f.typ != "" {
					t.Fatalf("line %d: second TYPE for %s", lineno, name)
				}
				if f.samples > 0 {
					t.Fatalf("line %d: TYPE for %s after its samples", lineno, name)
				}
				typ, _, _ := strings.Cut(strings.TrimPrefix(rest, name+" "), " ")
				f.typ = typ
			default:
				t.Fatalf("line %d: unknown comment verb %q", lineno, verb)
			}
			continue
		}

		name, labels, value := parsePromSample(t, lineno, line)
		fam := family(name)
		f := enter(lineno, fam)
		f.samples++

		if f.typ != "histogram" {
			if name != fam {
				t.Fatalf("line %d: sample %s does not belong to %s family %s", lineno, name, f.typ, fam)
			}
			continue
		}
		// Histogram series bookkeeping.
		le, rest := "", make([]string, 0, len(labels))
		for _, l := range labels {
			if k, v, _ := strings.Cut(l, "="); k == "le" {
				le = v[1 : len(v)-1]
			} else {
				rest = append(rest, l)
			}
		}
		sort.Strings(rest)
		key := fam + "{" + strings.Join(rest, ",") + "}"
		hs := hists[key]
		if hs == nil {
			hs = &histSeries{}
			hists[key] = hs
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			if le == "" {
				t.Fatalf("line %d: histogram bucket without le label", lineno)
			}
			lef, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("line %d: unparseable le %q: %v", lineno, le, err)
			}
			hs.les = append(hs.les, lef)
			hs.counts = append(hs.counts, value)
		case strings.HasSuffix(name, "_sum"):
			hs.sum, hs.hasSum = value, true
		case strings.HasSuffix(name, "_count"):
			hs.count, hs.hasCnt = value, true
		default:
			t.Fatalf("line %d: sample %s inside histogram family %s", lineno, name, fam)
		}
		hs.lastKey = key
	}

	for key, hs := range hists {
		if len(hs.les) == 0 {
			t.Fatalf("histogram series %s has no buckets", key)
		}
		for i := 1; i < len(hs.les); i++ {
			if hs.les[i] <= hs.les[i-1] {
				t.Fatalf("histogram %s: le not ascending at index %d (%g after %g)", key, i, hs.les[i], hs.les[i-1])
			}
			if hs.counts[i] < hs.counts[i-1] {
				t.Fatalf("histogram %s: buckets not cumulative at le=%g (%g < %g)", key, hs.les[i], hs.counts[i], hs.counts[i-1])
			}
		}
		if last := hs.les[len(hs.les)-1]; !(last > 1e300) { // +Inf
			t.Fatalf("histogram %s: terminal bucket le=%g, want +Inf", key, last)
		}
		if !hs.hasSum {
			t.Fatalf("histogram %s: missing _sum", key)
		}
		if !hs.hasCnt {
			t.Fatalf("histogram %s: missing _count", key)
		}
		if inf := hs.counts[len(hs.counts)-1]; hs.count != inf {
			t.Fatalf("histogram %s: _count %g != +Inf bucket %g", key, hs.count, inf)
		}
	}
	return families
}

// parsePromSample parses `name{labels} value` strictly, validating
// label quoting and escape sequences, and returns the name, the raw
// `k="v"` label pairs, and the parsed value.
func parsePromSample(t *testing.T, lineno int, line string) (string, []string, float64) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("line %d: %s: %q", lineno, fmt.Sprintf(format, args...), line)
	}
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd <= 0 {
		fail("malformed sample")
	}
	name := line[:nameEnd]
	rest := line[nameEnd:]
	var labels []string
	if rest[0] == '{' {
		i := 1
		for rest[i] != '}' {
			ks := i
			for rest[i] != '=' {
				i++
			}
			k := rest[ks:i]
			i++ // '='
			if rest[i] != '"' {
				fail("label %s value not quoted", k)
			}
			vs := i
			i++
			for rest[i] != '"' {
				if rest[i] == '\\' {
					switch rest[i+1] {
					case '\\', '"', 'n':
						i++
					default:
						fail("illegal escape \\%c in label %s", rest[i+1], k)
					}
				}
				i++
			}
			i++ // closing quote
			labels = append(labels, k+"="+rest[vs:i])
			if rest[i] == ',' {
				i++
			} else if rest[i] != '}' {
				fail("junk after label %s", k)
			}
		}
		rest = rest[i+1:]
	}
	if rest == "" || rest[0] != ' ' {
		fail("no space before value")
	}
	value, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		fail("unparseable value: %v", err)
	}
	return name, labels, value
}
