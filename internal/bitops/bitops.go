// Package bitops provides small bit-level helpers shared by the
// gate-level arithmetic models in internal/adder and internal/axmult.
//
// All circuits in this repository are behavioural models: they operate on
// uint32 words but mimic the bit-by-bit structure of the hardware designs
// they stand in for, so approximation points (dropped cells, simplified
// gates) land exactly where the corresponding silicon would put them.
package bitops

import "math/bits"

// Bit returns bit i of x (0 or 1).
func Bit(x uint32, i uint) uint32 {
	return (x >> i) & 1
}

// SetBit returns x with bit i set to v (v must be 0 or 1).
func SetBit(x uint32, i uint, v uint32) uint32 {
	return (x &^ (1 << i)) | ((v & 1) << i)
}

// Mask returns a mask with the n least-significant bits set.
// Mask(0) is 0; n is clamped to 32.
func Mask(n uint) uint32 {
	if n >= 32 {
		return ^uint32(0)
	}
	return (1 << n) - 1
}

// LeadingOne returns the index of the most significant set bit of x,
// or -1 if x is zero. LeadingOne(1) == 0, LeadingOne(0x80) == 7.
func LeadingOne(x uint32) int {
	if x == 0 {
		return -1
	}
	return 31 - bits.LeadingZeros32(x)
}

// OnesCount returns the number of set bits in x.
func OnesCount(x uint32) int {
	return bits.OnesCount32(x)
}

// Clamp16 saturates a non-negative 32-bit value to the uint16 range.
func Clamp16(x uint32) uint16 {
	if x > 0xFFFF {
		return 0xFFFF
	}
	return uint16(x)
}

// ClampI32 saturates x into [lo, hi].
func ClampI32(x, lo, hi int32) int32 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
