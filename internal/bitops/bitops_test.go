package bitops

import (
	"testing"
	"testing/quick"
)

func TestBit(t *testing.T) {
	if Bit(0b1010, 1) != 1 || Bit(0b1010, 0) != 0 || Bit(0b1010, 3) != 1 {
		t.Fatal("Bit extraction wrong")
	}
}

func TestSetBit(t *testing.T) {
	if SetBit(0, 3, 1) != 8 {
		t.Fatalf("SetBit(0,3,1) = %d", SetBit(0, 3, 1))
	}
	if SetBit(0xFF, 0, 0) != 0xFE {
		t.Fatalf("SetBit(0xFF,0,0) = %d", SetBit(0xFF, 0, 0))
	}
	// Setting an already-set bit is a no-op.
	if SetBit(8, 3, 1) != 8 {
		t.Fatal("SetBit idempotence")
	}
}

func TestSetBitRoundTrip(t *testing.T) {
	f := func(x uint32, i uint8, v bool) bool {
		idx := uint(i % 32)
		var bit uint32
		if v {
			bit = 1
		}
		return Bit(SetBit(x, idx, bit), idx) == bit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMask(t *testing.T) {
	cases := []struct {
		n    uint
		want uint32
	}{{0, 0}, {1, 1}, {4, 0xF}, {8, 0xFF}, {32, 0xFFFFFFFF}, {40, 0xFFFFFFFF}}
	for _, c := range cases {
		if got := Mask(c.n); got != c.want {
			t.Errorf("Mask(%d) = %#x, want %#x", c.n, got, c.want)
		}
	}
}

func TestLeadingOne(t *testing.T) {
	cases := []struct {
		x    uint32
		want int
	}{{0, -1}, {1, 0}, {2, 1}, {3, 1}, {0x80, 7}, {0xFF, 7}, {0x100, 8}, {1 << 31, 31}}
	for _, c := range cases {
		if got := LeadingOne(c.x); got != c.want {
			t.Errorf("LeadingOne(%#x) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestLeadingOneBound(t *testing.T) {
	f := func(x uint32) bool {
		lo := LeadingOne(x)
		if x == 0 {
			return lo == -1
		}
		return lo >= 0 && lo < 32 && x>>uint(lo) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClamp16(t *testing.T) {
	if Clamp16(70000) != 0xFFFF {
		t.Fatal("Clamp16 saturate")
	}
	if Clamp16(123) != 123 {
		t.Fatal("Clamp16 passthrough")
	}
}

func TestClampI32(t *testing.T) {
	if ClampI32(5, 0, 3) != 3 || ClampI32(-5, 0, 3) != 0 || ClampI32(2, 0, 3) != 2 {
		t.Fatal("ClampI32 wrong")
	}
}

func TestOnesCount(t *testing.T) {
	if OnesCount(0b1011) != 3 || OnesCount(0) != 0 {
		t.Fatal("OnesCount wrong")
	}
}
