package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// AvgPool2D averages non-overlapping K x K windows (stride defaults to
// K). LeNet-5 and the paper's AlexNet both use average pooling.
type AvgPool2D struct {
	K, Stride int

	inC, inH, inW int
	outH, outW    int
}

// NewAvgPool2D creates an average-pooling layer; stride == 0 means
// stride = k.
func NewAvgPool2D(k, stride int) *AvgPool2D {
	if stride == 0 {
		stride = k
	}
	return &AvgPool2D{K: k, Stride: stride}
}

// Forward implements Layer.
func (p *AvgPool2D) Forward(x *tensor.T) *tensor.T {
	if len(x.Shape) != 3 {
		panic(fmt.Sprintf("nn: AvgPool2D expects [C,H,W], got %v", x.Shape))
	}
	p.inC, p.inH, p.inW = x.Shape[0], x.Shape[1], x.Shape[2]
	p.outH = (p.inH-p.K)/p.Stride + 1
	p.outW = (p.inW-p.K)/p.Stride + 1
	y := tensor.New(p.inC, p.outH, p.outW)
	inv := 1 / float32(p.K*p.K)
	for c := 0; c < p.inC; c++ {
		in := x.Data[c*p.inH*p.inW:]
		out := y.Data[c*p.outH*p.outW:]
		for oi := 0; oi < p.outH; oi++ {
			for oj := 0; oj < p.outW; oj++ {
				var s float32
				for ki := 0; ki < p.K; ki++ {
					row := (oi*p.Stride + ki) * p.inW
					for kj := 0; kj < p.K; kj++ {
						s += in[row+oj*p.Stride+kj]
					}
				}
				out[oi*p.outW+oj] = s * inv
			}
		}
	}
	return y
}

// Backward implements Layer.
func (p *AvgPool2D) Backward(dy *tensor.T) *tensor.T {
	dx := tensor.New(p.inC, p.inH, p.inW)
	inv := 1 / float32(p.K*p.K)
	for c := 0; c < p.inC; c++ {
		dout := dy.Data[c*p.outH*p.outW:]
		din := dx.Data[c*p.inH*p.inW:]
		for oi := 0; oi < p.outH; oi++ {
			for oj := 0; oj < p.outW; oj++ {
				g := dout[oi*p.outW+oj] * inv
				for ki := 0; ki < p.K; ki++ {
					row := (oi*p.Stride + ki) * p.inW
					for kj := 0; kj < p.K; kj++ {
						din[row+oj*p.Stride+kj] += g
					}
				}
			}
		}
	}
	return dx
}

// Clone implements Layer.
func (p *AvgPool2D) Clone() Layer { return &AvgPool2D{K: p.K, Stride: p.Stride} }
