package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// AvgPool2D averages non-overlapping K x K windows (stride defaults to
// K) over [C,H,W] samples or [N,C,H,W] batches. LeNet-5 and the
// paper's AlexNet both use average pooling.
type AvgPool2D struct {
	K, Stride int
}

// NewAvgPool2D creates an average-pooling layer; stride == 0 means
// stride = k.
func NewAvgPool2D(k, stride int) *AvgPool2D {
	if stride == 0 {
		stride = k
	}
	return &AvgPool2D{K: k, Stride: stride}
}

// Forward implements Layer.
func (p *AvgPool2D) Forward(x *tensor.T, st *State) *tensor.T {
	n, sample := batchDims(x, 3)
	if len(sample) != 3 {
		panic(fmt.Sprintf("nn: AvgPool2D expects [C,H,W] or [N,C,H,W], got %v", x.Shape))
	}
	st.x = x
	inC, inH, inW := sample[0], sample[1], sample[2]
	outH := (inH-p.K)/p.Stride + 1
	outW := (inW-p.K)/p.Stride + 1
	var y *tensor.T
	if len(x.Shape) == 4 {
		y = tensor.New(n, inC, outH, outW)
	} else {
		y = tensor.New(inC, outH, outW)
	}
	inv := 1 / float32(p.K*p.K)
	for s := 0; s < n; s++ {
		xd := x.Data[s*inC*inH*inW:]
		yd := y.Data[s*inC*outH*outW:]
		for c := 0; c < inC; c++ {
			in := xd[c*inH*inW:]
			out := yd[c*outH*outW:]
			for oi := 0; oi < outH; oi++ {
				for oj := 0; oj < outW; oj++ {
					var sum float32
					for ki := 0; ki < p.K; ki++ {
						row := (oi*p.Stride + ki) * inW
						for kj := 0; kj < p.K; kj++ {
							sum += in[row+oj*p.Stride+kj]
						}
					}
					out[oi*outW+oj] = sum * inv
				}
			}
		}
	}
	return y
}

// Backward implements Layer.
func (p *AvgPool2D) Backward(dy *tensor.T, st *State) *tensor.T {
	x := st.x
	n, sample := batchDims(x, 3)
	inC, inH, inW := sample[0], sample[1], sample[2]
	outH := (inH-p.K)/p.Stride + 1
	outW := (inW-p.K)/p.Stride + 1
	var dx *tensor.T
	if len(x.Shape) == 4 {
		dx = tensor.New(n, inC, inH, inW)
	} else {
		dx = tensor.New(inC, inH, inW)
	}
	inv := 1 / float32(p.K*p.K)
	for s := 0; s < n; s++ {
		dyd := dy.Data[s*inC*outH*outW:]
		dxd := dx.Data[s*inC*inH*inW:]
		for c := 0; c < inC; c++ {
			dout := dyd[c*outH*outW:]
			din := dxd[c*inH*inW:]
			for oi := 0; oi < outH; oi++ {
				for oj := 0; oj < outW; oj++ {
					g := dout[oi*outW+oj] * inv
					for ki := 0; ki < p.K; ki++ {
						row := (oi*p.Stride + ki) * inW
						for kj := 0; kj < p.K; kj++ {
							din[row+oj*p.Stride+kj] += g
						}
					}
				}
			}
		}
	}
	return dx
}
