package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// stackInputs builds a batch of random conv-net inputs plus the
// per-sample views used by the scalar reference path.
func stackInputs(n int, shape []int, seed int64) (*tensor.T, []*tensor.T) {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]*tensor.T, n)
	for i := range xs {
		x := tensor.New(shape...)
		for j := range x.Data {
			x.Data[j] = rng.Float32()
		}
		xs[i] = x
	}
	return tensor.Stack(xs), xs
}

// TestLogitsBatchMatchesScalar is the golden batched/scalar parity
// test for the float engine: LogitsBatch row r must equal Logits on
// sample r bit for bit (identical per-sample accumulation order).
func TestLogitsBatchMatchesScalar(t *testing.T) {
	net := smallConvNet(21)
	batch, xs := stackInputs(7, []int{2, 6, 6}, 22)
	out := net.LogitsBatch(batch)
	if len(out.Shape) != 2 || out.Shape[0] != 7 {
		t.Fatalf("LogitsBatch shape %v", out.Shape)
	}
	for r, x := range xs {
		want := net.Logits(x)
		got := out.Row(r).Data
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("sample %d logit %d: batch %v != scalar %v", r, j, got[j], want[j])
			}
		}
	}
}

// TestLossGradBatchMatchesScalar pins bit-for-bit parity of the
// batched input-gradient path — the property that lets batched attacks
// reproduce scalar perturbations exactly.
func TestLossGradBatchMatchesScalar(t *testing.T) {
	net := smallConvNet(23)
	batch, xs := stackInputs(5, []int{2, 6, 6}, 24)
	labels := []int{0, 1, 2, 3, 4}
	losses, grads := net.LossGradBatch(batch, labels)
	if len(grads.Shape) != 4 || grads.Shape[0] != 5 {
		t.Fatalf("LossGradBatch grad shape %v", grads.Shape)
	}
	for r, x := range xs {
		wantLoss, wantGrad := net.LossGrad(x, labels[r])
		if losses[r] != wantLoss {
			t.Fatalf("sample %d loss: batch %v != scalar %v", r, losses[r], wantLoss)
		}
		got := grads.Row(r).Data
		for j := range wantGrad.Data {
			if got[j] != wantGrad.Data[j] {
				t.Fatalf("sample %d grad[%d]: batch %v != scalar %v", r, j, got[j], wantGrad.Data[j])
			}
		}
	}
}

// TestBatchSizeOneMatchesScalar guards the degenerate batch.
func TestBatchSizeOneMatchesScalar(t *testing.T) {
	net := smallConvNet(25)
	batch, xs := stackInputs(1, []int{2, 6, 6}, 26)
	out := net.LogitsBatch(batch)
	want := net.Logits(xs[0])
	for j := range want {
		if out.Data[j] != want[j] {
			t.Fatal("batch-of-one diverged from scalar")
		}
	}
}

// TestDenseOnlyBatch covers the FFNN path ([N,F] flat batches through
// Flatten passthrough and Dense).
func TestDenseOnlyBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	net := &Network{
		Name: "ff",
		Layers: []Layer{
			&Flatten{},
			NewDense(12, 9, rng),
			&ReLU{},
			NewDense(9, 4, rng),
		},
	}
	batch, xs := stackInputs(6, []int{12}, 28)
	out := net.LogitsBatch(batch)
	if out.Shape[0] != 6 || out.Shape[1] != 4 {
		t.Fatalf("dense batch output shape %v", out.Shape)
	}
	for r, x := range xs {
		want := net.Logits(x)
		got := out.Row(r).Data
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("FFNN sample %d diverged", r)
			}
		}
	}
}
