package nn

import "repro/internal/tensor"

// ReLU is the rectified linear activation. It is elementwise, so single
// samples and batches take the same path.
type ReLU struct{}

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.T, st *State) *tensor.T {
	y := x.Clone()
	if cap(st.mask) < len(y.Data) {
		st.mask = make([]bool, len(y.Data))
	}
	st.mask = st.mask[:len(y.Data)]
	for i, v := range y.Data {
		if v <= 0 {
			y.Data[i] = 0
			st.mask[i] = false
		} else {
			st.mask[i] = true
		}
	}
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(dy *tensor.T, st *State) *tensor.T {
	dx := dy.Clone()
	for i := range dx.Data {
		if !st.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Flatten reshapes [C,H,W] samples to [C*H*W] and [N,C,H,W] batches to
// [N,C*H*W]; a no-op on already-flat inputs.
type Flatten struct{}

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.T, st *State) *tensor.T {
	st.shape = append(st.shape[:0], x.Shape...)
	switch len(x.Shape) {
	case 4:
		return x.Reshape(x.Shape[0], x.Len()/x.Shape[0])
	case 3:
		return x.Reshape(x.Len())
	default:
		return x
	}
}

// Backward implements Layer.
func (f *Flatten) Backward(dy *tensor.T, st *State) *tensor.T {
	return dy.Reshape(st.shape...)
}
