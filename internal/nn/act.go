package nn

import "repro/internal/tensor"

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.T) *tensor.T {
	y := x.Clone()
	if cap(r.mask) < len(y.Data) {
		r.mask = make([]bool, len(y.Data))
	}
	r.mask = r.mask[:len(y.Data)]
	for i, v := range y.Data {
		if v <= 0 {
			y.Data[i] = 0
			r.mask[i] = false
		} else {
			r.mask[i] = true
		}
	}
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(dy *tensor.T) *tensor.T {
	dx := dy.Clone()
	for i := range dx.Data {
		if !r.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Clone implements Layer.
func (r *ReLU) Clone() Layer { return &ReLU{} }

// Flatten reshapes [C,H,W] to [C*H*W]; a no-op on already-flat inputs.
type Flatten struct {
	shape []int
}

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.T) *tensor.T {
	f.shape = append(f.shape[:0], x.Shape...)
	return x.Reshape(x.Len())
}

// Backward implements Layer.
func (f *Flatten) Backward(dy *tensor.T) *tensor.T {
	return dy.Reshape(f.shape...)
}

// Clone implements Layer.
func (f *Flatten) Clone() Layer { return &Flatten{} }
