// Package nn is a minimal, complete float32 neural-network stack:
// layers with forward and backward passes, cross-entropy loss, and
// input-gradient computation. It plays two roles in the reproduction:
// it trains the accurate DNNs (the paper trains with exact multipliers)
// and it serves as the adversary's white-box model — every gradient
// attack differentiates through this stack.
//
// Layers process one sample at a time (shape [C,H,W] or [N]); data
// parallelism is achieved by cloning the network per worker. Clones
// share weight storage but own private gradient buffers and caches, so
// concurrent Forward/Backward calls on different clones are safe as
// long as weights are not updated concurrently.
package nn

import "repro/internal/tensor"

// Layer is a differentiable network stage.
type Layer interface {
	// Forward computes the layer output and caches whatever Backward
	// needs. The returned tensor is owned by the layer until the next
	// Forward call.
	Forward(x *tensor.T) *tensor.T
	// Backward consumes the gradient w.r.t. the layer output and
	// returns the gradient w.r.t. the layer input, accumulating weight
	// gradients (if any) into the layer's gradient buffers.
	Backward(dy *tensor.T) *tensor.T
	// Clone returns a copy sharing weights but owning fresh gradient
	// buffers and caches.
	Clone() Layer
}

// Param couples a weight slice with its gradient buffer.
type Param struct {
	Name string
	W    []float32
	G    []float32
}

// ParamLayer is a Layer with trainable parameters.
type ParamLayer interface {
	Layer
	Params() []Param
}
