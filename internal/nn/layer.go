// Package nn is a minimal, complete float32 neural-network stack:
// layers with forward and backward passes, cross-entropy loss, and
// input-gradient computation. It plays two roles in the reproduction:
// it trains the accurate DNNs (the paper trains with exact multipliers)
// and it serves as the adversary's white-box model — every gradient
// attack differentiates through this stack.
//
// Layers are stateless and batch-first: inputs are either a single
// sample ([C,H,W] or [F]) or a batch with a leading sample dimension
// ([N,C,H,W] or [N,F]), and all per-call scratch lives in an explicit
// State owned by the caller. Network pools those States internally, so
// concurrent Forward / Logits / LossGrad calls on one shared Network
// are safe without cloning. The only remaining use of Network.Clone is
// data-parallel training, where each worker needs private weight
// gradient buffers.
package nn

import "repro/internal/tensor"

// State carries the scratch one layer needs between a Forward call and
// the matching Backward, plus reusable buffers that amortise
// allocations across calls. A zero State is ready for use; Networks
// recycle States through an internal pool.
type State struct {
	// accumGrads routes weight/bias gradients into the layer's shared
	// G buffers during Backward. It is off for attack/inference passes
	// (making them safe on a shared network) and on for training.
	accumGrads bool

	x     *tensor.T // layer input (conv, dense, pool)
	cols  []float32 // conv im2col columns for the whole batch
	dcols []float32 // conv backward per-sample column gradients
	mask  []bool    // relu activation mask
	shape []int     // flatten input shape
}

// release drops references to pass inputs so pooled States do not pin
// batch tensors, while keeping the flat scratch buffers for reuse.
func (st *State) release() { st.x = nil }

// Layer is a differentiable network stage. Implementations must keep
// all mutable per-call data in st so that a single Layer value can be
// used concurrently with distinct States.
type Layer interface {
	// Forward computes the layer output for a single sample or a batch,
	// caching whatever Backward needs in st. The returned tensor is
	// freshly allocated (or a view of one) and owned by the caller.
	Forward(x *tensor.T, st *State) *tensor.T
	// Backward consumes the gradient w.r.t. the layer output and
	// returns the gradient w.r.t. the layer input. Weight gradients are
	// accumulated into the layer's gradient buffers only when st was
	// prepared for training (see Network.AccumGrad).
	Backward(dy *tensor.T, st *State) *tensor.T
}

// Param couples a weight slice with its gradient buffer.
type Param struct {
	Name string
	W    []float32
	G    []float32
}

// ParamLayer is a Layer with trainable parameters.
type ParamLayer interface {
	Layer
	Params() []Param
	// CloneForTraining returns a copy sharing weight storage but owning
	// fresh gradient buffers, so data-parallel trainers can accumulate
	// per-worker gradients without races.
	CloneForTraining() Layer
	// CloneDetached returns a copy owning private weight AND gradient
	// storage initialised from the receiver — the basis of derived
	// models (adversarial fine-tuning) that retrain without mutating
	// their base.
	CloneDetached() Layer
}

// batchDims splits a layer input into (n, sampleShape) following the
// batch convention: rank sampleRank+1 tensors carry a leading batch
// dimension.
func batchDims(x *tensor.T, sampleRank int) (n int, sample []int) {
	if len(x.Shape) == sampleRank+1 {
		return x.Shape[0], x.Shape[1:]
	}
	return 1, x.Shape
}
