package nn

import (
	"math"

	"repro/internal/tensor"
)

// Network is an ordered stack of layers ending in logits (no softmax
// layer; the loss applies softmax internally).
type Network struct {
	Name   string
	Layers []Layer
}

// Forward runs the full stack and returns the logits tensor.
func (n *Network) Forward(x *tensor.T) *tensor.T {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Logits runs Forward and returns the logits as a plain slice. Together
// with LossGrad it satisfies the attack package's model interfaces.
func (n *Network) Logits(x *tensor.T) []float32 {
	return n.Forward(x).Data
}

// Predict returns the argmax class for x.
func (n *Network) Predict(x *tensor.T) int {
	return tensor.ArgMax(n.Logits(x))
}

// ForwardTrace runs the stack and returns every intermediate output
// (one per layer). Used by quantization calibration.
func (n *Network) ForwardTrace(x *tensor.T) []*tensor.T {
	outs := make([]*tensor.T, len(n.Layers))
	for i, l := range n.Layers {
		x = l.Forward(x)
		outs[i] = x
	}
	return outs
}

// LossGrad computes the softmax cross-entropy loss for (x, label), and
// the gradient of that loss w.r.t. x. Weight gradients are accumulated
// into the layers' buffers as a side effect (call ZeroGrads between
// optimizer steps; attacks can ignore them on cloned networks).
func (n *Network) LossGrad(x *tensor.T, label int) (float32, *tensor.T) {
	logits := n.Forward(x)
	loss, dlogits := SoftmaxCE(logits.Data, label)
	g := tensor.FromSlice(dlogits, logits.Shape...)
	for i := len(n.Layers) - 1; i >= 0; i-- {
		g = n.Layers[i].Backward(g)
	}
	return loss, g
}

// Params returns all trainable parameters in layer order.
func (n *Network) Params() []Param {
	var ps []Param
	for _, l := range n.Layers {
		if pl, ok := l.(ParamLayer); ok {
			ps = append(ps, pl.Params()...)
		}
	}
	return ps
}

// ZeroGrads clears all gradient buffers.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		for i := range p.G {
			p.G[i] = 0
		}
	}
}

// Clone returns a network sharing weights with n but owning private
// gradient buffers and caches, for data-parallel training and
// concurrent attack generation.
func (n *Network) Clone() *Network {
	c := &Network{Name: n.Name, Layers: make([]Layer, len(n.Layers))}
	for i, l := range n.Layers {
		c.Layers[i] = l.Clone()
	}
	return c
}

// SoftmaxCE returns the cross-entropy loss of logits against label and
// the gradient d loss / d logits (softmax(logits) minus one-hot).
func SoftmaxCE(logits []float32, label int) (float32, []float32) {
	maxv := logits[0]
	for _, v := range logits[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	probs := make([]float32, len(logits))
	for i, v := range logits {
		e := math.Exp(float64(v - maxv))
		probs[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range probs {
		probs[i] *= inv
	}
	loss := -float32(math.Log(math.Max(float64(probs[label]), 1e-12)))
	grad := probs
	grad[label] -= 1
	return loss, grad
}
