package nn

import (
	"math"
	"sync"

	"repro/internal/tensor"
)

// Network is an ordered stack of layers ending in logits (no softmax
// layer; the loss applies softmax internally).
//
// Networks are stateless with respect to inference: Forward, Logits,
// LogitsBatch, LossGrad and LossGradBatch keep all scratch in pooled
// per-call workspaces and never touch the shared gradient buffers, so
// one Network value serves any number of goroutines concurrently.
// Training uses Clone (private gradient buffers) plus AccumGrad.
type Network struct {
	Name   string
	Layers []Layer

	// passes recycles per-call workspaces (one State per layer).
	passes sync.Pool
}

// pass is one forward/backward workspace: a State slot per layer.
type pass struct {
	states []State
}

func (n *Network) getPass(accumGrads bool) *pass {
	p, _ := n.passes.Get().(*pass)
	if p == nil || len(p.states) != len(n.Layers) {
		p = &pass{states: make([]State, len(n.Layers))}
	}
	for i := range p.states {
		p.states[i].accumGrads = accumGrads
	}
	return p
}

func (n *Network) putPass(p *pass) {
	for i := range p.states {
		p.states[i].release()
	}
	n.passes.Put(p)
}

func (n *Network) forward(x *tensor.T, p *pass) *tensor.T {
	for i, l := range n.Layers {
		x = l.Forward(x, &p.states[i])
	}
	return x
}

func (n *Network) backward(g *tensor.T, p *pass) *tensor.T {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		g = n.Layers[i].Backward(g, &p.states[i])
	}
	return g
}

// Forward runs the full stack on a single sample or a batch and
// returns the logits tensor ([classes] or [N,classes]).
func (n *Network) Forward(x *tensor.T) *tensor.T {
	p := n.getPass(false)
	y := n.forward(x, p)
	n.putPass(p)
	return y
}

// Logits runs Forward on one sample and returns the logits as a plain
// slice. Together with LossGrad it satisfies the attack package's model
// interfaces.
func (n *Network) Logits(x *tensor.T) []float32 {
	return n.Forward(x).Data
}

// LogitsBatch runs the stack on a batch [N, sampleShape...] and
// returns the [N, classes] logits. Row r is bit-for-bit identical to
// Logits on sample r alone.
func (n *Network) LogitsBatch(xs *tensor.T) *tensor.T {
	return n.Forward(xs)
}

// Predict returns the argmax class for a single sample.
func (n *Network) Predict(x *tensor.T) int {
	return tensor.ArgMax(n.Logits(x))
}

// ForwardTrace runs the stack and returns every intermediate output
// (one per layer). Used by quantization calibration.
func (n *Network) ForwardTrace(x *tensor.T) []*tensor.T {
	p := n.getPass(false)
	outs := make([]*tensor.T, len(n.Layers))
	for i, l := range n.Layers {
		x = l.Forward(x, &p.states[i])
		outs[i] = x
	}
	n.putPass(p)
	return outs
}

// LossGrad computes the softmax cross-entropy loss for (x, label), and
// the gradient of that loss w.r.t. x. Weight gradients are NOT
// accumulated — the call is read-only on the network and safe for
// concurrent use (gradient attacks hammer this from many goroutines).
func (n *Network) LossGrad(x *tensor.T, label int) (float32, *tensor.T) {
	p := n.getPass(false)
	logits := n.forward(x, p)
	loss, dlogits := SoftmaxCE(logits.Data, label)
	g := n.backward(tensor.FromSlice(dlogits, logits.Shape...), p)
	n.putPass(p)
	return loss, g
}

// LossGradBatch is the batched LossGrad: xs is [N, sampleShape...],
// labels has length N. It returns the per-sample losses and the
// [N, sampleShape...] input gradient, each row bit-for-bit identical
// to the scalar LossGrad on that sample.
func (n *Network) LossGradBatch(xs *tensor.T, labels []int) ([]float32, *tensor.T) {
	p := n.getPass(false)
	logits := n.forward(xs, p)
	rows, classes := logits.Shape[0], logits.Shape[1]
	losses := make([]float32, rows)
	dlogits := tensor.New(rows, classes)
	for r := 0; r < rows; r++ {
		loss, dl := SoftmaxCE(logits.Data[r*classes:(r+1)*classes], labels[r])
		losses[r] = loss
		copy(dlogits.Data[r*classes:(r+1)*classes], dl)
	}
	g := n.backward(dlogits, p)
	n.putPass(p)
	return losses, g
}

// GradFromLogitsBatch backpropagates an externally supplied logits
// gradient: xs is [N, sampleShape...], dlogits is [N, classes], and
// the result is the [N, sampleShape...] gradient of
// sum_r <dlogits[r], logits(xs)[r]> w.r.t. xs. It is the BPDA
// surrogate-gradient hook of the adaptive EOT attack: the loss (and
// hence dlogits) comes from a non-differentiable victim — a quantized
// AxDNN configuration — while the backward pass runs through this
// float network. Like LossGradBatch it never touches the shared
// weight-gradient buffers, so concurrent calls on one Network are
// safe.
func (n *Network) GradFromLogitsBatch(xs, dlogits *tensor.T) *tensor.T {
	p := n.getPass(false)
	logits := n.forward(xs, p)
	if logits.Len() != dlogits.Len() {
		panic("nn: GradFromLogitsBatch dlogits shape does not match the network's logits")
	}
	g := n.backward(dlogits, p)
	n.putPass(p)
	return g
}

// AccumGrad runs a training pass for (x, label): forward, loss, and
// backward with weight gradients accumulated into the network's G
// buffers. Unlike LossGrad it mutates shared state, so concurrent
// training workers must call it on private Clones.
func (n *Network) AccumGrad(x *tensor.T, label int) float32 {
	p := n.getPass(true)
	logits := n.forward(x, p)
	loss, dlogits := SoftmaxCE(logits.Data, label)
	n.backward(tensor.FromSlice(dlogits, logits.Shape...), p)
	n.putPass(p)
	return loss
}

// WeightsFingerprint folds every parameter into a cheap FNV-style
// hash. Caches keyed by network identity combine it with the pointer
// so a network retrained in place never matches its pre-training
// entries.
func (n *Network) WeightsFingerprint() uint64 {
	const prime = 1099511628211
	var h uint64 = 14695981039346656037
	for _, p := range n.Params() {
		for _, w := range p.W {
			h ^= uint64(math.Float32bits(w))
			h *= prime
		}
	}
	return h
}

// Params returns all trainable parameters in layer order.
func (n *Network) Params() []Param {
	var ps []Param
	for _, l := range n.Layers {
		if pl, ok := l.(ParamLayer); ok {
			ps = append(ps, pl.Params()...)
		}
	}
	return ps
}

// ZeroGrads clears all gradient buffers.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		for i := range p.G {
			p.G[i] = 0
		}
	}
}

// Clone returns a network sharing weights with n but owning private
// weight-gradient buffers. It exists for data-parallel training
// (AccumGrad); inference and attacks never need it — the stateless
// forward/backward paths are already concurrency-safe on a shared
// Network.
func (n *Network) Clone() *Network {
	c := &Network{Name: n.Name, Layers: make([]Layer, len(n.Layers))}
	for i, l := range n.Layers {
		if pl, ok := l.(ParamLayer); ok {
			c.Layers[i] = pl.CloneForTraining()
		} else {
			// Stateless layers are shared as-is.
			c.Layers[i] = l
		}
	}
	return c
}

// DeepClone returns a network with private copies of every parameter
// (and fresh gradient buffers): retraining the clone — adversarial
// fine-tuning a hardened variant — never mutates the base network or
// invalidates caches keyed on its weights fingerprint. Stateless
// layers are shared as in Clone.
func (n *Network) DeepClone() *Network {
	c := &Network{Name: n.Name, Layers: make([]Layer, len(n.Layers))}
	for i, l := range n.Layers {
		if pl, ok := l.(ParamLayer); ok {
			c.Layers[i] = pl.CloneDetached()
		} else {
			c.Layers[i] = l
		}
	}
	return c
}

// SoftmaxCE returns the cross-entropy loss of logits against label and
// the gradient d loss / d logits (softmax(logits) minus one-hot).
func SoftmaxCE(logits []float32, label int) (float32, []float32) {
	maxv := logits[0]
	for _, v := range logits[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	probs := make([]float32, len(logits))
	for i, v := range logits {
		e := math.Exp(float64(v - maxv))
		probs[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range probs {
		probs[i] *= inv
	}
	loss := -float32(math.Log(math.Max(float64(probs[label]), 1e-12)))
	grad := probs
	grad[label] -= 1
	return loss, grad
}
