package nn

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// numericalInputGrad estimates d loss / d x by central differences.
func numericalInputGrad(n *Network, x *tensor.T, label int, i int) float64 {
	const h = 1e-3
	orig := x.Data[i]
	x.Data[i] = orig + h
	lp, _ := lossOnly(n, x, label)
	x.Data[i] = orig - h
	lm, _ := lossOnly(n, x, label)
	x.Data[i] = orig
	return (lp - lm) / (2 * h)
}

func lossOnly(n *Network, x *tensor.T, label int) (float64, []float32) {
	logits := n.Forward(x)
	loss, _ := SoftmaxCE(append([]float32(nil), logits.Data...), label)
	return float64(loss), logits.Data
}

func smallConvNet(seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	return &Network{
		Name: "test",
		Layers: []Layer{
			NewConv2D(2, 3, 3, 1, 1, rng),
			&ReLU{},
			NewAvgPool2D(2, 2),
			NewConv2D(3, 4, 3, 1, 0, rng),
			&ReLU{},
			&Flatten{},
			NewDense(4, 5, rng),
		},
	}
}

func randInput(shape []int, seed int64) *tensor.T {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(shape...)
	for i := range x.Data {
		x.Data[i] = rng.Float32()
	}
	return x
}

// TestInputGradientNumerically validates the full backward pass through
// conv, relu, pool, flatten, and dense layers against finite
// differences — the correctness bedrock for every gradient attack.
func TestInputGradientNumerically(t *testing.T) {
	net := smallConvNet(1)
	x := randInput([]int{2, 6, 6}, 2)
	_, grad := net.LossGrad(x, 3)
	for _, i := range []int{0, 7, 35, 50, 71} {
		num := numericalInputGrad(net, x, 3, i)
		got := float64(grad.Data[i])
		if math.Abs(num-got) > 1e-2*math.Max(1, math.Abs(num)) {
			t.Errorf("input grad[%d]: analytic %.6f vs numeric %.6f", i, got, num)
		}
	}
}

// TestWeightGradientNumerically validates weight gradients for conv and
// dense layers by finite differences. Training passes accumulate via
// AccumGrad; plain LossGrad must leave the buffers untouched.
func TestWeightGradientNumerically(t *testing.T) {
	net := smallConvNet(3)
	x := randInput([]int{2, 6, 6}, 4)
	net.ZeroGrads()
	net.AccumGrad(x, 1)
	params := net.Params()
	const h = 1e-3
	for pi, p := range params {
		for _, wi := range []int{0, len(p.W) / 2, len(p.W) - 1} {
			orig := p.W[wi]
			p.W[wi] = orig + float32(h)
			lp, _ := lossOnly(net, x, 1)
			p.W[wi] = orig - float32(h)
			lm, _ := lossOnly(net, x, 1)
			p.W[wi] = orig
			num := (lp - lm) / (2 * h)
			got := float64(p.G[wi])
			if math.Abs(num-got) > 1e-2*math.Max(1, math.Abs(num)) {
				t.Errorf("param %d grad[%d]: analytic %.6f vs numeric %.6f", pi, wi, got, num)
			}
		}
	}
}

func TestSoftmaxCEProperties(t *testing.T) {
	logits := []float32{1, 2, 3}
	loss, grad := SoftmaxCE(append([]float32(nil), logits...), 2)
	if loss <= 0 {
		t.Fatal("loss must be positive")
	}
	var s float32
	for _, g := range grad {
		s += g
	}
	if math.Abs(float64(s)) > 1e-5 {
		t.Fatalf("softmax CE gradient must sum to 0, got %f", s)
	}
	if grad[2] >= 0 {
		t.Fatal("gradient at the true label must be negative")
	}
}

func TestSoftmaxCEStability(t *testing.T) {
	loss, _ := SoftmaxCE([]float32{1000, -1000}, 0)
	if math.IsNaN(float64(loss)) || math.IsInf(float64(loss), 0) {
		t.Fatal("softmax must be stable for large logits")
	}
}

func TestConvOutputShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D(1, 6, 5, 1, 2, rng)
	y := c.Forward(tensor.New(1, 28, 28), &State{})
	if y.Shape[0] != 6 || y.Shape[1] != 28 || y.Shape[2] != 28 {
		t.Fatalf("conv output shape %v", y.Shape)
	}
	c2 := NewConv2D(1, 2, 5, 1, 0, rng)
	y2 := c2.Forward(tensor.New(1, 28, 28), &State{})
	if y2.Shape[1] != 24 {
		t.Fatalf("no-pad conv output %v", y2.Shape)
	}
	yb := c.Forward(tensor.New(3, 1, 28, 28), &State{})
	if len(yb.Shape) != 4 || yb.Shape[0] != 3 || yb.Shape[1] != 6 {
		t.Fatalf("batched conv output shape %v", yb.Shape)
	}
}

func TestConvRejectsWrongChannels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D(3, 4, 3, 1, 1, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("conv must panic on channel mismatch")
		}
	}()
	c.Forward(tensor.New(1, 8, 8), &State{})
}

func TestAvgPool(t *testing.T) {
	p := NewAvgPool2D(2, 0)
	st := &State{}
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	y := p.Forward(x, st)
	if y.Len() != 1 || y.Data[0] != 2.5 {
		t.Fatalf("avgpool got %v", y.Data)
	}
	dy := tensor.FromSlice([]float32{4}, 1, 1, 1)
	dx := p.Backward(dy, st)
	for _, v := range dx.Data {
		if v != 1 {
			t.Fatalf("avgpool backward %v", dx.Data)
		}
	}
}

func TestReLU(t *testing.T) {
	r := &ReLU{}
	st := &State{}
	x := tensor.FromSlice([]float32{-1, 2}, 2)
	y := r.Forward(x, st)
	if y.Data[0] != 0 || y.Data[1] != 2 {
		t.Fatal("relu forward wrong")
	}
	dx := r.Backward(tensor.FromSlice([]float32{5, 5}, 2), st)
	if dx.Data[0] != 0 || dx.Data[1] != 5 {
		t.Fatal("relu backward wrong")
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := &Flatten{}
	st := &State{}
	y := f.Forward(tensor.New(2, 3, 4), st)
	if len(y.Shape) != 1 || y.Len() != 24 {
		t.Fatal("flatten forward wrong")
	}
	dx := f.Backward(tensor.New(24), st)
	if len(dx.Shape) != 3 || dx.Shape[0] != 2 {
		t.Fatal("flatten backward shape wrong")
	}
	// Batched round trip keeps the leading sample dimension.
	yb := f.Forward(tensor.New(5, 2, 3, 4), st)
	if len(yb.Shape) != 2 || yb.Shape[0] != 5 || yb.Shape[1] != 24 {
		t.Fatalf("batched flatten forward %v", yb.Shape)
	}
	dxb := f.Backward(tensor.New(5, 24), st)
	if len(dxb.Shape) != 4 || dxb.Shape[0] != 5 {
		t.Fatalf("batched flatten backward %v", dxb.Shape)
	}
}

func TestCloneSharesWeightsNotGrads(t *testing.T) {
	net := smallConvNet(5)
	c := net.Clone()
	// Same weight storage.
	if &net.Params()[0].W[0] != &c.Params()[0].W[0] {
		t.Fatal("clone must share weights")
	}
	// Different gradient storage: training on the clone stays private.
	x := randInput([]int{2, 6, 6}, 6)
	c.AccumGrad(x, 0)
	var orig float32
	for _, g := range net.Params()[0].G {
		orig += g * g
	}
	if orig != 0 {
		t.Fatal("clone training pass leaked into master grads")
	}
	var cloned float32
	for _, g := range c.Params()[0].G {
		cloned += g * g
	}
	if cloned == 0 {
		t.Fatal("AccumGrad on the clone accumulated nothing")
	}
}

// TestLossGradLeavesWeightGradsUntouched pins the statelessness
// contract attacks rely on: LossGrad computes input gradients without
// writing to the shared weight-gradient buffers.
func TestLossGradLeavesWeightGradsUntouched(t *testing.T) {
	net := smallConvNet(5)
	net.ZeroGrads()
	x := randInput([]int{2, 6, 6}, 6)
	net.LossGrad(x, 0)
	for _, p := range net.Params() {
		for _, g := range p.G {
			if g != 0 {
				t.Fatal("LossGrad accumulated weight gradients")
			}
		}
	}
}

// TestSharedNetworkConcurrentForward exercises the stateless design:
// many goroutines call Forward and LossGrad on ONE shared network (no
// clones) and must all see identical results.
func TestSharedNetworkConcurrentForward(t *testing.T) {
	net := smallConvNet(7)
	x := randInput([]int{2, 6, 6}, 8)
	want := append([]float32(nil), net.Logits(x)...)
	_, wantGrad := net.LossGrad(x, 1)
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func() {
			out := append([]float32(nil), net.Logits(x)...)
			for j := range want {
				if out[j] != want[j] {
					done <- errors.New("concurrent shared forward diverged")
					return
				}
			}
			_, g := net.LossGrad(x, 1)
			for j := range wantGrad.Data {
				if g.Data[j] != wantGrad.Data[j] {
					done <- errors.New("concurrent shared LossGrad diverged")
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestIm2colCol2imAdjoint(t *testing.T) {
	// col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>.
	rng := rand.New(rand.NewSource(9))
	inC, h, w, k, stride, pad := 2, 5, 5, 3, 1, 1
	outH := (h+2*pad-k)/stride + 1
	outW := (w+2*pad-k)/stride + 1
	nCols := inC * k * k * outH * outW
	x := make([]float32, inC*h*w)
	y := make([]float32, nCols)
	for i := range x {
		x[i] = rng.Float32()
	}
	for i := range y {
		y[i] = rng.Float32()
	}
	cols := make([]float32, nCols)
	Im2col(x, inC, h, w, k, stride, pad, cols)
	var lhs float64
	for i := range cols {
		lhs += float64(cols[i]) * float64(y[i])
	}
	xt := make([]float32, len(x))
	Col2im(y, inC, h, w, k, stride, pad, xt)
	var rhs float64
	for i := range x {
		rhs += float64(x[i]) * float64(xt[i])
	}
	if math.Abs(lhs-rhs) > 1e-3 {
		t.Fatalf("adjoint identity violated: %f vs %f", lhs, rhs)
	}
}

func TestPredictMatchesArgmaxLogits(t *testing.T) {
	net := smallConvNet(11)
	x := randInput([]int{2, 6, 6}, 12)
	if net.Predict(x) != tensor.ArgMax(net.Logits(x)) {
		t.Fatal("Predict disagrees with Logits argmax")
	}
}

// TestDeepCloneDetachesWeights: mutating a DeepClone's weights must
// leave the base network (and its fingerprint) untouched — the
// contract hardened derived models rely on.
func TestDeepCloneDetachesWeights(t *testing.T) {
	base := smallConvNet(21)
	fp := base.WeightsFingerprint()
	x := randInput([]int{2, 6, 6}, 22)
	want := append([]float32(nil), base.Logits(x)...)

	c := base.DeepClone()
	got := c.Logits(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("DeepClone changed the forward pass")
		}
	}
	for _, p := range c.Params() {
		for i := range p.W {
			p.W[i] += 1
		}
	}
	if base.WeightsFingerprint() != fp {
		t.Fatal("mutating a DeepClone's weights changed the base fingerprint")
	}
	after := base.Logits(x)
	for i := range want {
		if after[i] != want[i] {
			t.Fatal("mutating a DeepClone's weights changed the base network")
		}
	}
	if c.WeightsFingerprint() == fp {
		t.Fatal("clone fingerprint did not track its own mutation")
	}
}

// TestGradFromLogitsBatchMatchesLossGradBatch: feeding SoftmaxCE's own
// dlogits through GradFromLogitsBatch must reproduce LossGradBatch bit
// for bit — the identity that makes it a faithful BPDA backward hook.
func TestGradFromLogitsBatchMatchesLossGradBatch(t *testing.T) {
	net := smallConvNet(31)
	xs := randInput([]int{3, 2, 6, 6}, 32)
	labels := []int{1, 4, 0}
	_, want := net.LossGradBatch(xs, labels)

	logits := net.LogitsBatch(xs)
	classes := logits.Shape[1]
	dlogits := tensor.New(3, classes)
	for r := 0; r < 3; r++ {
		_, dl := SoftmaxCE(append([]float32(nil), logits.Data[r*classes:(r+1)*classes]...), labels[r])
		copy(dlogits.Data[r*classes:(r+1)*classes], dl)
	}
	got := net.GradFromLogitsBatch(xs, dlogits)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("grad[%d]: GradFromLogitsBatch %v != LossGradBatch %v", i, got.Data[i], want.Data[i])
		}
	}
}
