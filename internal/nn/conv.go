package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution (cross-correlation) layer over [C,H,W]
// samples or [N,C,H,W] batches, implemented with im2col: the forward
// pass unrolls the whole batch into a [N, InC*K*K, outH*outW] column
// buffer and runs one GEMM per sample over it, and the backward pass
// reuses the same columns.
type Conv2D struct {
	InC, OutC, K, Stride, Pad int

	W []float32 // [OutC][InC*K*K]
	B []float32 // [OutC]

	GW []float32
	GB []float32
}

// NewConv2D creates a conv layer with He-uniform initialised weights.
func NewConv2D(inC, outC, k, stride, pad int, rng *rand.Rand) *Conv2D {
	c := &Conv2D{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		W:  make([]float32, outC*inC*k*k),
		B:  make([]float32, outC),
		GW: make([]float32, outC*inC*k*k),
		GB: make([]float32, outC),
	}
	bound := float32(math.Sqrt(6.0 / float64(inC*k*k)))
	for i := range c.W {
		c.W[i] = (rng.Float32()*2 - 1) * bound
	}
	return c
}

// OutSize returns the spatial output size for an input of h x w.
func (c *Conv2D) OutSize(h, w int) (int, int) {
	oh := (h+2*c.Pad-c.K)/c.Stride + 1
	ow := (w+2*c.Pad-c.K)/c.Stride + 1
	return oh, ow
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.T, st *State) *tensor.T {
	n, sample := batchDims(x, 3)
	if len(sample) != 3 || sample[0] != c.InC {
		panic(fmt.Sprintf("nn: Conv2D expects [%d,H,W] or [N,%d,H,W], got %v", c.InC, c.InC, x.Shape))
	}
	inH, inW := sample[1], sample[2]
	outH, outW := c.OutSize(inH, inW)
	p := outH * outW
	kk := c.InC * c.K * c.K
	st.x = x
	if cap(st.cols) < n*kk*p {
		st.cols = make([]float32, n*kk*p)
	}
	st.cols = st.cols[:n*kk*p]

	var y *tensor.T
	if len(x.Shape) == 4 {
		y = tensor.New(n, c.OutC, outH, outW)
	} else {
		y = tensor.New(c.OutC, outH, outW)
	}
	inStride := c.InC * inH * inW
	for s := 0; s < n; s++ {
		cols := st.cols[s*kk*p : (s+1)*kk*p]
		Im2col(x.Data[s*inStride:(s+1)*inStride], c.InC, inH, inW, c.K, c.Stride, c.Pad, cols)
		yd := y.Data[s*c.OutC*p : (s+1)*c.OutC*p]
		for oc := 0; oc < c.OutC; oc++ {
			w := c.W[oc*kk : (oc+1)*kk]
			out := yd[oc*p : (oc+1)*p]
			for q := 0; q < kk; q++ {
				wq := w[q]
				if wq == 0 {
					continue
				}
				col := cols[q*p : (q+1)*p]
				for i, v := range col {
					out[i] += wq * v
				}
			}
			bias := c.B[oc]
			for i := range out {
				out[i] += bias
			}
		}
	}
	return y
}

// Backward implements Layer.
func (c *Conv2D) Backward(dy *tensor.T, st *State) *tensor.T {
	x := st.x
	n, sample := batchDims(x, 3)
	inH, inW := sample[1], sample[2]
	outH, outW := c.OutSize(inH, inW)
	p := outH * outW
	kk := c.InC * c.K * c.K

	if cap(st.dcols) < kk*p {
		st.dcols = make([]float32, kk*p)
	}
	dcols := st.dcols[:kk*p]

	var dx *tensor.T
	if len(x.Shape) == 4 {
		dx = tensor.New(n, c.InC, inH, inW)
	} else {
		dx = tensor.New(c.InC, inH, inW)
	}
	inStride := c.InC * inH * inW
	for s := 0; s < n; s++ {
		cols := st.cols[s*kk*p : (s+1)*kk*p]
		dyd := dy.Data[s*c.OutC*p : (s+1)*c.OutC*p]
		if st.accumGrads {
			for oc := 0; oc < c.OutC; oc++ {
				d := dyd[oc*p : (oc+1)*p]
				gw := c.GW[oc*kk : (oc+1)*kk]
				for q := 0; q < kk; q++ {
					col := cols[q*p : (q+1)*p]
					var sum float32
					for i, v := range col {
						sum += d[i] * v
					}
					gw[q] += sum
				}
				var sb float32
				for _, v := range d {
					sb += v
				}
				c.GB[oc] += sb
			}
		}
		// Input gradient via dcols = W^T dy, then col2im.
		for i := range dcols {
			dcols[i] = 0
		}
		for oc := 0; oc < c.OutC; oc++ {
			d := dyd[oc*p : (oc+1)*p]
			w := c.W[oc*kk : (oc+1)*kk]
			for q := 0; q < kk; q++ {
				wq := w[q]
				if wq == 0 {
					continue
				}
				dst := dcols[q*p : (q+1)*p]
				for i, v := range d {
					dst[i] += wq * v
				}
			}
		}
		Col2im(dcols, c.InC, inH, inW, c.K, c.Stride, c.Pad, dx.Data[s*inStride:(s+1)*inStride])
	}
	return dx
}

// Params implements ParamLayer.
func (c *Conv2D) Params() []Param {
	return []Param{{Name: "W", W: c.W, G: c.GW}, {Name: "B", W: c.B, G: c.GB}}
}

// CloneForTraining implements ParamLayer: shares W/B, fresh gradients.
func (c *Conv2D) CloneForTraining() Layer {
	return &Conv2D{
		InC: c.InC, OutC: c.OutC, K: c.K, Stride: c.Stride, Pad: c.Pad,
		W: c.W, B: c.B,
		GW: make([]float32, len(c.GW)),
		GB: make([]float32, len(c.GB)),
	}
}

// CloneDetached implements ParamLayer: private copies of W/B, fresh
// gradients.
func (c *Conv2D) CloneDetached() Layer {
	return &Conv2D{
		InC: c.InC, OutC: c.OutC, K: c.K, Stride: c.Stride, Pad: c.Pad,
		W:  append([]float32(nil), c.W...),
		B:  append([]float32(nil), c.B...),
		GW: make([]float32, len(c.GW)),
		GB: make([]float32, len(c.GB)),
	}
}

// Im2col unrolls conv receptive fields into columns:
// cols[(ci*K*K + ki*K + kj)*P + p] = x[ci, i, j] for output pixel p.
// Out-of-bounds (padding) positions contribute zero.
func Im2col(x []float32, inC, h, w, k, stride, pad int, cols []float32) {
	outH := (h+2*pad-k)/stride + 1
	outW := (w+2*pad-k)/stride + 1
	p := outH * outW
	for ci := 0; ci < inC; ci++ {
		base := ci * h * w
		for ki := 0; ki < k; ki++ {
			for kj := 0; kj < k; kj++ {
				row := ((ci*k+ki)*k + kj) * p
				idx := 0
				for oi := 0; oi < outH; oi++ {
					ii := oi*stride + ki - pad
					if ii < 0 || ii >= h {
						for oj := 0; oj < outW; oj++ {
							cols[row+idx] = 0
							idx++
						}
						continue
					}
					rowBase := base + ii*w
					for oj := 0; oj < outW; oj++ {
						jj := oj*stride + kj - pad
						if jj < 0 || jj >= w {
							cols[row+idx] = 0
						} else {
							cols[row+idx] = x[rowBase+jj]
						}
						idx++
					}
				}
			}
		}
	}
}

// Col2im scatters column gradients back to the input layout, summing
// overlapping contributions. dst must be zeroed by the caller (a fresh
// tensor.New suffices).
func Col2im(cols []float32, inC, h, w, k, stride, pad int, dst []float32) {
	outH := (h+2*pad-k)/stride + 1
	outW := (w+2*pad-k)/stride + 1
	p := outH * outW
	for ci := 0; ci < inC; ci++ {
		base := ci * h * w
		for ki := 0; ki < k; ki++ {
			for kj := 0; kj < k; kj++ {
				row := ((ci*k+ki)*k + kj) * p
				idx := 0
				for oi := 0; oi < outH; oi++ {
					ii := oi*stride + ki - pad
					if ii < 0 || ii >= h {
						idx += outW
						continue
					}
					rowBase := base + ii*w
					for oj := 0; oj < outW; oj++ {
						jj := oj*stride + kj - pad
						if jj >= 0 && jj < w {
							dst[rowBase+jj] += cols[row+idx]
						}
						idx++
					}
				}
			}
		}
	}
}
