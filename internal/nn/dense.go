package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Dense is a fully connected layer over flat [N] tensors.
type Dense struct {
	In, Out int

	W []float32 // [Out][In]
	B []float32

	GW []float32
	GB []float32

	x *tensor.T
}

// NewDense creates a dense layer with He-uniform initialised weights.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out,
		W:  make([]float32, out*in),
		B:  make([]float32, out),
		GW: make([]float32, out*in),
		GB: make([]float32, out),
	}
	bound := float32(math.Sqrt(6.0 / float64(in)))
	for i := range d.W {
		d.W[i] = (rng.Float32()*2 - 1) * bound
	}
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.T) *tensor.T {
	if x.Len() != d.In {
		panic(fmt.Sprintf("nn: Dense expects %d inputs, got shape %v", d.In, x.Shape))
	}
	d.x = x
	y := tensor.New(d.Out)
	for o := 0; o < d.Out; o++ {
		w := d.W[o*d.In : (o+1)*d.In]
		var s float32
		for i, v := range x.Data {
			s += w[i] * v
		}
		y.Data[o] = s + d.B[o]
	}
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(dy *tensor.T) *tensor.T {
	dx := tensor.New(d.In)
	for o := 0; o < d.Out; o++ {
		g := dy.Data[o]
		d.GB[o] += g
		if g == 0 {
			continue
		}
		w := d.W[o*d.In : (o+1)*d.In]
		gw := d.GW[o*d.In : (o+1)*d.In]
		for i, v := range d.x.Data {
			gw[i] += g * v
			dx.Data[i] += g * w[i]
		}
	}
	return dx
}

// Params implements ParamLayer.
func (d *Dense) Params() []Param {
	return []Param{{Name: "W", W: d.W, G: d.GW}, {Name: "B", W: d.B, G: d.GB}}
}

// Clone implements Layer.
func (d *Dense) Clone() Layer {
	return &Dense{
		In: d.In, Out: d.Out, W: d.W, B: d.B,
		GW: make([]float32, len(d.GW)),
		GB: make([]float32, len(d.GB)),
	}
}
