package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Dense is a fully connected layer over flat [In] samples or [N,In]
// batches.
type Dense struct {
	In, Out int

	W []float32 // [Out][In]
	B []float32

	GW []float32
	GB []float32
}

// NewDense creates a dense layer with He-uniform initialised weights.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out,
		W:  make([]float32, out*in),
		B:  make([]float32, out),
		GW: make([]float32, out*in),
		GB: make([]float32, out),
	}
	bound := float32(math.Sqrt(6.0 / float64(in)))
	for i := range d.W {
		d.W[i] = (rng.Float32()*2 - 1) * bound
	}
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.T, st *State) *tensor.T {
	n, sample := batchDims(x, 1)
	if len(sample) != 1 || sample[0] != d.In {
		panic(fmt.Sprintf("nn: Dense expects %d inputs, got shape %v", d.In, x.Shape))
	}
	st.x = x
	var y *tensor.T
	if len(x.Shape) == 2 {
		y = tensor.New(n, d.Out)
	} else {
		y = tensor.New(d.Out)
	}
	for s := 0; s < n; s++ {
		xd := x.Data[s*d.In : (s+1)*d.In]
		yd := y.Data[s*d.Out : (s+1)*d.Out]
		for o := 0; o < d.Out; o++ {
			w := d.W[o*d.In : (o+1)*d.In]
			var sum float32
			for i, v := range xd {
				sum += w[i] * v
			}
			yd[o] = sum + d.B[o]
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(dy *tensor.T, st *State) *tensor.T {
	x := st.x
	n, _ := batchDims(x, 1)
	var dx *tensor.T
	if len(x.Shape) == 2 {
		dx = tensor.New(n, d.In)
	} else {
		dx = tensor.New(d.In)
	}
	for s := 0; s < n; s++ {
		xd := x.Data[s*d.In : (s+1)*d.In]
		dxd := dx.Data[s*d.In : (s+1)*d.In]
		dyd := dy.Data[s*d.Out : (s+1)*d.Out]
		for o := 0; o < d.Out; o++ {
			g := dyd[o]
			if st.accumGrads {
				d.GB[o] += g
			}
			if g == 0 {
				continue
			}
			w := d.W[o*d.In : (o+1)*d.In]
			if st.accumGrads {
				gw := d.GW[o*d.In : (o+1)*d.In]
				for i, v := range xd {
					gw[i] += g * v
					dxd[i] += g * w[i]
				}
			} else {
				for i := range dxd {
					dxd[i] += g * w[i]
				}
			}
		}
	}
	return dx
}

// Params implements ParamLayer.
func (d *Dense) Params() []Param {
	return []Param{{Name: "W", W: d.W, G: d.GW}, {Name: "B", W: d.B, G: d.GB}}
}

// CloneForTraining implements ParamLayer.
func (d *Dense) CloneForTraining() Layer {
	return &Dense{
		In: d.In, Out: d.Out, W: d.W, B: d.B,
		GW: make([]float32, len(d.GW)),
		GB: make([]float32, len(d.GB)),
	}
}

// CloneDetached implements ParamLayer: private copies of W/B, fresh
// gradients.
func (d *Dense) CloneDetached() Layer {
	return &Dense{
		In: d.In, Out: d.Out,
		W:  append([]float32(nil), d.W...),
		B:  append([]float32(nil), d.B...),
		GW: make([]float32, len(d.GW)),
		GB: make([]float32, len(d.GB)),
	}
}
