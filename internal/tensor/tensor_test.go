package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapes(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d", x.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New with non-positive dim must panic")
		}
	}()
	New(2, 0)
}

func TestFromSliceValidation(t *testing.T) {
	FromSlice(make([]float32, 6), 2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong volume must panic")
		}
	}()
	FromSlice(make([]float32, 5), 2, 3)
}

func TestCloneIndependent(t *testing.T) {
	a := New(4)
	a.Fill(1)
	b := a.Clone()
	b.Data[0] = 9
	if a.Data[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := New(2, 3)
	v := a.Reshape(6)
	v.Data[5] = 7
	if a.Data[5] != 7 {
		t.Fatal("Reshape must share data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reshape volume mismatch must panic")
		}
	}()
	a.Reshape(4)
}

func TestAddScaledAndScale(t *testing.T) {
	a := New(3)
	b := New(3)
	b.Fill(2)
	a.AddScaled(0.5, b)
	for _, v := range a.Data {
		if v != 1 {
			t.Fatalf("AddScaled got %f", v)
		}
	}
	a.Scale(4)
	if a.Data[0] != 4 {
		t.Fatal("Scale wrong")
	}
}

func TestClamp(t *testing.T) {
	a := FromSlice([]float32{-1, 0.5, 2}, 3)
	a.Clamp(0, 1)
	if a.Data[0] != 0 || a.Data[1] != 0.5 || a.Data[2] != 1 {
		t.Fatalf("Clamp got %v", a.Data)
	}
}

func TestNorms(t *testing.T) {
	a := FromSlice([]float32{3, -4}, 2)
	if math.Abs(a.L2Norm()-5) > 1e-9 {
		t.Fatalf("L2 = %f", a.L2Norm())
	}
	if a.LinfNorm() != 4 {
		t.Fatalf("Linf = %f", a.LinfNorm())
	}
}

func TestSign(t *testing.T) {
	a := FromSlice([]float32{-3, 0, 7}, 3)
	a.Sign()
	if a.Data[0] != -1 || a.Data[1] != 0 || a.Data[2] != 1 {
		t.Fatalf("Sign got %v", a.Data)
	}
}

func TestSub(t *testing.T) {
	a := FromSlice([]float32{5, 7}, 2)
	b := FromSlice([]float32{2, 3}, 2)
	c := Sub(a, b)
	if c.Data[0] != 3 || c.Data[1] != 4 {
		t.Fatalf("Sub got %v", c.Data)
	}
}

// TestProjectL2 verifies the projection property: after projection the
// distance is min(eps, original distance), and direction is preserved.
func TestProjectL2(t *testing.T) {
	f := func(seed int64) bool {
		x := FromSlice([]float32{float32(seed%7) - 3, 2, -1}, 3)
		c := New(3)
		before := Sub(x, c).L2Norm()
		ProjectL2(x, c, 1.5)
		after := Sub(x, c).L2Norm()
		want := math.Min(before, 1.5)
		return math.Abs(after-want) < 1e-5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProjectL2InsideBallUntouched(t *testing.T) {
	x := FromSlice([]float32{0.1, 0.1}, 2)
	c := New(2)
	ProjectL2(x, c, 10)
	if x.Data[0] != 0.1 {
		t.Fatal("projection moved a point already inside the ball")
	}
}

func TestProjectLinf(t *testing.T) {
	x := FromSlice([]float32{0.9, -0.9, 0.05}, 3)
	c := New(3)
	ProjectLinf(x, c, 0.1)
	if x.Data[0] != 0.1 || x.Data[1] != -0.1 || x.Data[2] != 0.05 {
		t.Fatalf("ProjectLinf got %v", x.Data)
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax([]float32{1, 5, 3}) != 1 {
		t.Fatal("ArgMax wrong")
	}
	if ArgMax([]float32{-2, -1, -3}) != 1 {
		t.Fatal("ArgMax negative values wrong")
	}
}

func TestSameShape(t *testing.T) {
	if !New(2, 3).SameShape(New(2, 3)) {
		t.Fatal("SameShape false negative")
	}
	if New(2, 3).SameShape(New(3, 2)) {
		t.Fatal("SameShape false positive")
	}
	if New(6).SameShape(New(2, 3)) {
		t.Fatal("SameShape rank mismatch")
	}
}

func TestStackAndRowViews(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	b := FromSlice([]float32{5, 6, 7, 8}, 1, 2, 2)
	s := Stack([]*T{a, b})
	if len(s.Shape) != 4 || s.Shape[0] != 2 || s.Rows() != 2 || s.RowLen() != 4 {
		t.Fatalf("Stack shape %v", s.Shape)
	}
	r1 := s.Row(1)
	if len(r1.Shape) != 3 || r1.Data[0] != 5 {
		t.Fatalf("Row(1) = %v %v", r1.Shape, r1.Data)
	}
	// Row is a view: writes reach the batch.
	r1.Data[0] = 50
	if s.Data[4] != 50 {
		t.Fatal("Row must share storage")
	}
	v := s.RowView(1, 2)
	if v.Rows() != 1 || v.Data[0] != 50 {
		t.Fatalf("RowView = %v %v", v.Shape, v.Data)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Stack with mismatched sample sizes must panic")
		}
	}()
	Stack([]*T{a, New(3)})
}

func TestArgMaxRows(t *testing.T) {
	s := FromSlice([]float32{0, 9, 1, 7, 2, 3}, 2, 3)
	got := ArgMaxRows(s)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgMaxRows = %v", got)
	}
}

// TestRowOpsMatchScalar pins the batched/scalar parity contract: every
// *Rows helper must produce bit-identical results to applying the
// scalar operation to each row.
func TestRowOpsMatchScalar(t *testing.T) {
	batch := FromSlice([]float32{3, -4, 0, 0.6, -0.8, 0.1}, 2, 3)
	center := FromSlice([]float32{0, 0, 0, 0.5, -0.5, 0}, 2, 3)

	l2 := L2NormRows(batch)
	linf := LinfNormRows(batch)
	for r := 0; r < 2; r++ {
		if l2[r] != batch.Row(r).L2Norm() {
			t.Fatalf("L2NormRows[%d] = %v, scalar %v", r, l2[r], batch.Row(r).L2Norm())
		}
		if linf[r] != batch.Row(r).LinfNorm() {
			t.Fatalf("LinfNormRows[%d] mismatch", r)
		}
	}

	bl2, sl2 := batch.Clone(), batch.Clone()
	ProjectL2Rows(bl2, center, 0.25)
	for r := 0; r < 2; r++ {
		ProjectL2(sl2.Row(r), center.Row(r), 0.25)
	}
	for i := range bl2.Data {
		if bl2.Data[i] != sl2.Data[i] {
			t.Fatalf("ProjectL2Rows diverged from scalar at %d", i)
		}
	}

	bli, sli := batch.Clone(), batch.Clone()
	ProjectLinfRows(bli, center, 0.25)
	for r := 0; r < 2; r++ {
		ProjectLinf(sli.Row(r), center.Row(r), 0.25)
	}
	for i := range bli.Data {
		if bli.Data[i] != sli.Data[i] {
			t.Fatalf("ProjectLinfRows diverged from scalar at %d", i)
		}
	}
}
