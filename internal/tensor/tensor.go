// Package tensor provides the small dense float32 tensor used across the
// DNN stack: row-major storage, explicit shapes, and the vector
// operations the adversarial attacks need (norms, projections, clamps).
//
// Batch convention: a batched tensor packs N samples along a leading
// dimension — [N, C, H, W] for images, [N, F] for flat vectors. Row
// accessors (Row, RowView) return views sharing the underlying storage,
// and the *Rows helpers apply the corresponding per-sample operation to
// every row with the same element order as the scalar operation, so
// batched and per-sample code paths agree bit for bit.
package tensor

import (
	"fmt"
	"math"
)

// T is a dense row-major float32 tensor.
type T struct {
	Shape []int
	Data  []float32
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *T {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("tensor: invalid dim %d in %v", s, shape))
		}
		n *= s
	}
	return &T{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape, without copying.
// len(data) must equal the shape volume.
func FromSlice(data []float32, shape ...int) *T {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data len %d != shape %v", len(data), shape))
	}
	return &T{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the number of elements.
func (t *T) Len() int { return len(t.Data) }

// Clone returns a deep copy.
func (t *T) Clone() *T {
	c := &T{Shape: append([]int(nil), t.Shape...), Data: make([]float32, len(t.Data))}
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view with a new shape of equal volume (shared data).
func (t *T) Reshape(shape ...int) *T {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: reshape %v -> %v volume mismatch", t.Shape, shape))
	}
	return &T{Shape: append([]int(nil), shape...), Data: t.Data}
}

// SameShape reports whether t and o have identical shapes.
func (t *T) SameShape(o *T) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Fill sets every element to v.
func (t *T) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// AddScaled adds alpha*o elementwise into t (t += alpha*o).
func (t *T) AddScaled(alpha float32, o *T) {
	for i, v := range o.Data {
		t.Data[i] += alpha * v
	}
}

// Scale multiplies every element by alpha.
func (t *T) Scale(alpha float32) {
	for i := range t.Data {
		t.Data[i] *= alpha
	}
}

// Clamp limits every element into [lo, hi]. Adversarial examples are
// clamped to the valid image box [0,1] after every perturbation step.
func (t *T) Clamp(lo, hi float32) {
	for i, v := range t.Data {
		if v < lo {
			t.Data[i] = lo
		} else if v > hi {
			t.Data[i] = hi
		}
	}
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *T) L2Norm() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// L1Norm returns the sum-abs norm of the flattened tensor.
func (t *T) L1Norm() float64 {
	var s float64
	for _, v := range t.Data {
		s += math.Abs(float64(v))
	}
	return s
}

// LinfNorm returns the max-abs norm of the flattened tensor.
func (t *T) LinfNorm() float64 {
	var m float64
	for _, v := range t.Data {
		if a := math.Abs(float64(v)); a > m {
			m = a
		}
	}
	return m
}

// Sign replaces every element by its sign (-1, 0, +1).
func (t *T) Sign() {
	for i, v := range t.Data {
		switch {
		case v > 0:
			t.Data[i] = 1
		case v < 0:
			t.Data[i] = -1
		default:
			t.Data[i] = 0
		}
	}
}

// Sub returns a-b as a new tensor (shapes must match).
func Sub(a, b *T) *T {
	if !a.SameShape(b) {
		panic("tensor: Sub shape mismatch")
	}
	c := a.Clone()
	for i, v := range b.Data {
		c.Data[i] -= v
	}
	return c
}

// ProjectL2 rescales (t - center) so its L2 norm is at most eps,
// leaving t unchanged if it is already inside the ball.
func ProjectL2(t, center *T, eps float64) {
	d := Sub(t, center)
	n := d.L2Norm()
	if n <= eps || n == 0 {
		return
	}
	scale := float32(eps / n)
	for i := range t.Data {
		t.Data[i] = center.Data[i] + d.Data[i]*scale
	}
}

// ProjectLinf clips (t - center) elementwise into [-eps, eps].
func ProjectLinf(t, center *T, eps float64) {
	e := float32(eps)
	for i := range t.Data {
		d := t.Data[i] - center.Data[i]
		if d > e {
			d = e
		} else if d < -e {
			d = -e
		}
		t.Data[i] = center.Data[i] + d
	}
}

// ArgMax returns the index of the largest element of v.
func ArgMax(v []float32) int {
	best, bi := float32(math.Inf(-1)), 0
	for i, x := range v {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}

// Stack copies the given same-shaped samples into one fresh batched
// tensor of shape [len(xs), sampleShape...].
func Stack(xs []*T) *T {
	if len(xs) == 0 {
		panic("tensor: Stack of empty sample list")
	}
	shape := append([]int{len(xs)}, xs[0].Shape...)
	b := New(shape...)
	stride := xs[0].Len()
	for i, x := range xs {
		if x.Len() != stride {
			panic(fmt.Sprintf("tensor: Stack sample %d has %d elements, want %d", i, x.Len(), stride))
		}
		copy(b.Data[i*stride:(i+1)*stride], x.Data)
	}
	return b
}

// Rows returns the leading (batch) dimension.
func (t *T) Rows() int { return t.Shape[0] }

// RowLen returns the number of elements per row (sample).
func (t *T) RowLen() int { return t.Len() / t.Shape[0] }

// Row returns a view of sample i with the per-sample shape, sharing
// storage with t.
func (t *T) Row(i int) *T {
	stride := t.RowLen()
	return &T{Shape: append([]int(nil), t.Shape[1:]...), Data: t.Data[i*stride : (i+1)*stride]}
}

// RowView returns rows [lo, hi) as a batched view sharing storage.
func (t *T) RowView(lo, hi int) *T {
	stride := t.RowLen()
	shape := append([]int{hi - lo}, t.Shape[1:]...)
	return &T{Shape: shape, Data: t.Data[lo*stride : hi*stride]}
}

// GatherRows copies the listed rows of a batched tensor into a fresh
// [len(rows), sampleShape...] batch, in list order. Randomized-victim
// evaluation uses it to regroup a batch by the pool member each row
// drew before scoring every group with one LogitsBatch call.
func GatherRows(t *T, rows []int) *T {
	out := New(append([]int{len(rows)}, t.Shape[1:]...)...)
	stride := t.RowLen()
	for i, r := range rows {
		copy(out.Data[i*stride:(i+1)*stride], t.Data[r*stride:(r+1)*stride])
	}
	return out
}

// ScatterRows copies row i of src into row rows[i] of dst — the
// inverse of GatherRows. Row lengths of src and dst must match.
func ScatterRows(dst, src *T, rows []int) {
	if src.Rows() != len(rows) {
		panic(fmt.Sprintf("tensor: ScatterRows of %d rows into %d slots", src.Rows(), len(rows)))
	}
	stride := dst.RowLen()
	if src.RowLen() != stride {
		panic(fmt.Sprintf("tensor: ScatterRows row length %d != %d", src.RowLen(), stride))
	}
	for i, r := range rows {
		copy(dst.Data[r*stride:(r+1)*stride], src.Data[i*stride:(i+1)*stride])
	}
}

// ArgMaxRows returns the per-row argmax of a batched tensor (for
// [N, classes] logits: the predicted class of every sample).
func ArgMaxRows(t *T) []int {
	n, stride := t.Rows(), t.RowLen()
	out := make([]int, n)
	for r := 0; r < n; r++ {
		out[r] = ArgMax(t.Data[r*stride : (r+1)*stride])
	}
	return out
}

// L2NormRows returns the per-row Euclidean norms of a batched tensor.
// Delegating to the scalar norm per row keeps the accumulation order
// identical by construction.
func L2NormRows(t *T) []float64 {
	out := make([]float64, t.Rows())
	for r := range out {
		out[r] = t.Row(r).L2Norm()
	}
	return out
}

// LinfNormRows returns the per-row max-abs norms of a batched tensor.
func LinfNormRows(t *T) []float64 {
	out := make([]float64, t.Rows())
	for r := range out {
		out[r] = t.Row(r).LinfNorm()
	}
	return out
}

// ProjectL2Rows applies ProjectL2 to every row of t around the matching
// row of center.
func ProjectL2Rows(t, center *T, eps float64) {
	if !t.SameShape(center) {
		panic("tensor: ProjectL2Rows shape mismatch")
	}
	for r := 0; r < t.Rows(); r++ {
		ProjectL2(t.Row(r), center.Row(r), eps)
	}
}

// ProjectLinfRows clips every row of t into the elementwise eps-box
// around center. The operation is elementwise, so the batched form is
// identical to per-row ProjectLinf.
func ProjectLinfRows(t, center *T, eps float64) {
	if !t.SameShape(center) {
		panic("tensor: ProjectLinfRows shape mismatch")
	}
	ProjectLinf(t, center, eps)
}
