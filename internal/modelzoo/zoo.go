// Package modelzoo trains (once) and caches the five trained models the
// experiments share: LeNet-5 and FFNN on the digits dataset, AlexNet on
// the objects dataset, plus the cross-architecture pair (LeNet-5 on
// objects, AlexNet on digits) needed by the Table II transferability
// study. Weights are persisted under testdata/models so test and bench
// runs after the first are fast; in-process results are memoised too.
package modelzoo

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/train"
	"repro/internal/weights"
)

// Model bundles a trained network with its train/test data.
type Model struct {
	Net   *nn.Network
	Train *dataset.Set
	Test  *dataset.Set
	// CleanAcc is the test accuracy measured after training/loading, %.
	CleanAcc float64
}

type entry struct {
	build   func() *nn.Network
	trainFn func() *dataset.Set
	testFn  func() *dataset.Set
	cfg     train.Config
}

const (
	trainN = 8000
	testN  = 1200
)

var entries = map[string]entry{
	"lenet5-digits": {
		build:   func() *nn.Network { return models.LeNet5(1, 28, 28, 10, 11) },
		trainFn: func() *dataset.Set { return dataset.Digits(trainN, 101) },
		testFn:  func() *dataset.Set { return dataset.Digits(testN, 202) },
		cfg:     train.Config{Epochs: 3, Batch: 32, LR: 0.05, Momentum: 0.9, LRDecay: 0.6, Seed: 1},
	},
	"ffnn-digits": {
		build:   func() *nn.Network { return models.FFNN(28*28, 10, 12) },
		trainFn: func() *dataset.Set { return dataset.Digits(trainN, 101) },
		testFn:  func() *dataset.Set { return dataset.Digits(testN, 202) },
		cfg:     train.Config{Epochs: 3, Batch: 32, LR: 0.05, Momentum: 0.9, LRDecay: 0.6, Seed: 2},
	},
	"alexnet-objects": {
		build:   func() *nn.Network { return models.AlexNet(3, 32, 32, 10, 13) },
		trainFn: func() *dataset.Set { return dataset.Objects(trainN, 303) },
		testFn:  func() *dataset.Set { return dataset.Objects(testN, 404) },
		cfg:     train.Config{Epochs: 5, Batch: 32, LR: 0.06, Momentum: 0.9, LRDecay: 0.75, Seed: 3},
	},
	"lenet5-objects": {
		build:   func() *nn.Network { return models.LeNet5(3, 32, 32, 10, 14) },
		trainFn: func() *dataset.Set { return dataset.Objects(trainN, 303) },
		testFn:  func() *dataset.Set { return dataset.Objects(testN, 404) },
		cfg:     train.Config{Epochs: 3, Batch: 32, LR: 0.03, Momentum: 0.9, LRDecay: 0.6, Seed: 4},
	},
	"alexnet-digits": {
		build:   func() *nn.Network { return models.AlexNet(3, 32, 32, 10, 15) },
		trainFn: func() *dataset.Set { return dataset.Digits32(trainN, 101) },
		testFn:  func() *dataset.Set { return dataset.Digits32(testN, 202) },
		cfg:     train.Config{Epochs: 2, Batch: 32, LR: 0.03, Momentum: 0.9, LRDecay: 0.6, Seed: 5},
	},
	// lenet5-digits32 consumes the same 32x32x3 digit format as
	// alexnet-digits, giving the Table II transferability study a
	// shared input geometry across architectures.
	"lenet5-digits32": {
		build:   func() *nn.Network { return models.LeNet5(3, 32, 32, 10, 16) },
		trainFn: func() *dataset.Set { return dataset.Digits32(trainN, 101) },
		testFn:  func() *dataset.Set { return dataset.Digits32(testN, 202) },
		cfg:     train.Config{Epochs: 3, Batch: 32, LR: 0.05, Momentum: 0.9, LRDecay: 0.6, Seed: 6},
	},
}

var (
	mu    sync.Mutex
	cache = map[string]*Model{}
)

// Names lists the available model identifiers.
func Names() []string {
	return []string{"lenet5-digits", "ffnn-digits", "alexnet-objects", "lenet5-objects", "alexnet-digits", "lenet5-digits32"}
}

// Dir returns the on-disk weight cache directory (created on demand).
func Dir() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "testdata/models"
	}
	d := filepath.Join(filepath.Dir(file), "..", "..", "testdata", "models")
	_ = os.MkdirAll(d, 0o755)
	return d
}

// Get returns the named trained model, training it on first use (and
// persisting the weights) or loading it from the cache otherwise.
func Get(name string) (*Model, error) {
	mu.Lock()
	defer mu.Unlock()
	if m, ok := cache[name]; ok {
		return m, nil
	}
	e, ok := entries[name]
	if !ok {
		return nil, fmt.Errorf("modelzoo: unknown model %q (have %v)", name, Names())
	}
	net := e.build()
	net.Name = name
	test := e.testFn()
	path := filepath.Join(Dir(), name+".bin")
	if err := weights.Load(net, path); err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			// The cache file was there but didn't load into this
			// architecture: a corrupt, stale, or unreadable entry.
			// Fail with a message rather than silently retraining
			// (which would mask disk corruption) or crashing
			// downstream. Classifying on the Load error itself (not a
			// second Stat) avoids misreading a cache file that another
			// process publishes between the two calls.
			return nil, fmt.Errorf("modelzoo: corrupt or unreadable weight cache for %s at %s (delete it to retrain): %w", name, path, err)
		}
		// Cache miss: train from scratch.
		tr := e.trainFn()
		cfg := e.cfg
		if os.Getenv("AXREPRO_VERBOSE") != "" {
			cfg.Logf = func(f string, a ...any) { fmt.Printf("[train %s] "+f+"\n", append([]any{name}, a...)...) }
		}
		train.Fit(net, tr, cfg)
		if err := weights.Save(net, path); err != nil {
			return nil, fmt.Errorf("modelzoo: saving %s: %w", name, err)
		}
		m := &Model{Net: net, Train: tr, Test: test}
		m.CleanAcc = 100 * train.Accuracy(net, test, 0)
		cache[name] = m
		return m, nil
	}
	m := &Model{Net: net, Test: test}
	m.CleanAcc = 100 * train.Accuracy(net, test, 0)
	cache[name] = m
	return m, nil
}
