// Package modelzoo trains (once) and caches the five trained models the
// experiments share: LeNet-5 and FFNN on the digits dataset, AlexNet on
// the objects dataset, plus the cross-architecture pair (LeNet-5 on
// objects, AlexNet on digits) needed by the Table II transferability
// study. Weights are persisted under testdata/models so test and bench
// runs after the first are fast; in-process results are memoised too.
//
// Beyond the fixed entries, the zoo resolves *derived* model
// identifiers through registered derivers: a package that can build a
// model from another model's name — internal/defense derives
// adversarially trained variants like
// "lenet5-digits+advtrain:PGD-linf:…" — registers a matcher and a
// builder, and every downstream consumer (specs, the experiment
// engine, axtrain, axserve jobs) loads the derived model through the
// same Get call, with the same on-disk weight cache. Get is
// single-flight per name and re-entrant: a deriver may Get its base
// model while its own build is in flight.
package modelzoo

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/train"
	"repro/internal/weights"
)

// Model bundles a trained network with its train/test data.
type Model struct {
	Net *nn.Network
	// Train is the materialised training set, when one already exists
	// (cold training produces it as a side effect; hand-built fixtures
	// set it directly). Consumers that need training data — derivers
	// that retrain, like adversarial fine-tuning — should call
	// TrainingSet, which falls back to TrainFn lazily: the weight-cache
	// load path never pays the dataset synthesis (or pins its tens of
	// megabytes) for the majority of runs that only do inference.
	Train *dataset.Set
	// TrainFn produces the training set on demand; see TrainingSet.
	TrainFn func() *dataset.Set
	Test    *dataset.Set
	// CleanAcc is the test accuracy measured after training/loading, %.
	CleanAcc float64

	trainOnce sync.Once
}

// TrainingSet returns the model's training data, materialising it
// from TrainFn on first use. Models with neither a materialised set
// nor a generator (transfer-only fixtures) return an error.
func (m *Model) TrainingSet() (*dataset.Set, error) {
	m.trainOnce.Do(func() {
		if m.Train == nil && m.TrainFn != nil {
			m.Train = m.TrainFn()
		}
	})
	if m.Train == nil {
		return nil, fmt.Errorf("modelzoo: %s carries no training set", m.Net.Name)
	}
	return m.Train, nil
}

type entry struct {
	build   func() *nn.Network
	trainFn func() *dataset.Set
	testFn  func() *dataset.Set
	cfg     train.Config
}

const (
	trainN = 8000
	testN  = 1200
)

var entries = map[string]entry{
	"lenet5-digits": {
		build:   func() *nn.Network { return models.LeNet5(1, 28, 28, 10, 11) },
		trainFn: func() *dataset.Set { return dataset.Digits(trainN, 101) },
		testFn:  func() *dataset.Set { return dataset.Digits(testN, 202) },
		cfg:     train.Config{Epochs: 3, Batch: 32, LR: 0.05, Momentum: 0.9, LRDecay: 0.6, Seed: 1},
	},
	"ffnn-digits": {
		build:   func() *nn.Network { return models.FFNN(28*28, 10, 12) },
		trainFn: func() *dataset.Set { return dataset.Digits(trainN, 101) },
		testFn:  func() *dataset.Set { return dataset.Digits(testN, 202) },
		cfg:     train.Config{Epochs: 3, Batch: 32, LR: 0.05, Momentum: 0.9, LRDecay: 0.6, Seed: 2},
	},
	"alexnet-objects": {
		build:   func() *nn.Network { return models.AlexNet(3, 32, 32, 10, 13) },
		trainFn: func() *dataset.Set { return dataset.Objects(trainN, 303) },
		testFn:  func() *dataset.Set { return dataset.Objects(testN, 404) },
		cfg:     train.Config{Epochs: 5, Batch: 32, LR: 0.06, Momentum: 0.9, LRDecay: 0.75, Seed: 3},
	},
	"lenet5-objects": {
		build:   func() *nn.Network { return models.LeNet5(3, 32, 32, 10, 14) },
		trainFn: func() *dataset.Set { return dataset.Objects(trainN, 303) },
		testFn:  func() *dataset.Set { return dataset.Objects(testN, 404) },
		cfg:     train.Config{Epochs: 3, Batch: 32, LR: 0.03, Momentum: 0.9, LRDecay: 0.6, Seed: 4},
	},
	"alexnet-digits": {
		build:   func() *nn.Network { return models.AlexNet(3, 32, 32, 10, 15) },
		trainFn: func() *dataset.Set { return dataset.Digits32(trainN, 101) },
		testFn:  func() *dataset.Set { return dataset.Digits32(testN, 202) },
		cfg:     train.Config{Epochs: 2, Batch: 32, LR: 0.03, Momentum: 0.9, LRDecay: 0.6, Seed: 5},
	},
	// lenet5-digits32 consumes the same 32x32x3 digit format as
	// alexnet-digits, giving the Table II transferability study a
	// shared input geometry across architectures.
	"lenet5-digits32": {
		build:   func() *nn.Network { return models.LeNet5(3, 32, 32, 10, 16) },
		trainFn: func() *dataset.Set { return dataset.Digits32(trainN, 101) },
		testFn:  func() *dataset.Set { return dataset.Digits32(testN, 202) },
		cfg:     train.Config{Epochs: 3, Batch: 32, LR: 0.05, Momentum: 0.9, LRDecay: 0.6, Seed: 6},
	},
}

// Deriver resolves model names no fixed entry covers. Match reports
// whether the name belongs to this deriver; Build produces the model
// (training and persisting as needed). Build runs outside the zoo's
// lock and may call Get/GetCtx recursively for its base model. The
// context is the initiating caller's: long builds (adversarial
// fine-tuning inside a service job) should observe it and return its
// error on cancellation, in which case nothing is cached and a later
// Get retries.
type Deriver struct {
	Match func(name string) bool
	Build func(ctx context.Context, name string) (*Model, error)
}

// call tracks one in-flight build so concurrent Gets of the same name
// wait for the first instead of training twice.
type call struct {
	done chan struct{}
	m    *Model
	err  error
}

var (
	mu       sync.Mutex
	cache    = map[string]*Model{}
	inflight = map[string]*call{}
	derivers []Deriver
	// derivedOrder tracks derived names in cache insertion order for
	// the bounded-retention eviction below.
	derivedOrder []string
)

// maxDerivedCached bounds how many *derived* models (open-ended ids —
// one per distinct defense config) stay memoised in process; the six
// fixed entries are never evicted. A long-lived axserve receiving
// varied defended specs stays bounded in memory, like the repo's
// other long-lived stores (core.Cache budgets, Manager.MaxJobs).
// Evicted models keep their on-disk weight cache, so re-resolution is
// a cheap weights.Load, never a retrain.
const maxDerivedCached = 32

// RegisterDeriver adds a derived-model resolver, consulted by Get for
// names without a fixed entry in registration order. Typically called
// from an init function (internal/defense registers the adversarial
// training scheme).
func RegisterDeriver(d Deriver) {
	mu.Lock()
	defer mu.Unlock()
	derivers = append(derivers, d)
}

// Names lists the fixed model identifiers (derived names — see
// RegisterDeriver — are open-ended and not enumerated here).
func Names() []string {
	return []string{"lenet5-digits", "ffnn-digits", "alexnet-objects", "lenet5-objects", "alexnet-digits", "lenet5-digits32"}
}

// Dir returns the on-disk weight cache directory (created on demand).
func Dir() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "testdata/models"
	}
	d := filepath.Join(filepath.Dir(file), "..", "..", "testdata", "models")
	_ = os.MkdirAll(d, 0o755)
	return d
}

// WeightPath returns the on-disk weight cache file for a model name,
// with the characters derived identifiers use (':') made
// filename-portable.
func WeightPath(name string) string {
	return filepath.Join(Dir(), strings.ReplaceAll(name, ":", "~")+".bin")
}

// Get returns the named trained model, training it on first use (and
// persisting the weights) or loading it from the cache otherwise.
// Concurrent Gets of one name share a single build (single-flight),
// and a build may itself call Get — derivers resolve their base model
// re-entrantly without deadlocking.
func Get(name string) (*Model, error) {
	return GetCtx(context.Background(), name)
}

// GetCtx is Get observing a context: a caller waiting on another
// caller's in-flight build stops waiting when its ctx dies, and the
// build it initiates itself passes ctx down to derivers (fixed-entry
// training is not cancellable mid-epoch; derived-model training is,
// at crafting-chunk granularity). A build that returns the ctx error
// is not cached, so a later Get retries it.
func GetCtx(ctx context.Context, name string) (*Model, error) {
	var c *call
	for {
		mu.Lock()
		if m, ok := cache[name]; ok {
			mu.Unlock()
			return m, nil
		}
		waiter, waiting := inflight[name]
		if !waiting {
			c = &call{done: make(chan struct{})}
			inflight[name] = c
			mu.Unlock()
			break
		}
		mu.Unlock()
		select {
		case <-waiter.done:
			// A flight that died of its *initiator's* cancellation must
			// not fail unrelated waiters: a waiter whose own ctx is live
			// loops and re-attempts the build (the dead flight has been
			// deregistered, so the retry starts fresh).
			if (errors.Is(waiter.err, context.Canceled) || errors.Is(waiter.err, context.DeadlineExceeded)) && ctx.Err() == nil {
				continue
			}
			return waiter.m, waiter.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	// The cleanup is deferred so a panicking build (derivers run
	// arbitrary training code) still deregisters the flight and wakes
	// waiters with an error instead of parking every later Get forever;
	// the panic itself propagates to this caller.
	defer func() {
		if c.m == nil && c.err == nil {
			c.err = fmt.Errorf("modelzoo: building %s panicked", name)
		}
		mu.Lock()
		if c.err == nil {
			cache[name] = c.m
			if _, fixed := entries[name]; !fixed {
				derivedOrder = append(derivedOrder, name)
				for len(derivedOrder) > maxDerivedCached {
					delete(cache, derivedOrder[0])
					derivedOrder = derivedOrder[1:]
				}
			}
		}
		delete(inflight, name)
		mu.Unlock()
		close(c.done)
	}()
	c.m, c.err = build(ctx, name)
	return c.m, c.err
}

// build produces one model outside the lock: fixed entries first, then
// the registered derivers.
func build(ctx context.Context, name string) (*Model, error) {
	e, ok := entries[name]
	if !ok {
		mu.Lock()
		ds := append([]Deriver(nil), derivers...)
		mu.Unlock()
		for _, d := range ds {
			if d.Match(name) {
				return d.Build(ctx, name)
			}
		}
		return nil, fmt.Errorf("modelzoo: unknown model %q (have %v)", name, Names())
	}
	net := e.build()
	net.Name = name
	test := e.testFn()
	path := WeightPath(name)
	if err := weights.Load(net, path); err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			// The cache file was there but didn't load into this
			// architecture: a corrupt, stale, or unreadable entry.
			// Fail with a message rather than silently retraining
			// (which would mask disk corruption) or crashing
			// downstream. Classifying on the Load error itself (not a
			// second Stat) avoids misreading a cache file that another
			// process publishes between the two calls.
			return nil, fmt.Errorf("modelzoo: corrupt or unreadable weight cache for %s at %s (delete it to retrain): %w", name, path, err)
		}
		// Cache miss: train from scratch.
		tr := e.trainFn()
		cfg := e.cfg
		if os.Getenv("AXREPRO_VERBOSE") != "" {
			cfg.Logf = func(f string, a ...any) { fmt.Printf("[train %s] "+f+"\n", append([]any{name}, a...)...) }
		}
		train.Fit(net, tr, cfg)
		if err := weights.Save(net, path); err != nil {
			return nil, fmt.Errorf("modelzoo: saving %s: %w", name, err)
		}
		m := &Model{Net: net, Train: tr, Test: test}
		m.CleanAcc = 100 * train.Accuracy(net, test, 0)
		return m, nil
	}
	m := &Model{Net: net, TrainFn: e.trainFn, Test: test}
	m.CleanAcc = 100 * train.Accuracy(net, test, 0)
	return m, nil
}
