package modelzoo

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/nn"
)

func TestNamesStable(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("zoo has %d models, want 6", len(names))
	}
	for _, n := range names {
		if _, ok := entries[n]; !ok {
			t.Fatalf("Names() lists %q which has no entry", n)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("no-such-model"); err == nil {
		t.Fatal("expected error")
	}
}

// TestGetLeNetAccuracy loads (or trains once) the paper's main model
// and checks it sits in the paper's MNIST accuracy regime.
func TestGetLeNetAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("model loading/training in -short mode")
	}
	m, err := Get("lenet5-digits")
	if err != nil {
		t.Fatal(err)
	}
	if m.CleanAcc < 95 {
		t.Fatalf("lenet5-digits accuracy %.1f%%, want >= 95%% (paper baseline regime 98%%)", m.CleanAcc)
	}
	// Memoisation: second Get returns the identical instance.
	m2, err := Get("lenet5-digits")
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m {
		t.Fatal("Get did not memoise")
	}
}

func TestTestSetDisjointSeedFromTrain(t *testing.T) {
	// Train and test sets must come from different seeds; spot-check
	// that their first images differ for every entry's generators.
	for name, e := range entries {
		tr := e.trainFn()
		te := e.testFn()
		same := true
		for j := range tr.X[0].Data {
			if tr.X[0].Data[j] != te.X[0].Data[j] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: train and test share data", name)
		}
	}
}

// TestGetCorruptCacheEntry pins the error path: a weight-cache file
// that exists but does not decode must fail the run with a message —
// never crash, never silently retrain over possible disk corruption.
func TestGetCorruptCacheEntry(t *testing.T) {
	const name = "corrupt-cache-test"
	entries[name] = entry{
		build:   func() *nn.Network { return models.FFNN(28*28, 10, 99) },
		trainFn: func() *dataset.Set { return dataset.Digits(10, 1) },
		testFn:  func() *dataset.Set { return dataset.Digits(10, 2) },
	}
	path := filepath.Join(Dir(), name+".bin")
	if err := os.WriteFile(path, []byte("not a weights file"), 0o644); err != nil {
		t.Fatal(err)
	}
	defer func() {
		os.Remove(path)
		delete(entries, name)
		mu.Lock()
		delete(cache, name)
		mu.Unlock()
	}()
	_, err := Get(name)
	if err == nil {
		t.Fatal("corrupt cache entry must fail Get")
	}
	if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("error should say the cache is corrupt: %v", err)
	}
}
