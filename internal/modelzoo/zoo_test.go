package modelzoo

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/train"
)

func TestNamesStable(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("zoo has %d models, want 6", len(names))
	}
	for _, n := range names {
		if _, ok := entries[n]; !ok {
			t.Fatalf("Names() lists %q which has no entry", n)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("no-such-model"); err == nil {
		t.Fatal("expected error")
	}
}

// TestGetLeNetAccuracy loads (or trains once) the paper's main model
// and checks it sits in the paper's MNIST accuracy regime.
func TestGetLeNetAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("model loading/training in -short mode")
	}
	m, err := Get("lenet5-digits")
	if err != nil {
		t.Fatal(err)
	}
	if m.CleanAcc < 95 {
		t.Fatalf("lenet5-digits accuracy %.1f%%, want >= 95%% (paper baseline regime 98%%)", m.CleanAcc)
	}
	// Memoisation: second Get returns the identical instance.
	m2, err := Get("lenet5-digits")
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m {
		t.Fatal("Get did not memoise")
	}
}

func TestTestSetDisjointSeedFromTrain(t *testing.T) {
	// Train and test sets must come from different seeds; spot-check
	// that their first images differ for every entry's generators.
	for name, e := range entries {
		tr := e.trainFn()
		te := e.testFn()
		same := true
		for j := range tr.X[0].Data {
			if tr.X[0].Data[j] != te.X[0].Data[j] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: train and test share data", name)
		}
	}
}

// TestGetCorruptCacheEntry pins the error path: a weight-cache file
// that exists but does not decode must fail the run with a message —
// never crash, never silently retrain over possible disk corruption.
func TestGetCorruptCacheEntry(t *testing.T) {
	const name = "corrupt-cache-test"
	entries[name] = entry{
		build:   func() *nn.Network { return models.FFNN(28*28, 10, 99) },
		trainFn: func() *dataset.Set { return dataset.Digits(10, 1) },
		testFn:  func() *dataset.Set { return dataset.Digits(10, 2) },
	}
	path := filepath.Join(Dir(), name+".bin")
	if err := os.WriteFile(path, []byte("not a weights file"), 0o644); err != nil {
		t.Fatal(err)
	}
	defer func() {
		os.Remove(path)
		delete(entries, name)
		mu.Lock()
		delete(cache, name)
		mu.Unlock()
	}()
	_, err := Get(name)
	if err == nil {
		t.Fatal("corrupt cache entry must fail Get")
	}
	if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("error should say the cache is corrupt: %v", err)
	}
}

// TestDeriverResolvesAndReenters registers a throwaway deriver and
// checks the Get contract derived models rely on: unknown-but-matching
// names route to Build, Build may re-enter Get for its base model
// without deadlocking, results are memoised, and concurrent Gets of
// one derived name share a single build.
func TestDeriverResolvesAndReenters(t *testing.T) {
	const base = "deriver-base-test"
	const derived = base + "+double"
	entries[base] = entry{
		build:   func() *nn.Network { return models.FFNN(28*28, 10, 98) },
		trainFn: func() *dataset.Set { return dataset.Digits(16, 3) },
		testFn:  func() *dataset.Set { return dataset.Digits(16, 4) },
		cfg:     train.Config{Epochs: 1, Batch: 8, Seed: 1, Workers: 1},
	}
	builds := 0
	RegisterDeriver(Deriver{
		Match: func(name string) bool { return strings.HasSuffix(name, "+double") },
		Build: func(_ context.Context, name string) (*Model, error) {
			builds++
			bm, err := Get(strings.TrimSuffix(name, "+double")) // re-entrant
			if err != nil {
				return nil, err
			}
			net := bm.Net.DeepClone()
			net.Name = name
			return &Model{Net: net, Train: bm.Train, Test: bm.Test, CleanAcc: bm.CleanAcc}, nil
		},
	})
	defer func() {
		os.Remove(WeightPath(base))
		delete(entries, base)
		mu.Lock()
		delete(cache, base)
		delete(cache, derived)
		derivers = derivers[:len(derivers)-1]
		mu.Unlock()
	}()

	const gets = 4
	ms := make([]*Model, gets)
	errs := make([]error, gets)
	var wg sync.WaitGroup
	for i := 0; i < gets; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ms[i], errs[i] = Get(derived)
		}(i)
	}
	wg.Wait()
	for i := 0; i < gets; i++ {
		if errs[i] != nil {
			t.Fatalf("derived Get %d failed: %v", i, errs[i])
		}
		if ms[i] != ms[0] {
			t.Fatal("concurrent derived Gets returned distinct instances")
		}
	}
	if builds != 1 {
		t.Fatalf("deriver built %d times for %d concurrent Gets, want 1", builds, gets)
	}
	bm, err := Get(base)
	if err != nil {
		t.Fatal(err)
	}
	if ts, err := bm.TrainingSet(); err != nil || ts == nil {
		t.Fatalf("base model must resolve a training set for derivers: %v", err)
	}
	if ms[0].Net == bm.Net {
		t.Fatal("derived model must not alias the base network")
	}

	// The weight-cache load path stays lazy: dropping the memo forces a
	// reload, which must not materialise the training set until a
	// deriver asks.
	mu.Lock()
	delete(cache, base)
	mu.Unlock()
	reloaded, err := Get(base)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Train != nil {
		t.Fatal("load path materialised the training set eagerly")
	}
	if ts, err := reloaded.TrainingSet(); err != nil || ts == nil {
		t.Fatalf("lazy TrainingSet failed on the load path: %v", err)
	}
	if reloaded.Train == nil {
		t.Fatal("TrainingSet did not memoise the materialised set")
	}
}

// TestGetSurvivesPanickingDeriver: a panic inside a build must
// propagate to the caller AND deregister the flight, so later Gets of
// the same name fail (or retry) instead of blocking forever on a dead
// in-flight entry.
func TestGetSurvivesPanickingDeriver(t *testing.T) {
	const name = "panic-test+boom"
	RegisterDeriver(Deriver{
		Match: func(n string) bool { return n == name },
		Build: func(context.Context, string) (*Model, error) { panic("deriver exploded") },
	})
	defer func() {
		mu.Lock()
		derivers = derivers[:len(derivers)-1]
		delete(cache, name)
		mu.Unlock()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("build panic must propagate to the first caller")
			}
		}()
		Get(name)
	}()
	// The second Get must not hang; it re-enters the (still panicking)
	// deriver rather than waiting on the dead flight.
	done := make(chan struct{})
	go func() {
		defer func() { recover(); close(done) }()
		Get(name)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Get blocked forever after a panicking build")
	}
}

// TestWeightPathPortable pins the ':' sanitisation derived ids need.
func TestWeightPathPortable(t *testing.T) {
	p := WeightPath("a+advtrain:PGD-linf:eps=0.1")
	if strings.ContainsRune(filepath.Base(p), ':') {
		t.Fatalf("WeightPath left ':' in %q", p)
	}
}

// TestWaiterSurvivesInitiatorCancellation: a Get waiting on another
// caller's in-flight build must not inherit that caller's
// cancellation — it retries the build under its own live context.
func TestWaiterSurvivesInitiatorCancellation(t *testing.T) {
	const name = "cancel-retry-test+derived"
	started := make(chan struct{}, 2)
	release := make(chan struct{})
	var builds int
	var bmu sync.Mutex
	RegisterDeriver(Deriver{
		Match: func(n string) bool { return n == name },
		Build: func(ctx context.Context, _ string) (*Model, error) {
			bmu.Lock()
			builds++
			first := builds == 1
			bmu.Unlock()
			started <- struct{}{}
			if first {
				<-ctx.Done() // simulate training observing cancellation
				return nil, ctx.Err()
			}
			<-release
			return &Model{Net: models.FFNN(4, 2, 1), Test: dataset.Digits(1, 1)}, nil
		},
	})
	defer func() {
		mu.Lock()
		derivers = derivers[:len(derivers)-1]
		delete(cache, name)
		mu.Unlock()
	}()

	initCtx, cancelInit := context.WithCancel(context.Background())
	initErr := make(chan error, 1)
	go func() {
		_, err := GetCtx(initCtx, name)
		initErr <- err
	}()
	<-started // initiator's build is in flight

	waiterRes := make(chan error, 1)
	go func() {
		_, err := GetCtx(context.Background(), name)
		waiterRes <- err
	}()
	// Give the waiter a moment to park on the flight, then cancel the
	// initiator: its build dies with context.Canceled.
	time.Sleep(20 * time.Millisecond)
	cancelInit()
	if err := <-initErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("initiator got %v, want context.Canceled", err)
	}
	// The waiter must retry (second build) and succeed once released.
	<-started
	close(release)
	if err := <-waiterRes; err != nil {
		t.Fatalf("waiter inherited the initiator's cancellation: %v", err)
	}
	bmu.Lock()
	defer bmu.Unlock()
	if builds != 2 {
		t.Fatalf("expected a retry build, got %d builds", builds)
	}
}

// TestDerivedRetentionBounded: the in-process memo of derived models
// is bounded (fixed entries are never evicted), so a long-lived
// server resolving many distinct defense configs stays bounded in
// memory.
func TestDerivedRetentionBounded(t *testing.T) {
	const suffix = "+retention-test"
	RegisterDeriver(Deriver{
		Match: func(n string) bool { return strings.HasSuffix(n, suffix) },
		Build: func(_ context.Context, name string) (*Model, error) {
			net := models.FFNN(4, 2, 1)
			net.Name = name
			return &Model{Net: net, Test: dataset.Digits(1, 1)}, nil
		},
	})
	defer func() {
		mu.Lock()
		derivers = derivers[:len(derivers)-1]
		kept := derivedOrder[:0]
		for _, n := range derivedOrder {
			if strings.HasSuffix(n, suffix) {
				delete(cache, n)
			} else {
				kept = append(kept, n)
			}
		}
		derivedOrder = kept
		mu.Unlock()
	}()

	for i := 0; i < maxDerivedCached+8; i++ {
		if _, err := Get(fmt.Sprintf("cfg-%d%s", i, suffix)); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	derived := 0
	for name := range cache {
		if strings.HasSuffix(name, suffix) {
			derived++
		}
	}
	mu.Unlock()
	if derived > maxDerivedCached {
		t.Fatalf("%d derived models retained, bound is %d", derived, maxDerivedCached)
	}
	// The earliest derived entries were evicted, the newest kept.
	mu.Lock()
	_, oldest := cache["cfg-0"+suffix]
	_, newest := cache[fmt.Sprintf("cfg-%d%s", maxDerivedCached+7, suffix)]
	mu.Unlock()
	if oldest {
		t.Fatal("oldest derived model was not evicted")
	}
	if !newest {
		t.Fatal("newest derived model must stay cached")
	}
}
