// Package adder models 1-bit adder cells, exact and approximate.
//
// Approximate multipliers in the EvoApprox design space (and the defensive
// approximation work of Guesmi et al., ASPLOS 2021) are built from arrays
// of full-adder cells in which some cells are replaced by cheaper,
// error-prone variants such as the approximate mirror adders (AMA) of
// Gupta et al. This package provides behavioural models of those cells:
// each cell is a function from (a, b, cin) to (sum, cout).
//
// The AMA cells here are simplified behavioural variants in the spirit of
// the published mirror-adder family; their exact truth tables are part of
// this package's contract and are verified (error counts included) by the
// package tests. See README.md for the substitution rationale.
package adder

// Cell is a behavioural model of a 1-bit adder cell. Inputs and outputs
// are 0 or 1; behaviour for other values is undefined.
type Cell func(a, b, cin uint32) (sum, cout uint32)

// Exact is the exact full adder: sum = a xor b xor cin,
// cout = majority(a, b, cin).
func Exact(a, b, cin uint32) (sum, cout uint32) {
	sum = a ^ b ^ cin
	cout = (a & b) | (cin & (a ^ b))
	return sum, cout
}

// AMA1 keeps the exact carry chain but approximates the sum as the
// complement of the carry-out. It errs on 2 of the 8 input patterns
// (000 and 111), both in the sum bit.
func AMA1(a, b, cin uint32) (sum, cout uint32) {
	_, cout = Exact(a, b, cin)
	return cout ^ 1, cout
}

// AMA2 passes b through as the sum while keeping the exact carry.
// It errs on 4 of the 8 input patterns, all in the sum bit.
func AMA2(a, b, cin uint32) (sum, cout uint32) {
	_, cout = Exact(a, b, cin)
	return b, cout
}

// AMA3 passes b through as the sum and a through as the carry.
// It has 4 sum-bit and 2 carry-bit errors, affecting 4 of the 8 input
// patterns.
func AMA3(a, b, cin uint32) (sum, cout uint32) {
	return b, a
}

// AMA4 ignores the carry-in entirely: sum = a xor b, cout = a and b.
// This is the classic "half-adder in place of a full adder" cut.
// It errs on 4 of the 8 input patterns.
func AMA4(a, b, cin uint32) (sum, cout uint32) {
	return a ^ b, a & b
}

// AMA5 reduces the cell to a buffer on b: sum = b, cout = b.
// This is the most aggressive mirror-adder simplification.
// It errs on 6 of the 8 input patterns.
func AMA5(a, b, cin uint32) (sum, cout uint32) {
	return b, b
}

// ORCell approximates addition by a bitwise OR: sum = a | b | cin,
// cout = 0. This is the cell used in the lower part of a
// lower-part-OR adder (LOA). It errs whenever two or more inputs are set.
func ORCell(a, b, cin uint32) (sum, cout uint32) {
	return a | b | cin, 0
}

// Named returns the cell registered under name, or nil if unknown.
// Valid names: "exact", "ama1".."ama5", "or".
func Named(name string) Cell {
	switch name {
	case "exact":
		return Exact
	case "ama1":
		return AMA1
	case "ama2":
		return AMA2
	case "ama3":
		return AMA3
	case "ama4":
		return AMA4
	case "ama5":
		return AMA5
	case "or":
		return ORCell
	}
	return nil
}

// ErrorCount returns how many of the 8 input patterns produce a result
// (interpreted as the 2-bit value 2*cout + sum) different from the exact
// full adder. It is a design-time metric for cell selection.
func ErrorCount(c Cell) int {
	n := 0
	for p := uint32(0); p < 8; p++ {
		a, b, cin := p&1, (p>>1)&1, (p>>2)&1
		s, co := c(a, b, cin)
		es, eco := Exact(a, b, cin)
		if 2*co+s != 2*eco+es {
			n++
		}
	}
	return n
}

// RippleCarry adds two n-bit operands using the given cell for the k
// least-significant positions and the exact cell above, returning the
// (n+1)-bit sum. It models a ripple-carry adder with an approximate
// lower part. With k == 0 it is an exact adder.
func RippleCarry(cell Cell, a, b uint32, n, k uint) uint32 {
	var sum, carry uint32
	for i := uint(0); i < n; i++ {
		c := Exact
		if i < k {
			c = cell
		}
		s, co := c((a>>i)&1, (b>>i)&1, carry)
		sum |= (s & 1) << i
		carry = co & 1
	}
	return sum | carry<<n
}

// LOA adds two n-bit operands with a lower-part-OR adder: the k low bits
// are OR-ed (no carries), the upper part is added exactly with a carry-in
// generated from the AND of the most significant lower-part bits, per the
// classic LOA design.
func LOA(a, b uint32, n, k uint) uint32 {
	if k == 0 {
		return a + b
	}
	if k > n {
		k = n
	}
	low := (a | b) & ((1 << k) - 1)
	var cin uint32
	if k >= 1 {
		cin = ((a >> (k - 1)) & 1) & ((b >> (k - 1)) & 1)
	}
	high := (a >> k) + (b >> k) + cin
	return high<<k | low
}
