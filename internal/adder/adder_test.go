package adder

import (
	"testing"
	"testing/quick"
)

func TestExactTruthTable(t *testing.T) {
	for p := uint32(0); p < 8; p++ {
		a, b, cin := p&1, (p>>1)&1, (p>>2)&1
		s, co := Exact(a, b, cin)
		want := a + b + cin
		if 2*co+s != want {
			t.Errorf("Exact(%d,%d,%d) = sum %d cout %d, want value %d", a, b, cin, s, co, want)
		}
	}
}

// TestApproxCellErrorCounts pins the documented error count of every
// approximate cell; a change here is a change of the library contract.
func TestApproxCellErrorCounts(t *testing.T) {
	cases := []struct {
		name string
		want int
	}{
		{"exact", 0},
		{"ama1", 2},
		{"ama2", 4},
		{"ama3", 4},
		{"ama4", 4},
		{"ama5", 6},
		{"or", 4},
	}
	for _, c := range cases {
		cell := Named(c.name)
		if cell == nil {
			t.Fatalf("Named(%q) = nil", c.name)
		}
		if got := ErrorCount(cell); got != c.want {
			t.Errorf("ErrorCount(%s) = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestNamedUnknown(t *testing.T) {
	if Named("nope") != nil {
		t.Fatal("Named should return nil for unknown cells")
	}
}

func TestCellOutputsAreBits(t *testing.T) {
	for _, name := range []string{"exact", "ama1", "ama2", "ama3", "ama4", "ama5", "or"} {
		cell := Named(name)
		for p := uint32(0); p < 8; p++ {
			s, co := cell(p&1, (p>>1)&1, (p>>2)&1)
			if s > 1 || co > 1 {
				t.Errorf("%s produced non-bit output (%d,%d)", name, s, co)
			}
		}
	}
}

func TestRippleCarryExact(t *testing.T) {
	for a := uint32(0); a < 256; a += 7 {
		for b := uint32(0); b < 256; b += 5 {
			if got := RippleCarry(Exact, a, b, 8, 0); got != a+b {
				t.Fatalf("RippleCarry exact %d+%d = %d", a, b, got)
			}
		}
	}
}

func TestRippleCarryApproxLowPartOnly(t *testing.T) {
	// With k approximate low bits, the upper bits can only be wrong
	// through the carry chain: the error must be bounded by 2^(k+1).
	for a := uint32(0); a < 256; a += 3 {
		for b := uint32(0); b < 256; b += 3 {
			got := RippleCarry(AMA1, a, b, 8, 4)
			diff := int64(got) - int64(a+b)
			if diff > 1<<5 || diff < -(1<<5) {
				t.Fatalf("RippleCarry(AMA1,k=4) %d+%d error %d too large", a, b, diff)
			}
		}
	}
}

func TestLOAExactWhenK0(t *testing.T) {
	f := func(a, b uint8) bool {
		return LOA(uint32(a), uint32(b), 8, 0) == uint32(a)+uint32(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLOANeverOvershoots(t *testing.T) {
	// The OR of the low parts is at most the true low-part sum, and the
	// generated carry-in is at most the true carry, so LOA <= exact sum
	// plus the carry correction; check the documented error bound 2^k.
	for a := uint32(0); a < 256; a++ {
		for b := uint32(0); b < 256; b++ {
			got := LOA(a, b, 8, 3)
			exact := a + b
			diff := int64(exact) - int64(got)
			if diff < 0 {
				diff = -diff
			}
			if diff >= 1<<4 {
				t.Fatalf("LOA(k=3) %d+%d = %d (exact %d), |err| >= 16", a, b, got, exact)
			}
		}
	}
}

func TestLOAKClamp(t *testing.T) {
	// k > n must not panic and must behave like k == n.
	if got, want := LOA(200, 100, 8, 12), LOA(200, 100, 8, 8); got != want {
		t.Fatalf("LOA clamp: %d != %d", got, want)
	}
}
