package errmodel

import (
	"testing"

	"repro/internal/axmult"
)

func TestExactHasZeroError(t *testing.T) {
	m := Measure(axmult.Exact)
	if m.MAE != 0 || m.WCE != 0 || m.EP != 0 || m.Bias != 0 || m.Var != 0 {
		t.Fatalf("exact multiplier has nonzero error metrics: %+v", m)
	}
}

func TestMeasureNamedAccurate(t *testing.T) {
	m, err := MeasureNamed("mul8u_1JFF")
	if err != nil {
		t.Fatal(err)
	}
	if m.MAE != 0 {
		t.Fatalf("1JFF MAE = %f, want 0", m.MAE)
	}
}

func TestMeasureNamedUnknown(t *testing.T) {
	if _, err := MeasureNamed("mul8u_NOPE"); err == nil {
		t.Fatal("expected error")
	}
}

// TestPaperMAEOrdering pins the qualitative MAE relationships the paper
// quotes: the accurate design has zero error, the small designs (96D,
// 12N4) are well under the big ones (JQQ, FTA), and 17KS sits between.
func TestPaperMAEOrdering(t *testing.T) {
	maep := func(name string) float64 {
		m, err := MeasureNamed(name)
		if err != nil {
			t.Fatal(err)
		}
		return m.MAEP
	}
	small := []string{"mul8u_96D", "mul8u_12N4"}
	big := []string{"mul8u_JQQ", "mul8u_FTA", "mul8u_JV3"}
	for _, s := range small {
		for _, b := range big {
			if maep(s) >= maep(b) {
				t.Errorf("MAE%%(%s)=%.4f not < MAE%%(%s)=%.4f", s, maep(s), b, maep(b))
			}
		}
	}
	if maep("mul8u_1JFF") != 0 {
		t.Error("accurate design must have zero MAE")
	}
}

func TestMetricsInternalConsistency(t *testing.T) {
	for _, name := range axmult.MNISTSet() {
		m, err := MeasureNamed(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.WCE < m.MAE {
			t.Errorf("%s: WCE %.1f < MAE %.1f", name, m.WCE, m.MAE)
		}
		if m.EP < 0 || m.EP > 1 {
			t.Errorf("%s: EP %.3f outside [0,1]", name, m.EP)
		}
		if m.Var < 0 {
			t.Errorf("%s: negative variance", name)
		}
		if b := m.Bias; b > m.MAE || -b > m.MAE {
			t.Errorf("%s: |bias| %.1f exceeds MAE %.1f", name, b, m.MAE)
		}
	}
}

func TestUnbiasedDesigns(t *testing.T) {
	// Compensated designs advertise near-zero mean error.
	for _, name := range []string{"mul8u_96D", "mul8u_1AGV", "mul8u_L40"} {
		m, err := MeasureNamed(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.Bias > 5 || m.Bias < -5 {
			t.Errorf("%s: bias %.2f, want near zero", name, m.Bias)
		}
	}
}

func TestUndershootingDesigns(t *testing.T) {
	// Log-family designs never overshoot, so their bias is negative.
	m, err := MeasureNamed("mul8u_JV3")
	if err != nil {
		t.Fatal(err)
	}
	if m.Bias >= 0 {
		t.Errorf("JV3 (Mitchell) bias %.2f, want negative", m.Bias)
	}
}

// TestTablePathMatchesDispatchPath: the LUT table scan must report
// exactly the metrics the virtual-dispatch sweep reports.
func TestTablePathMatchesDispatchPath(t *testing.T) {
	for _, name := range []string{"mul8u_JV3", "mul8u_L40", "mul8u_96D"} {
		m, err := axmult.New(name)
		if err != nil {
			t.Fatal(err)
		}
		slow := Measure(m)              // behavioural circuit: dispatch loop
		fast, err := MeasureNamed(name) // cached LUT: table scan
		if err != nil {
			t.Fatal(err)
		}
		if slow.MAE != fast.MAE || slow.WCE != fast.WCE || slow.MRE != fast.MRE ||
			slow.Bias != fast.Bias || slow.Var != fast.Var || slow.EP != fast.EP {
			t.Fatalf("%s: table path diverged from dispatch path:\n%+v\n%+v", name, fast, slow)
		}
	}
}
