// Package errmodel computes exhaustive error metrics for 8x8
// approximate multipliers — the standard figures of merit used by the
// EvoApprox8b library and by the paper (which quantifies approximation
// noise via MAE%).
//
// All metrics are computed over the full 65536-point input space with
// uniform operand distribution, matching how EvoApprox reports them.
package errmodel

import (
	"math"

	"repro/internal/axmult"
)

// MaxProduct is the largest exact product of two 8-bit operands.
const MaxProduct = 255 * 255

// Metrics summarises the error behaviour of a multiplier relative to
// the exact product, over all 65536 input pairs.
type Metrics struct {
	Name string

	MAE  float64 // mean |error|
	MAEP float64 // MAE as % of MaxProduct (the paper's "MAE%")
	WCE  float64 // worst-case |error|
	WCEP float64 // WCE as % of MaxProduct
	MRE  float64 // mean relative error over non-zero exact products, %
	Bias float64 // mean signed error (negative = undershoots)
	Var  float64 // variance of signed error
	EP   float64 // error probability: fraction of inputs with any error
}

// tabler is satisfied by multipliers that cache as exhaustive tables
// (axmult.LUT): their full-space sweep is a linear scan of the table
// instead of 65,536 virtual Mul dispatches.
type tabler interface {
	Table() []uint16
}

// Measure computes Metrics for m exhaustively. Multipliers that expose
// a compiled table (axmult.LUT — what MeasureNamed always passes) are
// measured by scanning the table directly.
func Measure(m axmult.Multiplier) Metrics {
	if t, ok := m.(tabler); ok {
		return measureTable(m.Name(), t.Table())
	}
	var (
		sumAbs, sumSigned, sumSq, sumRel float64
		wce                              float64
		errs, relN                       int
	)
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			exact := float64(a * b)
			got := float64(m.Mul(uint8(a), uint8(b)))
			e := got - exact
			ae := math.Abs(e)
			sumAbs += ae
			sumSigned += e
			sumSq += e * e
			if ae > wce {
				wce = ae
			}
			if ae > 0 {
				errs++
			}
			if exact != 0 {
				sumRel += ae / exact
				relN++
			}
		}
	}
	n := float64(256 * 256)
	mean := sumSigned / n
	return Metrics{
		Name: m.Name(),
		MAE:  sumAbs / n,
		MAEP: 100 * sumAbs / n / MaxProduct,
		WCE:  wce,
		WCEP: 100 * wce / MaxProduct,
		MRE:  100 * sumRel / float64(relN),
		Bias: mean,
		Var:  sumSq/n - mean*mean,
		EP:   float64(errs) / n,
	}
}

// measureTable computes Metrics from an exhaustive product table
// (index a<<8|b) — identical arithmetic and accumulation order to the
// dispatching loop in Measure, so both paths report the same figures.
func measureTable(name string, table []uint16) Metrics {
	var (
		sumAbs, sumSigned, sumSq, sumRel float64
		wce                              float64
		errs, relN                       int
	)
	for a := 0; a < 256; a++ {
		row := table[a<<8 : a<<8+256]
		for b, got16 := range row {
			exact := float64(a * b)
			got := float64(got16)
			e := got - exact
			ae := math.Abs(e)
			sumAbs += ae
			sumSigned += e
			sumSq += e * e
			if ae > wce {
				wce = ae
			}
			if ae > 0 {
				errs++
			}
			if exact != 0 {
				sumRel += ae / exact
				relN++
			}
		}
	}
	n := float64(256 * 256)
	mean := sumSigned / n
	return Metrics{
		Name: name,
		MAE:  sumAbs / n,
		MAEP: 100 * sumAbs / n / MaxProduct,
		WCE:  wce,
		WCEP: 100 * wce / MaxProduct,
		MRE:  100 * sumRel / float64(relN),
		Bias: mean,
		Var:  sumSq/n - mean*mean,
		EP:   float64(errs) / n,
	}
}

// MeasureNamed measures the registered multiplier name via its compiled
// LUT (so the measurement also covers the LUT path) — served by the
// process-wide cached table, no per-call dispatch.
func MeasureNamed(name string) (Metrics, error) {
	l, err := axmult.Lookup(name)
	if err != nil {
		return Metrics{}, err
	}
	return Measure(l), nil
}
