// Package errmodel computes exhaustive error metrics for 8x8
// approximate multipliers — the standard figures of merit used by the
// EvoApprox8b library and by the paper (which quantifies approximation
// noise via MAE%).
//
// All metrics are computed over the full 65536-point input space with
// uniform operand distribution, matching how EvoApprox reports them.
package errmodel

import (
	"math"

	"repro/internal/axmult"
)

// MaxProduct is the largest exact product of two 8-bit operands.
const MaxProduct = 255 * 255

// Metrics summarises the error behaviour of a multiplier relative to
// the exact product, over all 65536 input pairs.
type Metrics struct {
	Name string

	MAE  float64 // mean |error|
	MAEP float64 // MAE as % of MaxProduct (the paper's "MAE%")
	WCE  float64 // worst-case |error|
	WCEP float64 // WCE as % of MaxProduct
	MRE  float64 // mean relative error over non-zero exact products, %
	Bias float64 // mean signed error (negative = undershoots)
	Var  float64 // variance of signed error
	EP   float64 // error probability: fraction of inputs with any error
}

// Measure computes Metrics for m exhaustively.
func Measure(m axmult.Multiplier) Metrics {
	var (
		sumAbs, sumSigned, sumSq, sumRel float64
		wce                              float64
		errs, relN                       int
	)
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			exact := float64(a * b)
			got := float64(m.Mul(uint8(a), uint8(b)))
			e := got - exact
			ae := math.Abs(e)
			sumAbs += ae
			sumSigned += e
			sumSq += e * e
			if ae > wce {
				wce = ae
			}
			if ae > 0 {
				errs++
			}
			if exact != 0 {
				sumRel += ae / exact
				relN++
			}
		}
	}
	n := float64(256 * 256)
	mean := sumSigned / n
	return Metrics{
		Name: m.Name(),
		MAE:  sumAbs / n,
		MAEP: 100 * sumAbs / n / MaxProduct,
		WCE:  wce,
		WCEP: 100 * wce / MaxProduct,
		MRE:  100 * sumRel / float64(relN),
		Bias: mean,
		Var:  sumSq/n - mean*mean,
		EP:   float64(errs) / n,
	}
}

// MeasureNamed measures the registered multiplier name via its compiled
// LUT (so the measurement also covers the LUT path).
func MeasureNamed(name string) (Metrics, error) {
	l, err := axmult.Lookup(name)
	if err != nil {
		return Metrics{}, err
	}
	return Measure(l), nil
}
