// Package weights serializes network parameters so trained models can
// be cached on disk (training happens once; every experiment reloads).
// The format is a simple little-endian binary container with a magic
// header and per-parameter length checks, so shape mismatches surface
// as errors rather than silent corruption.
package weights

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/nn"
)

const magic = "AXDNNW1\n"

// Save writes all parameters of net to path, atomically via a
// process-private temp file (os.CreateTemp, not a fixed "path.tmp"),
// so two processes cold-training the same model concurrently cannot
// interleave writes into one torn file and publish it with the
// rename.
func Save(net *nn.Network, path string) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := w.WriteString(magic); err != nil {
		return fail(err)
	}
	params := net.Params()
	if err := binary.Write(w, binary.LittleEndian, uint32(len(params))); err != nil {
		return fail(err)
	}
	for _, p := range params {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(p.W))); err != nil {
			return fail(err)
		}
		for _, v := range p.W {
			if err := binary.Write(w, binary.LittleEndian, math.Float32bits(v)); err != nil {
				return fail(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Load reads parameters from path into net. The network must have the
// same parameter structure as the one that was saved.
func Load(net *nn.Network, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r, head); err != nil {
		return fmt.Errorf("weights: reading header of %s: %w", path, err)
	}
	if string(head) != magic {
		return fmt.Errorf("weights: %s is not a weight file", path)
	}
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return err
	}
	params := net.Params()
	if int(count) != len(params) {
		return fmt.Errorf("weights: %s has %d params, network has %d", path, count, len(params))
	}
	for _, p := range params {
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return err
		}
		if int(n) != len(p.W) {
			return fmt.Errorf("weights: param %q length %d != stored %d", p.Name, len(p.W), n)
		}
		buf := make([]byte, 4*n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		for i := range p.W {
			p.W[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
	}
	return nil
}
