package weights

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/models"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.bin")
	net := models.FFNN(16, 4, 1)
	if err := Save(net, path); err != nil {
		t.Fatal(err)
	}
	// Mutate, then load back.
	orig := append([]float32(nil), net.Params()[0].W...)
	for i := range net.Params()[0].W {
		net.Params()[0].W[i] = 42
	}
	if err := Load(net, path); err != nil {
		t.Fatal(err)
	}
	for i, v := range net.Params()[0].W {
		if v != orig[i] {
			t.Fatalf("weight %d not restored: %f != %f", i, v, orig[i])
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	net := models.FFNN(8, 2, 1)
	if err := Load(net, filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestLoadRejectsWrongMagic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(path, []byte("NOTAWEIGHTFILE__"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Load(models.FFNN(8, 2, 1), path); err == nil {
		t.Fatal("expected magic error")
	}
}

func TestLoadRejectsShapeMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.bin")
	if err := Save(models.FFNN(16, 4, 1), path); err != nil {
		t.Fatal(err)
	}
	if err := Load(models.FFNN(8, 4, 1), path); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.bin")
	net := models.FFNN(16, 4, 1)
	if err := Save(net, path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
}

func TestRoundTripPreservesRandomWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	net := models.LeNet5(1, 28, 28, 10, 5)
	for _, p := range net.Params() {
		for i := range p.W {
			p.W[i] = rng.Float32()*2 - 1
		}
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "lenet.bin")
	if err := Save(net, path); err != nil {
		t.Fatal(err)
	}
	net2 := models.LeNet5(1, 28, 28, 10, 6)
	if err := Load(net2, path); err != nil {
		t.Fatal(err)
	}
	p1, p2 := net.Params(), net2.Params()
	for pi := range p1 {
		for i := range p1[pi].W {
			if p1[pi].W[i] != p2[pi].W[i] {
				t.Fatalf("param %d weight %d mismatch", pi, i)
			}
		}
	}
}
