package defense

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/attack"
	"repro/internal/axnn"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Ensemble is a moving-target victim in the style of MTDeep: a pool of
// AxDNN configurations (one per approximate multiplier) of which one,
// drawn per query, serves each classification. The adversary cannot
// know which inexactness answers any given query, so a perturbation
// tuned to one configuration may miss the one that actually serves.
//
// The per-query draw is a keyed hash of the query's pixels and the
// ensemble seed — a deterministic function, so replays, cached victim
// predictions, and repeated reports are bit-identical, while distinct
// queries spread uniformly over the pool and an adversary without the
// seed cannot aim at a member. The honest attack against this victim
// is attack.NewEOT, which averages gradients over SampleModel draws
// instead of trusting any single configuration; Ensemble implements
// attack.Sampler for it.
type Ensemble struct {
	name string
	key  string
	pool []attack.Model
	seed int64
}

// BuildEnsemble compiles one AxDNN per multiplier in pool (same
// compilation path as the grid victims) and returns the randomized
// ensemble victim over them.
func BuildEnsemble(src *nn.Network, calib *dataset.Set, pool []string, opts axnn.Options, seed int64) (*Ensemble, error) {
	if len(pool) == 0 {
		return nil, errors.New("defense: ensemble needs a non-empty multiplier pool")
	}
	victims, err := core.BuildAxVictims(src, calib, pool, opts)
	if err != nil {
		return nil, err
	}
	members := make([]attack.Model, len(victims))
	for i, v := range victims {
		members[i] = v.Factory()
	}
	return &Ensemble{
		name: fmt.Sprintf("ensemble[%d]", len(pool)),
		// The key folds everything the member behaviour depends on —
		// pool, source weights, quantization, and the calibration
		// samples the quantization ranges were derived from — plus the
		// draw seed, so crafted-example and prediction caches never
		// conflate two ensembles.
		key: fmt.Sprintf("ensemble[%s|src=%s/%016x|calib=%016x|bits=%d|dense=%t|seed=%d]",
			strings.Join(pool, ","), src.Name, src.WeightsFingerprint(), calibFingerprint(calib), opts.Bits, opts.ApproxDense, seed),
		pool: members,
		seed: seed,
	}, nil
}

// calibFingerprint folds the calibration inputs that axnn.Compile
// consumes (the first 64 samples — keep in sync with
// core.BuildAxVictims) into a cheap FNV-style hash: different
// calibration data yields different quantization ranges, so it must
// split the ensemble's cache identity.
func calibFingerprint(calib *dataset.Set) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, x := range calib.Inputs(64) {
		for _, v := range x.Data {
			h ^= uint64(math.Float32bits(v))
			h *= prime
		}
	}
	return h
}

// Name is the victim column label ("ensemble[<pool size>]").
func (e *Ensemble) Name() string { return e.name }

// Size returns the pool size.
func (e *Ensemble) Size() int { return len(e.pool) }

// pickIdx hashes one query into a pool index (FNV-1a over the seed
// and the query's pixel bits).
func (e *Ensemble) pickIdx(x *tensor.T) int {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	h ^= uint64(e.seed)
	h *= prime
	for _, v := range x.Data {
		h ^= uint64(math.Float32bits(v))
		h *= prime
	}
	return int(h % uint64(len(e.pool)))
}

// Logits implements attack.Model: the drawn member answers the query.
func (e *Ensemble) Logits(x *tensor.T) []float32 {
	return e.pool[e.pickIdx(x)].Logits(x)
}

// LogitsBatch implements attack.BatchModel: each row is answered by
// its own draw. Rows drawing the same member are scored with one
// LogitsBatch call; row r is bit-identical to Logits on row r, so the
// batched harness path and the scalar protocol agree.
func (e *Ensemble) LogitsBatch(xs *tensor.T) *tensor.T {
	n := xs.Rows()
	groups := make([][]int, len(e.pool))
	for r := 0; r < n; r++ {
		mi := e.pickIdx(xs.Row(r))
		groups[mi] = append(groups[mi], r)
	}
	var out *tensor.T
	for mi, rows := range groups {
		if len(rows) == 0 {
			continue
		}
		m := e.pool[mi]
		var logits *tensor.T
		if bm, ok := m.(attack.BatchModel); ok {
			logits = bm.LogitsBatch(tensor.GatherRows(xs, rows))
		} else {
			for i, r := range rows {
				l := m.Logits(xs.Row(r))
				if logits == nil {
					logits = tensor.New(len(rows), len(l))
				}
				copy(logits.Row(i).Data, l)
			}
		}
		if out == nil {
			out = tensor.New(n, logits.RowLen())
		}
		tensor.ScatterRows(out, logits, rows)
	}
	return out
}

// ModelKey implements core.ModelKeyer: the ensemble's behaviour is
// fully determined by its key (pool, source fingerprint, quantization,
// seed), so victim-prediction memos survive across runs that rebuild
// an identical ensemble instance.
func (e *Ensemble) ModelKey() string { return e.key }

// SampleModel implements attack.Sampler: one uniform draw from the
// pool — the distribution an adaptive adversary averages over.
func (e *Ensemble) SampleModel(rng *rand.Rand) attack.Model {
	return e.pool[rng.Intn(len(e.pool))]
}

// SamplerKey implements attack.Sampler.
func (e *Ensemble) SamplerKey() string { return e.key }
