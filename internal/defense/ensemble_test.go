package defense

import (
	"math/rand"
	"testing"

	"repro/internal/attack"
	"repro/internal/axnn"
	"repro/internal/tensor"
)

var testPool = []string{"mul8u_1JFF", "mul8u_JV3", "mul8u_L40"}

func testEnsemble(t *testing.T, seed int64) *Ensemble {
	t.Helper()
	m := fixture(t)
	e, err := BuildEnsemble(m.Net, m.Test, testPool, axnn.Options{ApproxDense: true}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestEnsembleBatchMatchesScalar pins the harness contract: row r of
// LogitsBatch is bit-identical to Logits on row r, whatever member
// each row draws.
func TestEnsembleBatchMatchesScalar(t *testing.T) {
	e := testEnsemble(t, 7)
	m := fixture(t)
	n := 24
	xs := tensor.Stack(m.Test.X[:n])
	batch := e.LogitsBatch(xs)
	for r := 0; r < n; r++ {
		want := e.Logits(xs.Row(r))
		got := batch.Row(r).Data
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("row %d logit %d: batch %v != scalar %v", r, i, got[i], want[i])
			}
		}
	}
}

// TestEnsembleDrawIsDeterministicButSpread: the same query always gets
// the same answer (replayable reports), while distinct queries spread
// over more than one pool member (a moving target, not a constant
// pick).
func TestEnsembleDrawIsDeterministicButSpread(t *testing.T) {
	e := testEnsemble(t, 7)
	m := fixture(t)
	x := m.Test.X[0]
	a, b := e.Logits(x), e.Logits(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same query answered by different members across calls")
		}
	}
	used := map[int]bool{}
	for i := 0; i < 64; i++ {
		used[e.pickIdx(m.Test.X[i])] = true
	}
	if len(used) < 2 {
		t.Fatalf("64 distinct queries all drew the same member — no moving target")
	}
	// A different seed re-keys the draw: at least one of the first
	// queries lands on a different member.
	e2 := testEnsemble(t, 8)
	moved := false
	for i := 0; i < 64 && !moved; i++ {
		moved = e.pickIdx(m.Test.X[i]) != e2.pickIdx(m.Test.X[i])
	}
	if !moved {
		t.Fatal("re-seeding the ensemble did not change any draw")
	}
}

// TestEnsembleSampleModelCoversPool: the adaptive adversary's draw
// distribution reaches every member.
func TestEnsembleSampleModelCoversPool(t *testing.T) {
	e := testEnsemble(t, 7)
	rng := rand.New(rand.NewSource(1))
	seen := map[attack.Model]int{}
	for i := 0; i < 300; i++ {
		seen[e.SampleModel(rng)]++
	}
	if len(seen) != e.Size() {
		t.Fatalf("SampleModel reached %d of %d members", len(seen), e.Size())
	}
}

// TestEnsembleSamplerKeyIsolation: pools, seeds, and quantization all
// change the key crafted-example caches isolate on.
func TestEnsembleSamplerKeyIsolation(t *testing.T) {
	m := fixture(t)
	build := func(pool []string, opts axnn.Options, seed int64) string {
		e, err := BuildEnsemble(m.Net, m.Test, pool, opts, seed)
		if err != nil {
			t.Fatal(err)
		}
		return e.SamplerKey()
	}
	base := build(testPool, axnn.Options{ApproxDense: true}, 7)
	if build(testPool[:2], axnn.Options{ApproxDense: true}, 7) == base {
		t.Fatal("different pools share a sampler key")
	}
	if build(testPool, axnn.Options{ApproxDense: true}, 8) == base {
		t.Fatal("different seeds share a sampler key")
	}
	if build(testPool, axnn.Options{Bits: 6, ApproxDense: true}, 7) == base {
		t.Fatal("different quantization shares a sampler key")
	}
	if e, _ := BuildEnsemble(m.Net, m.Test, testPool, axnn.Options{ApproxDense: true}, 7); e.SamplerKey() != base {
		t.Fatal("identical configuration must reproduce the sampler key")
	}
}

func TestBuildEnsembleRejectsEmptyAndUnknown(t *testing.T) {
	m := fixture(t)
	if _, err := BuildEnsemble(m.Net, m.Test, nil, axnn.Options{}, 1); err == nil {
		t.Fatal("empty pool must fail")
	}
	if _, err := BuildEnsemble(m.Net, m.Test, []string{"mul8u_NOPE"}, axnn.Options{}, 1); err == nil {
		t.Fatal("unknown multiplier must fail")
	}
}
