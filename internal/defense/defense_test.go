package defense

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/modelzoo"
	"repro/internal/tensor"
	"repro/internal/train"
)

// fixture trains one small FFNN once and hands out the model-zoo-style
// bundle the defense APIs consume.
var fixture = func() func(t testing.TB) *modelzoo.Model {
	var m *modelzoo.Model
	return func(t testing.TB) *modelzoo.Model {
		t.Helper()
		if m == nil {
			tr := dataset.Digits(900, 51)
			test := dataset.Digits(200, 52)
			net := models.FFNN(28*28, 10, 53)
			net.Name = "tiny-defense"
			train.Fit(net, tr, train.Config{Epochs: 2, Batch: 32, LR: 0.05, Momentum: 0.9, Seed: 3, Workers: 1})
			m = &modelzoo.Model{Net: net, Train: tr, Test: test, CleanAcc: 100 * train.Accuracy(net, test, 0)}
		}
		return m
	}
}()

// robustness measures white-box robustness of m under atk at eps over
// the first n test samples: examples are crafted against target (the
// gradient surrogate) and replayed on m.
func robustness(t *testing.T, target attack.Model, m attack.Model, set *dataset.Set, atkName string, eps float64, n int) float64 {
	t.Helper()
	atk, err := attack.Find(atkName)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(77 + int64(i)*1_000_003))
		adv := atk.Perturb(target, set.X[i], set.Y[i], eps, rng)
		if tensor.ArgMax(m.Logits(adv)) == set.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

// TestAdvTrainImprovesRobustness is the package's reason to exist: a
// PGD-adversarially fine-tuned model must be measurably more robust to
// the white-box attack it trained against than its undefended base,
// without collapsing on clean data.
func TestAdvTrainImprovesRobustness(t *testing.T) {
	base := fixture(t)
	cfg := AdvTrainConfig{Attack: "PGD-linf", Eps: 0.1, Ratio: 0.5, Epochs: 2, Seed: 9, Workers: 1}
	hardened, err := Harden(context.Background(), base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const eps, n = 0.1, 60
	// White-box each: craft against the model under evaluation.
	baseRob := robustness(t, base.Net, base.Net, base.Test, "PGD-linf", eps, n)
	hardRob := robustness(t, hardened.Net, hardened.Net, hardened.Test, "PGD-linf", eps, n)
	if hardRob <= baseRob {
		t.Fatalf("adversarial training did not help: hardened %.2f <= base %.2f", hardRob, baseRob)
	}
	if hardened.CleanAcc < base.CleanAcc-20 {
		t.Fatalf("hardened model collapsed on clean data: %.1f%% vs base %.1f%%", hardened.CleanAcc, base.CleanAcc)
	}
}

// TestHardenLeavesBaseUntouched: hardening must never mutate the base
// network (caches key on its weights fingerprint).
func TestHardenLeavesBaseUntouched(t *testing.T) {
	base := fixture(t)
	fp := base.Net.WeightsFingerprint()
	h, err := Harden(context.Background(), base, AdvTrainConfig{Attack: "FGM-linf", Eps: 0.05, Epochs: 1, Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.Net.WeightsFingerprint() != fp {
		t.Fatal("Harden mutated the base network")
	}
	if h.Net == base.Net {
		t.Fatal("Harden returned the base network itself")
	}
	if h.Net.WeightsFingerprint() == fp {
		t.Fatal("hardened network weights did not change")
	}
	if h.Net.Name != HardenedID("tiny-defense", AdvTrainConfig{Attack: "FGM-linf", Eps: 0.05, Epochs: 1, Seed: 1}) {
		t.Fatalf("hardened network name %q is not its derived id", h.Net.Name)
	}
}

// TestAdvTrainDeterministic: same config, same base, same workers —
// bit-identical hardened weights (the contract inherited from
// train.Fit and the crafting rng scheme).
func TestAdvTrainDeterministic(t *testing.T) {
	base := fixture(t)
	cfg := AdvTrainConfig{Attack: "PGD-linf", Eps: 0.08, Ratio: 0.4, Epochs: 1, Seed: 21, Workers: 2}
	h1, err := Harden(context.Background(), base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Harden(context.Background(), base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h1.Net.WeightsFingerprint() != h2.Net.WeightsFingerprint() {
		t.Fatal("AdvTrain not deterministic for a fixed (seed, workers) pair")
	}
}

// TestAdvTrainUniversal exercises the set-level (UAP) path — Shafahi
// et al.'s universal adversarial training — end to end.
func TestAdvTrainUniversal(t *testing.T) {
	base := fixture(t)
	h, err := Harden(context.Background(), base, AdvTrainConfig{Attack: "UAP-linf", Eps: 0.1, Ratio: 0.3, Epochs: 1, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if h.CleanAcc < base.CleanAcc-25 {
		t.Fatalf("UAP training collapsed clean accuracy: %.1f%% vs %.1f%%", h.CleanAcc, base.CleanAcc)
	}
}

// TestAdvTrainCancellation: a cancelled context aborts crafting.
func TestAdvTrainCancellation(t *testing.T) {
	base := fixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	net := base.Net.DeepClone()
	if _, err := AdvTrain(ctx, net, base.Train, AdvTrainConfig{Attack: "PGD-linf", Eps: 0.1, Seed: 1, Workers: 1}); err == nil {
		t.Fatal("cancelled AdvTrain must return an error")
	}
}

func TestAdvTrainConfigValidate(t *testing.T) {
	bad := []AdvTrainConfig{
		{Attack: "", Eps: 0.1},
		{Attack: "DeepFool", Eps: 0.1},
		{Attack: "PGD-linf", Eps: 0},
		{Attack: "PGD-linf", Eps: -0.1},
		{Attack: "PGD-linf", Eps: 0.1, Ratio: 1.5},
		{Attack: "PGD-linf", Eps: 0.1, Ratio: -0.5},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %+v must fail validation", cfg)
		}
	}
	// The unknown-attack message is the canonical one from attack.Find.
	err := AdvTrainConfig{Attack: "DeepFool", Eps: 0.1}.Validate()
	if err == nil || !strings.Contains(err.Error(), `unknown attack "DeepFool" (have:`) {
		t.Fatalf("unknown attack error %v must carry attack.Find's canonical message", err)
	}
	if err := (AdvTrainConfig{Attack: "PGD-linf", Eps: 0.1}).Validate(); err != nil {
		t.Fatalf("minimal config must validate: %v", err)
	}
}

// TestHardenedIDRoundTrip pins the derived-id scheme: defaults are
// canonicalised, parsing inverts formatting, and stacked ids split at
// the last mark.
func TestHardenedIDRoundTrip(t *testing.T) {
	id := HardenedID("lenet5-digits", AdvTrainConfig{Attack: "PGD-linf", Eps: 0.1, Seed: 7})
	want := "lenet5-digits+advtrain:PGD-linf:eps=0.1:ratio=0.5:epochs=1:seed=7"
	if id != want {
		t.Fatalf("HardenedID = %q, want %q", id, want)
	}
	if !IsHardenedID(id) || IsHardenedID("lenet5-digits") {
		t.Fatal("IsHardenedID misclassifies")
	}
	base, cfg, err := ParseHardenedID(id)
	if err != nil {
		t.Fatal(err)
	}
	if base != "lenet5-digits" || cfg.Attack != "PGD-linf" || cfg.Eps != 0.1 || cfg.Ratio != 0.5 || cfg.Epochs != 1 || cfg.Seed != 7 {
		t.Fatalf("ParseHardenedID round-trip lost fields: base=%q cfg=%+v", base, cfg)
	}
	if HardenedID(base, cfg) != id {
		t.Fatal("HardenedID(ParseHardenedID(id)) != id")
	}

	stacked := HardenedID(id, AdvTrainConfig{Attack: "FGM-linf", Eps: 0.05, Seed: 1})
	b2, cfg2, err := ParseHardenedID(stacked)
	if err != nil {
		t.Fatal(err)
	}
	if b2 != id || cfg2.Attack != "FGM-linf" {
		t.Fatalf("stacked id split wrongly: base=%q cfg=%+v", b2, cfg2)
	}

	for _, bad := range []string{
		"lenet5-digits",
		"+advtrain:PGD-linf:eps=0.1:ratio=0.5:epochs=1:seed=7",
		"m+advtrain:PGD-linf:eps=0.1:ratio=0.5:epochs=1",
		"m+advtrain:PGD-linf:eps=x:ratio=0.5:epochs=1:seed=7",
		"m+advtrain:PGD-linf:ratio=0.5:eps=0.1:epochs=1:seed=7",
	} {
		if _, _, err := ParseHardenedID(bad); err == nil {
			t.Fatalf("ParseHardenedID(%q) must fail", bad)
		}
	}
}
