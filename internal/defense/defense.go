// Package defense models deliberate adversarial defenses, so the
// paper's title question — is approximation *universally* defensive? —
// can be answered against real baselines rather than only from the
// attack side:
//
//   - AdvTrain / Harden implement adversarial training (Madry-style
//     PGD-AT; with a set-level attack, Shafahi et al.'s universal
//     adversarial training): each epoch a deterministic fraction of
//     the training set is replaced by adversarial counterparts crafted
//     against the *current* network with the existing batched attack
//     path, then mixed into plain SGD (train.Fit).
//   - Ensemble is a moving-target victim in the style of MTDeep: each
//     query is served by one configuration drawn (seeded) from a pool
//     of approximate multipliers, so the adversary never knows which
//     inexactness answers.
//
// Hardened models register with the model zoo under a derived
// identifier — "<base>+advtrain:<attack>:eps=…:ratio=…:epochs=…:seed=…"
// — so specs, the experiment engine, axtrain, and axserve jobs all
// load them through the ordinary modelzoo.Get path, sharing the same
// on-disk weight cache. The honest adaptive evaluation of the
// randomized ensemble lives in attack.NewEOT, for which Ensemble
// implements attack.Sampler.
package defense

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/modelzoo"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/train"
	"repro/internal/weights"
)

// Fine-tuning hyperparameters of AdvTrain. They are fixed (not part of
// AdvTrainConfig) so a hardened model is fully identified by the
// defense knobs in its derived id.
const (
	advLR       = 0.02
	advMomentum = 0.9
	advLRDecay  = 0.7
	advBatch    = 32
	// advChunk bounds one crafting batch, mirroring core's batch cap.
	advChunk = 32
)

// AdvTrainConfig declares one adversarial training run. The zero
// values of Ratio and Epochs select the defaults (0.5, 1), so the
// derived identifier of a minimally specified config is canonical.
type AdvTrainConfig struct {
	// Attack names the crafting attack (any attack.Names entry; a
	// set-level attack like UAP-linf selects universal adversarial
	// training).
	Attack string
	// Eps is the crafting budget, in the attack's norm.
	Eps float64
	// Ratio is the fraction of each epoch's training samples replaced
	// by adversarial counterparts (0 = default 0.5, 1 = all).
	Ratio float64
	// Epochs is the number of adversarial fine-tuning epochs (0 =
	// default 1). Each epoch re-crafts against the updated network.
	Epochs int
	// Seed drives sample selection, crafting randomness, and the SGD
	// shuffle.
	Seed int64
	// Workers caps crafting and SGD parallelism (0 = GOMAXPROCS).
	// Crafting is worker-independent (per-sample rng streams); the SGD
	// reduction order is not, so — exactly like train.Config.Workers —
	// final weights are bit-deterministic only per (Seed, Workers)
	// pair. Workers is an execution knob and is excluded from
	// HardenedID; the persisted weight cache makes the first training
	// run's result canonical thereafter.
	Workers int
	// Logf, when non-nil, receives progress lines; nil suppresses them.
	Logf func(format string, args ...any)
}

func (c AdvTrainConfig) withDefaults() AdvTrainConfig {
	if c.Ratio == 0 {
		c.Ratio = 0.5
	}
	if c.Epochs <= 0 {
		c.Epochs = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Validate checks the config without touching any model: the attack
// resolves (sharing attack.Find's canonical message) and the numeric
// knobs are sane.
func (c AdvTrainConfig) Validate() error {
	if c.Attack == "" {
		return errors.New("defense: advtrain attack is required")
	}
	if _, err := attack.Find(c.Attack); err != nil {
		return fmt.Errorf("defense: %w", err)
	}
	if math.IsNaN(c.Eps) || math.IsInf(c.Eps, 0) || c.Eps <= 0 {
		return fmt.Errorf("defense: advtrain eps %g must be finite and positive", c.Eps)
	}
	if math.IsNaN(c.Ratio) || c.Ratio < 0 || c.Ratio > 1 {
		return fmt.Errorf("defense: advtrain ratio %g outside [0, 1]", c.Ratio)
	}
	if c.Epochs < 0 {
		return fmt.Errorf("defense: negative advtrain epochs %d", c.Epochs)
	}
	return nil
}

// AdvTrain adversarially fine-tunes net in place on set and returns
// the final epoch's mean training loss. Each epoch: a deterministic
// Ratio-sized subset of the samples is replaced by adversarial
// counterparts crafted against the current weights (batched, with
// per-sample rng streams — the crafted set is independent of Workers),
// and one SGD epoch runs over the mixed set. Cancelling ctx stops
// between crafting chunks and returns ctx.Err(); the network is left
// in its last consistent state.
func AdvTrain(ctx context.Context, net *nn.Network, set *dataset.Set, cfg AdvTrainConfig) (float64, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if set == nil || set.Len() == 0 {
		return 0, errors.New("defense: adversarial training needs a non-empty training set")
	}
	atk, err := attack.Find(cfg.Attack)
	if err != nil {
		return 0, fmt.Errorf("defense: %w", err)
	}
	lr := advLR
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		mixed, err := adversarialEpoch(ctx, net, set, atk, cfg, epoch)
		if err != nil {
			return 0, err
		}
		lastLoss = train.Fit(net, mixed, train.Config{
			Epochs:   1,
			Batch:    advBatch,
			LR:       lr,
			Momentum: advMomentum,
			Seed:     cfg.Seed + int64(epoch)*7_919 + 1,
			Workers:  cfg.Workers,
		})
		if cfg.Logf != nil {
			cfg.Logf("advtrain epoch %d/%d loss=%.4f lr=%.4f", epoch+1, cfg.Epochs, lastLoss, lr)
		}
		lr *= advLRDecay
	}
	return lastLoss, nil
}

// adversarialEpoch returns set with a Ratio-sized subset replaced by
// adversarial counterparts crafted against the current net. Selection
// and crafting randomness are functions of (Seed, epoch, sample
// index) only, so the mixed set is identical however crafting is
// chunked or parallelised.
func adversarialEpoch(ctx context.Context, net *nn.Network, set *dataset.Set, atk attack.Attack, cfg AdvTrainConfig, epoch int) (*dataset.Set, error) {
	k := int(cfg.Ratio*float64(set.Len()) + 0.5)
	if k == 0 {
		return set, nil
	}
	pick := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(epoch)*7_919))
	idx := pick.Perm(set.Len())[:k]
	sort.Ints(idx)
	labels := make([]int, k)
	samples := make([]*tensor.T, k)
	for i, si := range idx {
		labels[i] = set.Y[si]
		samples[i] = set.X[si]
	}

	var adv *tensor.T
	if sa, ok := atk.(attack.SetAttack); ok {
		// Universal adversarial training: one image-agnostic delta per
		// epoch over the whole chosen subset (Shafahi et al. 2020).
		rng := rand.New(rand.NewSource(cfg.Seed*69_069 + int64(epoch) + 1))
		adv = sa.PerturbSet(ctx, net, tensor.Stack(samples), labels, cfg.Eps, rng)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	} else {
		batk := attack.AsBatch(atk)
		adv = tensor.New(append([]int{k}, samples[0].Shape...)...)
		if err := core.RunChunked(ctx, k, advChunk, cfg.Workers, func(lo, hi int) {
			xs := tensor.Stack(samples[lo:hi])
			rngs := make([]*rand.Rand, hi-lo)
			for i := range rngs {
				// Keyed by the sample's index in the full set, so the
				// stream survives re-chunking and differs per epoch.
				rngs[i] = rand.New(rand.NewSource(cfg.Seed + int64(idx[lo+i])*1_000_003 + int64(epoch)*7_919 + 17))
			}
			crafted := batk.PerturbBatch(net, xs, labels[lo:hi], cfg.Eps, rngs)
			copy(adv.RowView(lo, hi).Data, crafted.Data)
		}); err != nil {
			return nil, err
		}
	}

	x := append([]*tensor.T(nil), set.X...)
	for i, si := range idx {
		x[si] = adv.Row(i).Clone()
	}
	return &dataset.Set{Name: set.Name, X: x, Y: set.Y, Classes: set.Classes}, nil
}

// Harden adversarially fine-tunes a detached copy of the base model
// and returns it as a new model sharing the base's data. The base
// network is never mutated (its weights fingerprint — and with it
// every cache entry keyed on it — stays valid). The returned network
// is named by HardenedID.
func Harden(ctx context.Context, base *modelzoo.Model, cfg AdvTrainConfig) (*modelzoo.Model, error) {
	cfg = cfg.withDefaults()
	tr, err := base.TrainingSet()
	if err != nil {
		return nil, fmt.Errorf("defense: cannot harden: %w", err)
	}
	net := base.Net.DeepClone()
	net.Name = HardenedID(base.Net.Name, cfg)
	if _, err := AdvTrain(ctx, net, tr, cfg); err != nil {
		return nil, err
	}
	m := &modelzoo.Model{Net: net, Train: tr, Test: base.Test}
	m.CleanAcc = 100 * train.Accuracy(net, base.Test, 0)
	return m, nil
}

// hardenedMark separates a base model name from the advtrain scheme's
// parameters in a derived identifier.
const hardenedMark = "+advtrain:"

// HardenedID returns the model-zoo identifier of the hardened variant
// of base under cfg. Defaults are applied first, so equivalent configs
// share one id (and one weight-cache entry). Execution knobs (Workers,
// Logf) are excluded, mirroring the service's JobID contract.
func HardenedID(base string, cfg AdvTrainConfig) string {
	cfg = cfg.withDefaults()
	return fmt.Sprintf("%s%s%s:eps=%s:ratio=%s:epochs=%d:seed=%d",
		base, hardenedMark, cfg.Attack,
		strconv.FormatFloat(cfg.Eps, 'g', -1, 64),
		strconv.FormatFloat(cfg.Ratio, 'g', -1, 64),
		cfg.Epochs, cfg.Seed)
}

// IsHardenedID reports whether id names an adversarially trained
// derived model.
func IsHardenedID(id string) bool { return strings.Contains(id, hardenedMark) }

// ParseHardenedID splits a derived identifier back into its base model
// name and config. The base may itself be a derived id (stacked
// hardening): the split is at the last advtrain mark.
func ParseHardenedID(id string) (base string, cfg AdvTrainConfig, err error) {
	i := strings.LastIndex(id, hardenedMark)
	if i < 0 {
		return "", cfg, fmt.Errorf("defense: %q is not a hardened model id", id)
	}
	base = id[:i]
	fields := strings.Split(id[i+len(hardenedMark):], ":")
	if base == "" || len(fields) != 5 {
		return "", cfg, fmt.Errorf("defense: malformed hardened model id %q", id)
	}
	cfg.Attack = fields[0]
	for fi, want := range []string{"eps", "ratio", "epochs", "seed"} {
		k, v, ok := strings.Cut(fields[fi+1], "=")
		if !ok || k != want {
			return "", cfg, fmt.Errorf("defense: malformed hardened model id %q: want %s=…, got %q", id, want, fields[fi+1])
		}
		var perr error
		switch want {
		case "eps":
			cfg.Eps, perr = strconv.ParseFloat(v, 64)
		case "ratio":
			cfg.Ratio, perr = strconv.ParseFloat(v, 64)
		case "epochs":
			cfg.Epochs, perr = strconv.Atoi(v)
		case "seed":
			cfg.Seed, perr = strconv.ParseInt(v, 10, 64)
		}
		if perr != nil {
			return "", cfg, fmt.Errorf("defense: malformed hardened model id %q: %w", id, perr)
		}
	}
	return base, cfg, nil
}

// init registers the advtrain scheme with the model zoo: any consumer
// that imports defense (the experiment engine, the cmd tools, the
// service) can load "<base>+advtrain:…" ids through modelzoo.Get, with
// training running on first use and weights persisted like any zoo
// model's.
func init() {
	modelzoo.RegisterDeriver(modelzoo.Deriver{Match: IsHardenedID, Build: buildHardened})
}

// buildHardened is the zoo deriver: resolve the base (re-entrant Get),
// load the hardened weights from the cache, or train and persist them.
// Cancelling ctx — a cancelled axserve job, Ctrl-C in axrobust —
// aborts training at crafting-chunk granularity; nothing is cached or
// persisted, and a later Get retries.
func buildHardened(ctx context.Context, id string) (*modelzoo.Model, error) {
	base, cfg, err := ParseHardenedID(id)
	if err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("defense: hardened model id %q: %w", id, err)
	}
	bm, err := modelzoo.GetCtx(ctx, base)
	if err != nil {
		return nil, err
	}
	path := modelzoo.WeightPath(id)
	net := bm.Net.DeepClone()
	net.Name = id
	switch err := weights.Load(net, path); {
	case err == nil:
		// The training set stays lazy on this path (loading hardened
		// weights needs no data); chaining to the base's TrainingSet
		// keeps stacked hardening of a disk-cached variant working.
		m := &modelzoo.Model{
			Net:     net,
			TrainFn: func() *dataset.Set { ts, _ := bm.TrainingSet(); return ts },
			Test:    bm.Test,
		}
		m.CleanAcc = 100 * train.Accuracy(net, bm.Test, 0)
		return m, nil
	case !errors.Is(err, fs.ErrNotExist):
		return nil, fmt.Errorf("modelzoo: corrupt or unreadable weight cache for %s at %s (delete it to retrain): %w", id, path, err)
	}
	if os.Getenv("AXREPRO_VERBOSE") != "" {
		cfg.Logf = func(f string, a ...any) { fmt.Printf("[harden %s] "+f+"\n", append([]any{id}, a...)...) }
	}
	m, err := Harden(ctx, bm, cfg)
	if err != nil {
		return nil, err
	}
	if err := weights.Save(m.Net, path); err != nil {
		return nil, fmt.Errorf("defense: saving %s: %w", id, err)
	}
	return m, nil
}
