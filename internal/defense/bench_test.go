package defense

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/attack"
	"repro/internal/axnn"
	"repro/internal/tensor"
)

// The defense benchmarks feed BENCH_defense.json in CI: one data point
// per release for the cost of hardening, of serving through the
// randomized ensemble, and of adaptive (EOT) crafting, so the defense
// subsystem's perf trajectory is tracked like the inference engine's.

func BenchmarkAdvTrainEpoch(b *testing.B) {
	base := fixture(b)
	cfg := AdvTrainConfig{Attack: "PGD-linf", Eps: 0.1, Ratio: 0.25, Epochs: 1, Seed: 3, Workers: 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := base.Net.DeepClone()
		if _, err := AdvTrain(context.Background(), net, base.Train.Slice(256), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnsembleLogitsBatch(b *testing.B) {
	base := fixture(b)
	e, err := BuildEnsemble(base.Net, base.Test, testPool, axnn.Options{ApproxDense: true}, 7)
	if err != nil {
		b.Fatal(err)
	}
	xs := tensor.Stack(base.Test.X[:64])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.LogitsBatch(xs)
	}
}

func BenchmarkEOTCraftBatch(b *testing.B) {
	base := fixture(b)
	e, err := BuildEnsemble(base.Net, base.Test, testPool, axnn.Options{ApproxDense: true}, 7)
	if err != nil {
		b.Fatal(err)
	}
	eot := attack.NewEOT(e, attack.Linf, 4)
	n := 16
	xs := tensor.Stack(base.Test.X[:n])
	rngs := make([]*rand.Rand, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := range rngs {
			rngs[r] = rand.New(rand.NewSource(int64(r) * 1_000_003))
		}
		eot.PerturbBatch(base.Net, xs, base.Test.Y[:n], 0.1, rngs)
	}
}
